// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (one benchmark per artefact; see DESIGN.md §3) plus
// micro-benchmarks of the core components and ablations of the design
// decisions D1-D6.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Artefact benches run the Quick variant by default so the suite stays in
// minutes; set SAILOR_BENCH_FULL=1 for paper-scale clusters, and use
// cmd/sailor-bench to pretty-print the regenerated tables.
package repro

import (
	"context"
	"fmt"
	"os"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/groundtruth"
	"repro/internal/hardware"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/planner"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/sailor"
)

func benchOpts() experiments.Opts {
	return experiments.Opts{
		Quick:          os.Getenv("SAILOR_BENCH_FULL") == "",
		SlowPlannerCap: 5 * time.Second,
	}
}

func benchArtefact(b *testing.B, id string) {
	b.Helper()
	o := benchOpts()
	run, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var rows int
	for i := 0; i < b.N; i++ {
		tab, err := run(o)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		rows = len(tab.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// --- one benchmark per paper artefact ---------------------------------------

func BenchmarkFigure1(b *testing.B)  { benchArtefact(b, "fig1") }
func BenchmarkFigure2(b *testing.B)  { benchArtefact(b, "fig2") }
func BenchmarkFigure3(b *testing.B)  { benchArtefact(b, "fig3") }
func BenchmarkFigure5a(b *testing.B) { benchArtefact(b, "fig5a") }
func BenchmarkFigure5b(b *testing.B) { benchArtefact(b, "fig5b") }
func BenchmarkFigure6(b *testing.B)  { benchArtefact(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchArtefact(b, "fig7") }
func BenchmarkFigure8a(b *testing.B) { benchArtefact(b, "fig8a") }
func BenchmarkFigure8b(b *testing.B) { benchArtefact(b, "fig8b") }
func BenchmarkFigure9a(b *testing.B) { benchArtefact(b, "fig9a") }
func BenchmarkFigure9b(b *testing.B) { benchArtefact(b, "fig9b") }
func BenchmarkFigure10(b *testing.B) { benchArtefact(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchArtefact(b, "fig11") }
func BenchmarkFigure12(b *testing.B) { benchArtefact(b, "fig12") }
func BenchmarkFigure13(b *testing.B) { benchArtefact(b, "fig13") }
func BenchmarkFigure14(b *testing.B) { benchArtefact(b, "fig14") }
func BenchmarkTable1(b *testing.B)   { benchArtefact(b, "tab1") }
func BenchmarkTable2(b *testing.B)   { benchArtefact(b, "tab2") }
func BenchmarkTable3(b *testing.B)   { benchArtefact(b, "tab3") }

func BenchmarkScalability(b *testing.B)     { benchArtefact(b, "scale") }
func BenchmarkReconfiguration(b *testing.B) { benchArtefact(b, "reconf") }
func BenchmarkReplanLab(b *testing.B)       { benchArtefact(b, "replan") }

// --- component micro-benchmarks ---------------------------------------------

var benchZone = cluster.GCPZone("us-central1", 'a')

func benchLab(b *testing.B, cfg model.Config, gpus ...core.GPUType) (*sim.Simulator, *groundtruth.Engine) {
	b.Helper()
	prof, err := profiler.Collect(cfg, gpus, nil, profiler.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return sim.New(cfg, prof), groundtruth.New(cfg)
}

func benchPlan(cfg model.Config, g core.GPUType, pp, dp, tp, mbs int) core.Plan {
	per := cfg.Layers / pp
	rem := cfg.Layers - per*pp
	plan := core.Plan{MicroBatchSize: mbs}
	first := 0
	for i := 0; i < pp; i++ {
		n := per
		if i < rem {
			n++
		}
		st := core.StagePlan{FirstLayer: first, NumLayers: n}
		for k := 0; k < dp; k++ {
			st.Replicas = append(st.Replicas, core.StageReplica{GPU: g, TP: tp, Zone: benchZone})
		}
		plan.Stages = append(plan.Stages, st)
		first += n
	}
	return plan
}

// BenchmarkSimulatorEstimate measures one analytical plan evaluation — the
// planner's inner loop (§4.3).
func BenchmarkSimulatorEstimate(b *testing.B) {
	cfg := model.OPT350M()
	s, _ := benchLab(b, cfg, core.A100)
	plan := benchPlan(cfg, core.A100, 4, 8, 2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Estimate(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEstimate measures the overhauled estimate hot path with
// allocation reporting: table-driven stage timings, pooled scratch, and
// per-pipeline dedup. The homogeneous case collapses all DP pipelines to
// one makespan evaluation; the mixed case pays one per distinct timing
// vector.
func BenchmarkSimEstimate(b *testing.B) {
	cfg := model.OPT350M()
	homPlan := benchPlan(cfg, core.A100, 4, 8, 2, 2)
	s, _ := benchLab(b, cfg, core.A100, core.V100)
	mixPlan := benchPlan(cfg, core.A100, 4, 8, 2, 2)
	for i := range mixPlan.Stages {
		mixPlan.Stages[i].Replicas[1].GPU = core.V100 // second pipeline differs
	}
	for _, bc := range []struct {
		name string
		plan core.Plan
	}{
		{"homogeneous", homPlan},
		{"mixed-replicas", mixPlan},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Estimate(bc.plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPruning quantifies the bound-based pruning: the same search with
// pruning on and off, with the explored-node counts reported so the bench
// log shows what the bounds skipped. The chosen plan is identical in both
// variants (asserted by TestBoundPruningExact).
func BenchmarkPruning(b *testing.B) {
	cfg := model.OPT350M()
	s, _ := benchLab(b, cfg, core.A100)
	pool := cluster.NewPool().Set(benchZone, core.A100, 64)
	for _, bc := range []struct {
		name    string
		disable bool
	}{
		{"pruned", false},
		{"unpruned", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			explored := 0
			for i := 0; i < b.N; i++ {
				pl := planner.New(cfg, s, planner.Options{
					Objective: core.MaxThroughput, Heuristics: planner.AllHeuristics(),
					Workers: 1, DisableBoundPruning: bc.disable,
				})
				res, err := pl.Plan(pool)
				if err != nil {
					b.Fatal(err)
				}
				explored = res.Explored
			}
			b.ReportMetric(float64(explored), "explored/op")
		})
	}
}

// BenchmarkGroundTruthMeasure measures one discrete-event execution — the
// testbed substitute's cost per deployment.
func BenchmarkGroundTruthMeasure(b *testing.B) {
	cfg := model.OPT350M()
	_, gt := benchLab(b, cfg, core.A100)
	plan := benchPlan(cfg, core.A100, 4, 8, 2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gt.Measure(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerHomogeneous128 is the Table 1 headline: Sailor's full
// search on 128 A100 GPUs.
func BenchmarkPlannerHomogeneous128(b *testing.B) {
	cfg := model.OPT350M()
	s, _ := benchLab(b, cfg, core.A100)
	pool := cluster.NewPool().Set(benchZone, core.A100, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := planner.New(cfg, s, planner.Options{
			Objective: core.MaxThroughput, Heuristics: planner.AllHeuristics(),
		})
		if _, err := pl.Plan(pool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerHeterogeneous measures the 2-GPU-type search that
// dominates Sailor's own scalability costs (§5.3).
func BenchmarkPlannerHeterogeneous(b *testing.B) {
	cfg := model.OPT350M()
	s, _ := benchLab(b, cfg, core.A100, core.V100)
	pool := cluster.NewPool().Set(benchZone, core.A100, 64).Set(benchZone, core.V100, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := planner.New(cfg, s, planner.Options{
			Objective: core.MaxThroughput, Heuristics: planner.AllHeuristics(),
		})
		if _, err := pl.Plan(pool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerParallel measures the parallel search engine: the Table 1
// headline pools at workers=1/4/NumCPU. The chosen plan is identical at
// every worker count; only wall-clock changes, which is the speedup the
// perf trajectory tracks.
func BenchmarkPlannerParallel(b *testing.B) {
	cfg := model.OPT350M()
	pools := []struct {
		name string
		gpus []core.GPUType
		pool *cluster.Pool
	}{
		{
			name: "homogeneous128",
			gpus: []core.GPUType{core.A100},
			pool: cluster.NewPool().Set(benchZone, core.A100, 128),
		},
		{
			name: "heterogeneous",
			gpus: []core.GPUType{core.A100, core.V100},
			pool: cluster.NewPool().Set(benchZone, core.A100, 64).Set(benchZone, core.V100, 64),
		},
	}
	workerCounts := []int{1, 4, goruntime.NumCPU()}
	for _, pc := range pools {
		s, _ := benchLab(b, cfg, pc.gpus...)
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("%s/workers=%d", pc.name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pl := planner.New(cfg, s, planner.Options{
						Objective:  core.MaxThroughput,
						Heuristics: planner.AllHeuristics(),
						Workers:    w,
					})
					if _, err := pl.Plan(pc.pool); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPlanBatch measures the facade's many-pools serving shape: 8
// availability snapshots planned concurrently through sailor.PlanBatch.
func BenchmarkPlanBatch(b *testing.B) {
	sys, err := sailor.New(sailor.OPT350M(), []core.GPUType{core.A100})
	if err != nil {
		b.Fatal(err)
	}
	var pools []*cluster.Pool
	for i := 0; i < 8; i++ {
		pools = append(pools, cluster.NewPool().Set(benchZone, core.A100, 16+8*i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, errs := sys.PlanBatch(context.Background(), pools, core.MaxThroughput, core.Constraints{})
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkServicePlanThroughput measures the multi-tenant front door: 4
// concurrent tenants issuing plan requests against one sailor.Service,
// with the cross-tenant planner concurrency bound at 1 and at NumCPU. One
// iteration = one plan request per tenant.
func BenchmarkServicePlanThroughput(b *testing.B) {
	const tenants = 4
	var pools []*cluster.Pool
	for i := 0; i < tenants; i++ {
		pools = append(pools, cluster.NewPool().Set(benchZone, core.A100, 16+8*i))
	}
	for _, maxConc := range []int{1, goruntime.NumCPU()} {
		b.Run(fmt.Sprintf("tenants=%d/max-concurrent=%d", tenants, maxConc), func(b *testing.B) {
			svc := sailor.NewService(sailor.ServiceConfig{Workers: 1, MaxConcurrent: maxConc})
			for i := 0; i < tenants; i++ {
				if err := svc.OpenJob(fmt.Sprintf("tenant-%d", i), sailor.OPT350M(),
					[]core.GPUType{core.A100}, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for t := 0; t < tenants; t++ {
					wg.Add(1)
					go func(t int) {
						defer wg.Done()
						_, err := svc.Plan(context.Background(), fmt.Sprintf("tenant-%d", t),
							pools[t], core.MaxThroughput, core.Constraints{})
						if err != nil {
							b.Error(err)
						}
					}(t)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkFleetRebalance measures the fleet scheduler's preemption-aware
// replanning path: one op = the whole preemption-storm trace driven through
// a shared ledger with N contending jobs (per-job cap 8 GPUs, fleet base
// 4N). Jobs keep their warm caches across ops, so this tracks the warm
// steady state of Service.Rebalance.
func BenchmarkFleetRebalance(b *testing.B) {
	sc, ok := trace.ScenarioByName("preemption-storm")
	if !ok {
		b.Fatal("preemption-storm not registered")
	}
	for _, jobs := range []int{4, 16} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			tr := sc.TraceWith(1, trace.ScenarioOpts{Base: 4 * jobs})
			// Speculation off: this row pins the foreground rebalance cost;
			// the prefetch layer has its own row (BenchmarkReplanSpeculative).
			svc := sailor.NewService(sailor.ServiceConfig{Workers: 1, WithoutSpeculation: true})
			for i := 0; i < jobs; i++ {
				if err := svc.OpenJob(fmt.Sprintf("job-%d", i), sailor.OPT350M(),
					[]core.GPUType{core.A100}, jobs-i); err != nil {
					b.Fatal(err)
				}
			}
			if _, _, err := experiments.DriveFleetStorm(svc, tr, 8); err != nil { // warm the caches
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := experiments.DriveFleetStorm(svc, tr, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetRebalanceCold measures the cold fleet admission pass the
// partitioned rebalance targets: one op = reopen one job per GPU type
// (dropping warm caches and leases), reset the ledger, and run a single
// Rebalance that admits all jobs from scratch. The jobs declare disjoint
// single-type quotas, so the partitioned path searches them concurrently;
// the sequential variant pins the original one-goroutine admission loop.
// Plans and ledger trajectory are byte-identical across variants (asserted
// by TestRebalancePartitionedDeterminism); only wall-clock changes.
func BenchmarkFleetRebalanceCold(b *testing.B) {
	types := []core.GPUType{core.A100, core.V100, core.RTX3090, core.T4}
	pool := cluster.NewPool()
	for _, g := range types {
		pool.Set(benchZone, g, 64)
	}
	for _, bc := range []struct {
		name string
		cfg  sailor.ServiceConfig
	}{
		{"jobs=4/sequential", sailor.ServiceConfig{Workers: 1, MaxConcurrent: 1, SequentialRebalance: true}},
		{fmt.Sprintf("jobs=4/max-concurrent=%d", goruntime.NumCPU()),
			sailor.ServiceConfig{Workers: 1, MaxConcurrent: goruntime.NumCPU()}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			svc := sailor.NewService(bc.cfg)
			m := sailor.OPT350M()
			// Profile the per-type Systems once so ops measure the search,
			// not first-touch profiling.
			if _, _, err := experiments.DriveFleetColdRebalance(svc, m, types, pool); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			var explored, hits int
			for i := 0; i < b.N; i++ {
				var err error
				explored, hits, err = experiments.DriveFleetColdRebalance(svc, m, types, pool)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(explored), "explored/op")
			b.ReportMetric(float64(hits), "cache-hits/op")
		})
	}
}

// replanPools materialises the distinct availability snapshots of a
// preemption-storm trace — the replan sequence the elastic controller
// issues while surviving the churn.
func replanPools(b *testing.B) []*cluster.Pool {
	b.Helper()
	sc, ok := trace.ScenarioByName("preemption-storm")
	if !ok {
		b.Fatal("preemption-storm not registered")
	}
	return sc.Trace(1).DistinctPools()
}

// BenchmarkReplanCold is the controller's pre-warm-start hot path: every
// availability event replans from scratch.
func BenchmarkReplanCold(b *testing.B) {
	cfg := model.OPT350M()
	s, _ := benchLab(b, cfg, core.A100)
	pools := replanPools(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pool := range pools {
			pl := planner.New(cfg, s, planner.Options{
				Objective: core.MaxThroughput, Heuristics: planner.AllHeuristics(),
			})
			if _, err := pl.Plan(pool); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(pools)), "replans/op")
}

// BenchmarkReplanWarm replays the same preemption storm through the
// warm-start path: one planner, a persistent WarmCache, and Replan chained
// from the previously chosen plan. The chosen plans are identical to the
// cold run's (asserted in internal/planner's warm tests); only the search
// cost drops — the acceptance target is >= 2x over BenchmarkReplanCold.
// The delta-scoped probe is disabled so the row keeps measuring the plain
// warm path (BenchmarkReplanIncremental measures the probe).
func BenchmarkReplanWarm(b *testing.B) {
	cfg := model.OPT350M()
	s, _ := benchLab(b, cfg, core.A100)
	pools := replanPools(b)
	pl := planner.New(cfg, s, planner.Options{
		Objective: core.MaxThroughput, Heuristics: planner.AllHeuristics(),
		Warm: planner.NewWarmCache(), DisableIncremental: true,
	})
	var hits, explored int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var prev core.Plan
		hits, explored = 0, 0
		for _, pool := range pools {
			res, err := pl.Replan(prev, pool)
			if err != nil {
				b.Fatal(err)
			}
			prev = res.Plan
			hits += res.CacheHits
			explored += res.Explored
		}
	}
	b.ReportMetric(float64(len(pools)), "replans/op")
	b.ReportMetric(float64(hits), "cache-hits/op")
	b.ReportMetric(float64(explored), "explored/op")
}

// BenchmarkReplanIncremental measures the delta-scoped incremental replan
// path: one op = a descent of one-zone single-GPU shrinks, each replanned
// against the memo of the search one step earlier. The warm cache is
// re-seeded off the clock every op, so no step ever finds its exact keys
// cached and every step exercises the probe rather than a plain warm hit.
// Plans are bit-identical to cold searches (TestIncrementalReplanOracle);
// only the search cost drops.
func BenchmarkReplanIncremental(b *testing.B) {
	cfg := model.OPT350M()
	s, _ := benchLab(b, cfg, core.A100)
	base, steps := experiments.ReplanDescent()
	b.Run("delta=1zone", func(b *testing.B) {
		b.ReportAllocs()
		var hits, explored int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			pl := planner.New(cfg, s, planner.Options{
				Objective: core.MaxThroughput, Heuristics: planner.AllHeuristics(),
				Workers: 1, Warm: planner.NewWarmCache(),
			})
			res, err := pl.Plan(base)
			if err != nil {
				b.Fatal(err)
			}
			prev := res.Plan
			hits, explored = 0, 0
			b.StartTimer()
			for _, pool := range steps {
				res, err := pl.Replan(prev, pool)
				if err != nil {
					b.Fatal(err)
				}
				prev = res.Plan
				hits += res.CacheHits
				explored += res.Explored
			}
		}
		b.ReportMetric(float64(len(steps)), "replans/op")
		b.ReportMetric(float64(hits), "cache-hits/op")
		b.ReportMetric(float64(explored), "explored/op")
	})
}

// BenchmarkReplanSpeculative measures the zero-latency serving path: a
// diurnal-wave replan chain through a sailor.Service whose forecaster has
// locked onto the cycle, so each measured Replan is answered from the
// speculation cache. The prefetches themselves resolve off the clock
// (Quiesce between steps, the deterministic-stepping contract) — what is
// timed is the request latency the caller sees on a forecast hit.
func BenchmarkReplanSpeculative(b *testing.B) {
	sc, ok := trace.ScenarioByName("diurnal-wave")
	if !ok {
		b.Fatal("diurnal-wave not registered")
	}
	pools := sc.TraceWith(1, trace.ScenarioOpts{Horizon: 72 * time.Hour, Base: 16}).DistinctPools()
	b.Run("diurnal-wave", func(b *testing.B) {
		svc := sailor.NewService(sailor.ServiceConfig{Workers: 1, MaxConcurrent: 4})
		if err := svc.OpenJob("bench", sailor.OPT350M(), []core.GPUType{core.A100}, 0); err != nil {
			b.Fatal(err)
		}
		// Two full passes lock the forecaster onto the period and warm the
		// plan cache before the clock starts.
		var prev core.Plan
		for pass := 0; pass < 2; pass++ {
			var err error
			if _, prev, err = experiments.DriveSpeculativeReplans(svc, "bench", pools, prev); err != nil {
				b.Fatal(err)
			}
		}
		hits, replans := 0, 0
		ctx := context.Background()
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, pool := range pools {
				b.StopTimer()
				svc.Quiesce()
				b.StartTimer()
				res, err := svc.Replan(ctx, "bench", prev, pool, core.MaxThroughput, core.Constraints{})
				if err != nil {
					b.Fatal(err)
				}
				if res.SpeculativeHit {
					hits++
				}
				replans++
				prev = res.Plan
			}
		}
		b.StopTimer()
		svc.Quiesce()
		b.ReportMetric(float64(len(pools)), "replans/op")
		b.ReportMetric(100*float64(hits)/float64(replans), "spec-hit-%")
	})
}

// BenchmarkHeuristicAblation quantifies D2: search cost without H2/H3 on a
// small pool where the exhaustive variant still terminates.
func BenchmarkHeuristicAblation(b *testing.B) {
	cfg := model.OPT350M()
	s, _ := benchLab(b, cfg, core.A100)
	pool := cluster.NewPool().Set(benchZone, core.A100, 16)
	for _, bc := range []struct {
		name string
		h    planner.Heuristics
	}{
		{"all-heuristics", planner.AllHeuristics()},
		{"dp-only", planner.Heuristics{H6MergeZones: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pl := planner.New(cfg, s, planner.Options{
					Objective: core.MaxThroughput, Heuristics: bc.h,
				})
				if _, err := pl.Plan(pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMemoryFootprint measures the per-worker estimator (§4.3).
func BenchmarkMemoryFootprint(b *testing.B) {
	cfg := model.GPTNeo27B()
	w := memory.WorkerShape{Layers: 8, StageIdx: 1, PP: 4, TP: 2, MicroBS: 4, NumMicro: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = memory.WorkerFootprint(cfg, w).Total()
	}
}

// BenchmarkRingAllReduceModel measures the collective cost model.
func BenchmarkRingAllReduceModel(b *testing.B) {
	l := hardware.DefaultNetwork().Link(benchZone, benchZone)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = collective.RingAllReduce(l, 512<<20, 16)
	}
}

// Benchmark1F1BMakespan measures the exact DAG evaluation the ground truth
// uses, at the scale of one Figure-7 pipeline.
func Benchmark1F1BMakespan(b *testing.B) {
	sched, err := pipeline.OneFOneB(8, 64)
	if err != nil {
		b.Fatal(err)
	}
	f := func(int, int) float64 { return 0.010 }
	g := func(int, int) float64 { return 0.020 }
	c := func(int) float64 { return 0.001 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Makespan(sched, f, g, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecomputeAblation quantifies the rematerialisation extension:
// iteration time and peak memory with and without activation recomputation
// on the same plan (paper §6 future work, implemented here).
func BenchmarkRecomputeAblation(b *testing.B) {
	cfg := model.OPT350M()
	s, _ := benchLab(b, cfg, core.A100)
	for _, re := range []bool{false, true} {
		name := "full-activations"
		if re {
			name = "recompute"
		}
		b.Run(name, func(b *testing.B) {
			plan := benchPlan(cfg, core.A100, 4, 4, 1, 2)
			plan.Recompute = re
			var est core.Estimate
			var err error
			for i := 0; i < b.N; i++ {
				est, err = s.Estimate(plan)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(est.IterTime, "iter-sec")
			b.ReportMetric(float64(est.PeakMemory)/(1<<30), "peak-GiB")
		})
	}
}

// BenchmarkProfilerCollect measures a full profiling campaign for two GPU
// types (§4.1).
func BenchmarkProfilerCollect(b *testing.B) {
	cfg := model.OPT350M()
	for i := 0; i < b.N; i++ {
		if _, err := profiler.Collect(cfg, []core.GPUType{core.A100, core.V100}, nil, profiler.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
