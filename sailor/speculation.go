package sailor

// Speculative plan prefetch: the zero-latency reconfiguration layer of the
// Service. Each job's sequence of requested pools feeds a deterministic
// trace.Forecaster; after every replan the service predicts the next few
// pools the job is likely to see and — when the planner semaphore has idle
// capacity — precomputes their plans into a small per-job speculation
// cache. A replan whose (pool, previous plan, objective, constraints) key
// was precomputed returns instantly with the cached result, marked
// Result.SpeculativeHit; everything else falls through to the ordinary
// search, and a miss purges the job's remaining entries (the forecast was
// wrong, so whatever else it predicted is stale too). In fleet mode the
// service forecasts the ledger's capacity trajectory instead: FleetEvent
// prefetches the replans its broken leases will need at the next
// Rebalance, and a capacity level the forecast did not predict invalidates
// every job's speculation.
//
// Exactness: a prefetched result is a real planner search over a clone of
// the job's warm cache — the exact cache state the foreground search would
// start from — with the exact options and pool bytes of the request it
// predicts. On a hit the clone (now holding the search's merge) is adopted
// as the job's cache, so the cache trajectory, plans, estimates, and
// search telemetry all match what the foreground search would have
// produced byte for byte (TestWireDeterminism still holds with the layer
// on); on a miss every clone is discarded and the job's cache is untouched.
// Only Result.SpeculativeHit distinguishes a served prefetch.
// ServiceConfig.WithoutSpeculation ablates the whole layer.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/fleet"
	"repro/internal/planner"
	"repro/internal/trace"
)

// specForecastK is how many forecast pools each prefetch round speculates
// on: the periodic prediction plus one frequency-ranked fallback.
const specForecastK = 2

// specMaxEntries bounds one job's speculation cache; beyond it the oldest
// entry is dropped (the forecast window moves with the trace, so old
// predictions are the least likely to hit).
const specMaxEntries = 64

// specKey identifies one precomputable replan: the exact pool bytes, the
// plan being replanned from, and the objective/constraints of the request.
// Any difference in what the foreground search would see is a different key.
func specKey(pool *Pool, prev Plan, obj Objective, cons Constraints) string {
	return fmt.Sprintf("%v|%+v|%s|%s", obj, cons, planner.PlanKey(prev), pool.String())
}

// specEntry is one speculated replan. done closes when the prefetch
// resolves; res/ok are valid only after. An entry whose prefetch found no
// idle planner capacity (or whose search failed) resolves with ok=false.
// base is the job's warm cache at launch and warm the clone the prefetch
// searched into; both are written before the worker starts.
type specEntry struct {
	done chan struct{}
	base *planner.WarmCache
	warm *planner.WarmCache
	res  PlanResult
	ok   bool
}

// specCache is one job's bounded speculation cache. The zero value is
// ready to use (restored jobs never touch their literal constructors).
type specCache struct {
	mu      sync.Mutex
	entries map[string]*specEntry
	order   []string // insertion order, oldest first
}

// begin registers a pending entry under key and returns it, or nil when the
// key is already present (an identical prefetch is in flight or done).
func (c *specCache) begin(key string) *specEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = map[string]*specEntry{}
	}
	if _, ok := c.entries[key]; ok {
		return nil
	}
	if len(c.order) == specMaxEntries {
		delete(c.entries, c.order[0])
		c.order = c.order[:copy(c.order, c.order[1:])]
	}
	e := &specEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	return e
}

// take removes and returns the entry under key, nil when absent. The
// caller joins e.done; a pending prefetch is consumed the moment its
// consumer commits to waiting for it.
func (c *specCache) take(key string) *specEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil
	}
	delete(c.entries, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return e
}

// purge drops every entry. In-flight prefetches keep running (their warm
// merges are exact and still useful); they just can no longer be consulted.
func (c *specCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = nil
	c.order = nil
}

// speculative reports whether the speculation layer is on.
func (s *Service) speculative() bool { return !s.cfg.WithoutSpeculation }

// searchOpts is plannerOpts plus the service-level ablation knobs: every
// search the service runs — foreground or prefetch — goes through it, so
// WithoutIncremental disables the delta-scoped probe uniformly.
func (s *Service) searchOpts(sys *System, obj Objective, cons Constraints) planner.Options {
	opts := sys.plannerOpts(obj, cons, sys.workerCount())
	if s.cfg.WithoutIncremental {
		opts.DisableIncremental = true
	}
	return opts
}

// consultSpec answers a replan from the job's speculation cache when the
// exact request was precomputed. A pending prefetch is joined, not raced:
// the result it is already computing is the result the foreground search
// would compute. A miss purges the job's cache — the forecast that seeded
// it mispredicted, so whatever else it predicted from the same state is
// stale too.
func (s *Service) consultSpec(j *serviceJob, pool *Pool, prev Plan, obj Objective, cons Constraints) (PlanResult, bool) {
	e := j.spec.take(specKey(pool, prev, obj, cons))
	if e != nil {
		<-e.done
		if e.ok {
			s.specHits.Add(1)
			s.adoptSpec(j, e)
			res := e.res
			res.SpeculativeHit = true
			return res, true
		}
	}
	s.specMisses.Add(1)
	j.spec.purge()
	return PlanResult{}, false
}

// adoptSpec installs a hit's post-search warm clone as the job's cache —
// exactly the merge the foreground search would have published — unless a
// concurrent request already advanced the cache past the prefetch's base
// (then the clone is just dropped; cached entries are pure functions of
// their keys, so nothing is lost but reuse).
func (s *Service) adoptSpec(j *serviceJob, e *specEntry) {
	s.mu.Lock()
	if j.warm == e.base {
		j.warm = e.warm
	}
	s.mu.Unlock()
}

// warmRef reads the job's current warm cache under the service lock:
// speculative adoption swaps the pointer, so bare reads would race.
func (s *Service) warmRef(j *serviceJob) *planner.WarmCache {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.warm
}

// specTask is one pool a prefetch worker will speculate on.
type specTask struct {
	e    *specEntry
	pool *Pool
}

// observeReplan feeds a completed replan into the job's forecaster and
// launches a prefetch round for the predicted next pools. Called after the
// foreground result is in hand (and its planner slot released), so the
// prefetch competes only for idle capacity.
func (s *Service) observeReplan(name string, j *serviceJob, pool *Pool, plan Plan, obj Objective, cons Constraints) {
	if !s.speculative() {
		return
	}
	s.mu.Lock()
	if s.jobs[name] != j {
		s.mu.Unlock()
		return
	}
	if j.forecast == nil {
		j.forecast = trace.NewForecaster()
	}
	j.forecast.ObservePool(pool)
	preds := j.forecast.Forecast(specForecastK)
	base := j.warm
	s.mu.Unlock()
	var tasks []specTask
	for _, p := range preds {
		if e := j.spec.begin(specKey(p, plan, obj, cons)); e != nil {
			e.base, e.warm = base, base.Clone()
			tasks = append(tasks, specTask{e, p})
		}
	}
	s.launchPrefetch(j, tasks, plan, obj, cons, nil)
}

// launchPrefetch runs tasks on one background worker, sequentially — one
// worker per round holds at most one planner slot, so a round can always
// proceed whenever the service is otherwise idle, at any MaxConcurrent.
// led, when non-nil, makes the searches fleet-style (capacity guard over
// the task pool).
func (s *Service) launchPrefetch(j *serviceJob, tasks []specTask, prev Plan, obj Objective, cons Constraints, led *fleet.Ledger) {
	if len(tasks) == 0 {
		return
	}
	s.specWG.Add(1)
	go func() {
		defer s.specWG.Done()
		for _, t := range tasks {
			s.prefetchOne(j, t, prev, obj, cons, led)
		}
	}()
}

// prefetchOne precomputes one speculated replan. The planner slot is taken
// non-blocking: speculation only ever uses capacity the foreground load
// left idle, and a busy semaphore resolves the entry as a miss rather than
// queueing work the forecast may not even need.
func (s *Service) prefetchOne(j *serviceJob, t specTask, prev Plan, obj Objective, cons Constraints, led *fleet.Ledger) {
	defer close(t.e.done)
	select {
	case s.sem <- struct{}{}:
	default:
		return
	}
	defer func() { <-s.sem }()
	sys, err := s.jobSystem(j)
	if err != nil {
		return
	}
	opts := s.searchOpts(sys, obj, cons)
	opts.Warm = t.e.warm
	if led != nil {
		opts.Guard = planner.NewCapacityGuard(t.pool)
	}
	pl := planner.New(sys.Model, sys.simulator, opts)
	res, err := pl.ReplanContext(context.Background(), prev, t.pool)
	if err != nil {
		return
	}
	t.e.res, t.e.ok = res, true
	s.specPrecomputed.Add(1)
}

// observeFleetEvent is FleetEvent's speculation hook. The service-level
// forecaster watches the ledger's capacity trajectory; a capacity level the
// previous forecast did not predict invalidates every job's speculation
// (the cluster moved somewhere the precomputed plans never anticipated).
// Then each job whose lease the event broke gets a prefetch round for the
// warm replan it will run at the next Rebalance, against its current
// ledger view.
func (s *Service) observeFleetEvent(led *fleet.Ledger, broken []fleet.Lease) {
	if !s.speculative() {
		return
	}
	capacity := led.Capacity()
	s.mu.Lock()
	if s.fleet != led {
		s.mu.Unlock()
		return
	}
	predicted := s.fleetPredicted[capacity.String()]
	if s.fleetForecast == nil {
		s.fleetForecast = trace.NewForecaster()
	}
	s.fleetForecast.ObservePool(capacity)
	preds := s.fleetForecast.Forecast(specForecastK)
	s.fleetPredicted = make(map[string]bool, len(preds))
	for _, p := range preds {
		s.fleetPredicted[p.String()] = true
	}
	type cand struct {
		name string
		j    *serviceJob
		base *planner.WarmCache
		prev Plan
		obj  Objective
		cons Constraints
	}
	var jobs []*serviceJob
	var cands []cand
	for _, le := range broken {
		if j, ok := s.jobs[le.Job]; ok && len(j.lastPlan.Stages) > 0 {
			cands = append(cands, cand{le.Job, j, j.warm, j.lastPlan, j.lastObj, j.lastCons})
		}
	}
	if !predicted {
		for _, j := range s.jobs {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.spec.purge()
	}
	for _, c := range cands {
		view := led.ViewForTypes(c.name, c.j.gpus)
		if view.TotalGPUs() == 0 {
			continue
		}
		if e := c.j.spec.begin(specKey(view, c.prev, c.obj, c.cons)); e != nil {
			e.base, e.warm = c.base, c.base.Clone()
			s.launchPrefetch(c.j, []specTask{{e, view}}, c.prev, c.obj, c.cons, led)
		}
	}
}

// Quiesce blocks until every in-flight speculative prefetch has resolved.
// Replay tools and benchmarks call it between steps so the speculation
// cache — and the warm-cache trajectory behind it — is a deterministic
// function of the request history rather than of scheduling.
func (s *Service) Quiesce() { s.specWG.Wait() }
