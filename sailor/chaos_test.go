package sailor

// Chaos acceptance (e2e): the preemption-storm 3-job fleet replay driven
// through a wire client against a durable sailor server, under a scripted
// fault schedule — a journal append-failure window during step 1, a
// connection-cut storm around step 2's rebalance (client request cut
// mid-frame, server reply cut post-commit, one refused redial), and a
// kill -9 crash + same-address recovery before step 3. The surviving
// ledger trajectory (per-step version + lease table) and the final lease
// table must be byte-identical to the undisturbed run, at workers=1 and
// workers=8; the fault schedule and the fault log are pinned as goldens,
// and the log must replay byte-for-byte across runs and worker counts.
//
// Fault coordinates are deterministic because the driver is sequential
// and every client request is one buffered write: "the Nth write on conn
// K" counts rpc calls. Server-side faults only fire at write #1 of a
// fresh connection (reply byte-lengths vary run to run), and the journal
// fault is indexed by append count discovered from the undisturbed
// baseline — after the fault window no journal-indexed rule may fire,
// because poisoned appends short-circuit before reaching the injector.
//
// The disturbed rebalance is retried only at proven-idempotent points:
// the request cut happens before the server decodes it (so the retry
// applies the pass exactly once), and the reply cut happens after the
// commit (so the retry finds the work done and mutates nothing — the
// ledger version trajectory stays on the baseline).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/persist"
	"repro/internal/testutil"
)

const (
	// chaosFaultStep is the step whose first journal append fails,
	// poisoning the journal until the heal rotation after the step.
	chaosFaultStep = 1
	// chaosDisturbedStep is the step whose rebalance rides the
	// connection-cut storm; its rebalance reply is lost, so only its
	// surviving ledger trajectory is compared.
	chaosDisturbedStep = 2
	// chaosCrashStep is the step before which the daemon is killed (no
	// final snapshot) and recovered on the same address.
	chaosCrashStep = 3
)

// chaosSchedule scripts the storm. appendsAtFaultStep is the injector's
// append count at the start of the fault step (discovered from the
// baseline run); cutWrite is the client conn-1 write index of the
// disturbed step's rebalance request (counted from the call sequence).
func chaosSchedule(appendsAtFaultStep, cutWrite int) *chaos.Schedule {
	return &chaos.Schedule{
		Name: "preemption-storm-chaos",
		Description: "journal fault window in step 1, conn-cut storm around the " +
			"step-2 rebalance, kill -9 before step 3",
		Seed: 1,
		Faults: []chaos.Rule{
			{ID: "journal-window", Target: chaos.TargetJournal, Nth: appendsAtFaultStep + 1,
				Action: chaos.ActionFail, OffsetBytes: 5},
			{ID: "cut-rebalance-request", Target: chaos.TargetConn, Side: chaos.SideClient,
				Conn: 1, Nth: cutWrite, Action: chaos.ActionCut, OffsetBytes: 10},
			{ID: "cut-rebalance-reply", Target: chaos.TargetConn, Side: chaos.SideServer,
				Conn: 2, Nth: 1, Action: chaos.ActionCut, OffsetBytes: 9},
			{ID: "refuse-redial", Target: chaos.TargetListener, Nth: 3, Action: chaos.ActionRefuse},
		},
	}
}

// rebalanceCutWrite counts the client rpc calls preceding the disturbed
// step's rebalance — every call is exactly one write on conn 1.
func rebalanceCutWrite(groups [][]TraceEvent) int {
	n := 1 + crashJobs // SetFleet + OpenJobs
	for _, g := range groups[:chaosDisturbedStep] {
		n += len(g) + 2 // FleetEvents + Rebalance + FleetStats
	}
	n += 2                               // the Stats pair bracketing the heal rotation
	n += len(groups[chaosDisturbedStep]) // the disturbed step's own events
	return n + 1                         // the rebalance request itself
}

// chaosRun is one wire-driven replay's observable record.
type chaosRun struct {
	steps      []crashStep
	appendsAt  []int  // injector append count at the start of each step
	faultLog   []byte // canonical fault log
	finalFleet []byte // canonical final FleetStats (the lease table)
}

// driveChaosReplay boots a durable sailor server behind the injector's
// listener wrapper, drives the full preemption-storm replay through a
// retrying wire client whose connections the injector also wraps, and —
// when a schedule is armed — heals the journal after the fault step and
// kill -9s + recovers the daemon on the same address before the crash
// step. A nil schedule is the undisturbed baseline over the identical
// call sequence.
func driveChaosReplay(t *testing.T, workers int, sched *chaos.Schedule) chaosRun {
	t.Helper()
	groups, gpus, cap := crashTrace(t)
	inj, err := chaos.NewInjector(sched)
	if err != nil {
		t.Fatal(err)
	}
	chaosOn := sched != nil

	dir := filepath.Join(t.TempDir(), "state")
	pcfg := persist.Config{Fsync: persist.FsyncNone, WrapJournal: inj.WrapJournal}
	store, recovered, err := persist.Open(dir, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != nil {
		t.Fatalf("fresh dir recovered state: %+v", recovered)
	}
	svc := NewService(ServiceConfig{Workers: workers, MaxConcurrent: 4})
	if err := store.Rotate(svc.PersistState()); err != nil {
		t.Fatal(err)
	}
	svc.SetRecorder(store)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	srv := NewServer(inj.WrapListener(lis), svc)
	go srv.Serve()

	c, err := DialWith(addr, DialConfig{
		Retry: RetryPolicy{MaxAttempts: 6, BaseBackoff: 2 * time.Millisecond,
			MaxBackoff: 10 * time.Millisecond, RetryMutating: true},
		Dialer: func(a string) (net.Conn, error) {
			nc, err := net.Dial("tcp", a)
			if err != nil {
				return nil, err
			}
			return inj.WrapConn(nc), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.SetFleet(NewPool(), cap); err != nil {
		t.Fatal(err)
	}
	openCrashJobs(t, c, gpus)

	var run chaosRun
	for i, g := range groups {
		if chaosOn && i == chaosCrashStep {
			// Kill -9: no final snapshot; journal abandoned mid-generation.
			srv.Close()
			store.Close()
			store2, rec2, err := persist.Open(dir, pcfg)
			if err != nil {
				t.Fatal(err)
			}
			if rec2 == nil {
				t.Fatal("no recovered state after the chaos crash")
			}
			if rec2.RecordsReplayed == 0 {
				t.Error("chaos recovery replayed zero records — the healed journal lost the post-heal steps")
			}
			svc2 := NewService(ServiceConfig{Workers: workers, MaxConcurrent: 4})
			if err := svc2.Restore(rec2); err != nil {
				t.Fatal(err)
			}
			if err := store2.Rotate(svc2.PersistState()); err != nil {
				t.Fatal(err)
			}
			svc2.SetRecorder(store2)
			// Reboot on the same address: the client's next call re-dials.
			lis2, err := net.Listen("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			srv2 := NewServer(inj.WrapListener(lis2), svc2)
			go srv2.Serve()
			svc, store, srv = svc2, store2, srv2
		}
		run.appendsAt = append(run.appendsAt, inj.Counters().Appends)
		run.steps = append(run.steps, driveGroup(t, c, g))
		if i == chaosFaultStep {
			// The journal fault window: the sticky append error must be
			// visible over the wire, and the heal rotation must clear it.
			st, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if chaosOn {
				if !strings.Contains(st.JournalError, "journal-window") {
					t.Fatalf("JournalError = %q after the fault window, want the chaos rule named", st.JournalError)
				}
			} else if st.JournalError != "" {
				t.Fatalf("baseline JournalError = %q, want empty", st.JournalError)
			}
			if err := store.Rotate(svc.PersistState()); err != nil {
				t.Fatal(err)
			}
			st, err = c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.JournalError != "" {
				t.Fatalf("JournalError = %q after the heal rotation, want empty", st.JournalError)
			}
		}
	}

	fst, err := c.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	final, err := json.MarshalIndent(fst, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	run.finalFleet = append(final, '\n')
	run.faultLog, err = inj.MarshalLog()
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	store.Close()
	return run
}

// TestChaosPreemptionStormE2E is the chaos acceptance harness.
func TestChaosPreemptionStormE2E(t *testing.T) {
	groups, gpus, cap := crashTrace(t)
	full := runUninterrupted(t, groups, gpus, cap)

	logs := map[int][]byte{}
	finals := map[int][]byte{}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Undisturbed baseline over the wire: byte-identical to the
			// in-process replay, and the coordinate discovery for the
			// schedule's journal rule.
			base := driveChaosReplay(t, workers, nil)
			if got, want := marshalCrashSteps(t, base.steps), marshalCrashSteps(t, full); !bytes.Equal(got, want) {
				t.Fatalf("wire baseline diverged from the in-process replay:\n--- wire ---\n%s\n--- in-process ---\n%s", got, want)
			}
			if n := len(base.faultLog); !bytes.Equal(base.faultLog, []byte("[]\n")) {
				t.Fatalf("baseline fault log not empty (%d bytes): %s", n, base.faultLog)
			}

			sched := chaosSchedule(base.appendsAt[chaosFaultStep], rebalanceCutWrite(groups))
			doc, err := chaos.Marshal(sched)
			if err != nil {
				t.Fatal(err)
			}
			testutil.CheckGolden(t, "chaos-preemption-storm.schedule.json", doc)
			// Run what the committed file says, not the in-memory struct.
			loaded, err := chaos.Unmarshal(doc)
			if err != nil {
				t.Fatal(err)
			}

			run := driveChaosReplay(t, workers, loaded)

			// Surviving ledger trajectory: per-step version + lease table
			// byte-identical to the undisturbed run at every step.
			for i := range full {
				if run.steps[i].Version != full[i].Version {
					t.Errorf("step %d: ledger version %d under chaos, want %d", i, run.steps[i].Version, full[i].Version)
				}
				got, err := json.Marshal(run.steps[i].Leases)
				if err != nil {
					t.Fatal(err)
				}
				want, err := json.Marshal(full[i].Leases)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("step %d: lease table diverged under chaos:\n%s\nvs\n%s", i, got, want)
				}
			}
			// Undisturbed steps are byte-identical end to end; the disturbed
			// step's rebalance reply was lost (its retry observes the pass
			// already committed), so only its trajectory above is compared.
			for i := range full {
				if i == chaosDisturbedStep {
					continue
				}
				got := marshalCrashSteps(t, []crashStep{run.steps[i]})
				want := marshalCrashSteps(t, []crashStep{full[i]})
				if !bytes.Equal(got, want) {
					t.Errorf("step %d diverged under chaos:\n--- chaos ---\n%s\n--- baseline ---\n%s", i, got, want)
				}
			}
			if !bytes.Equal(run.finalFleet, base.finalFleet) {
				t.Errorf("final lease table diverged under chaos:\n--- chaos ---\n%s\n--- baseline ---\n%s", run.finalFleet, base.finalFleet)
			}

			// The fault log is replayable byte-for-byte: pinned as a golden,
			// and identical across worker counts (asserted below).
			testutil.CheckGolden(t, "chaos-preemption-storm.faultlog.json", run.faultLog)
			logs[workers] = run.faultLog
			finals[workers] = run.finalFleet
		})
	}
	if a, b := logs[1], logs[8]; a != nil && b != nil && !bytes.Equal(a, b) {
		t.Errorf("fault logs differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", a, b)
	}
	if a, b := finals[1], finals[8]; a != nil && b != nil && !bytes.Equal(a, b) {
		t.Errorf("final lease tables differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", a, b)
	}
}
