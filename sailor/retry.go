package sailor

// The client's resilience layer: typed-error classification, capped
// exponential backoff with deterministic seeded jitter, and automatic
// re-dial. Only errors that are provably transport- or load-shaped retry
// — rpc.ErrConnectionLost (the conn died mid-call), rpc.ErrServerClosed
// (graceful shutdown; the daemon restarts or a peer takes over), and
// ErrOverloaded (the planner queue shed the request; back off and come
// back). Application errors, version mismatches, and the caller's own
// deadline never retry. Idempotent reads (Plan, Replan, Simulate, Stats,
// FleetStats) retry by default; mutating calls (OpenJob, CloseJob,
// SetFleet, FleetEvent, Rebalance) retry only when the caller opts in
// with RetryPolicy.RetryMutating, because a retry of a mutation that was
// applied before its reply was lost applies it twice.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/rpc"
)

// RetryPolicy tunes the client's retry loop. The zero value is a working
// default: 4 attempts, 25ms base backoff doubling to a 2s cap, seed 1,
// mutating calls not retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call, first included
	// (0 = 4; 1 = never retry).
	MaxAttempts int
	// BaseBackoff is the pre-jitter delay before the first retry; it
	// doubles each attempt (0 = 25ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the pre-jitter delay (0 = 2s).
	MaxBackoff time.Duration
	// Seed drives the jitter: each backoff sleeps a duration drawn
	// uniformly from [d/2, d) by a client-local seeded source, so a
	// client's retry timing replays exactly (0 = 1).
	Seed uint64
	// RetryMutating opts mutating calls (OpenJob, CloseJob, SetFleet,
	// FleetEvent, Rebalance) into the retry loop. Off by default: a
	// mutation whose reply was lost may have been applied, and retrying
	// it re-applies it. Turn this on only when the workload makes every
	// mutation idempotent (or the caller reconciles duplicates).
	RetryMutating bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// DialConfig tunes DialWith. The zero value is a working default.
type DialConfig struct {
	// Timeout bounds each dial — the eager one in DialWith and every
	// re-dial the retry loop performs (0 = 10s).
	Timeout time.Duration
	// Retry is the client's retry policy.
	Retry RetryPolicy
	// Dialer, when set, replaces the TCP dialer — the seam fault
	// injectors and in-memory transports plug into. The returned conn is
	// driven by an rpc.Client; Timeout is the caller's to honor.
	Dialer func(addr string) (net.Conn, error)
}

func (c DialConfig) withDefaults() DialConfig {
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// Dial connects to a sailor-serve daemon at addr (host:port) with the
// default DialConfig.
func Dial(addr string) (*Client, error) { return DialWith(addr, DialConfig{}) }

// DialWith connects to a sailor-serve daemon at addr. The dial itself is
// eager and does not retry — a daemon that is down fails fast — but every
// call on the returned client runs under cfg.Retry, re-dialing a died
// connection between attempts.
func DialWith(addr string, cfg DialConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	c := &Client{addr: addr, cfg: cfg, rng: rand.New(rand.NewSource(int64(cfg.Retry.Seed)))}
	rc, err := c.dialRPC()
	if err != nil {
		return nil, fmt.Errorf("sailor: dial %s: %w", addr, err)
	}
	c.rpc = rc
	return c, nil
}

// retryable reports whether an error is transport- or load-shaped: the
// classes that a fresh attempt (on a fresh connection, after backoff) can
// plausibly cure.
func retryable(err error) bool {
	return errors.Is(err, rpc.ErrConnectionLost) ||
		errors.Is(err, rpc.ErrServerClosed) ||
		errors.Is(err, rpc.ErrOverloaded)
}

// dialRPC performs one dial attempt through the configured dialer.
func (c *Client) dialRPC() (*rpc.Client, error) {
	if c.cfg.Dialer != nil {
		nc, err := c.cfg.Dialer(c.addr)
		if err != nil {
			return nil, err
		}
		return rpc.NewClient(nc), nil
	}
	return rpc.DialTimeout(c.addr, c.cfg.Timeout)
}

// conn returns the live rpc client, re-dialing if the previous connection
// was dropped. A failed re-dial comes back wrapped as ErrConnectionLost,
// so the retry loop classifies it as retryable and backs off.
func (c *Client) conn() (*rpc.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("sailor: client is closed")
	}
	if c.rpc != nil {
		return c.rpc, nil
	}
	rc, err := c.dialRPC()
	if err != nil {
		return nil, fmt.Errorf("sailor: redial %s: %w (%v)", c.addr, rpc.ErrConnectionLost, err)
	}
	c.rpc = rc
	return rc, nil
}

// drop discards a died connection so the next attempt re-dials. The
// pointer comparison keeps a slow call from dropping a successor
// connection a concurrent call already established.
func (c *Client) drop(rc *rpc.Client) {
	c.mu.Lock()
	if c.rpc == rc {
		c.rpc = nil
	}
	c.mu.Unlock()
	rc.Close()
}

// backoff returns the jittered sleep before retry number attempt (1 for
// the first retry): the capped exponential d = min(base<<(attempt-1),
// max), jittered into [d/2, d) by the client's seeded source.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.Retry.BaseBackoff << (attempt - 1)
	if d > c.cfg.Retry.MaxBackoff || d <= 0 {
		d = c.cfg.Retry.MaxBackoff
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	c.mu.Lock()
	j := half + time.Duration(c.rng.Int63n(int64(half)))
	c.mu.Unlock()
	return j
}

// call is the retry loop every API method routes through. Idempotent
// calls retry on retryable errors up to MaxAttempts; mutating calls
// return the first error unless the policy opts them in.
func (c *Client) call(ctx context.Context, method string, req, resp any, mutating bool) error {
	pol := c.cfg.Retry
	for attempt := 1; ; attempt++ {
		rc, err := c.conn()
		if err == nil {
			err = rc.CallContext(ctx, method, req, resp)
			if err == nil {
				return nil
			}
			if errors.Is(err, rpc.ErrConnectionLost) || errors.Is(err, rpc.ErrServerClosed) {
				c.drop(rc)
			}
		}
		if !retryable(err) || (mutating && !pol.RetryMutating) {
			return err
		}
		if attempt >= pol.MaxAttempts {
			return fmt.Errorf("sailor: %s failed after %d attempts: %w", method, attempt, err)
		}
		select {
		case <-time.After(c.backoff(attempt)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
