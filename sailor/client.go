package sailor

// Client is the wire-side implementation of API: it speaks the versioned
// request/response messages of internal/wire over the internal/rpc framing
// to a sailor-serve daemon (or any Server). One Client multiplexes
// concurrent calls over a single connection.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// Client drives a remote Service. Create one with Dial; Close releases the
// connection.
type Client struct {
	rpc *rpc.Client
}

var _ API = (*Client)(nil)

// Dial connects to a sailor-serve daemon at addr (host:port).
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("sailor: dial %s: %w", addr, err)
	}
	return &Client{rpc: c}, nil
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() error { return c.rpc.Close() }

// OpenJob implements API over the wire.
func (c *Client) OpenJob(job string, m Model, gpus []GPUType, priority int) error {
	names := make([]string, len(gpus))
	for i, g := range gpus {
		names[i] = string(g)
	}
	req := wire.OpenJobRequest{V: wire.Version, Job: job, Model: wire.FromModel(m), GPUs: names, Priority: priority}
	var resp wire.OpenJobResponse
	if err := c.rpc.Call(wire.MethodOpenJob, req, &resp); err != nil {
		return err
	}
	return wire.Check(resp.V)
}

// SetFleet implements API over the wire.
func (c *Client) SetFleet(capacity *Pool, jobCapGPUs int) error {
	req := wire.SetFleetRequest{V: wire.Version, Capacity: wire.FromPool(capacity), JobCapGPUs: jobCapGPUs}
	var resp wire.SetFleetResponse
	if err := c.rpc.Call(wire.MethodSetFleet, req, &resp); err != nil {
		return err
	}
	return wire.Check(resp.V)
}

// FleetEvent implements API over the wire.
func (c *Client) FleetEvent(ev TraceEvent) ([]LeaseInfo, error) {
	req := wire.FleetEventRequest{V: wire.Version, Event: wire.FromFleetEvent(ev)}
	var resp wire.FleetEventResponse
	if err := c.rpc.Call(wire.MethodFleetEvent, req, &resp); err != nil {
		return nil, err
	}
	if err := wire.Check(resp.V); err != nil {
		return nil, err
	}
	return resp.Broken, nil
}

// Rebalance implements API over the wire; see Plan for context semantics.
func (c *Client) Rebalance(ctx context.Context) ([]RebalanceStep, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var resp wire.RebalanceResponse
	if err := c.rpc.Call(wire.MethodRebalance, wire.RebalanceRequest{V: wire.Version}, &resp); err != nil {
		return nil, err
	}
	if err := wire.Check(resp.V); err != nil {
		return nil, err
	}
	return resp.Steps, nil
}

// FleetStats implements API over the wire.
func (c *Client) FleetStats() (FleetStats, error) {
	var resp wire.FleetStatsResponse
	if err := c.rpc.Call(wire.MethodFleetStats, wire.FleetStatsRequest{V: wire.Version}, &resp); err != nil {
		return FleetStats{}, err
	}
	if err := wire.Check(resp.V); err != nil {
		return FleetStats{}, err
	}
	return resp.Stats, nil
}

// Plan implements API over the wire. The context gates only the local
// send: cancellation is not yet propagated to the daemon's search.
func (c *Client) Plan(ctx context.Context, job string, pool *Pool, obj Objective, cons Constraints) (PlanResult, error) {
	if err := ctx.Err(); err != nil {
		return PlanResult{}, err
	}
	req := wire.PlanRequest{
		V: wire.Version, Job: job,
		Pool:        wire.FromPool(pool),
		Objective:   obj.String(),
		Constraints: wire.FromConstraints(cons),
	}
	var resp wire.PlanResponse
	if err := c.rpc.Call(wire.MethodPlan, req, &resp); err != nil {
		return PlanResult{}, err
	}
	if err := wire.Check(resp.V); err != nil {
		return PlanResult{}, err
	}
	return resp.Result.Result(), nil
}

// Replan implements API over the wire; see Plan for context semantics.
func (c *Client) Replan(ctx context.Context, job string, prev Plan, pool *Pool, obj Objective, cons Constraints) (PlanResult, error) {
	if err := ctx.Err(); err != nil {
		return PlanResult{}, err
	}
	req := wire.ReplanRequest{
		V: wire.Version, Job: job,
		Prev:        wire.FromPlan(prev),
		Pool:        wire.FromPool(pool),
		Objective:   obj.String(),
		Constraints: wire.FromConstraints(cons),
	}
	var resp wire.PlanResponse
	if err := c.rpc.Call(wire.MethodReplan, req, &resp); err != nil {
		return PlanResult{}, err
	}
	if err := wire.Check(resp.V); err != nil {
		return PlanResult{}, err
	}
	return resp.Result.Result(), nil
}

// Simulate implements API over the wire.
func (c *Client) Simulate(job string, plan Plan) (Estimate, error) {
	req := wire.SimulateRequest{V: wire.Version, Job: job, Plan: wire.FromPlan(plan)}
	var resp wire.SimulateResponse
	if err := c.rpc.Call(wire.MethodSimulate, req, &resp); err != nil {
		return Estimate{}, err
	}
	if err := wire.Check(resp.V); err != nil {
		return Estimate{}, err
	}
	return resp.Estimate.Core(), nil
}

// CloseJob implements API over the wire.
func (c *Client) CloseJob(job string) error {
	req := wire.CloseJobRequest{V: wire.Version, Job: job}
	var resp wire.CloseJobResponse
	if err := c.rpc.Call(wire.MethodCloseJob, req, &resp); err != nil {
		return err
	}
	return wire.Check(resp.V)
}

// Stats implements API over the wire.
func (c *Client) Stats() (ServiceStats, error) {
	var resp wire.StatsResponse
	if err := c.rpc.Call(wire.MethodStats, wire.StatsRequest{V: wire.Version}, &resp); err != nil {
		return ServiceStats{}, err
	}
	if err := wire.Check(resp.V); err != nil {
		return ServiceStats{}, err
	}
	return resp.Stats, nil
}

// ParseObjective resolves an objective name ("max-throughput", "min-cost")
// to the typed Objective — the names CLIs and wire messages carry.
func ParseObjective(s string) (Objective, error) { return core.ParseObjective(s) }
