package sailor

// Client is the wire-side implementation of API: it speaks the versioned
// request/response messages of internal/wire over the internal/rpc framing
// to a sailor-serve daemon (or any Server). One Client multiplexes
// concurrent calls over a single connection; when that connection dies,
// the retry loop in retry.go re-dials and (for idempotent calls) retries
// with capped, seeded-jitter exponential backoff. Context deadlines ride
// the wire: the server honors them end to end, cutting searches short
// (and degrading to the warm incumbent where it can).

import (
	"context"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// Client drives a remote Service. Create one with Dial or DialWith; Close
// releases the connection.
type Client struct {
	addr string
	cfg  DialConfig

	mu     sync.Mutex
	rpc    *rpc.Client
	rng    *rand.Rand
	closed bool
}

var _ API = (*Client)(nil)

// Close tears the connection down; in-flight calls fail, and no further
// re-dials are attempted.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	rc := c.rpc
	c.rpc = nil
	c.mu.Unlock()
	if rc == nil {
		return nil
	}
	return rc.Close()
}

// OpenJob implements API over the wire. Mutating: retried only under
// RetryPolicy.RetryMutating.
func (c *Client) OpenJob(job string, m Model, gpus []GPUType, priority int) error {
	names := make([]string, len(gpus))
	for i, g := range gpus {
		names[i] = string(g)
	}
	req := wire.OpenJobRequest{V: wire.Version, Job: job, Model: wire.FromModel(m), GPUs: names, Priority: priority}
	var resp wire.OpenJobResponse
	if err := c.call(context.Background(), wire.MethodOpenJob, req, &resp, true); err != nil {
		return err
	}
	return wire.Check(resp.V)
}

// SetFleet implements API over the wire. Mutating.
func (c *Client) SetFleet(capacity *Pool, jobCapGPUs int) error {
	req := wire.SetFleetRequest{V: wire.Version, Capacity: wire.FromPool(capacity), JobCapGPUs: jobCapGPUs}
	var resp wire.SetFleetResponse
	if err := c.call(context.Background(), wire.MethodSetFleet, req, &resp, true); err != nil {
		return err
	}
	return wire.Check(resp.V)
}

// FleetEvent implements API over the wire. Mutating.
func (c *Client) FleetEvent(ev TraceEvent) ([]LeaseInfo, error) {
	req := wire.FleetEventRequest{V: wire.Version, Event: wire.FromFleetEvent(ev)}
	var resp wire.FleetEventResponse
	if err := c.call(context.Background(), wire.MethodFleetEvent, req, &resp, true); err != nil {
		return nil, err
	}
	if err := wire.Check(resp.V); err != nil {
		return nil, err
	}
	return resp.Broken, nil
}

// Rebalance implements API over the wire. Mutating; see Plan for context
// semantics.
func (c *Client) Rebalance(ctx context.Context) ([]RebalanceStep, error) {
	var resp wire.RebalanceResponse
	if err := c.call(ctx, wire.MethodRebalance, wire.RebalanceRequest{V: wire.Version}, &resp, true); err != nil {
		return nil, err
	}
	if err := wire.Check(resp.V); err != nil {
		return nil, err
	}
	return resp.Steps, nil
}

// FleetStats implements API over the wire. Idempotent: retried on
// transport and overload errors.
func (c *Client) FleetStats() (FleetStats, error) {
	var resp wire.FleetStatsResponse
	if err := c.call(context.Background(), wire.MethodFleetStats, wire.FleetStatsRequest{V: wire.Version}, &resp, false); err != nil {
		return FleetStats{}, err
	}
	if err := wire.Check(resp.V); err != nil {
		return FleetStats{}, err
	}
	return resp.Stats, nil
}

// Plan implements API over the wire. Idempotent. The context's deadline
// crosses the wire and bounds the daemon-side search; cancellation
// abandons the local wait (the daemon's context expires with the
// deadline, not the cancel).
func (c *Client) Plan(ctx context.Context, job string, pool *Pool, obj Objective, cons Constraints) (PlanResult, error) {
	req := wire.PlanRequest{
		V: wire.Version, Job: job,
		Pool:        wire.FromPool(pool),
		Objective:   obj.String(),
		Constraints: wire.FromConstraints(cons),
	}
	var resp wire.PlanResponse
	if err := c.call(ctx, wire.MethodPlan, req, &resp, false); err != nil {
		return PlanResult{}, err
	}
	if err := wire.Check(resp.V); err != nil {
		return PlanResult{}, err
	}
	return resp.Result.Result(), nil
}

// Replan implements API over the wire. Idempotent; see Plan for context
// semantics.
func (c *Client) Replan(ctx context.Context, job string, prev Plan, pool *Pool, obj Objective, cons Constraints) (PlanResult, error) {
	req := wire.ReplanRequest{
		V: wire.Version, Job: job,
		Prev:        wire.FromPlan(prev),
		Pool:        wire.FromPool(pool),
		Objective:   obj.String(),
		Constraints: wire.FromConstraints(cons),
	}
	var resp wire.PlanResponse
	if err := c.call(ctx, wire.MethodReplan, req, &resp, false); err != nil {
		return PlanResult{}, err
	}
	if err := wire.Check(resp.V); err != nil {
		return PlanResult{}, err
	}
	return resp.Result.Result(), nil
}

// Simulate implements API over the wire. Idempotent.
func (c *Client) Simulate(job string, plan Plan) (Estimate, error) {
	req := wire.SimulateRequest{V: wire.Version, Job: job, Plan: wire.FromPlan(plan)}
	var resp wire.SimulateResponse
	if err := c.call(context.Background(), wire.MethodSimulate, req, &resp, false); err != nil {
		return Estimate{}, err
	}
	if err := wire.Check(resp.V); err != nil {
		return Estimate{}, err
	}
	return resp.Estimate.Core(), nil
}

// CloseJob implements API over the wire. Mutating.
func (c *Client) CloseJob(job string) error {
	req := wire.CloseJobRequest{V: wire.Version, Job: job}
	var resp wire.CloseJobResponse
	if err := c.call(context.Background(), wire.MethodCloseJob, req, &resp, true); err != nil {
		return err
	}
	return wire.Check(resp.V)
}

// Stats implements API over the wire. Idempotent.
func (c *Client) Stats() (ServiceStats, error) {
	var resp wire.StatsResponse
	if err := c.call(context.Background(), wire.MethodStats, wire.StatsRequest{V: wire.Version}, &resp, false); err != nil {
		return ServiceStats{}, err
	}
	if err := wire.Check(resp.V); err != nil {
		return ServiceStats{}, err
	}
	return resp.Stats, nil
}

// ParseObjective resolves an objective name ("max-throughput", "min-cost")
// to the typed Objective — the names CLIs and wire messages carry.
func ParseObjective(s string) (Objective, error) { return core.ParseObjective(s) }
