package sailor

import (
	"context"
	"testing"
	"time"
)

// diurnalPools materialises the distinct pools of three full diurnal-wave
// periods — the cyclic availability signal the speculation forecaster is
// built to lock onto.
func diurnalPools(t *testing.T, max int) []*Pool {
	t.Helper()
	sc, ok := ScenarioByName("diurnal-wave")
	if !ok {
		t.Fatal("diurnal-wave scenario not registered")
	}
	pools := sc.TraceWith(1, ScenarioOpts{Horizon: 72 * time.Hour, Base: 16}).DistinctPools()
	if len(pools) > max {
		pools = pools[:max]
	}
	return pools
}

// TestSpeculativeReplanParity is the ablation oracle of the speculation
// layer: a diurnal-wave replan chain driven with speculation on and off
// returns byte-identical results — plan, estimate, Explored, CacheHits —
// with only the SpeculativeHit marker distinguishing served prefetches.
// The cyclic trace must produce real hits, and the spec_* counters must
// account for them exactly.
func TestSpeculativeReplanParity(t *testing.T) {
	pools := diurnalPools(t, 60)
	type step struct {
		canon string
		hit   bool
	}
	run := func(without bool) ([]step, ServiceStats) {
		svc := NewService(ServiceConfig{Workers: 2, MaxConcurrent: 4, WithoutSpeculation: without})
		if err := svc.OpenJob("tenant", OPT350M(), []GPUType{A100}, 0); err != nil {
			t.Fatal(err)
		}
		var prev Plan
		steps := make([]step, 0, len(pools))
		for i, pool := range pools {
			// Quiesce between requests so each prefetch round resolves
			// before the request it predicts — the deterministic-stepping
			// contract replay tools follow.
			svc.Quiesce()
			res, err := svc.Replan(context.Background(), "tenant", prev, pool, MaxThroughput, Constraints{})
			if err != nil {
				t.Fatalf("without=%v step %d: %v", without, i, err)
			}
			hit := res.SpeculativeHit
			res.SpeculativeHit = false
			steps = append(steps, step{canonicalResult(t, res), hit})
			prev = res.Plan
		}
		svc.Quiesce()
		st, err := svc.Stats()
		if err != nil {
			t.Fatal(err)
		}
		return steps, st
	}
	on, onStats := run(false)
	off, offStats := run(true)
	hits := 0
	for i := range on {
		if on[i].canon != off[i].canon {
			t.Errorf("step %d: speculation changed the result:\non:  %s\noff: %s", i, on[i].canon, off[i].canon)
		}
		if off[i].hit {
			t.Errorf("step %d: SpeculativeHit with speculation disabled", i)
		}
		if on[i].hit {
			hits++
		}
	}
	if hits == 0 {
		t.Error("no step of a cyclic trace was answered from the speculation cache")
	}
	if onStats.SpecHits != uint64(hits) {
		t.Errorf("SpecHits=%d but %d results carried the marker", onStats.SpecHits, hits)
	}
	if onStats.SpecPrecomputed < onStats.SpecHits {
		t.Errorf("SpecPrecomputed=%d < SpecHits=%d", onStats.SpecPrecomputed, onStats.SpecHits)
	}
	if onStats.SpecHits+onStats.SpecMisses != uint64(len(pools)) {
		t.Errorf("SpecHits+SpecMisses=%d, want one consult per replan (%d)",
			onStats.SpecHits+onStats.SpecMisses, len(pools))
	}
	if offStats.SpecHits != 0 || offStats.SpecMisses != 0 || offStats.SpecPrecomputed != 0 {
		t.Errorf("ablated service still speculated: hits=%d misses=%d precomputed=%d",
			offStats.SpecHits, offStats.SpecMisses, offStats.SpecPrecomputed)
	}
}

// TestFleetSpeculationParity: a fleet event that breaks a lease prefetches
// the replan the next Rebalance will run; the rebalance step comes back
// marked SpeculativeHit and byte-identical to what an ablated service
// computes in the foreground, and the ledger trajectories stay identical.
func TestFleetSpeculationParity(t *testing.T) {
	zone := Zone{Region: "us-central1", Name: "us-central1-a"}
	events := []TraceEvent{
		{At: 1 * time.Hour, Zone: zone, GPU: A100, Delta: -12},
		{At: 2 * time.Hour, Zone: zone, GPU: A100, Delta: +12},
		{At: 3 * time.Hour, Zone: zone, GPU: A100, Delta: -12},
	}
	run := func(without bool) ([]string, int, uint64) {
		svc := NewService(ServiceConfig{Workers: 2, MaxConcurrent: 4, WithoutSpeculation: without})
		if err := svc.OpenJob("tenant", OPT350M(), []GPUType{A100}, 0); err != nil {
			t.Fatal(err)
		}
		capacity := NewPool().Set(zone, A100, 16)
		if err := svc.SetFleet(capacity, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Rebalance(context.Background()); err != nil {
			t.Fatal(err)
		}
		var steps []string
		hits := 0
		for i, ev := range events {
			if _, err := svc.FleetEvent(ev); err != nil {
				t.Fatalf("without=%v event %d: %v", without, i, err)
			}
			svc.Quiesce()
			rb, err := svc.Rebalance(context.Background())
			if err != nil {
				t.Fatalf("without=%v rebalance %d: %v", without, i, err)
			}
			for _, s := range rb {
				if s.Result == nil {
					t.Fatalf("without=%v rebalance %d: job %q waiting: %s", without, i, s.Job, s.Error)
				}
				res := s.Result.Result()
				if res.SpeculativeHit {
					hits++
				}
				res.SpeculativeHit = false
				steps = append(steps, s.Job+"|"+s.Action+"|"+canonicalResult(t, res))
			}
		}
		svc.Quiesce()
		st, err := svc.Stats()
		if err != nil {
			t.Fatal(err)
		}
		return steps, hits, st.SpecHits
	}
	on, onHits, onStat := run(false)
	off, offHits, _ := run(true)
	if len(on) != len(off) {
		t.Fatalf("step counts diverged: %d vs %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Errorf("rebalance step %d: speculation changed the outcome:\non:  %s\noff: %s", i, on[i], off[i])
		}
	}
	if onHits == 0 {
		t.Error("no rebalance step was answered from the prefetched fleet replans")
	}
	if offHits != 0 {
		t.Errorf("ablated service marked %d speculative hits", offHits)
	}
	if onStat != uint64(onHits) {
		t.Errorf("SpecHits=%d but %d steps carried the marker", onStat, onHits)
	}
}
