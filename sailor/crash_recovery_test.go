package sailor

// Crash-recovery acceptance (e2e): a durable Service is killed midway
// through the preemption-storm fleet replay — journal abandoned, no final
// snapshot, the disk shape kill -9 leaves — and a fresh Service recovered
// from the same data dir plays the remaining steps byte-identically to the
// uninterrupted run, at workers=1 and workers=8. The uninterrupted sequence
// is pinned to a committed golden, so "matches the baseline tail" is
// "matches the golden tail".

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/persist"
	"repro/internal/testutil"
)

// crashStep is one fleet-replay step of the crash-recovery golden: one
// timestamp group's availability events, the leases they broke, the
// rebalance pass, and the post-step ledger state.
type crashStep struct {
	AtSeconds float64         `json:"at_seconds"`
	Events    int             `json:"events"`
	Broken    []string        `json:"broken,omitempty"`
	Rebalance []RebalanceStep `json:"rebalance"`
	Version   uint64          `json:"ledger_version"`
	Leases    []LeaseInfo     `json:"leases,omitempty"`
}

const crashJobs = 3

// crashTrace returns the preemption-storm trace grouped by timestamp — the
// same step notion sailor-replay -fleet uses — plus the scenario's GPU set
// and the auto per-job cap (half the base fleet).
func crashTrace(t *testing.T) ([][]TraceEvent, []GPUType, int) {
	t.Helper()
	sc, ok := ScenarioByName("preemption-storm")
	if !ok {
		t.Fatal("preemption-storm not registered")
	}
	tr := sc.TraceWith(1, ScenarioOpts{})
	var groups [][]TraceEvent
	for _, ev := range tr.Events {
		if n := len(groups); n > 0 && groups[n-1][0].At == ev.At {
			groups[n-1] = append(groups[n-1], ev)
			continue
		}
		groups = append(groups, []TraceEvent{ev})
	}
	if len(groups) < 4 {
		t.Fatalf("preemption-storm yields only %d steps; need a midpoint to crash at", len(groups))
	}
	return groups, sc.GPUs, sc.Defaults.Base / 2
}

// newCrashService builds a fleet service over an initially empty pool (the
// trace's availability events grow it), with the replay's per-job cap.
func newCrashService(workers, cap int) *Service {
	led := NewLedger(NewPool())
	led.SetJobCap(cap)
	return NewService(ServiceConfig{Workers: workers, MaxConcurrent: 4, Fleet: led})
}

// openCrashJobs admits the replay's contending tenants, job-0 highest
// priority — after any recorder is attached, so admissions journal.
func openCrashJobs(t *testing.T, svc API, gpus []GPUType) {
	t.Helper()
	for i := 0; i < crashJobs; i++ {
		if err := svc.OpenJob(fmt.Sprintf("job-%d", i), OPT350M(), gpus, crashJobs-i); err != nil {
			t.Fatal(err)
		}
	}
}

// driveGroup applies one timestamp group's events and rebalances, exactly
// as the sailor-replay fleet loop does. It takes the API interface, so the
// chaos e2e drives the identical loop through a wire Client.
func driveGroup(t *testing.T, svc API, g []TraceEvent) crashStep {
	t.Helper()
	step := crashStep{AtSeconds: g[0].At.Seconds(), Events: len(g)}
	for _, ev := range g {
		broken, err := svc.FleetEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range broken {
			step.Broken = append(step.Broken, b.Job)
		}
	}
	rsteps, err := svc.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	step.Rebalance = rsteps
	st, err := svc.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	step.Version = st.Version
	step.Leases = st.Leases
	return step
}

// marshalCrashSteps renders steps with the planner telemetry a crash
// legitimately perturbs zeroed: search wall-clock always, plus the
// warm-cache trajectory (explored, cache_hits, warm_start,
// oom_plans_emitted) and the speculation marker (the forecaster feeding
// the prefetch layer is in-memory state a crash discards) — a recovered
// service replans from cold caches to the identical plan, but walks a
// different search. Plans, estimates, actions, ledger versions, and lease
// tables must be byte-identical.
func marshalCrashSteps(t *testing.T, steps []crashStep) []byte {
	t.Helper()
	raw, err := json.Marshal(steps)
	if err != nil {
		t.Fatal(err)
	}
	var arr []any
	if err := json.Unmarshal(raw, &arr); err != nil {
		t.Fatal(err)
	}
	for _, s := range arr {
		rbs, _ := s.(map[string]any)["rebalance"].([]any)
		for _, rb := range rbs {
			res, ok := rb.(map[string]any)["result"].(map[string]any)
			if !ok {
				continue
			}
			res["search_time_ns"] = 0.0
			res["explored"] = 0.0
			res["cache_hits"] = 0.0
			res["warm_start"] = false
			res["oom_plans_emitted"] = 0.0
			delete(res, "speculative_hit")
		}
	}
	out, err := json.MarshalIndent(arr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// runUninterrupted plays the whole replay on a non-durable service.
func runUninterrupted(t *testing.T, groups [][]TraceEvent, gpus []GPUType, cap int) []crashStep {
	t.Helper()
	svc := newCrashService(1, cap)
	openCrashJobs(t, svc, gpus)
	steps := make([]crashStep, 0, len(groups))
	for _, g := range groups {
		steps = append(steps, driveGroup(t, svc, g))
	}
	return steps
}

// TestCrashRecoveryGolden pins the uninterrupted preemption-storm fleet
// sequence to a committed golden (regenerate with -update).
func TestCrashRecoveryGolden(t *testing.T) {
	groups, gpus, cap := crashTrace(t)
	full := runUninterrupted(t, groups, gpus, cap)
	testutil.CheckGolden(t, "crash-recovery-preemption-storm.golden.json", marshalCrashSteps(t, full))
}

// TestCrashRecoveryContinuation is the recovery acceptance: kill at a step
// boundary, recover on the same dir, and the remaining steps' wire-encoded
// plans, ledger versions, and lease tables byte-equal the uninterrupted
// golden's tail — at workers=1 and workers=8.
func TestCrashRecoveryContinuation(t *testing.T) {
	groups, gpus, cap := crashTrace(t)
	full := runUninterrupted(t, groups, gpus, cap)
	crashAt := len(groups) / 2
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "state")
			// Incarnation 1: durable from birth, dies after step crashAt-1.
			store, recovered, err := persist.Open(dir, persist.Config{Fsync: persist.FsyncNone})
			if err != nil {
				t.Fatal(err)
			}
			if recovered != nil {
				t.Fatalf("fresh dir recovered state: %+v", recovered)
			}
			svc := newCrashService(workers, cap)
			if err := store.Rotate(svc.PersistState()); err != nil {
				t.Fatal(err)
			}
			svc.SetRecorder(store)
			openCrashJobs(t, svc, gpus)
			head := make([]crashStep, 0, crashAt)
			for _, g := range groups[:crashAt] {
				head = append(head, driveGroup(t, svc, g))
			}
			// Journaling must not perturb the replay (and at workers=8 this
			// is also the worker-determinism check against the baseline).
			if got, want := marshalCrashSteps(t, head), marshalCrashSteps(t, full[:crashAt]); !bytes.Equal(got, want) {
				t.Fatalf("journaling changed the replay head:\n--- durable ---\n%s\n--- baseline ---\n%s", got, want)
			}
			if err := store.Err(); err != nil {
				t.Fatal(err)
			}
			// Kill -9: close the journal fd without a final snapshot.
			store.Close()

			// Incarnation 2: recover. No fleet config — the journal carries it.
			store2, rec2, err := persist.Open(dir, persist.Config{Fsync: persist.FsyncNone})
			if err != nil {
				t.Fatal(err)
			}
			if rec2 == nil {
				t.Fatal("no recovered state after crash")
			}
			if rec2.RecordsReplayed == 0 {
				t.Error("recovery replayed zero records after a crash")
			}
			if want := full[crashAt-1].Version; rec2.LedgerVersion != want {
				t.Errorf("recovered ledger version = %d, want %d", rec2.LedgerVersion, want)
			}
			svc2 := NewService(ServiceConfig{Workers: workers, MaxConcurrent: 4})
			if err := svc2.Restore(rec2); err != nil {
				t.Fatal(err)
			}
			if err := store2.Rotate(svc2.PersistState()); err != nil {
				t.Fatal(err)
			}
			svc2.SetRecorder(store2)
			tail := make([]crashStep, 0, len(groups)-crashAt)
			for _, g := range groups[crashAt:] {
				tail = append(tail, driveGroup(t, svc2, g))
			}
			got, want := marshalCrashSteps(t, tail), marshalCrashSteps(t, full[crashAt:])
			if !bytes.Equal(got, want) {
				t.Errorf("recovered continuation diverged from the uninterrupted replay:\n--- recovered ---\n%s\n--- uninterrupted ---\n%s", got, want)
			}
			// Graceful exit: final snapshot, so a third boot replays nothing.
			if err := store2.Rotate(svc2.PersistState()); err != nil {
				t.Fatal(err)
			}
			if err := store2.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec3, err := persist.Open(dir, persist.Config{Fsync: persist.FsyncNone})
			if err != nil {
				t.Fatal(err)
			}
			if rec3 == nil || rec3.RecordsReplayed != 0 {
				t.Errorf("clean restart recovery = %+v, want zero records", rec3)
			}
		})
	}
}

// TestCrashRecoveryMidStep crashes inside a step — after its availability
// events applied (and journaled) but before the rebalance pass replanned
// the leases they broke. Recovery restores the ledger at that exact
// mid-step version; the first rebalance then installs the same leases the
// uninterrupted run did, and everything after stays on the golden
// trajectory.
func TestCrashRecoveryMidStep(t *testing.T) {
	groups, gpus, cap := crashTrace(t)
	full := runUninterrupted(t, groups, gpus, cap)
	k := len(groups) / 2
	dir := filepath.Join(t.TempDir(), "state")
	store, _, err := persist.Open(dir, persist.Config{Fsync: persist.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	svc := newCrashService(1, cap)
	if err := store.Rotate(svc.PersistState()); err != nil {
		t.Fatal(err)
	}
	svc.SetRecorder(store)
	openCrashJobs(t, svc, gpus)
	for _, g := range groups[:k] {
		driveGroup(t, svc, g)
	}
	// Step k dies halfway: events in, rebalance never runs.
	for _, ev := range groups[k] {
		if _, err := svc.FleetEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Err(); err != nil {
		t.Fatal(err)
	}
	store.Close()

	store2, rec2, err := persist.Open(dir, persist.Config{Fsync: persist.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if rec2 == nil {
		t.Fatal("no recovered state after mid-step crash")
	}
	svc2 := NewService(ServiceConfig{Workers: 1, MaxConcurrent: 4})
	if err := svc2.Restore(rec2); err != nil {
		t.Fatal(err)
	}
	if err := store2.Rotate(svc2.PersistState()); err != nil {
		t.Fatal(err)
	}
	svc2.SetRecorder(store2)
	defer store2.Close()
	// Resume step k: only the rebalance remains. Its broken list happened
	// before the crash, so blank it on the golden side too.
	rsteps, err := svc2.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc2.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	resumed := crashStep{AtSeconds: groups[k][0].At.Seconds(), Events: len(groups[k]),
		Rebalance: rsteps, Version: st.Version, Leases: st.Leases}
	wantK := full[k]
	wantK.Broken = nil
	if got, want := marshalCrashSteps(t, []crashStep{resumed}), marshalCrashSteps(t, []crashStep{wantK}); !bytes.Equal(got, want) {
		t.Errorf("resumed step %d diverged:\n--- recovered ---\n%s\n--- uninterrupted ---\n%s", k, got, want)
	}
	tail := make([]crashStep, 0, len(groups)-k-1)
	for _, g := range groups[k+1:] {
		tail = append(tail, driveGroup(t, svc2, g))
	}
	got, want := marshalCrashSteps(t, tail), marshalCrashSteps(t, full[k+1:])
	if !bytes.Equal(got, want) {
		t.Errorf("post-resume steps diverged:\n--- recovered ---\n%s\n--- uninterrupted ---\n%s", got, want)
	}
}
