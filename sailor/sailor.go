// Package sailor is the public API of the Sailor reproduction: a system for
// automating distributed training over dynamic, heterogeneous, and
// geo-distributed clusters (SOSP'25).
//
// The primary entry point is Service, the planner as a multi-tenant
// request/response front door — the paper's long-lived control plane
// (§5.5) that plans and replans many jobs as availability shifts:
//
//	svc := sailor.NewService(sailor.ServiceConfig{})
//	svc.OpenJob("tenant-1", sailor.OPT350M(), []sailor.GPUType{sailor.A100}, 0)
//	res, _ := svc.Plan(ctx, "tenant-1", pool, sailor.MaxThroughput, sailor.Constraints{})
//	res2, _ := svc.Replan(ctx, "tenant-1", res.Plan, shrunkPool, sailor.MaxThroughput, sailor.Constraints{})
//	est, _ := svc.Simulate("tenant-1", res2.Plan)
//	svc.CloseJob("tenant-1")
//
// Tenants whose jobs share a (model, GPU set, seed) shape reuse one
// profiled System behind the front door; each job keeps a private
// warm-start cache for replan continuity; planner concurrency is bounded
// across tenants; and Stats snapshots QPS, cache utilisation, and
// in-flight counts.
//
// Fleet mode (ServiceConfig.Fleet, or SetFleet at runtime) arbitrates one
// shared elastic fleet across all jobs: a concurrent, versioned capacity
// Ledger (internal/fleet) tracks per-job leases, Plan/Replan search the
// ledger's free-capacity view and lease what they return, FleetEvent
// replays availability changes against the fleet and preempts leases in
// deterministic admission order (priority descending, then job name), and
// Rebalance replans every leaseless job warm, in priority order. The sum
// of leased capacity never exceeds fleet capacity at any step, and a
// no-contention fleet of one job plans bit-identically to a solo Service.
// cmd/sailor-replay -fleet -jobs N drives any scenario through a shared
// ledger and prints the per-job reconfiguration ledger. The same surface crosses a wire: cmd/sailor-serve
// hosts a Service over the internal/rpc framing, Dial returns a Client
// implementing the identical API interface, and every message is a
// versioned internal/wire document. The determinism contract holds on
// both paths — a plan or replan obtained through the service is
// byte-identical (wire-encoded, telemetry included; SearchTime is the one
// wall-clock exception) to System.Plan/System.Replan on the same request
// history, at any worker count.
//
// Underneath, System is the single-job library workflow mirroring the
// paper's Figure 4:
//
//	sys, _ := sailor.New(sailor.OPT350M(), []sailor.GPUType{sailor.A100, sailor.V100})
//	pool := sailor.NewPool().Set(sailor.GCPZone("us-central1", 'a'), sailor.A100, 16)
//	res, _ := sys.Plan(pool, sailor.MaxThroughput, sailor.Constraints{})
//	est, _ := sys.Simulate(res.Plan)   // analytical simulator (§4.3)
//	real, _ := sys.Measure(res.Plan)   // ground-truth engine (testbed substitute)
//	ctrl := sys.NewController()        // elastic training framework (§4.4)
//
// The planner is a parallel search engine: it fans candidate configurations
// across Workers goroutines (sailor.WithWorkers, default runtime.NumCPU())
// and, when the search runs to completion, returns the identical plan at
// any worker count. PlanContext exposes caller-controlled cancellation
// (a cut-off search returns the best plan found so far), and PlanBatch
// plans many pools concurrently — the serving shape of a controller
// replanning a fleet of jobs.
//
// Elastic runs replay availability scenarios: the Scenario* constructors
// (and the name registry behind Scenarios/ScenarioByName) synthesize
// seeded trace families — preemption storms, diurnal waves, zone outages,
// staggered heterogeneous arrivals, geo shifts — and System.Replan
// warm-starts the planner from the previously deployed plan, persisting DP
// memos and the minimum-TP cache across calls so churn-driven replans skip
// already-explored regions. cmd/sailor-replay runs any named scenario and
// prints the reconfiguration ledger.
//
// Evaluation backends — the analytical simulator, the ground-truth engine,
// and the baselines' published estimators — all satisfy the shared
// Estimator interface (Simulator/GroundTruth accessors), so plan scoring
// code can be written once and pointed at any of them.
//
// The package is a facade over the internal profiler, planner, simulator,
// ground truth, and runtime packages.
package sailor

import (
	"context"
	"fmt"
	goruntime "runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/profiler"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Re-exported domain types.
type (
	// GPUType identifies a GPU SKU, e.g. sailor.A100.
	GPUType = core.GPUType
	// Zone is a cloud availability zone.
	Zone = core.Zone
	// Plan is a job parallelization plan (§4.2).
	Plan = core.Plan
	// StagePlan is one pipeline stage of a Plan.
	StagePlan = core.StagePlan
	// StageReplica is one data-parallel replica of a stage.
	StageReplica = core.StageReplica
	// Estimate is a simulator or testbed evaluation of a plan.
	Estimate = core.Estimate
	// Estimator is the shared plan-evaluation seam every backend satisfies
	// (analytical simulator, ground truth, baseline estimators).
	Estimator = core.Estimator
	// Objective selects what the planner optimizes.
	Objective = core.Objective
	// Constraints bound feasible plans (budget, throughput floor).
	Constraints = core.Constraints
	// Model describes a transformer training job.
	Model = model.Config
	// Pool is a point-in-time resource availability snapshot.
	Pool = cluster.Pool
	// PlanResult is the planner's output with search telemetry.
	PlanResult = planner.Result
	// Trace is a dynamic-availability trace (paper Fig. 2).
	Trace = trace.Trace
	// TraceEvent is one availability change.
	TraceEvent = trace.Event
	// CapEvent is one demand-autoscaling directive riding a trace: at a
	// timestamp, the fleet's per-job GPU cap moves.
	CapEvent = trace.CapEvent
	// TraceFile is a named external availability trace — the versioned
	// JSON document sailor-replay -trace loads and sailor-advgen writes.
	TraceFile = trace.File
	// Overlay is a composable trace transformation (price spikes,
	// correlated failures, demand autoscaling) layered with ComposeTrace.
	Overlay = trace.Overlay
	// CapPoint is one step of a demand-autoscaling overlay schedule.
	CapPoint = trace.CapPoint
	// Scenario is a named, seeded family of availability traces.
	Scenario = trace.Scenario
	// ScenarioOpts scales a scenario family.
	ScenarioOpts = trace.ScenarioOpts
	// Controller is the elastic training framework's job controller.
	Controller = runtime.Controller
	// Report summarises an elastic training run.
	Report = runtime.Report
	// PhaseTimings is the §5.5 reconfiguration breakdown.
	PhaseTimings = runtime.PhaseTimings
)

// Re-exported constants.
const (
	A100     = core.A100
	V100     = core.V100
	GH200    = core.GH200
	RTX3090  = core.RTX3090
	RTX2080  = core.RTX2080
	TitanRTX = core.TitanRTX
	A10G     = core.A10G
	T4       = core.T4
	H100     = core.H100

	MaxThroughput = core.MaxThroughput
	MinCost       = core.MinCost
)

// OPT350M returns the OPT-350M training job used throughout the paper.
func OPT350M() Model { return model.OPT350M() }

// GPTNeo27B returns the GPT-Neo-2.7B training job.
func GPTNeo27B() Model { return model.GPTNeo27B() }

// OPT13B returns OPT-1.3B.
func OPT13B() Model { return model.OPT13B() }

// GPT2XL returns GPT-2 XL (1.5B).
func GPT2XL() Model { return model.GPT2XL() }

// Llama7B returns a LLaMA-7B-shaped dense decoder (see internal/model for
// the accounting caveat).
func Llama7B() Model { return model.Llama7B() }

// Models returns every built-in model configuration by name.
func Models() map[string]Model { return model.Zoo() }

// ModelByName resolves a zoo model from a tolerant spelling of its name:
// case and punctuation are ignored, so "opt350m", "OPT-350M", and
// "opt-350m" all resolve to the same configuration. CLIs share this
// resolver so every tool accepts the same names for the whole zoo.
func ModelByName(name string) (Model, error) {
	canon := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
				return r
			case r >= 'A' && r <= 'Z':
				return r + ('a' - 'A')
			}
			return -1
		}, s)
	}
	want := canon(name)
	names := make([]string, 0)
	for zooName, m := range Models() {
		if canon(zooName) == want {
			return m, nil
		}
		names = append(names, zooName)
	}
	sort.Strings(names)
	return Model{}, fmt.Errorf("unknown model %q (zoo: %s)", name, strings.Join(names, ", "))
}

// NewPool returns an empty availability pool.
func NewPool() *Pool { return cluster.NewPool() }

// ParseQuota parses the CLI quota syntax — comma-separated zone:gpu:count
// triples like "us-central1-a:A100-40:16,us-central1-b:V100-16:32" — into a
// pool plus the distinct GPU types in first-appearance order. Every CLI
// (sailor-plan -quota, sailor-serve -fleet) shares this parser.
func ParseQuota(s string) (*Pool, []GPUType, error) {
	if s == "" {
		return nil, nil, fmt.Errorf("empty quota; example: us-central1-a:A100-40:16,us-central1-b:V100-16:32")
	}
	pool := NewPool()
	seen := map[GPUType]bool{}
	var gpus []GPUType
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, nil, fmt.Errorf("bad quota entry %q (want zone:gpu:count)", part)
		}
		zoneName := fields[0]
		region := zoneName
		if i := strings.LastIndex(zoneName, "-"); i > 0 {
			region = zoneName[:i]
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			return nil, nil, fmt.Errorf("bad count in %q", part)
		}
		g := GPUType(fields[1])
		pool.Set(Zone{Region: region, Name: zoneName}, g, n)
		if !seen[g] {
			seen[g] = true
			gpus = append(gpus, g)
		}
	}
	return pool, gpus, nil
}

// GCPZone names a zone like "us-central1-a".
func GCPZone(region string, letter byte) Zone { return cluster.GCPZone(region, letter) }

// OnPremZone is the synthetic zone for on-premise clusters.
func OnPremZone() Zone { return cluster.OnPrem() }

// GCPA100Trace regenerates the paper's Figure-2-shaped availability trace.
func GCPA100Trace(seed int64) (*Trace, Zone, Zone) { return trace.GCPA100Trace(seed) }

// SyntheticTrace builds a trace from explicit events.
func SyntheticTrace(horizon time.Duration, events ...TraceEvent) *Trace {
	return trace.Synthetic(horizon, events...)
}

// LoadTrace decodes a versioned external trace document (see trace.Load):
// unknown schema versions and kinds are rejected by name, and the decoded
// trace is validated and canonicalized.
func LoadTrace(data []byte) (*TraceFile, error) { return trace.Load(data) }

// LoadTraceCSV imports a CSV availability log and canonicalizes it to the
// same shape LoadTrace produces (see trace.LoadCSV for the layout).
func LoadTraceCSV(data []byte) (*TraceFile, error) { return trace.LoadCSV(data) }

// SaveTrace encodes a trace file as a canonical versioned JSON document —
// equal files marshal to identical bytes.
func SaveTrace(f *TraceFile) ([]byte, error) { return trace.Save(f) }

// ComposeTrace layers overlays over a base trace, left to right, preserving
// the sorted/clamped replay invariants. The base is never mutated.
func ComposeTrace(base *Trace, overlays ...Overlay) *Trace {
	return trace.Compose(base, overlays...)
}

// OverlayPriceSpike squeezes every availability series by `severity` for
// the [start, end] horizon-fraction window, levelling back afterwards.
func OverlayPriceSpike(start, end, severity float64) Overlay {
	return trace.PriceSpike(start, end, severity)
}

// OverlayCorrelatedFailure blacks out the named zones (all zones when none
// are named) for `dur` of the horizon starting at the `at` fraction.
func OverlayCorrelatedFailure(at, dur float64, zones ...Zone) Overlay {
	return trace.CorrelatedFailure(at, dur, zones...)
}

// OverlayDemandAutoscale turns a cap schedule (fractions of the trace's
// peak availability) into CapEvents the fleet replay applies through
// Ledger.SetJobCap.
func OverlayDemandAutoscale(points ...CapPoint) Overlay {
	return trace.DemandAutoscale(points...)
}

// ComposedScenario wraps a base scenario with overlays as a new named
// scenario ("<base>+<overlay>+..."), still a pure function of (seed, opts).
func ComposedScenario(base Scenario, overlays ...Overlay) Scenario {
	return trace.ComposedScenario(base, overlays...)
}

// Scenarios lists every registered availability scenario, sorted by name.
func Scenarios() []Scenario { return trace.Scenarios() }

// ScenarioByName resolves a scenario from its registry name (for CLIs; the
// Scenario* constructors are the typed entry points).
func ScenarioByName(name string) (Scenario, bool) { return trace.ScenarioByName(name) }

// ScenarioGCPA100 is the paper's Figure-2 trace as a runnable scenario.
func ScenarioGCPA100() Scenario { return trace.GCPA100Scenario() }

// ScenarioPreemptionStorm models repeated spot preemptions with burst
// recovery — the canonical warm-start replanning workload.
func ScenarioPreemptionStorm() Scenario { return trace.PreemptionStorm() }

// ScenarioDiurnalWave models a 24-hour capacity wave in hourly steps.
func ScenarioDiurnalWave() Scenario { return trace.DiurnalWave() }

// ScenarioZoneOutage models a full zone blackout with staged recovery.
func ScenarioZoneOutage() Scenario { return trace.ZoneOutage() }

// ScenarioHeteroArrivals models staggered A100/V100 grants with a partial
// preemption.
func ScenarioHeteroArrivals() Scenario { return trace.HeteroArrivals() }

// ScenarioGeoShift models follow-the-sun capacity moving across regions.
func ScenarioGeoShift() Scenario { return trace.GeoShift() }

// System bundles a profiled job: the profiler output plus the simulator and
// ground-truth engine built on it.
type System struct {
	Model   Model
	Profile *profiler.Profile

	// Workers is the planner's search parallelism: how many goroutines
	// explore candidate configurations concurrently (and how many pools
	// PlanBatch plans at once). Zero means runtime.NumCPU(). Searches
	// that run to completion choose identical plans at any setting.
	Workers int

	// DisablePruning turns off the planner's bound-based pruning for
	// ablations and perf comparisons. Pruning is exact — the chosen plan
	// is identical either way — so leave this false outside measurements.
	DisablePruning bool

	// DisableDominancePruning turns off the planner's dominance pruning of
	// stage compositions — the same ablation contract as DisablePruning:
	// exact, so the chosen plan is identical either way.
	DisableDominancePruning bool

	// DisableIncremental turns off the planner's delta-scoped incremental
	// probe of the warm cache (one-zone shrink replans re-scan every DP
	// subtree instead of proving cached winners still hold) — the same
	// ablation contract again: exact, so plans are identical either way.
	DisableIncremental bool

	simulator *sim.Simulator
	gt        *groundtruth.Engine
	// warm persists planner state across Replan calls (one cache per
	// System; see planner.WarmCache for the determinism contract).
	warm *planner.WarmCache
}

// Option customises New.
type Option func(*options)

type options struct {
	profSeed      uint64
	gtSeed        uint64
	workers       int
	noPruning     bool
	noDominance   bool
	noIncremental bool
}

// WithSeed fixes the deterministic seeds of the synthetic profiler noise
// and ground-truth jitter.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.profSeed, o.gtSeed = seed, seed }
}

// WithWorkers sets the planner's search parallelism (0 = runtime.NumCPU()).
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithoutBoundPruning disables the planner's exact bound-based pruning —
// an ablation/measurement knob; plans are identical either way.
func WithoutBoundPruning() Option {
	return func(o *options) { o.noPruning = true }
}

// WithoutDominancePruning disables the planner's exact dominance pruning of
// stage compositions — an ablation/measurement knob; plans are identical
// either way.
func WithoutDominancePruning() Option {
	return func(o *options) { o.noDominance = true }
}

// WithoutIncremental disables the planner's exact delta-scoped incremental
// replanning (the warm cache's dominating-state probe) — an ablation/
// measurement knob; plans are identical either way.
func WithoutIncremental() Option {
	return func(o *options) { o.noIncremental = true }
}

// New profiles the model on every GPU type of the resource pool (§4.1) and
// returns a ready System. Profiling is synthetic in this reproduction; see
// DESIGN.md for the substitution.
func New(m Model, gpus []GPUType, opts ...Option) (*System, error) {
	o := options{profSeed: 1, gtSeed: 1}
	for _, f := range opts {
		f(&o)
	}
	prof, err := profiler.Collect(m, gpus, nil, profiler.Options{Seed: o.profSeed})
	if err != nil {
		return nil, err
	}
	gt := groundtruth.New(m)
	gt.Seed = o.gtSeed
	return &System{
		Model:                   m,
		Profile:                 prof,
		Workers:                 o.workers,
		DisablePruning:          o.noPruning,
		DisableDominancePruning: o.noDominance,
		DisableIncremental:      o.noIncremental,
		simulator:               sim.New(m, prof),
		gt:                      gt,
		warm:                    planner.NewWarmCache(),
	}, nil
}

// workerCount resolves the configured search parallelism.
func (s *System) workerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return goruntime.NumCPU()
}

func (s *System) plannerOpts(obj Objective, cons Constraints, workers int) planner.Options {
	return planner.Options{
		Objective:               obj,
		Constraints:             cons,
		Heuristics:              planner.AllHeuristics(),
		Workers:                 workers,
		DisableBoundPruning:     s.DisablePruning,
		DisableDominancePruning: s.DisableDominancePruning,
		DisableIncremental:      s.DisableIncremental,
	}
}

// Plan searches for a resource allocation and parallelization plan that
// optimizes the objective under the constraints (§4.2). The search runs on
// Workers goroutines.
func (s *System) Plan(pool *Pool, obj Objective, cons Constraints) (PlanResult, error) {
	return s.PlanContext(context.Background(), pool, obj, cons)
}

// PlanContext is Plan with caller-controlled cancellation: when ctx is
// done the search stops at the next candidate boundary and returns the
// best plan found so far (or an error when nothing valid was found yet).
func (s *System) PlanContext(ctx context.Context, pool *Pool, obj Objective, cons Constraints) (PlanResult, error) {
	pl := planner.New(s.Model, s.simulator, s.plannerOpts(obj, cons, s.workerCount()))
	return pl.PlanContext(ctx, pool)
}

// PlanBatch plans many pools concurrently — the serving shape of a
// controller replanning a fleet of jobs against availability snapshots.
// Up to Workers pools are planned at once, each by a single-worker search
// so the batch saturates the machine without oversubscribing it. Results
// and errors are returned in input order; results[i] is valid iff
// errs[i] == nil, and each equals what planning pools[i] alone returns.
func (s *System) PlanBatch(ctx context.Context, pools []*Pool, obj Objective, cons Constraints) (results []PlanResult, errs []error) {
	results = make([]PlanResult, len(pools))
	errs = make([]error, len(pools))
	sem := make(chan struct{}, s.workerCount())
	var wg sync.WaitGroup
	for i := range pools {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pl := planner.New(s.Model, s.simulator, s.plannerOpts(obj, cons, 1))
			results[i], errs[i] = pl.PlanContext(ctx, pools[i])
		}(i)
	}
	wg.Wait()
	return results, errs
}

// Replan is the elastic hot path: plan `pool` warm-started from the plan
// deployed before an availability change. The previous plan seeds a
// fallback incumbent (a cut-off replan never does worse than keeping it
// while it still fits the pool), and the System's persistent warm cache
// lets successive replans skip DP region states earlier searches already
// solved. A warm replan that runs to completion returns exactly the plan
// Plan returns on the same pool; PlanResult.CacheHits reports the reuse.
// Replan is safe to call concurrently with itself and with Plan/PlanBatch.
//
// The warm cache binds to the first (objective, constraints) pair that
// replans; calls with a different pair still work but search cold.
func (s *System) Replan(prev Plan, pool *Pool, obj Objective, cons Constraints) (PlanResult, error) {
	return s.ReplanContext(context.Background(), prev, pool, obj, cons)
}

// ReplanContext is Replan with caller-controlled cancellation.
func (s *System) ReplanContext(ctx context.Context, prev Plan, pool *Pool, obj Objective, cons Constraints) (PlanResult, error) {
	opts := s.plannerOpts(obj, cons, s.workerCount())
	opts.Warm = s.warm
	pl := planner.New(s.Model, s.simulator, opts)
	return pl.ReplanContext(ctx, prev, pool)
}

// PlanWithRecompute is Plan with the activation-recomputation fallback
// enabled: when nothing fits memory, the planner retries with
// rematerialisation, trading ~1/3 extra compute for a smaller footprint.
func (s *System) PlanWithRecompute(pool *Pool, obj Objective, cons Constraints) (PlanResult, error) {
	opts := s.plannerOpts(obj, cons, s.workerCount())
	opts.AllowRecompute = true
	pl := planner.New(s.Model, s.simulator, opts)
	return pl.Plan(pool)
}

// Simulate estimates a plan's iteration time, memory footprint, and cost
// with the analytical simulator (§4.3).
func (s *System) Simulate(plan Plan) (Estimate, error) { return s.simulator.Estimate(plan) }

// Measure runs a plan on the ground-truth engine — the repository's
// substitute for deploying on a real cluster.
func (s *System) Measure(plan Plan) (Estimate, error) { return s.gt.Measure(plan) }

// Simulator exposes the analytical simulator behind the shared Estimator
// seam.
func (s *System) Simulator() Estimator { return s.simulator }

// GroundTruth exposes the ground-truth engine behind the shared Estimator
// seam.
func (s *System) GroundTruth() Estimator { return s.gt }

// NewController returns an elastic training controller (§4.4) wired to this
// system's planner, ground truth, and persistent warm-start cache — a
// System.Replan call and a controller replan warm each other up.
func (s *System) NewController() *Controller {
	opts := s.plannerOpts(core.MaxThroughput, Constraints{}, s.workerCount())
	opts.Warm = s.warm
	pl := planner.New(s.Model, s.simulator, opts)
	return runtime.NewController(runtime.ControllerConfig{Planner: pl, GT: s.gt})
}

// ProfilingOverhead reports the simulated wall-clock cost of the profiling
// campaign ("a couple of minutes", §4.1).
func (s *System) ProfilingOverhead() time.Duration {
	return time.Duration(profiler.Overhead(s.Profile) * float64(time.Second))
}
