package sailor

// Server hosts a Service over the internal/rpc length-prefixed-JSON
// framing — the transport cmd/sailor-serve exposes and Client speaks. Every
// method body is a versioned wire message; version mismatches are refused
// before any work happens.

import (
	"context"
	"encoding/json"
	"net"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// Server exposes a Service on a listener.
type Server struct {
	svc *Service
	rpc *rpc.Server
}

// NewServer wraps a Service in an rpc dispatcher owning the listener.
// Call Serve to start accepting and Close to shut down gracefully
// (in-flight requests drain; queued client calls fail with a typed error).
func NewServer(lis net.Listener, svc *Service) *Server {
	s := &Server{svc: svc, rpc: rpc.NewServer(lis)}
	s.rpc.Handle(wire.MethodOpenJob, s.openJob)
	s.rpc.Handle(wire.MethodPlan, s.plan)
	s.rpc.Handle(wire.MethodReplan, s.replan)
	s.rpc.Handle(wire.MethodSimulate, s.simulate)
	s.rpc.Handle(wire.MethodCloseJob, s.closeJob)
	s.rpc.Handle(wire.MethodStats, s.stats)
	s.rpc.Handle(wire.MethodSetFleet, s.setFleet)
	s.rpc.Handle(wire.MethodFleetEvent, s.fleetEvent)
	s.rpc.Handle(wire.MethodRebalance, s.rebalance)
	s.rpc.Handle(wire.MethodFleetStats, s.fleetStats)
	return s
}

// Serve accepts connections until Close; it returns after the listener
// closes.
func (s *Server) Serve() { s.rpc.Serve() }

// Close drains in-flight requests and tears the listener down.
func (s *Server) Close() { s.rpc.Close() }

// Addr returns the listen address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.rpc.Addr() }

// Service returns the hosted service (for stats or in-process calls).
func (s *Server) Service() *Service { return s.svc }

func (s *Server) openJob(_ context.Context, body json.RawMessage) (any, error) {
	var req wire.OpenJobRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := wire.Check(req.V); err != nil {
		return nil, err
	}
	gpus := make([]GPUType, len(req.GPUs))
	for i, g := range req.GPUs {
		gpus[i] = GPUType(g)
	}
	if err := s.svc.OpenJob(req.Job, req.Model.Config(), gpus, req.Priority); err != nil {
		return nil, err
	}
	return wire.OpenJobResponse{V: wire.Version}, nil
}

func (s *Server) setFleet(_ context.Context, body json.RawMessage) (any, error) {
	var req wire.SetFleetRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := wire.Check(req.V); err != nil {
		return nil, err
	}
	if err := s.svc.SetFleet(req.Capacity.Cluster(), req.JobCapGPUs); err != nil {
		return nil, err
	}
	return wire.SetFleetResponse{V: wire.Version}, nil
}

func (s *Server) fleetEvent(_ context.Context, body json.RawMessage) (any, error) {
	var req wire.FleetEventRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := wire.Check(req.V); err != nil {
		return nil, err
	}
	broken, err := s.svc.FleetEvent(req.Event.Trace())
	if err != nil {
		return nil, err
	}
	return wire.FleetEventResponse{V: wire.Version, Broken: broken}, nil
}

func (s *Server) rebalance(ctx context.Context, body json.RawMessage) (any, error) {
	var req wire.RebalanceRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := wire.Check(req.V); err != nil {
		return nil, err
	}
	steps, err := s.svc.Rebalance(ctx)
	if err != nil {
		return nil, err
	}
	return wire.RebalanceResponse{V: wire.Version, Steps: steps}, nil
}

func (s *Server) fleetStats(_ context.Context, body json.RawMessage) (any, error) {
	var req wire.FleetStatsRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := wire.Check(req.V); err != nil {
		return nil, err
	}
	st, err := s.svc.FleetStats()
	if err != nil {
		return nil, err
	}
	return wire.FleetStatsResponse{V: wire.Version, Stats: st}, nil
}

func (s *Server) plan(ctx context.Context, body json.RawMessage) (any, error) {
	var req wire.PlanRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := wire.Check(req.V); err != nil {
		return nil, err
	}
	obj, err := core.ParseObjective(req.Objective)
	if err != nil {
		return nil, err
	}
	res, err := s.svc.Plan(ctx, req.Job, req.Pool.Cluster(), obj, req.Constraints.Core())
	if err != nil {
		return nil, err
	}
	return wire.PlanResponse{V: wire.Version, Result: wire.FromResult(res)}, nil
}

func (s *Server) replan(ctx context.Context, body json.RawMessage) (any, error) {
	var req wire.ReplanRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := wire.Check(req.V); err != nil {
		return nil, err
	}
	obj, err := core.ParseObjective(req.Objective)
	if err != nil {
		return nil, err
	}
	res, err := s.svc.Replan(ctx, req.Job, req.Prev.Core(), req.Pool.Cluster(), obj, req.Constraints.Core())
	if err != nil {
		return nil, err
	}
	return wire.PlanResponse{V: wire.Version, Result: wire.FromResult(res)}, nil
}

func (s *Server) simulate(_ context.Context, body json.RawMessage) (any, error) {
	var req wire.SimulateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := wire.Check(req.V); err != nil {
		return nil, err
	}
	est, err := s.svc.Simulate(req.Job, req.Plan.Core())
	if err != nil {
		return nil, err
	}
	return wire.SimulateResponse{V: wire.Version, Estimate: wire.FromEstimate(est)}, nil
}

func (s *Server) closeJob(_ context.Context, body json.RawMessage) (any, error) {
	var req wire.CloseJobRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := wire.Check(req.V); err != nil {
		return nil, err
	}
	if err := s.svc.CloseJob(req.Job); err != nil {
		return nil, err
	}
	return wire.CloseJobResponse{V: wire.Version}, nil
}

func (s *Server) stats(_ context.Context, body json.RawMessage) (any, error) {
	var req wire.StatsRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := wire.Check(req.V); err != nil {
		return nil, err
	}
	st, err := s.svc.Stats()
	if err != nil {
		return nil, err
	}
	return wire.StatsResponse{V: wire.Version, Stats: st}, nil
}
