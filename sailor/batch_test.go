package sailor

import (
	"context"
	"testing"
)

// TestPlanBatchMatchesIndividualPlans: the batch API is a concurrency
// wrapper, not a different search — every pool's result must equal what
// planning it alone returns.
func TestPlanBatchMatchesIndividualPlans(t *testing.T) {
	sys, err := New(OPT350M(), []GPUType{A100, V100}, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	z := GCPZone("us-central1", 'a')
	pools := []*Pool{
		NewPool().Set(z, A100, 16),
		NewPool().Set(z, A100, 32),
		NewPool().Set(z, A100, 16).Set(z, V100, 16),
		NewPool(), // empty: must surface a per-pool error, not poison the batch
	}
	results, errs := sys.PlanBatch(context.Background(), pools, MaxThroughput, Constraints{})
	if len(results) != len(pools) || len(errs) != len(pools) {
		t.Fatalf("got %d results / %d errs for %d pools", len(results), len(errs), len(pools))
	}
	if errs[3] == nil {
		t.Error("empty pool should fail with a per-pool error")
	}
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("pool %d: %v", i, errs[i])
		}
		solo, err := sys.Plan(pools[i], MaxThroughput, Constraints{})
		if err != nil {
			t.Fatalf("solo plan %d: %v", i, err)
		}
		if got, want := results[i].Plan.String(), solo.Plan.String(); got != want {
			t.Errorf("pool %d: batch plan differs from solo plan:\n%s\n%s", i, want, got)
		}
		if results[i].Estimate.IterTime != solo.Estimate.IterTime {
			t.Errorf("pool %d: batch IterTime %v != solo %v",
				i, results[i].Estimate.IterTime, solo.Estimate.IterTime)
		}
	}
}

// TestPlanBatchCancelled: a cancelled context fails every pool promptly.
func TestPlanBatchCancelled(t *testing.T) {
	sys, err := New(OPT350M(), []GPUType{A100})
	if err != nil {
		t.Fatal(err)
	}
	z := GCPZone("us-central1", 'a')
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs := sys.PlanBatch(ctx, []*Pool{NewPool().Set(z, A100, 16)}, MaxThroughput, Constraints{})
	if errs[0] == nil {
		t.Fatal("want error from cancelled context")
	}
}

// TestWorkersConfigurationDeterminism: the facade returns the identical
// plan at any Workers setting.
func TestWorkersConfigurationDeterminism(t *testing.T) {
	z := GCPZone("us-central1", 'a')
	pool := NewPool().Set(z, A100, 32).Set(z, V100, 32)
	var ref string
	for i, w := range []int{1, 8} {
		sys, err := New(OPT350M(), []GPUType{A100, V100}, WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Plan(pool, MaxThroughput, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res.Plan.String()
		} else if got := res.Plan.String(); got != ref {
			t.Errorf("workers=%d plan differs:\n%s\n%s", w, ref, got)
		}
	}
}

// TestEstimatorSeam: the simulator and ground truth both stand behind the
// shared Estimator interface and agree a planned configuration fits.
func TestEstimatorSeam(t *testing.T) {
	sys, err := New(OPT350M(), []GPUType{A100})
	if err != nil {
		t.Fatal(err)
	}
	z := GCPZone("us-central1", 'a')
	res, err := sys.Plan(NewPool().Set(z, A100, 16), MaxThroughput, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range map[string]Estimator{
		"simulator":   sys.Simulator(),
		"groundtruth": sys.GroundTruth(),
	} {
		est, err := e.Estimate(res.Plan)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !est.FitsMemory || est.IterTime <= 0 {
			t.Errorf("%s: implausible estimate %+v", name, est)
		}
		tput, err := e.Throughput(res.Plan)
		if err != nil || tput <= 0 {
			t.Errorf("%s: throughput %v, err %v", name, tput, err)
		}
		peak, err := e.PeakMemory(res.Plan)
		if err != nil || peak <= 0 {
			t.Errorf("%s: peak memory %v, err %v", name, peak, err)
		}
	}
}
