package sailor

// Service is the multi-tenant front door of the planner: the paper's
// long-lived control plane (§5.5) that plans and replans many jobs as
// availability shifts, reshaped as a request/response API that can cross a
// wire. Tenants open named jobs, plan/replan/simulate against them, and
// close them; behind the front door the service shares profiled Systems
// between jobs with the same shape, keeps one WarmCache per job for replan
// continuity, and bounds how many planner searches run at once across all
// tenants.
//
// Determinism contract: a Plan or Replan answered by a Service (in-process
// or through sailor-serve) is byte-identical on the wire codec — plan,
// estimate, Explored, CacheHits, WarmStart — to what System.Plan or
// System.Replan returns for the same request history, at any worker count.
// Only the wall-clock SearchTime field differs between runs.

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/planner"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ErrNoFleet is returned by the fleet-mode calls (FleetEvent, Rebalance,
// FleetStats) of a service that has no capacity ledger configured.
var ErrNoFleet = errors.New("sailor: fleet mode not enabled (set ServiceConfig.Fleet or call SetFleet)")

// ErrOverloaded is the typed error of a request shed because the planner
// wait queue was full (ServiceConfig.MaxQueued). It is rpc.ErrOverloaded,
// so the condition survives the wire round-trip and the client retry
// policy classifies it as retryable-with-backoff.
var ErrOverloaded = rpc.ErrOverloaded

// WireVersion is the serving API's schema version: every request and
// response message carries it, and mismatched generations refuse each
// other loudly (see internal/wire).
const WireVersion = wire.Version

// ServiceStats is a point-in-time snapshot of a Service's counters.
type ServiceStats = wire.ServiceStats

// FleetStats is a point-in-time snapshot of the fleet capacity ledger.
type FleetStats = wire.FleetStats

// LeaseInfo is one row of the fleet's per-job lease table.
type LeaseInfo = wire.LeaseInfo

// RebalanceStep is one job's outcome in a Rebalance pass.
type RebalanceStep = wire.RebalanceStep

// Ledger is the shared cluster-state capacity ledger of fleet mode: total
// fleet capacity, per-job leases, and deterministic preemption under
// availability events. Build one with NewLedger and hand it to
// ServiceConfig.Fleet (or call Service.SetFleet).
type Ledger = fleet.Ledger

// Lease is one job's hold on fleet capacity.
type Lease = fleet.Lease

// ErrLeaseConflict is the typed error of a lease grant that lost the
// admission race against the fleet's free capacity.
var ErrLeaseConflict = fleet.ErrConflict

// NewLedger returns a fleet ledger over a total-capacity pool (which may be
// empty when capacity arrives through availability events).
func NewLedger(capacity *Pool) *Ledger { return fleet.NewLedger(capacity) }

// ServiceConfig tunes a Service. The zero value is a working default.
type ServiceConfig struct {
	// Workers is the planner search parallelism of every job's searches
	// (0 = runtime.NumCPU()). Plans are identical at any setting.
	Workers int
	// MaxConcurrent bounds how many planner searches (plans + replans) run
	// at once across all tenants; excess requests queue (0 = NumCPU).
	MaxConcurrent int
	// MaxQueued bounds how many requests may wait for a planner slot once
	// all MaxConcurrent are busy; requests beyond the bound are shed
	// immediately with ErrOverloaded instead of queueing without limit
	// (0 = 8×MaxConcurrent, negative = unbounded).
	MaxQueued int
	// SystemCacheSize caps the LRU of profiled Systems shared between jobs
	// with the same (model, GPU set, seed) shape (0 = 16).
	SystemCacheSize int
	// Seed fixes the profiling/ground-truth seed of every System the
	// service builds (0 = 1, the sailor.New default).
	Seed uint64
	// Fleet, when set, runs the service in fleet mode: all jobs plan
	// through this shared cluster-state ledger instead of caller-supplied
	// pools. Plan and Replan search the ledger's free-capacity view and
	// acquire a lease for the plan they return; availability events applied
	// via FleetEvent preempt leases in deterministic admission order; and
	// Rebalance replans every leaseless job, warm, in priority order.
	Fleet *fleet.Ledger
	// WithoutSpeculation disables the speculative plan prefetch layer
	// (see speculation.go): no forecasting, no prefetch cache, every replan
	// runs its search. Ablation/bisection knob — plans and estimates are
	// identical either way; only latency and the spec_* counters change.
	WithoutSpeculation bool
	// WithoutIncremental disables the planner's delta-scoped incremental
	// replanning probe in every search the service runs, foreground and
	// speculative alike. Ablation knob — plans are identical either way
	// (the probe only ever serves provably exact winners).
	WithoutIncremental bool
	// SequentialRebalance forces Rebalance to replan every job in one
	// goroutine, strictly in admission order — the pre-partitioning
	// behavior. The default (false) searches jobs whose reachable fleet
	// cells are disjoint concurrently and commits their leases in the same
	// admission order, which produces byte-identical steps, plans, and
	// ledger trajectories (asserted by TestRebalancePartitionedDeterminism);
	// the knob exists for ablation and bisection.
	SequentialRebalance bool
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = goruntime.NumCPU()
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 8 * c.MaxConcurrent
	}
	if c.SystemCacheSize <= 0 {
		c.SystemCacheSize = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// API is the request/response surface the in-process Service and the wire
// Client share, so CLIs and embedders drive either interchangeably.
type API interface {
	// OpenJob registers a named job: the model to plan for, the GPU types
	// its pools may contain, and the job's fleet priority (higher keeps
	// capacity longer under contention; ignored outside fleet mode).
	OpenJob(job string, m Model, gpus []GPUType, priority int) error
	// Plan searches cold for a plan of pool under the objective and
	// constraints. In fleet mode the shared ledger's free-capacity view
	// replaces pool, and the returned plan holds a lease on the fleet.
	Plan(ctx context.Context, job string, pool *Pool, obj Objective, cons Constraints) (PlanResult, error)
	// Replan warm-starts from the job's previously deployed plan and its
	// persistent warm cache. Fleet mode behaves as in Plan.
	Replan(ctx context.Context, job string, prev Plan, pool *Pool, obj Objective, cons Constraints) (PlanResult, error)
	// Simulate evaluates a plan with the job's analytical simulator.
	Simulate(job string, plan Plan) (Estimate, error)
	// CloseJob releases a job — and, in fleet mode, its lease; its shared
	// profiled System stays cached.
	CloseJob(job string) error
	// Stats snapshots the service counters.
	Stats() (ServiceStats, error)

	// Fleet mode. All but SetFleet return ErrNoFleet without a ledger.

	// SetFleet installs (or replaces) the fleet capacity ledger, enabling
	// fleet mode; jobCapGPUs bounds any single lease (0 = unlimited).
	// Replacing an active ledger drops every lease — an operator reset,
	// not a routine call.
	SetFleet(capacity *Pool, jobCapGPUs int) error
	// FleetEvent applies one availability event to the fleet and returns
	// the leases it broke, in admission order; the broken jobs replan on
	// the next Rebalance.
	FleetEvent(ev TraceEvent) ([]LeaseInfo, error)
	// Rebalance replans every open job that holds no lease — preempted and
	// not-yet-admitted jobs alike — in deterministic priority order
	// (priority descending, then job name ascending), warm where the job
	// deployed before, and leases the resulting plans.
	Rebalance(ctx context.Context) ([]RebalanceStep, error)
	// FleetStats snapshots the ledger: capacity, free view, lease table.
	FleetStats() (FleetStats, error)
}

// Service implements API in-process. It is safe for concurrent use by any
// number of tenants.
type Service struct {
	cfg   ServiceConfig
	start time.Time
	sem   chan struct{}

	mu       sync.Mutex
	jobs     map[string]*serviceJob
	systems  *systemLRU
	fleet    *fleet.Ledger
	rec      Recorder            // mutation recorder (nil = not durable)
	recovery *wire.RecoveryStats // set by Restore; surfaced in Stats

	requests  atomic.Uint64
	plans     atomic.Uint64
	replans   atomic.Uint64
	simulates atomic.Uint64
	errors    atomic.Uint64
	inflight  atomic.Int64
	sysHits   atomic.Uint64
	sysMisses atomic.Uint64

	// queued counts requests currently waiting for a planner slot;
	// overloaded and degraded are the resilience telemetry of Stats.
	queued     atomic.Int64
	overloaded atomic.Uint64
	degraded   atomic.Uint64

	// Speculation (see speculation.go): fleetForecast watches the ledger's
	// capacity trajectory and fleetPredicted holds the pool keys of its
	// last forecast, both guarded by mu; specWG tracks in-flight prefetch
	// workers (Quiesce waits on it).
	fleetForecast  *trace.Forecaster
	fleetPredicted map[string]bool
	specWG         sync.WaitGroup

	specHits        atomic.Uint64
	specMisses      atomic.Uint64
	specPrecomputed atomic.Uint64
}

var _ API = (*Service)(nil)

// serviceJob is one tenant's named job: a (possibly shared) profiled
// System plus the job's private warm-start cache, so replan continuity
// never leaks between tenants that share a System. In fleet mode the job
// also remembers its priority and the last deployed plan/objective, which
// seed the warm replans Rebalance runs after the job's lease breaks.
type serviceJob struct {
	// sys is the job's profiled System. It is nil for a job restored from a
	// durable snapshot until the first request touches it (jobSystem):
	// recovery re-registers jobs instantly and profiling re-warms lazily.
	sys  *System
	warm *planner.WarmCache

	// model is the job's declared training config — the profile key that
	// rebuilds sys lazily after a restore.
	model Model

	// gpus is the job's declared GPU-type set: the cells of the fleet its
	// searches may draw from (fleet views are filtered to these types) and
	// the key of the rebalance conflict partitioning.
	gpus     []GPUType
	priority int
	// lastPlan/lastObj/lastCons are the job's most recent successful
	// request, guarded by Service.mu.
	lastPlan Plan
	lastObj  Objective
	lastCons Constraints

	// spec is the job's speculation cache (self-locked; the zero value is
	// ready, so restored jobs need no extra wiring) and forecast the pool
	// forecaster feeding it, nil until the job's first replan and guarded
	// by Service.mu.
	spec     specCache
	forecast *trace.Forecaster
}

// NewService returns an empty multi-tenant planning service.
func NewService(cfg ServiceConfig) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:     cfg,
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		jobs:    map[string]*serviceJob{},
		systems: newSystemLRU(cfg.SystemCacheSize),
		fleet:   cfg.Fleet,
	}
}

// ledger returns the current fleet ledger (nil outside fleet mode).
func (s *Service) ledger() *fleet.Ledger {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet
}

// systemKey identifies a profiled System shape: model, GPU set (order
// insensitive — profiles are per-type), and seed.
func (s *Service) systemKey(m Model, gpus []GPUType) string {
	names := make([]string, len(gpus))
	for i, g := range gpus {
		names[i] = string(g)
	}
	sort.Strings(names)
	return fmt.Sprintf("%+v|%s|seed%d|w%d", m, strings.Join(names, ","), s.cfg.Seed, s.cfg.Workers)
}

// OpenJob registers a named job. Jobs with the same (model, GPU set, seed)
// shape share one profiled System — the profiling campaign runs once per
// shape, not once per tenant — while each job gets its own WarmCache.
// Priority orders the job in fleet mode (higher keeps capacity longer under
// contention and replans earlier); it is recorded but unused otherwise.
func (s *Service) OpenJob(job string, m Model, gpus []GPUType, priority int) error {
	if job == "" {
		return fmt.Errorf("sailor: empty job name")
	}
	if len(gpus) == 0 {
		return fmt.Errorf("sailor: job %q lists no GPU types", job)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[job]; ok {
		return fmt.Errorf("sailor: job %q already open", job)
	}
	sys, err := s.systemLocked(m, gpus)
	if err != nil {
		return fmt.Errorf("sailor: open job %q: %w", job, err)
	}
	s.jobs[job] = &serviceJob{sys: sys, warm: planner.NewWarmCache(), model: m,
		gpus: append([]GPUType(nil), gpus...), priority: priority, lastObj: MaxThroughput}
	if s.rec != nil {
		s.rec.RecordOpenJob(job, m, gpus, priority)
	}
	return nil
}

// systemLocked returns the shared profiled System of shape (m, gpus),
// building and caching it on miss. Callers hold s.mu.
func (s *Service) systemLocked(m Model, gpus []GPUType) (*System, error) {
	key := s.systemKey(m, gpus)
	sys, ok := s.systems.get(key)
	if ok {
		s.sysHits.Add(1)
		return sys, nil
	}
	s.sysMisses.Add(1)
	sys, err := New(m, gpus, WithSeed(s.cfg.Seed), WithWorkers(s.cfg.Workers))
	if err != nil {
		return nil, err
	}
	s.systems.put(key, sys)
	return sys, nil
}

// jobSystem returns j's profiled System, building it on first use: a job
// restored from a durable snapshot re-registers without a System, and the
// profiling campaign re-warms lazily at the job's first request.
func (s *Service) jobSystem(j *serviceJob) (*System, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.sys != nil {
		return j.sys, nil
	}
	sys, err := s.systemLocked(j.model, j.gpus)
	if err != nil {
		return nil, fmt.Errorf("sailor: rebuild profiled system: %w", err)
	}
	j.sys = sys
	return sys, nil
}

// CloseJob releases a named job and, in fleet mode, its lease. The job's
// shared System stays in the LRU for future tenants; its warm cache is
// dropped.
func (s *Service) CloseJob(job string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[job]; !ok {
		return fmt.Errorf("sailor: job %q not open", job)
	}
	delete(s.jobs, job)
	if s.fleet != nil {
		// In durable mode the release journals first (through the ledger
		// observer), so replay sees the lease drop before the close.
		s.fleet.Release(job)
	}
	if s.rec != nil {
		s.rec.RecordCloseJob(job)
	}
	return nil
}

func (s *Service) job(name string) (*serviceJob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return nil, fmt.Errorf("sailor: job %q not open (OpenJob first)", name)
	}
	return j, nil
}

// begin books a request of one class; the returned func ends it.
func (s *Service) begin(class *atomic.Uint64) func(err error) {
	s.requests.Add(1)
	class.Add(1)
	s.inflight.Add(1)
	return func(err error) {
		if err != nil {
			s.errors.Add(1)
		}
		s.inflight.Add(-1)
	}
}

// acquire takes a planner-concurrency slot, honoring ctx while queued.
// When every slot is busy the request joins a bounded wait queue
// (ServiceConfig.MaxQueued); joining past the bound sheds the request
// immediately with ErrOverloaded — back-pressure a remote client's retry
// policy can see and back off from, instead of an unbounded pile-up.
func (s *Service) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if max := s.cfg.MaxQueued; max >= 0 {
		if q := s.queued.Add(1); q > int64(max) {
			s.queued.Add(-1)
			s.overloaded.Add(1)
			return fmt.Errorf("sailor: planner queue full (%d waiting, max %d): %w", q-1, max, ErrOverloaded)
		}
		defer s.queued.Add(-1)
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("sailor: queued request cancelled: %w", ctx.Err())
	}
}

// degrade is the graceful-degradation path of Plan and Replan: when a
// search was cut off by the request deadline and the job has a warm
// incumbent (its last successful plan), answer with the incumbent
// re-estimated and marked Degraded instead of surfacing the deadline
// error. The ledger is never touched — in fleet mode the incumbent's
// lease (if any) is exactly what the job already holds. Cancellation and
// overload shedding do not degrade: a cancelled caller is gone, and a
// shed request must surface ErrOverloaded so the client backs off.
func (s *Service) degrade(ctx context.Context, j *serviceJob, searchErr error) (PlanResult, bool) {
	if !errors.Is(searchErr, context.DeadlineExceeded) && !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return PlanResult{}, false
	}
	if errors.Is(searchErr, ErrOverloaded) {
		return PlanResult{}, false
	}
	s.mu.Lock()
	prev := j.lastPlan
	s.mu.Unlock()
	if len(prev.Stages) == 0 {
		return PlanResult{}, false
	}
	sys, err := s.jobSystem(j)
	if err != nil {
		return PlanResult{}, false
	}
	est, err := sys.simulator.Estimate(prev)
	if err != nil {
		return PlanResult{}, false
	}
	s.degraded.Add(1)
	return PlanResult{Plan: prev, Estimate: est, Degraded: true}, true
}

// Plan implements API: a cold planner search, identical to System.Plan on
// the same inputs. In fleet mode the search runs over the shared ledger's
// free view (pool is ignored — the ledger is authoritative) and the
// returned plan holds a lease.
func (s *Service) Plan(ctx context.Context, job string, pool *Pool, obj Objective, cons Constraints) (res PlanResult, err error) {
	done := s.begin(&s.plans)
	defer func() { done(err) }()
	j, err := s.job(job)
	if err != nil {
		return PlanResult{}, err
	}
	if err := s.acquire(ctx); err != nil {
		if deg, ok := s.degrade(ctx, j, err); ok {
			return deg, nil
		}
		return PlanResult{}, err
	}
	defer func() { <-s.sem }()
	if led := s.ledger(); led != nil {
		res, err = s.planFleet(ctx, job, j, led, Plan{}, false, obj, cons)
		if err != nil {
			if deg, ok := s.degrade(ctx, j, err); ok {
				return deg, nil
			}
		}
		return res, err
	}
	sys, err := s.jobSystem(j)
	if err != nil {
		return PlanResult{}, err
	}
	pl := planner.New(sys.Model, sys.simulator, s.searchOpts(sys, obj, cons))
	res, err = pl.PlanContext(ctx, pool)
	if err != nil {
		if deg, ok := s.degrade(ctx, j, err); ok {
			return deg, nil
		}
		return res, err
	}
	s.recordPlan(job, j, res.Plan, obj, cons)
	return res, nil
}

// Replan implements API: a warm replan against the job's private cache,
// identical to System.Replan given the same request history. Fleet mode
// behaves as in Plan. When the speculation layer precomputed this exact
// request (see speculation.go) the cached result returns without a search
// — and without waiting for a planner slot; the release below pairs with
// the acquire on every later path.
func (s *Service) Replan(ctx context.Context, job string, prev Plan, pool *Pool, obj Objective, cons Constraints) (res PlanResult, err error) {
	done := s.begin(&s.replans)
	defer func() { done(err) }()
	j, err := s.job(job)
	if err != nil {
		return PlanResult{}, err
	}
	led := s.ledger()
	if led == nil && s.speculative() {
		if hit, ok := s.consultSpec(j, pool, prev, obj, cons); ok {
			s.recordPlan(job, j, hit.Plan, obj, cons)
			s.observeReplan(job, j, pool, hit.Plan, obj, cons)
			return hit, nil
		}
	}
	if err := s.acquire(ctx); err != nil {
		if deg, ok := s.degrade(ctx, j, err); ok {
			return deg, nil
		}
		return PlanResult{}, err
	}
	if led != nil {
		res, err = s.planFleet(ctx, job, j, led, prev, true, obj, cons)
		<-s.sem
		if err != nil {
			if deg, ok := s.degrade(ctx, j, err); ok {
				return deg, nil
			}
		}
		return res, err
	}
	sys, err := s.jobSystem(j)
	if err != nil {
		<-s.sem
		return PlanResult{}, err
	}
	opts := s.searchOpts(sys, obj, cons)
	opts.Warm = s.warmRef(j)
	pl := planner.New(sys.Model, sys.simulator, opts)
	res, err = pl.ReplanContext(ctx, prev, pool)
	// Release before the prefetch round below, so speculation starts with
	// at least this request's own slot idle.
	<-s.sem
	if err != nil {
		if deg, ok := s.degrade(ctx, j, err); ok {
			return deg, nil
		}
		return res, err
	}
	s.recordPlan(job, j, res.Plan, obj, cons)
	s.observeReplan(job, j, pool, res.Plan, obj, cons)
	return res, nil
}

// recordPlan remembers a job's last successful request — the seed of the
// warm replans Rebalance issues on its behalf. The journal record is only
// emitted while the job is still this open incarnation: a tenant closing
// the job mid-request must not leave a plan record for a closed job.
func (s *Service) recordPlan(name string, j *serviceJob, plan Plan, obj Objective, cons Constraints) {
	s.mu.Lock()
	j.lastPlan, j.lastObj, j.lastCons = plan, obj, cons
	if s.rec != nil && s.jobs[name] == j {
		s.rec.RecordJobPlan(name, plan, obj, cons)
	}
	s.mu.Unlock()
}

// planFleet runs one leased search for a fleet job: search the ledger's
// view for the job (free capacity plus its own lease), then install the
// resulting plan as the job's lease. A grant can lose the race against a
// concurrent tenant between the view snapshot and the install; the loop
// retries against a fresh view a few times before giving up with
// ErrLeaseConflict.
func (s *Service) planFleet(ctx context.Context, name string, j *serviceJob, led *fleet.Ledger, prev Plan, warm bool, obj Objective, cons Constraints) (PlanResult, error) {
	const attempts = 3
	var lastErr error
	for a := 0; a < attempts; a++ {
		res, err := s.searchFleet(ctx, name, j, led, prev, warm, obj, cons)
		if err != nil {
			return PlanResult{}, err
		}
		switch err := s.commitFleet(name, j, led, res, obj, cons); {
		case err == nil:
			return res, nil
		case errors.Is(err, fleet.ErrConflict):
			lastErr = err // the ledger moved under us; search a fresh view
		default:
			return PlanResult{}, err
		}
	}
	return PlanResult{}, fmt.Errorf("sailor: job %q lost the fleet admission race %d times: %w", name, attempts, lastErr)
}

// searchFleet runs the planner search of one fleet grant attempt: the view
// is the ledger's free capacity (plus the job's own lease) restricted to
// the job's declared GPU types, then capped. Filtering before capping means
// the per-job cap is spent on cells the job can use, and makes the view a
// pure function of the job's own-type cells — the independence property the
// partitioned rebalance relies on.
func (s *Service) searchFleet(ctx context.Context, name string, j *serviceJob, led *fleet.Ledger, prev Plan, warm bool, obj Objective, cons Constraints) (PlanResult, error) {
	sys, err := s.jobSystem(j)
	if err != nil {
		return PlanResult{}, err
	}
	view := led.ViewForTypes(name, j.gpus)
	if view.TotalGPUs() == 0 {
		return PlanResult{}, fmt.Errorf("sailor: fleet has no free capacity for job %q", name)
	}
	// A warm replan whose exact view was prefetched after a fleet event
	// (see speculation.go) answers from the speculation cache; the key
	// pins the full view bytes, so a view an earlier commit of this pass
	// reshaped simply misses.
	if warm && len(prev.Stages) > 0 && s.speculative() {
		if res, ok := s.consultSpec(j, view, prev, obj, cons); ok {
			return res, nil
		}
	}
	opts := s.searchOpts(sys, obj, cons)
	opts.Guard = planner.NewCapacityGuard(view)
	if warm {
		opts.Warm = s.warmRef(j)
	}
	pl := planner.New(sys.Model, sys.simulator, opts)
	if warm && len(prev.Stages) > 0 {
		return pl.ReplanContext(ctx, prev, view)
	}
	return pl.PlanContext(ctx, view)
}

// commitFleet installs a searched plan as job's lease and records it as the
// job's last successful request. It returns fleet.ErrConflict when the
// ledger moved between the search and the grant (callers retry or fall back
// to a fresh search).
func (s *Service) commitFleet(name string, j *serviceJob, led *fleet.Ledger, res PlanResult, obj Objective, cons Constraints) error {
	granted, err := led.Install(name, j.priority, res.Plan)
	if err != nil {
		return err
	}
	// CloseJob may have raced the search: it releases the lease under
	// s.mu, so re-check the job is still this open incarnation after
	// the install and give the capacity back if it is not. The release
	// is conditional on the grant version, so if the name was already
	// reopened and re-leased, the new incarnation's lease survives.
	s.mu.Lock()
	open := s.jobs[name] == j
	if open {
		j.lastPlan, j.lastObj, j.lastCons = res.Plan, obj, cons
		if s.rec != nil {
			s.rec.RecordJobPlan(name, res.Plan, obj, cons)
		}
	}
	s.mu.Unlock()
	if !open {
		led.ReleaseIf(name, granted)
		return fmt.Errorf("sailor: job %q closed while planning", name)
	}
	return nil
}

// SetFleet implements API: install (or replace) the fleet capacity ledger.
// Replacing an active ledger drops every lease; open jobs keep their warm
// caches and last plans, so the next Rebalance re-admits them warm.
func (s *Service) SetFleet(capacity *Pool, jobCapGPUs int) error {
	led := fleet.NewLedger(capacity)
	led.SetJobCap(jobCapGPUs)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.installFleetLocked(led)
	return nil
}

// installFleetLocked makes led the service's ledger and, in durable mode,
// journals its full post-install state before attaching the op observer —
// so the initial cap is not double-journaled and every later mutation is.
// Callers hold s.mu.
func (s *Service) installFleetLocked(led *fleet.Ledger) {
	s.fleet = led
	if s.rec != nil {
		s.rec.RecordSetFleet(led.Snapshot())
		led.SetObserver(s.rec.RecordLedgerOp)
	}
}

// SetFleetLedger installs (or replaces) a caller-built capacity ledger —
// SetFleet for embedders that need to keep the handle, e.g. to move the
// per-job cap mid-replay with Ledger.SetJobCap (demand autoscaling) or to
// drive the ledger directly in a test harness. The same replacement
// semantics as SetFleet apply: every lease is dropped, open jobs keep
// their warm caches and last plans.
func (s *Service) SetFleetLedger(led *Ledger) error {
	if led == nil {
		return fmt.Errorf("sailor: nil fleet ledger")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.installFleetLocked(led)
	return nil
}

// FleetEvent implements API: apply one availability event to the fleet and
// report the leases it broke, in admission order.
func (s *Service) FleetEvent(ev TraceEvent) ([]LeaseInfo, error) {
	led := s.ledger()
	if led == nil {
		return nil, ErrNoFleet
	}
	broken := led.Apply(ev)
	s.observeFleetEvent(led, broken)
	out := make([]LeaseInfo, len(broken))
	for i, le := range broken {
		out[i] = wire.FromLease(le)
	}
	return out, nil
}

// rebalCand is one leaseless job queued for a Rebalance pass, snapshotted
// under s.mu so the pass works off a consistent candidate set.
type rebalCand struct {
	name string
	j    *serviceJob
	prev Plan
	obj  Objective
	cons Constraints
	pri  int
}

// Rebalance implements API: replan every open job that holds no lease, in
// deterministic priority order (priority descending, then job name
// ascending). A job that deployed before replans warm from its last plan;
// a never-admitted job plans cold. Jobs that find no feasible plan — or no
// free capacity at all — are reported with action "wait" and retried on
// the next call. Cancellation returns the steps completed so far.
//
// Jobs whose reachable fleet cells are disjoint from every other
// candidate's — no GPU type with fleet capacity is shared — cannot contend
// for the same GPUs, so their planner searches run concurrently (still
// bounded by MaxConcurrent); leases are then committed strictly in
// admission order, with the no-free-capacity pre-check re-evaluated at each
// job's commit turn, so the steps, plans, telemetry, and ledger version
// trajectory are byte-identical to the sequential pass. Candidates that do
// share reachable cells keep the sequential search-at-commit-time path.
// ServiceConfig.SequentialRebalance forces the sequential pass for every
// job.
func (s *Service) Rebalance(ctx context.Context) ([]RebalanceStep, error) {
	led := s.ledger()
	if led == nil {
		return nil, ErrNoFleet
	}
	s.mu.Lock()
	sequential := s.cfg.SequentialRebalance
	cands := make([]rebalCand, 0, len(s.jobs))
	for name, j := range s.jobs {
		if led.Held(name) {
			continue
		}
		cands = append(cands, rebalCand{name, j, j.lastPlan, j.lastObj, j.lastCons, j.priority})
	}
	s.mu.Unlock()
	sort.Slice(cands, func(i, k int) bool {
		if cands[i].pri != cands[k].pri {
			return cands[i].pri > cands[k].pri
		}
		return cands[i].name < cands[k].name
	})
	if !sequential && len(cands) > 1 && led.FreeView().TotalGPUs() > 0 {
		if solo := soloCandidates(led, cands); solo != nil {
			return s.rebalancePartitioned(ctx, led, cands, solo)
		}
	}
	return s.rebalanceSequential(ctx, led, cands)
}

// rebalanceSequential is the one-goroutine rebalance pass: each candidate
// searches and commits at its own turn, in admission order.
func (s *Service) rebalanceSequential(ctx context.Context, led *fleet.Ledger, cands []rebalCand) ([]RebalanceStep, error) {
	var steps []RebalanceStep
	for _, c := range cands {
		if err := ctx.Err(); err != nil {
			return steps, err
		}
		step := RebalanceStep{Job: c.name, Priority: c.pri, Action: "admit"}
		if len(c.prev.Stages) > 0 {
			step.Action = "replan"
		}
		if led.FreeView().TotalGPUs() == 0 {
			step.Action, step.Error = "wait", "no free fleet capacity"
			steps = append(steps, step)
			continue
		}
		if err := s.acquire(ctx); err != nil {
			return steps, err
		}
		// Rebalance searches always run against the job's warm cache: an
		// admission populates it, so the preemption-driven replan that
		// follows a capacity loss reuses the DP regions already solved.
		res, err := s.planFleet(ctx, c.name, c.j, led, c.prev, true, c.obj, c.cons)
		<-s.sem
		if err != nil {
			step.Action, step.Error = "wait", err.Error()
		} else {
			r := wire.FromResult(res)
			step.Result = &r
		}
		steps = append(steps, step)
	}
	return steps, nil
}

// soloCandidates partitions the rebalance candidates by the fleet cells
// their views can touch. A job's reachable cells are the fleet-capacity
// cells of its declared GPU types, so two candidates conflict exactly when
// they share a GPU type the fleet has capacity for. The returned mask marks
// the singleton partitions — candidates conflicting with no other — whose
// searches may run concurrently; nil when no candidate is solo (everything
// falls back to the sequential pass).
func soloCandidates(led *fleet.Ledger, cands []rebalCand) []bool {
	capacity := led.Capacity()
	users := map[GPUType]int{}
	reach := make([][]GPUType, len(cands))
	for i, c := range cands {
		seen := map[GPUType]bool{}
		for _, g := range c.j.gpus {
			if !seen[g] && capacity.TotalOf(g) > 0 {
				seen[g] = true
				reach[i] = append(reach[i], g)
				users[g]++
			}
		}
	}
	solo := make([]bool, len(cands))
	any := false
	for i := range cands {
		solo[i] = true
		for _, g := range reach[i] {
			if users[g] > 1 {
				solo[i] = false
				break
			}
		}
		if solo[i] {
			any = true
		}
	}
	if !any {
		return nil
	}
	return solo
}

// rebalancePartitioned is the two-phase rebalance pass. Phase one searches
// every solo candidate concurrently under the planner semaphore: a solo
// job's view is a pure function of its own-type cells, which no other
// candidate's commit can touch, so the search result is identical to the
// one the sequential pass would compute at the job's turn. Phase two walks
// all candidates in admission order and commits — precomputed plans install
// directly, conflicting candidates search inline exactly as the sequential
// pass does — so the ledger version trajectory and every step are
// byte-identical to rebalanceSequential (asserted by
// TestRebalancePartitionedDeterminism).
func (s *Service) rebalancePartitioned(ctx context.Context, led *fleet.Ledger, cands []rebalCand, solo []bool) ([]RebalanceStep, error) {
	type searched struct {
		res PlanResult
		err error
	}
	pre := make([]*searched, len(cands))
	var wg sync.WaitGroup
	for i := range cands {
		if !solo[i] {
			continue
		}
		pre[i] = &searched{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cands[i]
			if err := s.acquire(ctx); err != nil {
				pre[i].err = err
				return
			}
			defer func() { <-s.sem }()
			pre[i].res, pre[i].err = s.searchFleet(ctx, c.name, c.j, led, c.prev, true, c.obj, c.cons)
		}(i)
	}
	wg.Wait()
	var steps []RebalanceStep
	for i, c := range cands {
		if err := ctx.Err(); err != nil {
			return steps, err
		}
		step := RebalanceStep{Job: c.name, Priority: c.pri, Action: "admit"}
		if len(c.prev.Stages) > 0 {
			step.Action = "replan"
		}
		// The no-free-capacity pre-check is re-evaluated at each commit
		// turn: it reads global free capacity, which earlier commits of
		// this very pass may have consumed.
		if led.FreeView().TotalGPUs() == 0 {
			step.Action, step.Error = "wait", "no free fleet capacity"
			steps = append(steps, step)
			continue
		}
		var res PlanResult
		var err error
		inline := func() {
			if err = s.acquire(ctx); err != nil {
				return
			}
			res, err = s.planFleet(ctx, c.name, c.j, led, c.prev, true, c.obj, c.cons)
			<-s.sem
		}
		switch {
		case pre[i] == nil:
			// A conflicting candidate: its view depends on this pass's
			// earlier commits, so search at its turn, like the sequential
			// pass.
			inline()
		case pre[i].err != nil:
			err = pre[i].err
		default:
			res = pre[i].res
			if err = s.commitFleet(c.name, c.j, led, res, c.obj, c.cons); errors.Is(err, fleet.ErrConflict) {
				// An external tenant moved the ledger under the
				// precomputed grant; fall back to a fresh inline search.
				inline()
			}
		}
		if ctxErr := ctx.Err(); ctxErr != nil && err != nil {
			return steps, ctxErr
		}
		if err != nil {
			step.Action, step.Error = "wait", err.Error()
		} else {
			r := wire.FromResult(res)
			step.Result = &r
		}
		steps = append(steps, step)
	}
	return steps, nil
}

// FleetStats implements API with a consistent ledger snapshot.
func (s *Service) FleetStats() (FleetStats, error) {
	led := s.ledger()
	if led == nil {
		return FleetStats{}, ErrNoFleet
	}
	return wire.FromFleetSnapshot(led.Snapshot()), nil
}

// Simulate implements API: the analytical simulator's estimate of a plan.
// Simulation is cheap and does not occupy a planner-concurrency slot.
func (s *Service) Simulate(job string, plan Plan) (est Estimate, err error) {
	done := s.begin(&s.simulates)
	defer func() { done(err) }()
	j, err := s.job(job)
	if err != nil {
		return Estimate{}, err
	}
	sys, err := s.jobSystem(j)
	if err != nil {
		return Estimate{}, err
	}
	return sys.simulator.Estimate(plan)
}

// Stats implements API with a consistent snapshot of the counters.
func (s *Service) Stats() (ServiceStats, error) {
	s.mu.Lock()
	jobs := len(s.jobs)
	cached := s.systems.len()
	recovery := s.recovery
	rec := s.rec
	s.mu.Unlock()
	// The recorder's sticky append error is read outside s.mu: the
	// persist.Store takes its own lock and must never nest inside ours.
	journalErr := ""
	if hr, ok := rec.(interface{ Err() error }); ok {
		if err := hr.Err(); err != nil {
			journalErr = err.Error()
		}
	}
	uptime := time.Since(s.start).Seconds()
	reqs := s.requests.Load()
	qps := 0.0
	if uptime > 0 {
		qps = float64(reqs) / uptime
	}
	return ServiceStats{
		UptimeSeconds:     uptime,
		Requests:          reqs,
		QPS:               qps,
		Plans:             s.plans.Load(),
		Replans:           s.replans.Load(),
		Simulates:         s.simulates.Load(),
		Errors:            s.errors.Load(),
		InFlight:          s.inflight.Load(),
		JobsOpen:          jobs,
		SystemsCached:     cached,
		SystemCacheHits:   s.sysHits.Load(),
		SystemCacheMisses: s.sysMisses.Load(),
		Recovery:          recovery,
		Overloaded:        s.overloaded.Load(),
		Degraded:          s.degraded.Load(),
		JournalError:      journalErr,
		SpecHits:          s.specHits.Load(),
		SpecMisses:        s.specMisses.Load(),
		SpecPrecomputed:   s.specPrecomputed.Load(),
	}, nil
}

// systemLRU is a small least-recently-used cache of profiled Systems.
// Callers hold s.mu; the LRU itself is not locked.
type systemLRU struct {
	cap   int
	order []string // most recently used first
	items map[string]*System
}

func newSystemLRU(cap int) *systemLRU {
	return &systemLRU{cap: cap, items: map[string]*System{}}
}

func (l *systemLRU) len() int { return len(l.items) }

func (l *systemLRU) touch(key string) {
	for i, k := range l.order {
		if k == key {
			copy(l.order[1:i+1], l.order[:i])
			l.order[0] = key
			return
		}
	}
	l.order = append([]string{key}, l.order...)
}

func (l *systemLRU) get(key string) (*System, bool) {
	sys, ok := l.items[key]
	if ok {
		l.touch(key)
	}
	return sys, ok
}

func (l *systemLRU) put(key string, sys *System) {
	l.items[key] = sys
	l.touch(key)
	for len(l.items) > l.cap {
		last := l.order[len(l.order)-1]
		l.order = l.order[:len(l.order)-1]
		delete(l.items, last)
	}
}
