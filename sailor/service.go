package sailor

// Service is the multi-tenant front door of the planner: the paper's
// long-lived control plane (§5.5) that plans and replans many jobs as
// availability shifts, reshaped as a request/response API that can cross a
// wire. Tenants open named jobs, plan/replan/simulate against them, and
// close them; behind the front door the service shares profiled Systems
// between jobs with the same shape, keeps one WarmCache per job for replan
// continuity, and bounds how many planner searches run at once across all
// tenants.
//
// Determinism contract: a Plan or Replan answered by a Service (in-process
// or through sailor-serve) is byte-identical on the wire codec — plan,
// estimate, Explored, CacheHits, WarmStart — to what System.Plan or
// System.Replan returns for the same request history, at any worker count.
// Only the wall-clock SearchTime field differs between runs.

import (
	"context"
	"fmt"
	goruntime "runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/planner"
	"repro/internal/wire"
)

// WireVersion is the serving API's schema version: every request and
// response message carries it, and mismatched generations refuse each
// other loudly (see internal/wire).
const WireVersion = wire.Version

// ServiceStats is a point-in-time snapshot of a Service's counters.
type ServiceStats = wire.ServiceStats

// ServiceConfig tunes a Service. The zero value is a working default.
type ServiceConfig struct {
	// Workers is the planner search parallelism of every job's searches
	// (0 = runtime.NumCPU()). Plans are identical at any setting.
	Workers int
	// MaxConcurrent bounds how many planner searches (plans + replans) run
	// at once across all tenants; excess requests queue (0 = NumCPU).
	MaxConcurrent int
	// SystemCacheSize caps the LRU of profiled Systems shared between jobs
	// with the same (model, GPU set, seed) shape (0 = 16).
	SystemCacheSize int
	// Seed fixes the profiling/ground-truth seed of every System the
	// service builds (0 = 1, the sailor.New default).
	Seed uint64
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = goruntime.NumCPU()
	}
	if c.SystemCacheSize <= 0 {
		c.SystemCacheSize = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// API is the request/response surface the in-process Service and the wire
// Client share, so CLIs and embedders drive either interchangeably.
type API interface {
	// OpenJob registers a named job: the model to plan for and the GPU
	// types its pools may contain.
	OpenJob(job string, m Model, gpus []GPUType) error
	// Plan searches cold for a plan of pool under the objective and
	// constraints.
	Plan(ctx context.Context, job string, pool *Pool, obj Objective, cons Constraints) (PlanResult, error)
	// Replan warm-starts from the job's previously deployed plan and its
	// persistent warm cache.
	Replan(ctx context.Context, job string, prev Plan, pool *Pool, obj Objective, cons Constraints) (PlanResult, error)
	// Simulate evaluates a plan with the job's analytical simulator.
	Simulate(job string, plan Plan) (Estimate, error)
	// CloseJob releases a job; its shared profiled System stays cached.
	CloseJob(job string) error
	// Stats snapshots the service counters.
	Stats() (ServiceStats, error)
}

// Service implements API in-process. It is safe for concurrent use by any
// number of tenants.
type Service struct {
	cfg   ServiceConfig
	start time.Time
	sem   chan struct{}

	mu      sync.Mutex
	jobs    map[string]*serviceJob
	systems *systemLRU

	requests  atomic.Uint64
	plans     atomic.Uint64
	replans   atomic.Uint64
	simulates atomic.Uint64
	errors    atomic.Uint64
	inflight  atomic.Int64
	sysHits   atomic.Uint64
	sysMisses atomic.Uint64
}

var _ API = (*Service)(nil)

// serviceJob is one tenant's named job: a (possibly shared) profiled
// System plus the job's private warm-start cache, so replan continuity
// never leaks between tenants that share a System.
type serviceJob struct {
	sys  *System
	warm *planner.WarmCache
}

// NewService returns an empty multi-tenant planning service.
func NewService(cfg ServiceConfig) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:     cfg,
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		jobs:    map[string]*serviceJob{},
		systems: newSystemLRU(cfg.SystemCacheSize),
	}
}

// systemKey identifies a profiled System shape: model, GPU set (order
// insensitive — profiles are per-type), and seed.
func (s *Service) systemKey(m Model, gpus []GPUType) string {
	names := make([]string, len(gpus))
	for i, g := range gpus {
		names[i] = string(g)
	}
	sort.Strings(names)
	return fmt.Sprintf("%+v|%s|seed%d|w%d", m, strings.Join(names, ","), s.cfg.Seed, s.cfg.Workers)
}

// OpenJob registers a named job. Jobs with the same (model, GPU set, seed)
// shape share one profiled System — the profiling campaign runs once per
// shape, not once per tenant — while each job gets its own WarmCache.
func (s *Service) OpenJob(job string, m Model, gpus []GPUType) error {
	if job == "" {
		return fmt.Errorf("sailor: empty job name")
	}
	if len(gpus) == 0 {
		return fmt.Errorf("sailor: job %q lists no GPU types", job)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[job]; ok {
		return fmt.Errorf("sailor: job %q already open", job)
	}
	key := s.systemKey(m, gpus)
	sys, ok := s.systems.get(key)
	if ok {
		s.sysHits.Add(1)
	} else {
		s.sysMisses.Add(1)
		var err error
		sys, err = New(m, gpus, WithSeed(s.cfg.Seed), WithWorkers(s.cfg.Workers))
		if err != nil {
			return fmt.Errorf("sailor: open job %q: %w", job, err)
		}
		s.systems.put(key, sys)
	}
	s.jobs[job] = &serviceJob{sys: sys, warm: planner.NewWarmCache()}
	return nil
}

// CloseJob releases a named job. The job's shared System stays in the LRU
// for future tenants; its warm cache is dropped.
func (s *Service) CloseJob(job string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[job]; !ok {
		return fmt.Errorf("sailor: job %q not open", job)
	}
	delete(s.jobs, job)
	return nil
}

func (s *Service) job(name string) (*serviceJob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return nil, fmt.Errorf("sailor: job %q not open (OpenJob first)", name)
	}
	return j, nil
}

// begin books a request of one class; the returned func ends it.
func (s *Service) begin(class *atomic.Uint64) func(err error) {
	s.requests.Add(1)
	class.Add(1)
	s.inflight.Add(1)
	return func(err error) {
		if err != nil {
			s.errors.Add(1)
		}
		s.inflight.Add(-1)
	}
}

// acquire takes a planner-concurrency slot, honoring ctx while queued.
func (s *Service) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("sailor: queued request cancelled: %w", ctx.Err())
	}
}

// Plan implements API: a cold planner search, identical to System.Plan on
// the same inputs.
func (s *Service) Plan(ctx context.Context, job string, pool *Pool, obj Objective, cons Constraints) (res PlanResult, err error) {
	done := s.begin(&s.plans)
	defer func() { done(err) }()
	j, err := s.job(job)
	if err != nil {
		return PlanResult{}, err
	}
	if err := s.acquire(ctx); err != nil {
		return PlanResult{}, err
	}
	defer func() { <-s.sem }()
	sys := j.sys
	pl := planner.New(sys.Model, sys.simulator, sys.plannerOpts(obj, cons, sys.workerCount()))
	return pl.PlanContext(ctx, pool)
}

// Replan implements API: a warm replan against the job's private cache,
// identical to System.Replan given the same request history.
func (s *Service) Replan(ctx context.Context, job string, prev Plan, pool *Pool, obj Objective, cons Constraints) (res PlanResult, err error) {
	done := s.begin(&s.replans)
	defer func() { done(err) }()
	j, err := s.job(job)
	if err != nil {
		return PlanResult{}, err
	}
	if err := s.acquire(ctx); err != nil {
		return PlanResult{}, err
	}
	defer func() { <-s.sem }()
	sys := j.sys
	opts := sys.plannerOpts(obj, cons, sys.workerCount())
	opts.Warm = j.warm
	pl := planner.New(sys.Model, sys.simulator, opts)
	return pl.ReplanContext(ctx, prev, pool)
}

// Simulate implements API: the analytical simulator's estimate of a plan.
// Simulation is cheap and does not occupy a planner-concurrency slot.
func (s *Service) Simulate(job string, plan Plan) (est Estimate, err error) {
	done := s.begin(&s.simulates)
	defer func() { done(err) }()
	j, err := s.job(job)
	if err != nil {
		return Estimate{}, err
	}
	return j.sys.simulator.Estimate(plan)
}

// Stats implements API with a consistent snapshot of the counters.
func (s *Service) Stats() (ServiceStats, error) {
	s.mu.Lock()
	jobs := len(s.jobs)
	cached := s.systems.len()
	s.mu.Unlock()
	uptime := time.Since(s.start).Seconds()
	reqs := s.requests.Load()
	qps := 0.0
	if uptime > 0 {
		qps = float64(reqs) / uptime
	}
	return ServiceStats{
		UptimeSeconds:     uptime,
		Requests:          reqs,
		QPS:               qps,
		Plans:             s.plans.Load(),
		Replans:           s.replans.Load(),
		Simulates:         s.simulates.Load(),
		Errors:            s.errors.Load(),
		InFlight:          s.inflight.Load(),
		JobsOpen:          jobs,
		SystemsCached:     cached,
		SystemCacheHits:   s.sysHits.Load(),
		SystemCacheMisses: s.sysMisses.Load(),
	}, nil
}

// systemLRU is a small least-recently-used cache of profiled Systems.
// Callers hold s.mu; the LRU itself is not locked.
type systemLRU struct {
	cap   int
	order []string // most recently used first
	items map[string]*System
}

func newSystemLRU(cap int) *systemLRU {
	return &systemLRU{cap: cap, items: map[string]*System{}}
}

func (l *systemLRU) len() int { return len(l.items) }

func (l *systemLRU) touch(key string) {
	for i, k := range l.order {
		if k == key {
			copy(l.order[1:i+1], l.order[:i])
			l.order[0] = key
			return
		}
	}
	l.order = append([]string{key}, l.order...)
}

func (l *systemLRU) get(key string) (*System, bool) {
	sys, ok := l.items[key]
	if ok {
		l.touch(key)
	}
	return sys, ok
}

func (l *systemLRU) put(key string, sys *System) {
	l.items[key] = sys
	l.touch(key)
	for len(l.items) > l.cap {
		last := l.order[len(l.order)-1]
		l.order = l.order[:len(l.order)-1]
		delete(l.items, last)
	}
}
