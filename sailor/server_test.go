package sailor

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"

	"repro/internal/rpc"
)

// startTestServer hosts a fresh Service on a loopback listener.
func startTestServer(t *testing.T, cfg ServiceConfig) (*Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lis, NewService(cfg))
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, lis.Addr().String()
}

// TestWireDeterminism is the acceptance test of the determinism contract:
// plan and replan responses served over the wire are byte-identical (on
// the wire codec, SearchTime zeroed) to in-process System.Plan and
// System.Replan for the same request history — including the Explored and
// CacheHits telemetry — at more than one worker count.
func TestWireDeterminism(t *testing.T) {
	pools := replayPools(t, "preemption-storm", 1, 5)
	for _, workers := range []int{1, 8} {
		_, addr := startTestServer(t, ServiceConfig{Workers: workers})
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.OpenJob("tenant", OPT350M(), []GPUType{A100}, 0); err != nil {
			t.Fatal(err)
		}
		sys, err := New(OPT350M(), []GPUType{A100}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}

		// Cold plan.
		remote, err := c.Plan(context.Background(), "tenant", pools[0], MaxThroughput, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		local, err := sys.Plan(pools[0], MaxThroughput, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := canonicalResult(t, remote), canonicalResult(t, local); a != b {
			t.Errorf("workers=%d: wire plan != in-process plan:\n%s\nvs\n%s", workers, a, b)
		}

		// Warm replan chain: the wire responses must track System.Replan's
		// trajectory exactly, cache-hit telemetry included.
		var prevRemote, prevLocal Plan
		prevRemote, prevLocal = remote.Plan, local.Plan
		for i, pool := range pools[1:] {
			remote, err := c.Replan(context.Background(), "tenant", prevRemote, pool, MaxThroughput, Constraints{})
			if err != nil {
				t.Fatalf("workers=%d replan %d: %v", workers, i, err)
			}
			local, err := sys.Replan(prevLocal, pool, MaxThroughput, Constraints{})
			if err != nil {
				t.Fatal(err)
			}
			if a, b := canonicalResult(t, remote), canonicalResult(t, local); a != b {
				t.Errorf("workers=%d replan %d: wire != in-process:\n%s\nvs\n%s", workers, i, a, b)
			}
			prevRemote, prevLocal = remote.Plan, local.Plan
		}

		// Simulate crosses the wire losslessly too.
		remoteEst, err := c.Simulate("tenant", prevRemote)
		if err != nil {
			t.Fatal(err)
		}
		localEst, err := sys.Simulate(prevLocal)
		if err != nil {
			t.Fatal(err)
		}
		if remoteEst.IterTime != localEst.IterTime || remoteEst.PeakMemory != localEst.PeakMemory {
			t.Errorf("workers=%d: wire estimate diverged: %+v vs %+v", workers, remoteEst, localEst)
		}
		if err := c.CloseJob("tenant"); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
}

// TestWireConcurrentTenants: several clients of one daemon plan and replan
// concurrently (race-detector coverage for the full wire stack) and each
// gets the deterministic reference answer.
func TestWireConcurrentTenants(t *testing.T) {
	pools := replayPools(t, "preemption-storm", 3, 3)
	_, addr := startTestServer(t, ServiceConfig{Workers: 1, MaxConcurrent: 4})
	sys, err := New(OPT350M(), []GPUType{A100}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	cold := make([]string, len(pools))
	for i, p := range pools {
		res, err := sys.Plan(p, MaxThroughput, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		cold[i] = res.Plan.String()
	}

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			job := string(rune('a' + g))
			if err := c.OpenJob(job, OPT350M(), []GPUType{A100}, 0); err != nil {
				t.Error(err)
				return
			}
			var prev Plan
			for i, pool := range pools {
				res, err := c.Replan(context.Background(), job, prev, pool, MaxThroughput, Constraints{})
				if err != nil {
					t.Errorf("tenant %s pool %d: %v", job, i, err)
					return
				}
				if res.Plan.String() != cold[i] {
					t.Errorf("tenant %s pool %d: plan diverged", job, i)
				}
				prev = res.Plan
			}
		}(g)
	}
	wg.Wait()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replans != uint64(3*len(pools)) {
		t.Errorf("Replans = %d, want %d", st.Replans, 3*len(pools))
	}
	if st.JobsOpen != 3 {
		t.Errorf("JobsOpen = %d, want 3", st.JobsOpen)
	}
}

// TestWireErrors: daemon-side failures surface as errors on the client,
// and a closed daemon yields the rpc layer's typed errors.
func TestWireErrors(t *testing.T) {
	srv, addr := startTestServer(t, ServiceConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Plan(context.Background(), "ghost", NewPool(), MaxThroughput, Constraints{}); err == nil {
		t.Error("planning an unopened job must fail across the wire")
	}
	if err := c.OpenJob("", OPT350M(), []GPUType{A100}, 0); err == nil {
		t.Error("empty job name must fail across the wire")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Plan(ctx, "x", NewPool(), MaxThroughput, Constraints{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx = %v, want context.Canceled", err)
	}
	srv.Close()
	if _, err := c.Stats(); err == nil {
		t.Error("stats after server close must fail")
	} else if !errors.Is(err, rpc.ErrConnectionLost) && !errors.Is(err, rpc.ErrServerClosed) {
		t.Errorf("post-close error = %v, want a typed rpc error", err)
	}
}
