package sailor

import "testing"

// TestWithoutDominancePruningParity covers the facade-level ablation knob:
// a System built WithoutDominancePruning returns the identical plan and
// estimate the default System returns on a heterogeneous pool, while the
// default System visibly explores less — the knob only trades search work,
// never answers.
func TestWithoutDominancePruningParity(t *testing.T) {
	zone := GCPZone("us-central1", 'a')
	pool := NewPool().Set(zone, A100, 16).Set(zone, V100, 16)
	on, err := New(OPT350M(), []GPUType{A100, V100}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	off, err := New(OPT350M(), []GPUType{A100, V100}, WithWorkers(2), WithoutDominancePruning())
	if err != nil {
		t.Fatal(err)
	}
	a, err := on.Plan(pool, MaxThroughput, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := off.Plan(pool, MaxThroughput, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan.String() != b.Plan.String() {
		t.Errorf("dominance pruning changed the chosen plan:\npruned:   %s\nunpruned: %s", a.Plan, b.Plan)
	}
	if a.Estimate.IterTime != b.Estimate.IterTime || a.Estimate.Cost() != b.Estimate.Cost() {
		t.Errorf("dominance pruning changed the estimate: %+v vs %+v", a.Estimate, b.Estimate)
	}
	if a.Explored >= b.Explored {
		t.Errorf("dominance pruning did not shrink the search: explored %d vs %d", a.Explored, b.Explored)
	}
}
