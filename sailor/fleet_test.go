package sailor

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFleetSoloParity is the no-contention determinism acceptance test: a
// fleet of one uncapped job produces bit-identical plans, estimates, and
// telemetry (wire-encoded) to today's solo Service.Plan/Replan on the same
// pool history.
func TestFleetSoloParity(t *testing.T) {
	pools := replayPools(t, "preemption-storm", 1, 5)
	solo := NewService(ServiceConfig{Workers: 2})
	fl := NewService(ServiceConfig{Workers: 2, Fleet: NewLedger(pools[0])})
	if err := solo.OpenJob("job", OPT350M(), []GPUType{A100}, 0); err != nil {
		t.Fatal(err)
	}
	if err := fl.OpenJob("job", OPT350M(), []GPUType{A100}, 3); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var prev Plan
	for i, pool := range pools {
		if i > 0 {
			if err := fl.SetFleet(pool, 0); err != nil {
				t.Fatal(err)
			}
		}
		var got, want PlanResult
		var errGot, errWant error
		if i == 0 {
			// The fleet-mode request pool is ignored: the ledger is
			// authoritative, so nil stands in for "whatever the caller sent".
			got, errGot = fl.Plan(ctx, "job", nil, MaxThroughput, Constraints{})
			want, errWant = solo.Plan(ctx, "job", pool, MaxThroughput, Constraints{})
		} else {
			got, errGot = fl.Replan(ctx, "job", prev, nil, MaxThroughput, Constraints{})
			want, errWant = solo.Replan(ctx, "job", prev, pool, MaxThroughput, Constraints{})
		}
		if errGot != nil || errWant != nil {
			t.Fatalf("pool %d: fleet err %v, solo err %v", i, errGot, errWant)
		}
		if a, b := canonicalResult(t, got), canonicalResult(t, want); a != b {
			t.Errorf("pool %d: fleet diverged from solo service:\n%s\nvs\n%s", i, a, b)
		}
		st, err := fl.FleetStats()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Leases) != 1 || st.Leases[0].GPUs != got.Plan.GPUCount() {
			t.Errorf("pool %d: lease table %+v does not match plan (%d GPUs)",
				i, st.Leases, got.Plan.GPUCount())
		}
		prev = want.Plan
	}
}

// TestFleetAdmissionAndPreemption: two capped jobs share one fleet; a
// capacity loss preempts the low-priority job; Rebalance re-admits it warm
// once capacity returns, in priority order.
func TestFleetAdmissionAndPreemption(t *testing.T) {
	zone := GCPZone("us-central1", 'a')
	led := NewLedger(NewPool().Set(zone, A100, 16))
	led.SetJobCap(8)
	svc := NewService(ServiceConfig{Workers: 1, Fleet: led})
	for _, j := range []struct {
		name string
		pri  int
	}{{"lo", 1}, {"hi", 2}} {
		if err := svc.OpenJob(j.name, OPT350M(), []GPUType{A100}, j.pri); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	// Rebalance admits both (hi first), each capped at 8 GPUs.
	steps, err := svc.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 || steps[0].Job != "hi" || steps[1].Job != "lo" {
		t.Fatalf("admission steps = %+v, want [hi lo]", steps)
	}
	for _, s := range steps {
		if s.Action != "admit" || s.Result == nil || s.Result.Plan.Core().GPUCount() > 8 {
			t.Errorf("step %+v: want admit with a <=8-GPU plan", s)
		}
	}
	// Losing half the fleet breaks the low-priority lease only.
	broken, err := svc.FleetEvent(TraceEvent{At: time.Hour, Zone: zone, GPU: A100, Delta: -8})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 || broken[0].Job != "lo" {
		t.Fatalf("broken = %+v, want exactly lo", broken)
	}
	// No free capacity: lo waits.
	steps, err = svc.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Job != "lo" || steps[0].Action != "wait" {
		t.Fatalf("post-loss steps = %+v, want lo waiting", steps)
	}
	// Capacity returns: lo replans warm from its previous plan.
	if _, err := svc.FleetEvent(TraceEvent{At: 2 * time.Hour, Zone: zone, GPU: A100, Delta: 8}); err != nil {
		t.Fatal(err)
	}
	steps, err = svc.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Action != "replan" || steps[0].Result == nil {
		t.Fatalf("recovery steps = %+v, want lo replanned", steps)
	}
	st, err := svc.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Leases) != 2 || st.LeasedGPUs > st.CapacityGPUs {
		t.Errorf("final stats %+v: want both leased within capacity", st)
	}
	if err := led.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetCloseJobReleasesLease: closing a fleet job frees its capacity.
func TestFleetCloseJobReleasesLease(t *testing.T) {
	zone := GCPZone("us-central1", 'a')
	led := NewLedger(NewPool().Set(zone, A100, 8))
	svc := NewService(ServiceConfig{Workers: 1, Fleet: led})
	if err := svc.OpenJob("a", OPT350M(), []GPUType{A100}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Plan(context.Background(), "a", nil, MaxThroughput, Constraints{}); err != nil {
		t.Fatal(err)
	}
	st, _ := svc.FleetStats()
	if len(st.Leases) != 1 || st.FreeGPUs == st.CapacityGPUs {
		t.Fatalf("stats before close = %+v, want one lease holding capacity", st)
	}
	if err := svc.CloseJob("a"); err != nil {
		t.Fatal(err)
	}
	st, _ = svc.FleetStats()
	if len(st.Leases) != 0 || st.FreeGPUs != st.CapacityGPUs {
		t.Errorf("stats after close = %+v, want lease released and capacity free", st)
	}
}

// TestFleetModeErrors: fleet calls without a ledger return ErrNoFleet, and
// SetFleet flips the service into fleet mode.
func TestFleetModeErrors(t *testing.T) {
	svc := NewService(ServiceConfig{})
	if _, err := svc.FleetStats(); !errors.Is(err, ErrNoFleet) {
		t.Errorf("FleetStats = %v, want ErrNoFleet", err)
	}
	if _, err := svc.FleetEvent(TraceEvent{}); !errors.Is(err, ErrNoFleet) {
		t.Errorf("FleetEvent = %v, want ErrNoFleet", err)
	}
	if _, err := svc.Rebalance(context.Background()); !errors.Is(err, ErrNoFleet) {
		t.Errorf("Rebalance = %v, want ErrNoFleet", err)
	}
	zone := GCPZone("us-central1", 'a')
	if err := svc.SetFleet(NewPool().Set(zone, A100, 4), 2); err != nil {
		t.Fatal(err)
	}
	st, err := svc.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CapacityGPUs != 4 || st.JobCapGPUs != 2 {
		t.Errorf("stats after SetFleet = %+v, want 4 GPUs capped at 2/job", st)
	}
}

// TestServiceJobLifecycleRaces hammers one job name with concurrent
// OpenJob/CloseJob/Plan (run under -race): every call either succeeds or
// fails with a lifecycle error, nothing panics, and in fleet mode the final
// CloseJob sweep leaves zero leases behind.
func TestServiceJobLifecycleRaces(t *testing.T) {
	zone := GCPZone("us-central1", 'a')
	for _, fleetMode := range []bool{false, true} {
		name := map[bool]string{false: "plain", true: "fleet"}[fleetMode]
		t.Run(name, func(t *testing.T) {
			cfg := ServiceConfig{Workers: 1, MaxConcurrent: 2}
			var led *Ledger
			if fleetMode {
				led = NewLedger(NewPool().Set(zone, A100, 8))
				cfg.Fleet = led
			}
			svc := NewService(cfg)
			pool := NewPool().Set(zone, A100, 8)
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 12; i++ {
						switch g % 3 {
						case 0:
							err := svc.OpenJob("life", OPT350M(), []GPUType{A100}, g)
							if err != nil && !strings.Contains(err.Error(), "already open") {
								t.Errorf("OpenJob: %v", err)
							}
						case 1:
							err := svc.CloseJob("life")
							if err != nil && !strings.Contains(err.Error(), "not open") {
								t.Errorf("CloseJob: %v", err)
							}
						case 2:
							_, err := svc.Plan(context.Background(), "life", pool, MaxThroughput, Constraints{})
							if err != nil && !strings.Contains(err.Error(), "not open") &&
								!errors.Is(err, ErrLeaseConflict) &&
								!strings.Contains(err.Error(), "no free capacity") &&
								!strings.Contains(err.Error(), "closed while planning") {
								t.Errorf("Plan: %v", err)
							}
						}
					}
				}(g)
			}
			wg.Wait()
			// Sweep: close the job if a racer left it open; fleet mode must
			// end with zero leases either way.
			if err := svc.CloseJob("life"); err != nil && !strings.Contains(err.Error(), "not open") {
				t.Fatal(err)
			}
			if fleetMode {
				st, err := svc.FleetStats()
				if err != nil {
					t.Fatal(err)
				}
				if len(st.Leases) != 0 || st.FreeGPUs != st.CapacityGPUs {
					t.Errorf("leases leaked past CloseJob: %+v", st)
				}
				if err := led.CheckInvariant(); err != nil {
					t.Fatal(err)
				}
			}
			st, err := svc.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.InFlight != 0 {
				t.Errorf("InFlight = %d after quiescence", st.InFlight)
			}
		})
	}
}

// TestFleetConcurrentTenantsShareLedger: several tenants plan concurrently
// against one capped ledger; afterwards the ledger is feasible, every
// tenant holds at most cap GPUs, and leased+free re-adds to capacity.
func TestFleetConcurrentTenantsShareLedger(t *testing.T) {
	zone := GCPZone("us-central1", 'a')
	led := NewLedger(NewPool().Set(zone, A100, 16))
	led.SetJobCap(4)
	svc := NewService(ServiceConfig{Workers: 1, MaxConcurrent: 4, Fleet: led})
	const tenants = 4
	var wg sync.WaitGroup
	for g := 0; g < tenants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			job := fmt.Sprintf("t%d", g)
			if err := svc.OpenJob(job, OPT350M(), []GPUType{A100}, g); err != nil {
				t.Error(err)
				return
			}
			if _, err := svc.Plan(context.Background(), job, nil, MaxThroughput, Constraints{}); err != nil {
				t.Errorf("tenant %s: %v", job, err)
			}
		}(g)
	}
	wg.Wait()
	st, err := svc.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Leases) != tenants {
		t.Fatalf("leases = %+v, want %d", st.Leases, tenants)
	}
	for _, le := range st.Leases {
		if le.GPUs > 4 {
			t.Errorf("lease %s exceeds cap: %d GPUs", le.Job, le.GPUs)
		}
	}
	if st.LeasedGPUs+st.FreeGPUs != st.CapacityGPUs {
		t.Errorf("leased %d + free %d != capacity %d", st.LeasedGPUs, st.FreeGPUs, st.CapacityGPUs)
	}
	if err := led.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}
