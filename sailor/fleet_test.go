package sailor

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
)

// TestFleetSoloParity is the no-contention determinism acceptance test: a
// fleet of one uncapped job produces bit-identical plans, estimates, and
// telemetry (wire-encoded) to today's solo Service.Plan/Replan on the same
// pool history.
func TestFleetSoloParity(t *testing.T) {
	pools := replayPools(t, "preemption-storm", 1, 5)
	solo := NewService(ServiceConfig{Workers: 2})
	fl := NewService(ServiceConfig{Workers: 2, Fleet: NewLedger(pools[0])})
	if err := solo.OpenJob("job", OPT350M(), []GPUType{A100}, 0); err != nil {
		t.Fatal(err)
	}
	if err := fl.OpenJob("job", OPT350M(), []GPUType{A100}, 3); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var prev Plan
	for i, pool := range pools {
		if i > 0 {
			if err := fl.SetFleet(pool, 0); err != nil {
				t.Fatal(err)
			}
		}
		var got, want PlanResult
		var errGot, errWant error
		if i == 0 {
			// The fleet-mode request pool is ignored: the ledger is
			// authoritative, so nil stands in for "whatever the caller sent".
			got, errGot = fl.Plan(ctx, "job", nil, MaxThroughput, Constraints{})
			want, errWant = solo.Plan(ctx, "job", pool, MaxThroughput, Constraints{})
		} else {
			got, errGot = fl.Replan(ctx, "job", prev, nil, MaxThroughput, Constraints{})
			want, errWant = solo.Replan(ctx, "job", prev, pool, MaxThroughput, Constraints{})
		}
		if errGot != nil || errWant != nil {
			t.Fatalf("pool %d: fleet err %v, solo err %v", i, errGot, errWant)
		}
		if a, b := canonicalResult(t, got), canonicalResult(t, want); a != b {
			t.Errorf("pool %d: fleet diverged from solo service:\n%s\nvs\n%s", i, a, b)
		}
		st, err := fl.FleetStats()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Leases) != 1 || st.Leases[0].GPUs != got.Plan.GPUCount() {
			t.Errorf("pool %d: lease table %+v does not match plan (%d GPUs)",
				i, st.Leases, got.Plan.GPUCount())
		}
		prev = want.Plan
	}
}

// TestFleetAdmissionAndPreemption: two capped jobs share one fleet; a
// capacity loss preempts the low-priority job; Rebalance re-admits it warm
// once capacity returns, in priority order.
func TestFleetAdmissionAndPreemption(t *testing.T) {
	zone := GCPZone("us-central1", 'a')
	led := NewLedger(NewPool().Set(zone, A100, 16))
	led.SetJobCap(8)
	svc := NewService(ServiceConfig{Workers: 1, Fleet: led})
	for _, j := range []struct {
		name string
		pri  int
	}{{"lo", 1}, {"hi", 2}} {
		if err := svc.OpenJob(j.name, OPT350M(), []GPUType{A100}, j.pri); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	// Rebalance admits both (hi first), each capped at 8 GPUs.
	steps, err := svc.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 || steps[0].Job != "hi" || steps[1].Job != "lo" {
		t.Fatalf("admission steps = %+v, want [hi lo]", steps)
	}
	for _, s := range steps {
		if s.Action != "admit" || s.Result == nil || s.Result.Plan.Core().GPUCount() > 8 {
			t.Errorf("step %+v: want admit with a <=8-GPU plan", s)
		}
	}
	// Losing half the fleet breaks the low-priority lease only.
	broken, err := svc.FleetEvent(TraceEvent{At: time.Hour, Zone: zone, GPU: A100, Delta: -8})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 || broken[0].Job != "lo" {
		t.Fatalf("broken = %+v, want exactly lo", broken)
	}
	// No free capacity: lo waits.
	steps, err = svc.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Job != "lo" || steps[0].Action != "wait" {
		t.Fatalf("post-loss steps = %+v, want lo waiting", steps)
	}
	// Capacity returns: lo replans warm from its previous plan.
	if _, err := svc.FleetEvent(TraceEvent{At: 2 * time.Hour, Zone: zone, GPU: A100, Delta: 8}); err != nil {
		t.Fatal(err)
	}
	steps, err = svc.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Action != "replan" || steps[0].Result == nil {
		t.Fatalf("recovery steps = %+v, want lo replanned", steps)
	}
	st, err := svc.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Leases) != 2 || st.LeasedGPUs > st.CapacityGPUs {
		t.Errorf("final stats %+v: want both leased within capacity", st)
	}
	if err := led.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetCloseJobReleasesLease: closing a fleet job frees its capacity.
func TestFleetCloseJobReleasesLease(t *testing.T) {
	zone := GCPZone("us-central1", 'a')
	led := NewLedger(NewPool().Set(zone, A100, 8))
	svc := NewService(ServiceConfig{Workers: 1, Fleet: led})
	if err := svc.OpenJob("a", OPT350M(), []GPUType{A100}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Plan(context.Background(), "a", nil, MaxThroughput, Constraints{}); err != nil {
		t.Fatal(err)
	}
	st, _ := svc.FleetStats()
	if len(st.Leases) != 1 || st.FreeGPUs == st.CapacityGPUs {
		t.Fatalf("stats before close = %+v, want one lease holding capacity", st)
	}
	if err := svc.CloseJob("a"); err != nil {
		t.Fatal(err)
	}
	st, _ = svc.FleetStats()
	if len(st.Leases) != 0 || st.FreeGPUs != st.CapacityGPUs {
		t.Errorf("stats after close = %+v, want lease released and capacity free", st)
	}
}

// TestFleetModeErrors: fleet calls without a ledger return ErrNoFleet, and
// SetFleet flips the service into fleet mode.
func TestFleetModeErrors(t *testing.T) {
	svc := NewService(ServiceConfig{})
	if _, err := svc.FleetStats(); !errors.Is(err, ErrNoFleet) {
		t.Errorf("FleetStats = %v, want ErrNoFleet", err)
	}
	if _, err := svc.FleetEvent(TraceEvent{}); !errors.Is(err, ErrNoFleet) {
		t.Errorf("FleetEvent = %v, want ErrNoFleet", err)
	}
	if _, err := svc.Rebalance(context.Background()); !errors.Is(err, ErrNoFleet) {
		t.Errorf("Rebalance = %v, want ErrNoFleet", err)
	}
	zone := GCPZone("us-central1", 'a')
	if err := svc.SetFleet(NewPool().Set(zone, A100, 4), 2); err != nil {
		t.Fatal(err)
	}
	st, err := svc.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CapacityGPUs != 4 || st.JobCapGPUs != 2 {
		t.Errorf("stats after SetFleet = %+v, want 4 GPUs capped at 2/job", st)
	}
}

// TestServiceJobLifecycleRaces hammers one job name with concurrent
// OpenJob/CloseJob/Plan (run under -race): every call either succeeds or
// fails with a lifecycle error, nothing panics, and in fleet mode the final
// CloseJob sweep leaves zero leases behind.
func TestServiceJobLifecycleRaces(t *testing.T) {
	zone := GCPZone("us-central1", 'a')
	for _, fleetMode := range []bool{false, true} {
		name := map[bool]string{false: "plain", true: "fleet"}[fleetMode]
		t.Run(name, func(t *testing.T) {
			cfg := ServiceConfig{Workers: 1, MaxConcurrent: 2}
			var led *Ledger
			if fleetMode {
				led = NewLedger(NewPool().Set(zone, A100, 8))
				cfg.Fleet = led
			}
			svc := NewService(cfg)
			pool := NewPool().Set(zone, A100, 8)
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 12; i++ {
						switch g % 3 {
						case 0:
							err := svc.OpenJob("life", OPT350M(), []GPUType{A100}, g)
							if err != nil && !strings.Contains(err.Error(), "already open") {
								t.Errorf("OpenJob: %v", err)
							}
						case 1:
							err := svc.CloseJob("life")
							if err != nil && !strings.Contains(err.Error(), "not open") {
								t.Errorf("CloseJob: %v", err)
							}
						case 2:
							_, err := svc.Plan(context.Background(), "life", pool, MaxThroughput, Constraints{})
							if err != nil && !strings.Contains(err.Error(), "not open") &&
								!errors.Is(err, ErrLeaseConflict) &&
								!strings.Contains(err.Error(), "no free capacity") &&
								!strings.Contains(err.Error(), "closed while planning") {
								t.Errorf("Plan: %v", err)
							}
						}
					}
				}(g)
			}
			wg.Wait()
			// Sweep: close the job if a racer left it open; fleet mode must
			// end with zero leases either way.
			if err := svc.CloseJob("life"); err != nil && !strings.Contains(err.Error(), "not open") {
				t.Fatal(err)
			}
			if fleetMode {
				st, err := svc.FleetStats()
				if err != nil {
					t.Fatal(err)
				}
				if len(st.Leases) != 0 || st.FreeGPUs != st.CapacityGPUs {
					t.Errorf("leases leaked past CloseJob: %+v", st)
				}
				if err := led.CheckInvariant(); err != nil {
					t.Fatal(err)
				}
			}
			st, err := svc.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.InFlight != 0 {
				t.Errorf("InFlight = %d after quiescence", st.InFlight)
			}
		})
	}
}

// canonicalSteps renders a Rebalance step list with the one wall-clock
// field (each result's search time) zeroed, so step streams from different
// configurations compare byte-for-byte.
func canonicalSteps(t *testing.T, steps []RebalanceStep) string {
	t.Helper()
	out := make([]RebalanceStep, len(steps))
	for i, s := range steps {
		if s.Result != nil {
			r := *s.Result
			r.SearchTimeNS = 0
			s.Result = &r
		}
		out[i] = s
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// canonicalFleet renders a service's full fleet snapshot — including the
// ledger version and every lease's acquired version, i.e. the ledger's
// whole mutation trajectory — for byte comparison.
func canonicalFleet(t *testing.T, svc *Service) string {
	t.Helper()
	st, err := svc.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSoloCandidates pins the rebalance conflict partitioning: candidates
// are solo exactly when they share no fleet-capacity GPU type with any
// other candidate.
func TestSoloCandidates(t *testing.T) {
	zone := GCPZone("us-central1", 'a')
	cand := func(name string, gpus ...GPUType) rebalCand {
		return rebalCand{name: name, j: &serviceJob{gpus: gpus}}
	}
	cases := []struct {
		name  string
		pool  *Pool
		cands []rebalCand
		want  []bool // nil = everything conflicts
	}{
		{
			name:  "disjoint-types",
			pool:  NewPool().Set(zone, A100, 8).Set(zone, V100, 8),
			cands: []rebalCand{cand("a", A100), cand("b", V100)},
			want:  []bool{true, true},
		},
		{
			name:  "same-type",
			pool:  NewPool().Set(zone, A100, 8),
			cands: []rebalCand{cand("a", A100), cand("b", A100)},
			want:  nil,
		},
		{
			name: "mixed",
			pool: NewPool().Set(zone, A100, 8).Set(zone, V100, 8),
			cands: []rebalCand{
				cand("a", A100), cand("b", A100), cand("c", V100)},
			want: []bool{false, false, true},
		},
		{
			name: "bridge-job-joins-partitions",
			pool: NewPool().Set(zone, A100, 8).Set(zone, V100, 8),
			cands: []rebalCand{
				cand("a", A100), cand("b", A100, V100), cand("c", V100)},
			want: nil,
		},
		{
			name: "type-without-capacity-is-unreachable",
			pool: NewPool().Set(zone, A100, 8),
			// b's V100 has no fleet capacity, so b reaches nothing and a is
			// the only A100 user: both are solo.
			cands: []rebalCand{cand("a", A100), cand("b", V100)},
			want:  []bool{true, true},
		},
		{
			name: "duplicate-types-in-one-job",
			pool: NewPool().Set(zone, A100, 8),
			// a listing A100 twice must not count as two users.
			cands: []rebalCand{cand("a", A100, A100), cand("b", V100)},
			want:  []bool{true, true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			led := fleet.NewLedger(tc.pool)
			got := soloCandidates(led, tc.cands)
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Errorf("soloCandidates = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestRebalancePartitionedDeterminism is the parallel-rebalance acceptance
// on a fleet where the partitioning actually engages: three jobs on three
// disjoint GPU types admit, get preempted, and re-admit. At every pass the
// partitioned (default) service's step stream and full fleet snapshot —
// including the ledger version trajectory — must byte-equal the
// SequentialRebalance service's, at workers=1 and workers=8.
func TestRebalancePartitionedDeterminism(t *testing.T) {
	zone := GCPZone("us-central1", 'a')
	types := []GPUType{A100, V100, RTX3090}
	build := func(sequential bool, workers int) *Service {
		led := NewLedger(NewPool().
			Set(zone, A100, 16).Set(zone, V100, 16).Set(zone, RTX3090, 16))
		svc := NewService(ServiceConfig{Workers: workers, MaxConcurrent: 4,
			Fleet: led, SequentialRebalance: sequential})
		for i, g := range types {
			if err := svc.OpenJob(fmt.Sprintf("job-%d", i), OPT350M(),
				[]GPUType{g}, len(types)-i); err != nil {
				t.Fatal(err)
			}
		}
		return svc
	}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			seq := build(true, workers)
			par := build(false, workers)
			ctx := context.Background()
			both := func(phase string, ev ...TraceEvent) {
				t.Helper()
				for _, svc := range []*Service{seq, par} {
					for _, e := range ev {
						if _, err := svc.FleetEvent(e); err != nil {
							t.Fatalf("%s: %v", phase, err)
						}
					}
				}
				s1, err1 := seq.Rebalance(ctx)
				s2, err2 := par.Rebalance(ctx)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s: sequential err %v, partitioned err %v", phase, err1, err2)
				}
				if a, b := canonicalSteps(t, s1), canonicalSteps(t, s2); a != b {
					t.Errorf("%s: step streams diverged:\n%s\nvs\n%s", phase, a, b)
				}
				if a, b := canonicalFleet(t, seq), canonicalFleet(t, par); a != b {
					t.Errorf("%s: fleet snapshots diverged:\n%s\nvs\n%s", phase, a, b)
				}
			}
			// Cold admission: all three partitions search concurrently.
			both("admit")
			// A capacity loss empties one partition and shrinks another:
			// the emptied job's search must fail identically in both modes.
			both("shrink",
				TraceEvent{At: time.Hour, Zone: zone, GPU: V100, Delta: -16},
				TraceEvent{At: time.Hour, Zone: zone, GPU: RTX3090, Delta: -8})
			// Recovery: the waiting jobs replan warm.
			both("recover",
				TraceEvent{At: 2 * time.Hour, Zone: zone, GPU: V100, Delta: 16},
				TraceEvent{At: 2 * time.Hour, Zone: zone, GPU: RTX3090, Delta: 8})
		})
	}
}

// TestFleetScenarioSequentialParity replays both fleet golden scenarios
// (the contending jobs all share one GPU type, so the partitioned pass must
// detect the conflict and fall back) at workers=1 and workers=8: the step
// streams and fleet snapshots of the default service must byte-equal the
// SequentialRebalance service's after every event batch.
func TestFleetScenarioSequentialParity(t *testing.T) {
	cases := []struct {
		scenario string
		jobs     int
	}{
		{"preemption-storm", 3},
		{"zone-outage", 2},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.scenario, workers), func(t *testing.T) {
				sc, ok := ScenarioByName(tc.scenario)
				if !ok {
					t.Fatalf("scenario %q not registered", tc.scenario)
				}
				tr := sc.TraceWith(1, ScenarioOpts{})
				cap := sc.Defaults.Base / 2
				build := func(sequential bool) *Service {
					led := NewLedger(NewPool())
					led.SetJobCap(cap)
					svc := NewService(ServiceConfig{Workers: workers, MaxConcurrent: 4,
						Fleet: led, SequentialRebalance: sequential})
					for i := 0; i < tc.jobs; i++ {
						if err := svc.OpenJob(fmt.Sprintf("job-%d", i), OPT350M(),
							sc.GPUs, tc.jobs-i); err != nil {
							t.Fatal(err)
						}
					}
					return svc
				}
				seq, par := build(true), build(false)
				ctx := context.Background()
				for i, ev := range tr.Events {
					for _, svc := range []*Service{seq, par} {
						if _, err := svc.FleetEvent(ev); err != nil {
							t.Fatal(err)
						}
					}
					s1, err1 := seq.Rebalance(ctx)
					s2, err2 := par.Rebalance(ctx)
					if err1 != nil || err2 != nil {
						t.Fatalf("event %d: sequential err %v, partitioned err %v", i, err1, err2)
					}
					if a, b := canonicalSteps(t, s1), canonicalSteps(t, s2); a != b {
						t.Fatalf("event %d: step streams diverged:\n%s\nvs\n%s", i, a, b)
					}
					if a, b := canonicalFleet(t, seq), canonicalFleet(t, par); a != b {
						t.Fatalf("event %d: fleet snapshots diverged:\n%s\nvs\n%s", i, a, b)
					}
				}
			})
		}
	}
}

// TestFleetConcurrentTenantsShareLedger: several tenants plan concurrently
// against one capped ledger; afterwards the ledger is feasible, every
// tenant holds at most cap GPUs, and leased+free re-adds to capacity.
func TestFleetConcurrentTenantsShareLedger(t *testing.T) {
	zone := GCPZone("us-central1", 'a')
	led := NewLedger(NewPool().Set(zone, A100, 16))
	led.SetJobCap(4)
	svc := NewService(ServiceConfig{Workers: 1, MaxConcurrent: 4, Fleet: led})
	const tenants = 4
	var wg sync.WaitGroup
	for g := 0; g < tenants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			job := fmt.Sprintf("t%d", g)
			if err := svc.OpenJob(job, OPT350M(), []GPUType{A100}, g); err != nil {
				t.Error(err)
				return
			}
			if _, err := svc.Plan(context.Background(), job, nil, MaxThroughput, Constraints{}); err != nil {
				t.Errorf("tenant %s: %v", job, err)
			}
		}(g)
	}
	wg.Wait()
	st, err := svc.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Leases) != tenants {
		t.Fatalf("leases = %+v, want %d", st.Leases, tenants)
	}
	for _, le := range st.Leases {
		if le.GPUs > 4 {
			t.Errorf("lease %s exceeds cap: %d GPUs", le.Job, le.GPUs)
		}
	}
	if st.LeasedGPUs+st.FreeGPUs != st.CapacityGPUs {
		t.Errorf("leased %d + free %d != capacity %d", st.LeasedGPUs, st.FreeGPUs, st.CapacityGPUs)
	}
	if err := led.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}
