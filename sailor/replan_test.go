package sailor

import (
	"context"
	"sync"
	"testing"
)

// replayPools materialises the distinct availability snapshots of a named
// scenario — the replan sequence an elastic controller would issue.
func replayPools(t *testing.T, name string, seed int64, max int) []*Pool {
	t.Helper()
	sc, ok := ScenarioByName(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	pools := sc.Trace(seed).DistinctPools()
	if len(pools) > max {
		pools = pools[:max]
	}
	return pools
}

// TestReplanMatchesPlan: the facade's warm replan chain returns exactly
// what cold Plan returns on every pool of a preemption storm, and the
// cache visibly serves subtrees along the way.
func TestReplanMatchesPlan(t *testing.T) {
	sys, err := New(OPT350M(), []GPUType{A100}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	pools := replayPools(t, "preemption-storm", 1, 16)
	var prev Plan
	hits := 0
	for i, pool := range pools {
		warm, err := sys.Replan(prev, pool, MaxThroughput, Constraints{})
		if err != nil {
			t.Fatalf("pool %d: %v", i, err)
		}
		cold, err := sys.Plan(pool, MaxThroughput, Constraints{})
		if err != nil {
			t.Fatalf("pool %d: %v", i, err)
		}
		if got, want := warm.Plan.String(), cold.Plan.String(); got != want {
			t.Errorf("pool %d: warm != cold:\n%s\n%s", i, got, want)
		}
		hits += warm.CacheHits
		prev = warm.Plan
	}
	if hits == 0 {
		t.Error("System.Replan never hit the warm cache")
	}
}

// TestReplanConcurrentWithPlanBatch is the race-coverage satellite:
// concurrent Replan chains on one shared System against concurrent
// PlanBatch calls must be data-race free (run under -race) and every warm
// result must equal cold planning on the same pool.
func TestReplanConcurrentWithPlanBatch(t *testing.T) {
	sys, err := New(OPT350M(), []GPUType{A100}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	pools := replayPools(t, "preemption-storm", 3, 6)
	cold := make([]string, len(pools))
	for i, p := range pools {
		res, err := sys.Plan(p, MaxThroughput, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		cold[i] = res.Plan.String()
	}

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var prev Plan
			for i, pool := range pools {
				res, err := sys.Replan(prev, pool, MaxThroughput, Constraints{})
				if err != nil {
					t.Errorf("replanner %d pool %d: %v", g, i, err)
					return
				}
				if res.Plan.String() != cold[i] {
					t.Errorf("replanner %d pool %d: warm plan diverged from cold", g, i)
				}
				prev = res.Plan
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results, errs := sys.PlanBatch(context.Background(), pools, MaxThroughput, Constraints{})
			for i, err := range errs {
				if err != nil {
					t.Errorf("batch %d pool %d: %v", g, i, err)
					continue
				}
				if results[i].Plan.String() != cold[i] {
					t.Errorf("batch %d pool %d: batch plan diverged from cold", g, i)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestScenarioFacade: the re-exported scenario registry and constructors
// agree, and every scenario's canonical trace feeds the planner a non-empty
// initial or eventual pool.
func TestScenarioFacade(t *testing.T) {
	byCtor := map[string]Scenario{
		"gcp-a100":         ScenarioGCPA100(),
		"preemption-storm": ScenarioPreemptionStorm(),
		"diurnal-wave":     ScenarioDiurnalWave(),
		"zone-outage":      ScenarioZoneOutage(),
		"hetero-arrivals":  ScenarioHeteroArrivals(),
		"geo-shift":        ScenarioGeoShift(),
	}
	listed := map[string]bool{}
	for _, s := range Scenarios() {
		listed[s.Name] = true
	}
	for name, sc := range byCtor {
		if sc.Name != name {
			t.Errorf("constructor for %q returns scenario named %q", name, sc.Name)
		}
		if !listed[name] {
			t.Errorf("scenario %q not in Scenarios()", name)
		}
		tr := sc.Trace(1)
		if tr.PoolAt(tr.Horizon).TotalGPUs() == 0 {
			t.Errorf("scenario %q ends with an empty pool", name)
		}
	}
}
