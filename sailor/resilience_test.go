package sailor

// Resilience tests: overload shedding and deadline degradation at the
// Service layer, and the client retry loop (typed-error classification,
// seeded backoff, automatic re-dial) against stub rpc servers. The chaos
// e2e in chaos_test.go composes all of these with scripted transport and
// journal faults.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/persist"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// TestServiceOverloadShedding: once MaxConcurrent slots are busy and
// MaxQueued requests wait, the next request is shed immediately with the
// typed ErrOverloaded instead of joining an unbounded queue.
func TestServiceOverloadShedding(t *testing.T) {
	svc := NewService(ServiceConfig{Workers: 1, MaxConcurrent: 1, MaxQueued: 1})
	if err := svc.OpenJob("j", OPT350M(), []GPUType{A100}, 0); err != nil {
		t.Fatal(err)
	}
	svc.sem <- struct{}{} // occupy the only planner slot
	defer func() { <-svc.sem }()

	ctx, cancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		_, err := svc.Plan(ctx, "j", NewPool(), MaxThroughput, Constraints{})
		queuedErr <- err
	}()
	waitFor(t, func() bool { return svc.queued.Load() == 1 })

	// The queue is full: the next request sheds with the typed error.
	_, err := svc.Plan(context.Background(), "j", NewPool(), MaxThroughput, Constraints{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("plan beyond the queue bound = %v, want ErrOverloaded", err)
	}
	if !errors.Is(err, rpc.ErrOverloaded) {
		t.Errorf("shed error does not match rpc.ErrOverloaded — it would lose its wire code")
	}

	cancel()
	if err := <-queuedErr; err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("queued plan after cancel = %v, want cancellation error", err)
	}
	if q := svc.queued.Load(); q != 0 {
		t.Errorf("queued = %d after drain, want 0", q)
	}
	st, err := svc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Overloaded != 1 {
		t.Errorf("Stats.Overloaded = %d, want 1", st.Overloaded)
	}
}

// TestServiceQueueCancellationNoSlotLeak: N requests queue behind a full
// semaphore, half are cancelled, and after the slot frees the survivors
// all complete — no planner slot or queue counter leaks.
func TestServiceQueueCancellationNoSlotLeak(t *testing.T) {
	const queued = 6
	svc := NewService(ServiceConfig{Workers: 1, MaxConcurrent: 1, MaxQueued: queued})
	if err := svc.OpenJob("j", OPT350M(), []GPUType{A100}, 0); err != nil {
		t.Fatal(err)
	}
	pool := replayPools(t, "preemption-storm", 1, 1)[0]
	svc.sem <- struct{}{} // hold the only slot so all requests queue

	type outcome struct {
		cancelled bool
		err       error
	}
	results := make(chan outcome, queued)
	cancels := make([]context.CancelFunc, queued)
	var wg sync.WaitGroup
	for i := 0; i < queued; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		wg.Add(1)
		go func(ctx context.Context, cancelled bool) {
			defer wg.Done()
			_, err := svc.Plan(ctx, "j", pool, MaxThroughput, Constraints{})
			results <- outcome{cancelled: cancelled, err: err}
		}(ctx, i%2 == 0)
	}
	waitFor(t, func() bool { return svc.queued.Load() == queued })

	for i := 0; i < queued; i += 2 {
		cancels[i]()
	}
	waitFor(t, func() bool { return svc.queued.Load() == queued/2 })
	<-svc.sem // free the slot; the survivors run one at a time
	wg.Wait()
	for i := 1; i < queued; i += 2 {
		cancels[i]()
	}

	for i := 0; i < queued; i++ {
		o := <-results
		if o.cancelled && (o.err == nil || !strings.Contains(o.err.Error(), "cancelled")) {
			t.Errorf("cancelled request: err = %v, want cancellation", o.err)
		}
		if !o.cancelled && o.err != nil {
			t.Errorf("surviving request failed: %v", o.err)
		}
	}
	if q := svc.queued.Load(); q != 0 {
		t.Errorf("queued = %d after drain, want 0", q)
	}
	if n := len(svc.sem); n != 0 {
		t.Errorf("%d planner slots still held after drain, want 0", n)
	}
}

// TestServicePlanDegradesToIncumbent: a search cut off by its deadline
// answers with the job's last successful plan re-estimated and marked
// Degraded, instead of surfacing the deadline error.
func TestServicePlanDegradesToIncumbent(t *testing.T) {
	svc := NewService(ServiceConfig{Workers: 1})
	if err := svc.OpenJob("j", OPT350M(), []GPUType{A100}, 0); err != nil {
		t.Fatal(err)
	}
	pool := replayPools(t, "preemption-storm", 1, 1)[0]
	warm, err := svc.Plan(context.Background(), "j", pool, MaxThroughput, Constraints{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := svc.Plan(ctx, "j", pool, MaxThroughput, Constraints{})
	if err != nil {
		t.Fatalf("deadline-cut plan with an incumbent = %v, want degraded result", err)
	}
	if !res.Degraded {
		t.Fatal("deadline-cut plan returned Degraded=false")
	}
	if res.Plan.String() != warm.Plan.String() {
		t.Errorf("degraded plan differs from the incumbent:\n%s\nvs\n%s", res.Plan, warm.Plan)
	}
	if canon := canonicalResult(t, res); !strings.Contains(canon, `"degraded":true`) {
		t.Errorf("degraded flag lost on the wire codec: %s", canon)
	}
	st, err := svc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded != 1 {
		t.Errorf("Stats.Degraded = %d, want 1", st.Degraded)
	}

	// Cancellation (the caller walked away) does not degrade.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, err := svc.Plan(cctx, "j", pool, MaxThroughput, Constraints{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled plan = %v, want context.Canceled", err)
	}

	// A job with no incumbent surfaces the deadline error.
	if err := svc.OpenJob("fresh", OPT350M(), []GPUType{A100}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Plan(ctx, "fresh", pool, MaxThroughput, Constraints{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline-cut plan without an incumbent = %v, want DeadlineExceeded", err)
	}
}

// TestDeadlineDegradesOverWire: a per-request deadline crosses the rpc
// envelope, expires while the request waits for a planner slot, and the
// daemon answers with the warm incumbent marked Degraded — the full
// client → rpc → Service degradation path, deterministic because the
// occupied semaphore guarantees the deadline fires first.
func TestDeadlineDegradesOverWire(t *testing.T) {
	svc := NewService(ServiceConfig{Workers: 1, MaxConcurrent: 1})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lis, svc)
	go srv.Serve()
	defer srv.Close()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.OpenJob("j", OPT350M(), []GPUType{A100}, 0); err != nil {
		t.Fatal(err)
	}
	pool := replayPools(t, "preemption-storm", 1, 1)[0]
	warm, err := c.Plan(context.Background(), "j", pool, MaxThroughput, Constraints{})
	if err != nil {
		t.Fatal(err)
	}

	svc.sem <- struct{}{} // wedge the planner so the deadline always wins
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	res, err := c.Plan(ctx, "j", pool, MaxThroughput, Constraints{})
	<-svc.sem
	if err != nil {
		t.Fatalf("deadline-cut plan over the wire = %v, want degraded result", err)
	}
	if !res.Degraded {
		t.Fatal("wire plan returned Degraded=false, want the incumbent marked Degraded")
	}
	if res.Plan.String() != warm.Plan.String() {
		t.Errorf("degraded wire plan differs from the incumbent")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded != 1 {
		t.Errorf("Stats.Degraded over the wire = %d, want 1", st.Degraded)
	}
}

// TestJournalErrorSurfacesInStats: a failed journal append flips the
// sticky JournalError stat (over the wire), and a Rotate — the snapshot
// that re-establishes durability — clears it.
func TestJournalErrorSurfacesInStats(t *testing.T) {
	sched := &chaos.Schedule{
		Name: "journal-stat",
		Faults: []chaos.Rule{
			{ID: "fail-2nd-append", Target: chaos.TargetJournal, Nth: 2, Action: chaos.ActionFail},
		},
	}
	inj, err := chaos.NewInjector(sched)
	if err != nil {
		t.Fatal(err)
	}
	store, _, err := persist.Open(t.TempDir(), persist.Config{WrapJournal: inj.WrapJournal})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	svc := NewService(ServiceConfig{Workers: 1})
	if err := store.Rotate(svc.PersistState()); err != nil {
		t.Fatal(err)
	}
	svc.SetRecorder(store)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lis, svc)
	go srv.Serve()
	defer srv.Close()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.OpenJob("a", OPT350M(), []GPUType{A100}, 0); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.JournalError != "" {
		t.Fatalf("JournalError = %q before the fault, want empty", st.JournalError)
	}

	// The second append fails: the op itself succeeds, durability degrades,
	// and the sticky error surfaces in the stats.
	if err := c.OpenJob("b", OPT350M(), []GPUType{A100}, 0); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.JournalError == "" {
		t.Fatal("JournalError empty after a failed append, want the sticky error")
	}
	if !strings.Contains(st.JournalError, "fail-2nd-append") {
		t.Errorf("JournalError = %q, want the chaos rule named", st.JournalError)
	}

	// Rotate writes a fresh snapshot and opens a new journal generation:
	// durability is re-established and the stat clears.
	if err := store.Rotate(svc.PersistState()); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.JournalError != "" {
		t.Errorf("JournalError = %q after Rotate, want empty", st.JournalError)
	}
}

// stubServer runs a bare rpc server whose Stats/CloseJob handlers fail a
// scripted number of times before succeeding — the harness the client
// retry tests drive.
func stubServer(t *testing.T, failures int) (addr string, calls *atomic.Int32, shutdown func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(lis)
	calls = &atomic.Int32{}
	srv.Handle(wire.MethodStats, func(context.Context, json.RawMessage) (any, error) {
		if calls.Add(1) <= int32(failures) {
			return nil, fmt.Errorf("planner queue full: %w", rpc.ErrOverloaded)
		}
		return wire.StatsResponse{V: wire.Version, Stats: wire.ServiceStats{Requests: 7}}, nil
	})
	srv.Handle(wire.MethodCloseJob, func(_ context.Context, body json.RawMessage) (any, error) {
		if calls.Add(1) <= int32(failures) {
			return nil, fmt.Errorf("planner queue full: %w", rpc.ErrOverloaded)
		}
		return wire.CloseJobResponse{V: wire.Version}, nil
	})
	go srv.Serve()
	return lis.Addr().String(), calls, srv.Close
}

// fastRetry is a test retry policy with millisecond backoff.
func fastRetry(mutating bool) DialConfig {
	return DialConfig{Retry: RetryPolicy{
		MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond,
		RetryMutating: mutating,
	}}
}

// TestClientRetriesOverloaded: an idempotent call that hits ErrOverloaded
// backs off and retries until the server admits it.
func TestClientRetriesOverloaded(t *testing.T) {
	addr, calls, shutdown := stubServer(t, 2)
	defer shutdown()
	c, err := DialWith(addr, fastRetry(false))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats after transient overload = %v, want success", err)
	}
	if st.Requests != 7 {
		t.Errorf("Stats.Requests = %d, want 7", st.Requests)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (2 shed + 1 admitted)", got)
	}
}

// TestClientRetryExhaustion: a persistently overloaded server exhausts
// MaxAttempts and the final error stays typed.
func TestClientRetryExhaustion(t *testing.T) {
	addr, calls, shutdown := stubServer(t, 1000)
	defer shutdown()
	c, err := DialWith(addr, fastRetry(false))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Stats()
	if !errors.Is(err, rpc.ErrOverloaded) {
		t.Fatalf("exhausted retries = %v, want ErrOverloaded preserved", err)
	}
	if !strings.Contains(err.Error(), "after 4 attempts") {
		t.Errorf("error %q does not report the attempt count", err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("server saw %d attempts, want 4", got)
	}
}

// TestClientMutatingOptIn: mutating calls return the first retryable
// error by default and join the retry loop only under RetryMutating.
func TestClientMutatingOptIn(t *testing.T) {
	addr, calls, shutdown := stubServer(t, 1)
	defer shutdown()
	c, err := DialWith(addr, fastRetry(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(); err != nil { // idempotent: retried past the failure
		t.Fatalf("idempotent call = %v, want retried success", err)
	}
	c.Close()

	calls.Store(0)
	c, err = DialWith(addr, fastRetry(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CloseJob("j"); !errors.Is(err, rpc.ErrOverloaded) {
		t.Fatalf("mutating call without opt-in = %v, want immediate ErrOverloaded", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts for a non-opted mutating call, want 1", got)
	}
	c.Close()

	calls.Store(0)
	c, err = DialWith(addr, fastRetry(true))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CloseJob("j"); err != nil {
		t.Fatalf("mutating call with RetryMutating = %v, want retried success", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d attempts, want 2", got)
	}
}

// TestClientRedialsAfterRestart: when the daemon restarts on the same
// address, the next idempotent call re-dials transparently.
func TestClientRedialsAfterRestart(t *testing.T) {
	addr, _, shutdown := stubServer(t, 0)
	c, err := DialWith(addr, DialConfig{Retry: RetryPolicy{
		MaxAttempts: 8, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	shutdown()

	// Restart on the same port while the client retries in the background.
	restarted := make(chan func(), 1)
	go func() {
		for i := 0; ; i++ {
			lis, err := net.Listen("tcp", addr)
			if err != nil {
				if i > 100 {
					t.Error(err)
					restarted <- func() {}
					return
				}
				time.Sleep(10 * time.Millisecond)
				continue
			}
			srv := rpc.NewServer(lis)
			srv.Handle(wire.MethodStats, func(context.Context, json.RawMessage) (any, error) {
				return wire.StatsResponse{V: wire.Version, Stats: wire.ServiceStats{Requests: 42}}, nil
			})
			go srv.Serve()
			restarted <- srv.Close
			return
		}
	}()
	defer (<-restarted)()

	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats across a daemon restart = %v, want re-dialed success", err)
	}
	if st.Requests != 42 {
		t.Errorf("Stats.Requests = %d, want 42 (the restarted daemon's answer)", st.Requests)
	}
}

// TestRetryableClassification: only transport- and load-shaped errors
// retry; application errors and the caller's own context never do.
func TestRetryableClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{rpc.ErrConnectionLost, true},
		{rpc.ErrServerClosed, true},
		{rpc.ErrOverloaded, true},
		{fmt.Errorf("queue full (9 waiting): %w", rpc.ErrOverloaded), true},
		{context.DeadlineExceeded, false},
		{context.Canceled, false},
		{errors.New("sailor: job \"x\" not open"), false},
		{nil, false},
	} {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestBackoffSeededJitter: backoff doubles to the cap, jitters within
// [d/2, d), and replays identically for the same seed.
func TestBackoffSeededJitter(t *testing.T) {
	mk := func(seed uint64) *Client {
		cfg := DialConfig{Retry: RetryPolicy{
			MaxAttempts: 8, BaseBackoff: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Seed: seed,
		}}.withDefaults()
		return &Client{cfg: cfg, rng: rand.New(rand.NewSource(int64(cfg.Retry.Seed)))}
	}
	a, b := mk(7), mk(7)
	caps := []time.Duration{20, 40, 80, 100, 100, 100}
	for i := 1; i <= len(caps); i++ {
		da, db := a.backoff(i), b.backoff(i)
		if da != db {
			t.Errorf("attempt %d: same seed drew %v vs %v", i, da, db)
		}
		d := caps[i-1] * time.Millisecond
		if da < d/2 || da >= d {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", i, da, d/2, d)
		}
	}
	if c := mk(8); c.backoff(1) == a.backoff(7) {
		t.Error("different seeds drew the same jitter sequence (suspicious)")
	}
}

// waitFor polls until cond holds or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
