package sailor

import (
	"testing"
	"time"
)

func TestEndToEndWorkflow(t *testing.T) {
	sys, err := New(OPT350M(), []GPUType{A100, V100}, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool().
		Set(GCPZone("us-central1", 'a'), A100, 16).
		Set(GCPZone("us-central1", 'a'), V100, 16)

	res, err := sys.Plan(pool, MaxThroughput, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.GPUCount() == 0 || res.Plan.GPUCount() > 32 {
		t.Fatalf("plan uses %d GPUs from a 32-GPU pool", res.Plan.GPUCount())
	}

	est, err := sys.Simulate(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	real, err := sys.Measure(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !real.FitsMemory {
		t.Fatal("planned configuration must deploy without OOM")
	}
	rel := est.IterTime/real.IterTime - 1
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.15 {
		t.Errorf("simulator %v vs testbed %v: %.0f%% apart", est.IterTime, real.IterTime, rel*100)
	}
}

func TestPlanWithBudget(t *testing.T) {
	sys, err := New(OPT350M(), []GPUType{A100})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool().Set(GCPZone("us-central1", 'a'), A100, 64)
	res, err := sys.Plan(pool, MaxThroughput, Constraints{MaxCostPerIter: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Estimate.Cost(); got > 0.5 {
		t.Fatalf("plan costs $%v/iter over the $0.5 budget", got)
	}
}

func TestElasticController(t *testing.T) {
	sys, err := New(OPT350M(), []GPUType{A100})
	if err != nil {
		t.Fatal(err)
	}
	z := GCPZone("us-central1", 'a')
	tr := SyntheticTrace(time.Hour,
		TraceEvent{At: 0, Zone: z, GPU: A100, Delta: 8},
		TraceEvent{At: 20 * time.Minute, Zone: z, GPU: A100, Delta: 8},
	)
	ctrl := sys.NewController()
	rep, err := ctrl.RunElastic(tr, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IterationsDone == 0 {
		t.Fatal("elastic run trained nothing")
	}
	if len(rep.Reconfigs) < 2 {
		t.Fatalf("expected initial deploy + growth reconfig, got %d", len(rep.Reconfigs))
	}
}

func TestProfilingOverheadIsReported(t *testing.T) {
	sys, err := New(OPT350M(), []GPUType{A100})
	if err != nil {
		t.Fatal(err)
	}
	o := sys.ProfilingOverhead()
	if o <= 0 || o > time.Hour {
		t.Errorf("profiling overhead %v implausible", o)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(OPT350M(), nil); err == nil {
		t.Error("want error with no GPU types")
	}
	bad := OPT350M()
	bad.Layers = 0
	if _, err := New(bad, []GPUType{A100}); err == nil {
		t.Error("want error for invalid model")
	}
}
