package sailor

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/wire"
)

// TestServicePlanMatchesSystem: the front door adds no planner behavior —
// Service.Plan equals System.Plan (plan, estimate, telemetry) on the same
// inputs, at more than one worker count.
func TestServicePlanMatchesSystem(t *testing.T) {
	pools := replayPools(t, "preemption-storm", 1, 4)
	for _, workers := range []int{1, 4} {
		svc := NewService(ServiceConfig{Workers: workers})
		if err := svc.OpenJob("tenant", OPT350M(), []GPUType{A100}, 0); err != nil {
			t.Fatal(err)
		}
		sys, err := New(OPT350M(), []GPUType{A100}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i, pool := range pools {
			got, err := svc.Plan(context.Background(), "tenant", pool, MaxThroughput, Constraints{})
			if err != nil {
				t.Fatalf("workers=%d pool %d: %v", workers, i, err)
			}
			want, err := sys.Plan(pool, MaxThroughput, Constraints{})
			if err != nil {
				t.Fatal(err)
			}
			if a, b := canonicalResult(t, got), canonicalResult(t, want); a != b {
				t.Errorf("workers=%d pool %d: service diverged from System:\n%s\nvs\n%s",
					workers, i, a, b)
			}
		}
	}
}

// canonicalResult renders a result through the wire codec with the one
// wall-clock field zeroed — the byte-identity the determinism contract
// promises.
func canonicalResult(t *testing.T, res PlanResult) string {
	t.Helper()
	res.SearchTime = 0
	data, err := wire.MarshalPlanResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestServiceReplanContinuity: per-job warm caches give each tenant the
// same replan history System.Replan gives a dedicated System — including
// CacheHits — and tenants never contaminate each other's caches.
func TestServiceReplanContinuity(t *testing.T) {
	pools := replayPools(t, "preemption-storm", 1, 6)
	svc := NewService(ServiceConfig{Workers: 2})
	for _, job := range []string{"a", "b"} {
		if err := svc.OpenJob(job, OPT350M(), []GPUType{A100}, 0); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := New(OPT350M(), []GPUType{A100}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	var prevSys Plan
	wantHits := make([]int, len(pools))
	wantPlans := make([]string, len(pools))
	for i, pool := range pools {
		res, err := sys.Replan(prevSys, pool, MaxThroughput, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		wantHits[i], wantPlans[i], prevSys = res.CacheHits, res.Plan.String(), res.Plan
	}
	// Tenant "a" replays the same history; tenant "b" interleaves plans that
	// must not perturb a's cache-hit trajectory.
	var prevA Plan
	totalHits := 0
	for i, pool := range pools {
		if _, err := svc.Plan(context.Background(), "b", pool, MaxThroughput, Constraints{}); err != nil {
			t.Fatal(err)
		}
		res, err := svc.Replan(context.Background(), "a", prevA, pool, MaxThroughput, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.String() != wantPlans[i] {
			t.Errorf("pool %d: service replan plan diverged", i)
		}
		if res.CacheHits != wantHits[i] {
			t.Errorf("pool %d: service CacheHits = %d, want %d (tenant isolation broken?)",
				i, res.CacheHits, wantHits[i])
		}
		totalHits += res.CacheHits
		prevA = res.Plan
	}
	if totalHits == 0 {
		t.Error("service replan chain never hit the warm cache")
	}
}

// TestServiceSystemSharing: jobs with the same (model, GPU set, seed)
// shape share one profiled System; different shapes do not; the LRU evicts
// beyond its capacity; closed jobs free their slot in the jobs map only.
func TestServiceSystemSharing(t *testing.T) {
	svc := NewService(ServiceConfig{SystemCacheSize: 2})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(svc.OpenJob("a", OPT350M(), []GPUType{A100, V100}, 0))
	must(svc.OpenJob("b", OPT350M(), []GPUType{V100, A100}, 0)) // same set, different order
	must(svc.OpenJob("c", GPT2XL(), []GPUType{A100}, 0))
	a, _ := svc.job("a")
	b, _ := svc.job("b")
	c, _ := svc.job("c")
	if a.sys != b.sys {
		t.Error("same-shape jobs must share one profiled System")
	}
	if a.warm == b.warm {
		t.Error("jobs sharing a System must still have private warm caches")
	}
	if a.sys == c.sys {
		t.Error("different models must not share a System")
	}
	st, _ := svc.Stats()
	if st.SystemCacheHits != 1 || st.SystemCacheMisses != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 1/2", st.SystemCacheHits, st.SystemCacheMisses)
	}
	// A third shape evicts the least recently used (OPT350M's system).
	must(svc.OpenJob("d", GPTNeo27B(), []GPUType{V100}, 0))
	st, _ = svc.Stats()
	if st.SystemsCached != 2 {
		t.Errorf("SystemsCached = %d, want 2 (capacity)", st.SystemsCached)
	}
	must(svc.CloseJob("a"))
	if err := svc.CloseJob("a"); err == nil {
		t.Error("double CloseJob must fail")
	}
	if _, err := svc.job("a"); err == nil || !strings.Contains(err.Error(), "not open") {
		t.Errorf("closed job lookup = %v", err)
	}
}

// TestServiceOpenJobErrors: the front door validates its inputs.
func TestServiceOpenJobErrors(t *testing.T) {
	svc := NewService(ServiceConfig{})
	if err := svc.OpenJob("", OPT350M(), []GPUType{A100}, 0); err == nil {
		t.Error("empty job name must fail")
	}
	if err := svc.OpenJob("x", OPT350M(), nil, 0); err == nil {
		t.Error("no GPU types must fail")
	}
	if err := svc.OpenJob("x", OPT350M(), []GPUType{A100}, 0); err != nil {
		t.Fatal(err)
	}
	if err := svc.OpenJob("x", OPT350M(), []GPUType{A100}, 0); err == nil ||
		!strings.Contains(err.Error(), "already open") {
		t.Errorf("duplicate OpenJob = %v, want already-open error", err)
	}
	if err := svc.OpenJob("bad", Model{Name: "junk"}, []GPUType{A100}, 0); err == nil {
		t.Error("invalid model must fail to open")
	}
	if _, err := svc.Plan(context.Background(), "ghost", NewPool(), MaxThroughput, Constraints{}); err == nil {
		t.Error("planning an unopened job must fail")
	}
	if _, err := svc.Simulate("ghost", Plan{}); err == nil {
		t.Error("simulating an unopened job must fail")
	}
	st, _ := svc.Stats()
	if st.Errors < 2 {
		t.Errorf("Errors = %d, want >=2 (failed plan + simulate)", st.Errors)
	}
}

// TestServiceConcurrentTenants is the multi-tenant race test (run under
// -race): several tenants plan, replan, and simulate concurrently against
// one Service — two of them sharing a System — and every response matches
// the single-tenant reference.
func TestServiceConcurrentTenants(t *testing.T) {
	pools := replayPools(t, "preemption-storm", 3, 4)
	svc := NewService(ServiceConfig{Workers: 1, MaxConcurrent: 4})
	sys, err := New(OPT350M(), []GPUType{A100}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	cold := make([]string, len(pools))
	for i, p := range pools {
		res, err := sys.Plan(p, MaxThroughput, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		cold[i] = res.Plan.String()
	}

	const tenants = 4
	var wg sync.WaitGroup
	for g := 0; g < tenants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			job := []string{"t0", "t1", "t2", "t3"}[g]
			if err := svc.OpenJob(job, OPT350M(), []GPUType{A100}, 0); err != nil {
				t.Error(err)
				return
			}
			var prev Plan
			for i, pool := range pools {
				var res PlanResult
				var err error
				if g%2 == 0 {
					res, err = svc.Plan(context.Background(), job, pool, MaxThroughput, Constraints{})
				} else {
					res, err = svc.Replan(context.Background(), job, prev, pool, MaxThroughput, Constraints{})
				}
				if err != nil {
					t.Errorf("tenant %s pool %d: %v", job, i, err)
					return
				}
				if res.Plan.String() != cold[i] {
					t.Errorf("tenant %s pool %d: plan diverged from reference", job, i)
				}
				if _, err := svc.Simulate(job, res.Plan); err != nil {
					t.Errorf("tenant %s simulate: %v", job, err)
				}
				prev = res.Plan
			}
			if err := svc.CloseJob(job); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	st, err := svc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	wantReqs := uint64(tenants * len(pools) * 2) // plan/replan + simulate each
	if st.Requests != wantReqs {
		t.Errorf("Requests = %d, want %d", st.Requests, wantReqs)
	}
	if st.Plans+st.Replans != uint64(tenants*len(pools)) {
		t.Errorf("Plans+Replans = %d, want %d", st.Plans+st.Replans, tenants*len(pools))
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after quiescence, want 0", st.InFlight)
	}
	if st.JobsOpen != 0 {
		t.Errorf("JobsOpen = %d after closing all, want 0", st.JobsOpen)
	}
	if st.QPS <= 0 || st.UptimeSeconds <= 0 {
		t.Errorf("QPS/Uptime = %v/%v, want positive", st.QPS, st.UptimeSeconds)
	}
}

// TestServiceQueuedCancellation: a request queued behind the concurrency
// bound honors context cancellation instead of waiting forever.
func TestServiceQueuedCancellation(t *testing.T) {
	svc := NewService(ServiceConfig{Workers: 1, MaxConcurrent: 1})
	if err := svc.OpenJob("j", OPT350M(), []GPUType{A100}, 0); err != nil {
		t.Fatal(err)
	}
	svc.sem <- struct{}{} // occupy the only slot
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Plan(ctx, "j", NewPool(), MaxThroughput, Constraints{}); err == nil ||
		!strings.Contains(err.Error(), "cancelled") {
		t.Errorf("queued+cancelled plan = %v, want cancellation error", err)
	}
	<-svc.sem
}
