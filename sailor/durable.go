package sailor

// Durability hooks: the bridge between a live Service and the
// internal/persist subsystem. The service itself stays storage-free — it
// exposes its state as a persist.State (PersistState), accepts one back
// (Restore), and streams every mutation to a Recorder (SetRecorder). The
// sailor-serve daemon composes these with a persist.Store:
//
//	boot:     persist.Open → Restore(recovered) → store.Rotate(PersistState())
//	          → SetRecorder(store) → serve
//	shutdown: drain → store.Rotate(PersistState()) → store.Close()
//
// Restored jobs carry no profiled System: profiling re-warms lazily on each
// job's first request (jobSystem), so recovery cost is proportional to the
// state, not to the profiling campaign. Warm planner caches are not
// persisted either — a warm replan that runs to completion returns the same
// plan as a cold one, so post-recovery plans are byte-identical and only
// the CacheHits/Explored telemetry differs.

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/persist"
	"repro/internal/planner"
	"repro/internal/wire"
)

// Recorder receives every state-mutating operation of a Service, in an
// order that replays: ledger ops arrive from inside the ledger's critical
// section (exact version order), service ops under the service lock. A
// Recorder must not call back into the Service or its Ledger — it runs
// under their locks. *persist.Store implements Recorder.
type Recorder interface {
	RecordOpenJob(job string, m Model, gpus []GPUType, priority int)
	RecordCloseJob(job string)
	RecordJobPlan(job string, plan Plan, obj Objective, cons Constraints)
	RecordSetFleet(snap fleet.Snapshot)
	RecordLedgerOp(op fleet.Op)
}

var _ Recorder = (*persist.Store)(nil)

// SetRecorder attaches (or, with nil, detaches) the mutation recorder,
// including the fleet ledger's op observer. Attach before serving traffic:
// mutations made while no recorder is attached are not journaled, so the
// caller must snapshot (Rotate) the current state first.
func (s *Service) SetRecorder(rec Recorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec = rec
	if s.fleet == nil {
		return
	}
	if rec == nil {
		s.fleet.SetObserver(nil)
		return
	}
	s.fleet.SetObserver(rec.RecordLedgerOp)
}

// PersistState captures the service's durable state: open jobs (model, GPU
// set, priority, last deployed plan), the fleet ledger, and the
// profiled-system LRU keys. Call it on a quiesced service (before serving,
// or after draining) — a capture during an in-flight fleet commit could
// catch a lease mid-compensation.
func (s *Service) PersistState() *persist.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &persist.State{}
	for name, j := range s.jobs {
		js := persist.JobState{
			Name:     name,
			Model:    wire.FromModel(j.model),
			GPUs:     gpuNames(j.gpus),
			Priority: j.priority,
		}
		if len(j.lastPlan.Stages) > 0 {
			plan := wire.FromPlan(j.lastPlan)
			cons := wire.FromConstraints(j.lastCons)
			js.LastPlan, js.LastObjective, js.LastConstraints = &plan, j.lastObj.String(), &cons
		}
		st.Jobs = append(st.Jobs, js)
	}
	st.Normalize()
	if s.fleet != nil {
		st.Fleet = persist.FleetStateFrom(s.fleet.Snapshot())
	}
	st.LRUKeys = append([]string(nil), s.systems.order...)
	return st
}

// Restore loads a recovered state into an empty service: jobs re-register
// (systems profile lazily on first use), the fleet ledger resumes at its
// exact recovered version, and Stats' Recovery block reports the recovery.
// The service must not have served yet — restored state replaces whatever
// the config seeded.
func (s *Service) Restore(r *persist.Recovered) error {
	if r == nil || r.State == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) > 0 {
		return fmt.Errorf("sailor: Restore on a service with %d open jobs", len(s.jobs))
	}
	for _, js := range r.State.Jobs {
		j := &serviceJob{
			model:    js.Model.Config(),
			warm:     planner.NewWarmCache(),
			gpus:     gpuTypes(js.GPUs),
			priority: js.Priority,
			lastObj:  MaxThroughput,
		}
		if js.LastPlan != nil {
			obj, err := ParseObjective(js.LastObjective)
			if err != nil {
				return fmt.Errorf("sailor: restore job %q: %w", js.Name, err)
			}
			j.lastPlan, j.lastObj, j.lastCons = js.LastPlan.Core(), obj, js.LastConstraints.Core()
		}
		s.jobs[js.Name] = j
	}
	if r.State.Fleet != nil {
		led, err := r.State.Fleet.Ledger()
		if err != nil {
			return err
		}
		s.fleet = led
	} else {
		s.fleet = nil
	}
	s.recovery = &wire.RecoveryStats{
		SnapshotGen:     r.SnapshotGen,
		LedgerVersion:   r.LedgerVersion,
		JobsRestored:    len(r.State.Jobs),
		RecordsReplayed: r.RecordsReplayed,
		DurationSeconds: r.Duration.Seconds(),
	}
	return nil
}

// gpuNames flattens a GPU-type set for persistence.
func gpuNames(gpus []GPUType) []string {
	out := make([]string, len(gpus))
	for i, g := range gpus {
		out[i] = string(g)
	}
	return out
}

// gpuTypes is the inverse of gpuNames.
func gpuTypes(names []string) []GPUType {
	out := make([]GPUType, len(names))
	for i, n := range names {
		out[i] = GPUType(n)
	}
	return out
}
