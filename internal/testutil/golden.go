// Package testutil holds test-only helpers shared between packages —
// currently the golden-file harness the CLI -json tests use. It is imported
// only from _test.go files.
package testutil

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Update rewrites golden files instead of comparing against them; wired to
// the -update test flag of every binary that imports this package.
var Update = flag.Bool("update", false, "rewrite golden files")

// NormalizeJSON parses doc, applies zero to drop volatile (wall-clock)
// fields, and re-renders it canonically for golden comparison.
func NormalizeJSON(t *testing.T, doc []byte, zero func(map[string]any)) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(doc, &m); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, doc)
	}
	zero(m)
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// CheckGolden compares got against testdata/<name>, rewriting the file
// when the -update flag is set.
func CheckGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *Update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON shape drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
