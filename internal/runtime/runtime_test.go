package runtime

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/trace"
)

var zoneA = cluster.GCPZone("us-central1", 'a')

func hetPlan() core.Plan {
	// PP=2, DP=2, stage 0 on A100/tp2, stage 1 on V100 with mixed tp 4/2:
	// the heterogeneous shape §4.4 adds support for.
	return core.Plan{
		MicroBatchSize: 2,
		Stages: []core.StagePlan{
			{FirstLayer: 0, NumLayers: 12, Replicas: []core.StageReplica{
				{GPU: core.A100, TP: 2, Zone: zoneA}, {GPU: core.A100, TP: 2, Zone: zoneA},
			}},
			{FirstLayer: 12, NumLayers: 12, Replicas: []core.StageReplica{
				{GPU: core.V100, TP: 4, Zone: zoneA}, {GPU: core.V100, TP: 2, Zone: zoneA},
			}},
		},
	}
}

func TestBuildTopologyRanks(t *testing.T) {
	topo, err := BuildTopology(hetPlan())
	if err != nil {
		t.Fatal(err)
	}
	if topo.WorldSize != 2+2+4+2 {
		t.Fatalf("WorldSize = %d, want 10", topo.WorldSize)
	}
	// Ranks must be unique and dense.
	seen := map[int]bool{}
	for _, st := range topo.Ranks {
		for _, g := range st {
			for _, r := range g {
				if seen[r] {
					t.Fatalf("rank %d assigned twice", r)
				}
				seen[r] = true
			}
		}
	}
	for r := 0; r < topo.WorldSize; r++ {
		if !seen[r] {
			t.Fatalf("rank %d missing", r)
		}
	}
}

func TestTPAndDPGroups(t *testing.T) {
	topo, _ := BuildTopology(hetPlan())
	tp := topo.TPGroups()
	if len(tp) != 4 { // every replica has TP>1
		t.Fatalf("TPGroups = %d, want 4", len(tp))
	}
	dp := topo.DPGroups()
	// Stage 0: maxTP 2 -> 2 groups; stage 1: maxTP 4 -> 4 groups.
	if len(dp) != 6 {
		t.Fatalf("DPGroups = %d, want 6", len(dp))
	}
	// Heterogeneous stage 1: the tp=2 replica's ranks each appear in two
	// groups (split/replicate of §4.4).
	count := map[int]int{}
	for _, g := range dp {
		for _, r := range g {
			count[r]++
		}
	}
	info8, _ := topo.Locate(8) // first rank of the tp=2 replica in stage 1
	if info8.Stage != 1 || info8.Replica != 1 {
		t.Fatalf("rank 8 at %+v, expected stage 1 replica 1", info8)
	}
	if count[8] != 2 {
		t.Errorf("coarse-sharded rank 8 should join 2 DP groups, joins %d", count[8])
	}
}

func TestPPEdgesSplitReplicate(t *testing.T) {
	topo, _ := BuildTopology(hetPlan())
	edges := topo.PPEdges()
	if len(edges) == 0 {
		t.Fatal("no pipeline edges")
	}
	// Pipeline 0: stage0 replica0 (tp=2, ranks 0,1) feeds stage1 replica0
	// (tp=4, ranks 4..7): fan-out 1->2 per source shard.
	fanOut := 0
	for _, e := range edges {
		if e.Src == 0 || e.Src == 1 {
			fanOut++
		}
	}
	if fanOut != 4 {
		t.Errorf("stage0->stage1 fan-out edges = %d, want 4 (each source feeds 2)", fanOut)
	}
	// Every destination shard of stage 1 replica 0 is fed.
	fed := map[int]bool{}
	for _, e := range edges {
		fed[e.Dst] = true
	}
	for r := 4; r <= 7; r++ {
		if !fed[r] {
			t.Errorf("stage-1 rank %d receives no activations", r)
		}
	}
}

func TestLocate(t *testing.T) {
	topo, _ := BuildTopology(hetPlan())
	info, err := topo.Locate(0)
	if err != nil || info.Stage != 0 || info.Replica != 0 || info.Shard != 0 {
		t.Fatalf("Locate(0) = %+v, %v", info, err)
	}
	if _, err := topo.Locate(99); err == nil {
		t.Error("want error for unknown rank")
	}
}

func TestCheckpointAsyncSemantics(t *testing.T) {
	c := NewCheckpointManager(10, 5.0)
	// Iteration 10 at t=100 starts a snapshot completing at t=105.
	c.OnIteration(10, 100)
	if got := c.LastCompleted(102); got != 0 {
		t.Errorf("snapshot not yet durable at t=102, got %d", got)
	}
	if got := c.LastCompleted(106); got != 10 {
		t.Errorf("snapshot should be durable at t=106, got %d", got)
	}
	// A rollback mid-flush discards the pending snapshot.
	c2 := NewCheckpointManager(10, 5.0)
	c2.OnIteration(10, 100)
	if got := c2.Rollback(101); got != 0 {
		t.Errorf("rollback mid-flush should land on 0, got %d", got)
	}
	// Skipped snapshot while one is in flight.
	c3 := NewCheckpointManager(1, 100.0)
	c3.OnIteration(1, 0)
	c3.OnIteration(2, 1) // still flushing; skipped
	if got := c3.LastCompleted(101); got != 1 {
		t.Errorf("only the first snapshot should complete, got %d", got)
	}
}

func newController(t *testing.T, cfg model.Config, gpus ...core.GPUType) *Controller {
	t.Helper()
	prof, err := profiler.Collect(cfg, gpus, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pl := planner.New(cfg, sim.New(cfg, prof), planner.Options{
		Objective:  core.MaxThroughput,
		Heuristics: planner.AllHeuristics(),
	})
	return NewController(ControllerConfig{
		Planner: pl, GT: groundtruth.New(cfg),
		CheckpointEvery: 5, CheckpointFlushSec: 2,
	})
}

func TestDeployAndTrain(t *testing.T) {
	cfg := model.OPT350M()
	c := newController(t, cfg, core.V100)
	defer c.Shutdown()
	pool := cluster.NewPool().Set(zoneA, core.V100, 16)
	timings, err := c.Deploy(pool)
	if err != nil {
		t.Fatal(err)
	}
	if timings.GroupInit <= 0 || timings.Broadcast <= 0 {
		t.Errorf("initial deploy must pay group init and broadcast: %+v", timings)
	}
	n, err := c.TrainFor(3600)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("an hour of training should complete iterations")
	}
	if c.Iteration() != n {
		t.Errorf("iteration counter %d != %d", c.Iteration(), n)
	}
}

// TestReconfigurationTimings reproduces §5.5: 16 V100s, 4 more appear,
// the controller re-plans and reconfigures kill-free.
func TestReconfigurationTimings(t *testing.T) {
	cfg := model.OPT350M()
	c := newController(t, cfg, core.V100)
	defer c.Shutdown()
	if _, err := c.Deploy(cluster.NewPool().Set(zoneA, core.V100, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TrainFor(600); err != nil {
		t.Fatal(err)
	}
	grew := cluster.NewPool().Set(zoneA, core.V100, 20)
	timings, err := c.Deploy(grew)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: planning 0.1 s, cleanup 3 s, broadcast 1.25 s, NCCL 4.5 s,
	// model 2 s, dataloaders 0.5 s. Check the shape, not exact values.
	if timings.Cleanup < 1 || timings.Cleanup > 10 {
		t.Errorf("cleanup %.2fs outside the expected ~3s band", timings.Cleanup)
	}
	if timings.GroupInit < 2 || timings.GroupInit > 60 {
		t.Errorf("group init %.2fs outside the expected ~4.5s band", timings.GroupInit)
	}
	if timings.ModelRedef <= 0 || timings.Dataloader <= 0 {
		t.Errorf("model/dataloader redefinition missing: %+v", timings)
	}
	if timings.Planning > 5 {
		t.Errorf("replanning took %.2fs; paper reports 0.1s", timings.Planning)
	}
	if timings.Total() > 60 {
		t.Errorf("total reconfiguration %.2fs implausibly high", timings.Total())
	}
}

func TestGroupInitScalesWithWorldSize(t *testing.T) {
	// §5.5: NCCL initialization grows toward minutes at large scale.
	small := groupInitBaseSec + groupInitPerRank*16
	large := groupInitBaseSec + groupInitPerRank*2048
	if large < 60*small/10 {
		t.Errorf("group init should grow steeply with ranks: %v vs %v", small, large)
	}
}

func TestCheckpointRollbackOnReconfig(t *testing.T) {
	cfg := model.OPT350M()
	c := newController(t, cfg, core.V100)
	defer c.Shutdown()
	if _, err := c.Deploy(cluster.NewPool().Set(zoneA, core.V100, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TrainFor(2000); err != nil {
		t.Fatal(err)
	}
	before := c.Iteration()
	timings, err := c.Deploy(cluster.NewPool().Set(zoneA, core.V100, 12))
	if err != nil {
		t.Fatal(err)
	}
	after := c.Iteration()
	if after > before {
		t.Fatal("iteration counter cannot advance during reconfiguration")
	}
	lost := before - after
	if lost != timings.RolledBackIters {
		t.Errorf("rollback accounting mismatch: %d vs %d", lost, timings.RolledBackIters)
	}
	// With checkpoints every 5 iterations, rollback loses fewer than
	// 5 + in-flight.
	if lost > c.Cfg.CheckpointEvery+2 {
		t.Errorf("lost %d iterations; checkpointing every %d should bound this", lost, c.Cfg.CheckpointEvery)
	}
}

func TestPreemptionKillsAndReplans(t *testing.T) {
	cfg := model.OPT350M()
	c := newController(t, cfg, core.V100)
	defer c.Shutdown()
	if _, err := c.Deploy(cluster.NewPool().Set(zoneA, core.V100, 16)); err != nil {
		t.Fatal(err)
	}
	killed := c.KillWorkersOn(zoneA, core.V100)
	if killed == 0 {
		t.Fatal("expected workers on the reclaimed capacity")
	}
	// Replan on the shrunken pool must succeed with fresh workers.
	if _, err := c.Deploy(cluster.NewPool().Set(zoneA, core.V100, 8)); err != nil {
		t.Fatal(err)
	}
	plan, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.GPUCount() > 8 {
		t.Errorf("new plan uses %d GPUs, only 8 remain", plan.GPUCount())
	}
	if _, err := c.TrainFor(600); err != nil {
		t.Fatalf("training after preemption: %v", err)
	}
}

func TestRunElasticOverTrace(t *testing.T) {
	cfg := model.OPT350M()
	c := newController(t, cfg, core.A100)
	tr := trace.Synthetic(2*time.Hour,
		trace.Event{At: 0, Zone: zoneA, GPU: core.A100, Delta: 8},
		trace.Event{At: 30 * time.Minute, Zone: zoneA, GPU: core.A100, Delta: 8},
		trace.Event{At: 90 * time.Minute, Zone: zoneA, GPU: core.A100, Delta: -8},
	)
	rep, err := c.RunElastic(tr, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IterationsDone <= 0 {
		t.Fatal("no training happened")
	}
	if len(rep.Reconfigs) < 3 { // initial + grow + shrink
		t.Errorf("reconfigs = %d, want >= 3", len(rep.Reconfigs))
	}
	if len(rep.PlansUsed) != len(rep.Reconfigs) {
		t.Errorf("plans %d != reconfigs %d", len(rep.PlansUsed), len(rep.Reconfigs))
	}
	// The plan after growth should use more GPUs than the initial one.
	if len(rep.PlansUsed) >= 2 && rep.PlansUsed[1].GPUCount() <= rep.PlansUsed[0].GPUCount() {
		t.Errorf("growth event should enlarge the plan: %d -> %d",
			rep.PlansUsed[0].GPUCount(), rep.PlansUsed[1].GPUCount())
	}
}

func TestWorkerLifecycle(t *testing.T) {
	w := NewWorker(1)
	topo, _ := BuildTopology(hetPlan())
	sec, err := w.Setup(1, topo.WorldSize, topo.GroupCount())
	if err != nil || sec <= 0 {
		t.Fatalf("setup: %v %v", sec, err)
	}
	if !w.Ready() {
		t.Fatal("worker should be ready after setup")
	}
	if _, err := w.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if w.Ready() {
		t.Fatal("worker not ready after cleanup")
	}
	w.Kill()
	if _, err := w.Setup(1, topo.WorldSize, topo.GroupCount()); err == nil {
		t.Fatal("dead worker must not accept commands")
	}
	w.Shutdown()
}

func TestReportTotalDowntimeSeconds(t *testing.T) {
	rep := Report{Reconfigs: []PhaseTimings{
		{Planning: 1, Broadcast: 2},
		{Cleanup: 0.5, CkptLoad: 1.5},
	}}
	if got, want := rep.TotalDowntimeSeconds(), 5.0; got != want {
		t.Errorf("TotalDowntimeSeconds = %v, want %v", got, want)
	}
	if got := (Report{}).TotalDowntimeSeconds(); got != 0 {
		t.Errorf("empty report downtime = %v, want 0", got)
	}
}
