package runtime

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// SnapshotStore persists checkpoint shards to disk, the durable half of the
// asynchronous checkpointing of §4.4: workers hand over their (simulated)
// state blobs, the store writes them in the background, and a checkpoint
// becomes restorable only once every shard of that iteration is fsync'd and
// its manifest is committed. Partial checkpoints are ignored on restore,
// so a crash or preemption mid-flush never corrupts recovery.
//
// Layout: <dir>/ckpt-<iter>/shard-<rank>.bin (CRC-framed) plus
// <dir>/ckpt-<iter>/MANIFEST written last.
type SnapshotStore struct {
	dir string

	mu     sync.Mutex
	writes sync.WaitGroup
	errs   []error
}

// NewSnapshotStore creates (or reuses) the checkpoint directory.
func NewSnapshotStore(dir string) (*SnapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runtime: snapshot dir: %w", err)
	}
	return &SnapshotStore{dir: dir}, nil
}

// Dir returns the store root.
func (s *SnapshotStore) Dir() string { return s.dir }

func (s *SnapshotStore) ckptDir(iter int) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%08d", iter))
}

// WriteShard asynchronously persists one worker's state blob for the
// checkpoint at iteration `iter`. It returns immediately; Commit waits for
// completion.
func (s *SnapshotStore) WriteShard(iter, rank int, state []byte) {
	blob := append([]byte(nil), state...) // caller may reuse its buffer
	s.writes.Add(1)
	go func() {
		defer s.writes.Done()
		if err := s.writeShardSync(iter, rank, blob); err != nil {
			s.mu.Lock()
			s.errs = append(s.errs, err)
			s.mu.Unlock()
		}
	}()
}

func (s *SnapshotStore) writeShardSync(iter, rank int, state []byte) error {
	dir := s.ckptDir(iter)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Frame: [len u64][crc32 u32][payload]. Write to a temp file and
	// rename so a torn write never masquerades as a shard.
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(len(state)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(state))
	tmp := filepath.Join(dir, fmt.Sprintf(".shard-%06d.tmp", rank))
	final := filepath.Join(dir, fmt.Sprintf("shard-%06d.bin", rank))
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(state); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// Commit waits for in-flight shard writes of iteration `iter` and, if all
// `shards` are present and healthy, writes the manifest that makes the
// checkpoint restorable.
func (s *SnapshotStore) Commit(iter, shards int) error {
	s.writes.Wait()
	s.mu.Lock()
	if len(s.errs) > 0 {
		err := s.errs[0]
		s.errs = nil
		s.mu.Unlock()
		return fmt.Errorf("runtime: shard write failed: %w", err)
	}
	s.mu.Unlock()
	dir := s.ckptDir(iter)
	for r := 0; r < shards; r++ {
		if _, _, err := s.readShard(iter, r); err != nil {
			return fmt.Errorf("runtime: checkpoint %d incomplete: %w", iter, err)
		}
	}
	manifest := filepath.Join(dir, "MANIFEST")
	body := fmt.Sprintf("iter=%d shards=%d\n", iter, shards)
	tmp := manifest + ".tmp"
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, manifest)
}

// readShard loads and verifies one shard.
func (s *SnapshotStore) readShard(iter, rank int) ([]byte, uint32, error) {
	path := filepath.Join(s.ckptDir(iter), fmt.Sprintf("shard-%06d.bin", rank))
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < 12 {
		return nil, 0, fmt.Errorf("runtime: shard %s truncated header", path)
	}
	n := binary.LittleEndian.Uint64(raw[0:8])
	want := binary.LittleEndian.Uint32(raw[8:12])
	payload := raw[12:]
	if uint64(len(payload)) != n {
		return nil, 0, fmt.Errorf("runtime: shard %s truncated payload (%d of %d bytes)", path, len(payload), n)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, fmt.Errorf("runtime: shard %s CRC mismatch", path)
	}
	return payload, want, nil
}

// Restore returns the shard payloads of the newest committed checkpoint at
// or below maxIter, with its iteration number. A checkpoint counts only if
// its manifest exists and every shard verifies.
func (s *SnapshotStore) Restore(maxIter int) (int, [][]byte, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, nil, err
	}
	var iters []int
	for _, e := range entries {
		var it int
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d", &it); err == nil && it <= maxIter {
			iters = append(iters, it)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(iters)))
	for _, it := range iters {
		manifest := filepath.Join(s.ckptDir(it), "MANIFEST")
		raw, err := os.ReadFile(manifest)
		if err != nil {
			continue // uncommitted: flush was interrupted
		}
		var gotIter, shards int
		if _, err := fmt.Sscanf(string(raw), "iter=%d shards=%d", &gotIter, &shards); err != nil || gotIter != it {
			continue
		}
		payloads := make([][]byte, shards)
		ok := true
		for r := 0; r < shards; r++ {
			p, _, err := s.readShard(it, r)
			if err != nil {
				ok = false
				break
			}
			payloads[r] = p
		}
		if ok {
			return it, payloads, nil
		}
	}
	return 0, nil, fmt.Errorf("runtime: no committed checkpoint at or below iteration %d", maxIter)
}

// GC removes all checkpoints older than keepFrom, bounding disk use.
func (s *SnapshotStore) GC(keepFrom int) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		var it int
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d", &it); err == nil && it < keepFrom {
			if err := os.RemoveAll(filepath.Join(s.dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}
