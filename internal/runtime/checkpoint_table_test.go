package runtime

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
)

// ckptStep drives one CheckpointManager interaction.
type ckptStep struct {
	iter int     // OnIteration(iter, now) when > 0
	now  float64 // virtual time of the step
	// rollback, when true, calls Rollback(now) instead and asserts resume.
	rollback   bool
	wantResume int
}

// TestCheckpointRollbackTable covers the rollback accounting across
// checkpoint intervals, including the zero-interval and
// reconfig-during-flush edge cases the async semantics make subtle.
func TestCheckpointRollbackTable(t *testing.T) {
	cases := []struct {
		name  string
		every int
		flush float64
		steps []ckptStep
	}{
		{
			name: "durable-after-flush", every: 10, flush: 5,
			steps: []ckptStep{
				{iter: 10, now: 100},
				{rollback: true, now: 106, wantResume: 10},
			},
		},
		{
			name: "reconfig-during-flush-discards-pending", every: 10, flush: 5,
			steps: []ckptStep{
				{iter: 10, now: 100},
				{rollback: true, now: 102, wantResume: 0},
				// The discarded snapshot never lands, even after its
				// original flush deadline passes.
				{rollback: true, now: 200, wantResume: 0},
			},
		},
		{
			name: "zero-interval-never-checkpoints", every: 0, flush: 5,
			steps: []ckptStep{
				{iter: 1, now: 1},
				{iter: 100, now: 100},
				{rollback: true, now: 1000, wantResume: 0},
			},
		},
		{
			name: "negative-interval-never-checkpoints", every: -3, flush: 5,
			steps: []ckptStep{
				{iter: 3, now: 10},
				{rollback: true, now: 100, wantResume: 0},
			},
		},
		{
			name: "zero-flush-durable-immediately", every: 5, flush: 0,
			steps: []ckptStep{
				{iter: 5, now: 50},
				{rollback: true, now: 50, wantResume: 5},
			},
		},
		{
			name: "in-flight-snapshot-skips-next-interval", every: 5, flush: 100,
			steps: []ckptStep{
				{iter: 5, now: 10},
				{iter: 10, now: 20}, // still flushing iteration 5: skipped
				{rollback: true, now: 111, wantResume: 5},
				// Iteration 10's snapshot was skipped for good.
				{rollback: true, now: 500, wantResume: 5},
			},
		},
		{
			name: "sequential-checkpoints-advance", every: 5, flush: 2,
			steps: []ckptStep{
				{iter: 5, now: 10},
				{iter: 10, now: 20}, // promotes 5, starts 10
				{iter: 15, now: 30}, // promotes 10, starts 15
				{rollback: true, now: 30.5, wantResume: 10},
			},
		},
		{
			name: "rollback-then-resume-checkpointing", every: 5, flush: 2,
			steps: []ckptStep{
				{iter: 5, now: 10},
				{rollback: true, now: 10.5, wantResume: 0},
				{iter: 5, now: 20},
				{rollback: true, now: 23, wantResume: 5},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCheckpointManager(tc.every, tc.flush)
			for i, st := range tc.steps {
				if st.rollback {
					if got := c.Rollback(st.now); got != st.wantResume {
						t.Errorf("step %d: Rollback(%v) = %d, want %d", i, st.now, got, st.wantResume)
					}
					continue
				}
				c.OnIteration(st.iter, st.now)
			}
		})
	}
}

// TestControllerRollbackAccounting ties the manager to the controller's
// books: across an elastic run the per-reconfig RolledBackIters stay
// bounded by interval + in-flight, and LostIterations matches their sum.
func TestControllerRollbackAccounting(t *testing.T) {
	for _, every := range []int{1, 5, 10} {
		cfg := model.OPT350M()
		c := newController(t, cfg, core.A100)
		c.Cfg.CheckpointEvery = every
		c.ckpt = NewCheckpointManager(every, c.Cfg.CheckpointFlushSec)
		tr := trace.Synthetic(2*time.Hour,
			trace.Event{At: 0, Zone: zoneA, GPU: core.A100, Delta: 8},
			trace.Event{At: 30 * time.Minute, Zone: zoneA, GPU: core.A100, Delta: 8},
			trace.Event{At: 60 * time.Minute, Zone: zoneA, GPU: core.A100, Delta: -12},
			trace.Event{At: 90 * time.Minute, Zone: zoneA, GPU: core.A100, Delta: 8},
		)
		rep, err := c.RunElastic(tr, time.Minute)
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		sum := 0
		for i, r := range rep.Reconfigs {
			sum += r.RolledBackIters
			// Each rollback loses at most a full interval plus whatever was
			// in flight when the reconfig hit.
			if r.RolledBackIters > every+every+1 {
				t.Errorf("every=%d reconfig %d: rolled back %d iterations", every, i, r.RolledBackIters)
			}
		}
		if rep.LostIterations != sum {
			t.Errorf("every=%d: LostIterations=%d, reconfig sum=%d", every, rep.LostIterations, sum)
		}
	}
}

// TestRunElasticBlackoutStopsTraining: a snapshot with zero total GPUs
// tears the deployment down — no iterations accrue on a phantom topology
// until capacity returns and the controller replans.
func TestRunElasticBlackoutStopsTraining(t *testing.T) {
	cfg := model.OPT350M()
	run := func(events ...trace.Event) Report {
		c := newController(t, cfg, core.A100)
		rep, err := c.RunElastic(trace.Synthetic(90*time.Minute, events...), time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	steady := run(
		trace.Event{At: 0, Zone: zoneA, GPU: core.A100, Delta: 8},
	)
	blackout := run(
		trace.Event{At: 0, Zone: zoneA, GPU: core.A100, Delta: 8},
		trace.Event{At: 30 * time.Minute, Zone: zoneA, GPU: core.A100, Delta: -8},
		trace.Event{At: 60 * time.Minute, Zone: zoneA, GPU: core.A100, Delta: 8},
	)
	if blackout.IterationsDone <= 0 {
		t.Fatal("no training around the blackout")
	}
	// A third of the horizon had zero GPUs; the run must train measurably
	// less than the steady one, not sail through the gap at full rate.
	if blackout.IterationsDone >= steady.IterationsDone*5/6 {
		t.Errorf("blackout run trained %d iterations vs steady %d; the gap was trained through",
			blackout.IterationsDone, steady.IterationsDone)
	}
	// The virtual clock spans the whole horizon even through the gap.
	if blackout.VirtualSeconds < 90*60 {
		t.Errorf("virtual clock stopped during the blackout: %.0fs", blackout.VirtualSeconds)
	}

	// A trace that ENDS in the blackout must still book the rollback: the
	// workers died with everything past the last durable checkpoint. A
	// flush longer than the trace keeps every snapshot non-durable, so the
	// whole run must be reported lost.
	c := newController(t, cfg, core.A100)
	c.Cfg.CheckpointFlushSec = 2 * 3600
	c.ckpt = NewCheckpointManager(c.Cfg.CheckpointEvery, c.Cfg.CheckpointFlushSec)
	final, err := c.RunElastic(trace.Synthetic(90*time.Minute,
		trace.Event{At: 0, Zone: zoneA, GPU: core.A100, Delta: 8},
		trace.Event{At: 60 * time.Minute, Zone: zoneA, GPU: core.A100, Delta: -8},
	), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if final.LostIterations != final.IterationsDone || final.IterationsDone <= 0 {
		t.Errorf("trace-final blackout with no durable checkpoint: lost %d of %d iterations, want all",
			final.LostIterations, final.IterationsDone)
	}
}

// TestControllerZeroIntervalRunElastic: a controller configured with no
// checkpointing (interval forced to zero after construction) rolls every
// reconfiguration back to iteration zero and reports zero checkpoints.
func TestControllerZeroIntervalRunElastic(t *testing.T) {
	cfg := model.OPT350M()
	c := newController(t, cfg, core.A100)
	c.Cfg.CheckpointEvery = 0
	c.ckpt = NewCheckpointManager(0, c.Cfg.CheckpointFlushSec)
	tr := trace.Synthetic(time.Hour,
		trace.Event{At: 0, Zone: zoneA, GPU: core.A100, Delta: 8},
		trace.Event{At: 30 * time.Minute, Zone: zoneA, GPU: core.A100, Delta: 8},
	)
	rep, err := c.RunElastic(tr, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointsTaken != 0 {
		t.Errorf("zero interval took %d checkpoints", rep.CheckpointsTaken)
	}
	if len(rep.Reconfigs) >= 2 && rep.Reconfigs[1].RolledBackIters == 0 {
		t.Error("without checkpoints the growth reconfig must roll back to zero")
	}
}
