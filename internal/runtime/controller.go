package runtime

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/planner"
	"repro/internal/trace"
)

// PhaseTimings is the §5.5 reconfiguration breakdown, in virtual seconds
// except Planning, which is measured wall-clock of the real planner call.
type PhaseTimings struct {
	Planning   float64
	Cleanup    float64
	Broadcast  float64
	GroupInit  float64
	ModelRedef float64
	Dataloader float64
	CkptLoad   float64
	// RolledBackIters counts training iterations lost to the checkpoint
	// rollback.
	RolledBackIters int
	// PlanCacheHits counts DP subtrees the replan served from the
	// planner's warm-start cache instead of re-exploring.
	PlanCacheHits int
	// PlanExplored is the replan's search-node count; on a warm replan it
	// shrinks by the cached subtrees, which is where the Planning savings
	// come from.
	PlanExplored int
}

// Total returns the full downtime of one reconfiguration.
func (p PhaseTimings) Total() float64 {
	return p.Planning + p.Cleanup + p.Broadcast + p.GroupInit + p.ModelRedef + p.Dataloader + p.CkptLoad
}

// broadcast cost model: topology fan-out over the control plane
// (~1.25 s at 16 workers in §5.5), growing gently with worker count.
func broadcastSec(workers int) float64 {
	return 0.8 + 0.028*float64(workers)
}

// Report summarises an elastic training run.
type Report struct {
	IterationsDone   int
	VirtualSeconds   float64
	Reconfigs        []PhaseTimings
	PlansUsed        []core.Plan
	LostIterations   int
	CheckpointsTaken int
	// PlanningSeconds is the cumulative wall-clock the run spent inside
	// the planner across every reconfiguration.
	PlanningSeconds float64
	// PlanCacheHits is the cumulative warm-start cache utilisation over
	// all replans (sum of the per-reconfig PlanCacheHits).
	PlanCacheHits int
}

// TotalDowntimeSeconds sums the downtime of every reconfiguration — the
// headline number the replay ledgers (human and JSON) report.
func (r Report) TotalDowntimeSeconds() float64 {
	total := 0.0
	for _, t := range r.Reconfigs {
		total += t.Total()
	}
	return total
}

// Controller is the Sailor job controller: it owns the workers, watches
// availability, re-invokes the planner on changes, and drives kill-free
// reconfiguration (§4.4).
type Controller struct {
	Cfg     ControllerConfig
	workers map[int]WorkerConn
	topo    *Topology
	ckpt    *CheckpointManager
	now     float64 // virtual time, seconds
	iter    int     // global iteration counter
	// warm is the controller's persistent warm-start cache, attached to an
	// ephemeral copy of Cfg.Planner on every reconfiguration — so warm
	// replanning neither mutates the caller's planner nor misses in-place
	// changes the caller makes to it between events.
	warm *planner.WarmCache
}

// ControllerConfig wires the controller's collaborators.
type ControllerConfig struct {
	Planner *planner.Planner
	GT      *groundtruth.Engine
	// CheckpointEvery is the checkpoint interval in iterations.
	CheckpointEvery int
	// CheckpointFlushSec is the async snapshot flush latency.
	CheckpointFlushSec float64
	// SpawnWorker creates worker id when the plan grows. Defaults to
	// in-process workers; tests and deployments inject RemoteWorker
	// factories here to run workers in other processes over the rpc
	// control plane.
	SpawnWorker func(id int) WorkerConn
}

// NewController returns an idle controller.
func NewController(cfg ControllerConfig) *Controller {
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 10
	}
	if cfg.CheckpointFlushSec == 0 {
		cfg.CheckpointFlushSec = 5
	}
	if cfg.SpawnWorker == nil {
		cfg.SpawnWorker = func(id int) WorkerConn { return NewWorker(id) }
	}
	return &Controller{
		Cfg:     cfg,
		workers: map[int]WorkerConn{},
		ckpt:    NewCheckpointManager(cfg.CheckpointEvery, cfg.CheckpointFlushSec),
		warm:    planner.NewWarmCache(),
	}
}

// planner returns the planner to run this reconfiguration with: a fresh
// copy of Cfg.Planner (so in-place changes the caller makes between events
// always take effect, and warm state never leaks into the caller's
// planner) with the controller's persistent warm cache attached — the
// §4.2 replan hot path. A caller-injected shared cache takes precedence;
// if the caller changed the planner's configuration mid-run, the cache's
// fingerprint check makes the next search cold rather than wrong.
func (c *Controller) planner() *planner.Planner {
	cp := *c.Cfg.Planner
	if cp.Opts.Warm == nil {
		cp.Opts.Warm = c.warm
	}
	return &cp
}

// Deploy plans against a pool and sets up workers for the result. It
// returns the reconfiguration timings of the initial launch.
func (c *Controller) Deploy(pool *cluster.Pool) (PhaseTimings, error) {
	return c.reconfigure(pool)
}

// reconfigure is the kill-free path of §4.4: re-plan, instruct existing
// workers to destroy groups and free memory, broadcast the new topology,
// set up groups/model/dataloaders, and resume from the newest durable
// checkpoint. Workers are reused; only the delta is spawned or retired.
func (c *Controller) reconfigure(pool *cluster.Pool) (PhaseTimings, error) {
	var t PhaseTimings

	// Phase 1: planning (real planner, wall-clock measured). After the
	// first deploy the controller replans warm: the deployed plan seeds a
	// fallback incumbent and the planner's warm cache skips DP region
	// states earlier replans already solved.
	start := time.Now()
	pl := c.planner()
	var res planner.Result
	var err error
	if c.topo != nil {
		res, err = pl.Replan(c.topo.Plan, pool)
	} else {
		res, err = pl.Plan(pool)
	}
	if err != nil {
		return t, fmt.Errorf("runtime: replan failed: %w", err)
	}
	t.Planning = time.Since(start).Seconds()
	t.PlanCacheHits = res.CacheHits
	t.PlanExplored = res.Explored

	topo, err := BuildTopology(res.Plan)
	if err != nil {
		return t, err
	}

	// Phase 2: existing live workers destroy communicators and free GPU
	// memory (kill-free: processes stay up). Parallel across workers, so
	// the phase costs the max.
	for id, w := range c.workers {
		if !w.Alive() {
			w.Shutdown()
			delete(c.workers, id)
			continue
		}
		sec, err := w.Cleanup()
		if err != nil {
			w.Shutdown()
			delete(c.workers, id)
			continue
		}
		if sec > t.Cleanup {
			t.Cleanup = sec
		}
	}

	// Spawn or retire workers to match the new world size. The controller
	// "waits for new workers to initialize before updating the training
	// configuration" — their spawn cost rides the group-init phase.
	for id := 0; id < topo.WorldSize; id++ {
		if _, ok := c.workers[id]; !ok {
			c.workers[id] = c.Cfg.SpawnWorker(id)
		}
	}
	for id, w := range c.workers {
		if id >= topo.WorldSize {
			w.Shutdown()
			delete(c.workers, id)
		}
	}

	// Phase 3: broadcast plan + rank topology.
	t.Broadcast = broadcastSec(topo.WorldSize)

	// Phase 4-6: every worker initialises communicators, redefines model
	// and optimizer state, rebuilds dataloaders. Parallel; phase = max.
	groups := topo.GroupCount()
	for id, w := range c.workers {
		sec, err := w.Setup(id, topo.WorldSize, groups)
		if err != nil {
			return t, fmt.Errorf("runtime: worker %d setup: %w", id, err)
		}
		gi := groupInitBaseSec + groupInitPerRank*float64(topo.WorldSize)
		if gi > t.GroupInit {
			t.GroupInit = gi
		}
		if sec-gi > t.ModelRedef+t.Dataloader {
			t.ModelRedef = modelRedefSec
			t.Dataloader = dataloaderSec
		}
	}

	// Phase 7: resume from the newest durable checkpoint.
	resume := c.ckpt.Rollback(c.now)
	if c.iter > resume {
		t.RolledBackIters = c.iter - resume
		c.iter = resume
	}
	if topo.WorldSize > 0 {
		sec, err := c.workers[0].LoadCheckpoint(resume)
		if err == nil {
			t.CkptLoad = sec
		}
	}

	c.topo = topo
	c.now += t.Total()
	return t, nil
}

// Plan returns the currently deployed plan.
func (c *Controller) Plan() (core.Plan, error) {
	if c.topo == nil {
		return core.Plan{}, fmt.Errorf("runtime: no plan deployed")
	}
	return c.topo.Plan, nil
}

// TrainFor advances training by `seconds` of virtual time, returning the
// iterations completed. Iteration duration comes from the ground-truth
// engine for the deployed plan.
func (c *Controller) TrainFor(seconds float64) (int, error) {
	if c.topo == nil {
		return 0, fmt.Errorf("runtime: not deployed")
	}
	est, err := c.Cfg.GT.Measure(c.topo.Plan)
	if err != nil {
		return 0, err
	}
	if !est.FitsMemory {
		return 0, fmt.Errorf("runtime: deployed plan OOMs")
	}
	done := 0
	budget := seconds
	for budget >= est.IterTime {
		budget -= est.IterTime
		c.now += est.IterTime
		c.iter++
		done++
		c.ckpt.OnIteration(c.iter, c.now)
	}
	c.now += budget
	return done, nil
}

// Iteration returns the global iteration counter.
func (c *Controller) Iteration() int { return c.iter }

// Now returns the virtual clock.
func (c *Controller) Now() float64 { return c.now }

// KillWorkersOn simulates preemption of all workers placed on (zone, gpu):
// the availability trace reclaimed those GPUs.
func (c *Controller) KillWorkersOn(z core.Zone, g core.GPUType) int {
	if c.topo == nil {
		return 0
	}
	killed := 0
	for id, w := range c.workers {
		info, err := c.topo.Locate(id)
		if err != nil {
			continue
		}
		if info.Zone == z && info.GPU == g && w.Alive() {
			w.Kill()
			killed++
		}
	}
	return killed
}

// Shutdown stops all workers.
func (c *Controller) Shutdown() {
	for id, w := range c.workers {
		w.Shutdown()
		delete(c.workers, id)
	}
}

// RunElastic replays an availability trace (§5.2's dynamic environments):
// deploy on the initial pool, train between events, reconfigure at each
// availability change (killing preempted workers first), and report
// iterations, downtime, and rollbacks.
func (c *Controller) RunElastic(tr *trace.Trace, step time.Duration) (Report, error) {
	defer c.Shutdown()
	var rep Report

	pool := tr.PoolAt(0)
	lastPool := ""
	if pool.TotalGPUs() > 0 {
		t, err := c.Deploy(pool)
		if err == nil {
			rep.Reconfigs = append(rep.Reconfigs, t)
			p, _ := c.Plan()
			rep.PlansUsed = append(rep.PlansUsed, p)
			lastPool = pool.String()
		}
	}

	prev := time.Duration(0)
	for _, ev := range tr.Events {
		if ev.At > prev {
			span := ev.At - prev
			if c.topo != nil {
				n, err := c.TrainFor(span.Seconds())
				if err == nil {
					rep.IterationsDone += n
				}
			} else {
				// No deployment (pre-deploy or total blackout): the trace
				// clock still advances, so in-flight checkpoint flushes can
				// land and the report spans the real horizon.
				c.now += span.Seconds()
			}
		}
		prev = ev.At
		// Preemption: workers on reclaimed capacity die; the controller's
		// monitor notices and triggers a replan.
		if ev.Delta < 0 {
			c.KillWorkersOn(ev.Zone, ev.GPU)
		}
		pool := tr.PoolAt(ev.At)
		if pool.TotalGPUs() == 0 {
			// Total blackout: nothing to run on. Tear the deployment down
			// so no iterations accrue until capacity returns (the next
			// non-empty snapshot always replans), and book the rollback
			// now — workers died with everything past the last durable
			// checkpoint, and if the trace ends in the blackout no later
			// reconfigure will account for the loss.
			before := c.iter
			resume := c.ckpt.Rollback(c.now)
			if c.iter > resume {
				c.iter = resume
			}
			rep.LostIterations += before - c.iter
			c.Shutdown()
			c.topo = nil
			lastPool = ""
			continue
		}
		// Only replan when availability actually changed; the monitor
		// coalesces no-op events.
		if s := pool.String(); s == lastPool {
			continue
		} else {
			lastPool = s
		}
		before := c.iter
		t, err := c.reconfigure(pool)
		if err != nil {
			continue
		}
		rep.LostIterations += before - c.iter
		rep.Reconfigs = append(rep.Reconfigs, t)
		p, _ := c.Plan()
		rep.PlansUsed = append(rep.PlansUsed, p)
	}
	if tr.Horizon > prev {
		span := (tr.Horizon - prev).Seconds()
		if c.topo != nil {
			n, err := c.TrainFor(span)
			if err == nil {
				rep.IterationsDone += n
			}
		} else {
			c.now += span
		}
	}
	rep.VirtualSeconds = c.now
	rep.CheckpointsTaken = c.ckpt.LastCompleted(c.now) / max(1, c.Cfg.CheckpointEvery)
	for _, t := range rep.Reconfigs {
		rep.PlanningSeconds += t.Planning
		rep.PlanCacheHits += t.PlanCacheHits
	}
	return rep, nil
}
