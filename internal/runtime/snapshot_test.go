package runtime

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func newStore(t *testing.T) *SnapshotStore {
	t.Helper()
	s, err := NewSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := newStore(t)
	shards := [][]byte{[]byte("rank0-state"), []byte("rank1-state"), {}}
	for r, b := range shards {
		s.WriteShard(100, r, b)
	}
	if err := s.Commit(100, len(shards)); err != nil {
		t.Fatal(err)
	}
	it, got, err := s.Restore(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if it != 100 {
		t.Fatalf("restored iter %d, want 100", it)
	}
	for r := range shards {
		if !bytes.Equal(got[r], shards[r]) {
			t.Errorf("shard %d corrupted: %q != %q", r, got[r], shards[r])
		}
	}
}

func TestRestorePicksNewestCommitted(t *testing.T) {
	s := newStore(t)
	for _, it := range []int{10, 20, 30} {
		s.WriteShard(it, 0, []byte(fmt.Sprintf("state-%d", it)))
		if err := s.Commit(it, 1); err != nil {
			t.Fatal(err)
		}
	}
	it, got, err := s.Restore(25)
	if err != nil {
		t.Fatal(err)
	}
	if it != 20 || string(got[0]) != "state-20" {
		t.Errorf("Restore(25) = %d %q, want 20 state-20", it, got[0])
	}
	it, _, err = s.Restore(1 << 30)
	if err != nil || it != 30 {
		t.Errorf("Restore(max) = %d, want 30", it)
	}
}

func TestUncommittedCheckpointIgnored(t *testing.T) {
	// A flush interrupted by preemption leaves shards without a manifest:
	// restore must skip it (the §4.4 rollback discards in-flight snapshots).
	s := newStore(t)
	s.WriteShard(10, 0, []byte("good"))
	if err := s.Commit(10, 1); err != nil {
		t.Fatal(err)
	}
	s.WriteShard(20, 0, []byte("torn"))
	s.writes.Wait() // shard written, manifest not
	it, got, err := s.Restore(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if it != 10 || string(got[0]) != "good" {
		t.Errorf("restore used uncommitted checkpoint: %d %q", it, got[0])
	}
}

func TestCorruptShardDetected(t *testing.T) {
	s := newStore(t)
	s.WriteShard(10, 0, []byte("aaaa"))
	if err := s.Commit(10, 1); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte on disk.
	path := filepath.Join(s.Dir(), "ckpt-00000010", "shard-000000.bin")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Restore(1 << 30); err == nil {
		t.Fatal("corrupted checkpoint must not restore")
	}
}

func TestCommitRejectsMissingShards(t *testing.T) {
	s := newStore(t)
	s.WriteShard(5, 0, []byte("only-one"))
	if err := s.Commit(5, 2); err == nil {
		t.Fatal("commit must fail when shards are missing")
	}
}

func TestGC(t *testing.T) {
	s := newStore(t)
	for _, it := range []int{1, 2, 3} {
		s.WriteShard(it, 0, []byte("x"))
		if err := s.Commit(it, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.GC(3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Restore(2); err == nil {
		t.Fatal("GC'd checkpoints must be gone")
	}
	if it, _, err := s.Restore(1 << 30); err != nil || it != 3 {
		t.Fatalf("kept checkpoint lost: %d %v", it, err)
	}
}

func TestRestoreEmptyStore(t *testing.T) {
	s := newStore(t)
	if _, _, err := s.Restore(1 << 30); err == nil {
		t.Fatal("empty store must not restore")
	}
}
