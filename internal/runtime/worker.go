package runtime

import (
	"fmt"
	"sync"
)

// WorkerConn is the controller's view of one training process, local or
// remote. Setup/Cleanup/LoadCheckpoint return the virtual seconds the
// operation took on the worker's GPU.
type WorkerConn interface {
	// Setup builds communicator groups and loads the model shard for the
	// given rank in a world of worldSize ranks and groupCount groups.
	Setup(rank, worldSize, groupCount int) (float64, error)
	// Cleanup destroys communicators and frees GPU memory (kill-free).
	Cleanup() (float64, error)
	// LoadCheckpoint restores worker state from the checkpoint at iter.
	LoadCheckpoint(iter int) (float64, error)
	// Ready reports whether the worker holds a model and communicators.
	Ready() bool
	// Alive reports liveness (the controller's heartbeat check).
	Alive() bool
	// Kill simulates preemption: the worker stops answering.
	Kill()
	// Shutdown terminates the worker; safe to call once.
	Shutdown()
}

// cmdKind enumerates controller->worker commands.
type cmdKind int

const (
	cmdSetup   cmdKind = iota // build comm groups, load model shard
	cmdCleanup                // destroy comm groups, free GPU memory
	cmdLoadCheckpoint
	cmdShutdown
)

// command is one control-plane message; workers reply on reply with the
// virtual seconds the operation took on their GPU.
type command struct {
	kind       cmdKind
	rank       int
	worldSize  int
	groupCount int
	iter       int // checkpoint iteration for cmdLoadCheckpoint
	reply      chan ack
}

type ack struct {
	seconds float64
	err     error
}

// Worker is one in-process training worker: a goroutine owning one GPU,
// driven entirely by controller messages, mirroring the paper's workers
// that "handle training" while the controller monitors and reconfigures.
type Worker struct {
	ID    int
	inbox chan command

	mu       sync.Mutex
	groups   int // communicators currently held
	hasModel bool
	alive    bool
}

var _ WorkerConn = (*Worker)(nil)

// NewWorker starts the worker goroutine.
func NewWorker(id int) *Worker {
	w := &Worker{ID: id, inbox: make(chan command, 8), alive: true}
	go w.loop()
	return w
}

// virtual cost constants for worker-side operations, calibrated to the
// §5.5 measurements on 16 V100s (cleanup 3 s, NCCL groups 4.5 s, model
// redefinition 2 s).
const (
	cleanupSec        = 3.0
	groupInitBaseSec  = 2.1
	groupInitPerRank  = 0.15
	modelRedefSec     = 2.0
	dataloaderSec     = 0.5
	checkpointLoadSec = 0.8
)

func (w *Worker) loop() {
	for cmd := range w.inbox {
		switch cmd.kind {
		case cmdSetup:
			w.mu.Lock()
			w.groups = cmd.groupCount
			w.hasModel = true
			w.mu.Unlock()
			// NCCL-like communicator init scales with world size; model
			// and dataloader redefinition are constants (§5.5).
			sec := groupInitBaseSec + groupInitPerRank*float64(cmd.worldSize) +
				modelRedefSec + dataloaderSec
			cmd.reply <- ack{seconds: sec}
		case cmdCleanup:
			w.mu.Lock()
			had := w.groups
			w.groups = 0
			w.hasModel = false
			w.mu.Unlock()
			sec := 0.0
			if had > 0 {
				sec = cleanupSec
			}
			cmd.reply <- ack{seconds: sec}
		case cmdLoadCheckpoint:
			cmd.reply <- ack{seconds: checkpointLoadSec}
		case cmdShutdown:
			w.mu.Lock()
			w.alive = false
			w.mu.Unlock()
			cmd.reply <- ack{}
			return
		}
	}
}

// send issues a command and waits for the ack.
func (w *Worker) send(cmd command) (ack, error) {
	w.mu.Lock()
	alive := w.alive
	w.mu.Unlock()
	if !alive {
		return ack{}, fmt.Errorf("runtime: worker %d is dead", w.ID)
	}
	cmd.reply = make(chan ack, 1)
	w.inbox <- cmd
	a := <-cmd.reply
	return a, a.err
}

// Setup implements WorkerConn.
func (w *Worker) Setup(rank, worldSize, groupCount int) (float64, error) {
	a, err := w.send(command{kind: cmdSetup, rank: rank, worldSize: worldSize, groupCount: groupCount})
	return a.seconds, err
}

// Cleanup implements WorkerConn.
func (w *Worker) Cleanup() (float64, error) {
	a, err := w.send(command{kind: cmdCleanup})
	return a.seconds, err
}

// LoadCheckpoint implements WorkerConn.
func (w *Worker) LoadCheckpoint(iter int) (float64, error) {
	a, err := w.send(command{kind: cmdLoadCheckpoint, iter: iter})
	return a.seconds, err
}

// Ready implements WorkerConn.
func (w *Worker) Ready() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hasModel && w.groups > 0
}

// Kill implements WorkerConn: used when the availability trace reclaims the
// GPUs a plan was using.
func (w *Worker) Kill() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.alive = false
}

// Alive implements WorkerConn.
func (w *Worker) Alive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive
}

// Shutdown implements WorkerConn.
func (w *Worker) Shutdown() {
	w.mu.Lock()
	alive := w.alive
	w.mu.Unlock()
	if !alive {
		close(w.inbox)
		return
	}
	reply := make(chan ack, 1)
	w.inbox <- command{kind: cmdShutdown, reply: reply}
	<-reply
	close(w.inbox)
}
