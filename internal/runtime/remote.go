package runtime

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/rpc"
)

// The networked control plane: a worker process serves its WorkerConn over
// TCP (ServeWorker) and the controller drives it through a RemoteWorker,
// mirroring the paper's gRPC-based controller/worker split (§4.4, §5.5).

// Wire types for the worker control protocol.
type setupReq struct {
	Rank       int `json:"rank"`
	WorldSize  int `json:"world_size"`
	GroupCount int `json:"group_count"`
}

type loadReq struct {
	Iter int `json:"iter"`
}

type opResp struct {
	Seconds float64 `json:"seconds"`
}

// ServeWorker exposes a local worker on a listener and returns the running
// server. The caller owns both and shuts the server down first.
func ServeWorker(lis net.Listener, w *Worker) *rpc.Server {
	srv := rpc.NewServer(lis)
	srv.Handle("worker.setup", func(_ context.Context, body json.RawMessage) (any, error) {
		var req setupReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		sec, err := w.Setup(req.Rank, req.WorldSize, req.GroupCount)
		if err != nil {
			return nil, err
		}
		return opResp{Seconds: sec}, nil
	})
	srv.Handle("worker.cleanup", func(context.Context, json.RawMessage) (any, error) {
		sec, err := w.Cleanup()
		if err != nil {
			return nil, err
		}
		return opResp{Seconds: sec}, nil
	})
	srv.Handle("worker.load", func(_ context.Context, body json.RawMessage) (any, error) {
		var req loadReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		sec, err := w.LoadCheckpoint(req.Iter)
		if err != nil {
			return nil, err
		}
		return opResp{Seconds: sec}, nil
	})
	srv.Handle("worker.ping", func(context.Context, json.RawMessage) (any, error) {
		if !w.Alive() {
			return nil, fmt.Errorf("runtime: worker dead")
		}
		return opResp{}, nil
	})
	go srv.Serve()
	return srv
}

// RemoteWorker is the controller-side proxy for a worker served elsewhere.
type RemoteWorker struct {
	id     int
	client *rpc.Client

	mu     sync.Mutex
	killed bool
	ready  bool
}

var _ WorkerConn = (*RemoteWorker)(nil)

// DialWorker connects to a worker's control endpoint.
func DialWorker(id int, addr string) (*RemoteWorker, error) {
	c, err := rpc.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("runtime: dial worker %d: %w", id, err)
	}
	return &RemoteWorker{id: id, client: c}, nil
}

func (r *RemoteWorker) call(method string, req any) (float64, error) {
	r.mu.Lock()
	killed := r.killed
	r.mu.Unlock()
	if killed {
		return 0, fmt.Errorf("runtime: worker %d is dead", r.id)
	}
	var resp opResp
	if err := r.client.Call(method, req, &resp); err != nil {
		return 0, err
	}
	return resp.Seconds, nil
}

// Setup implements WorkerConn.
func (r *RemoteWorker) Setup(rank, worldSize, groupCount int) (float64, error) {
	sec, err := r.call("worker.setup", setupReq{Rank: rank, WorldSize: worldSize, GroupCount: groupCount})
	if err == nil {
		r.mu.Lock()
		r.ready = true
		r.mu.Unlock()
	}
	return sec, err
}

// Cleanup implements WorkerConn.
func (r *RemoteWorker) Cleanup() (float64, error) {
	sec, err := r.call("worker.cleanup", struct{}{})
	if err == nil {
		r.mu.Lock()
		r.ready = false
		r.mu.Unlock()
	}
	return sec, err
}

// LoadCheckpoint implements WorkerConn.
func (r *RemoteWorker) LoadCheckpoint(iter int) (float64, error) {
	return r.call("worker.load", loadReq{Iter: iter})
}

// Ready implements WorkerConn (controller-side view).
func (r *RemoteWorker) Ready() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ready && !r.killed
}

// Alive implements WorkerConn: a real heartbeat over the control plane.
func (r *RemoteWorker) Alive() bool {
	r.mu.Lock()
	if r.killed {
		r.mu.Unlock()
		return false
	}
	r.mu.Unlock()
	_, err := r.call("worker.ping", struct{}{})
	return err == nil
}

// Kill implements WorkerConn: the controller marks the peer preempted and
// stops talking to it (the process itself is gone in a real preemption).
func (r *RemoteWorker) Kill() {
	r.mu.Lock()
	r.killed = true
	r.mu.Unlock()
}

// Shutdown implements WorkerConn: closes the control connection.
func (r *RemoteWorker) Shutdown() {
	r.Kill()
	r.client.Close()
}
