package runtime

import (
	"sync"
)

// CheckpointManager implements the asynchronous checkpointing of §4.4
// ([39, 57]-style): a snapshot of iteration N is taken without blocking
// training; it becomes the rollback point only once the (simulated) flush
// finishes. Reconfiguration restarts from the latest *completed* checkpoint,
// so the rollback cost is the iterations trained past it.
type CheckpointManager struct {
	mu sync.Mutex
	// Every stores the checkpoint interval in iterations.
	Every int
	// FlushTime is the virtual seconds a snapshot takes to persist.
	FlushTime float64

	lastCompleted int     // iteration of the newest durable checkpoint
	pendingIter   int     // iteration of the in-flight snapshot, -1 if none
	pendingDone   float64 // virtual time when the in-flight snapshot lands
}

// NewCheckpointManager returns a manager checkpointing every `every`
// iterations with the given flush latency.
func NewCheckpointManager(every int, flushTime float64) *CheckpointManager {
	return &CheckpointManager{Every: every, FlushTime: flushTime, lastCompleted: 0, pendingIter: -1}
}

// OnIteration notifies the manager that training finished iteration `iter`
// at virtual time `now`; it may start an async snapshot. Completed pending
// snapshots are promoted first.
func (c *CheckpointManager) OnIteration(iter int, now float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.promote(now)
	if c.Every <= 0 || iter%c.Every != 0 {
		return
	}
	if c.pendingIter >= 0 {
		return // previous snapshot still flushing; skip (async semantics)
	}
	c.pendingIter = iter
	c.pendingDone = now + c.FlushTime
}

// promote moves a finished pending snapshot to completed. Callers hold mu.
func (c *CheckpointManager) promote(now float64) {
	if c.pendingIter >= 0 && now >= c.pendingDone {
		c.lastCompleted = c.pendingIter
		c.pendingIter = -1
	}
}

// Rollback returns the iteration training must resume from at virtual time
// `now` (the latest durable checkpoint), discarding any still-flushing
// snapshot — it is lost when workers are reconfigured.
func (c *CheckpointManager) Rollback(now float64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.promote(now)
	c.pendingIter = -1
	return c.lastCompleted
}

// LastCompleted returns the newest durable checkpoint iteration.
func (c *CheckpointManager) LastCompleted(now float64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.promote(now)
	return c.lastCompleted
}
