package runtime

import (
	"net"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/rpc"
)

// spawnTCPWorker serves a fresh worker over loopback TCP and returns a
// connected proxy.
func spawnTCPWorker(t *testing.T, id int) (*RemoteWorker, *Worker, *rpc.Server) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(id)
	srv := ServeWorker(lis, w)
	proxy, err := DialWorker(id, lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		proxy.Shutdown()
		srv.Close()
		w.Shutdown()
	})
	return proxy, w, srv
}

func TestRemoteWorkerLifecycle(t *testing.T) {
	proxy, local, _ := spawnTCPWorker(t, 0)
	sec, err := proxy.Setup(0, 16, 24)
	if err != nil || sec <= 0 {
		t.Fatalf("remote setup: %v %v", sec, err)
	}
	if !local.Ready() {
		t.Fatal("the real worker behind the proxy must be set up")
	}
	if !proxy.Alive() {
		t.Fatal("heartbeat should succeed")
	}
	if _, err := proxy.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if local.Ready() {
		t.Fatal("cleanup must reach the real worker")
	}
}

func TestRemoteWorkerHeartbeatDetectsDeath(t *testing.T) {
	proxy, local, _ := spawnTCPWorker(t, 0)
	if !proxy.Alive() {
		t.Fatal("worker should start alive")
	}
	local.Kill() // the remote process is preempted
	if proxy.Alive() {
		t.Fatal("heartbeat must detect the dead worker")
	}
}

func TestRemoteWorkerKilledProxyRefuses(t *testing.T) {
	proxy, _, _ := spawnTCPWorker(t, 0)
	proxy.Kill()
	if _, err := proxy.Setup(0, 4, 4); err == nil {
		t.Fatal("killed proxy must refuse commands")
	}
	if proxy.Alive() {
		t.Fatal("killed proxy is not alive")
	}
}

// TestControllerOverTCP runs the full controller against workers served
// over real TCP connections — the networked equivalent of §5.5.
func TestControllerOverTCP(t *testing.T) {
	cfg := model.OPT350M()
	c := newController(t, cfg, core.V100)
	var servers []*rpc.Server
	var locals []*Worker
	c.Cfg.SpawnWorker = func(id int) WorkerConn {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		w := NewWorker(id)
		srv := ServeWorker(lis, w)
		servers = append(servers, srv)
		locals = append(locals, w)
		proxy, err := DialWorker(id, lis.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		return proxy
	}
	defer func() {
		c.Shutdown()
		for _, s := range servers {
			s.Close()
		}
		for _, w := range locals {
			w.Shutdown()
		}
	}()

	timings, err := c.Deploy(cluster.NewPool().Set(zoneA, core.V100, 8))
	if err != nil {
		t.Fatal(err)
	}
	if timings.GroupInit <= 0 {
		t.Error("group init phase missing over TCP")
	}
	if n, err := c.TrainFor(600); err != nil || n <= 0 {
		t.Fatalf("training over TCP workers: n=%d err=%v", n, err)
	}
	// Grow the pool: reconfiguration crosses the wire too.
	if _, err := c.Deploy(cluster.NewPool().Set(zoneA, core.V100, 12)); err != nil {
		t.Fatal(err)
	}
	plan, err := c.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.GPUCount() > 12 {
		t.Errorf("plan uses %d GPUs, only 12 available", plan.GPUCount())
	}
}
