package runtime

// Golden determinism tests for the elastic path: replaying any registered
// scenario must produce the identical Report — iterations, reconfiguration
// count, plans deployed, rollback losses, checkpoints, and warm-cache
// utilisation — across runs, across processes (the golden files), and
// across planner worker counts. Regenerate the goldens with
//
//	go test ./internal/runtime -run TestRunElasticGolden -update
//
// after an intentional planner or controller behaviour change.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden elastic summaries")

// goldenSeed fixes every scenario's trace; the paper's Figure-2 trace uses
// the same seed in its own regression test.
const goldenSeed = 42

func scenarioController(t *testing.T, sc trace.Scenario, workers int) *Controller {
	t.Helper()
	cfg := model.OPT350M()
	prof, err := profiler.Collect(cfg, sc.GPUs, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pl := planner.New(cfg, sim.New(cfg, prof), planner.Options{
		Objective:  core.MaxThroughput,
		Heuristics: planner.AllHeuristics(),
		Workers:    workers,
	})
	return NewController(ControllerConfig{
		Planner: pl, GT: groundtruth.New(cfg),
		CheckpointEvery: 5, CheckpointFlushSec: 2,
	})
}

// elasticSummary renders the deterministic portion of a Report: wall-clock
// planning times are excluded, everything else — including the warm-cache
// hit trajectory — must reproduce exactly.
func elasticSummary(rep Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "iterations=%d\n", rep.IterationsDone)
	fmt.Fprintf(&b, "reconfigs=%d\n", len(rep.Reconfigs))
	fmt.Fprintf(&b, "lost-iterations=%d\n", rep.LostIterations)
	fmt.Fprintf(&b, "checkpoints=%d\n", rep.CheckpointsTaken)
	fmt.Fprintf(&b, "plan-cache-hits=%d\n", rep.PlanCacheHits)
	fmt.Fprintf(&b, "virtual-hours=%.1f\n", rep.VirtualSeconds/3600)
	for i, p := range rep.PlansUsed {
		hits, explored := 0, 0
		if i < len(rep.Reconfigs) {
			hits = rep.Reconfigs[i].PlanCacheHits
			explored = rep.Reconfigs[i].PlanExplored
		}
		fmt.Fprintf(&b, "plan[%d] gpus=%d hits=%d explored=%d %s\n",
			i, p.GPUCount(), hits, explored, p)
	}
	return b.String()
}

func TestRunElasticGolden(t *testing.T) {
	for _, sc := range trace.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			tr := sc.Trace(goldenSeed)
			var summaries []string
			for _, workers := range []int{1, 8} {
				c := scenarioController(t, sc, workers)
				rep, err := c.RunElastic(tr, time.Minute)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if rep.IterationsDone <= 0 {
					t.Fatalf("workers=%d: no training happened", workers)
				}
				summaries = append(summaries, elasticSummary(rep))
			}
			if summaries[0] != summaries[1] {
				t.Fatalf("elastic run diverges between Workers=1 and Workers=8:\n--- w1 ---\n%s--- w8 ---\n%s",
					summaries[0], summaries[1])
			}
			path := filepath.Join("testdata", sc.Name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(summaries[0]), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if string(want) != summaries[0] {
				t.Errorf("summary drifted from golden %s:\n--- got ---\n%s--- want ---\n%s",
					path, summaries[0], want)
			}
		})
	}
}

// TestRunElasticWarmCacheWorks pins the tentpole's runtime effect: on a
// churny scenario the controller's replans serve DP subtrees from the warm
// cache, and later replans explore less than the cold initial deploy on
// comparable pools.
func TestRunElasticWarmCacheWorks(t *testing.T) {
	sc, ok := trace.ScenarioByName("preemption-storm")
	if !ok {
		t.Fatal("preemption-storm not registered")
	}
	c := scenarioController(t, sc, 0)
	rep, err := c.RunElastic(sc.Trace(goldenSeed), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reconfigs) < 4 {
		t.Fatalf("storm triggered only %d reconfigs", len(rep.Reconfigs))
	}
	if rep.PlanCacheHits == 0 {
		t.Error("no replan ever hit the warm cache across a preemption storm")
	}
	if rep.Reconfigs[0].PlanCacheHits != 0 {
		t.Error("initial deploy cannot have warm hits")
	}
	// The storm oscillates between repeated pool levels; at least one
	// later replan on the same level must explore strictly less than the
	// first one did.
	warmer := false
	for i := 1; i < len(rep.Reconfigs); i++ {
		if rep.Reconfigs[i].PlanCacheHits > 0 &&
			rep.Reconfigs[i].PlanExplored < rep.Reconfigs[0].PlanExplored {
			warmer = true
			break
		}
	}
	if !warmer {
		t.Error("warm replans never reduced exploration below the cold deploy")
	}
}

// TestLostIterationsAccounting: Report.LostIterations equals the sum of the
// per-reconfig rollback counts — the two views of the same loss.
func TestLostIterationsAccounting(t *testing.T) {
	sc, _ := trace.ScenarioByName("zone-outage")
	c := scenarioController(t, sc, 0)
	rep, err := c.RunElastic(sc.Trace(goldenSeed), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, r := range rep.Reconfigs {
		sum += r.RolledBackIters
	}
	if rep.LostIterations != sum {
		t.Errorf("LostIterations=%d but per-reconfig rollbacks sum to %d",
			rep.LostIterations, sum)
	}
	if rep.PlanningSeconds <= 0 {
		t.Error("PlanningSeconds not accumulated")
	}
}
