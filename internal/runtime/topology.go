// Package runtime implements the Sailor distributed training framework
// (§4.4): a controller/worker architecture that deploys the planner's —
// possibly heterogeneous — parallelization plans, builds the communication
// groups they need, and reconfigures the job kill-free when resource
// availability changes, restarting from the latest asynchronous checkpoint.
//
// Workers are goroutines exchanging messages with the controller over
// channels (the in-process stand-in for the paper's gRPC control plane);
// training compute itself advances on a virtual clock fed by the
// ground-truth engine, so a multi-hour elasticity scenario replays in
// milliseconds while the orchestration logic — topology construction,
// group setup/teardown, checkpoint rollback — is executed for real.
package runtime

import (
	"fmt"

	"repro/internal/core"
)

// Topology assigns a global rank to every GPU of a plan and exposes the
// communication groups training needs. It supports the heterogeneous plans
// of §4.4: different tensor-parallel degrees per stage and per replica,
// which make pipeline peers split or replicate activations.
type Topology struct {
	Plan core.Plan
	// Ranks[stage][replica] lists the global ranks of that replica's TP
	// group, in shard order.
	Ranks [][][]int
	// WorldSize is the total number of ranks.
	WorldSize int
}

// BuildTopology enumerates ranks stage-major, replica-minor, shard-last —
// the rank topology the framework "takes as input for each stage" (§4.4).
func BuildTopology(plan core.Plan) (*Topology, error) {
	if len(plan.Stages) == 0 {
		return nil, fmt.Errorf("runtime: empty plan")
	}
	t := &Topology{Plan: plan}
	next := 0
	for _, st := range plan.Stages {
		stageRanks := make([][]int, len(st.Replicas))
		for k, r := range st.Replicas {
			g := make([]int, r.TP)
			for s := range g {
				g[s] = next
				next++
			}
			stageRanks[k] = g
		}
		t.Ranks = append(t.Ranks, stageRanks)
	}
	t.WorldSize = next
	return t, nil
}

// TPGroups returns every tensor-parallel group (one per stage replica).
func (t *Topology) TPGroups() [][]int {
	var out [][]int
	for _, st := range t.Ranks {
		for _, g := range st {
			if len(g) > 1 {
				out = append(out, g)
			}
		}
	}
	return out
}

// DPGroups returns the data-parallel gradient-sync groups: for each stage,
// ranks holding corresponding shards across replicas. With heterogeneous TP
// degrees the shard counts differ; ranks of coarser replicas join multiple
// groups (the split/replicate adjustment of §4.4). Group g of a stage
// contains, from each replica, the rank owning the shard that covers slice
// g of the finest sharding.
func (t *Topology) DPGroups() [][]int {
	var out [][]int
	for _, st := range t.Ranks {
		maxTP := 0
		for _, g := range st {
			if len(g) > maxTP {
				maxTP = len(g)
			}
		}
		for shard := 0; shard < maxTP; shard++ {
			var grp []int
			for _, g := range st {
				// Replica with len(g) shards: shard index scaled down.
				local := shard * len(g) / maxTP
				grp = append(grp, g[local])
			}
			if len(grp) > 1 {
				out = append(out, grp)
			}
		}
	}
	return out
}

// PPEdge describes one point-to-point pipeline link: src sends its
// activation shard to dst. When the sender is sharded finer than the
// receiver, several sources feed one destination (the receiver gathers);
// when coarser, one source feeds several destinations (the sender splits or
// replicates).
type PPEdge struct {
	Src, Dst int
}

// PPEdges returns the pipeline edges between consecutive stages for each
// data-parallel pipeline, with the split/replicate fan-out implied by
// differing TP degrees.
func (t *Topology) PPEdges() []PPEdge {
	var out []PPEdge
	for i := 0; i+1 < len(t.Ranks); i++ {
		for k := range t.Ranks[i] {
			if k >= len(t.Ranks[i+1]) {
				continue
			}
			src := t.Ranks[i][k]
			dst := t.Ranks[i+1][k]
			if len(src) >= len(dst) {
				// Fan-in: each destination shard gathers from the source
				// shards covering it.
				per := len(src) / len(dst)
				for d := 0; d < len(dst); d++ {
					for s := d * per; s < (d+1)*per; s++ {
						out = append(out, PPEdge{src[s], dst[d]})
					}
				}
			} else {
				// Fan-out: each source shard feeds the destinations
				// covering it (split/replicate).
				per := len(dst) / len(src)
				for s := 0; s < len(src); s++ {
					for d := s * per; d < (s+1)*per; d++ {
						out = append(out, PPEdge{src[s], dst[d]})
					}
				}
			}
		}
	}
	return out
}

// GroupCount returns how many NCCL-like communicators a setup must create;
// reconfiguration cost scales with it.
func (t *Topology) GroupCount() int {
	return len(t.TPGroups()) + len(t.DPGroups()) + len(t.PPEdges())
}

// RankInfo locates a rank in the plan.
type RankInfo struct {
	Stage, Replica, Shard int
	GPU                   core.GPUType
	Zone                  core.Zone
}

// Locate returns the placement of a global rank.
func (t *Topology) Locate(rank int) (RankInfo, error) {
	for si, st := range t.Ranks {
		for k, g := range st {
			for s, r := range g {
				if r == rank {
					rep := t.Plan.Stages[si].Replicas[k]
					return RankInfo{Stage: si, Replica: k, Shard: s, GPU: rep.GPU, Zone: rep.Zone}, nil
				}
			}
		}
	}
	return RankInfo{}, fmt.Errorf("runtime: rank %d not in topology", rank)
}
