package pipeline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOneFOneBStructure(t *testing.T) {
	const p, nb = 4, 8
	sched, err := OneFOneB(p, nb)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != p {
		t.Fatalf("stages = %d, want %d", len(sched), p)
	}
	for s, ops := range sched {
		if len(ops) != 2*nb {
			t.Fatalf("stage %d has %d ops, want %d", s, len(ops), 2*nb)
		}
		fwdSeen, bwdSeen := 0, 0
		inflight, maxInflight := 0, 0
		for _, op := range ops {
			if op.Kind == Fwd {
				if op.MB != fwdSeen {
					t.Fatalf("stage %d: forward order broken at mb %d", s, op.MB)
				}
				fwdSeen++
				inflight++
			} else {
				if op.MB != bwdSeen {
					t.Fatalf("stage %d: backward order broken at mb %d", s, op.MB)
				}
				bwdSeen++
				inflight--
			}
			if inflight > maxInflight {
				maxInflight = inflight
			}
		}
		if fwdSeen != nb || bwdSeen != nb {
			t.Fatalf("stage %d executed %dF/%dB, want %d each", s, fwdSeen, bwdSeen, nb)
		}
		// The 1F1B memory bound: at most min(p-s, nb) microbatches live.
		want := p - s
		if want > nb {
			want = nb
		}
		if maxInflight != want {
			t.Errorf("stage %d in-flight = %d, want %d", s, maxInflight, want)
		}
	}
}

func TestOneFOneBErrors(t *testing.T) {
	if _, err := OneFOneB(0, 4); err == nil {
		t.Error("want error for p=0")
	}
	if _, err := OneFOneB(4, 0); err == nil {
		t.Error("want error for nb=0")
	}
}

func uniform(p int, f, b float64) ([]float64, []float64, []float64) {
	fw := make([]float64, p)
	bw := make([]float64, p)
	cm := make([]float64, p-1)
	for i := range fw {
		fw[i], bw[i] = f, b
	}
	return fw, bw, cm
}

func TestAnalyticTimeHomogeneous(t *testing.T) {
	// No comm: T = (nb-1)*(f+b) + p*(f+b).
	fw, bw, cm := uniform(4, 1, 2)
	got, err := AnalyticTime(fw, bw, cm, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 7.0*3 + 4*3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AnalyticTime = %v, want %v", got, want)
	}
}

func TestAnalyticTimeStragglerDominates(t *testing.T) {
	fw, bw, cm := uniform(4, 1, 2)
	fw[2] = 5 // stage 2 is 5x slower
	slow, _ := AnalyticTime(fw, bw, cm, 32, 0)
	fwU, bwU, _ := uniform(4, 1, 2)
	fast, _ := AnalyticTime(fwU, bwU, cm, 32, 0)
	if slow <= fast {
		t.Fatal("straggler must slow the pipeline")
	}
	// Steady state should track the straggler: ~(nb-1)*(5+2).
	if slow < 31*7 {
		t.Errorf("straggler steady phase underestimated: %v < %v", slow, 31*7.0)
	}
}

func TestAnalyticTimeOverlapReducesCommCost(t *testing.T) {
	fw, bw, _ := uniform(2, 1, 2)
	cm := []float64{0.5}
	blocking, _ := AnalyticTime(fw, bw, cm, 16, 0)
	overlapped, _ := AnalyticTime(fw, bw, cm, 16, 1)
	if overlapped >= blocking {
		t.Errorf("full overlap %v should beat blocking %v", overlapped, blocking)
	}
}

func TestAnalyticTimeErrors(t *testing.T) {
	if _, err := AnalyticTime(nil, nil, nil, 4, 0); err == nil {
		t.Error("want error for empty inputs")
	}
	fw, bw, cm := uniform(4, 1, 2)
	if _, err := AnalyticTime(fw, bw, cm, 0, 0); err == nil {
		t.Error("want error for nb=0")
	}
	if _, err := AnalyticTime(fw, bw, cm, 4, 1.5); err == nil {
		t.Error("want error for overlap out of range")
	}
	if _, err := AnalyticTime(fw, bw[:2], cm, 4, 0); err == nil {
		t.Error("want error for mismatched lengths")
	}
}

func constCost(v float64) func(int, int) float64 {
	return func(int, int) float64 { return v }
}

func TestMakespanSingleStage(t *testing.T) {
	sched, _ := OneFOneB(1, 4)
	got, err := Makespan(sched, constCost(1), constCost(2), func(int) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-12) > 1e-9 { // 4*(1+2)
		t.Errorf("Makespan = %v, want 12", got)
	}
}

func TestMakespanMatchesAnalyticOnUniformPipeline(t *testing.T) {
	// For a homogeneous pipeline with zero comm, the closed form and the
	// exact DAG evaluation must agree closely — this is the calibration
	// that keeps the Sailor simulator within a few percent of ground truth.
	const p, nb = 4, 16
	sched, _ := OneFOneB(p, nb)
	exact, err := Makespan(sched, constCost(1), constCost(2), func(int) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	fw, bw, cm := uniform(p, 1, 2)
	analytic, _ := AnalyticTime(fw, bw, cm, nb, 0)
	rel := math.Abs(exact-analytic) / exact
	if rel > 0.05 {
		t.Errorf("analytic %v vs exact %v: %.1f%% apart", analytic, exact, 100*rel)
	}
}

func TestMakespanCommDelaysPipeline(t *testing.T) {
	sched, _ := OneFOneB(3, 8)
	noComm, _ := Makespan(sched, constCost(1), constCost(2), func(int) float64 { return 0 })
	withComm, _ := Makespan(sched, constCost(1), constCost(2), func(int) float64 { return 0.5 })
	if withComm <= noComm {
		t.Error("boundary transfers must extend the makespan")
	}
}

func TestMakespanHeterogeneousStages(t *testing.T) {
	// Stage 1 is 3x slower; makespan must be dominated by it.
	sched, _ := OneFOneB(2, 16)
	fwd := func(s, _ int) float64 {
		if s == 1 {
			return 3
		}
		return 1
	}
	got, err := Makespan(sched, fwd, constCost(2), func(int) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if got < 16*5 { // slow stage does 16 * (3+2)
		t.Errorf("Makespan %v below the straggler's own work %v", got, 16*5.0)
	}
}

func TestMakespanEmpty(t *testing.T) {
	if _, err := Makespan(nil, nil, nil, nil); err == nil {
		t.Error("want error for empty schedule")
	}
}

func TestBubbleFraction(t *testing.T) {
	if BubbleFraction(1, 8) != 0 {
		t.Error("single stage has no bubble")
	}
	got := BubbleFraction(4, 12)
	want := 3.0 / 15.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("BubbleFraction = %v, want %v", got, want)
	}
}

// Property: makespan is monotone — adding more microbatches never shortens
// the iteration, and deeper pipelines never beat the ideal lower bound
// nb * (f + b) of a single stage's own work.
func TestMakespanLowerBoundProperty(t *testing.T) {
	f := func(pp, nn uint8) bool {
		p := int(pp%6) + 1
		nb := int(nn%12) + 1
		sched, err := OneFOneB(p, nb)
		if err != nil {
			return false
		}
		got, err := Makespan(sched, constCost(1), constCost(2), func(int) float64 { return 0 })
		if err != nil {
			return false
		}
		return got >= float64(nb)*3-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
