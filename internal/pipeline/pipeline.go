// Package pipeline implements the 1F1B (one-forward-one-backward) pipeline
// schedule the paper's simulator assumes (§4.3): explicit per-stage op
// sequences for execution engines, an analytical iteration-time formula
// for the simulator (warm-up, straggler-dominated steady phase, cool-down),
// and an exact makespan evaluator over the op dependency graph, which the
// ground-truth engine uses.
package pipeline

import (
	"fmt"
	"sync"
)

// OpKind distinguishes forward from backward microbatch passes.
type OpKind int

const (
	// Fwd is a forward pass of one microbatch through one stage.
	Fwd OpKind = iota
	// Bwd is the corresponding backward pass.
	Bwd
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if k == Fwd {
		return "F"
	}
	return "B"
}

// Op is one unit of work in a stage's schedule.
type Op struct {
	Kind OpKind
	MB   int // microbatch index, 0-based
}

// OneFOneB builds the 1F1B schedule for a pipeline of depth p processing nb
// microbatches: stage i runs min(p-1-i, nb) warm-up forwards, then
// alternates forward/backward, then drains remaining backwards.
func OneFOneB(p, nb int) ([][]Op, error) {
	if p <= 0 || nb <= 0 {
		return nil, fmt.Errorf("pipeline: invalid schedule p=%d nb=%d", p, nb)
	}
	sched := make([][]Op, p)
	for i := 0; i < p; i++ {
		warmup := p - 1 - i
		if warmup > nb {
			warmup = nb
		}
		ops := make([]Op, 0, 2*nb)
		for m := 0; m < warmup; m++ {
			ops = append(ops, Op{Fwd, m})
		}
		steady := nb - warmup
		for j := 0; j < steady; j++ {
			ops = append(ops, Op{Fwd, warmup + j})
			ops = append(ops, Op{Bwd, j})
		}
		for m := steady; m < nb; m++ {
			ops = append(ops, Op{Bwd, m})
		}
		sched[i] = ops
	}
	return sched, nil
}

// --- schedule cache ---------------------------------------------------------

// schedCacheMax bounds the shared schedule cache; (p, nb) pairs beyond it
// are built fresh (the working set of any search is far smaller).
const schedCacheMax = 4096

var (
	schedMu    sync.RWMutex
	schedCache = map[[2]int][][]Op{}
)

// Cached1F1B returns the 1F1B schedule for (p, nb) from a process-wide
// cache. Schedules are immutable after construction, so sharing them across
// goroutines and simulators is safe; the simulator's hot loop evaluates the
// same handful of shapes millions of times per search.
func Cached1F1B(p, nb int) ([][]Op, error) {
	k := [2]int{p, nb}
	schedMu.RLock()
	s, ok := schedCache[k]
	schedMu.RUnlock()
	if ok {
		return s, nil
	}
	s, err := OneFOneB(p, nb)
	if err != nil {
		return nil, err
	}
	schedMu.Lock()
	if len(schedCache) < schedCacheMax {
		schedCache[k] = s
	}
	schedMu.Unlock()
	return s, nil
}

// AnalyticTime is the closed-form 1F1B iteration-time estimate used by the
// Sailor simulator: the steady phase is dominated by the straggler stage,
// warm-up and cool-down contribute one forward+backward per stage, and each
// stage boundary pays activation and gradient transfers once per direction.
//
//	T = (nb-1) * max_i(f_i + b_i + 2*c_i-overlap) + Σ_i (f_i + b_i) + 2 Σ c_i
//
// where c_i is the per-microbatch transfer between stages i and i+1 and
// overlap is the fraction hidden behind compute. fwd, bwd have length p;
// comm has length p-1.
func AnalyticTime(fwd, bwd, comm []float64, nb int, overlap float64) (float64, error) {
	p := len(fwd)
	if p == 0 || len(bwd) != p || len(comm) != p-1 || nb <= 0 {
		return 0, fmt.Errorf("pipeline: inconsistent inputs p=%d bwd=%d comm=%d nb=%d",
			p, len(bwd), len(comm), nb)
	}
	if overlap < 0 || overlap > 1 {
		return 0, fmt.Errorf("pipeline: overlap %v outside [0,1]", overlap)
	}
	exposed := 1 - overlap
	straggler := 0.0
	for i := 0; i < p; i++ {
		t := fwd[i] + bwd[i]
		// Per-microbatch steady-state exposure of the adjacent links.
		if i < p-1 {
			t += 2 * comm[i] * exposed
		}
		if t > straggler {
			straggler = t
		}
	}
	total := float64(nb-1) * straggler
	for i := 0; i < p; i++ {
		total += fwd[i] + bwd[i]
	}
	for _, c := range comm {
		total += 2 * c
	}
	return total, nil
}

// Makespan evaluates the exact completion time of a 1F1B schedule over its
// dependency DAG: an op waits for its predecessor on the same stage, and for
// its cross-stage data dependency (forward activations flow down the
// pipeline, gradients flow back up), each paying the boundary transfer.
// Cost callbacks may vary per (stage, microbatch), which is how the
// ground-truth engine injects jitter and heterogeneity.
func Makespan(sched [][]Op,
	fwd func(stage, mb int) float64,
	bwd func(stage, mb int) float64,
	comm func(boundary int) float64) (float64, error) {

	p := len(sched)
	if p == 0 {
		return 0, fmt.Errorf("pipeline: empty schedule")
	}
	finish := make(map[opKey]float64, p*len(sched[0]))
	next := make([]int, p)      // index of next unexecuted op per stage
	avail := make([]float64, p) // stage busy-until time

	remaining := 0
	for _, ops := range sched {
		remaining += len(ops)
	}
	end := 0.0
	for remaining > 0 {
		progressed := false
		for s := 0; s < p; s++ {
			for next[s] < len(sched[s]) {
				op := sched[s][next[s]]
				depReady, ok := depTime(finish, s, op, p, comm)
				if !ok {
					break // dependency not finished yet; try other stages
				}
				start := avail[s]
				if depReady > start {
					start = depReady
				}
				var dur float64
				if op.Kind == Fwd {
					dur = fwd(s, op.MB)
				} else {
					dur = bwd(s, op.MB)
				}
				f := start + dur
				finish[opKey{s, op}] = f
				avail[s] = f
				if f > end {
					end = f
				}
				next[s]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return 0, fmt.Errorf("pipeline: schedule deadlocked with %d ops left", remaining)
		}
	}
	return end, nil
}

// opKey identifies one executed op for dependency lookups.
type opKey struct {
	stage int
	op    Op
}

// Scratch is reusable working storage for MakespanStageCosts. The zero
// value is ready to use; one Scratch serves any schedule shape, growing to
// the largest seen. Not safe for concurrent use — callers pool them.
type Scratch struct {
	finish []float64
	next   []int
	avail  []float64
}

// grow sizes the scratch for p stages with stride slots per stage and
// resets it.
func (sc *Scratch) grow(p, stride int) {
	n := p * stride
	if cap(sc.finish) < n {
		sc.finish = make([]float64, n)
	}
	sc.finish = sc.finish[:n]
	for i := range sc.finish {
		sc.finish[i] = -1
	}
	if cap(sc.next) < p {
		sc.next = make([]int, p)
		sc.avail = make([]float64, p)
	}
	sc.next = sc.next[:p]
	sc.avail = sc.avail[:p]
	for i := 0; i < p; i++ {
		sc.next[i] = 0
		sc.avail[i] = 0
	}
}

// MakespanStageCosts evaluates the same dependency DAG as Makespan for the
// common case of stage-constant costs (fwd/bwd per stage, comm per
// boundary), executing ops in the identical order so the floating-point
// result is bit-for-bit equal — but with flat index arithmetic in caller
// scratch instead of a map and closures, which removes the simulator's
// dominant allocation source.
func MakespanStageCosts(sched [][]Op, fwd, bwd, comm []float64, sc *Scratch) (float64, error) {
	p := len(sched)
	if p == 0 {
		return 0, fmt.Errorf("pipeline: empty schedule")
	}
	maxMB := 0
	remaining := 0
	for _, ops := range sched {
		remaining += len(ops)
		for _, op := range ops {
			if op.MB > maxMB {
				maxMB = op.MB
			}
		}
	}
	stride := 2 * (maxMB + 1)
	sc.grow(p, stride)
	slot := func(stage int, op Op) int { return stage*stride + 2*op.MB + int(op.Kind) }

	end := 0.0
	for remaining > 0 {
		progressed := false
		for s := 0; s < p; s++ {
			for sc.next[s] < len(sched[s]) {
				op := sched[s][sc.next[s]]
				// Cross-stage dependency, mirroring depTime.
				depReady := 0.0
				if op.Kind == Fwd {
					if s > 0 {
						f := sc.finish[slot(s-1, Op{Fwd, op.MB})]
						if f < 0 {
							break
						}
						depReady = f + comm[s-1]
					}
				} else if s < p-1 {
					f := sc.finish[slot(s+1, Op{Bwd, op.MB})]
					if f < 0 {
						break
					}
					depReady = f + comm[s]
				}
				start := sc.avail[s]
				if depReady > start {
					start = depReady
				}
				var dur float64
				if op.Kind == Fwd {
					dur = fwd[s]
				} else {
					dur = bwd[s]
				}
				f := start + dur
				sc.finish[slot(s, op)] = f
				sc.avail[s] = f
				if f > end {
					end = f
				}
				sc.next[s]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return 0, fmt.Errorf("pipeline: schedule deadlocked with %d ops left", remaining)
		}
	}
	return end, nil
}

// depTime returns when op's cross-stage dependency data arrives, or ok=false
// if the dependency has not executed yet.
func depTime(finish map[opKey]float64, stage int, op Op, p int, comm func(int) float64) (float64, bool) {
	if op.Kind == Fwd {
		if stage == 0 {
			return 0, true
		}
		f, ok := finish[opKey{stage - 1, Op{Fwd, op.MB}}]
		if !ok {
			return 0, false
		}
		return f + comm(stage-1), true
	}
	if stage == p-1 {
		// Backward at the last stage only needs its own forward, which
		// same-stage ordering already guarantees.
		return 0, true
	}
	f, ok := finish[opKey{stage + 1, Op{Bwd, op.MB}}]
	if !ok {
		return 0, false
	}
	return f + comm(stage), true
}

// BubbleFraction returns the idle fraction of an ideal homogeneous pipeline:
// (p-1)/(nb+p-1), the classic 1F1B bubble bound, for sanity checks.
func BubbleFraction(p, nb int) float64 {
	if p <= 1 || nb <= 0 {
		return 0
	}
	return float64(p-1) / float64(nb+p-1)
}
