// Package profiler reproduces the Sailor profiler (§4.1).
//
// The real system measures one node per GPU type with PyTorch hooks and CUDA
// events, collecting per-layer forward/backward/update times for a grid of
// microbatch sizes and tensor-parallel degrees, plus network bandwidth
// coefficients per node-type pair. Without hardware, this package generates
// the same artefact analytically: a roofline model over the hardware
// catalogue, perturbed by deterministic "measurement" noise, produces the
// timing tables; hardware.FitLink produces the network coefficients.
//
// Everything downstream consumes only the Profile, so swapping this
// generator for a real measurement campaign would not change any other
// package — which is exactly the property the paper's profiler has.
package profiler

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/model"
)

// LayerTiming is the measured cost of one transformer block on one worker:
// forward pass, backward pass, and the per-parameter-shard optimizer update,
// all in seconds.
type LayerTiming struct {
	Fwd    float64
	Bwd    float64
	Update float64
}

// Key indexes the timing tables: GPU type, microbatch size, TP degree.
type Key struct {
	GPU core.GPUType
	MBS int
	TP  int
}

// Profile is the output of a profiling campaign for one model on a resource
// pool, consumed by the simulator and planner.
type Profile struct {
	Model model.Config
	// Layer maps (gpu, mbs, tp) to per-transformer-block timing.
	Layer map[Key]LayerTiming
	// Head maps (gpu, mbs, tp) to the extra cost of the output projection
	// and loss on the last stage.
	Head map[Key]LayerTiming
	// MBSGrid and TPGrid record the profiled grid, ascending.
	MBSGrid []int
	TPGrid  map[core.GPUType][]int
	// Net holds fitted transfer-time coefficients per link class; the
	// planner composes them with zone topology.
	Net map[hardware.LinkClass]hardware.PolyFit
}

// Options configures profile collection.
type Options struct {
	// MBSGrid lists microbatch sizes to profile; defaults to 1..32 powers
	// of two.
	MBSGrid []int
	// Seed perturbs the synthetic measurement noise.
	Seed uint64
	// NoiseFrac is the relative magnitude of measurement noise (default 2%).
	NoiseFrac float64
}

// Collect profiles the model on every GPU type in gpus, mirroring the
// single-node-per-type methodology of §4.1 (repeated layers are profiled
// once). The returned profile covers TP degrees up to the node size of each
// GPU type (heuristic H1 never needs more).
func Collect(cfg model.Config, gpus []core.GPUType, net *hardware.Network, opts Options) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(gpus) == 0 {
		return nil, fmt.Errorf("profiler: no GPU types given")
	}
	mbsGrid := opts.MBSGrid
	if len(mbsGrid) == 0 {
		mbsGrid = []int{1, 2, 4, 8, 16, 32}
	}
	sort.Ints(mbsGrid)
	noise := opts.NoiseFrac
	if noise == 0 {
		noise = 0.02
	}
	p := &Profile{
		Model:   cfg,
		Layer:   map[Key]LayerTiming{},
		Head:    map[Key]LayerTiming{},
		MBSGrid: mbsGrid,
		TPGrid:  map[core.GPUType][]int{},
		Net:     map[hardware.LinkClass]hardware.PolyFit{},
	}
	for _, g := range gpus {
		spec, err := hardware.Lookup(g)
		if err != nil {
			return nil, err
		}
		node := hardware.DefaultNodeType(g)
		var tps []int
		for tp := 1; tp <= node.GPUsPerNode; tp *= 2 {
			tps = append(tps, tp)
		}
		p.TPGrid[g] = tps
		for _, mbs := range mbsGrid {
			for _, tp := range tps {
				lt := BaseLayerTiming(spec, cfg, mbs, tp)
				ht := BaseHeadTiming(spec, cfg, mbs, tp)
				k := Key{g, mbs, tp}
				p.Layer[k] = perturb(lt, opts.Seed, k, noise)
				p.Head[k] = perturb(ht, opts.Seed, k, noise/2)
			}
		}
	}
	if net == nil {
		net = hardware.DefaultNetwork()
	}
	zoneA := core.Zone{Region: "r0", Name: "r0-a"}
	zoneB := core.Zone{Region: "r0", Name: "r0-b"}
	zoneC := core.Zone{Region: "r1", Name: "r1-a"}
	p.Net[hardware.IntraZone] = hardware.FitLink(net.Link(zoneA, zoneA))
	p.Net[hardware.InterZone] = hardware.FitLink(net.Link(zoneA, zoneB))
	p.Net[hardware.InterRegion] = hardware.FitLink(net.Link(zoneA, zoneC))
	return p, nil
}

// LayerTimingFor returns the per-block timing for a key, interpolating over
// the mbs grid when the exact microbatch size was not profiled.
func (p *Profile) LayerTimingFor(g core.GPUType, mbs, tp int) (LayerTiming, error) {
	return p.lookup(p.Layer, g, mbs, tp)
}

// HeadTimingFor returns the output-head timing for a key.
func (p *Profile) HeadTimingFor(g core.GPUType, mbs, tp int) (LayerTiming, error) {
	return p.lookup(p.Head, g, mbs, tp)
}

func (p *Profile) lookup(tab map[Key]LayerTiming, g core.GPUType, mbs, tp int) (LayerTiming, error) {
	if t, ok := tab[Key{g, mbs, tp}]; ok {
		return t, nil
	}
	// Linear interpolation in mbs between the bracketing grid points:
	// per-layer time is affine in batch within a regime, so this matches
	// how the real profiler handles unprofiled microbatch sizes.
	grid, ok := p.TPGrid[g]
	if !ok {
		return LayerTiming{}, fmt.Errorf("profiler: GPU type %q not profiled", g)
	}
	tpOK := false
	for _, t := range grid {
		if t == tp {
			tpOK = true
			break
		}
	}
	if !tpOK {
		return LayerTiming{}, fmt.Errorf("profiler: tp=%d not profiled for %q", tp, g)
	}
	var lo, hi int
	for _, m := range p.MBSGrid {
		if m <= mbs {
			lo = m
		}
		if m >= mbs {
			hi = m
			break
		}
	}
	if lo == 0 || hi == 0 {
		return LayerTiming{}, fmt.Errorf("profiler: mbs=%d outside profiled grid for %q", mbs, g)
	}
	a, b := tab[Key{g, lo, tp}], tab[Key{g, hi, tp}]
	if lo == hi {
		return a, nil
	}
	f := float64(mbs-lo) / float64(hi-lo)
	return LayerTiming{
		Fwd:    a.Fwd + f*(b.Fwd-a.Fwd),
		Bwd:    a.Bwd + f*(b.Bwd-a.Bwd),
		Update: a.Update + f*(b.Update-a.Update),
	}, nil
}

// NetFit returns the fitted coefficients for a link class.
func (p *Profile) NetFit(c hardware.LinkClass) hardware.PolyFit { return p.Net[c] }

// BaseLayerTiming is the noise-free machine model for one transformer block:
// compute time from the roofline (FLOPs over achieved throughput) plus the
// tensor-parallel collective time over the intra-node link. Exported because
// the ground-truth engine uses the same machine model (the profiler is,
// after all, measuring that machine).
func BaseLayerTiming(spec hardware.GPUSpec, cfg model.Config, mbs, tp int) LayerTiming {
	eff := achievedEfficiency(spec, mbs, tp)
	flops := spec.PeakTFLOPS * 1e12 * eff
	fwd := cfg.LayerFwdFLOPs(mbs) / float64(tp) / flops
	bwd := cfg.LayerBwdFLOPs(mbs) / float64(tp) / flops
	if tp > 1 {
		link := hardware.IntraNodeLink(spec.Type)
		per := allReduceTime(link, cfg.BoundaryActivationBytes(mbs), tp)
		fwd += 2 * per
		bwd += 2 * per
	}
	// Optimizer update is memory-bound: Adam touches ~20 bytes/param
	// (read p, m, v, g; write p, m, v in mixed precision).
	params := float64(cfg.LayerParams()) / float64(tp)
	update := params * 20 / (spec.MemBWGBs * 1e9)
	return LayerTiming{Fwd: fwd, Bwd: bwd, Update: update}
}

// BaseHeadTiming is the noise-free cost of the output projection + loss.
func BaseHeadTiming(spec hardware.GPUSpec, cfg model.Config, mbs, tp int) LayerTiming {
	eff := achievedEfficiency(spec, mbs, tp)
	flops := spec.PeakTFLOPS * 1e12 * eff
	fwd := cfg.HeadFLOPs(mbs) / float64(tp) / flops
	return LayerTiming{Fwd: fwd, Bwd: 2 * fwd, Update: 0}
}

// achievedEfficiency degrades the datasheet MFU for small microbatches
// (kernel launch overhead, low occupancy) and for TP sharding (smaller
// matmuls per rank).
func achievedEfficiency(spec hardware.GPUSpec, mbs, tp int) float64 {
	b := float64(mbs)
	mbsFactor := b / (b + 0.35)
	tpFactor := 1.0 / (1.0 + 0.06*float64(tp-1))
	return spec.Efficiency * mbsFactor * tpFactor
}

// allReduceTime models a ring all-reduce of `bytes` over n ranks on a link:
// 2*(n-1)/n chunks traverse the slowest hop.
func allReduceTime(l hardware.LinkSpec, bytes int64, n int) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	chunk := float64(bytes) * 2 * float64(n-1) / float64(n)
	return l.TransferTime(int64(chunk))
}

// perturb applies deterministic pseudo-measurement noise in [-frac, +frac],
// keyed by the seed and table key, so profiles are stable across runs.
func perturb(t LayerTiming, seed uint64, k Key, frac float64) LayerTiming {
	f := func(tag string, v float64) float64 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s|%d|%d|%s", seed, k.GPU, k.MBS, k.TP, tag)
		u := float64(h.Sum64()%(1<<20)) / float64(1<<20) // [0,1)
		return v * (1 + frac*(2*u-1))
	}
	return LayerTiming{
		Fwd:    f("fwd", t.Fwd),
		Bwd:    f("bwd", t.Bwd),
		Update: f("upd", t.Update),
	}
}

// Overhead reports the simulated wall-clock cost of the profiling campaign
// itself ("a couple of minutes" per §4.1): one node per GPU type, one layer
// instance, the full (mbs, tp) grid with a handful of timed steps each.
func Overhead(p *Profile) float64 {
	const stepsPerPoint = 10
	total := 0.0
	for k, lt := range p.Layer {
		_ = k
		total += stepsPerPoint * (lt.Fwd + lt.Bwd + lt.Update)
	}
	// Setup cost per grid point (graph build, allocator warm-up).
	total += float64(len(p.Layer)) * 0.5
	return total
}
