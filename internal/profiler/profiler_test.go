package profiler

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/model"
)

func collect(t *testing.T, gpus ...core.GPUType) *Profile {
	t.Helper()
	p, err := Collect(model.OPT350M(), gpus, nil, Options{Seed: 1})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return p
}

func TestCollectCoversGrid(t *testing.T) {
	p := collect(t, core.A100, core.V100)
	for _, g := range []core.GPUType{core.A100, core.V100} {
		for _, mbs := range p.MBSGrid {
			for _, tp := range p.TPGrid[g] {
				lt, err := p.LayerTimingFor(g, mbs, tp)
				if err != nil {
					t.Fatalf("missing grid point %s mbs=%d tp=%d: %v", g, mbs, tp, err)
				}
				if lt.Fwd <= 0 || lt.Bwd <= 0 || lt.Update <= 0 {
					t.Fatalf("nonpositive timing at %s mbs=%d tp=%d: %+v", g, mbs, tp, lt)
				}
			}
		}
	}
}

func TestCollectErrors(t *testing.T) {
	if _, err := Collect(model.OPT350M(), nil, nil, Options{}); err == nil {
		t.Error("want error with no GPUs")
	}
	bad := model.OPT350M()
	bad.Layers = 0
	if _, err := Collect(bad, []core.GPUType{core.A100}, nil, Options{}); err == nil {
		t.Error("want error for invalid model")
	}
	if _, err := Collect(model.OPT350M(), []core.GPUType{"No-Such-GPU"}, nil, Options{}); err == nil {
		t.Error("want error for unknown GPU")
	}
}

func TestBackwardIsTwiceForward(t *testing.T) {
	spec := hardware.MustLookup(core.A100)
	lt := BaseLayerTiming(spec, model.OPT350M(), 4, 1)
	if r := lt.Bwd / lt.Fwd; math.Abs(r-2) > 0.01 {
		t.Errorf("bwd/fwd = %v, want ~2 at TP=1", r)
	}
}

func TestA100FasterThanV100(t *testing.T) {
	p := collect(t, core.A100, core.V100)
	a, _ := p.LayerTimingFor(core.A100, 4, 1)
	v, _ := p.LayerTimingFor(core.V100, 4, 1)
	if a.Fwd >= v.Fwd {
		t.Errorf("A100 fwd %v should beat V100 %v", a.Fwd, v.Fwd)
	}
	// Ratio should roughly track effective FLOPs ratio (~3x), the quantity
	// the planner's load balancing relies on.
	r := v.Fwd / a.Fwd
	if r < 2 || r > 5 {
		t.Errorf("V100/A100 fwd ratio = %v, want 2-5x", r)
	}
}

func TestTPReducesComputeButNotLinearly(t *testing.T) {
	p := collect(t, core.A100)
	t1, _ := p.LayerTimingFor(core.A100, 8, 1)
	t4, _ := p.LayerTimingFor(core.A100, 8, 4)
	if t4.Fwd >= t1.Fwd {
		t.Fatalf("TP=4 should cut fwd time: %v >= %v", t4.Fwd, t1.Fwd)
	}
	if t4.Fwd <= t1.Fwd/4 {
		t.Fatalf("TP=4 cannot be superlinear (collectives cost): %v <= %v", t4.Fwd, t1.Fwd/4)
	}
}

func TestInterpolationBetweenGridPoints(t *testing.T) {
	p := collect(t, core.A100)
	t2, _ := p.LayerTimingFor(core.A100, 2, 1)
	t3, err := p.LayerTimingFor(core.A100, 3, 1) // not on the grid
	if err != nil {
		t.Fatalf("interpolation failed: %v", err)
	}
	t4, _ := p.LayerTimingFor(core.A100, 4, 1)
	if !(t2.Fwd < t3.Fwd && t3.Fwd < t4.Fwd) {
		t.Errorf("interpolated point not between neighbours: %v %v %v", t2.Fwd, t3.Fwd, t4.Fwd)
	}
}

func TestLookupErrors(t *testing.T) {
	p := collect(t, core.A100)
	if _, err := p.LayerTimingFor(core.V100, 4, 1); err == nil {
		t.Error("want error for unprofiled GPU")
	}
	if _, err := p.LayerTimingFor(core.A100, 4, 64); err == nil {
		t.Error("want error for unprofiled TP")
	}
	if _, err := p.LayerTimingFor(core.A100, 1024, 1); err == nil {
		t.Error("want error for mbs beyond grid")
	}
}

func TestNoiseIsDeterministic(t *testing.T) {
	a := collect(t, core.A100)
	b := collect(t, core.A100)
	la, _ := a.LayerTimingFor(core.A100, 4, 2)
	lb, _ := b.LayerTimingFor(core.A100, 4, 2)
	if la != lb {
		t.Errorf("same seed must reproduce identical profiles: %+v vs %+v", la, lb)
	}
	c, err := Collect(model.OPT350M(), []core.GPUType{core.A100}, nil, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	lc, _ := c.LayerTimingFor(core.A100, 4, 2)
	if lc == la {
		t.Error("different seeds should perturb differently")
	}
}

func TestNoiseIsSmall(t *testing.T) {
	p := collect(t, core.A100)
	spec := hardware.MustLookup(core.A100)
	base := BaseLayerTiming(spec, model.OPT350M(), 4, 1)
	got, _ := p.LayerTimingFor(core.A100, 4, 1)
	if rel := math.Abs(got.Fwd-base.Fwd) / base.Fwd; rel > 0.03 {
		t.Errorf("measurement noise %v exceeds 3%%", rel)
	}
}

func TestHeadTimingOnlyMattersAtLastStage(t *testing.T) {
	p := collect(t, core.A100)
	h, err := p.HeadTimingFor(core.A100, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := p.LayerTimingFor(core.A100, 4, 1)
	if h.Fwd <= 0 {
		t.Fatal("head must cost something")
	}
	// The vocab projection for OPT-350M is several layer-equivalents.
	if h.Fwd < l.Fwd {
		t.Errorf("head fwd %v should exceed one layer %v for a 50k vocab", h.Fwd, l.Fwd)
	}
}

func TestNetworkCoefficientsFitted(t *testing.T) {
	p := collect(t, core.A100)
	for _, c := range []hardware.LinkClass{hardware.IntraZone, hardware.InterZone, hardware.InterRegion} {
		fit := p.NetFit(c)
		if fit.Eval(64<<20) <= 0 {
			t.Errorf("%v: no usable fit", c)
		}
	}
	// Ordering must survive the fit.
	m := int64(128 << 20)
	if !(p.NetFit(hardware.IntraZone).Eval(m) <= p.NetFit(hardware.InterZone).Eval(m) &&
		p.NetFit(hardware.InterZone).Eval(m) < p.NetFit(hardware.InterRegion).Eval(m)) {
		t.Error("fitted link tiers lost their ordering")
	}
}

func TestProfilingOverheadIsMinutes(t *testing.T) {
	p := collect(t, core.A100, core.V100)
	o := Overhead(p)
	// §4.1: "a couple of minutes". Anything from seconds to ~1 h passes;
	// the point is it is not days.
	if o <= 0 || o > 3600 {
		t.Errorf("profiling overhead = %v s, want positive and under an hour", o)
	}
}
