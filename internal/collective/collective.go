// Package collective provides analytical cost models for the communication
// primitives distributed training uses: point-to-point activation transfer
// (pipeline parallelism), ring all-reduce (data-parallel gradient sync and
// tensor-parallel layer collectives), and all-gather.
//
// Costs are expressed over either a concrete hardware.LinkSpec or fitted
// hardware.PolyFit coefficients; the Sailor simulator uses the fitted form,
// matching §4.1 ("fitting a polynomial function to get a set of
// coefficients"), while the ground-truth engine uses the concrete links.
package collective

import "repro/internal/hardware"

// TimeModel abstracts "seconds to move n bytes across this link" so cost
// formulas work over both LinkSpec and PolyFit.
type TimeModel interface {
	TransferTime(bytes int64) float64
}

// polyAdapter lets a PolyFit satisfy TimeModel.
type polyAdapter struct{ f hardware.PolyFit }

func (p polyAdapter) TransferTime(b int64) float64 { return p.f.Eval(b) }

// FromFit wraps fitted coefficients as a TimeModel.
func FromFit(f hardware.PolyFit) TimeModel { return polyAdapter{f} }

// P2P returns the time to send one message of `bytes` between two workers.
func P2P(l TimeModel, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.TransferTime(bytes)
}

// RingAllReduce returns the time for n ranks to all-reduce `bytes` over the
// slowest link of the ring: each rank sends 2*(n-1)/n of the buffer in
// 2*(n-1) pipelined chunk steps.
func RingAllReduce(l TimeModel, bytes int64, n int) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	chunk := bytes / int64(n)
	if chunk < 1 {
		chunk = 1
	}
	steps := 2 * (n - 1)
	return float64(steps) * l.TransferTime(chunk)
}

// AllGather returns the time for n ranks to gather `bytes` total over the
// slowest link: (n-1) chunk steps.
func AllGather(l TimeModel, bytes int64, n int) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	chunk := bytes / int64(n)
	if chunk < 1 {
		chunk = 1
	}
	return float64(n-1) * l.TransferTime(chunk)
}

// RingCrossings counts how many ring edges cross a boundary when ranks are
// grouped into `groups` consecutive blocks (e.g. zones). Each crossing edge
// carries the full 2*(n-1)/n traffic of the ring, which is what inter-zone
// egress is billed on. A ring over g groups crosses boundaries 2*g times
// when g > 1 (once in each direction per adjacency, and the wrap-around).
func RingCrossings(groupSizes []int) int {
	g := 0
	for _, s := range groupSizes {
		if s > 0 {
			g++
		}
	}
	if g <= 1 {
		return 0
	}
	return g // ring visits each group once; one outbound crossing per group
}

// AllReduceEgressBytes returns the bytes billed for a ring all-reduce of
// `bytes` over ranks partitioned into groups (zones). Each boundary-crossing
// edge carries 2*(n-1)/n * bytes of chunk traffic.
func AllReduceEgressBytes(bytes int64, n int, groupSizes []int) int64 {
	crossings := RingCrossings(groupSizes)
	if crossings == 0 || n <= 1 {
		return 0
	}
	perEdge := bytes * 2 * int64(n-1) / int64(n)
	return int64(crossings) * perEdge
}
