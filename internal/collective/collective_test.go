package collective

import (
	"testing"
	"testing/quick"

	"repro/internal/hardware"
)

var testLink = hardware.LinkSpec{Class: hardware.IntraZone, LatencySec: 30e-6, GBs: 12, RampBytes: 4 << 20}

func TestP2P(t *testing.T) {
	if P2P(testLink, 0) != 0 {
		t.Error("empty message should be free")
	}
	if P2P(testLink, 1<<20) <= 0 {
		t.Error("nonempty message must cost time")
	}
}

func TestRingAllReduceScaling(t *testing.T) {
	const bytes = 512 << 20
	t2 := RingAllReduce(testLink, bytes, 2)
	t8 := RingAllReduce(testLink, bytes, 8)
	if t2 <= 0 {
		t.Fatal("2-rank all-reduce must cost time")
	}
	// Ring all-reduce total traffic grows as 2*(n-1)/n: the 8-rank ring
	// moves more total data (and pays more latency steps) than the 2-rank
	// ring, which is why H3/H4 reason about DP scaling overheads.
	if t8 <= t2 {
		t.Errorf("8-rank ring %v should cost more than 2-rank %v", t8, t2)
	}
	if RingAllReduce(testLink, bytes, 1) != 0 {
		t.Error("single rank needs no sync")
	}
	if RingAllReduce(testLink, 0, 4) != 0 {
		t.Error("zero bytes need no sync")
	}
}

func TestRingAllReduceBandwidthBound(t *testing.T) {
	// For large messages, ring time approaches 2*(n-1)/n * bytes/bw.
	const bytes = int64(1) << 30
	for _, n := range []int{2, 4, 16} {
		ideal := 2 * float64(n-1) / float64(n) * float64(bytes) / (testLink.GBs * 1e9)
		got := RingAllReduce(testLink, bytes, n)
		if got < ideal*0.8 {
			t.Errorf("n=%d: %v under the bandwidth bound %v", n, got, ideal)
		}
		if got > ideal*3 {
			t.Errorf("n=%d: %v way above the bandwidth bound %v", n, got, ideal)
		}
	}
}

func TestAllGather(t *testing.T) {
	if AllGather(testLink, 1<<20, 1) != 0 {
		t.Error("single rank gathers nothing")
	}
	g4 := AllGather(testLink, 64<<20, 4)
	r4 := RingAllReduce(testLink, 64<<20, 4)
	if g4 <= 0 || g4 >= r4 {
		t.Errorf("all-gather %v should be cheaper than all-reduce %v", g4, r4)
	}
}

func TestFromFit(t *testing.T) {
	fit := hardware.FitLink(testLink)
	tm := FromFit(fit)
	direct := testLink.TransferTime(128 << 20)
	fitted := tm.TransferTime(128 << 20)
	rel := (fitted - direct) / direct
	if rel < -0.25 || rel > 0.25 {
		t.Errorf("fitted time %v too far from direct %v", fitted, direct)
	}
}

func TestRingCrossings(t *testing.T) {
	if got := RingCrossings([]int{8}); got != 0 {
		t.Errorf("single group crossings = %d, want 0", got)
	}
	if got := RingCrossings([]int{4, 4}); got != 2 {
		t.Errorf("two groups crossings = %d, want 2", got)
	}
	if got := RingCrossings([]int{4, 0, 4}); got != 2 {
		t.Errorf("empty groups must not count: %d, want 2", got)
	}
	if got := RingCrossings([]int{2, 2, 2}); got != 3 {
		t.Errorf("three groups crossings = %d, want 3", got)
	}
}

func TestAllReduceEgressBytes(t *testing.T) {
	if AllReduceEgressBytes(1<<20, 8, []int{8}) != 0 {
		t.Error("single-zone ring bills nothing")
	}
	got := AllReduceEgressBytes(1<<20, 4, []int{2, 2})
	perEdge := int64(1<<20) * 2 * 3 / 4
	if got != 2*perEdge {
		t.Errorf("egress = %d, want %d", got, 2*perEdge)
	}
}

// Property: ring all-reduce time is monotone in message size.
func TestRingMonotoneProperty(t *testing.T) {
	f := func(kb uint16, n uint8) bool {
		bytes := int64(kb)*1024 + 4096
		ranks := int(n%14) + 2
		return RingAllReduce(testLink, bytes+4096, ranks) >= RingAllReduce(testLink, bytes, ranks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
