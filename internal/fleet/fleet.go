// Package fleet is the cluster-wide capacity ledger that arbitrates one
// elastic GPU fleet across many concurrent jobs. The paper's planner assumes
// each job sees the whole dynamic pool; at fleet scale that assumption
// breaks — two jobs would both "win" the same GPUs. The Ledger closes the
// gap: it wraps a cluster.Pool of total capacity with per-job leases, hands
// planners a free-capacity view to search over, and replays availability
// events against the *fleet*, computing which leases the event broke and
// therefore which jobs must replan.
//
// Determinism contract: every ordered walk of the ledger — lease eviction
// under a capacity loss, the Snapshot lease table, and the rebalance order
// layered on top by sailor.Service — uses the same admission order: priority
// descending, then job name ascending. The order is a pure function of the
// lease set, never of arrival time or map iteration, so a replayed event
// sequence produces a byte-identical reconfiguration ledger at any planner
// worker count.
//
// Safety invariant: the sum of leased capacity never exceeds fleet capacity
// in any (zone, GPU type) cell. Grants validate against the free view under
// the ledger lock, and Apply evicts newly infeasible leases inside the same
// critical section that shrinks capacity, so the invariant holds at every
// public boundary. CheckInvariant re-derives it for tests and replay
// harnesses.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/trace"
)

// ErrConflict reports that a lease grant lost a race against the fleet's
// free capacity: the plan fit the view the caller searched over, but the
// ledger moved before the grant. Callers retry against a fresh view.
var ErrConflict = errors.New("fleet: lease conflicts with current free capacity")

// OpKind classifies a ledger mutation for observers.
type OpKind int

const (
	// OpInstall is a lease grant or replacement (Acquire/Resize/Install).
	OpInstall OpKind = iota
	// OpRelease is a lease drop (Release/ReleaseIf). Evictions driven by
	// OpApply and OpSetCap are not separate ops: they are deterministic
	// consequences of replaying those ops against the same ledger state.
	OpRelease
	// OpApply is one availability event mutating fleet capacity.
	OpApply
	// OpSetCap is a per-job GPU cap change.
	OpSetCap
)

// String names the op kind (journal records carry these names).
func (k OpKind) String() string {
	switch k {
	case OpInstall:
		return "lease-install"
	case OpRelease:
		return "lease-release"
	case OpApply:
		return "fleet-event"
	case OpSetCap:
		return "set-cap"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op describes one committed ledger mutation: the kind, the fields that
// replaying it needs, and the ledger version the mutation produced. Replaying
// the same ops in Version order against a ledger restored from the preceding
// snapshot reproduces the exact lease table and version trajectory — broken
// leases under OpApply/OpSetCap re-derive deterministically, so they are not
// part of the op.
type Op struct {
	Kind OpKind
	// Job/Priority/Plan describe OpInstall (Job alone describes OpRelease).
	Job      string
	Priority int
	Plan     core.Plan
	// Event is the availability change of OpApply.
	Event trace.Event
	// JobCap is the new per-job GPU cap of OpSetCap.
	JobCap int
	// Version is the ledger's mutation counter after the op committed.
	Version uint64
}

// SetObserver installs fn to be called, under the ledger lock, after every
// version-bumping mutation commits — the hook a write-ahead journal hangs off.
// The callback sees ops in exact version order and must not call back into
// the ledger (it would deadlock). A nil fn removes the observer.
func (l *Ledger) SetObserver(fn func(Op)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observer = fn
}

// notifyLocked emits an op to the observer; callers hold l.mu and have
// already bumped the version.
func (l *Ledger) notifyLocked(op Op) {
	if l.observer != nil {
		op.Version = l.version
		l.observer(op)
	}
}

// Lease is one job's hold on fleet capacity: the plan whose GPU demand the
// ledger has reserved for it.
type Lease struct {
	// Job names the lease holder.
	Job string
	// Priority orders jobs under contention: higher keeps capacity longer
	// and replans earlier. Ties break on job name ascending.
	Priority int
	// Plan is the parallelization plan whose GPU demand is reserved.
	Plan core.Plan
	// Acquired is the ledger version at which this lease was last granted.
	Acquired uint64
}

// GPUs returns the lease's total reserved GPU count.
func (le Lease) GPUs() int { return le.Plan.GPUCount() }

// Ledger is a concurrent, versioned capacity ledger over one fleet. All
// methods are safe for concurrent use; the zero value is not usable — build
// one with NewLedger.
type Ledger struct {
	mu       sync.Mutex
	version  uint64
	capacity *cluster.Pool
	leases   map[string]*Lease
	// jobCap limits any single lease to this many GPUs (0 = unlimited) —
	// the fair-share cap that keeps one max-throughput job from leasing
	// the whole fleet and starving every other tenant.
	jobCap int
	// observer, when set, sees every version-bumping mutation in exact
	// version order (see SetObserver).
	observer func(Op)
}

// NewLedger returns a ledger whose total capacity is a deep copy of pool
// (which may be empty when capacity arrives through Apply events).
func NewLedger(pool *cluster.Pool) *Ledger {
	if pool == nil {
		pool = cluster.NewPool()
	}
	return &Ledger{capacity: pool.Clone(), leases: map[string]*Lease{}}
}

// Version returns the mutation counter: it advances on every Acquire,
// Resize, Release, and Apply, so observers can cheaply detect fleet drift.
func (l *Ledger) Version() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.version
}

// Capacity returns a copy of the fleet's total capacity.
func (l *Ledger) Capacity() *cluster.Pool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.capacity.Clone()
}

// FreeView returns the free-capacity snapshot planners search over: total
// capacity minus every lease's demand.
func (l *Ledger) FreeView() *cluster.Pool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.freeLocked("")
}

// ViewFor returns the capacity a replan of job may draw from: the free view
// plus the job's own lease (a job may always reshuffle capacity it holds),
// truncated to the per-job cap when one is set.
func (l *Ledger) ViewFor(job string) *cluster.Pool {
	l.mu.Lock()
	defer l.mu.Unlock()
	view := l.freeLocked(job)
	if l.jobCap > 0 {
		view = view.CapTotal(l.jobCap)
	}
	return view
}

// ViewForTypes is ViewFor restricted to the GPU types the job's profiled
// System can actually plan with: the free view plus the job's own lease,
// filtered to gpus *before* the per-job cap is applied, so the cap is spent
// on usable cells only. An empty type list means no filter. Because the
// filtered view is a pure function of the free counts in the job's own-type
// cells, jobs whose type sets are disjoint see views that are independent
// of each other's grants — the property Service.Rebalance's partitioned
// pass relies on.
func (l *Ledger) ViewForTypes(job string, gpus []core.GPUType) *cluster.Pool {
	l.mu.Lock()
	defer l.mu.Unlock()
	view := l.freeLocked(job)
	if len(gpus) > 0 {
		view = view.FilterTypes(gpus)
	}
	if l.jobCap > 0 {
		view = view.CapTotal(l.jobCap)
	}
	return view
}

// SetJobCap bounds every lease to at most n GPUs (0 removes the cap).
// Existing oversized leases are evicted in admission order and returned,
// exactly as if capacity had shifted under them.
func (l *Ledger) SetJobCap(n int) []Lease {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.version++
	l.jobCap = n
	l.notifyLocked(Op{Kind: OpSetCap, JobCap: n})
	if n <= 0 {
		return nil
	}
	var broken []Lease
	for _, job := range l.orderLocked() {
		if le := l.leases[job]; le.GPUs() > n {
			broken = append(broken, *le)
			delete(l.leases, job)
		}
	}
	return broken
}

// JobCap returns the per-job GPU cap (0 = unlimited).
func (l *Ledger) JobCap() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.jobCap
}

// freeLocked computes capacity minus all leases except skip's.
func (l *Ledger) freeLocked(skip string) *cluster.Pool {
	free := l.capacity.Clone()
	for job, le := range l.leases {
		if job == skip {
			continue
		}
		// The safety invariant guarantees every lease subtracts cleanly.
		_ = free.Subtract(le.Plan)
	}
	return free
}

// Held reports whether job currently holds a lease.
func (l *Ledger) Held(job string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.leases[job]
	return ok
}

// Acquire grants a new lease for job's plan, validating the demand against
// the free view. It fails if the job already holds a lease (use Resize) or
// with ErrConflict if the plan no longer fits the free capacity.
func (l *Ledger) Acquire(job string, priority int, plan core.Plan) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.leases[job]; ok {
		return fmt.Errorf("fleet: job %q already holds a lease (use Resize)", job)
	}
	return l.grantLocked(job, priority, plan)
}

// Resize atomically replaces job's lease with a new plan, keeping its
// priority. The job's current hold counts as free for its own resize.
func (l *Ledger) Resize(job string, plan core.Plan) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	le, ok := l.leases[job]
	if !ok {
		return fmt.Errorf("fleet: job %q holds no lease to resize", job)
	}
	return l.grantLocked(job, le.Priority, plan)
}

// Install grants or replaces job's lease in one step — the acquire-or-resize
// a planner-driven admission loop wants. On failure the previous lease (if
// any) is left untouched. On success it returns the grant's Acquired
// version, the token ReleaseIf needs to undo exactly this grant and not a
// newer one.
func (l *Ledger) Install(job string, priority int, plan core.Plan) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.grantLocked(job, priority, plan); err != nil {
		return 0, err
	}
	return l.leases[job].Acquired, nil
}

// grantLocked validates plan against the free view excluding job's own
// lease and installs the lease, bumping the version.
func (l *Ledger) grantLocked(job string, priority int, plan core.Plan) error {
	if job == "" {
		return fmt.Errorf("fleet: empty job name")
	}
	if plan.GPUCount() == 0 {
		return fmt.Errorf("fleet: refusing empty-plan lease for job %q", job)
	}
	if l.jobCap > 0 && plan.GPUCount() > l.jobCap {
		return fmt.Errorf("fleet: plan for job %q wants %d GPUs, per-job cap is %d",
			job, plan.GPUCount(), l.jobCap)
	}
	if !l.freeLocked(job).CanFit(plan) {
		return fmt.Errorf("%w (job %q, %d GPUs)", ErrConflict, job, plan.GPUCount())
	}
	l.version++
	l.leases[job] = &Lease{Job: job, Priority: priority, Plan: plan, Acquired: l.version}
	l.notifyLocked(Op{Kind: OpInstall, Job: job, Priority: priority, Plan: plan})
	return nil
}

// Release drops job's lease, returning whether one was held.
func (l *Ledger) Release(job string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.leases[job]; !ok {
		return false
	}
	l.version++
	delete(l.leases, job)
	l.notifyLocked(Op{Kind: OpRelease, Job: job})
	return true
}

// ReleaseIf drops job's lease only if it is still the grant identified by
// acquired (the version Install returned) — the compare-and-release a
// caller compensating its own stale grant needs, so it can never drop a
// newer lease installed by a later incarnation of the job.
func (l *Ledger) ReleaseIf(job string, acquired uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	le, ok := l.leases[job]
	if !ok || le.Acquired != acquired {
		return false
	}
	l.version++
	delete(l.leases, job)
	l.notifyLocked(Op{Kind: OpRelease, Job: job})
	return true
}

// Apply replays one availability event against the fleet capacity
// (reclamations clamp at zero, matching trace replay semantics) and evicts
// every lease the new capacity can no longer honor. Eviction is
// deterministic: leases are re-validated in admission order — priority
// descending, then job name ascending — and the first ones in that order
// keep their capacity, so contention always preempts the lowest-priority,
// lexicographically-last jobs. The broken leases are returned in that same
// order; their jobs must replan (see sailor.Service.Rebalance).
func (l *Ledger) Apply(ev trace.Event) []Lease {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.version++
	l.capacity.Add(ev.Zone, ev.GPU, ev.Delta)
	l.notifyLocked(Op{Kind: OpApply, Event: ev})
	return l.evictLocked()
}

// evictLocked walks leases in admission order, keeping the maximal prefix
// the capacity still fits and evicting the rest.
func (l *Ledger) evictLocked() []Lease {
	if len(l.leases) == 0 {
		return nil
	}
	work := l.capacity.Clone()
	var broken []Lease
	for _, job := range l.orderLocked() {
		le := l.leases[job]
		if work.Subtract(le.Plan) != nil {
			broken = append(broken, *le)
			delete(l.leases, job)
		}
	}
	return broken
}

// orderLocked returns lease holders in admission order: priority
// descending, then job name ascending.
func (l *Ledger) orderLocked() []string {
	jobs := make([]string, 0, len(l.leases))
	for job := range l.leases {
		jobs = append(jobs, job)
	}
	sort.Slice(jobs, func(i, j int) bool {
		pi, pj := l.leases[jobs[i]].Priority, l.leases[jobs[j]].Priority
		if pi != pj {
			return pi > pj
		}
		return jobs[i] < jobs[j]
	})
	return jobs
}

// Snapshot is a consistent point-in-time view of the ledger.
type Snapshot struct {
	// Version is the mutation counter at snapshot time.
	Version uint64
	// Capacity and Free are deep copies of the total and unleased pools.
	Capacity *cluster.Pool
	Free     *cluster.Pool
	// JobCap is the per-job GPU cap (0 = unlimited).
	JobCap int
	// Leases lists every lease in admission order.
	Leases []Lease
}

// Snapshot returns the ledger's current state under one lock acquisition.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Snapshot{
		Version:  l.version,
		Capacity: l.capacity.Clone(),
		Free:     l.freeLocked(""),
		JobCap:   l.jobCap,
	}
	for _, job := range l.orderLocked() {
		s.Leases = append(s.Leases, *l.leases[job])
	}
	return s
}

// FromSnapshot rebuilds a ledger at the exact state a Snapshot captured:
// capacity, per-job cap, the lease table with the original Acquired versions,
// and — critically for journal replay — the mutation counter itself, so ops
// recorded after the snapshot re-apply onto the same version trajectory. The
// snapshot's pools are deep-copied; the safety invariant is re-validated and
// a snapshot that violates it (a corrupted or hand-edited document) is
// rejected rather than restored.
func FromSnapshot(s Snapshot) (*Ledger, error) {
	if s.Capacity == nil {
		return nil, fmt.Errorf("fleet: snapshot has no capacity pool")
	}
	l := &Ledger{
		version:  s.Version,
		capacity: s.Capacity.Clone(),
		leases:   make(map[string]*Lease, len(s.Leases)),
		jobCap:   s.JobCap,
	}
	for _, le := range s.Leases {
		if le.Job == "" {
			return nil, fmt.Errorf("fleet: snapshot lease with empty job name")
		}
		if _, ok := l.leases[le.Job]; ok {
			return nil, fmt.Errorf("fleet: snapshot holds two leases for job %q", le.Job)
		}
		if le.Acquired > s.Version {
			return nil, fmt.Errorf("fleet: snapshot lease %q acquired at version %d, after snapshot version %d",
				le.Job, le.Acquired, s.Version)
		}
		if s.JobCap > 0 && le.GPUs() > s.JobCap {
			return nil, fmt.Errorf("fleet: snapshot lease %q holds %d GPUs over the per-job cap %d",
				le.Job, le.GPUs(), s.JobCap)
		}
		cp := le
		l.leases[le.Job] = &cp
	}
	if err := l.CheckInvariant(); err != nil {
		return nil, fmt.Errorf("fleet: snapshot restore: %w", err)
	}
	return l, nil
}

// CheckInvariant re-derives the safety invariant — the sum of leased
// capacity fits the fleet capacity in every (zone, GPU type) cell — and
// returns an error naming the first lease that breaks it. Replay harnesses
// assert this after every event step.
func (l *Ledger) CheckInvariant() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	work := l.capacity.Clone()
	for _, job := range l.orderLocked() {
		if err := work.Subtract(l.leases[job].Plan); err != nil {
			return fmt.Errorf("fleet: invariant violated at lease %q: %w", job, err)
		}
	}
	return nil
}
