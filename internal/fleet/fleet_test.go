package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/trace"
)

var (
	zoneA = cluster.GCPZone("us-central1", 'a')
	zoneB = cluster.GCPZone("us-central1", 'b')
)

// flatPlan builds a one-stage plan of n replicas of tp GPUs each in z.
func flatPlan(z core.Zone, g core.GPUType, n, tp int) core.Plan {
	reps := make([]core.StageReplica, n)
	for i := range reps {
		reps[i] = core.StageReplica{GPU: g, TP: tp, Zone: z}
	}
	return core.Plan{MicroBatchSize: 1, Stages: []core.StagePlan{
		{FirstLayer: 0, NumLayers: 24, Replicas: reps},
	}}
}

func TestLedgerAcquireReleaseFreeView(t *testing.T) {
	l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, 16))
	if v := l.Version(); v != 0 {
		t.Errorf("fresh ledger version = %d, want 0", v)
	}
	if err := l.Acquire("a", 1, flatPlan(zoneA, core.A100, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if got := l.FreeView().TotalGPUs(); got != 8 {
		t.Errorf("free after 8-GPU lease = %d, want 8", got)
	}
	// A second lease for the same job must be a Resize, not an Acquire.
	if err := l.Acquire("a", 1, flatPlan(zoneA, core.A100, 1, 4)); err == nil {
		t.Error("double Acquire must fail")
	}
	// The remaining 8 GPUs admit job b but not a 12-GPU plan.
	if err := l.Acquire("b", 1, flatPlan(zoneA, core.A100, 3, 4)); !errors.Is(err, ErrConflict) {
		t.Errorf("oversized acquire = %v, want ErrConflict", err)
	}
	if err := l.Acquire("b", 1, flatPlan(zoneA, core.A100, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if got := l.FreeView().TotalGPUs(); got != 0 {
		t.Errorf("free after both leases = %d, want 0", got)
	}
	// ViewFor offers the job its own capacity back.
	if got := l.ViewFor("a").TotalGPUs(); got != 8 {
		t.Errorf("ViewFor(a) = %d GPUs, want 8", got)
	}
	if !l.Release("a") {
		t.Error("Release(a) = false, want true")
	}
	if l.Release("a") {
		t.Error("double Release must report false")
	}
	if !l.Held("b") || l.Held("a") {
		t.Error("Held bookkeeping wrong after release")
	}
	if err := l.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseIf: compare-and-release only drops the exact grant it names —
// a stale holder can never release a newer lease installed under the same
// job name (the CloseJob/reopen race in sailor.Service.planFleet).
func TestReleaseIf(t *testing.T) {
	l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, 16))
	stale, err := l.Install("a", 1, flatPlan(zoneA, core.A100, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	// The job is closed and reopened: a newer incarnation installs again.
	fresh, err := l.Install("a", 2, flatPlan(zoneA, core.A100, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if stale == fresh {
		t.Fatal("two grants must have distinct versions")
	}
	if l.ReleaseIf("a", stale) {
		t.Error("stale grant version must not release the newer lease")
	}
	if !l.Held("a") {
		t.Fatal("newer lease must survive the stale compare-and-release")
	}
	if !l.ReleaseIf("a", fresh) {
		t.Error("current grant version must release")
	}
	if l.ReleaseIf("a", fresh) {
		t.Error("ReleaseIf on a gone lease must report false")
	}
}

func TestLedgerResize(t *testing.T) {
	l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, 16))
	if err := l.Resize("a", flatPlan(zoneA, core.A100, 1, 4)); err == nil {
		t.Error("Resize without a lease must fail")
	}
	if err := l.Acquire("a", 7, flatPlan(zoneA, core.A100, 3, 4)); err != nil {
		t.Fatal(err)
	}
	// Growing within the fleet works because the job's own 12 GPUs count as
	// free for its resize.
	if err := l.Resize("a", flatPlan(zoneA, core.A100, 4, 4)); err != nil {
		t.Fatalf("grow-in-place resize: %v", err)
	}
	snap := l.Snapshot()
	if len(snap.Leases) != 1 || snap.Leases[0].GPUs() != 16 || snap.Leases[0].Priority != 7 {
		t.Errorf("lease after resize = %+v, want 16 GPUs at priority 7", snap.Leases)
	}
	if err := l.Resize("a", flatPlan(zoneA, core.A100, 5, 4)); !errors.Is(err, ErrConflict) {
		t.Errorf("oversized resize = %v, want ErrConflict", err)
	}
	// A failed resize leaves the old lease untouched.
	if got := l.Snapshot().Leases[0].GPUs(); got != 16 {
		t.Errorf("lease after failed resize = %d GPUs, want 16", got)
	}
}

// TestJobCap: the fair-share cap bounds views and grants, and tightening
// it evicts oversized leases like a capacity loss would.
func TestJobCap(t *testing.T) {
	l := NewLedger(nil) // nil capacity is a usable empty fleet
	if got := l.Capacity().TotalGPUs(); got != 0 {
		t.Fatalf("nil-pool ledger capacity = %d, want 0", got)
	}
	l.Apply(trace.Event{Zone: zoneA, GPU: core.A100, Delta: 16})
	if broken := l.SetJobCap(6); broken != nil {
		t.Errorf("capping an empty ledger broke leases: %+v", broken)
	}
	if got := l.JobCap(); got != 6 {
		t.Errorf("JobCap = %d, want 6", got)
	}
	// Views truncate to the cap; grants beyond it are refused outright.
	if got := l.ViewFor("a").TotalGPUs(); got != 6 {
		t.Errorf("capped ViewFor = %d GPUs, want 6", got)
	}
	if err := l.Acquire("a", 1, flatPlan(zoneA, core.A100, 2, 4)); err == nil {
		t.Error("8-GPU plan above the 6-GPU cap must be refused")
	}
	if err := l.Acquire("a", 1, flatPlan(zoneA, core.A100, 1, 4)); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire("b", 2, flatPlan(zoneA, core.A100, 1, 6)); err != nil {
		t.Fatal(err)
	}
	// Tightening the cap evicts the now-oversized lease (b, 6 GPUs) and
	// keeps the conforming one.
	broken := l.SetJobCap(4)
	if len(broken) != 1 || broken[0].Job != "b" {
		t.Fatalf("tightened cap broke %+v, want exactly b", broken)
	}
	if !l.Held("a") {
		t.Error("conforming lease must survive a cap change")
	}
	// Removing the cap restores the full view.
	l.SetJobCap(0)
	if got := l.ViewFor("x").TotalGPUs(); got != 12 {
		t.Errorf("uncapped ViewFor = %d GPUs, want 12 free", got)
	}
	if err := l.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerRejectsBadGrants(t *testing.T) {
	l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, 8))
	if err := l.Acquire("", 1, flatPlan(zoneA, core.A100, 1, 4)); err == nil {
		t.Error("empty job name must fail")
	}
	if err := l.Acquire("a", 1, core.Plan{}); err == nil {
		t.Error("empty plan must fail")
	}
	if _, err := l.Install("a", 1, flatPlan(zoneB, core.V100, 1, 4)); !errors.Is(err, ErrConflict) {
		t.Errorf("lease in a zone/type the fleet lacks = %v, want ErrConflict", err)
	}
}

// TestApplyEvictsInAdmissionOrder: a capacity loss preempts the
// lowest-priority (then lexicographically-last) leases first, returns them
// in admission order, and leaves the invariant intact.
func TestApplyEvictsInAdmissionOrder(t *testing.T) {
	l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, 16))
	// Admission order is (priority desc, name asc): hi, a, b.
	for _, j := range []struct {
		name string
		pri  int
	}{{"b", 1}, {"hi", 9}, {"a", 1}} {
		if err := l.Acquire(j.name, j.pri, flatPlan(zoneA, core.A100, 1, 4)); err != nil {
			t.Fatal(err)
		}
	}
	// Losing 8 of 16 GPUs leaves room for two 4-GPU leases: hi and a keep
	// theirs, b is evicted.
	broken := l.Apply(trace.Event{At: time.Hour, Zone: zoneA, GPU: core.A100, Delta: -8})
	if len(broken) != 1 || broken[0].Job != "b" {
		t.Fatalf("broken = %+v, want exactly job b", broken)
	}
	if err := l.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// Losing 6 more (16-8-6=2) breaks everything left, highest priority
	// reported first.
	broken = l.Apply(trace.Event{At: 2 * time.Hour, Zone: zoneA, GPU: core.A100, Delta: -6})
	if len(broken) != 2 || broken[0].Job != "hi" || broken[1].Job != "a" {
		t.Fatalf("broken = %+v, want [hi a] in admission order", broken)
	}
	if got := l.Snapshot(); len(got.Leases) != 0 || got.Free.TotalGPUs() != 2 {
		t.Errorf("post-blackout snapshot = %+v, want no leases, 2 free", got)
	}
	// Capacity growth never breaks a lease.
	if broken := l.Apply(trace.Event{At: 3 * time.Hour, Zone: zoneA, GPU: core.A100, Delta: 14}); len(broken) != 0 {
		t.Errorf("capacity gain broke leases: %+v", broken)
	}
	// Reclamation clamps at zero like trace replay.
	l.Apply(trace.Event{At: 4 * time.Hour, Zone: zoneA, GPU: core.A100, Delta: -100})
	if got := l.Capacity().TotalGPUs(); got != 0 {
		t.Errorf("capacity after over-reclaim = %d, want 0 (clamped)", got)
	}
}

// TestApplyKeepsHighPriorityAcrossZones: eviction is per-cell feasibility,
// not just totals — a zone loss breaks exactly the leases pinned there.
func TestApplyKeepsHighPriorityAcrossZones(t *testing.T) {
	l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, 8).Set(zoneB, core.A100, 8))
	if err := l.Acquire("inA", 1, flatPlan(zoneA, core.A100, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire("inB", 9, flatPlan(zoneB, core.A100, 2, 4)); err != nil {
		t.Fatal(err)
	}
	// Zone B blacks out: only inB breaks even though it outranks inA.
	broken := l.Apply(trace.Event{At: time.Hour, Zone: zoneB, GPU: core.A100, Delta: -8})
	if len(broken) != 1 || broken[0].Job != "inB" {
		t.Fatalf("broken = %+v, want exactly inB", broken)
	}
	if !l.Held("inA") {
		t.Error("zone-A lease must survive a zone-B outage")
	}
}

// TestLedgerDeterminism: two ledgers fed the same operation sequence agree
// exactly — version, snapshots, and eviction lists.
func TestLedgerDeterminism(t *testing.T) {
	run := func() (Snapshot, [][]Lease) {
		l := NewLedger(cluster.NewPool())
		var evictions [][]Lease
		rng := rand.New(rand.NewSource(7))
		for step := 0; step < 200; step++ {
			switch rng.Intn(4) {
			case 0, 1:
				z := []core.Zone{zoneA, zoneB}[rng.Intn(2)]
				delta := rng.Intn(9) - 3
				evictions = append(evictions,
					l.Apply(trace.Event{At: time.Duration(step) * time.Minute, Zone: z, GPU: core.A100, Delta: delta}))
			case 2:
				job := fmt.Sprintf("j%d", rng.Intn(6))
				z := []core.Zone{zoneA, zoneB}[rng.Intn(2)]
				plan := flatPlan(z, core.A100, 1+rng.Intn(2), 1+rng.Intn(3))
				_, _ = l.Install(job, rng.Intn(3), plan)
			case 3:
				l.Release(fmt.Sprintf("j%d", rng.Intn(6)))
			}
			if err := l.CheckInvariant(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		return l.Snapshot(), evictions
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1.Version != s2.Version || s1.Capacity.String() != s2.Capacity.String() ||
		s1.Free.String() != s2.Free.String() || fmt.Sprintf("%+v", s1.Leases) != fmt.Sprintf("%+v", s2.Leases) {
		t.Errorf("replayed ledgers diverged:\n%+v\nvs\n%+v", s1, s2)
	}
	if fmt.Sprintf("%+v", e1) != fmt.Sprintf("%+v", e2) {
		t.Error("replayed eviction sequences diverged")
	}
}

// TestLedgerPropertyRandom is the dedicated ledger property test of the
// safety invariant: under a long random mix of grants, releases, resizes,
// availability events, and cap mutations (demand autoscaling), the sum of
// leased capacity never exceeds fleet capacity at any step, every eviction
// list is sorted in admission order, no lease exceeds the cap in force,
// and the free view plus leases always re-adds to capacity.
func TestLedgerPropertyRandom(t *testing.T) {
	checkEvictionOrder := func(t *testing.T, seed int64, step int, broken []Lease) {
		t.Helper()
		for i := 1; i < len(broken); i++ {
			a, b := broken[i-1], broken[i]
			if a.Priority < b.Priority || (a.Priority == b.Priority && a.Job >= b.Job) {
				t.Fatalf("seed %d step %d: eviction order broken: %+v", seed, step, broken)
			}
		}
	}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, rng.Intn(20)))
		capInForce := 0 // 0 = unlimited, mirroring SetJobCap semantics
		for step := 0; step < 500; step++ {
			job := fmt.Sprintf("j%d", rng.Intn(8))
			z := []core.Zone{zoneA, zoneB}[rng.Intn(2)]
			switch rng.Intn(6) {
			case 0, 1:
				broken := l.Apply(trace.Event{At: time.Duration(step) * time.Second,
					Zone: z, GPU: core.A100, Delta: rng.Intn(13) - 6})
				checkEvictionOrder(t, seed, step, broken)
			case 2:
				_, _ = l.Install(job, rng.Intn(4), flatPlan(z, core.A100, 1+rng.Intn(3), 1+rng.Intn(4)))
			case 3:
				if l.Held(job) {
					_ = l.Resize(job, flatPlan(z, core.A100, 1+rng.Intn(2), 1+rng.Intn(4)))
				}
			case 4:
				l.Release(job)
			case 5:
				capInForce = rng.Intn(9) // 0 = back to unlimited
				evicted := l.SetJobCap(capInForce)
				checkEvictionOrder(t, seed, step, evicted)
				if capInForce > 0 {
					for _, le := range evicted {
						if le.GPUs() <= capInForce {
							t.Fatalf("seed %d step %d: cap %d evicted a fitting lease %+v",
								seed, step, capInForce, le)
						}
					}
				}
			}
			if err := l.CheckInvariant(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			snap := l.Snapshot()
			leased := 0
			for _, le := range snap.Leases {
				leased += le.GPUs()
				if capInForce > 0 && le.GPUs() > capInForce {
					t.Fatalf("seed %d step %d: lease %s holds %d GPUs over cap %d",
						seed, step, le.Job, le.GPUs(), capInForce)
				}
			}
			if leased+snap.Free.TotalGPUs() != snap.Capacity.TotalGPUs() {
				t.Fatalf("seed %d step %d: leased %d + free %d != capacity %d",
					seed, step, leased, snap.Free.TotalGPUs(), snap.Capacity.TotalGPUs())
			}
		}
	}
}

// TestLedgerConcurrentSafety hammers one ledger from many goroutines (run
// under -race) and checks the invariant still holds at the end.
func TestLedgerConcurrentSafety(t *testing.T) {
	l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, 32))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			job := fmt.Sprintf("job-%d", g)
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					_, _ = l.Install(job, g, flatPlan(zoneA, core.A100, 1, 1+g%4))
				case 1:
					_ = l.Apply(trace.Event{Zone: zoneA, GPU: core.A100, Delta: []int{-2, 2}[(i/4)%2]})
				case 2:
					_ = l.FreeView().TotalGPUs() + l.ViewFor(job).TotalGPUs()
				case 3:
					l.Release(job)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if l.Version() == 0 {
		t.Error("version never advanced")
	}
}

// TestViewForTypes pins the type-filtered view: the free view restricted
// to a job's plannable GPU types, with the per-job cap applied after the
// filter so the cap budget is spent on usable cells only.
func TestViewForTypes(t *testing.T) {
	l := NewLedger(cluster.NewPool().
		Set(zoneA, core.A100, 8).
		Set(zoneA, core.V100, 6).
		Set(zoneB, core.A100, 4))
	if _, err := l.Install("tenant", 1, flatPlan(zoneA, core.A100, 1, 2)); err != nil {
		t.Fatal(err)
	}

	// No filter: the full free view minus the other tenant's lease.
	all := l.ViewForTypes("other", nil)
	if got := all.Available(zoneA, core.A100); got != 6 {
		t.Errorf("unfiltered A100 in zoneA = %d, want 6", got)
	}
	if got := all.Available(zoneA, core.V100); got != 6 {
		t.Errorf("unfiltered V100 in zoneA = %d, want 6", got)
	}

	// Filtered to V100: A100 cells disappear entirely.
	v := l.ViewForTypes("other", []core.GPUType{core.V100})
	if got := v.Available(zoneA, core.V100); got != 6 {
		t.Errorf("filtered V100 in zoneA = %d, want 6", got)
	}
	if got := v.Available(zoneA, core.A100); got != 0 {
		t.Errorf("filtered view leaks %d A100s", got)
	}

	// The job's own lease counts as free for its own view.
	own := l.ViewForTypes("tenant", []core.GPUType{core.A100})
	if got := own.Available(zoneA, core.A100); got != 8 {
		t.Errorf("own view A100 in zoneA = %d, want 8", got)
	}

	// Cap applies after the filter: a 3-GPU cap on a V100-only view caps
	// the usable cells, not the (filtered-away) A100 capacity.
	l.SetJobCap(3)
	capped := l.ViewForTypes("other", []core.GPUType{core.V100})
	if got := capped.TotalGPUs(); got != 3 {
		t.Errorf("capped filtered view = %d GPUs, want 3", got)
	}
}

// TestCheckInvariantViolation: a lease mutated behind the ledger's back is
// named by CheckInvariant (the replay harnesses' per-step assertion).
func TestCheckInvariantViolation(t *testing.T) {
	l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, 4))
	if _, err := l.Install("greedy", 1, flatPlan(zoneA, core.A100, 1, 4)); err != nil {
		t.Fatal(err)
	}
	// Shrink capacity below the lease without going through Apply's
	// eviction path: the invariant re-derivation must catch it.
	l.capacity = cluster.NewPool().Set(zoneA, core.A100, 2)
	err := l.CheckInvariant()
	if err == nil || !strings.Contains(err.Error(), "greedy") {
		t.Fatalf("CheckInvariant = %v, want violation naming the lease", err)
	}
}
