package fleet

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/trace"
)

// TestObserverOrderAndReplay: the observer sees every version-bumping
// mutation in exact version order, and replaying those ops onto a ledger
// restored from a snapshot reproduces the lease table and version
// trajectory bit for bit — the contract the persist journal is built on.
func TestObserverOrderAndReplay(t *testing.T) {
	l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, 16))
	base := l.Snapshot()

	var ops []Op
	l.SetObserver(func(op Op) { ops = append(ops, op) })

	if _, err := l.Install("a", 2, flatPlan(zoneA, core.A100, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Install("b", 1, flatPlan(zoneA, core.A100, 2, 4)); err != nil {
		t.Fatal(err)
	}
	l.SetJobCap(8)
	// Shrink the fleet: evicts b (lowest priority) inside the same Apply op.
	l.Apply(trace.Event{Zone: zoneA, GPU: core.A100, Delta: -8})
	if !l.Release("a") {
		t.Fatal("Release(a) = false")
	}
	// A failed grant must emit nothing.
	if err := l.Acquire("c", 0, flatPlan(zoneA, core.A100, 9, 4)); err == nil {
		t.Fatal("oversized acquire must fail")
	}

	wantKinds := []OpKind{OpInstall, OpInstall, OpSetCap, OpApply, OpRelease}
	if len(ops) != len(wantKinds) {
		t.Fatalf("observer saw %d ops, want %d: %+v", len(ops), len(wantKinds), ops)
	}
	for i, op := range ops {
		if op.Kind != wantKinds[i] {
			t.Errorf("op %d kind = %v, want %v", i, op.Kind, wantKinds[i])
		}
		if op.Version != base.Version+uint64(i)+1 {
			t.Errorf("op %d version = %d, want contiguous %d", i, op.Version, base.Version+uint64(i)+1)
		}
	}

	// Replay the ops onto a ledger restored from the pre-mutation snapshot.
	restored, err := FromSnapshot(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		switch op.Kind {
		case OpInstall:
			if _, err := restored.Install(op.Job, op.Priority, op.Plan); err != nil {
				t.Fatalf("replay install %q: %v", op.Job, err)
			}
		case OpRelease:
			if !restored.Release(op.Job) {
				t.Fatalf("replay release %q dropped nothing", op.Job)
			}
		case OpApply:
			restored.Apply(op.Event)
		case OpSetCap:
			restored.SetJobCap(op.JobCap)
		}
		if got := restored.Version(); got != op.Version {
			t.Fatalf("replay diverged: version %d after %v, want %d", got, op.Kind, op.Version)
		}
	}
	if got, want := restored.Snapshot(), l.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("replayed snapshot diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestObserverSilentOnFailedMutations: every mutation error path leaves
// the version untouched and emits no op. The persist journal records ops
// verbatim, so a failed mutation leaking an op would replay a grant that
// never happened and fork recovery from the live ledger.
func TestObserverSilentOnFailedMutations(t *testing.T) {
	l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, 8))
	l.SetJobCap(6)
	acquired, err := l.Install("a", 1, flatPlan(zoneA, core.A100, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// A newer grant invalidates the first token, making it stale below.
	// a now holds 4 of 8 GPUs: 4 free, per-job cap 6.
	if _, err := l.Install("a", 1, flatPlan(zoneA, core.A100, 1, 4)); err != nil {
		t.Fatal(err)
	}

	var ops []Op
	l.SetObserver(func(op Op) { ops = append(ops, op) })
	ver := l.Version()

	fits := flatPlan(zoneA, core.A100, 1, 2)
	cases := []struct {
		name string
		call func() error
	}{
		{"acquire duplicate", func() error { return l.Acquire("a", 1, fits) }},
		{"acquire empty job", func() error { return l.Acquire("", 1, fits) }},
		{"acquire empty plan", func() error { return l.Acquire("b", 1, core.Plan{}) }},
		{"acquire over job cap", func() error { return l.Acquire("b", 1, flatPlan(zoneA, core.A100, 1, 7)) }},
		{"acquire conflict", func() error { return l.Acquire("b", 1, flatPlan(zoneA, core.A100, 1, 5)) }},
		{"resize unheld", func() error { return l.Resize("ghost", fits) }},
		{"install conflict", func() error { _, err := l.Install("b", 1, flatPlan(zoneA, core.A100, 1, 5)); return err }},
		{"release unheld", func() error {
			if l.Release("ghost") {
				return fmt.Errorf("Release(ghost) = true")
			}
			return nil
		}},
		{"release-if stale token", func() error {
			if l.ReleaseIf("a", acquired) {
				return fmt.Errorf("ReleaseIf with stale token dropped the newer lease")
			}
			return nil
		}},
	}
	for _, tc := range cases {
		switch err := tc.call(); tc.name {
		case "release unheld", "release-if stale token":
			if err != nil {
				t.Errorf("%s: %v", tc.name, err)
			}
		default:
			if err == nil {
				t.Errorf("%s: mutation succeeded, want error", tc.name)
			}
		}
		if len(ops) != 0 {
			t.Fatalf("%s: observer saw %+v, want nothing", tc.name, ops)
		}
		if got := l.Version(); got != ver {
			t.Fatalf("%s: version %d, want unchanged %d", tc.name, got, ver)
		}
	}
	// The ledger is still live after the gauntlet: the next grant emits
	// exactly one op at the next contiguous version.
	if err := l.Acquire("b", 1, fits); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].Kind != OpInstall || ops[0].Version != ver+1 {
		t.Fatalf("post-gauntlet grant ops = %+v, want one OpInstall at version %d", ops, ver+1)
	}
}

// TestFromSnapshotRoundTrip: Snapshot → FromSnapshot → Snapshot is the
// identity, including version, cap, and the Acquired version of each lease.
func TestFromSnapshotRoundTrip(t *testing.T) {
	l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneB, core.V100, 8))
	l.SetJobCap(8)
	if _, err := l.Install("a", 2, flatPlan(zoneA, core.A100, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Install("b", 1, flatPlan(zoneB, core.V100, 1, 4)); err != nil {
		t.Fatal(err)
	}
	want := l.Snapshot()
	restored, err := FromSnapshot(want)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
	// The restored ledger is live: the next grant gets version Version+1.
	if _, err := restored.Install("c", 0, flatPlan(zoneA, core.A100, 1, 4)); err != nil {
		t.Fatal(err)
	}
	if got := restored.Version(); got != want.Version+1 {
		t.Errorf("post-restore version = %d, want %d", got, want.Version+1)
	}
}

// TestFromSnapshotRejects: corrupted snapshots fail loudly by name.
func TestFromSnapshotRejects(t *testing.T) {
	l := NewLedger(cluster.NewPool().Set(zoneA, core.A100, 8))
	if _, err := l.Install("a", 1, flatPlan(zoneA, core.A100, 1, 4)); err != nil {
		t.Fatal(err)
	}
	ok := l.Snapshot()
	cases := []struct {
		name   string
		mutate func(*Snapshot)
		want   string
	}{
		{"nil capacity", func(s *Snapshot) { s.Capacity = nil }, "no capacity"},
		{"empty job", func(s *Snapshot) { s.Leases[0].Job = "" }, "empty job"},
		{"duplicate lease", func(s *Snapshot) { s.Leases = append(s.Leases, s.Leases[0]) }, "two leases"},
		{"future acquire", func(s *Snapshot) { s.Leases[0].Acquired = s.Version + 1 }, "after snapshot version"},
		{"over cap", func(s *Snapshot) { s.JobCap = 1 }, "over the per-job cap"},
		{"over capacity", func(s *Snapshot) { s.Capacity = cluster.NewPool().Set(zoneA, core.A100, 1) }, "invariant"},
	}
	for _, tc := range cases {
		s := ok
		s.Leases = append([]Lease(nil), ok.Leases...)
		tc.mutate(&s)
		if _, err := FromSnapshot(s); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
