package chaos

// The Injector: one counting, matching, logging core shared by every
// wrapper it hands out. All operation counters advance under one mutex in
// the order the wrapped I/O happens, every firing draws its randomness
// (random offsets, random delays) from the injector's single seeded
// source, and every firing appends one Event to the fault log — so a
// deterministic workload over a given schedule produces a byte-identical
// MarshalLog, the replayability the chaos e2e pins.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/persist"
)

// Event is one fault firing, in firing order. It carries no wall-clock
// fields, so logs compare byte-for-byte across runs and worker counts.
type Event struct {
	// Seq numbers firings from 1.
	Seq int `json:"seq"`
	// Rule is the fault's ID in the schedule.
	Rule string `json:"rule"`
	// Action, Target, Side, Conn, Op locate the firing (Rule's coordinates).
	Action string `json:"action"`
	Target string `json:"target"`
	Side   string `json:"side,omitempty"`
	Conn   int    `json:"conn,omitempty"`
	Op     string `json:"op,omitempty"`
	// N is the operation index (1-based) that fired.
	N int `json:"n"`
	// Detail describes the outcome, e.g. "cut after 5 bytes".
	Detail string `json:"detail,omitempty"`
}

// Counters is a snapshot of the injector's operation counts — harnesses
// read these between phases to compute the Nth indices of a schedule.
type Counters struct {
	// ClientConns counts connections handed to WrapConn.
	ClientConns int `json:"client_conns"`
	// Accepts counts listener accepts, refused ones included.
	Accepts int `json:"accepts"`
	// Appends and Syncs count journal operations across all generations.
	Appends int `json:"appends"`
	Syncs   int `json:"syncs"`
}

// Injector arms a schedule over the I/O seams it is asked to wrap. A nil
// schedule yields a pure pass-through that still counts operations, which
// is how harnesses discover the coordinates for the schedule they build.
// All methods are safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	faults []Rule
	rng    *rand.Rand
	ctr    Counters
	log    []Event
}

// NewInjector validates and arms a schedule (nil = pass-through counter).
func NewInjector(s *Schedule) (*Injector, error) {
	seed := uint64(1)
	var faults []Rule
	if s != nil {
		norm, err := normalize(s)
		if err != nil {
			return nil, err
		}
		faults = norm.Faults
		if norm.Seed != 0 {
			seed = norm.Seed
		}
	}
	return &Injector{faults: faults, rng: rand.New(rand.NewSource(int64(seed)))}, nil
}

// firing is one matched rule with its randomness already resolved.
type firing struct {
	rule   Rule
	offset int
	delay  time.Duration
}

// fire advances the (target, side, conn, op) operation counter to n (the
// caller computed n under the same lock) and matches rules in declaration
// order. On a match it resolves offsets/delays against opLen and logs the
// event; a miss returns nil.
func (in *Injector) fire(target, side string, conn int, op string, n, opLen int) *firing {
	for _, r := range in.faults {
		if r.Target != target || r.Side != side || r.Conn != conn || r.Op != op {
			continue
		}
		if n < r.Nth || n >= r.Nth+r.Count {
			continue
		}
		f := &firing{rule: r}
		detail := ""
		switch r.Action {
		case ActionCut, ActionFail:
			f.offset = r.OffsetBytes
			if f.offset == -1 {
				f.offset = in.rng.Intn(opLen + 1)
			}
			if f.offset > opLen {
				f.offset = opLen
			}
			// The operation's byte length stays out of the detail: reply
			// frames carry wall-clock fields whose encoded width varies run
			// to run, and the fault log must stay byte-identical.
			detail = fmt.Sprintf("%s after %d bytes", r.Action, f.offset)
		case ActionDelay:
			ms := r.DelayMS
			if ms == -1 {
				ms = 1 + in.rng.Intn(10)
			}
			f.delay = time.Duration(ms) * time.Millisecond
			detail = fmt.Sprintf("delayed %dms", ms)
		case ActionRefuse:
			detail = "accept refused"
		}
		in.log = append(in.log, Event{
			Seq:    len(in.log) + 1,
			Rule:   r.ID,
			Action: r.Action,
			Target: target,
			Side:   side,
			Conn:   conn,
			Op:     op,
			N:      n,
			Detail: detail,
		})
		return f
	}
	return nil
}

// Counters snapshots the operation counts.
func (in *Injector) Counters() Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ctr
}

// Log returns a copy of the fault log in firing order.
func (in *Injector) Log() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.log))
	copy(out, in.log)
	return out
}

// MarshalLog encodes the fault log deterministically (two-space indent,
// trailing newline): same schedule + seed + workload ⇒ identical bytes.
func (in *Injector) MarshalLog() ([]byte, error) {
	events := in.Log()
	if events == nil {
		events = []Event{}
	}
	doc, err := json.MarshalIndent(events, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: marshal fault log: %w", err)
	}
	return append(doc, '\n'), nil
}

// WrapConn wraps a client-side connection; connections are numbered 1, 2,
// ... in wrapping order, the coordinate conn rules with side "client" use.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	in.mu.Lock()
	in.ctr.ClientConns++
	idx := in.ctr.ClientConns
	in.mu.Unlock()
	return &faultConn{Conn: c, in: in, side: SideClient, idx: idx}
}

// WrapListener wraps a listener: accepts are counted (the coordinate
// listener rules use), refused accepts are closed immediately, and every
// surviving connection comes back wrapped with side "server" and the
// accept index as its conn number.
func (in *Injector) WrapListener(l net.Listener) net.Listener {
	return &faultListener{Listener: l, in: in}
}

// WrapJournal wraps one journal generation; its signature matches
// persist.Config.WrapJournal so an injector plugs straight in.
func (in *Injector) WrapJournal(gen uint64, f persist.JournalFile) persist.JournalFile {
	return &faultJournal{f: f, in: in}
}

// faultConn counts reads and writes on one wrapped connection and fires
// cut/delay rules at their scheduled indices.
type faultConn struct {
	net.Conn
	in     *Injector
	side   string
	idx    int
	reads  int
	writes int
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.in.mu.Lock()
	c.writes++
	f := c.in.fire(TargetConn, c.side, c.idx, OpWrite, c.writes, len(p))
	c.in.mu.Unlock()
	if f == nil {
		return c.Conn.Write(p)
	}
	switch f.rule.Action {
	case ActionDelay:
		time.Sleep(f.delay)
		return c.Conn.Write(p)
	default: // cut
		n := 0
		if f.offset > 0 {
			n, _ = c.Conn.Write(p[:f.offset])
		}
		c.Conn.Close()
		return n, fmt.Errorf("chaos: %s conn %d write cut by rule %q (%d/%d bytes)", c.side, c.idx, f.rule.ID, n, len(p))
	}
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.in.mu.Lock()
	c.reads++
	f := c.in.fire(TargetConn, c.side, c.idx, OpRead, c.reads, len(p))
	c.in.mu.Unlock()
	if f == nil {
		return c.Conn.Read(p)
	}
	switch f.rule.Action {
	case ActionDelay:
		time.Sleep(f.delay)
		return c.Conn.Read(p)
	default: // cut
		c.Conn.Close()
		return 0, fmt.Errorf("chaos: %s conn %d read cut by rule %q", c.side, c.idx, f.rule.ID)
	}
}

// faultListener refuses scheduled accepts and wraps the rest.
type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.in.mu.Lock()
		l.in.ctr.Accepts++
		idx := l.in.ctr.Accepts
		f := l.in.fire(TargetListener, "", 0, OpAccept, idx, 0)
		l.in.mu.Unlock()
		if f != nil { // refuse
			c.Close()
			continue
		}
		return &faultConn{Conn: c, in: l.in, side: SideServer, idx: idx}, nil
	}
}

// faultJournal fails or delays scheduled appends and syncs; a failed
// append with a positive offset leaves a torn frame on disk, exactly the
// tail shape recovery must truncate.
type faultJournal struct {
	f  persist.JournalFile
	in *Injector
}

func (j *faultJournal) Write(p []byte) (int, error) {
	j.in.mu.Lock()
	j.in.ctr.Appends++
	f := j.in.fire(TargetJournal, "", 0, OpAppend, j.in.ctr.Appends, len(p))
	j.in.mu.Unlock()
	if f == nil {
		return j.f.Write(p)
	}
	switch f.rule.Action {
	case ActionDelay:
		time.Sleep(f.delay)
		return j.f.Write(p)
	default: // fail
		n := 0
		if f.offset > 0 {
			n, _ = j.f.Write(p[:f.offset])
		}
		return n, fmt.Errorf("chaos: journal append failed by rule %q (%d/%d bytes)", f.rule.ID, n, len(p))
	}
}

func (j *faultJournal) Sync() error {
	j.in.mu.Lock()
	j.in.ctr.Syncs++
	f := j.in.fire(TargetJournal, "", 0, OpSync, j.in.ctr.Syncs, 0)
	j.in.mu.Unlock()
	if f == nil {
		return j.f.Sync()
	}
	switch f.rule.Action {
	case ActionDelay:
		time.Sleep(f.delay)
		return j.f.Sync()
	default: // fail
		return fmt.Errorf("chaos: journal sync failed by rule %q", f.rule.ID)
	}
}

func (j *faultJournal) Close() error { return j.f.Close() }
