package chaos

import (
	"bytes"
	"io"
	"net"
	"repro/internal/wire"
	"strings"
	"testing"
)

// sched builds a valid schedule around the given faults.
func sched(faults ...Rule) *Schedule {
	return &Schedule{Name: "test", Seed: 7, Faults: faults}
}

func mustInjector(t *testing.T, s *Schedule) *Injector {
	t.Helper()
	in, err := NewInjector(s)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	return in
}

// tcpPair returns a connected loopback pair (client, server).
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := lis.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestScheduleRoundTrip(t *testing.T) {
	s := &Schedule{
		Name:        "storm",
		Description: "cuts and journal faults",
		Seed:        42,
		Faults: []Rule{
			{ID: "cut-1", Target: TargetConn, Conn: 1, Nth: 3, Action: ActionCut, OffsetBytes: 5},
			{ID: "refuse-1", Target: TargetListener, Nth: 2, Action: ActionRefuse},
			{ID: "j-fail", Target: TargetJournal, Nth: 4, Count: 2, Action: ActionFail, OffsetBytes: -1},
			{ID: "slow", Target: TargetConn, Side: SideServer, Conn: 2, Op: OpRead, Nth: 1, Action: ActionDelay, DelayMS: 3},
		},
	}
	doc, err := Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(doc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	// Normalization filled defaults.
	if got.Faults[0].Side != SideClient || got.Faults[0].Op != OpWrite || got.Faults[0].Count != 1 {
		t.Fatalf("conn rule not normalized: %+v", got.Faults[0])
	}
	if got.Faults[1].Op != OpAccept || got.Faults[2].Op != OpAppend {
		t.Fatalf("default ops not filled: %+v %+v", got.Faults[1], got.Faults[2])
	}
	doc2, err := Marshal(got)
	if err != nil {
		t.Fatalf("re-Marshal: %v", err)
	}
	if !bytes.Equal(doc, doc2) {
		t.Fatalf("canonical encoding not a fixed point:\n%s\nvs\n%s", doc, doc2)
	}
}

func TestScheduleValidation(t *testing.T) {
	cases := []struct {
		name string
		s    *Schedule
		want string
	}{
		{"no name", &Schedule{}, "no name"},
		{"no id", sched(Rule{Target: TargetConn, Conn: 1, Nth: 1, Action: ActionCut}), "no id"},
		{"dup id", sched(
			Rule{ID: "a", Target: TargetConn, Conn: 1, Nth: 1, Action: ActionCut},
			Rule{ID: "a", Target: TargetConn, Conn: 2, Nth: 1, Action: ActionCut},
		), "duplicate"},
		{"bad nth", sched(Rule{ID: "a", Target: TargetConn, Conn: 1, Nth: 0, Action: ActionCut}), "1-based"},
		{"bad count", sched(Rule{ID: "a", Target: TargetConn, Conn: 1, Nth: 1, Count: -2, Action: ActionCut}), "negative count"},
		{"bad offset", sched(Rule{ID: "a", Target: TargetConn, Conn: 1, Nth: 1, Action: ActionCut, OffsetBytes: -2}), "offset_bytes"},
		{"bad target", sched(Rule{ID: "a", Target: "disk", Nth: 1, Action: ActionCut}), "target"},
		{"bad side", sched(Rule{ID: "a", Target: TargetConn, Side: "middle", Conn: 1, Nth: 1, Action: ActionCut}), "side"},
		{"no conn idx", sched(Rule{ID: "a", Target: TargetConn, Nth: 1, Action: ActionCut}), "conn 0"},
		{"bad conn op", sched(Rule{ID: "a", Target: TargetConn, Conn: 1, Op: OpAccept, Nth: 1, Action: ActionCut}), "op"},
		{"bad conn action", sched(Rule{ID: "a", Target: TargetConn, Conn: 1, Nth: 1, Action: ActionRefuse}), "action"},
		{"listener with conn", sched(Rule{ID: "a", Target: TargetListener, Conn: 1, Nth: 1, Action: ActionRefuse}), "no side or conn"},
		{"listener bad op", sched(Rule{ID: "a", Target: TargetListener, Op: OpWrite, Nth: 1, Action: ActionRefuse}), "op"},
		{"listener bad action", sched(Rule{ID: "a", Target: TargetListener, Nth: 1, Action: ActionCut}), "action"},
		{"journal with side", sched(Rule{ID: "a", Target: TargetJournal, Side: SideClient, Nth: 1, Action: ActionFail}), "no side or conn"},
		{"journal bad op", sched(Rule{ID: "a", Target: TargetJournal, Op: OpWrite, Nth: 1, Action: ActionFail}), "op"},
		{"journal bad action", sched(Rule{ID: "a", Target: TargetJournal, Nth: 1, Action: ActionRefuse}), "action"},
		{"sync offset", sched(Rule{ID: "a", Target: TargetJournal, Op: OpSync, Nth: 1, Action: ActionFail, OffsetBytes: 3}), "offset_bytes on a sync"},
		{"bad delay", sched(Rule{ID: "a", Target: TargetConn, Conn: 1, Nth: 1, Action: ActionDelay, DelayMS: -3}), "delay_ms"},
		{"delay on cut", sched(Rule{ID: "a", Target: TargetConn, Conn: 1, Nth: 1, Action: ActionCut, DelayMS: 2}), "delay_ms on a non-delay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Marshal(tc.s); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Marshal error %v, want substring %q", err, tc.want)
			}
			if _, err := NewInjector(tc.s); err == nil {
				t.Fatalf("NewInjector accepted invalid schedule")
			}
		})
	}
	if _, err := Marshal(nil); err == nil {
		t.Fatal("Marshal(nil) succeeded")
	}
}

func TestUnmarshalRejectsForeignDocuments(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"not json", "nope", "decode envelope"},
		{"bad version", `{"v":9,"kind":"fault-schedule","body":{}}`, "schema version"},
		{"bad kind", `{"v":1,"kind":"trace","body":{}}`, "kind"},
		{"unknown field", `{"v":1,"kind":"fault-schedule","body":{"name":"x","seed":1,"faults":[],"extra":1}}`, "decode schedule body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Unmarshal([]byte(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Unmarshal error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestConnWriteCut(t *testing.T) {
	in := mustInjector(t, sched(
		Rule{ID: "cut", Target: TargetConn, Conn: 1, Nth: 2, Action: ActionCut, OffsetBytes: 3},
	))
	client, server := tcpPair(t)
	wrapped := in.WrapConn(client)

	if _, err := wrapped.Write([]byte("hello")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	n, err := wrapped.Write([]byte("world"))
	if err == nil || !strings.Contains(err.Error(), `cut by rule "cut"`) {
		t.Fatalf("write 2 error %v, want cut", err)
	}
	if n != 3 {
		t.Fatalf("cut let %d bytes through, want 3", n)
	}
	// The peer sees exactly the first frame plus the torn prefix.
	got, _ := io.ReadAll(server)
	if string(got) != "hellowor" {
		t.Fatalf("peer read %q, want %q", got, "hellowor")
	}
	// The connection is dead for later writes too.
	if _, err := wrapped.Write([]byte("x")); err == nil {
		t.Fatal("write after cut succeeded")
	}
	ev := in.Log()
	if len(ev) != 1 || ev[0].Rule != "cut" || ev[0].N != 2 || ev[0].Detail != "cut after 3 bytes" {
		t.Fatalf("fault log %+v", ev)
	}
}

func TestConnReadCutAndDelay(t *testing.T) {
	in := mustInjector(t, sched(
		Rule{ID: "slow", Target: TargetConn, Conn: 1, Op: OpRead, Nth: 1, Action: ActionDelay, DelayMS: 1},
		Rule{ID: "rcut", Target: TargetConn, Conn: 1, Op: OpRead, Nth: 2, Action: ActionCut},
	))
	client, server := tcpPair(t)
	wrapped := in.WrapConn(client)
	go server.Write([]byte("ab"))

	buf := make([]byte, 1)
	if _, err := io.ReadFull(wrapped, buf); err != nil || buf[0] != 'a' {
		t.Fatalf("delayed read: %v %q", err, buf)
	}
	if _, err := wrapped.Read(buf); err == nil || !strings.Contains(err.Error(), `read cut by rule "rcut"`) {
		t.Fatalf("read 2 error %v, want cut", err)
	}
	ev := in.Log()
	if len(ev) != 2 || ev[0].Rule != "slow" || ev[0].Detail != "delayed 1ms" || ev[1].Rule != "rcut" {
		t.Fatalf("fault log %+v", ev)
	}
}

func TestListenerRefuseAndServerConnIndexing(t *testing.T) {
	in := mustInjector(t, sched(
		Rule{ID: "refuse", Target: TargetListener, Nth: 1, Action: ActionRefuse},
		Rule{ID: "scut", Target: TargetConn, Side: SideServer, Conn: 2, Op: OpWrite, Nth: 1, Action: ActionCut},
	))
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := in.WrapListener(lis)
	defer wrapped.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			t.Error(err)
			accepted <- nil
			return
		}
		accepted <- c
	}()

	// Dial 1 is refused: the TCP handshake completes (the kernel accepted)
	// but the conn is closed immediately — a read sees EOF.
	c1, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Read(make([]byte, 1)); err == nil {
		t.Fatal("refused conn delivered data")
	}

	// Dial 2 survives and is wrapped as server conn 2: its first write cuts.
	c2, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	sc := <-accepted
	if sc == nil {
		t.Fatal("no accepted conn")
	}
	if _, err := sc.Write([]byte("reply")); err == nil || !strings.Contains(err.Error(), `server conn 2 write cut`) {
		t.Fatalf("server write error %v, want cut", err)
	}
	if got := in.Counters().Accepts; got != 2 {
		t.Fatalf("accepts %d, want 2", got)
	}
}

// memJournal is an in-memory persist.JournalFile recording writes.
type memJournal struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memJournal) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memJournal) Sync() error                 { m.syncs++; return nil }
func (m *memJournal) Close() error                { m.closed = true; return nil }

func TestJournalFaults(t *testing.T) {
	in := mustInjector(t, sched(
		Rule{ID: "torn", Target: TargetJournal, Nth: 2, Action: ActionFail, OffsetBytes: 4},
		Rule{ID: "lag", Target: TargetJournal, Nth: 3, Action: ActionDelay, DelayMS: 1},
		Rule{ID: "nosync", Target: TargetJournal, Op: OpSync, Nth: 2, Action: ActionFail},
	))
	mem := &memJournal{}
	j := in.WrapJournal(1, mem)

	if _, err := j.Write([]byte("record-1")); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	n, err := j.Write([]byte("record-2"))
	if err == nil || !strings.Contains(err.Error(), `rule "torn"`) {
		t.Fatalf("append 2 error %v, want fail", err)
	}
	if n != 4 || mem.buf.String() != "record-1reco" {
		t.Fatalf("torn append wrote %d bytes, file %q", n, mem.buf.String())
	}
	if _, err := j.Write([]byte("record-3")); err != nil {
		t.Fatalf("delayed append 3: %v", err)
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := j.Sync(); err == nil || !strings.Contains(err.Error(), `rule "nosync"`) {
		t.Fatalf("sync 2 error %v, want fail", err)
	}
	if err := j.Close(); err != nil || !mem.closed {
		t.Fatalf("close: %v (closed=%v)", err, mem.closed)
	}
	if c := in.Counters(); c.Appends != 3 || c.Syncs != 2 {
		t.Fatalf("counters %+v", c)
	}
}

func TestFaultLogDeterminism(t *testing.T) {
	// Random offsets and delays (-1) resolve from the schedule seed, so two
	// injectors running the same operation sequence log identical bytes.
	s := sched(
		Rule{ID: "rcut", Target: TargetConn, Conn: 1, Nth: 2, Action: ActionCut, OffsetBytes: -1},
		Rule{ID: "rlag", Target: TargetJournal, Nth: 1, Action: ActionDelay, DelayMS: -1},
	)
	run := func() []byte {
		in := mustInjector(t, s)
		mem := &memJournal{}
		j := in.WrapJournal(1, mem)
		j.Write([]byte("rec"))
		client, server := tcpPair(t)
		defer server.Close()
		w := in.WrapConn(client)
		w.Write([]byte("first"))
		w.Write([]byte("second-frame"))
		doc, err := in.MarshalLog()
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("fault logs differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(string(a), "rcut") || !strings.Contains(string(a), "rlag") {
		t.Fatalf("fault log missing firings:\n%s", a)
	}
}

func TestPassThroughInjector(t *testing.T) {
	in, err := NewInjector(nil)
	if err != nil {
		t.Fatal(err)
	}
	client, server := tcpPair(t)
	w := in.WrapConn(client)
	go server.Write([]byte("pong"))
	if _, err := w.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(w, buf); err != nil || string(buf) != "pong" {
		t.Fatalf("read %q, %v", buf, err)
	}
	doc, err := in.MarshalLog()
	if err != nil || string(doc) != "[]\n" {
		t.Fatalf("empty log %q, %v", doc, err)
	}
	if c := in.Counters(); c.ClientConns != 1 {
		t.Fatalf("counters %+v", c)
	}
}

// TestScheduleVersionLockstep pins the fault-schedule schema to the wire
// schema, like trace files and snapshots: one envelope dialect, versioned
// together.
func TestScheduleVersionLockstep(t *testing.T) {
	if FileVersion != wire.Version {
		t.Fatalf("chaos.FileVersion = %d, wire.Version = %d; the envelope dialects must version together",
			FileVersion, wire.Version)
	}
}
