// Package chaos is the deterministic fault-injection layer of the serving
// stack: a seeded Injector that wraps the three I/O seams a Sailor daemon
// lives on — client and server ends of the rpc transport (net.Conn), the
// accept loop (net.Listener), and the durability journal
// (persist.JournalFile) — and fires scripted faults at exact operation
// indices. Faults are declared in a versioned JSON fault schedule (the same
// self-describing envelope trace files use), so a fault sequence is
// replayable byte-for-byte: the same schedule and seed against the same
// workload produce the identical fault log, which is what lets the chaos
// e2e in package sailor pin "flaky network + failing disk + kill -9" runs
// against the undisturbed golden.
//
// Determinism contract: faults key on operation *counts*, never wall-clock
// or byte offsets into a stream. Client-side request frames pass through
// one buffered Write per call, so "the Nth write on conn K" is a stable
// coordinate; read counts (TCP segmentation) are not, and schedules that
// key on reads are only deterministic against loopback pipes. All
// randomness (cut offsets, delay lengths declared as -1) draws from one
// seeded source in firing order.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// FileVersion is the fault-schedule schema version this build speaks. It
// moves in lockstep with wire.Version (pinned by a test); decoding rejects
// every other version by name.
const FileVersion = 1

// fileKind is the envelope kind of a fault-schedule document.
const fileKind = "fault-schedule"

// Fault targets: which I/O seam a rule arms.
const (
	// TargetConn fires on a wrapped connection's Read/Write calls.
	TargetConn = "conn"
	// TargetListener fires on the wrapped listener's accepts.
	TargetListener = "listener"
	// TargetJournal fires on the wrapped journal's appends and syncs.
	TargetJournal = "journal"
)

// Connection sides: client conns are numbered in WrapConn order, server
// conns carry the accept index that produced them.
const (
	SideClient = "client"
	SideServer = "server"
)

// Operations a rule can intercept.
const (
	OpWrite  = "write"
	OpRead   = "read"
	OpAccept = "accept"
	OpAppend = "append"
	OpSync   = "sync"
)

// Fault actions.
const (
	// ActionCut writes (or reads) OffsetBytes of the operation, then closes
	// the connection mid-frame and fails the call.
	ActionCut = "cut"
	// ActionRefuse accepts then immediately closes an incoming connection.
	ActionRefuse = "refuse"
	// ActionFail fails a journal append (after OffsetBytes of torn frame)
	// or sync, poisoning the store until the next Rotate.
	ActionFail = "fail"
	// ActionDelay sleeps DelayMS before performing the operation normally.
	ActionDelay = "delay"
)

// Rule arms one fault: on the Nth occurrence (1-based) of an operation on
// a target, perform an action, for Count consecutive occurrences.
type Rule struct {
	// ID names the rule in the fault log; unique within a schedule.
	ID string `json:"id"`
	// Target is TargetConn, TargetListener, or TargetJournal.
	Target string `json:"target"`
	// Side (conn only) is SideClient or SideServer; "" means client.
	Side string `json:"side,omitempty"`
	// Conn (conn only) is the 1-based connection index on that side.
	Conn int `json:"conn,omitempty"`
	// Op is the intercepted operation; "" means the target's default
	// (write for conns, accept for listeners, append for journals).
	Op string `json:"op,omitempty"`
	// Nth is the 1-based operation index at which the rule starts firing.
	Nth int `json:"nth"`
	// Count is how many consecutive operations fire; 0 means 1.
	Count int `json:"count,omitempty"`
	// Action is what happens: cut, refuse, fail, or delay.
	Action string `json:"action"`
	// OffsetBytes (cut, append-fail) is how many bytes of the operation go
	// through before the fault; -1 draws a seeded random offset within the
	// buffer.
	OffsetBytes int `json:"offset_bytes,omitempty"`
	// DelayMS (delay) is the sleep in milliseconds; -1 draws a seeded
	// random delay in [1, 10].
	DelayMS int `json:"delay_ms,omitempty"`
}

// Schedule is a named, seeded fault script — the unit Marshal writes and
// sailor-serve -chaos loads.
type Schedule struct {
	// Name identifies the schedule in logs and goldens.
	Name string
	// Description is a one-line summary of the failure story.
	Description string
	// Seed drives every random draw (offsets and delays declared as -1).
	Seed uint64
	// Faults are the armed rules, matched in declaration order.
	Faults []Rule
}

// fileEnvelope mirrors wire.Envelope so chaos stays independent of the
// wire package's import graph.
type fileEnvelope struct {
	V    int             `json:"v"`
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

type fileBody struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Seed        uint64 `json:"seed"`
	Faults      []Rule `json:"faults"`
}

// Marshal encodes a schedule as a canonical versioned JSON document:
// normalized rules (explicit side/op/count), struct fields in declaration
// order, two-space indentation, trailing newline. Equal schedules marshal
// to identical bytes, so schedules commit as goldens and diff meaningfully.
func Marshal(s *Schedule) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("chaos: Marshal: nil schedule")
	}
	norm, err := normalize(s)
	if err != nil {
		return nil, err
	}
	body := fileBody{
		Name:        norm.Name,
		Description: norm.Description,
		Seed:        norm.Seed,
		Faults:      norm.Faults,
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("chaos: Marshal %q: %w", s.Name, err)
	}
	doc, err := json.MarshalIndent(fileEnvelope{V: FileVersion, Kind: fileKind, Body: raw}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: Marshal %q: %w", s.Name, err)
	}
	return append(doc, '\n'), nil
}

// Unmarshal decodes a versioned fault-schedule document, rejecting unknown
// schema versions, kinds, and fields by name, and validating every rule so
// a malformed script fails loudly at the boundary instead of silently
// never firing.
func Unmarshal(data []byte) (*Schedule, error) {
	var env fileEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("chaos: decode envelope: %w", err)
	}
	if env.V != FileVersion {
		return nil, fmt.Errorf("chaos: unsupported fault-schedule schema version %d (this build speaks v%d)", env.V, FileVersion)
	}
	if env.Kind != fileKind {
		return nil, fmt.Errorf("chaos: kind %q, want %q", env.Kind, fileKind)
	}
	dec := json.NewDecoder(bytes.NewReader(env.Body))
	dec.DisallowUnknownFields()
	var body fileBody
	if err := dec.Decode(&body); err != nil {
		return nil, fmt.Errorf("chaos: decode schedule body: %w", err)
	}
	s := &Schedule{Name: body.Name, Description: body.Description, Seed: body.Seed, Faults: body.Faults}
	return normalize(s)
}

// normalize validates a schedule and returns a copy with defaults filled
// in (side, op, count), so the injector and the canonical encoding both
// see fully explicit rules.
func normalize(s *Schedule) (*Schedule, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("chaos: schedule has no name")
	}
	out := &Schedule{Name: s.Name, Description: s.Description, Seed: s.Seed, Faults: make([]Rule, len(s.Faults))}
	seen := map[string]bool{}
	for i, r := range s.Faults {
		if r.ID == "" {
			return nil, fmt.Errorf("chaos: %q fault %d has no id", s.Name, i)
		}
		if seen[r.ID] {
			return nil, fmt.Errorf("chaos: %q has duplicate fault id %q", s.Name, r.ID)
		}
		seen[r.ID] = true
		if r.Nth < 1 {
			return nil, fmt.Errorf("chaos: fault %q: nth %d (operation indices are 1-based)", r.ID, r.Nth)
		}
		if r.Count < 0 {
			return nil, fmt.Errorf("chaos: fault %q: negative count %d", r.ID, r.Count)
		}
		if r.Count == 0 {
			r.Count = 1
		}
		if r.OffsetBytes < -1 {
			return nil, fmt.Errorf("chaos: fault %q: offset_bytes %d (want >= -1)", r.ID, r.OffsetBytes)
		}
		switch r.Target {
		case TargetConn:
			if r.Side == "" {
				r.Side = SideClient
			}
			if r.Side != SideClient && r.Side != SideServer {
				return nil, fmt.Errorf("chaos: fault %q: side %q (want %q or %q)", r.ID, r.Side, SideClient, SideServer)
			}
			if r.Conn < 1 {
				return nil, fmt.Errorf("chaos: fault %q: conn %d (connection indices are 1-based)", r.ID, r.Conn)
			}
			if r.Op == "" {
				r.Op = OpWrite
			}
			if r.Op != OpWrite && r.Op != OpRead {
				return nil, fmt.Errorf("chaos: fault %q: op %q on a conn (want %q or %q)", r.ID, r.Op, OpWrite, OpRead)
			}
			if r.Action != ActionCut && r.Action != ActionDelay {
				return nil, fmt.Errorf("chaos: fault %q: action %q on a conn (want %q or %q)", r.ID, r.Action, ActionCut, ActionDelay)
			}
		case TargetListener:
			if r.Side != "" || r.Conn != 0 {
				return nil, fmt.Errorf("chaos: fault %q: listener rules take no side or conn", r.ID)
			}
			if r.Op == "" {
				r.Op = OpAccept
			}
			if r.Op != OpAccept {
				return nil, fmt.Errorf("chaos: fault %q: op %q on the listener (want %q)", r.ID, r.Op, OpAccept)
			}
			if r.Action != ActionRefuse {
				return nil, fmt.Errorf("chaos: fault %q: action %q on the listener (want %q)", r.ID, r.Action, ActionRefuse)
			}
		case TargetJournal:
			if r.Side != "" || r.Conn != 0 {
				return nil, fmt.Errorf("chaos: fault %q: journal rules take no side or conn", r.ID)
			}
			if r.Op == "" {
				r.Op = OpAppend
			}
			if r.Op != OpAppend && r.Op != OpSync {
				return nil, fmt.Errorf("chaos: fault %q: op %q on the journal (want %q or %q)", r.ID, r.Op, OpAppend, OpSync)
			}
			if r.Action != ActionFail && r.Action != ActionDelay {
				return nil, fmt.Errorf("chaos: fault %q: action %q on the journal (want %q or %q)", r.ID, r.Action, ActionFail, ActionDelay)
			}
			if r.Op == OpSync && r.OffsetBytes != 0 {
				return nil, fmt.Errorf("chaos: fault %q: offset_bytes on a sync fault", r.ID)
			}
		default:
			return nil, fmt.Errorf("chaos: fault %q: target %q (want %q, %q, or %q)", r.ID, r.Target, TargetConn, TargetListener, TargetJournal)
		}
		if r.Action == ActionDelay && r.DelayMS != -1 && r.DelayMS < 1 {
			return nil, fmt.Errorf("chaos: fault %q: delay_ms %d (want >= 1, or -1 for seeded random)", r.ID, r.DelayMS)
		}
		if r.Action != ActionDelay && r.DelayMS != 0 {
			return nil, fmt.Errorf("chaos: fault %q: delay_ms on a non-delay action", r.ID)
		}
		out.Faults[i] = r
	}
	return out, nil
}
