// Package cluster models the resource pool a job can draw from: zones and
// regions, per-type GPU quotas, and point-in-time availability snapshots.
//
// The Sailor planner takes resource quotas (maximum GPUs per type per zone)
// plus current availability feedback and selects an allocation from the pool
// (§4); baselines instead receive a fixed VM topology, which this package
// can also derive.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hardware"
)

// Pool is an immutable-by-convention availability snapshot: how many GPUs of
// each type are currently allocatable in each zone.
type Pool struct {
	counts map[core.Zone]map[core.GPUType]int
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{counts: map[core.Zone]map[core.GPUType]int{}}
}

// Set records that n GPUs of type g are available in zone z.
func (p *Pool) Set(z core.Zone, g core.GPUType, n int) *Pool {
	if p.counts[z] == nil {
		p.counts[z] = map[core.GPUType]int{}
	}
	p.counts[z][g] = n
	return p
}

// Add increments availability of (z, g) by n (n may be negative).
func (p *Pool) Add(z core.Zone, g core.GPUType, n int) *Pool {
	if p.counts[z] == nil {
		p.counts[z] = map[core.GPUType]int{}
	}
	p.counts[z][g] += n
	if p.counts[z][g] < 0 {
		p.counts[z][g] = 0
	}
	return p
}

// Available returns the allocatable GPU count for (z, g).
func (p *Pool) Available(z core.Zone, g core.GPUType) int {
	return p.counts[z][g]
}

// TotalOf returns the pool-wide count of one GPU type.
func (p *Pool) TotalOf(g core.GPUType) int {
	n := 0
	for _, m := range p.counts {
		n += m[g]
	}
	return n
}

// TotalGPUs returns the pool-wide GPU count over all types.
func (p *Pool) TotalGPUs() int {
	n := 0
	for _, m := range p.counts {
		for _, c := range m {
			n += c
		}
	}
	return n
}

// Zones returns all zones with any availability, sorted by name.
func (p *Pool) Zones() []core.Zone {
	zs := make([]core.Zone, 0, len(p.counts))
	for z, m := range p.counts {
		total := 0
		for _, c := range m {
			total += c
		}
		if total > 0 {
			zs = append(zs, z)
		}
	}
	sort.Slice(zs, func(i, j int) bool { return zs[i].Name < zs[j].Name })
	return zs
}

// Regions returns the distinct regions present in the pool, sorted.
func (p *Pool) Regions() []string {
	seen := map[string]bool{}
	for _, z := range p.Zones() {
		seen[z.Region] = true
	}
	rs := make([]string, 0, len(seen))
	for r := range seen {
		rs = append(rs, r)
	}
	sort.Strings(rs)
	return rs
}

// GPUTypes returns the distinct GPU types with nonzero availability, sorted.
func (p *Pool) GPUTypes() []core.GPUType {
	seen := map[core.GPUType]bool{}
	for _, m := range p.counts {
		for g, c := range m {
			if c > 0 {
				seen[g] = true
			}
		}
	}
	ts := make([]core.GPUType, 0, len(seen))
	for t := range seen {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// Entry is one (zone, GPU type, count) availability cell of a pool.
type Entry struct {
	Zone  core.Zone
	GPU   core.GPUType
	Count int
}

// Entries returns the pool's nonzero cells sorted by zone name then GPU
// type — the deterministic iteration order codecs and fingerprints rely on.
// Two pools with equal String() renderings have equal Entries.
func (p *Pool) Entries() []Entry {
	var out []Entry
	for _, z := range p.Zones() {
		m := p.counts[z]
		ts := make([]core.GPUType, 0, len(m))
		for g := range m {
			if m[g] > 0 {
				ts = append(ts, g)
			}
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for _, g := range ts {
			out = append(out, Entry{Zone: z, GPU: g, Count: m[g]})
		}
	}
	return out
}

// Clone returns a deep copy, used by the planner's DP recursion.
func (p *Pool) Clone() *Pool {
	q := NewPool()
	for z, m := range p.counts {
		for g, c := range m {
			q.Set(z, g, c)
		}
	}
	return q
}

// CanFit reports whether the pool can host a plan, and Subtract removes a
// plan's GPUs (used when stacking jobs or replaying availability changes).
func (p *Pool) CanFit(plan core.Plan) bool {
	need := planDemand(plan)
	for k, n := range need {
		if p.Available(k.z, k.g) < n {
			return false
		}
	}
	return true
}

// Subtract removes a plan's GPU demand from the pool. It returns an error
// naming the first deficient cell (in zone-then-GPU order, so the message
// is deterministic) when the plan does not fit, leaving the pool untouched.
func (p *Pool) Subtract(plan core.Plan) error {
	need := planDemand(plan)
	keys := make([]demandKey, 0, len(need))
	for k := range need {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].z.Name != keys[j].z.Name {
			return keys[i].z.Name < keys[j].z.Name
		}
		return keys[i].g < keys[j].g
	})
	for _, k := range keys {
		if have := p.Available(k.z, k.g); have < need[k] {
			return fmt.Errorf("cluster: plan needs %d %s in %s, only %d available",
				need[k], k.g, k.z.Name, have)
		}
	}
	for _, k := range keys {
		p.Add(k.z, k.g, -need[k])
	}
	return nil
}

type demandKey struct {
	z core.Zone
	g core.GPUType
}

func planDemand(plan core.Plan) map[demandKey]int {
	need := map[demandKey]int{}
	for _, s := range plan.Stages {
		for _, r := range s.Replicas {
			need[demandKey{r.Zone, r.GPU}] += r.GPUCount()
		}
	}
	return need
}

// CapTotal returns a copy of the pool truncated to at most n GPUs in
// total, filling cells in the canonical Entries order (zone name then GPU
// type), so equal pools truncate identically. n <= 0 returns an empty pool.
func (p *Pool) CapTotal(n int) *Pool {
	q := NewPool()
	for _, e := range p.Entries() {
		if n <= 0 {
			break
		}
		take := e.Count
		if take > n {
			take = n
		}
		q.Set(e.Zone, e.GPU, take)
		n -= take
	}
	return q
}

// FilterTypes returns a copy of the pool restricted to the given GPU types.
// An empty filter returns a full copy. The fleet ledger uses this to build
// per-job views over only the cells a job's profiled System can plan with,
// so the per-job cap is spent on usable capacity and jobs with disjoint
// type sets see views that are independent of each other's leases.
func (p *Pool) FilterTypes(gpus []core.GPUType) *Pool {
	if len(gpus) == 0 {
		return p.Clone()
	}
	keep := map[core.GPUType]bool{}
	for _, g := range gpus {
		keep[g] = true
	}
	q := NewPool()
	for z, m := range p.counts {
		for g, c := range m {
			if keep[g] {
				q.Set(z, g, c)
			}
		}
	}
	return q
}

// ConsolidateRegions merges all zones of each region into one synthetic
// zone, implementing heuristic H6: within a region, inter-zone bandwidth is
// close to intra-zone bandwidth, so the geo-split is done per region.
func (p *Pool) ConsolidateRegions() *Pool {
	q := NewPool()
	for z, m := range p.counts {
		merged := core.Zone{Region: z.Region, Name: z.Region}
		for g, c := range m {
			q.Add(merged, g, c)
		}
	}
	return q
}

// Nodes returns the number of whole nodes of the default shape available
// for (z, g) — the fixed 4-GPU-VM topology baselines require (§5.2).
func (p *Pool) Nodes(z core.Zone, g core.GPUType) int {
	node := hardware.DefaultNodeType(g)
	return p.Available(z, g) / node.GPUsPerNode
}

// String renders the pool sorted by zone then GPU type.
func (p *Pool) String() string {
	var out string
	for _, z := range p.Zones() {
		m := p.counts[z]
		ts := make([]core.GPUType, 0, len(m))
		for g := range m {
			ts = append(ts, g)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for _, g := range ts {
			if m[g] > 0 {
				out += fmt.Sprintf("%s %s x%d\n", z.Name, g, m[g])
			}
		}
	}
	return out
}

// Zone helpers used across the evaluation scenarios.

// GCPZone returns a zone named like "us-central1-a".
func GCPZone(region string, letter byte) core.Zone {
	return core.Zone{Region: region, Name: fmt.Sprintf("%s-%c", region, letter)}
}

// OnPrem returns the single synthetic zone used for on-premise clusters.
func OnPrem() core.Zone { return core.Zone{Region: "onprem", Name: "onprem-dc1"} }
