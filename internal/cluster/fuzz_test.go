package cluster

import (
	"testing"

	"repro/internal/core"
)

// FuzzPoolCanFitSubtract is the CanFit/Subtract consistency property the
// fleet ledger's safety invariant rests on: for any pool and any plan,
// CanFit(plan) == true implies Subtract(plan) succeeds, a successful
// Subtract removes exactly the plan's demand, and a failed one leaves the
// pool byte-identical.
func FuzzPoolCanFitSubtract(f *testing.F) {
	f.Add(uint8(8), uint8(4), uint8(2), uint8(2), uint8(1), uint8(4))
	f.Add(uint8(0), uint8(0), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Add(uint8(16), uint8(16), uint8(3), uint8(4), uint8(2), uint8(2))
	f.Add(uint8(3), uint8(200), uint8(1), uint8(8), uint8(4), uint8(1))
	f.Fuzz(func(t *testing.T, availA, availB, stages, reps, tp, zonePick uint8) {
		za := GCPZone("us-central1", 'a')
		zb := GCPZone("us-central1", 'b')
		pool := NewPool().Set(za, core.A100, int(availA)%64).Set(zb, core.V100, int(availB)%64)

		nStages := 1 + int(stages)%3
		nReps := 1 + int(reps)%8
		nTP := 1 + int(tp)%8
		plan := core.Plan{MicroBatchSize: 1}
		for s := 0; s < nStages; s++ {
			st := core.StagePlan{FirstLayer: s * 4, NumLayers: 4}
			for r := 0; r < nReps; r++ {
				z, g := za, core.A100
				if (int(zonePick)+s+r)%2 == 1 {
					z, g = zb, core.V100
				}
				st.Replicas = append(st.Replicas, core.StageReplica{GPU: g, TP: nTP, Zone: z})
			}
			plan.Stages = append(plan.Stages, st)
		}

		before := pool.String()
		fits := pool.CanFit(plan)
		err := pool.Subtract(plan)
		if fits && err != nil {
			t.Fatalf("CanFit=true but Subtract failed: %v\npool:\n%s\nplan: %v", err, before, plan)
		}
		if !fits && err == nil {
			t.Fatalf("CanFit=false but Subtract succeeded\npool:\n%s\nplan: %v", before, plan)
		}
		if err != nil {
			if pool.String() != before {
				t.Fatalf("failed Subtract mutated the pool:\nbefore:\n%s\nafter:\n%s", before, pool)
			}
			return
		}
		// Success: every cell dropped by exactly the plan's demand there.
		demand := map[[2]string]int{}
		for _, st := range plan.Stages {
			for _, r := range st.Replicas {
				demand[[2]string{r.Zone.Name, string(r.GPU)}] += r.GPUCount()
			}
		}
		check := func(z core.Zone, g core.GPUType, had int) {
			want := had - demand[[2]string{z.Name, string(g)}]
			if got := pool.Available(z, g); got != want {
				t.Fatalf("cell (%s,%s) = %d after Subtract, want %d", z.Name, g, got, want)
			}
		}
		check(za, core.A100, int(availA)%64)
		check(zb, core.V100, int(availB)%64)
	})
}
