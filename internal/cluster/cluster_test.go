package cluster

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestPoolBasics(t *testing.T) {
	za := GCPZone("us-central1", 'a')
	zb := GCPZone("us-central1", 'b')
	p := NewPool().Set(za, core.A100, 16).Set(zb, core.V100, 32)
	if got := p.Available(za, core.A100); got != 16 {
		t.Errorf("Available = %d, want 16", got)
	}
	if got := p.TotalOf(core.A100); got != 16 {
		t.Errorf("TotalOf = %d, want 16", got)
	}
	if got := p.TotalGPUs(); got != 48 {
		t.Errorf("TotalGPUs = %d, want 48", got)
	}
	p.Add(za, core.A100, -20)
	if got := p.Available(za, core.A100); got != 0 {
		t.Errorf("Add should clamp at zero, got %d", got)
	}
}

func TestZonesSortedAndFiltered(t *testing.T) {
	za := GCPZone("us-west1", 'a')
	zb := GCPZone("us-central1", 'b')
	zc := GCPZone("us-central1", 'c')
	p := NewPool().Set(za, core.A100, 4).Set(zb, core.A100, 4).Set(zc, core.A100, 0)
	zs := p.Zones()
	if len(zs) != 2 {
		t.Fatalf("Zones = %v, want zero-count zone filtered", zs)
	}
	if zs[0].Name != "us-central1-b" {
		t.Errorf("Zones not sorted: %v", zs)
	}
	rs := p.Regions()
	if len(rs) != 2 || rs[0] != "us-central1" {
		t.Errorf("Regions = %v", rs)
	}
}

func TestGPUTypes(t *testing.T) {
	za := GCPZone("us-central1", 'a')
	p := NewPool().Set(za, core.V100, 8).Set(za, core.A100, 8).Set(za, core.T4, 0)
	ts := p.GPUTypes()
	if len(ts) != 2 || ts[0] != core.A100 || ts[1] != core.V100 {
		t.Errorf("GPUTypes = %v", ts)
	}
}

func TestCloneIsDeep(t *testing.T) {
	za := GCPZone("us-central1", 'a')
	p := NewPool().Set(za, core.A100, 8)
	q := p.Clone()
	q.Add(za, core.A100, -8)
	if p.Available(za, core.A100) != 8 {
		t.Error("Clone must not alias the original")
	}
}

func onePlan(z core.Zone, n, tp int) core.Plan {
	reps := make([]core.StageReplica, n)
	for i := range reps {
		reps[i] = core.StageReplica{GPU: core.A100, TP: tp, Zone: z}
	}
	return core.Plan{MicroBatchSize: 1, Stages: []core.StagePlan{
		{FirstLayer: 0, NumLayers: 24, Replicas: reps},
	}}
}

func TestCanFitAndSubtract(t *testing.T) {
	za := GCPZone("us-central1", 'a')
	p := NewPool().Set(za, core.A100, 16)
	plan := onePlan(za, 2, 4) // 8 GPUs
	if !p.CanFit(plan) {
		t.Fatal("plan should fit")
	}
	if err := p.Subtract(plan); err != nil {
		t.Fatal(err)
	}
	if got := p.Available(za, core.A100); got != 8 {
		t.Errorf("after Subtract: %d, want 8", got)
	}
	big := onePlan(za, 4, 4) // 16 GPUs > 8 remaining
	if p.CanFit(big) {
		t.Error("oversized plan should not fit")
	}
	if err := p.Subtract(big); err == nil {
		t.Error("Subtract must reject oversized plan")
	}
}

// TestSubtractErrorPaths: over-subtraction and demand in zones/types the
// pool has never seen fail with a message naming the deficient cell, and a
// failed Subtract leaves the pool untouched.
func TestSubtractErrorPaths(t *testing.T) {
	za := GCPZone("us-central1", 'a')
	zb := GCPZone("us-central1", 'b')
	p := NewPool().Set(za, core.A100, 8)

	over := onePlan(za, 3, 4) // 12 GPUs > 8
	if err := p.Subtract(over); err == nil || !strings.Contains(err.Error(), "us-central1-a") ||
		!strings.Contains(err.Error(), "12") {
		t.Errorf("over-subtraction error = %v, want cell and demand named", err)
	}
	unknownZone := onePlan(zb, 1, 4)
	if err := p.Subtract(unknownZone); err == nil || !strings.Contains(err.Error(), "us-central1-b") {
		t.Errorf("unknown-zone error = %v, want zone named", err)
	}
	unknownType := core.Plan{MicroBatchSize: 1, Stages: []core.StagePlan{{
		FirstLayer: 0, NumLayers: 24,
		Replicas: []core.StageReplica{{GPU: core.H100, TP: 2, Zone: za}},
	}}}
	if err := p.Subtract(unknownType); err == nil || !strings.Contains(err.Error(), string(core.H100)) {
		t.Errorf("unknown-type error = %v, want GPU type named", err)
	}
	// Three failed subtractions must not have touched the pool.
	if got := p.Available(za, core.A100); got != 8 {
		t.Errorf("failed Subtract mutated the pool: %d, want 8", got)
	}
	// A mixed plan that fits one cell but not the other fails atomically.
	p.Set(zb, core.V100, 2)
	mixed := core.Plan{MicroBatchSize: 1, Stages: []core.StagePlan{{
		FirstLayer: 0, NumLayers: 24,
		Replicas: []core.StageReplica{
			{GPU: core.A100, TP: 4, Zone: za},
			{GPU: core.V100, TP: 4, Zone: zb}, // needs 4, only 2 there
		},
	}}}
	if err := p.Subtract(mixed); err == nil {
		t.Fatal("partially-fitting plan must fail")
	}
	if p.Available(za, core.A100) != 8 || p.Available(zb, core.V100) != 2 {
		t.Error("failed mixed Subtract must leave every cell untouched")
	}
}

func TestConsolidateRegions(t *testing.T) {
	za := GCPZone("us-central1", 'a')
	zb := GCPZone("us-central1", 'b')
	zw := GCPZone("us-west1", 'a')
	p := NewPool().Set(za, core.A100, 8).Set(zb, core.A100, 8).Set(zw, core.A100, 4)
	q := p.ConsolidateRegions()
	merged := core.Zone{Region: "us-central1", Name: "us-central1"}
	if got := q.Available(merged, core.A100); got != 16 {
		t.Errorf("consolidated = %d, want 16 (H6 merges zones per region)", got)
	}
	if got := q.TotalGPUs(); got != 20 {
		t.Errorf("TotalGPUs after consolidation = %d, want 20", got)
	}
	if len(q.Zones()) != 2 {
		t.Errorf("want one synthetic zone per region, got %v", q.Zones())
	}
}

func TestNodes(t *testing.T) {
	za := GCPZone("us-central1", 'a')
	p := NewPool().Set(za, core.A100, 18)
	if got := p.Nodes(za, core.A100); got != 4 { // 4-GPU VMs
		t.Errorf("Nodes = %d, want 4 whole VMs from 18 GPUs", got)
	}
}

func TestPoolString(t *testing.T) {
	za := GCPZone("us-central1", 'a')
	s := NewPool().Set(za, core.A100, 8).String()
	if !strings.Contains(s, "us-central1-a A100-40 x8") {
		t.Errorf("String = %q", s)
	}
}

func TestEntriesDeterministicOrder(t *testing.T) {
	p := NewPool().
		Set(GCPZone("us-west1", 'b'), core.V100, 8).
		Set(GCPZone("us-central1", 'a'), core.V100, 4).
		Set(GCPZone("us-central1", 'a'), core.A100, 16).
		Set(GCPZone("us-east1", 'c'), core.A100, 0) // zero cells are dropped
	es := p.Entries()
	want := []Entry{
		{GCPZone("us-central1", 'a'), core.A100, 16},
		{GCPZone("us-central1", 'a'), core.V100, 4},
		{GCPZone("us-west1", 'b'), core.V100, 8},
	}
	if len(es) != len(want) {
		t.Fatalf("Entries = %v, want %v", es, want)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Errorf("Entries[%d] = %v, want %v", i, es[i], want[i])
		}
	}
	// Rebuilding a pool from its entries preserves the canonical rendering.
	q := NewPool()
	for _, e := range es {
		q.Set(e.Zone, e.GPU, e.Count)
	}
	if q.String() != p.String() {
		t.Errorf("entry round trip changed the pool:\n%s\nvs\n%s", q, p)
	}
}

// TestCapTotal pins the canonical truncation the fleet's per-job cap uses:
// cells fill in Entries order (zone name, then GPU type), so equal pools
// always truncate identically.
func TestCapTotal(t *testing.T) {
	za, zb := GCPZone("us-central1", 'a'), GCPZone("us-central1", 'b')
	p := NewPool().Set(za, core.A100, 3).Set(za, core.V100, 2).Set(zb, core.A100, 4)

	capped := p.CapTotal(5)
	if got := capped.TotalGPUs(); got != 5 {
		t.Fatalf("CapTotal(5) kept %d GPUs", got)
	}
	// Entries order: (za,A100)=3 first, then (za,V100)=2; (zb,A100) misses out.
	if got := capped.Available(za, core.A100); got != 3 {
		t.Errorf("first cell = %d, want 3", got)
	}
	if got := capped.Available(za, core.V100); got != 2 {
		t.Errorf("second cell = %d, want 2", got)
	}
	if got := capped.Available(zb, core.A100); got != 0 {
		t.Errorf("overflow cell = %d, want 0", got)
	}

	// A cap above the total is a no-op copy; n <= 0 empties the pool.
	if got := p.CapTotal(100).TotalGPUs(); got != p.TotalGPUs() {
		t.Errorf("CapTotal(100) = %d GPUs, want %d", got, p.TotalGPUs())
	}
	if got := p.CapTotal(0).TotalGPUs(); got != 0 {
		t.Errorf("CapTotal(0) = %d GPUs, want 0", got)
	}
}

// TestFilterTypes: restriction to a type set, with the empty filter as a
// full copy.
func TestFilterTypes(t *testing.T) {
	za, zb := GCPZone("us-central1", 'a'), GCPZone("us-central1", 'b')
	p := NewPool().Set(za, core.A100, 3).Set(za, core.V100, 2).Set(zb, core.A100, 4)

	v := p.FilterTypes([]core.GPUType{core.V100})
	if got := v.TotalGPUs(); got != 2 {
		t.Fatalf("V100 filter kept %d GPUs, want 2", got)
	}
	if got := v.Available(za, core.A100) + v.Available(zb, core.A100); got != 0 {
		t.Errorf("filter leaked %d A100s", got)
	}

	all := p.FilterTypes(nil)
	if got := all.TotalGPUs(); got != p.TotalGPUs() {
		t.Errorf("empty filter = %d GPUs, want full copy %d", got, p.TotalGPUs())
	}
	all.Set(za, core.A100, 0)
	if p.Available(za, core.A100) != 3 {
		t.Error("empty-filter copy aliases the source pool")
	}
}

// TestOnPrem covers the synthetic on-premise zone constructor.
func TestOnPrem(t *testing.T) {
	z := OnPrem()
	if z.Region != "onprem" || z.Name != "onprem-dc1" {
		t.Fatalf("OnPrem() = %+v", z)
	}
}
