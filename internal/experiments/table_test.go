package experiments

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := Table{
		ID:      "t",
		Title:   "demo",
		Headers: []string{"a", "longer-header"},
		Rows:    [][]string{{"x", "1"}, {"longer-cell", "2"}},
		Notes:   []string{"a note"},
	}
	s := tab.String()
	if !strings.Contains(s, "== t: demo ==") {
		t.Errorf("missing title: %s", s)
	}
	if !strings.Contains(s, "note: a note") {
		t.Errorf("missing note: %s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Header and both rows must be column-aligned: the second column of
	// every line starts at the same offset.
	idx := strings.Index(lines[1], "longer-header")
	for _, ln := range lines[2:4] {
		if len(ln) < idx {
			t.Fatalf("row shorter than header offset: %q", ln)
		}
	}
}

func TestErrStats(t *testing.T) {
	var e errStats
	e.add(110, 100) // 10%
	e.add(80, 100)  // 20%
	e.add(100, 100) // 0%
	e.add(0, 0)     // ignored: zero reference
	row := e.row("x")
	if row[0] != "x" {
		t.Fatal("name cell wrong")
	}
	if row[1] != "0" { // min
		t.Errorf("min = %s, want 0", row[1])
	}
	if row[2] != "10" { // median
		t.Errorf("median = %s, want 10", row[2])
	}
	if row[3] != "10" { // mean
		t.Errorf("mean = %s, want 10", row[3])
	}
	if row[4] != "20" { // max
		t.Errorf("max = %s, want 20", row[4])
	}
	if row[5] != "3" {
		t.Errorf("n = %s, want 3", row[5])
	}
	empty := (&errStats{}).row("y")
	if empty[1] != "-" {
		t.Error("empty stats should render dashes")
	}
}

func TestFmtF(t *testing.T) {
	if got := fmtF(1.500, 2); got != "1.5" {
		t.Errorf("fmtF = %q, want 1.5", got)
	}
	if got := fmtF(2.0, 2); got != "2" {
		t.Errorf("fmtF = %q, want 2", got)
	}
	if got := fmtF(0.123456, 3); got != "0.123" {
		t.Errorf("fmtF = %q", got)
	}
}

func TestRegistryComplete(t *testing.T) {
	// DESIGN.md promises an entry for every evaluation artefact.
	want := []string{
		"fig1", "fig2", "fig3", "fig5a", "fig5b", "fig6", "fig7",
		"fig8a", "fig8b", "fig9a", "fig9b", "fig10", "fig11", "fig12",
		"fig13", "fig14", "tab1", "tab2", "tab3", "scale", "reconf",
		"replan",
	}
	for _, id := range want {
		if Registry[id] == nil {
			t.Errorf("registry missing %s", id)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Registry), len(want))
	}
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Error("IDs not sorted")
		}
	}
}
