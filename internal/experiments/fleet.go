package experiments

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/sailor"
)

// DriveFleetStorm is the shared "one op" of the fleet-rebalance benchmarks
// (BenchmarkFleetRebalance and the fleet_rebalance rows of
// BENCH_planner.json): reset the service's fleet ledger to an empty pool
// with the given per-job cap, then replay the trace through it — every
// event mutates the fleet and a Rebalance pass replans the broken and
// waiting jobs warm in priority order. Returns the accumulated planner
// telemetry. Jobs keep their warm caches across calls, so repeated drives
// measure the warm steady state of Service.Rebalance.
func DriveFleetStorm(svc *sailor.Service, tr *trace.Trace, jobCap int) (explored, hits int, err error) {
	if err := svc.SetFleet(cluster.NewPool(), jobCap); err != nil {
		return 0, 0, err
	}
	ctx := context.Background()
	for _, ev := range tr.Events {
		if _, err := svc.FleetEvent(ev); err != nil {
			return 0, 0, err
		}
		steps, err := svc.Rebalance(ctx)
		if err != nil {
			return 0, 0, err
		}
		for _, s := range steps {
			if s.Result != nil {
				explored += s.Result.Explored
				hits += s.Result.CacheHits
			}
		}
	}
	return explored, hits, nil
}

// DriveFleetColdRebalance is the "one op" of the cold fleet-rebalance
// benchmarks (BenchmarkFleetRebalanceCold and the fleet_rebalance_cold row
// of BENCH_planner.json): reopen one job per GPU type — dropping every
// warm cache and lease — reset the ledger to the given pool, then run a
// single Rebalance pass that must admit all jobs from scratch. Because
// each job declares a single distinct type, the partitioned rebalance path
// sees every candidate as solo and can search them concurrently; with
// ServiceConfig.SequentialRebalance the same op measures the one-goroutine
// baseline. Returns the accumulated planner telemetry.
func DriveFleetColdRebalance(svc *sailor.Service, m sailor.Model, types []core.GPUType, pool *cluster.Pool) (explored, hits int, err error) {
	for i, g := range types {
		name := fmt.Sprintf("cold-%d", i)
		_ = svc.CloseJob(name)
		if err := svc.OpenJob(name, m, []core.GPUType{g}, len(types)-i); err != nil {
			return 0, 0, err
		}
	}
	if err := svc.SetFleet(pool, 0); err != nil {
		return 0, 0, err
	}
	steps, err := svc.Rebalance(context.Background())
	if err != nil {
		return 0, 0, err
	}
	for _, s := range steps {
		if s.Result == nil {
			return 0, 0, fmt.Errorf("cold rebalance did not admit job %q: %s", s.Job, s.Error)
		}
		explored += s.Result.Explored
		hits += s.Result.CacheHits
	}
	return explored, hits, nil
}
