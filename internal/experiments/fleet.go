package experiments

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/trace"
	"repro/sailor"
)

// DriveFleetStorm is the shared "one op" of the fleet-rebalance benchmarks
// (BenchmarkFleetRebalance and the fleet_rebalance rows of
// BENCH_planner.json): reset the service's fleet ledger to an empty pool
// with the given per-job cap, then replay the trace through it — every
// event mutates the fleet and a Rebalance pass replans the broken and
// waiting jobs warm in priority order. Returns the accumulated planner
// telemetry. Jobs keep their warm caches across calls, so repeated drives
// measure the warm steady state of Service.Rebalance.
func DriveFleetStorm(svc *sailor.Service, tr *trace.Trace, jobCap int) (explored, hits int, err error) {
	if err := svc.SetFleet(cluster.NewPool(), jobCap); err != nil {
		return 0, 0, err
	}
	ctx := context.Background()
	for _, ev := range tr.Events {
		if _, err := svc.FleetEvent(ev); err != nil {
			return 0, 0, err
		}
		steps, err := svc.Rebalance(ctx)
		if err != nil {
			return 0, 0, err
		}
		for _, s := range steps {
			if s.Result != nil {
				explored += s.Result.Explored
				hits += s.Result.CacheHits
			}
		}
	}
	return explored, hits, nil
}
