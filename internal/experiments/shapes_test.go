package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// The paper's headline claims, asserted as invariants over the regenerated
// artefacts. These run at Quick scale; the full-scale shapes are recorded in
// EXPERIMENTS.md.

func quickOpts() Opts { return Opts{Quick: true, SlowPlannerCap: 2 * time.Second} }

func cellF(t *testing.T, tab Table, rowMatch func([]string) bool, col int) float64 {
	t.Helper()
	for _, r := range tab.Rows {
		if rowMatch(r) {
			v, err := strconv.ParseFloat(r[col], 64)
			if err != nil {
				t.Fatalf("cell %q not numeric: %v", r[col], err)
			}
			return v
		}
	}
	t.Fatalf("no matching row in %s", tab.ID)
	return 0
}

func byLabel(col int, label string) func([]string) bool {
	return func(r []string) bool { return len(r) > col && r[col] == label }
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tab, err := Figure1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	c0 := cellF(t, tab, byLabel(0, "c0"), 2)
	c3 := cellF(t, tab, byLabel(0, "c3"), 2)
	c5 := cellF(t, tab, byLabel(0, "c5"), 2)
	c4cost := cellF(t, tab, byLabel(0, "c4"), 3)
	c6cost := cellF(t, tab, byLabel(0, "c6"), 3)
	if c3 <= c0 {
		t.Errorf("good heterogeneous c3 (%v) must beat 16-A100 c0 (%v)", c3, c0)
	}
	if c5 >= c3 {
		t.Errorf("bad heterogeneous c5 (%v) must trail c3 (%v)", c5, c3)
	}
	if c6cost <= c4cost {
		t.Errorf("cross-region c6 cost (%v) must exceed cross-zone c4 (%v)", c6cost, c4cost)
	}
}

func TestFigure2Shape(t *testing.T) {
	tab, err := Figure2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[1] != "8" {
		t.Errorf("zone A must end at 8 GPUs, got %s", last[1])
	}
	for _, r := range tab.Rows {
		if n, _ := strconv.Atoi(r[2]); n >= 8 {
			t.Errorf("zone B must never reach the 8 requested GPUs, got %d", n)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, run := range []func(Opts) (Table, error){Figure5a, Figure5b} {
		tab, err := run(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		// Sailor's mean error must be the lowest of all planners.
		sailor := cellF(t, tab, byLabel(0, "Sailor"), 3)
		for _, r := range tab.Rows {
			if r[0] == "Sailor" || r[1] == "-" {
				continue
			}
			v, err := strconv.ParseFloat(r[3], 64)
			if err != nil {
				continue
			}
			if sailor > v {
				t.Errorf("%s: Sailor mean error %v%% should undercut %s's %v%%", tab.ID, sailor, r[0], v)
			}
		}
		if sailor > 12 {
			t.Errorf("%s: Sailor mean error %v%% above the paper's ~6%% band", tab.ID, sailor)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tab, err := Figure6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	sailor := cellF(t, tab, byLabel(0, "Sailor"), 3)
	flash := cellF(t, tab, byLabel(0, "FlashFlex"), 3)
	if sailor >= flash {
		t.Errorf("heterogeneous: Sailor %v%% must beat FlashFlex %v%% (paper: 4.5%% vs 69%%)", sailor, flash)
	}
}

func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tab, err := Figure7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Sailor must match or beat every baseline at every size.
	var sailorRow []string
	for _, r := range tab.Rows {
		if r[0] == "Sailor" {
			sailorRow = r
		}
	}
	if sailorRow == nil {
		t.Fatal("no Sailor row")
	}
	for col := 1; col < len(sailorRow); col++ {
		s, err := strconv.ParseFloat(sailorRow[col], 64)
		if err != nil {
			t.Fatalf("Sailor cell %q", sailorRow[col])
		}
		for _, r := range tab.Rows {
			if r[0] == "Sailor" || strings.HasPrefix(r[col], "X") {
				continue
			}
			v, err := strconv.ParseFloat(r[col], 64)
			if err != nil {
				continue
			}
			// All planners share one profile source here, so an
			// exhaustive searcher (Metis) can tie Sailor within a few
			// percent on small homogeneous pools; the paper-level claim
			// is that Sailor is never meaningfully below any baseline.
			if s < v*0.97 {
				t.Errorf("col %d: Sailor %v below %s's %v", col, s, r[0], v)
			}
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tab, err := Figure8a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Per cluster size: Sailor >= AMP/FlashFlex; Sailor OOM count is 0.
	byPlanner := map[string][]string{}
	for _, r := range tab.Rows {
		byPlanner[r[1]] = r
	}
	s := cellF(t, tab, byLabel(1, "Sailor"), 2)
	for _, n := range []string{"AMP", "FlashFlex"} {
		r := byPlanner[n]
		if r == nil || r[2] == "X" {
			continue
		}
		v, _ := strconv.ParseFloat(r[2], 64)
		if s < v*0.999 {
			t.Errorf("Sailor %v must not trail %s's %v", s, n, v)
		}
	}
	if r := byPlanner["Sailor"]; r[4] != "0" {
		t.Errorf("Sailor emitted %s OOM plans; must be 0", r[4])
	}
	// Sailor with both types must beat Sailor-V100 (A100s are strictly
	// better than nothing).
	sv := cellF(t, tab, byLabel(1, "Sailor-V100"), 2)
	if s <= sv {
		t.Errorf("Sailor (both types) %v must beat Sailor-V100 %v", s, sv)
	}
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tab, err := Figure12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Sailor must beat DTFM on throughput and cost at each size.
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		dt, sr := tab.Rows[i], tab.Rows[i+1]
		if dt[1] != "DTFM" || sr[1] != "Sailor" {
			t.Fatalf("unexpected row layout: %v / %v", dt, sr)
		}
		if dt[2] == "X" {
			continue
		}
		dtput, _ := strconv.ParseFloat(dt[2], 64)
		stput, _ := strconv.ParseFloat(sr[2], 64)
		dcost, _ := strconv.ParseFloat(dt[3], 64)
		scost, _ := strconv.ParseFloat(sr[3], 64)
		if stput <= dtput {
			t.Errorf("%s: Sailor %v it/s must beat DTFM %v", dt[0], stput, dtput)
		}
		if scost >= dcost {
			t.Errorf("%s: Sailor $%v must undercut DTFM $%v", dt[0], scost, dcost)
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	o := quickOpts()
	tab, err := Figure13(o)
	if err != nil {
		t.Fatal(err)
	}
	// Every deployed row satisfies the throughput floor; Sailor's cost is
	// at or near the minimum (EXPERIMENTS.md documents the flat
	// cost-vs-DP deviation that lets one baseline tie or slightly
	// undercut it).
	floor := 0.05 // quick-mode constraint
	var sailorCost float64 = -1
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[1], "X") {
			continue // no plan, or OOM on deployment (Varuna's flaw)
		}
		tput, _ := strconv.ParseFloat(r[1], 64)
		if tput < floor {
			t.Errorf("%s violates the throughput floor: %v", r[0], tput)
		}
		cost, _ := strconv.ParseFloat(r[2], 64)
		if r[0] == "Sailor" {
			sailorCost = cost
		}
	}
	if sailorCost < 0 {
		t.Fatal("Sailor found no plan")
	}
	cheaper := 0
	for _, r := range tab.Rows {
		if r[0] == "Sailor" || strings.HasPrefix(r[2], "X") {
			continue
		}
		cost, err := strconv.ParseFloat(r[2], 64)
		if err != nil {
			continue
		}
		if sailorCost > cost*1.35 {
			t.Errorf("Sailor $%v too far above %s's $%v", sailorCost, r[0], cost)
		}
		if cost < sailorCost {
			cheaper++
		}
	}
	if cheaper > 2 {
		t.Errorf("%d baselines undercut Sailor's $%v; expected at most the flat-cost ties", cheaper, sailorCost)
	}
}

func TestFigure14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tab, err := Figure14(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var sailorTput float64 = -1
	for _, r := range tab.Rows {
		if r[1] == "X" {
			continue
		}
		cost, _ := strconv.ParseFloat(r[2], 64)
		if cost > 1.2 {
			t.Errorf("%s busts the $1.2 budget: $%v", r[0], cost)
		}
		if r[0] == "Sailor" {
			sailorTput, _ = strconv.ParseFloat(r[1], 64)
		}
	}
	if sailorTput < 0 {
		t.Fatal("Sailor found no plan")
	}
	for _, r := range tab.Rows {
		if r[0] == "Sailor" || r[1] == "X" {
			continue
		}
		v, _ := strconv.ParseFloat(r[1], 64)
		if sailorTput < v*0.999 {
			t.Errorf("Sailor %v it/s should lead within budget, %s has %v", sailorTput, r[0], v)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tab, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 { // 9 baselines + Sailor
		t.Fatalf("Table 1 rows = %d, want 10", len(tab.Rows))
	}
	var sailorSupport string
	for _, r := range tab.Rows {
		if r[0] == "Sailor" {
			sailorSupport = r[1]
		}
	}
	for _, want := range []string{"alloc:yes", "hetero:yes", "multizone:yes"} {
		if !strings.Contains(sailorSupport, want) {
			t.Errorf("Sailor support %q missing %q", sailorSupport, want)
		}
	}
}

func TestReconfigurationShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tab, err := Reconfiguration(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	total := cellF(t, tab, byLabel(0, "total"), 1)
	if total < 5 || total > 40 {
		t.Errorf("reconfiguration total %vs outside the ~11s band", total)
	}
	plan := cellF(t, tab, byLabel(0, "planning"), 1)
	if plan > 2 {
		t.Errorf("planning phase %vs; paper reports 0.1s", plan)
	}
}
