package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/runtime"
)

// Table1 regenerates the planner overview: support matrix plus search time
// for OPT-350M on 128 A100 GPUs.
func Table1(o Opts) (Table, error) {
	cfg := model.OPT350M()
	l, err := newLab(cfg, o, core.A100)
	if err != nil {
		return Table{}, err
	}
	pool := cluster.NewPool().Set(zoneC1a, core.A100, 128)
	t := Table{
		ID:      "tab1",
		Title:   "Planner support matrix + search time, 128 A100, OPT-350M (paper Table 1)",
		Headers: []string{"planner", "support", "search time"},
	}
	for _, p := range baselines.All(l.env) {
		r, err := p.Rank(pool)
		st := "error"
		if err == nil {
			st = r.SearchTime.Round(time.Millisecond).String()
			if r.SearchTime >= l.env.Deadline {
				st += " (capped)"
			}
		}
		t.Rows = append(t.Rows, []string{p.Name(), p.Caps().String(), st})
	}
	res, err := l.sailor(core.MaxThroughput, core.Constraints{}).Plan(pool)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"Sailor", "3D, alloc:yes, hetero:yes, multizone:yes",
		res.SearchTime.Round(time.Millisecond).String()})
	t.Notes = append(t.Notes,
		fmt.Sprintf("slow searchers capped at %v (paper caps Metis at 300s; Metis/Oobleck are hours uncapped)", l.env.Deadline))
	return t, nil
}

// Table2 regenerates the search times of the Figure 9b grid: GPT-Neo-2.7B
// on 25/75 A100:V100 pools.
func Table2(o Opts) (Table, error) {
	cfg := model.GPTNeo27B()
	l, err := newLab(cfg, o, core.A100, core.V100)
	if err != nil {
		return Table{}, err
	}
	sizes := [][2]int{{32, 96}, {80, 240}, {128, 384}}
	if o.Quick {
		sizes = [][2]int{{32, 96}}
	}
	t := Table{
		ID:      "tab2",
		Title:   "Search times (s) for the Fig. 9b grid, GPT-Neo-2.7B (paper Table 2)",
		Headers: append([]string{"planner"}, sizeLabels(sizes)...),
	}
	rows := map[string][]string{}
	order := []string{"AMP", "FlashFlex", "Metis", "Sailor"}
	for _, n := range order {
		rows[n] = []string{n}
	}
	for _, sz := range sizes {
		pool := cluster.NewPool().Set(zoneC1a, core.A100, sz[0]).Set(zoneC1a, core.V100, sz[1])
		for _, n := range order[:3] {
			p, err := baselines.ByName(l.env, n)
			if err != nil {
				return t, err
			}
			r, err := p.Rank(pool)
			if err != nil {
				rows[n] = append(rows[n], "X")
				continue
			}
			cell := fmtF(r.SearchTime.Seconds(), 2)
			if r.SearchTime >= l.env.Deadline {
				cell += " (capped)"
			}
			rows[n] = append(rows[n], cell)
		}
		res, err := l.sailor(core.MaxThroughput, core.Constraints{}).Plan(pool)
		if err != nil {
			rows["Sailor"] = append(rows["Sailor"], "X")
			continue
		}
		rows["Sailor"] = append(rows["Sailor"], fmtF(res.SearchTime.Seconds(), 2))
	}
	for _, n := range order {
		t.Rows = append(t.Rows, rows[n])
	}
	t.Notes = append(t.Notes,
		"paper shape: Metis's search grows combinatorially toward the cap; Sailor stays in tens of seconds at 512 GPUs")
	return t, nil
}

func sizeLabels(sizes [][2]int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("%d+%d", s[0], s[1])
	}
	return out
}

// Table3 regenerates the search-time breakdown: dynamic programming alone,
// with heuristics, and with a budget constraint, for GPT-Neo-2.7B with 128
// GPUs per type in one zone.
func Table3(o Opts) (Table, error) {
	cfg := model.GPTNeo27B()
	l, err := newLab(cfg, o, core.A100, core.V100)
	if err != nil {
		return Table{}, err
	}
	n := 128
	if o.Quick {
		n = 32
	}
	t := Table{
		ID:      "tab3",
		Title:   "Sailor search-time breakdown, GPT-Neo-2.7B, 128 GPUs/type (paper Table 3)",
		Headers: []string{"GPU types", "DP only", "+ heuristics", "+ cost limit"},
	}
	run := func(pool *cluster.Pool, heur planner.Heuristics, cons core.Constraints, cap time.Duration) string {
		pl := planner.New(cfg, l.sim, planner.Options{
			Objective: core.MaxThroughput, Constraints: cons,
			Heuristics: heur, Deadline: cap, Workers: l.workers,
		})
		res, err := pl.Plan(pool)
		if err != nil {
			return fmt.Sprintf(">%s (capped, no plan)", cap)
		}
		cell := fmtF(res.SearchTime.Seconds(), 2) + "s"
		if cap > 0 && res.SearchTime >= cap {
			cell += " (capped)"
		}
		return cell
	}
	budget := core.Constraints{MaxCostPerIter: 1.5}
	one := cluster.NewPool().Set(zoneC1a, core.A100, n)
	two := cluster.NewPool().Set(zoneC1a, core.A100, n).Set(zoneC1a, core.V100, n)
	dpOnly := planner.Heuristics{H6MergeZones: true} // Listing-1 DP without H2/H3/H4
	t.Rows = append(t.Rows, []string{"1",
		run(one, dpOnly, core.Constraints{}, o.cap()),
		run(one, planner.AllHeuristics(), core.Constraints{}, 0),
		run(one, planner.AllHeuristics(), budget, 0),
	})
	t.Rows = append(t.Rows, []string{"2",
		run(two, dpOnly, core.Constraints{}, o.cap()),
		run(two, planner.AllHeuristics(), core.Constraints{}, 0),
		run(two, planner.AllHeuristics(), budget, 0),
	})
	t.Notes = append(t.Notes,
		"paper shape: DP-only needs hours (capped here); heuristics bring it to seconds; the budget constraint multiplies search time")
	return t, nil
}

// Scalability regenerates §5.3: Sailor search time across zone counts,
// GPUs per zone, and GPU-type counts.
func Scalability(o Opts) (Table, error) {
	cfg := model.GPTNeo27B()
	l, err := newLab(cfg, o, core.A100, core.V100, core.A10G)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "scale",
		Title:   "Sailor planner scalability (paper §5.3)",
		Headers: []string{"scenario", "GPUs", "search time"},
	}
	run := func(label string, pool *cluster.Pool) error {
		pl := planner.New(cfg, l.sim, planner.Options{
			Objective: core.MaxThroughput, Heuristics: planner.AllHeuristics(),
			Deadline: o.cap(), Workers: l.workers,
		})
		res, err := pl.Plan(pool)
		if err != nil {
			t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%d", pool.TotalGPUs()), "no plan"})
			return nil
		}
		cell := res.SearchTime.Round(time.Millisecond).String()
		if res.SearchTime >= o.cap() {
			cell += " (capped)"
		}
		t.Rows = append(t.Rows, []string{label, fmt.Sprintf("%d", pool.TotalGPUs()), cell})
		return nil
	}
	// Zones sweep, homogeneous A100.
	zones := []core.Zone{zoneC1a, zoneC1b, zoneC1c, zoneW1a, zoneW1b}
	per := 256
	if o.Quick {
		per = 64
	}
	for _, nz := range []int{1, 3, 5} {
		pool := cluster.NewPool()
		for _, z := range zones[:nz] {
			pool.Set(z, core.A100, per)
		}
		if err := run(fmt.Sprintf("%d zones x %d A100", nz, per), pool); err != nil {
			return t, err
		}
	}
	// GPU-type sweep in one zone.
	typeSets := [][]core.GPUType{
		{core.A100},
		{core.A100, core.V100},
		{core.A100, core.V100, core.A10G},
	}
	for _, ts := range typeSets {
		pool := cluster.NewPool()
		for _, g := range ts {
			pool.Set(zoneC1a, g, per)
		}
		if err := run(fmt.Sprintf("%d GPU types x %d", len(ts), per), pool); err != nil {
			return t, err
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: zones barely matter; each extra GPU type inflates search sharply (0.3 -> 6.2 -> 4900s in the paper)")
	return t, nil
}

// Reconfiguration regenerates §5.5: the reconfiguration phase timings when
// a 16-V100 OPT-350M job gains 4 GPUs.
func Reconfiguration(o Opts) (Table, error) {
	cfg := model.OPT350M()
	l, err := newLab(cfg, o, core.V100)
	if err != nil {
		return Table{}, err
	}
	ctrl := runtime.NewController(runtime.ControllerConfig{
		Planner: l.sailor(core.MaxThroughput, core.Constraints{}),
		GT:      groundtruth.New(cfg),
	})
	defer ctrl.Shutdown()
	if _, err := ctrl.Deploy(cluster.NewPool().Set(zoneC1a, core.V100, 16)); err != nil {
		return Table{}, err
	}
	if _, err := ctrl.TrainFor(300); err != nil {
		return Table{}, err
	}
	ph, err := ctrl.Deploy(cluster.NewPool().Set(zoneC1a, core.V100, 20))
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "reconf",
		Title:   "Reconfiguration phases, 16 -> 20 V100, OPT-350M (paper §5.5)",
		Headers: []string{"phase", "seconds", "paper"},
	}
	t.Rows = [][]string{
		{"planning", fmtF(ph.Planning, 3), "0.1"},
		{"process cleanup", fmtF(ph.Cleanup, 2), "3"},
		{"topology broadcast", fmtF(ph.Broadcast, 2), "1.25"},
		{"comm group init", fmtF(ph.GroupInit, 2), "4.5"},
		{"model/optimizer redefinition", fmtF(ph.ModelRedef, 2), "2"},
		{"dataloader redefinition", fmtF(ph.Dataloader, 2), "0.5"},
		{"total", fmtF(ph.Total(), 2), "~11.4"},
	}
	return t, nil
}
