package experiments

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/sailor"
)

// ReplanDescent returns a two-zone base pool and a chain of availability
// snapshots in which every step removes one more GPU from exactly one zone
// — the delta shape that arms the planner's delta-scoped incremental probe
// on every replan (growth, multi-cell, and repeated pools never arm).
// Shared by BenchmarkReplanIncremental and the replan_incremental row of
// BENCH_planner.json.
func ReplanDescent() (base *cluster.Pool, steps []*cluster.Pool) {
	zoneA := cluster.GCPZone("us-central1", 'a')
	zoneB := cluster.GCPZone("us-central1", 'b')
	base = cluster.NewPool().Set(zoneA, core.A100, 64).Set(zoneB, core.A100, 8)
	for n := 7; n >= 1; n-- {
		steps = append(steps, cluster.NewPool().Set(zoneA, core.A100, 64).Set(zoneB, core.A100, n))
	}
	for n := 63; n >= 33; n-- {
		steps = append(steps, cluster.NewPool().Set(zoneA, core.A100, n).Set(zoneB, core.A100, 1))
	}
	return base, steps
}

// DriveSpeculativeReplans is the shared driver of the speculative-replan
// benchmarks (BenchmarkReplanSpeculative and the replan_speculative row of
// BENCH_planner.json): replay an availability-pool sequence through one
// job's Replan chain, quiescing the service's prefetch layer between steps
// so every speculation round resolves before the request it predicts
// arrives. Returns how many steps were answered from the speculation cache
// and the final plan (the prev of a continuation drive).
func DriveSpeculativeReplans(svc *sailor.Service, job string, pools []*cluster.Pool, prev core.Plan) (specHits int, last core.Plan, err error) {
	ctx := context.Background()
	for i, p := range pools {
		svc.Quiesce()
		res, err := svc.Replan(ctx, job, prev, p, core.MaxThroughput, core.Constraints{})
		if err != nil {
			return specHits, prev, fmt.Errorf("replan %d: %w", i, err)
		}
		if res.SpeculativeHit {
			specHits++
		}
		prev = res.Plan
	}
	svc.Quiesce()
	return specHits, prev, nil
}
