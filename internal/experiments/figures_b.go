package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
)

// heteroComparison is the engine behind Figures 8-10: A100+V100 pools of
// several sizes, heterogeneous baselines vs Sailor (plus Sailor restricted
// to each homogeneous slice), reporting measured throughput, cost per
// iteration, and OOM plans emitted before a valid one.
func heteroComparison(cfg model.Config, id, title string, sizes [][2]int, o Opts) (Table, error) {
	l, err := newLab(cfg, o, core.A100, core.V100)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      id,
		Title:   title,
		Headers: []string{"cluster", "planner", "iters/sec", "USD/iter", "OOM plans"},
	}
	for _, sz := range sizes {
		a, v := sz[0], sz[1]
		label := fmt.Sprintf("%dxA100+%dxV100", a, v)
		pool := cluster.NewPool().Set(zoneC1a, core.A100, a).Set(zoneC1a, core.V100, v)
		for _, n := range []string{"AMP", "FlashFlex", "Metis"} {
			p, err := baselines.ByName(l.env, n)
			if err != nil {
				return t, err
			}
			d, err := baselines.Deploy(p, pool, l.gt)
			if err != nil {
				t.Rows = append(t.Rows, []string{label, n, "X", "X", fmt.Sprintf("%d", d.OOMPlans)})
				continue
			}
			t.Rows = append(t.Rows, []string{label, n,
				fmtF(d.Measured.Throughput(), 3), fmtF(d.Measured.Cost(), 2), fmt.Sprintf("%d", d.OOMPlans)})
		}
		// Sailor restricted to each homogeneous slice, then the full pool.
		variants := []struct {
			name string
			pool *cluster.Pool
		}{
			{"Sailor-V100", cluster.NewPool().Set(zoneC1a, core.V100, v)},
			{"Sailor-A100", cluster.NewPool().Set(zoneC1a, core.A100, a)},
			{"Sailor", pool},
		}
		for _, vnt := range variants {
			_, meas, err := l.sailorDeploy(vnt.pool, core.MaxThroughput, core.Constraints{})
			if err != nil {
				t.Rows = append(t.Rows, []string{label, vnt.name, "X", "X", "0"})
				continue
			}
			t.Rows = append(t.Rows, []string{label, vnt.name,
				fmtF(meas.Throughput(), 3), fmtF(meas.Cost(), 2), "0"})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: Sailor highest throughput, zero OOM emissions; AMP/FlashFlex OOM-prone on big models")
	return t, nil
}

// Figure8a: OPT-350M, 50% A100 / 50% V100.
func Figure8a(o Opts) (Table, error) {
	sizes := [][2]int{{32, 32}, {80, 80}, {128, 128}}
	if o.Quick {
		sizes = [][2]int{{32, 32}}
	}
	return heteroComparison(model.OPT350M(), "fig8a",
		"Heterogeneous planners, OPT-350M, 50/50 A100:V100 (paper Fig. 8a)", sizes, o)
}

// Figure8b: OPT-350M, 25% A100 / 75% V100.
func Figure8b(o Opts) (Table, error) {
	sizes := [][2]int{{32, 96}, {80, 240}, {128, 384}}
	if o.Quick {
		sizes = [][2]int{{32, 96}}
	}
	return heteroComparison(model.OPT350M(), "fig8b",
		"Heterogeneous planners, OPT-350M, 25/75 A100:V100 (paper Fig. 8b)", sizes, o)
}

// Figure9a: GPT-Neo-2.7B, 50/50.
func Figure9a(o Opts) (Table, error) {
	sizes := [][2]int{{32, 32}, {80, 80}, {128, 128}}
	if o.Quick {
		sizes = [][2]int{{32, 32}}
	}
	return heteroComparison(model.GPTNeo27B(), "fig9a",
		"Heterogeneous planners, GPT-Neo-2.7B, 50/50 A100:V100 (paper Fig. 9a)", sizes, o)
}

// Figure9b: GPT-Neo-2.7B, 25/75.
func Figure9b(o Opts) (Table, error) {
	sizes := [][2]int{{32, 96}, {80, 240}, {128, 384}}
	if o.Quick {
		sizes = [][2]int{{32, 96}}
	}
	return heteroComparison(model.GPTNeo27B(), "fig9b",
		"Heterogeneous planners, GPT-Neo-2.7B, 25/75 A100:V100 (paper Fig. 9b)", sizes, o)
}

// Figure10: the small "real hardware" clusters (8+8 and 8+16 A100/V100).
// Metis's published artefact fails on 24 GPUs (global batch not divisible
// by the GPU count); like the paper, the harness reuses its 16-GPU plan.
func Figure10(o Opts) (Table, error) {
	cfg := model.OPT350M()
	l, err := newLab(cfg, o, core.A100, core.V100)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig10",
		Title:   "Small heterogeneous clusters, OPT-350M (paper Fig. 10)",
		Headers: []string{"cluster", "planner", "iters/sec", "OOM plans"},
	}
	pools := []struct {
		label string
		a, v  int
	}{
		{"8xA100+8xV100", 8, 8},
		{"8xA100+16xV100", 8, 16},
	}
	var metis16 *baselines.Deployment
	for _, pc := range pools {
		pool := cluster.NewPool().Set(zoneC1a, core.A100, pc.a).Set(zoneC1a, core.V100, pc.v)
		for _, n := range []string{"AMP", "FlashFlex", "Metis"} {
			p, err := baselines.ByName(l.env, n)
			if err != nil {
				return t, err
			}
			if n == "Metis" && pc.a+pc.v == 24 && cfg.GlobalBatch%(pc.a+pc.v) != 0 && metis16 != nil {
				// Paper: "Metis fails to output a plan as it requires the
				// global batch size to be equally divisible by the total
				// number of GPUs. We therefore reuse the plan from the
				// 16 GPU case."
				meas, err := l.gt.Measure(metis16.Plan)
				if err == nil && meas.FitsMemory {
					t.Rows = append(t.Rows, []string{pc.label, "Metis(16-GPU plan)",
						fmtF(meas.Throughput(), 3), "0"})
					continue
				}
			}
			d, err := baselines.Deploy(p, pool, l.gt)
			if err != nil {
				t.Rows = append(t.Rows, []string{pc.label, n, "X", fmt.Sprintf("%d", d.OOMPlans)})
				continue
			}
			if n == "Metis" && pc.a+pc.v == 16 {
				dd := d
				metis16 = &dd
			}
			t.Rows = append(t.Rows, []string{pc.label, n,
				fmtF(d.Measured.Throughput(), 3), fmt.Sprintf("%d", d.OOMPlans)})
		}
		_, meas, err := l.sailorDeploy(pool, core.MaxThroughput, core.Constraints{})
		if err != nil {
			t.Rows = append(t.Rows, []string{pc.label, "Sailor", "X", "0"})
			continue
		}
		t.Rows = append(t.Rows, []string{pc.label, "Sailor", fmtF(meas.Throughput(), 3), "0"})
	}
	t.Notes = append(t.Notes, "paper shape: Sailor 1.08-2x over baselines, zero OOM plans")
	return t, nil
}

// geoComparison drives Figures 11-12: A100-only pools across zones and
// regions, DTFM vs Sailor.
func geoComparison(id, title string, zones []core.Zone, perZone []int, o Opts) (Table, error) {
	cfg := model.OPT350M()
	l, err := newLab(cfg, o, core.A100)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      id,
		Title:   title,
		Headers: []string{"cluster", "planner", "iters/sec", "USD/iter"},
	}
	for _, n := range perZone {
		label := fmt.Sprintf("%d A100/zone x %d zones", n, len(zones))
		pool := cluster.NewPool()
		for _, z := range zones {
			pool.Set(z, core.A100, n)
		}
		p, err := baselines.ByName(l.env, "DTFM")
		if err != nil {
			return t, err
		}
		d, err := baselines.Deploy(p, pool, l.gt)
		if err != nil {
			t.Rows = append(t.Rows, []string{label, "DTFM", "X", "X"})
		} else {
			t.Rows = append(t.Rows, []string{label, "DTFM",
				fmtF(d.Measured.Throughput(), 3), fmtF(d.Measured.Cost(), 2)})
		}
		_, meas, err := l.sailorDeploy(pool, core.MaxThroughput, core.Constraints{})
		if err != nil {
			t.Rows = append(t.Rows, []string{label, "Sailor", "X", "X"})
			continue
		}
		t.Rows = append(t.Rows, []string{label, "Sailor",
			fmtF(meas.Throughput(), 3), fmtF(meas.Cost(), 2)})
	}
	t.Notes = append(t.Notes,
		"paper shape: Sailor concentrates in one region when extra regions do not help; DTFM spreads everywhere")
	return t, nil
}

// Figure11: 4 zones / 2 regions, 4 and 8 A100 per zone (the paper's real
// GPU experiment).
func Figure11(o Opts) (Table, error) {
	zones := []core.Zone{zoneC1a, zoneC1b, zoneW1a, zoneW1b}
	return geoComparison("fig11",
		"Geo-distributed, 4 zones / 2 regions, OPT-350M (paper Fig. 11)",
		zones, []int{4, 8}, o)
}

// Figure12: 5 zones / 2 regions at larger scales (the paper's simulator
// experiment).
func Figure12(o Opts) (Table, error) {
	zones := []core.Zone{zoneC1a, zoneC1b, zoneC1c, zoneW1a, zoneW1b}
	sizes := []int{8, 16, 32}
	if o.Quick {
		sizes = []int{8}
	}
	return geoComparison("fig12",
		"Geo-distributed, 5 zones / 2 regions, OPT-350M (paper Fig. 12)",
		zones, sizes, o)
}

// constrainedComparison drives Figures 13-14: two zones of one region, each
// with 128 A100 + 128 V100; baselines are modified (as in the paper) to
// rank by the constrained objective over their candidate lists.
func constrainedComparison(id, title string, obj core.Objective, cons core.Constraints, o Opts) (Table, error) {
	cfg := model.OPT350M()
	l, err := newLab(cfg, o, core.A100, core.V100)
	if err != nil {
		return Table{}, err
	}
	n := 128
	if o.Quick {
		n = 32
	}
	pool := cluster.NewPool().
		Set(zoneC1a, core.A100, n).Set(zoneC1a, core.V100, n).
		Set(zoneC1b, core.A100, n).Set(zoneC1b, core.V100, n)
	t := Table{
		ID:      id,
		Title:   title,
		Headers: []string{"planner", "iters/sec", "USD/iter"},
	}
	names := []string{"Varuna", "AMP", "Piper", "Galvatron", "Aceso", "FlashFlex", "Metis", "DTFM"}
	for _, name := range names {
		p, err := baselines.ByName(l.env, name)
		if err != nil {
			return t, err
		}
		r, err := p.Rank(pool)
		if err != nil {
			t.Rows = append(t.Rows, []string{name, "X", "X"})
			continue
		}
		// The paper modifies baselines "to rank solutions by iteration
		// cost and only return plans within the constraints" — using
		// their own estimators, so estimator flaws propagate into the
		// choice. The chosen plan is then deployed and measured.
		bestIdx, bestEstCost, bestEstTput := -1, 0.0, 0.0
		for i, c := range r.Candidates {
			estCost := estimatedCost(l, c.Plan, c.EstIterTime)
			if !cons.Satisfied(c.EstIterTime, estCost) {
				continue
			}
			tput := 0.0
			if c.EstIterTime > 0 {
				tput = 1 / c.EstIterTime
			}
			better := bestIdx < 0 ||
				(obj == core.MinCost && estCost < bestEstCost) ||
				(obj == core.MaxThroughput && tput > bestEstTput)
			if better {
				bestIdx, bestEstCost, bestEstTput = i, estCost, tput
			}
		}
		if bestIdx < 0 {
			t.Rows = append(t.Rows, []string{name, "X", "X"})
			continue
		}
		meas, err := l.gt.Measure(r.Candidates[bestIdx].Plan)
		if err != nil || !meas.FitsMemory {
			t.Rows = append(t.Rows, []string{name, "X (OOM)", "X"})
			continue
		}
		t.Rows = append(t.Rows, []string{name, fmtF(meas.Throughput(), 3), fmtF(meas.Cost(), 2)})
	}
	_, meas, err := l.sailorDeploy(pool, obj, cons)
	if err != nil {
		t.Rows = append(t.Rows, []string{"Sailor", "X", "X"})
	} else {
		t.Rows = append(t.Rows, []string{"Sailor", fmtF(meas.Throughput(), 3), fmtF(meas.Cost(), 2)})
	}
	return t, nil
}

// estimatedCost prices a plan's GPUs for the baseline's own predicted
// iteration time — baselines do not model egress, so none is added.
func estimatedCost(l *lab, plan core.Plan, estIterTime float64) float64 {
	c := 0.0
	for _, st := range plan.Stages {
		for _, r := range st.Replicas {
			c += l.sim.Pricing.ComputeUSD(r.GPU, r.GPUCount(), estIterTime)
		}
	}
	return c
}

// Figure13: minimize cost subject to >= 0.2 iters/sec.
func Figure13(o Opts) (Table, error) {
	cons := core.Constraints{MinThroughput: 0.2}
	if o.Quick {
		cons.MinThroughput = 0.05
	}
	t, err := constrainedComparison("fig13",
		"Min cost s.t. throughput >= 0.2 it/s, 2 zones x (128 A100 + 128 V100) (paper Fig. 13)",
		core.MinCost, cons, o)
	if err == nil {
		t.Notes = append(t.Notes,
			"paper shape: Sailor cheapest (40% under Galvatron); here Sailor lands within ~10% of the",
			"post-hoc cheapest because compute cost is nearly flat in DP under per-GPU-hour pricing (see EXPERIMENTS.md)")
	}
	return t, err
}

// Figure14: maximize throughput subject to <= 1.2 USD/iteration.
func Figure14(o Opts) (Table, error) {
	t, err := constrainedComparison("fig14",
		"Max throughput s.t. cost <= 1.2 USD/iter, 2 zones x (128 A100 + 128 V100) (paper Fig. 14)",
		core.MaxThroughput, core.Constraints{MaxCostPerIter: 1.2}, o)
	if err == nil {
		t.Notes = append(t.Notes, "paper shape: Sailor 1.65-3x the baselines within budget; DTFM finds nothing")
	}
	return t, err
}
