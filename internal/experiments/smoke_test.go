package experiments

import (
	"testing"
	"time"
)

// TestSmokeAll regenerates every artefact at Quick scale and checks it is
// well-formed. Run with -v to see the tables.
func TestSmokeAll(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke skipped in -short mode")
	}
	o := Opts{Quick: true, SlowPlannerCap: 2 * time.Second}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			start := time.Now()
			tab, err := Registry[id](o)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			if len(tab.Headers) == 0 {
				t.Fatalf("%s: no headers", id)
			}
			for i, r := range tab.Rows {
				if len(r) != len(tab.Headers) {
					t.Fatalf("%s row %d: %d cells, want %d", id, i, len(r), len(tab.Headers))
				}
			}
			t.Logf("%s regenerated in %v\n%s", id, time.Since(start).Round(time.Millisecond), tab)
		})
	}
}
