package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/trace"
)

// ReplanLab quantifies warm-start replanning on a preemption-storm
// scenario: for every distinct availability snapshot the storm produces,
// it plans once cold and once through a persistent warm cache seeded by
// the preceding replans, reporting search time, explored nodes, cache
// utilisation, and whether the two searches chose the same plan (they
// must — the warm caches hold pure functions).
func ReplanLab(o Opts) (Table, error) {
	cfg := model.OPT350M()
	l, err := newLab(cfg, o, core.A100)
	if err != nil {
		return Table{}, err
	}
	sc, ok := trace.ScenarioByName("preemption-storm")
	if !ok {
		return Table{}, fmt.Errorf("preemption-storm scenario missing")
	}
	pools := sc.Trace(1).DistinctPools()
	if o.Quick && len(pools) > 8 {
		pools = pools[:8]
	}

	t := Table{
		ID:    "replan",
		Title: "Warm-start replanning on a preemption storm (scenario engine + WarmCache)",
		Headers: []string{"event", "gpus", "cold time", "warm time", "speedup",
			"cold explored", "warm explored", "cache hits", "same plan"},
	}
	warm := l.sailor(core.MaxThroughput, core.Constraints{})
	warm.Opts.Warm = planner.NewWarmCache()
	var prev core.Plan
	var coldTot, warmTot time.Duration
	for i, pool := range pools {
		cold, err := l.sailor(core.MaxThroughput, core.Constraints{}).Plan(pool)
		if err != nil {
			return t, err
		}
		res, err := warm.Replan(prev, pool)
		if err != nil {
			return t, err
		}
		prev = res.Plan
		coldTot += cold.SearchTime
		warmTot += res.SearchTime
		speedup := "-"
		if res.SearchTime > 0 {
			speedup = fmtF(float64(cold.SearchTime)/float64(res.SearchTime), 1) + "x"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", pool.TotalGPUs()),
			cold.SearchTime.Round(10 * time.Microsecond).String(),
			res.SearchTime.Round(10 * time.Microsecond).String(),
			speedup,
			fmt.Sprintf("%d", cold.Explored),
			fmt.Sprintf("%d", res.Explored),
			fmt.Sprintf("%d", res.CacheHits),
			fmt.Sprintf("%t", res.Plan.String() == cold.Plan.String()),
		})
	}
	if warmTot > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"cumulative: cold %s vs warm %s (%sx) over %d replans; cache holds %d entries",
			coldTot.Round(time.Millisecond), warmTot.Round(time.Millisecond),
			fmtF(float64(coldTot)/float64(warmTot), 1), len(pools), warm.Opts.Warm.Entries()))
	}
	return t, nil
}
