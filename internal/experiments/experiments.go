// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a pure function returning a Table;
// cmd/sailor-bench prints them and bench_test.go times them. DESIGN.md §3
// maps experiment ids to paper artefacts.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/profiler"
	"repro/internal/sim"
)

// Table is one regenerated artefact.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	// Notes records harness-level caveats (deadline caps, substitutions).
	Notes []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Opts tunes experiment scale so benches stay tractable.
type Opts struct {
	// SlowPlannerCap bounds Metis/Oobleck/no-heuristics searches, like the
	// paper's 300 s Metis cap. Default 10 s.
	SlowPlannerCap time.Duration
	// Quick shrinks cluster sizes for smoke tests.
	Quick bool
	// Workers is the Sailor planner's search parallelism
	// (0 = runtime.NumCPU()). For searches that run to completion the
	// regenerated numbers are identical at any setting and only
	// wall-clock changes; deadline-capped cells (e.g. Table 3's DP-only
	// ablation) report whatever the cutoff allowed, which grows with the
	// worker count.
	Workers int
}

func (o Opts) cap() time.Duration {
	if o.SlowPlannerCap <= 0 {
		return 10 * time.Second
	}
	return o.SlowPlannerCap
}

// --- shared setup -----------------------------------------------------------

var (
	zoneC1a = cluster.GCPZone("us-central1", 'a')
	zoneC1b = cluster.GCPZone("us-central1", 'b')
	zoneC1c = cluster.GCPZone("us-central1", 'c')
	zoneW1a = cluster.GCPZone("us-west1", 'a')
	zoneW1b = cluster.GCPZone("us-west1", 'b')
	onprem  = cluster.OnPrem()
)

// lab bundles the per-model machinery every experiment needs.
type lab struct {
	cfg     model.Config
	prof    *profiler.Profile
	sim     *sim.Simulator
	gt      *groundtruth.Engine
	env     baselines.Env
	workers int
}

func newLab(cfg model.Config, o Opts, gpus ...core.GPUType) (*lab, error) {
	prof, err := profiler.Collect(cfg, gpus, nil, profiler.Options{Seed: 1})
	if err != nil {
		return nil, err
	}
	s := sim.New(cfg, prof)
	return &lab{
		cfg:     cfg,
		prof:    prof,
		sim:     s,
		gt:      groundtruth.New(cfg),
		env:     baselines.Env{Cfg: cfg, Prof: prof, Deadline: o.cap()},
		workers: o.Workers,
	}, nil
}

func (l *lab) sailor(obj core.Objective, cons core.Constraints) *planner.Planner {
	return planner.New(l.cfg, l.sim, planner.Options{
		Objective:   obj,
		Constraints: cons,
		Heuristics:  planner.AllHeuristics(),
		Workers:     l.workers,
		// Safety net only; Sailor's searches finish in seconds.
		Deadline: 2 * time.Minute,
	})
}

// sailorDeploy plans with Sailor and measures the plan on ground truth.
func (l *lab) sailorDeploy(pool *cluster.Pool, obj core.Objective, cons core.Constraints) (planner.Result, core.Estimate, error) {
	res, err := l.sailor(obj, cons).Plan(pool)
	if err != nil {
		return planner.Result{}, core.Estimate{}, err
	}
	meas, err := l.gt.Measure(res.Plan)
	if err != nil {
		return res, core.Estimate{}, err
	}
	return res, meas, nil
}

// fmtF renders a float with sensible precision.
func fmtF(v float64, prec int) string {
	return trimZeros(fmt.Sprintf("%.*f", prec, v))
}

func trimZeros(s string) string {
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// errStats summarises absolute relative errors (%) as a box-plot row.
type errStats struct{ vals []float64 }

func (e *errStats) add(est, real float64) {
	if real == 0 {
		return
	}
	e.vals = append(e.vals, 100*math.Abs(est-real)/real)
}

func (e *errStats) row(name string) []string {
	if len(e.vals) == 0 {
		return []string{name, "-", "-", "-", "-", "-"}
	}
	v := append([]float64(nil), e.vals...)
	sort.Float64s(v)
	q := func(p float64) float64 {
		idx := p * float64(len(v)-1)
		lo := int(idx)
		hi := lo + 1
		if hi >= len(v) {
			return v[len(v)-1]
		}
		f := idx - float64(lo)
		return v[lo]*(1-f) + v[hi]*f
	}
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	return []string{name,
		fmtF(v[0], 1), fmtF(q(0.5), 1), fmtF(mean, 1), fmtF(v[len(v)-1], 1),
		fmt.Sprintf("%d", len(v)),
	}
}

// uniformPlan builds a homogeneous plan for estimator sweeps.
func uniformPlan(cfg model.Config, g core.GPUType, z core.Zone, pp, dp, tp, mbs int) core.Plan {
	per := cfg.Layers / pp
	rem := cfg.Layers - per*pp
	plan := core.Plan{MicroBatchSize: mbs}
	first := 0
	for i := 0; i < pp; i++ {
		n := per
		if i < rem {
			n++
		}
		st := core.StagePlan{FirstLayer: first, NumLayers: n}
		for k := 0; k < dp; k++ {
			st.Replicas = append(st.Replicas, core.StageReplica{GPU: g, TP: tp, Zone: z})
		}
		plan.Stages = append(plan.Stages, st)
		first += n
	}
	return plan
}

// Registry maps experiment ids to runners, for cmd/sailor-bench.
var Registry = map[string]func(Opts) (Table, error){
	"fig1":   Figure1,
	"fig2":   Figure2,
	"fig3":   Figure3,
	"fig5a":  Figure5a,
	"fig5b":  Figure5b,
	"fig6":   Figure6,
	"fig7":   Figure7,
	"fig8a":  Figure8a,
	"fig8b":  Figure8b,
	"fig9a":  Figure9a,
	"fig9b":  Figure9b,
	"fig10":  Figure10,
	"fig11":  Figure11,
	"fig12":  Figure12,
	"fig13":  Figure13,
	"fig14":  Figure14,
	"tab1":   Table1,
	"tab2":   Table2,
	"tab3":   Table3,
	"scale":  Scalability,
	"reconf": Reconfiguration,
	"replan": ReplanLab,
}

// IDs returns registry keys in stable order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
