package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/trace"
)

// Figure1 regenerates the motivation figure: OPT-350M throughput and cost
// across homogeneous, heterogeneous, multi-zone and multi-region
// configurations c0-c6.
func Figure1(o Opts) (Table, error) {
	cfg := model.OPT350M()
	l, err := newLab(cfg, o, core.A100, core.V100)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig1",
		Title:   "OPT-350M throughput/cost across configurations (paper Fig. 1)",
		Headers: []string{"config", "description", "iters/sec", "USD/iter"},
	}

	addPlanned := func(label, desc string, pool *cluster.Pool) (core.Estimate, error) {
		_, meas, err := l.sailorDeploy(pool, core.MaxThroughput, core.Constraints{})
		if err != nil {
			return core.Estimate{}, err
		}
		t.Rows = append(t.Rows, []string{label, desc, fmtF(meas.Throughput(), 3), fmtF(meas.Cost(), 2)})
		return meas, nil
	}
	addMeasured := func(label, desc string, plan core.Plan) error {
		meas, err := l.gt.Measure(plan)
		if err != nil {
			return err
		}
		tput := fmtF(meas.Throughput(), 3)
		if !meas.FitsMemory {
			tput = "OOM"
		}
		t.Rows = append(t.Rows, []string{label, desc, tput, fmtF(meas.Cost(), 2)})
		return nil
	}

	if _, err := addPlanned("c0", "16 A100, 1 zone", cluster.NewPool().Set(zoneC1a, core.A100, 16)); err != nil {
		return t, err
	}
	if _, err := addPlanned("c1", "16 V100, 1 zone", cluster.NewPool().Set(zoneC1a, core.V100, 16)); err != nil {
		return t, err
	}
	if _, err := addPlanned("c2", "32 A100, 1 zone (unattainable)", cluster.NewPool().Set(zoneC1a, core.A100, 32)); err != nil {
		return t, err
	}
	if _, err := addPlanned("c3", "16 A100 + 16 V100, 1 zone",
		cluster.NewPool().Set(zoneC1a, core.A100, 16).Set(zoneC1a, core.V100, 16)); err != nil {
		return t, err
	}
	c4res, err := l.sailor(core.MaxThroughput, core.Constraints{}).Plan(
		cluster.NewPool().Set(zoneC1a, core.A100, 16).Set(zoneC1b, core.A100, 16))
	if err != nil {
		return t, err
	}
	if err := addMeasured("c4", "32 A100, 2 zones / 1 region", c4res.Plan); err != nil {
		return t, err
	}

	// c5: the same 16+16 heterogeneous resources as c3 with a bad
	// parallelization plan — deep pipeline alternating types, tiny mbs.
	bad := core.Plan{MicroBatchSize: 1}
	layers := []int{3, 3, 3, 3, 3, 3, 3, 3}
	first := 0
	for i, n := range layers {
		g := core.A100
		if i%2 == 1 {
			g = core.V100
		}
		bad.Stages = append(bad.Stages, core.StagePlan{
			FirstLayer: first, NumLayers: n,
			Replicas: []core.StageReplica{
				{GPU: g, TP: 2, Zone: zoneC1a}, {GPU: g, TP: 2, Zone: zoneC1a},
			},
		})
		first += n
	}
	if err := addMeasured("c5", "16 A100 + 16 V100, bad plan", bad); err != nil {
		return t, err
	}

	// c6: c4's plan spread across two regions instead of two zones.
	c6 := c4res.Plan
	c6.Stages = append([]core.StagePlan(nil), c4res.Plan.Stages...)
	for i := range c6.Stages {
		reps := append([]core.StageReplica(nil), c6.Stages[i].Replicas...)
		for j := range reps {
			if reps[j].Zone == zoneC1b {
				reps[j].Zone = zoneW1a
			}
		}
		c6.Stages[i].Replicas = reps
	}
	if err := addMeasured("c6", "32 A100, 2 regions", c6); err != nil {
		return t, err
	}
	t.Notes = append(t.Notes,
		"paper shape: c3/c4 beat c0; c5 wastes the same GPUs as c3; c6 costs more than c4")
	return t, nil
}

// Figure2 regenerates the A100 availability trace (two GCP zones, 8 hours).
func Figure2(o Opts) (Table, error) {
	tr, zoneA, zoneB := trace.GCPA100Trace(42)
	t := Table{
		ID:      "fig2",
		Title:   "A100 availability over 8h, 8 requested per zone (paper Fig. 2)",
		Headers: []string{"hour", zoneA.Name, zoneB.Name},
	}
	for at := time.Duration(0); at <= tr.Horizon; at += 30 * time.Minute {
		t.Rows = append(t.Rows, []string{
			fmtF(at.Hours(), 1),
			fmt.Sprintf("%d", tr.CountAt(at, zoneA, core.A100)),
			fmt.Sprintf("%d", tr.CountAt(at, zoneB, core.A100)),
		})
	}
	t.Notes = append(t.Notes, "synthetic regeneration of the April-2024 GCP trace shape (DESIGN.md)")
	return t, nil
}

// Figure3 regenerates the peak-memory comparison on GH200 nodes: five
// OPT-350M configurations, each baseline's estimate vs the real footprint.
func Figure3(o Opts) (Table, error) {
	type config struct {
		label           string
		gbs             int
		dp, pp, tp, mbs int
	}
	// Labels follow the paper's N-gbs / dp-pp-mbs axis annotations; tp is
	// implied by N*4 GPUs / (dp*pp).
	configs := []config{
		{"2-32/2-1-2", 32, 2, 1, 4, 2},
		{"4-64/2-2-1", 64, 2, 2, 4, 1},
		{"8-512/2-4-8", 512, 2, 4, 4, 8},
		{"16-1024/16-1-8", 1024, 16, 1, 4, 8},
		{"16-1024/8-2-8", 1024, 8, 2, 4, 8},
	}
	base := model.OPT350M()
	t := Table{
		ID:      "fig3",
		Title:   "Peak memory estimates vs real, OPT-350M on GH200 (paper Fig. 3), GB",
		Headers: []string{"config", "AMP", "Varuna", "Piper", "Metis", "FlashFlex", "Sailor", "Real"},
	}
	for _, c := range configs {
		cfg := base
		cfg.GlobalBatch = c.gbs
		l, err := newLab(cfg, o, core.GH200)
		if err != nil {
			return t, err
		}
		plan := uniformPlan(cfg, core.GH200, onprem, c.pp, c.dp, c.tp, c.mbs)
		row := []string{c.label}
		for _, name := range []string{"AMP", "Varuna", "Piper", "Metis", "FlashFlex"} {
			p, err := baselines.ByName(l.env, name)
			if err != nil {
				return t, err
			}
			est, ok := p.Estimator().PeakMemory(plan)
			if !ok {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmtF(float64(est)/(1<<30), 1))
		}
		peak, _, _, err := memory.Check(cfg, plan)
		if err != nil {
			return t, err
		}
		row = append(row, fmtF(float64(peak)/(1<<30), 1))
		meas, err := l.gt.Measure(plan)
		if err != nil {
			return t, err
		}
		row = append(row, fmtF(float64(meas.PeakMemory)/(1<<30), 1))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper shape: baselines 25-95% off; Sailor within ~6% of real")
	return t, nil
}

// estimationSweep runs the Figure 5/6 methodology: a sweep of plans, each
// estimator's error vs ground truth, summarised as box statistics.
func estimationSweep(cfg model.Config, plans []core.Plan, gpus []core.GPUType, o Opts, memMode bool, id, title string) (Table, error) {
	l, err := newLab(cfg, o, gpus...)
	if err != nil {
		return Table{}, err
	}
	names := []string{"Piper", "Varuna", "Aceso", "Metis", "FlashFlex"}
	stats := map[string]*errStats{"Sailor": {}}
	for _, n := range names {
		stats[n] = &errStats{}
	}
	used := 0
	for _, plan := range plans {
		meas, err := l.gt.Measure(plan)
		if err != nil || !meas.FitsMemory {
			continue // only deployable configs can be measured, as on a testbed
		}
		used++
		for _, n := range names {
			p, err := baselines.ByName(l.env, n)
			if err != nil {
				return Table{}, err
			}
			if memMode {
				est, ok := p.Estimator().PeakMemory(plan)
				if ok {
					stats[n].add(float64(est), float64(meas.PeakMemory))
				}
			} else {
				est, err := p.Estimator().IterTime(plan)
				if err == nil {
					stats[n].add(est, meas.IterTime)
				}
			}
		}
		if memMode {
			peak, _, _, err := memory.Check(cfg, plan)
			if err == nil {
				stats["Sailor"].add(float64(peak), float64(meas.PeakMemory))
			}
		} else {
			est, err := l.sim.Estimate(plan)
			if err == nil {
				stats["Sailor"].add(est.IterTime, meas.IterTime)
			}
		}
	}
	t := Table{
		ID:      id,
		Title:   title,
		Headers: []string{"planner", "min%", "median%", "mean%", "max%", "n"},
	}
	for _, n := range append(names, "Sailor") {
		t.Rows = append(t.Rows, stats[n].row(n))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d deployable configurations in the sweep", used))
	return t, nil
}

// gh200Sweep is the homogeneous plan sweep behind Figures 5a/5b.
func gh200Sweep(cfg model.Config) []core.Plan {
	var plans []core.Plan
	for _, pp := range []int{1, 2, 4, 8} {
		for _, dp := range []int{1, 2, 4} {
			for _, tp := range []int{1, 2, 4} {
				for _, mbs := range []int{1, 2, 4} {
					if cfg.GlobalBatch < dp*mbs {
						continue
					}
					plans = append(plans, uniformPlan(cfg, core.GH200, onprem, pp, dp, tp, mbs))
				}
			}
		}
	}
	return plans
}

// Figure5a regenerates the homogeneous peak-memory estimation-error boxes.
func Figure5a(o Opts) (Table, error) {
	cfg := model.OPT350M()
	return estimationSweep(cfg, gh200Sweep(cfg), []core.GPUType{core.GH200}, o, true,
		"fig5a", "Peak-memory estimation error, GH200 homogeneous (paper Fig. 5a)")
}

// Figure5b regenerates the homogeneous iteration-time estimation-error boxes.
func Figure5b(o Opts) (Table, error) {
	cfg := model.OPT350M()
	return estimationSweep(cfg, gh200Sweep(cfg), []core.GPUType{core.GH200}, o, false,
		"fig5b", "Iteration-time estimation error, GH200 homogeneous (paper Fig. 5b)")
}

// Figure6 regenerates the heterogeneous iteration-time error boxes on the
// RTX cluster (2x8 Titan-RTX, 3x8 RTX-2080, 2x8 RTX-3090).
func Figure6(o Opts) (Table, error) {
	cfg := model.OPT350M()
	types := []core.GPUType{core.TitanRTX, core.RTX2080, core.RTX3090}
	var plans []core.Plan
	// Mixed-type pipelines: each stage on a different GPU type, varying
	// depth, DP, TP and microbatch size.
	for _, pp := range []int{2, 3} {
		for _, dp := range []int{1, 2} {
			for _, tp := range []int{2, 4, 8} {
				for _, mbs := range []int{1, 2} {
					plan := core.Plan{MicroBatchSize: mbs}
					layers := splitLayers(cfg.Layers, pp)
					first := 0
					for i := 0; i < pp; i++ {
						g := types[i%len(types)]
						st := core.StagePlan{FirstLayer: first, NumLayers: layers[i]}
						for k := 0; k < dp; k++ {
							st.Replicas = append(st.Replicas, core.StageReplica{GPU: g, TP: tp, Zone: onprem})
						}
						plan.Stages = append(plan.Stages, st)
						first += layers[i]
					}
					plans = append(plans, plan)
				}
			}
		}
	}
	return estimationSweep(cfg, plans, types, o, false,
		"fig6", "Iteration-time estimation error, heterogeneous RTX cluster (paper Fig. 6)")
}

func splitLayers(l, p int) []int {
	out := make([]int, p)
	base, rem := l/p, l%p
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Figure7 regenerates the homogeneous planner comparison: OPT-350M on 32,
// 80, and 128 A100 GPUs in one zone, every planner deployed on the
// ground-truth cluster.
func Figure7(o Opts) (Table, error) {
	cfg := model.OPT350M()
	l, err := newLab(cfg, o, core.A100)
	if err != nil {
		return Table{}, err
	}
	sizes := []int{32, 80, 128}
	if o.Quick {
		sizes = []int{32}
	}
	t := Table{
		ID:      "fig7",
		Title:   "Homogeneous A100 planner comparison, OPT-350M iters/sec (paper Fig. 7)",
		Headers: append([]string{"planner"}, colLabels(sizes, "%d A100")...),
	}
	names := []string{"Varuna", "AMP", "Piper", "Galvatron", "Aceso", "FlashFlex", "Metis", "DTFM"}
	rows := map[string][]string{}
	for _, n := range append(names, "Sailor") {
		rows[n] = []string{n}
	}
	for _, size := range sizes {
		pool := cluster.NewPool().Set(zoneC1a, core.A100, size)
		for _, n := range names {
			p, err := baselines.ByName(l.env, n)
			if err != nil {
				return t, err
			}
			d, err := baselines.Deploy(p, pool, l.gt)
			if err != nil {
				rows[n] = append(rows[n], "X")
				continue
			}
			rows[n] = append(rows[n], fmtF(d.Measured.Throughput(), 3))
		}
		_, meas, err := l.sailorDeploy(pool, core.MaxThroughput, core.Constraints{})
		if err != nil {
			rows["Sailor"] = append(rows["Sailor"], "X")
		} else {
			rows["Sailor"] = append(rows["Sailor"], fmtF(meas.Throughput(), 3))
		}
	}
	for _, n := range append(names, "Sailor") {
		t.Rows = append(t.Rows, rows[n])
	}
	t.Notes = append(t.Notes, "paper shape: Sailor highest; Varuna often X (2D + bad memory model)")
	return t, nil
}

func colLabels(sizes []int, format string) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf(format, s)
	}
	return out
}
