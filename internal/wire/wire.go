// Package wire is the versioned serialization boundary of the planner
// service: JSON shapes (DTOs) for every domain type a request or response
// carries — models, pools, constraints, plans, estimates, planner results,
// and elastic-run reports — plus the request/response messages of the
// sailor.Service front door.
//
// The package exists so that the domain packages stay codec-free:
// internal/core and internal/cluster know nothing about JSON, and wire owns
// the mapping in both directions. Every top-level message carries a schema
// version (Version); decoding rejects versions this build does not speak
// with a clear error instead of guessing.
//
// Encoding is deterministic: DTOs contain no maps (pools serialize as
// entry lists in the canonical zone-then-GPU order of cluster.Entries), and
// encoding/json emits struct fields in declaration order — so structurally
// equal values marshal to identical bytes. That is what lets the service
// determinism tests compare responses byte-for-byte against in-process
// planning, and what makes golden tests of CLI -json output stable.
//
// Round-trip guarantee: for every codec pair, Unmarshal(Marshal(x))
// reproduces x — exactly (reflect.DeepEqual) for plans, constraints,
// models, estimates, results, and reports; canonically (equal String
// rendering and equal re-encoding) for pools, whose zero-count cells are
// dropped on encode. FuzzWireRoundTrip in this package enforces both.
package wire

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/runtime"
	"repro/internal/trace"
)

// Version is the wire schema version this build speaks. Bump it when a DTO
// changes incompatibly; decoders reject every other version.
const Version = 1

// Check validates a message's schema version tag.
func Check(v int) error {
	if v != Version {
		return fmt.Errorf("wire: unsupported schema version %d (this build speaks v%d)", v, Version)
	}
	return nil
}

// Zone mirrors core.Zone.
type Zone struct {
	Region string `json:"region"`
	Name   string `json:"name"`
}

// FromZone converts a core zone to its wire shape.
func FromZone(z core.Zone) Zone { return Zone{Region: z.Region, Name: z.Name} }

// Core converts back to the domain type.
func (z Zone) Core() core.Zone { return core.Zone{Region: z.Region, Name: z.Name} }

// Replica mirrors core.StageReplica.
type Replica struct {
	GPU  string `json:"gpu"`
	TP   int    `json:"tp"`
	Zone Zone   `json:"zone"`
}

// Stage mirrors core.StagePlan.
type Stage struct {
	FirstLayer int       `json:"first_layer"`
	NumLayers  int       `json:"num_layers"`
	Replicas   []Replica `json:"replicas"`
}

// Plan mirrors core.Plan.
type Plan struct {
	Stages         []Stage `json:"stages"`
	MicroBatchSize int     `json:"micro_batch_size"`
	Recompute      bool    `json:"recompute"`
}

// FromPlan converts a parallelization plan to its wire shape.
func FromPlan(p core.Plan) Plan {
	out := Plan{MicroBatchSize: p.MicroBatchSize, Recompute: p.Recompute}
	if p.Stages != nil {
		out.Stages = make([]Stage, len(p.Stages))
	}
	for i, s := range p.Stages {
		st := Stage{FirstLayer: s.FirstLayer, NumLayers: s.NumLayers}
		if s.Replicas != nil {
			st.Replicas = make([]Replica, len(s.Replicas))
		}
		for j, r := range s.Replicas {
			st.Replicas[j] = Replica{GPU: string(r.GPU), TP: r.TP, Zone: FromZone(r.Zone)}
		}
		out.Stages[i] = st
	}
	return out
}

// Core converts back to the domain type.
func (p Plan) Core() core.Plan {
	out := core.Plan{MicroBatchSize: p.MicroBatchSize, Recompute: p.Recompute}
	if p.Stages != nil {
		out.Stages = make([]core.StagePlan, len(p.Stages))
	}
	for i, s := range p.Stages {
		st := core.StagePlan{FirstLayer: s.FirstLayer, NumLayers: s.NumLayers}
		if s.Replicas != nil {
			st.Replicas = make([]core.StageReplica, len(s.Replicas))
		}
		for j, r := range s.Replicas {
			st.Replicas[j] = core.StageReplica{GPU: core.GPUType(r.GPU), TP: r.TP, Zone: r.Zone.Core()}
		}
		out.Stages[i] = st
	}
	return out
}

// PoolEntry is one (zone, GPU type, count) availability cell.
type PoolEntry struct {
	Zone  Zone   `json:"zone"`
	GPU   string `json:"gpu"`
	Count int    `json:"count"`
}

// Pool mirrors cluster.Pool as its canonical entry list (zone name then GPU
// type ascending, zero-count cells dropped).
type Pool struct {
	Entries []PoolEntry `json:"entries"`
}

// FromPool converts an availability pool to its wire shape.
func FromPool(p *cluster.Pool) Pool {
	var out Pool
	for _, e := range p.Entries() {
		out.Entries = append(out.Entries, PoolEntry{Zone: FromZone(e.Zone), GPU: string(e.GPU), Count: e.Count})
	}
	return out
}

// Cluster converts back to the domain type.
func (p Pool) Cluster() *cluster.Pool {
	out := cluster.NewPool()
	for _, e := range p.Entries {
		out.Set(e.Zone.Core(), core.GPUType(e.GPU), e.Count)
	}
	return out
}

// Constraints mirrors core.Constraints.
type Constraints struct {
	MaxCostPerIter float64 `json:"max_cost_per_iter"`
	MinThroughput  float64 `json:"min_throughput"`
	MaxIterTime    float64 `json:"max_iter_time"`
}

// FromConstraints converts plan constraints to their wire shape.
func FromConstraints(c core.Constraints) Constraints {
	return Constraints{MaxCostPerIter: c.MaxCostPerIter, MinThroughput: c.MinThroughput, MaxIterTime: c.MaxIterTime}
}

// Core converts back to the domain type.
func (c Constraints) Core() core.Constraints {
	return core.Constraints{MaxCostPerIter: c.MaxCostPerIter, MinThroughput: c.MinThroughput, MaxIterTime: c.MaxIterTime}
}

// Model mirrors model.Config.
type Model struct {
	Name        string `json:"name"`
	Hidden      int    `json:"hidden"`
	Layers      int    `json:"layers"`
	Heads       int    `json:"heads"`
	Vocab       int    `json:"vocab"`
	SeqLen      int    `json:"seq_len"`
	GlobalBatch int    `json:"global_batch"`
}

// FromModel converts a training-job config to its wire shape.
func FromModel(m model.Config) Model {
	return Model{Name: m.Name, Hidden: m.Hidden, Layers: m.Layers, Heads: m.Heads,
		Vocab: m.Vocab, SeqLen: m.SeqLen, GlobalBatch: m.GlobalBatch}
}

// Config converts back to the domain type.
func (m Model) Config() model.Config {
	return model.Config{Name: m.Name, Hidden: m.Hidden, Layers: m.Layers, Heads: m.Heads,
		Vocab: m.Vocab, SeqLen: m.SeqLen, GlobalBatch: m.GlobalBatch}
}

// Estimate mirrors core.Estimate.
type Estimate struct {
	IterTime       float64   `json:"iter_time"`
	ComputeCost    float64   `json:"compute_cost"`
	EgressCost     float64   `json:"egress_cost"`
	PeakMemory     int64     `json:"peak_memory"`
	PeakMemoryGPU  string    `json:"peak_memory_gpu"`
	FitsMemory     bool      `json:"fits_memory"`
	StageTimes     []float64 `json:"stage_times"`
	StragglerStage int       `json:"straggler_stage"`
}

// FromEstimate converts a plan evaluation to its wire shape.
func FromEstimate(e core.Estimate) Estimate {
	return Estimate{
		IterTime:       e.IterTime,
		ComputeCost:    e.ComputeCost,
		EgressCost:     e.EgressCost,
		PeakMemory:     e.PeakMemory,
		PeakMemoryGPU:  string(e.PeakMemoryGPU),
		FitsMemory:     e.FitsMemory,
		StageTimes:     e.StageTimes,
		StragglerStage: e.StragglerStage,
	}
}

// Core converts back to the domain type.
func (e Estimate) Core() core.Estimate {
	return core.Estimate{
		IterTime:       e.IterTime,
		ComputeCost:    e.ComputeCost,
		EgressCost:     e.EgressCost,
		PeakMemory:     e.PeakMemory,
		PeakMemoryGPU:  core.GPUType(e.PeakMemoryGPU),
		FitsMemory:     e.FitsMemory,
		StageTimes:     e.StageTimes,
		StragglerStage: e.StragglerStage,
	}
}

// PlanResult mirrors planner.Result. SearchTime crosses the wire as integer
// nanoseconds; it is the one wall-clock (non-deterministic) field, which
// determinism tests and golden files zero before comparing.
type PlanResult struct {
	Plan            Plan     `json:"plan"`
	Estimate        Estimate `json:"estimate"`
	SearchTimeNS    int64    `json:"search_time_ns"`
	Explored        int      `json:"explored"`
	OOMPlansEmitted int      `json:"oom_plans_emitted"`
	WarmStart       bool     `json:"warm_start"`
	CacheHits       int      `json:"cache_hits"`
	// Degraded marks a deadline-cut search answered with the job's warm
	// incumbent instead of a fresh result; omitted when false so existing
	// goldens are byte-unchanged.
	Degraded bool `json:"degraded,omitempty"`
	// SpeculativeHit marks a result served from the service's speculation
	// cache (precomputed for a forecast pool before the event arrived);
	// omitted when false so existing goldens are byte-unchanged.
	SpeculativeHit bool `json:"speculative_hit,omitempty"`
}

// FromResult converts a planner result to its wire shape.
func FromResult(r planner.Result) PlanResult {
	return PlanResult{
		Plan:            FromPlan(r.Plan),
		Estimate:        FromEstimate(r.Estimate),
		SearchTimeNS:    r.SearchTime.Nanoseconds(),
		Explored:        r.Explored,
		OOMPlansEmitted: r.OOMPlansEmitted,
		WarmStart:       r.WarmStart,
		CacheHits:       r.CacheHits,
		Degraded:        r.Degraded,
		SpeculativeHit:  r.SpeculativeHit,
	}
}

// Result converts back to the domain type.
func (r PlanResult) Result() planner.Result {
	return planner.Result{
		Plan:            r.Plan.Core(),
		Estimate:        r.Estimate.Core(),
		SearchTime:      time.Duration(r.SearchTimeNS),
		Explored:        r.Explored,
		OOMPlansEmitted: r.OOMPlansEmitted,
		WarmStart:       r.WarmStart,
		CacheHits:       r.CacheHits,
		Degraded:        r.Degraded,
		SpeculativeHit:  r.SpeculativeHit,
	}
}

// PhaseTimings mirrors runtime.PhaseTimings.
type PhaseTimings struct {
	Planning        float64 `json:"planning"`
	Cleanup         float64 `json:"cleanup"`
	Broadcast       float64 `json:"broadcast"`
	GroupInit       float64 `json:"group_init"`
	ModelRedef      float64 `json:"model_redef"`
	Dataloader      float64 `json:"dataloader"`
	CkptLoad        float64 `json:"ckpt_load"`
	RolledBackIters int     `json:"rolled_back_iters"`
	PlanCacheHits   int     `json:"plan_cache_hits"`
	PlanExplored    int     `json:"plan_explored"`
}

// FromPhaseTimings converts a reconfiguration breakdown to its wire shape.
func FromPhaseTimings(t runtime.PhaseTimings) PhaseTimings {
	return PhaseTimings{
		Planning:        t.Planning,
		Cleanup:         t.Cleanup,
		Broadcast:       t.Broadcast,
		GroupInit:       t.GroupInit,
		ModelRedef:      t.ModelRedef,
		Dataloader:      t.Dataloader,
		CkptLoad:        t.CkptLoad,
		RolledBackIters: t.RolledBackIters,
		PlanCacheHits:   t.PlanCacheHits,
		PlanExplored:    t.PlanExplored,
	}
}

// Runtime converts back to the domain type.
func (t PhaseTimings) Runtime() runtime.PhaseTimings {
	return runtime.PhaseTimings{
		Planning:        t.Planning,
		Cleanup:         t.Cleanup,
		Broadcast:       t.Broadcast,
		GroupInit:       t.GroupInit,
		ModelRedef:      t.ModelRedef,
		Dataloader:      t.Dataloader,
		CkptLoad:        t.CkptLoad,
		RolledBackIters: t.RolledBackIters,
		PlanCacheHits:   t.PlanCacheHits,
		PlanExplored:    t.PlanExplored,
	}
}

// Report mirrors runtime.Report.
type Report struct {
	IterationsDone   int            `json:"iterations_done"`
	VirtualSeconds   float64        `json:"virtual_seconds"`
	Reconfigs        []PhaseTimings `json:"reconfigs"`
	PlansUsed        []Plan         `json:"plans_used"`
	LostIterations   int            `json:"lost_iterations"`
	CheckpointsTaken int            `json:"checkpoints_taken"`
	PlanningSeconds  float64        `json:"planning_seconds"`
	PlanCacheHits    int            `json:"plan_cache_hits"`
}

// FromReport converts an elastic-run report to its wire shape.
func FromReport(r runtime.Report) Report {
	out := Report{
		IterationsDone:   r.IterationsDone,
		VirtualSeconds:   r.VirtualSeconds,
		LostIterations:   r.LostIterations,
		CheckpointsTaken: r.CheckpointsTaken,
		PlanningSeconds:  r.PlanningSeconds,
		PlanCacheHits:    r.PlanCacheHits,
	}
	if r.Reconfigs != nil {
		out.Reconfigs = make([]PhaseTimings, len(r.Reconfigs))
		for i, t := range r.Reconfigs {
			out.Reconfigs[i] = FromPhaseTimings(t)
		}
	}
	if r.PlansUsed != nil {
		out.PlansUsed = make([]Plan, len(r.PlansUsed))
		for i, p := range r.PlansUsed {
			out.PlansUsed[i] = FromPlan(p)
		}
	}
	return out
}

// FleetEvent mirrors trace.Event: one availability change applied to the
// fleet ledger. The timestamp crosses the wire as integer nanoseconds.
type FleetEvent struct {
	AtNS  int64  `json:"at_ns"`
	Zone  Zone   `json:"zone"`
	GPU   string `json:"gpu"`
	Delta int    `json:"delta"`
}

// FromFleetEvent converts an availability event to its wire shape.
func FromFleetEvent(e trace.Event) FleetEvent {
	return FleetEvent{AtNS: e.At.Nanoseconds(), Zone: FromZone(e.Zone), GPU: string(e.GPU), Delta: e.Delta}
}

// Trace converts back to the domain type.
func (e FleetEvent) Trace() trace.Event {
	return trace.Event{At: time.Duration(e.AtNS), Zone: e.Zone.Core(), GPU: core.GPUType(e.GPU), Delta: e.Delta}
}

// FromLease converts a fleet lease to its wire table row.
func FromLease(le fleet.Lease) LeaseInfo {
	return LeaseInfo{
		Job:             le.Job,
		Priority:        le.Priority,
		GPUs:            le.GPUs(),
		AcquiredVersion: le.Acquired,
		Plan:            FromPlan(le.Plan),
	}
}

// FromFleetSnapshot converts a ledger snapshot to the wire stats shape.
func FromFleetSnapshot(s fleet.Snapshot) FleetStats {
	out := FleetStats{
		Version:      s.Version,
		CapacityGPUs: s.Capacity.TotalGPUs(),
		FreeGPUs:     s.Free.TotalGPUs(),
		JobCapGPUs:   s.JobCap,
		Capacity:     FromPool(s.Capacity),
		Free:         FromPool(s.Free),
	}
	out.LeasedGPUs = out.CapacityGPUs - out.FreeGPUs
	for _, le := range s.Leases {
		out.Leases = append(out.Leases, FromLease(le))
	}
	return out
}

// Runtime converts back to the domain type.
func (r Report) Runtime() runtime.Report {
	out := runtime.Report{
		IterationsDone:   r.IterationsDone,
		VirtualSeconds:   r.VirtualSeconds,
		LostIterations:   r.LostIterations,
		CheckpointsTaken: r.CheckpointsTaken,
		PlanningSeconds:  r.PlanningSeconds,
		PlanCacheHits:    r.PlanCacheHits,
	}
	if r.Reconfigs != nil {
		out.Reconfigs = make([]runtime.PhaseTimings, len(r.Reconfigs))
		for i, t := range r.Reconfigs {
			out.Reconfigs[i] = t.Runtime()
		}
	}
	if r.PlansUsed != nil {
		out.PlansUsed = make([]core.Plan, len(r.PlansUsed))
		for i, p := range r.PlansUsed {
			out.PlansUsed[i] = p.Core()
		}
	}
	return out
}
