package wire

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/runtime"
)

func zone(r, n string) core.Zone { return core.Zone{Region: r, Name: n} }

func samplePlan() core.Plan {
	za := zone("us-central1", "us-central1-a")
	zb := zone("us-east1", "us-east1-b")
	return core.Plan{
		MicroBatchSize: 2,
		Recompute:      true,
		Stages: []core.StagePlan{
			{FirstLayer: 0, NumLayers: 12, Replicas: []core.StageReplica{
				{GPU: core.A100, TP: 4, Zone: za},
				{GPU: core.V100, TP: 2, Zone: za},
			}},
			{FirstLayer: 12, NumLayers: 12, Replicas: []core.StageReplica{
				{GPU: core.A100, TP: 2, Zone: zb},
				{GPU: core.A100, TP: 2, Zone: zb},
			}},
		},
	}
}

func samplePool() *cluster.Pool {
	return cluster.NewPool().
		Set(zone("us-central1", "us-central1-a"), core.A100, 16).
		Set(zone("us-central1", "us-central1-a"), core.V100, 8).
		Set(zone("us-east1", "us-east1-b"), core.A100, 4)
}

func sampleEstimate() core.Estimate {
	return core.Estimate{
		IterTime: 1.5, ComputeCost: 0.25, EgressCost: 0.03,
		PeakMemory: 17 << 30, PeakMemoryGPU: core.A100, FitsMemory: true,
		StageTimes: []float64{0.7, 0.8}, StragglerStage: 1,
	}
}

func sampleResult() planner.Result {
	return planner.Result{
		Plan: samplePlan(), Estimate: sampleEstimate(),
		SearchTime: 1234 * time.Microsecond,
		Explored:   4217, OOMPlansEmitted: 1, WarmStart: true, CacheHits: 99,
	}
}

func sampleReport() runtime.Report {
	return runtime.Report{
		IterationsDone: 120, VirtualSeconds: 7200, LostIterations: 4,
		CheckpointsTaken: 23, PlanningSeconds: 0.25, PlanCacheHits: 57,
		Reconfigs: []runtime.PhaseTimings{
			{Planning: 0.1, Broadcast: 1.0, PlanExplored: 300},
			{Planning: 0.15, Cleanup: 0.2, GroupInit: 1.1, ModelRedef: 0.4,
				Dataloader: 0.3, CkptLoad: 1.2, RolledBackIters: 4,
				PlanCacheHits: 57, PlanExplored: 40},
		},
		PlansUsed: []core.Plan{samplePlan(), samplePlan()},
	}
}

func TestModelRoundTrip(t *testing.T) {
	in := model.GPTNeo27B()
	data, err := MarshalModel(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed model: %+v vs %+v", out, in)
	}
}

func TestPlanRoundTrip(t *testing.T) {
	in := samplePlan()
	data, err := MarshalPlan(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip changed plan:\n%+v\nvs\n%+v", out, in)
	}
	// The zero plan round-trips too (empty replans carry it).
	data, err = MarshalPlan(core.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	out, err = UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, core.Plan{}) {
		t.Errorf("zero plan round trip = %+v", out)
	}
}

func TestPoolRoundTrip(t *testing.T) {
	in := samplePool()
	data, err := MarshalPool(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalPool(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != in.String() {
		t.Errorf("round trip changed pool:\n%svs\n%s", out, in)
	}
	// Canonical form: re-encoding the decoded pool is byte-identical.
	again, err := MarshalPool(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Errorf("pool encoding not canonical:\n%s\nvs\n%s", again, data)
	}
}

func TestConstraintsRoundTrip(t *testing.T) {
	in := core.Constraints{MaxCostPerIter: 1.25, MinThroughput: 0.05, MaxIterTime: 30}
	data, err := MarshalConstraints(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalConstraints(data)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed constraints: %+v vs %+v", out, in)
	}
}

func TestEstimateRoundTrip(t *testing.T) {
	in := sampleEstimate()
	data, err := MarshalEstimate(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalEstimate(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip changed estimate:\n%+v\nvs\n%+v", out, in)
	}
}

func TestPlanResultRoundTrip(t *testing.T) {
	in := sampleResult()
	data, err := MarshalPlanResult(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalPlanResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip changed result:\n%+v\nvs\n%+v", out, in)
	}
}

func TestReportRoundTrip(t *testing.T) {
	in := sampleReport()
	data, err := MarshalReport(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip changed report:\n%+v\nvs\n%+v", out, in)
	}
}

// TestDeterministicEncoding: structurally equal values marshal to identical
// bytes — the property the service determinism tests and the CLI golden
// files build on.
func TestDeterministicEncoding(t *testing.T) {
	a, err := MarshalPlanResult(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalPlanResult(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("equal results marshalled differently:\n%s\nvs\n%s", a, b)
	}
}

func TestUnknownVersionRejected(t *testing.T) {
	data, err := MarshalPlan(samplePlan())
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env.V = Version + 1
	bad, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPlan(bad); err == nil || !strings.Contains(err.Error(), "unsupported schema version") {
		t.Errorf("future version must be rejected with a clear error, got %v", err)
	}
	if err := Check(Version); err != nil {
		t.Errorf("Check(Version) = %v", err)
	}
	if err := Check(0); err == nil {
		t.Error("Check(0) must fail")
	}
}

func TestKindMismatchRejected(t *testing.T) {
	data, err := MarshalPool(samplePool())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPlan(data); err == nil || !strings.Contains(err.Error(), `kind "pool"`) {
		t.Errorf("kind mismatch must be rejected, got %v", err)
	}
}

func TestGarbageRejected(t *testing.T) {
	if _, err := UnmarshalPlan([]byte("not json")); err == nil {
		t.Error("garbage must not decode")
	}
	if _, err := UnmarshalReport([]byte(`{"v":1,"kind":"report","body":"nope"}`)); err == nil {
		t.Error("mistyped body must not decode")
	}
}
