package wire

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/trace"
)

func fleetTestPlan(z core.Zone, n, tp int) core.Plan {
	reps := make([]core.StageReplica, n)
	for i := range reps {
		reps[i] = core.StageReplica{GPU: core.A100, TP: tp, Zone: z}
	}
	return core.Plan{MicroBatchSize: 2, Stages: []core.StagePlan{
		{FirstLayer: 0, NumLayers: 24, Replicas: reps},
	}}
}

func TestFleetEventRoundTrip(t *testing.T) {
	ev := trace.Event{
		At:    90 * time.Minute,
		Zone:  cluster.GCPZone("europe-west4", 'a'),
		GPU:   core.V100,
		Delta: -3,
	}
	got := FromFleetEvent(ev).Trace()
	if got != ev {
		t.Errorf("round trip changed event: %+v vs %+v", got, ev)
	}
	// Deterministic encoding: equal events marshal byte-identically.
	a, err := json.Marshal(FromFleetEvent(ev))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(FromFleetEvent(got))
	if !bytes.Equal(a, b) {
		t.Error("equal events marshal differently")
	}
}

func TestFromLeaseAndSnapshot(t *testing.T) {
	z := cluster.GCPZone("us-central1", 'a')
	l := fleet.NewLedger(cluster.NewPool().Set(z, core.A100, 16))
	if err := l.Acquire("lo", 1, fleetTestPlan(z, 1, 4)); err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire("hi", 5, fleetTestPlan(z, 2, 4)); err != nil {
		t.Fatal(err)
	}
	st := FromFleetSnapshot(l.Snapshot())
	if st.CapacityGPUs != 16 || st.LeasedGPUs != 12 || st.FreeGPUs != 4 {
		t.Errorf("totals = %d/%d/%d, want 16/12/4", st.CapacityGPUs, st.LeasedGPUs, st.FreeGPUs)
	}
	if st.Version != 2 {
		t.Errorf("version = %d, want 2 after two grants", st.Version)
	}
	if len(st.Leases) != 2 || st.Leases[0].Job != "hi" || st.Leases[1].Job != "lo" {
		t.Fatalf("lease table = %+v, want [hi lo] in admission order", st.Leases)
	}
	row := st.Leases[0]
	if row.GPUs != 8 || row.Priority != 5 || row.AcquiredVersion != 2 {
		t.Errorf("hi row = %+v, want 8 GPUs at priority 5, acquired v2", row)
	}
	if got := row.Plan.Core(); got.GPUCount() != 8 {
		t.Errorf("lease plan did not round-trip: %v", got)
	}
	// Free/Capacity pools carry the cell-level detail.
	if st.Free.Cluster().Available(z, core.A100) != 4 {
		t.Error("free pool lost cell detail")
	}
}
