package wire

// Request/response messages of the sailor.Service front door. Each message
// is one rpc frame body; the V tag is checked on both ends so a client and
// daemon from different schema generations fail loudly instead of
// misreading each other.

// Method names the service registers on the rpc layer.
const (
	MethodOpenJob    = "sailor.open-job"
	MethodPlan       = "sailor.plan"
	MethodReplan     = "sailor.replan"
	MethodSimulate   = "sailor.simulate"
	MethodCloseJob   = "sailor.close-job"
	MethodStats      = "sailor.stats"
	MethodSetFleet   = "sailor.set-fleet"
	MethodFleetEvent = "sailor.fleet-event"
	MethodRebalance  = "sailor.rebalance"
	MethodFleetStats = "sailor.fleet-stats"
)

// OpenJobRequest registers a named job: the model to profile, the GPU
// types its pools may contain, and the job's fleet priority. Tenants
// opening jobs with the same (model, GPU set, seed) shape share one
// profiled system behind the scenes.
type OpenJobRequest struct {
	V     int      `json:"v"`
	Job   string   `json:"job"`
	Model Model    `json:"model"`
	GPUs  []string `json:"gpus"`
	// Priority orders the job in fleet mode: higher keeps capacity longer
	// under contention and replans earlier (ties break on job name).
	// Ignored outside fleet mode.
	Priority int `json:"priority"`
}

// OpenJobResponse acknowledges an OpenJobRequest.
type OpenJobResponse struct {
	V int `json:"v"`
}

// PlanRequest asks for a cold plan of a pool for an open job.
type PlanRequest struct {
	V           int         `json:"v"`
	Job         string      `json:"job"`
	Pool        Pool        `json:"pool"`
	Objective   string      `json:"objective"`
	Constraints Constraints `json:"constraints"`
}

// PlanResponse carries the planner result back; it answers both
// PlanRequest and ReplanRequest.
type PlanResponse struct {
	V      int        `json:"v"`
	Result PlanResult `json:"result"`
}

// ReplanRequest asks for a warm replan: plan Pool starting from the
// previously deployed Prev, against the job's persistent warm cache.
type ReplanRequest struct {
	V           int         `json:"v"`
	Job         string      `json:"job"`
	Prev        Plan        `json:"prev"`
	Pool        Pool        `json:"pool"`
	Objective   string      `json:"objective"`
	Constraints Constraints `json:"constraints"`
}

// SimulateRequest asks for an analytical evaluation of a plan.
type SimulateRequest struct {
	V    int    `json:"v"`
	Job  string `json:"job"`
	Plan Plan   `json:"plan"`
}

// SimulateResponse carries the simulator estimate back.
type SimulateResponse struct {
	V        int      `json:"v"`
	Estimate Estimate `json:"estimate"`
}

// CloseJobRequest releases a named job (its shared profiled system stays
// cached for future tenants).
type CloseJobRequest struct {
	V   int    `json:"v"`
	Job string `json:"job"`
}

// CloseJobResponse acknowledges a CloseJobRequest.
type CloseJobResponse struct {
	V int `json:"v"`
}

// StatsRequest asks for a service counter snapshot.
type StatsRequest struct {
	V int `json:"v"`
}

// StatsResponse carries the snapshot back.
type StatsResponse struct {
	V     int          `json:"v"`
	Stats ServiceStats `json:"stats"`
}

// ServiceStats is a point-in-time snapshot of the service's counters.
type ServiceStats struct {
	// UptimeSeconds is the wall-clock age of the service.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts every front-door call (plans, replans, simulates).
	Requests uint64 `json:"requests"`
	// QPS is Requests averaged over the uptime.
	QPS float64 `json:"qps"`
	// Plans/Replans/Simulates split Requests by operation.
	Plans     uint64 `json:"plans"`
	Replans   uint64 `json:"replans"`
	Simulates uint64 `json:"simulates"`
	// Errors counts requests that returned an error.
	Errors uint64 `json:"errors"`
	// InFlight is the number of requests currently executing.
	InFlight int64 `json:"in_flight"`
	// JobsOpen is the number of currently open jobs.
	JobsOpen int `json:"jobs_open"`
	// SystemsCached is the profiled-system LRU's current size;
	// SystemCacheHits/Misses count OpenJob lookups that reused or built one.
	SystemsCached     int    `json:"systems_cached"`
	SystemCacheHits   uint64 `json:"system_cache_hits"`
	SystemCacheMisses uint64 `json:"system_cache_misses"`
	// Recovery reports how the service was restored from a durable data
	// dir; nil for a service that started fresh (so pre-durability stats
	// encodings are byte-unchanged).
	Recovery *RecoveryStats `json:"recovery,omitempty"`
	// Overloaded counts requests shed because the planner wait queue was
	// full, and Degraded counts deadline-cut searches answered with the
	// job's warm incumbent. Omitted at zero so pre-resilience stats
	// encodings are byte-unchanged.
	Overloaded uint64 `json:"overloaded,omitempty"`
	Degraded   uint64 `json:"degraded,omitempty"`
	// JournalError is the recorder's sticky append error, "" while the
	// journal is healthy. A non-empty value means writes since that error
	// are not durable until the next snapshot rotation.
	JournalError string `json:"journal_error,omitempty"`
	// SpecHits counts replans answered from the speculation cache,
	// SpecMisses those that fell through to a search, and SpecPrecomputed
	// the prefetch plans completed for forecast pools. Omitted at zero so
	// pre-speculation stats encodings are byte-unchanged.
	SpecHits        uint64 `json:"spec_hits,omitempty"`
	SpecMisses      uint64 `json:"spec_misses,omitempty"`
	SpecPrecomputed uint64 `json:"spec_precomputed,omitempty"`
}

// RecoveryStats is the telemetry of one snapshot+journal recovery.
type RecoveryStats struct {
	// SnapshotGen is the generation number of the snapshot that was loaded.
	SnapshotGen uint64 `json:"snapshot_gen"`
	// LedgerVersion is the fleet ledger's mutation counter after the journal
	// suffix replayed (0 when the snapshot holds no fleet state).
	LedgerVersion uint64 `json:"ledger_version"`
	// JobsRestored counts the open jobs the snapshot+journal reconstructed.
	JobsRestored int `json:"jobs_restored"`
	// RecordsReplayed counts the journal records applied on top of the
	// snapshot (0 after a graceful shutdown's final snapshot+rotation).
	RecordsReplayed int `json:"records_replayed"`
	// DurationSeconds is the wall-clock cost of the recovery (load + replay
	// + rotation) — non-deterministic, like SearchTimeNS.
	DurationSeconds float64 `json:"duration_seconds"`
}

// Fleet-mode messages: the shared cluster-state ledger crossing the wire.

// SetFleetRequest installs (or replaces) the service's fleet ledger with
// the given total capacity, enabling fleet mode. Replacing an active ledger
// drops every lease — an operator reset, not a routine call.
type SetFleetRequest struct {
	V        int  `json:"v"`
	Capacity Pool `json:"capacity"`
	// JobCapGPUs bounds any single lease (0 = unlimited) — the fair-share
	// cap that keeps one max-throughput job from leasing the whole fleet.
	JobCapGPUs int `json:"job_cap_gpus"`
}

// SetFleetResponse acknowledges a SetFleetRequest.
type SetFleetResponse struct {
	V int `json:"v"`
}

// FleetEventRequest applies one availability event to the fleet ledger.
type FleetEventRequest struct {
	V     int        `json:"v"`
	Event FleetEvent `json:"event"`
}

// FleetEventResponse reports the leases the event broke, in admission
// order (priority descending, then job name ascending); their jobs must
// replan (Rebalance).
type FleetEventResponse struct {
	V      int         `json:"v"`
	Broken []LeaseInfo `json:"broken"`
}

// RebalanceRequest asks the service to replan every fleet job that holds
// no lease — jobs preempted by events and jobs not yet admitted — in
// deterministic priority order.
type RebalanceRequest struct {
	V int `json:"v"`
}

// RebalanceResponse carries the per-job outcomes back, in the order the
// jobs were replanned.
type RebalanceResponse struct {
	V     int             `json:"v"`
	Steps []RebalanceStep `json:"steps"`
}

// RebalanceStep is one job's outcome in a rebalance pass.
type RebalanceStep struct {
	Job      string `json:"job"`
	Priority int    `json:"priority"`
	// Action is "admit" (first lease), "replan" (warm replan after a broken
	// lease), or "wait" (no free capacity / no feasible plan this pass).
	Action string `json:"action"`
	// Result is the planner result backing the new lease (admit/replan).
	Result *PlanResult `json:"result,omitempty"`
	// Error is the planner failure that left the job waiting.
	Error string `json:"error,omitempty"`
}

// FleetStatsRequest asks for a fleet ledger snapshot.
type FleetStatsRequest struct {
	V int `json:"v"`
}

// FleetStatsResponse carries the snapshot back.
type FleetStatsResponse struct {
	V     int        `json:"v"`
	Stats FleetStats `json:"stats"`
}

// FleetStats is a point-in-time snapshot of the fleet ledger.
type FleetStats struct {
	// Version is the ledger's mutation counter.
	Version uint64 `json:"version"`
	// CapacityGPUs/LeasedGPUs/FreeGPUs total the fleet, its leases, and
	// what remains for admission.
	CapacityGPUs int `json:"capacity_gpus"`
	LeasedGPUs   int `json:"leased_gpus"`
	FreeGPUs     int `json:"free_gpus"`
	// JobCapGPUs is the per-job lease bound (0 = unlimited).
	JobCapGPUs int `json:"job_cap_gpus"`
	// Capacity and Free are the full pools behind the totals.
	Capacity Pool `json:"capacity"`
	Free     Pool `json:"free"`
	// Leases is the per-job lease table in admission order.
	Leases []LeaseInfo `json:"leases"`
}

// LeaseInfo is one row of the fleet's per-job lease table.
type LeaseInfo struct {
	Job      string `json:"job"`
	Priority int    `json:"priority"`
	GPUs     int    `json:"gpus"`
	// AcquiredVersion is the ledger version at which the lease was granted.
	AcquiredVersion uint64 `json:"acquired_version"`
	Plan            Plan   `json:"plan"`
}
