package wire

// Request/response messages of the sailor.Service front door. Each message
// is one rpc frame body; the V tag is checked on both ends so a client and
// daemon from different schema generations fail loudly instead of
// misreading each other.

// Method names the service registers on the rpc layer.
const (
	MethodOpenJob  = "sailor.open-job"
	MethodPlan     = "sailor.plan"
	MethodReplan   = "sailor.replan"
	MethodSimulate = "sailor.simulate"
	MethodCloseJob = "sailor.close-job"
	MethodStats    = "sailor.stats"
)

// OpenJobRequest registers a named job: the model to profile and the GPU
// types its pools may contain. Tenants opening jobs with the same (model,
// GPU set, seed) shape share one profiled system behind the scenes.
type OpenJobRequest struct {
	V     int      `json:"v"`
	Job   string   `json:"job"`
	Model Model    `json:"model"`
	GPUs  []string `json:"gpus"`
}

// OpenJobResponse acknowledges an OpenJobRequest.
type OpenJobResponse struct {
	V int `json:"v"`
}

// PlanRequest asks for a cold plan of a pool for an open job.
type PlanRequest struct {
	V           int         `json:"v"`
	Job         string      `json:"job"`
	Pool        Pool        `json:"pool"`
	Objective   string      `json:"objective"`
	Constraints Constraints `json:"constraints"`
}

// PlanResponse carries the planner result back; it answers both
// PlanRequest and ReplanRequest.
type PlanResponse struct {
	V      int        `json:"v"`
	Result PlanResult `json:"result"`
}

// ReplanRequest asks for a warm replan: plan Pool starting from the
// previously deployed Prev, against the job's persistent warm cache.
type ReplanRequest struct {
	V           int         `json:"v"`
	Job         string      `json:"job"`
	Prev        Plan        `json:"prev"`
	Pool        Pool        `json:"pool"`
	Objective   string      `json:"objective"`
	Constraints Constraints `json:"constraints"`
}

// SimulateRequest asks for an analytical evaluation of a plan.
type SimulateRequest struct {
	V    int    `json:"v"`
	Job  string `json:"job"`
	Plan Plan   `json:"plan"`
}

// SimulateResponse carries the simulator estimate back.
type SimulateResponse struct {
	V        int      `json:"v"`
	Estimate Estimate `json:"estimate"`
}

// CloseJobRequest releases a named job (its shared profiled system stays
// cached for future tenants).
type CloseJobRequest struct {
	V   int    `json:"v"`
	Job string `json:"job"`
}

// CloseJobResponse acknowledges a CloseJobRequest.
type CloseJobResponse struct {
	V int `json:"v"`
}

// StatsRequest asks for a service counter snapshot.
type StatsRequest struct {
	V int `json:"v"`
}

// StatsResponse carries the snapshot back.
type StatsResponse struct {
	V     int          `json:"v"`
	Stats ServiceStats `json:"stats"`
}

// ServiceStats is a point-in-time snapshot of the service's counters.
type ServiceStats struct {
	// UptimeSeconds is the wall-clock age of the service.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts every front-door call (plans, replans, simulates).
	Requests uint64 `json:"requests"`
	// QPS is Requests averaged over the uptime.
	QPS float64 `json:"qps"`
	// Plans/Replans/Simulates split Requests by operation.
	Plans     uint64 `json:"plans"`
	Replans   uint64 `json:"replans"`
	Simulates uint64 `json:"simulates"`
	// Errors counts requests that returned an error.
	Errors uint64 `json:"errors"`
	// InFlight is the number of requests currently executing.
	InFlight int64 `json:"in_flight"`
	// JobsOpen is the number of currently open jobs.
	JobsOpen int `json:"jobs_open"`
	// SystemsCached is the profiled-system LRU's current size;
	// SystemCacheHits/Misses count OpenJob lookups that reused or built one.
	SystemsCached     int    `json:"systems_cached"`
	SystemCacheHits   uint64 `json:"system_cache_hits"`
	SystemCacheMisses uint64 `json:"system_cache_misses"`
}
