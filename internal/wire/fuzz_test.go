package wire

// FuzzWireRoundTrip drives the codec with structured values synthesized
// from the fuzzer's primitive inputs: decode(encode(x)) must reproduce x
// for plans, constraints, and (canonically) pools, and envelopes carrying
// any other schema version must be rejected with the unsupported-version
// error. The seed corpus covers the shapes the planner actually emits —
// single-stage, heterogeneous multi-replica, recompute — and the fuzzer
// mutates dimensions, counts, and names from there.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

func FuzzWireRoundTrip(f *testing.F) {
	f.Add(1, 1, 1, 1, "A100-40", "us-central1", 16, 0.0, 0.0, 0.0, false, Version)
	f.Add(2, 4, 2, 12, "V100-16", "eu-west4", 8, 1.5, 0.05, 30.0, true, Version)
	f.Add(4, 2, 8, 6, "H100-80", "onprem", 64, 0.0, 0.25, 0.0, false, Version+1)
	f.Add(3, 1, 3, 5, "", "r", 1, -1.0, -2.0, -3.0, true, -7)

	f.Fuzz(func(t *testing.T, pp, dp, tp, layersPerStage int, gpu, region string,
		count int, budget, minTput, maxIter float64, recompute bool, version int) {
		// JSON cannot carry invalid UTF-8 losslessly (the encoder substitutes
		// U+FFFD), so the round-trip contract holds for valid-UTF-8 names.
		gpu = strings.ToValidUTF8(gpu, "�")
		region = strings.ToValidUTF8(region, "�")
		plan := fuzzPlan(pp, dp, tp, layersPerStage, gpu, region, recompute)
		data, err := MarshalPlan(plan)
		if err != nil {
			t.Fatalf("MarshalPlan(%+v): %v", plan, err)
		}
		back, err := UnmarshalPlan(data)
		if err != nil {
			t.Fatalf("UnmarshalPlan: %v\n%s", err, data)
		}
		if !reflect.DeepEqual(back, plan) {
			t.Errorf("plan round trip:\n%+v\nvs\n%+v", back, plan)
		}

		cons := core.Constraints{MaxCostPerIter: budget, MinThroughput: minTput, MaxIterTime: maxIter}
		if isFiniteConstraints(cons) {
			data, err = MarshalConstraints(cons)
			if err != nil {
				t.Fatalf("MarshalConstraints: %v", err)
			}
			backC, err := UnmarshalConstraints(data)
			if err != nil {
				t.Fatalf("UnmarshalConstraints: %v", err)
			}
			if backC != cons {
				t.Errorf("constraints round trip: %+v vs %+v", backC, cons)
			}
		}

		pool := fuzzPool(gpu, region, count, dp)
		data, err = MarshalPool(pool)
		if err != nil {
			t.Fatalf("MarshalPool: %v", err)
		}
		backP, err := UnmarshalPool(data)
		if err != nil {
			t.Fatalf("UnmarshalPool: %v", err)
		}
		if backP.String() != pool.String() {
			t.Errorf("pool round trip:\n%svs\n%s", backP, pool)
		}
		again, err := MarshalPool(backP)
		if err != nil {
			t.Fatalf("re-MarshalPool: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Errorf("pool encoding not canonical:\n%s\nvs\n%s", again, data)
		}

		// Any other schema version must be rejected, loudly and by name.
		if version != Version {
			env := Envelope{V: version, Kind: KindPlan, Body: json.RawMessage(`{}`)}
			bad, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := UnmarshalPlan(bad); err == nil ||
				!strings.Contains(err.Error(), "unsupported schema version") {
				t.Errorf("version %d must be rejected, got %v", version, err)
			}
		}
	})
}

// fuzzPlan builds a structurally bounded plan from raw fuzz inputs.
func fuzzPlan(pp, dp, tp, layersPerStage int, gpu, region string, recompute bool) core.Plan {
	pp = bound(pp, 1, 6)
	dp = bound(dp, 1, 4)
	tp = bound(tp, 1, 8)
	layersPerStage = bound(layersPerStage, 1, 16)
	plan := core.Plan{MicroBatchSize: bound(dp*tp, 1, 32), Recompute: recompute}
	layer := 0
	for s := 0; s < pp; s++ {
		st := core.StagePlan{FirstLayer: layer, NumLayers: layersPerStage}
		for r := 0; r < dp; r++ {
			st.Replicas = append(st.Replicas, core.StageReplica{
				GPU:  core.GPUType(gpu),
				TP:   tp,
				Zone: core.Zone{Region: region, Name: fmt.Sprintf("%s-%c", region, 'a'+byte(r%3))},
			})
		}
		plan.Stages = append(plan.Stages, st)
		layer += layersPerStage
	}
	return plan
}

// fuzzPool builds a pool with a couple of cells from raw fuzz inputs.
func fuzzPool(gpu, region string, count, zones int) *cluster.Pool {
	p := cluster.NewPool()
	count = bound(count, 0, 1<<20)
	for z := 0; z < bound(zones, 1, 4); z++ {
		zone := core.Zone{Region: region, Name: fmt.Sprintf("%s-%c", region, 'a'+byte(z))}
		p.Set(zone, core.GPUType(gpu), count+z)
		p.Set(zone, core.V100, z) // zero-count first cell exercises dropping
	}
	return p
}

func bound(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func isFiniteConstraints(c core.Constraints) bool {
	for _, f := range []float64{c.MaxCostPerIter, c.MinThroughput, c.MaxIterTime} {
		if f != f || f > 1e308 || f < -1e308 {
			return false
		}
	}
	return true
}
