package wire

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestTraceVersionLockstep pins the trace-file schema version to the wire
// schema version. The trace codec lives in internal/trace (wire imports
// trace), but it speaks the same envelope dialect — if one version moves
// without the other, external trace files and service documents would
// diverge silently.
func TestTraceVersionLockstep(t *testing.T) {
	if trace.FileVersion != Version {
		t.Fatalf("trace.FileVersion = %d, wire.Version = %d; the envelope dialects must version together",
			trace.FileVersion, Version)
	}
}

// TestTraceRoundTrip checks the delegating wrappers: MarshalTrace emits a
// canonical envelope document and UnmarshalTrace reproduces the file.
func TestTraceRoundTrip(t *testing.T) {
	z := core.Zone{Region: "us-central1", Name: "us-central1-a"}
	f := &trace.File{
		Name:        "wire-round-trip",
		Description: "wrapper delegation check",
		Trace: trace.Synthetic(2*time.Hour,
			trace.Event{At: 0, Zone: z, GPU: core.A100, Delta: 4},
			trace.Event{At: time.Hour, Zone: z, GPU: core.A100, Delta: -2},
		),
	}
	doc, err := MarshalTrace(f)
	if err != nil {
		t.Fatalf("MarshalTrace: %v", err)
	}
	if !strings.Contains(string(doc), `"kind": "trace"`) {
		t.Fatalf("document does not carry the trace kind:\n%s", doc)
	}
	got, err := UnmarshalTrace(doc)
	if err != nil {
		t.Fatalf("UnmarshalTrace: %v", err)
	}
	if got.Name != f.Name || got.Description != f.Description {
		t.Fatalf("metadata mismatch: got %q/%q", got.Name, got.Description)
	}
	if len(got.Trace.Events) != 2 || got.Trace.Horizon != f.Trace.Horizon {
		t.Fatalf("trace mismatch: %+v", got.Trace)
	}
	doc2, err := MarshalTrace(got)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(doc) != string(doc2) {
		t.Fatalf("canonical encoding not stable:\n%s\nvs\n%s", doc, doc2)
	}
}
