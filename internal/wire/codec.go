package wire

// Standalone codecs: every domain type the service surface speaks gets a
// Marshal/Unmarshal pair producing a self-describing, versioned envelope
// {"v":1,"kind":"plan","body":{...}}. The envelope is what gives "a plan
// written to disk or a message queue" a future: decoders reject unknown
// schema versions and mismatched kinds with clear errors instead of
// silently misreading fields.

import (
	"encoding/json"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/runtime"
	"repro/internal/trace"
)

// Envelope kinds.
const (
	KindModel       = "model"
	KindPool        = "pool"
	KindConstraints = "constraints"
	KindPlan        = "plan"
	KindEstimate    = "estimate"
	KindPlanResult  = "plan-result"
	KindReport      = "report"
	// KindTrace is the envelope kind of external trace files. The codec
	// lives in internal/trace (wire imports trace, so it cannot live here);
	// MarshalTrace/UnmarshalTrace delegate, and a lockstep test pins
	// trace.FileVersion == Version so the two surfaces version together.
	KindTrace = "trace"
	// KindSnapshot and KindJournal are the envelope kinds of the durability
	// subsystem: service-state snapshots and journal records on disk. The
	// codecs live in internal/persist (which imports wire); a lockstep test
	// there pins persist.FormatVersion == Version so a wire schema bump can
	// never leave stale snapshots silently decodable.
	KindSnapshot = "snapshot"
	KindJournal  = "journal"
)

// Envelope wraps every standalone wire document.
type Envelope struct {
	V    int             `json:"v"`
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

func marshal(kind string, body any) ([]byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal %s: %w", kind, err)
	}
	return json.Marshal(Envelope{V: Version, Kind: kind, Body: raw})
}

func unmarshal(data []byte, kind string, body any) error {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("wire: decode envelope: %w", err)
	}
	if err := Check(env.V); err != nil {
		return err
	}
	if env.Kind != kind {
		return fmt.Errorf("wire: kind %q, want %q", env.Kind, kind)
	}
	if err := json.Unmarshal(env.Body, body); err != nil {
		return fmt.Errorf("wire: decode %s body: %w", kind, err)
	}
	return nil
}

// MarshalModel encodes a training-job config as a versioned document.
func MarshalModel(m model.Config) ([]byte, error) { return marshal(KindModel, FromModel(m)) }

// UnmarshalModel decodes a versioned model document.
func UnmarshalModel(data []byte) (model.Config, error) {
	var m Model
	if err := unmarshal(data, KindModel, &m); err != nil {
		return model.Config{}, err
	}
	return m.Config(), nil
}

// MarshalPool encodes an availability pool as a versioned document.
func MarshalPool(p *cluster.Pool) ([]byte, error) { return marshal(KindPool, FromPool(p)) }

// UnmarshalPool decodes a versioned pool document.
func UnmarshalPool(data []byte) (*cluster.Pool, error) {
	var p Pool
	if err := unmarshal(data, KindPool, &p); err != nil {
		return nil, err
	}
	return p.Cluster(), nil
}

// MarshalConstraints encodes plan constraints as a versioned document.
func MarshalConstraints(c core.Constraints) ([]byte, error) {
	return marshal(KindConstraints, FromConstraints(c))
}

// UnmarshalConstraints decodes a versioned constraints document.
func UnmarshalConstraints(data []byte) (core.Constraints, error) {
	var c Constraints
	if err := unmarshal(data, KindConstraints, &c); err != nil {
		return core.Constraints{}, err
	}
	return c.Core(), nil
}

// MarshalPlan encodes a parallelization plan as a versioned document.
func MarshalPlan(p core.Plan) ([]byte, error) { return marshal(KindPlan, FromPlan(p)) }

// UnmarshalPlan decodes a versioned plan document.
func UnmarshalPlan(data []byte) (core.Plan, error) {
	var p Plan
	if err := unmarshal(data, KindPlan, &p); err != nil {
		return core.Plan{}, err
	}
	return p.Core(), nil
}

// MarshalEstimate encodes a plan evaluation as a versioned document.
func MarshalEstimate(e core.Estimate) ([]byte, error) { return marshal(KindEstimate, FromEstimate(e)) }

// UnmarshalEstimate decodes a versioned estimate document.
func UnmarshalEstimate(data []byte) (core.Estimate, error) {
	var e Estimate
	if err := unmarshal(data, KindEstimate, &e); err != nil {
		return core.Estimate{}, err
	}
	return e.Core(), nil
}

// MarshalPlanResult encodes a planner result as a versioned document.
func MarshalPlanResult(r planner.Result) ([]byte, error) {
	return marshal(KindPlanResult, FromResult(r))
}

// UnmarshalPlanResult decodes a versioned planner-result document.
func UnmarshalPlanResult(data []byte) (planner.Result, error) {
	var r PlanResult
	if err := unmarshal(data, KindPlanResult, &r); err != nil {
		return planner.Result{}, err
	}
	return r.Result(), nil
}

// MarshalTrace encodes an external availability trace as a canonical
// versioned document (see trace.Save).
func MarshalTrace(f *trace.File) ([]byte, error) { return trace.Save(f) }

// UnmarshalTrace decodes a versioned trace document, rejecting unknown
// schema versions and kinds by name (see trace.Load).
func UnmarshalTrace(data []byte) (*trace.File, error) { return trace.Load(data) }

// MarshalReport encodes an elastic-run report as a versioned document.
func MarshalReport(r runtime.Report) ([]byte, error) { return marshal(KindReport, FromReport(r)) }

// UnmarshalReport decodes a versioned report document.
func UnmarshalReport(data []byte) (runtime.Report, error) {
	var r Report
	if err := unmarshal(data, KindReport, &r); err != nil {
		return runtime.Report{}, err
	}
	return r.Runtime(), nil
}
