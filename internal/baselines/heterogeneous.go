package baselines

import (
	"math"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// --- AMP [27] ---------------------------------------------------------------
//
// "Automatically finding model parallel strategies with heterogeneity
// awareness": AMP knows per-type speeds but only emits homogeneous degree
// tuples, fills pipelines fastest-type-first, averages stage times instead
// of modelling stragglers, and has no memory model at all — the combination
// behind its OOM emissions and poor heterogeneous plans in Figures 8-9.

// AMP is the planner of Li et al. (NeurIPS'22).
type AMP struct{ Env Env }

// Name implements Planner.
func (a *AMP) Name() string { return "AMP" }

// Caps implements Planner.
func (a *AMP) Caps() Caps {
	return Caps{Parallelisms: "3D", HeterogeneousGPUs: true}
}

// Estimator implements Planner.
func (a *AMP) Estimator() Estimator {
	return estimator{
		tm: timeModel{cfg: a.Env.Cfg, prof: a.Env.Prof, averageStages: true, uniformBW: true},
		mm: memModel{cfg: a.Env.Cfg, none: true},
	}
}

// Rank implements Planner.
func (a *AMP) Rank(pool *cluster.Pool) (Ranking, error) {
	start := time.Now()
	t := topologyOf(pool)
	if len(t.zones) == 0 {
		return Ranking{}, errNoNodes("AMP")
	}
	est := a.Estimator()
	deadline := deadlineFrom(a.Env)
	maxNode := 0
	total := 0
	for _, g := range t.gpuTypes() {
		if n := nodeShape(g); n > maxNode {
			maxNode = n
		}
		total += t.totalNodes(g) * nodeShape(g)
	}
	var cands []Candidate
	// AMP sweeps a finer mbs grid than most, part of its longer search.
	for _, pp := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		for _, tp := range powersOfTwo(maxNode) {
			maxDP := total / (pp * tp)
			for _, dp := range powersOfTwo(maxDP) {
				for _, mbs := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
					if a.Env.Cfg.GlobalBatch < dp*mbs {
						continue
					}
					if !deadline.IsZero() && time.Now().After(deadline) {
						return Ranking{Candidates: rankCandidates(cands), SearchTime: time.Since(start)}, nil
					}
					plan, ok := mixedFillPlan(a.Env.Cfg, t, pp, dp, tp, mbs)
					if !ok {
						continue
					}
					it, err := est.IterTime(plan)
					if err != nil {
						continue
					}
					cands = append(cands, Candidate{Plan: plan, EstIterTime: it})
				}
			}
		}
	}
	return Ranking{Candidates: rankCandidates(cands), SearchTime: time.Since(start)}, nil
}

// --- Metis [62] -------------------------------------------------------------
//
// Exhaustive search over heterogeneous device groupings with load-balanced
// layer partitioning. Good compute and memory modelling (it only misses the
// logits buffer), but it prices every link at intra-zone bandwidth — the 28%
// iteration-time error of Figure 6 — and its group-permutation enumeration
// is the hours-scale search of Table 1, so the harness caps it (the paper
// uses a 300 s cap).

// Metis is the planner of Um et al. (ATC'24).
type Metis struct{ Env Env }

// Name implements Planner.
func (m *Metis) Name() string { return "Metis" }

// Caps implements Planner.
func (m *Metis) Caps() Caps {
	return Caps{Parallelisms: "3D", HeterogeneousGPUs: true}
}

// Estimator implements Planner.
func (m *Metis) Estimator() Estimator {
	return estimator{
		tm: timeModel{cfg: m.Env.Cfg, prof: m.Env.Prof, uniformBW: true},
		mm: memModel{cfg: m.Env.Cfg, ignoreLogits: true},
	}
}

// Rank implements Planner.
func (m *Metis) Rank(pool *cluster.Pool) (Ranking, error) {
	start := time.Now()
	t := topologyOf(pool)
	if len(t.zones) == 0 {
		return Ranking{}, errNoNodes("Metis")
	}
	est := m.Estimator()
	deadline := deadlineFrom(m.Env)
	types := t.gpuTypes()

	// Node inventory per type.
	nodesOf := map[core.GPUType]int{}
	for _, g := range types {
		nodesOf[g] = t.totalNodes(g)
	}

	var cands []Candidate
	// For every pipeline depth, enumerate how many stages each GPU type
	// owns (compositions), then every (tp per type, dp, mbs). Stage layer
	// counts are balanced by measured per-type speed. The composition *
	// permutation space is the exponential part; the deadline caps it.
	for pp := 1; pp <= 16 && pp <= m.Env.Cfg.Layers; pp++ {
		for _, comp := range compositions(pp, len(types)) {
			// Permute which type owns the leading stages.
			for _, order := range permutations(len(types)) {
				for _, tp := range powersOfTwo(4) {
					// Capacity: stages of type g need dp*tp GPUs each.
					maxDP := 1 << 16
					feasible := true
					for ti, g := range types {
						stages := comp[ti]
						if stages == 0 {
							continue
						}
						gpus := nodesOf[g] * nodeShape(g)
						if tp > nodeShape(g) {
							feasible = false
							break
						}
						if d := gpus / (stages * tp); d < maxDP {
							maxDP = d
						}
					}
					if !feasible || maxDP < 1 {
						continue
					}
					// Metis enumerates exhaustively: every DP degree (not
					// just powers of two), a fine microbatch grid, and
					// several load-balance variance settings — the search
					// that runs for hours in Table 1.
					for dp := 1; dp <= maxDP; dp++ {
						for _, mbs := range []int{1, 2, 3, 4, 6, 8} {
							if m.Env.Cfg.GlobalBatch < dp*mbs {
								continue
							}
							for _, variance := range []float64{0.5, 1.0, 1.5} {
								if !deadline.IsZero() && time.Now().After(deadline) {
									return Ranking{Candidates: rankCandidates(cands), SearchTime: time.Since(start)}, nil
								}
								plan, ok := m.groupedPlan(t, types, comp, order, dp, tp, mbs, variance)
								if !ok {
									continue
								}
								it, err := est.IterTime(plan)
								if err != nil || !fitsOwnModel(est, plan) {
									continue
								}
								mem, _ := est.PeakMemory(plan)
								cands = append(cands, Candidate{Plan: plan, EstIterTime: it, EstMemory: mem})
							}
						}
					}
				}
			}
		}
	}
	return Ranking{Candidates: rankCandidates(cands), SearchTime: time.Since(start)}, nil
}

// groupedPlan builds a pipeline where each GPU type owns a contiguous block
// of stages (comp[ti] stages for types[order[i]]), with layers balanced by
// per-type speed raised to the variance exponent (Metis's device-group
// variance knob).
func (m *Metis) groupedPlan(t vmTopology, types []core.GPUType, comp []int, order []int, dp, tp, mbs int, variance float64) (core.Plan, bool) {
	// Stage sequence of GPU types.
	var stageType []core.GPUType
	for _, oi := range order {
		for s := 0; s < comp[oi]; s++ {
			stageType = append(stageType, types[oi])
		}
	}
	pp := len(stageType)
	if pp == 0 || pp > m.Env.Cfg.Layers {
		return core.Plan{}, false
	}
	// Load-balanced layer partition: layers proportional to type speed.
	speeds := make([]float64, pp)
	sum := 0.0
	for i, g := range stageType {
		lt, err := m.Env.Prof.LayerTimingFor(g, mbs, tp)
		if err != nil {
			return core.Plan{}, false
		}
		speeds[i] = math.Pow(1.0/(lt.Fwd+lt.Bwd), variance)
		sum += speeds[i]
	}
	layers := make([]int, pp)
	assigned := 0
	for i := range layers {
		layers[i] = int(float64(m.Env.Cfg.Layers) * speeds[i] / sum)
		if layers[i] < 1 {
			layers[i] = 1
		}
		assigned += layers[i]
	}
	// Fix rounding drift on the fastest stage.
	fastest := 0
	for i := range speeds {
		if speeds[i] > speeds[fastest] {
			fastest = i
		}
	}
	layers[fastest] += m.Env.Cfg.Layers - assigned
	if layers[fastest] < 1 {
		return core.Plan{}, false
	}
	// Zone slots per type.
	slots := map[core.GPUType][]core.Zone{}
	for _, z := range t.zones {
		for g, n := range t.nodes[z] {
			perNode := nodeShape(g) / tp
			for i := 0; i < n*perNode; i++ {
				slots[g] = append(slots[g], z)
			}
		}
	}
	plan := core.Plan{MicroBatchSize: mbs}
	used := map[core.GPUType]int{}
	first := 0
	for i := 0; i < pp; i++ {
		g := stageType[i]
		st := core.StagePlan{FirstLayer: first, NumLayers: layers[i]}
		for r := 0; r < dp; r++ {
			if used[g] >= len(slots[g]) {
				return core.Plan{}, false
			}
			st.Replicas = append(st.Replicas, core.StageReplica{GPU: g, TP: tp, Zone: slots[g][used[g]]})
			used[g]++
		}
		plan.Stages = append(plan.Stages, st)
		first += layers[i]
	}
	if first != m.Env.Cfg.Layers {
		return core.Plan{}, false
	}
	return plan, true
}

// compositions enumerates how pp stages split across k types (weak
// compositions of pp into k parts).
func compositions(pp, k int) [][]int {
	if k == 1 {
		return [][]int{{pp}}
	}
	var out [][]int
	for first := 0; first <= pp; first++ {
		for _, rest := range compositions(pp-first, k-1) {
			out = append(out, append([]int{first}, rest...))
		}
	}
	return out
}

// permutations enumerates orderings of k indices.
func permutations(k int) [][]int {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	var out [][]int
	var rec func(n int)
	rec = func(n int) {
		if n == 1 {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := 0; i < n; i++ {
			idx[i], idx[n-1] = idx[n-1], idx[i]
			rec(n - 1)
			idx[i], idx[n-1] = idx[n-1], idx[i]
		}
	}
	rec(k)
	return out
}

// --- FlashFlex [72] ---------------------------------------------------------
//
// Heterogeneity-aware but driven by theoretical peak FLOPS instead of
// measured profiles (the 69% time error of Figure 6), with a uniform
// per-stage memory picture. It favours deep pipelines with small TP and
// microbatches — the throughput-losing shape §5.2.2 describes.

// FlashFlex is the planner of Yan et al. (2024).
type FlashFlex struct{ Env Env }

// Name implements Planner.
func (f *FlashFlex) Name() string { return "FlashFlex" }

// Caps implements Planner.
func (f *FlashFlex) Caps() Caps {
	return Caps{Parallelisms: "3D", PicksResources: true, HeterogeneousGPUs: true}
}

// Estimator implements Planner.
func (f *FlashFlex) Estimator() Estimator {
	return estimator{
		tm: timeModel{cfg: f.Env.Cfg, prof: f.Env.Prof, theoreticalFLOPS: true, uniformBW: true},
		mm: memModel{cfg: f.Env.Cfg, uniformStages: true, ignoreLogits: true, ignoreComm: true},
	}
}

// Rank implements Planner.
func (f *FlashFlex) Rank(pool *cluster.Pool) (Ranking, error) {
	start := time.Now()
	t := topologyOf(pool)
	if len(t.zones) == 0 {
		return Ranking{}, errNoNodes("FlashFlex")
	}
	est := f.Estimator()
	types := t.gpuTypes()

	// FlashFlex prefers long pipelines, low TP, small microbatches: deep
	// pipelines first, tp in {1, 2}, mbs in {1, 2}.
	var cands []Candidate
	totalNodes := 0
	for _, g := range types {
		totalNodes += t.totalNodes(g)
	}
	var pps []int
	for pp := min(16, f.Env.Cfg.Layers); pp >= 1; pp /= 2 {
		pps = append(pps, pp)
	}
	for _, pp := range pps {
		for _, tp := range []int{1, 2} {
			for _, mbs := range []int{1, 2} {
				plan, ok := f.balancedPlan(t, types, pp, tp, mbs)
				if !ok {
					continue
				}
				it, err := est.IterTime(plan)
				if err != nil || !fitsOwnModel(est, plan) {
					continue
				}
				mem, _ := est.PeakMemory(plan)
				cands = append(cands, Candidate{Plan: plan, EstIterTime: it, EstMemory: mem})
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].EstIterTime < cands[j].EstIterTime })
	return Ranking{Candidates: cands, SearchTime: time.Since(start)}, nil
}

// balancedPlan assigns stage GPU types by greedy theoretical-FLOPS
// balancing and uses the largest uniform DP the slots allow.
func (f *FlashFlex) balancedPlan(t vmTopology, types []core.GPUType, pp, tp, mbs int) (core.Plan, bool) {
	if pp > f.Env.Cfg.Layers {
		return core.Plan{}, false
	}
	// Slot pools per type.
	slotZones := map[core.GPUType][]core.Zone{}
	for _, z := range t.zones {
		for g, n := range t.nodes[z] {
			if tp > nodeShape(g) {
				continue
			}
			perNode := nodeShape(g) / tp
			for i := 0; i < n*perNode; i++ {
				slotZones[g] = append(slotZones[g], z)
			}
		}
	}
	// Greedy: assign each type's slots to the stage with the least total
	// theoretical FLOPS, then dp = min over stages of slot count.
	stageFLOPS := make([]float64, pp)
	stageSlots := make([][]core.StageReplica, pp)
	for _, g := range types {
		spec, err := lookupSpec(g)
		if err != nil {
			return core.Plan{}, false
		}
		for _, z := range slotZones[g] {
			least := 0
			for i := 1; i < pp; i++ {
				if stageFLOPS[i] < stageFLOPS[least] {
					least = i
				}
			}
			stageSlots[least] = append(stageSlots[least], core.StageReplica{GPU: g, TP: tp, Zone: z})
			stageFLOPS[least] += spec.PeakTFLOPS * float64(tp)
		}
	}
	dp := -1
	for i := 0; i < pp; i++ {
		if dp < 0 || len(stageSlots[i]) < dp {
			dp = len(stageSlots[i])
		}
	}
	if dp < 1 || f.Env.Cfg.GlobalBatch < dp*mbs {
		return core.Plan{}, false
	}
	layers := splitEven(f.Env.Cfg.Layers, pp)
	plan := core.Plan{MicroBatchSize: mbs}
	first := 0
	for i := 0; i < pp; i++ {
		st := core.StagePlan{FirstLayer: first, NumLayers: layers[i], Replicas: stageSlots[i][:dp]}
		plan.Stages = append(plan.Stages, st)
		first += layers[i]
	}
	return plan, true
}
