// Package baselines implements the planners Sailor is evaluated against
// (Table 1): Piper, Varuna, AMP, Metis, FlashFlex, Galvatron, Aceso, DTFM,
// and Oobleck, behind one unified API — the paper's §5 does the same
// ("All baselines ... are integrated into our platform with a unified
// Python API").
//
// Each baseline couples its published search strategy with its published
// estimator structure, including the estimator's documented omissions
// (no memory model, optimizer states ignored, theoretical FLOPS, uniform
// bandwidth, ...). Those omissions — not caricature — are what produce the
// paper's Figures 3, 5, 6, 8, 9: a planner that cannot see memory emits
// OOM plans; a planner that cannot see stragglers mixes GPU types badly.
package baselines

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/profiler"
)

// Caps describes a planner's support matrix: the columns of Table 1.
type Caps struct {
	Parallelisms      string // "3D" or "2D"
	PicksResources    bool   // recommends the resource allocation itself
	HeterogeneousGPUs bool
	MultiZone         bool
}

// String renders the Table 1 support tuple.
func (c Caps) String() string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	return fmt.Sprintf("%s, alloc:%s, hetero:%s, multizone:%s",
		c.Parallelisms, mark(c.PicksResources), mark(c.HeterogeneousGPUs), mark(c.MultiZone))
}

// Candidate is one plan in a baseline's preference order together with the
// baseline's own estimates for it.
type Candidate struct {
	Plan core.Plan
	// EstIterTime is the baseline's own predicted seconds/iteration.
	EstIterTime float64
	// EstMemory is the baseline's own predicted peak bytes per GPU;
	// 0 means the baseline has no memory model.
	EstMemory int64
}

// Ranking is a search outcome: candidates in preference order plus the
// wall-clock the search took.
type Ranking struct {
	Candidates []Candidate
	SearchTime time.Duration
}

// Planner is the unified planning API of the evaluation platform.
type Planner interface {
	Name() string
	Caps() Caps
	// Rank searches the configuration space for the pool and returns
	// candidate plans in preference order. Deployment (walking the list
	// until a plan survives the memory of real GPUs) is the harness's
	// job, so that OOM emissions can be counted per Figures 8-9.
	Rank(pool *cluster.Pool) (Ranking, error)
	// Estimator exposes the baseline's own time/memory models for the
	// estimation-accuracy experiments (Figures 3, 5, 6).
	Estimator() Estimator
}

// Estimator predicts iteration time and memory for a given plan using one
// baseline's published model.
type Estimator interface {
	// IterTime returns predicted seconds per iteration.
	IterTime(plan core.Plan) (float64, error)
	// PeakMemory returns predicted peak bytes per GPU, or ok=false when
	// the baseline has no memory model (AMP, DTFM).
	PeakMemory(plan core.Plan) (int64, bool)
}

// Env bundles what every baseline receives: the job, the (shared) profiling
// data, and a search deadline for the slow searchers (the paper caps Metis
// at 300 s).
type Env struct {
	Cfg      model.Config
	Prof     *profiler.Profile
	Deadline time.Duration
}

// --- shared plan-construction helpers --------------------------------------

// vmTopology converts a pool into per-zone whole VMs of the default node
// shape, the fixed topology every baseline requires as input (§5.2).
type vmTopology struct {
	zones []core.Zone
	// nodes[zone][gpu] = number of whole nodes.
	nodes map[core.Zone]map[core.GPUType]int
}

func topologyOf(pool *cluster.Pool) vmTopology {
	t := vmTopology{nodes: map[core.Zone]map[core.GPUType]int{}}
	for _, z := range pool.Zones() {
		for _, g := range pool.GPUTypes() {
			n := pool.Nodes(z, g)
			if n == 0 {
				continue
			}
			if t.nodes[z] == nil {
				t.nodes[z] = map[core.GPUType]int{}
				t.zones = append(t.zones, z)
			}
			t.nodes[z][g] = n
		}
	}
	return t
}

// totalNodes returns the node count of one GPU type across zones.
func (t vmTopology) totalNodes(g core.GPUType) int {
	n := 0
	for _, m := range t.nodes {
		n += m[g]
	}
	return n
}

// gpuTypes lists types with at least one node, fastest (priciest) first so
// "use the best GPUs" baselines pick deterministically.
func (t vmTopology) gpuTypes() []core.GPUType {
	seen := map[core.GPUType]bool{}
	var out []core.GPUType
	for _, z := range t.zones {
		for g := range t.nodes[z] {
			if !seen[g] {
				seen[g] = true
				out = append(out, g)
			}
		}
	}
	// Sort by descending hourly price as a speed proxy.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			if price(out[j]) > price(out[j-1]) {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
	}
	return out
}

func price(g core.GPUType) float64 {
	spec, err := lookupSpec(g)
	if err != nil {
		return 0
	}
	return spec.CostPerHour
}

// uniformPlan builds the homogeneous plan shape most baselines emit:
// pp stages x dp replicas, all on one GPU type with one TP, layers split
// evenly, replicas packed into zones in order.
func uniformPlan(cfg model.Config, t vmTopology, g core.GPUType, pp, dp, tp, mbs int) (core.Plan, bool) {
	if pp <= 0 || dp <= 0 || tp <= 0 || mbs <= 0 || pp > cfg.Layers {
		return core.Plan{}, false
	}
	// Pack replica slots (each tp GPUs) into whole nodes zone by zone.
	type slot struct{ zone core.Zone }
	var slots []slot
	node := nodeShape(g)
	perNode := node / tp
	if perNode == 0 {
		return core.Plan{}, false // TP exceeds the node (H1 would prune; baselines just fail)
	}
	for _, z := range t.zones {
		for n := 0; n < t.nodes[z][g]; n++ {
			for s := 0; s < perNode; s++ {
				slots = append(slots, slot{z})
			}
		}
	}
	if len(slots) < pp*dp {
		return core.Plan{}, false
	}
	layers := splitEven(cfg.Layers, pp)
	plan := core.Plan{MicroBatchSize: mbs}
	idx := 0
	first := 0
	for i := 0; i < pp; i++ {
		st := core.StagePlan{FirstLayer: first, NumLayers: layers[i]}
		for r := 0; r < dp; r++ {
			st.Replicas = append(st.Replicas, core.StageReplica{GPU: g, TP: tp, Zone: slots[idx].zone})
			idx++
		}
		plan.Stages = append(plan.Stages, st)
		first += layers[i]
	}
	return plan, true
}

// mixedFillPlan builds the "fill the pipeline with whatever nodes come
// next" shape AMP-style planners produce on heterogeneous pools: uniform
// (pp, dp, tp) degrees, replicas drawn from the fastest type first and
// spilling into slower ones mid-pipeline.
func mixedFillPlan(cfg model.Config, t vmTopology, pp, dp, tp, mbs int) (core.Plan, bool) {
	type slot struct {
		g core.GPUType
		z core.Zone
	}
	var slots []slot
	for _, g := range t.gpuTypes() {
		node := nodeShape(g)
		if tp > node {
			continue
		}
		perNode := node / tp
		for _, z := range t.zones {
			for n := 0; n < t.nodes[z][g]; n++ {
				for s := 0; s < perNode; s++ {
					slots = append(slots, slot{g, z})
				}
			}
		}
	}
	if len(slots) < pp*dp || pp > cfg.Layers {
		return core.Plan{}, false
	}
	layers := splitEven(cfg.Layers, pp)
	plan := core.Plan{MicroBatchSize: mbs}
	idx := 0
	first := 0
	for i := 0; i < pp; i++ {
		st := core.StagePlan{FirstLayer: first, NumLayers: layers[i]}
		for r := 0; r < dp; r++ {
			st.Replicas = append(st.Replicas, core.StageReplica{GPU: slots[idx].g, TP: tp, Zone: slots[idx].z})
			idx++
		}
		plan.Stages = append(plan.Stages, st)
		first += layers[i]
	}
	return plan, true
}

func splitEven(l, p int) []int {
	out := make([]int, p)
	base, rem := l/p, l%p
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// powersOfTwo returns 1,2,4,...,<=max.
func powersOfTwo(max int) []int {
	var out []int
	for v := 1; v <= max; v *= 2 {
		out = append(out, v)
	}
	return out
}
