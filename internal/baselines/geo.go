package baselines

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// --- DTFM [74] --------------------------------------------------------------
//
// Decentralized training of foundation models: a 2D (DP x PP) scheduler for
// geo-distributed pools. It does not pick parallelism degrees itself, so the
// harness (like the paper) exhaustively generates homogeneous (dp, pp, mbs)
// plans and applies DTFM's partitioning to each. Its cost function ranks by
// communication time alone and it spreads work across every zone and region
// it is given — the two flaws behind Figures 11-12 — and it has no memory
// model, so it fails on GPT-Neo with OOMs.

// DTFM is the scheduler of Yuan et al. (2023).
type DTFM struct{ Env Env }

// Name implements Planner.
func (d *DTFM) Name() string { return "DTFM" }

// Caps implements Planner.
func (d *DTFM) Caps() Caps {
	return Caps{Parallelisms: "2D", PicksResources: true, MultiZone: true}
}

// Estimator implements Planner.
func (d *DTFM) Estimator() Estimator {
	return estimator{
		tm: timeModel{cfg: d.Env.Cfg, prof: d.Env.Prof, commOnly: true},
		mm: memModel{cfg: d.Env.Cfg, none: true},
	}
}

// Rank implements Planner.
func (d *DTFM) Rank(pool *cluster.Pool) (Ranking, error) {
	start := time.Now()
	t := topologyOf(pool)
	if len(t.zones) == 0 {
		return Ranking{}, errNoNodes("DTFM")
	}
	est := d.Estimator()
	deadline := deadlineFrom(d.Env)
	g := t.gpuTypes()[0] // geo scheduler, single GPU type
	total := t.totalNodes(g) * nodeShape(g)

	var cands []Candidate
	// DTFM schedules over the pool it is given: every plan uses all slots
	// (pp*dp == total GPUs), which is why it spreads across every zone and
	// region whether or not that helps (§5.2.3).
	for pp := 1; pp <= 16 && pp <= d.Env.Cfg.Layers; pp++ {
		if total%pp != 0 {
			continue
		}
		dp := total / pp
		{
			for _, mbs := range []int{1, 2, 4, 8} {
				if d.Env.Cfg.GlobalBatch < dp*mbs {
					continue
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return Ranking{Candidates: rankCandidates(cands), SearchTime: time.Since(start)}, nil
				}
				plan, ok := d.spreadPlan(t, g, pp, dp, mbs)
				if !ok {
					continue
				}
				it, err := est.IterTime(plan)
				if err != nil {
					continue
				}
				cands = append(cands, Candidate{Plan: plan, EstIterTime: it})
			}
		}
	}
	return Ranking{Candidates: rankCandidates(cands), SearchTime: time.Since(start)}, nil
}

// spreadPlan places replicas round-robin across every zone — DTFM uses all
// the regions it is given, which inflates communication and egress without
// helping throughput (§5.2.3).
func (d *DTFM) spreadPlan(t vmTopology, g core.GPUType, pp, dp, mbs int) (core.Plan, bool) {
	if pp > d.Env.Cfg.Layers {
		return core.Plan{}, false
	}
	// Per-zone slot counts (tp = 1: DTFM is 2D).
	type zslots struct {
		z core.Zone
		n int
	}
	var zs []zslots
	for _, z := range t.zones {
		if n := t.nodes[z][g] * nodeShape(g); n > 0 {
			zs = append(zs, zslots{z, n})
		}
	}
	if len(zs) == 0 {
		return core.Plan{}, false
	}
	layers := splitEven(d.Env.Cfg.Layers, pp)
	plan := core.Plan{MicroBatchSize: mbs}
	zi := 0
	take := func() (core.Zone, bool) {
		for tries := 0; tries < len(zs); tries++ {
			cand := &zs[(zi+tries)%len(zs)]
			if cand.n > 0 {
				cand.n--
				zi = (zi + tries + 1) % len(zs)
				return cand.z, true
			}
		}
		return core.Zone{}, false
	}
	first := 0
	for i := 0; i < pp; i++ {
		st := core.StagePlan{FirstLayer: first, NumLayers: layers[i]}
		for r := 0; r < dp; r++ {
			z, ok := take()
			if !ok {
				return core.Plan{}, false
			}
			st.Replicas = append(st.Replicas, core.StageReplica{GPU: g, TP: 1, Zone: z})
		}
		plan.Stages = append(plan.Stages, st)
		first += layers[i]
	}
	return plan, true
}

// --- Aceso [31] -------------------------------------------------------------
//
// Iterative bottleneck alleviation: start from a seed configuration, find
// the bottleneck dimension under the estimator, apply the best single-step
// mutation, repeat until a local optimum; restart from several seeds. A
// homogeneous planner with its own (uniform-device, uniform-bandwidth)
// simulator — the ~200 s search and 37% heterogeneous error of §5.

// Aceso is the planner of Liu et al. (EuroSys'24).
type Aceso struct{ Env Env }

// Name implements Planner.
func (a *Aceso) Name() string { return "Aceso" }

// Caps implements Planner.
func (a *Aceso) Caps() Caps { return Caps{Parallelisms: "3D"} }

// Estimator implements Planner.
func (a *Aceso) Estimator() Estimator {
	return estimator{
		tm: timeModel{cfg: a.Env.Cfg, prof: a.Env.Prof, uniformGPU: true, uniformBW: true, ignoreHead: true},
		mm: memModel{cfg: a.Env.Cfg, ignoreComm: true, ignoreLogits: true},
	}
}

// Rank implements Planner.
func (a *Aceso) Rank(pool *cluster.Pool) (Ranking, error) {
	start := time.Now()
	t := topologyOf(pool)
	types := t.gpuTypes()
	if len(types) == 0 {
		return Ranking{}, errNoNodes("Aceso")
	}
	g := types[0]
	est := a.Estimator()
	deadline := deadlineFrom(a.Env)
	total := t.totalNodes(g) * nodeShape(g)

	type config struct{ pp, tp, dp, mbs int }
	eval := func(c config) (Candidate, bool) {
		if c.pp < 1 || c.tp < 1 || c.dp < 1 || c.mbs < 1 ||
			c.pp > a.Env.Cfg.Layers || c.tp > nodeShape(g) ||
			c.pp*c.tp*c.dp > total || a.Env.Cfg.GlobalBatch < c.dp*c.mbs {
			return Candidate{}, false
		}
		plan, ok := uniformPlan(a.Env.Cfg, t, g, c.pp, c.dp, c.tp, c.mbs)
		if !ok {
			return Candidate{}, false
		}
		it, err := est.IterTime(plan)
		if err != nil || !fitsOwnModel(est, plan) {
			return Candidate{}, false
		}
		mem, _ := est.PeakMemory(plan)
		return Candidate{Plan: plan, EstIterTime: it, EstMemory: mem}, true
	}

	var cands []Candidate
	seeds := []config{
		{pp: 4, tp: nodeShape(g), dp: max(1, total/(4*nodeShape(g))), mbs: 4},
		{pp: 2, tp: 1, dp: max(1, total/2), mbs: 1},
		{pp: 8, tp: 2, dp: max(1, total/16), mbs: 2},
	}
	for _, seed := range seeds {
		cur, ok := eval(seed)
		curCfg := seed
		if !ok {
			continue
		}
		for step := 0; step < 64; step++ {
			if !deadline.IsZero() && time.Now().After(deadline) {
				break
			}
			// Bottleneck alleviation: try every single-dimension mutation,
			// take the best improvement.
			muts := []config{
				{curCfg.pp * 2, curCfg.tp, curCfg.dp, curCfg.mbs},
				{curCfg.pp / 2, curCfg.tp, curCfg.dp, curCfg.mbs},
				{curCfg.pp, curCfg.tp * 2, curCfg.dp, curCfg.mbs},
				{curCfg.pp, curCfg.tp / 2, curCfg.dp, curCfg.mbs},
				{curCfg.pp, curCfg.tp, curCfg.dp * 2, curCfg.mbs},
				{curCfg.pp, curCfg.tp, curCfg.dp / 2, curCfg.mbs},
				{curCfg.pp, curCfg.tp, curCfg.dp, curCfg.mbs * 2},
				{curCfg.pp, curCfg.tp, curCfg.dp, curCfg.mbs / 2},
			}
			improved := false
			for _, mc := range muts {
				if c, ok := eval(mc); ok && c.EstIterTime < cur.EstIterTime {
					cur, curCfg, improved = c, mc, true
				}
			}
			if !improved {
				break
			}
		}
		cands = append(cands, cur)
	}
	return Ranking{Candidates: rankCandidates(cands), SearchTime: time.Since(start)}, nil
}
