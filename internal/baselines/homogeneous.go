package baselines

import (
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
)

// gridRank enumerates homogeneous (pp, tp, dp, mbs) plans for one GPU type,
// filters them through the baseline's own memory model, and sorts by the
// baseline's own time estimate. It is the shared engine behind Piper,
// Varuna, Galvatron and Oobleck, which differ in the grids they sweep and
// the estimator flaws they carry.
func gridRank(cfg model.Config, e Estimator, t vmTopology, g core.GPUType,
	pps, tps, mbss []int, maxPP int, deadline time.Time, planFn func(pp, dp, tp, mbs int) (core.Plan, bool)) []Candidate {

	totalGPUs := t.totalNodes(g) * nodeShape(g)
	var cands []Candidate
	for _, pp := range pps {
		if pp > maxPP || pp > cfg.Layers {
			continue
		}
		for _, tp := range tps {
			if tp > nodeShape(g) {
				continue
			}
			maxDP := totalGPUs / (pp * tp)
			if maxDP < 1 {
				continue
			}
			for _, dp := range powersOfTwo(maxDP) {
				for _, mbs := range mbss {
					if cfg.GlobalBatch < dp*mbs {
						continue
					}
					if !deadline.IsZero() && time.Now().After(deadline) {
						return rankCandidates(cands)
					}
					plan, ok := planFn(pp, dp, tp, mbs)
					if !ok {
						continue
					}
					est, err := e.IterTime(plan)
					if err != nil {
						continue
					}
					if !fitsOwnModel(e, plan) {
						continue
					}
					mem, _ := e.PeakMemory(plan)
					cands = append(cands, Candidate{Plan: plan, EstIterTime: est, EstMemory: mem})
				}
			}
		}
	}
	return rankCandidates(cands)
}

func rankCandidates(cands []Candidate) []Candidate {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].EstIterTime < cands[j].EstIterTime })
	const keep = 64
	if len(cands) > keep {
		cands = cands[:keep]
	}
	return cands
}

func deadlineFrom(env Env) time.Time {
	if env.Deadline <= 0 {
		return time.Time{}
	}
	return time.Now().Add(env.Deadline)
}

// --- Piper [59] -------------------------------------------------------------
//
// Multidimensional dynamic programming over 3D degrees for homogeneous
// clusters. No resource selection, no heterogeneity, no zones. Its memory
// accounting assumes one in-flight microbatch per stage and skips
// communication buffers; its timing assumes uniform devices and bandwidth.

// Piper is the homogeneous 3D planner of Tarnawski et al. (NeurIPS'21).
type Piper struct{ Env Env }

// Name implements Planner.
func (p *Piper) Name() string { return "Piper" }

// Caps implements Planner.
func (p *Piper) Caps() Caps { return Caps{Parallelisms: "3D"} }

// Estimator implements Planner.
func (p *Piper) Estimator() Estimator {
	return estimator{
		tm: timeModel{cfg: p.Env.Cfg, prof: p.Env.Prof, uniformGPU: true, uniformBW: true},
		mm: memModel{cfg: p.Env.Cfg, uniformStages: true, ignoreComm: true},
	}
}

// Rank implements Planner.
func (p *Piper) Rank(pool *cluster.Pool) (Ranking, error) {
	start := time.Now()
	t := topologyOf(pool)
	types := t.gpuTypes()
	if len(types) == 0 {
		return Ranking{}, errNoNodes("Piper")
	}
	g := types[0] // homogeneous planner: best type only
	cands := gridRank(p.Env.Cfg, p.Estimator(), t, g,
		[]int{1, 2, 3, 4, 6, 8, 12, 16}, powersOfTwo(nodeShape(g)), []int{1, 2, 4, 8},
		16, deadlineFrom(p.Env),
		func(pp, dp, tp, mbs int) (core.Plan, bool) {
			return uniformPlan(p.Env.Cfg, t, g, pp, dp, tp, mbs)
		})
	return Ranking{Candidates: cands, SearchTime: time.Since(start)}, nil
}

// --- Varuna [3] -------------------------------------------------------------
//
// Exhaustive 2D (DP x PP) search with TP fixed at 1. Its memory estimator
// omits optimizer states, communication buffers and the loss logits — the
// omissions behind the invalid plans of §5.2.1 — so OOM plans pass its own
// filter.

// Varuna is the 2D planner of Athlur et al. (EuroSys'22).
type Varuna struct{ Env Env }

// Name implements Planner.
func (v *Varuna) Name() string { return "Varuna" }

// Caps implements Planner.
func (v *Varuna) Caps() Caps { return Caps{Parallelisms: "2D"} }

// Estimator implements Planner.
func (v *Varuna) Estimator() Estimator {
	return estimator{
		tm: timeModel{cfg: v.Env.Cfg, prof: v.Env.Prof, uniformGPU: true, uniformBW: true},
		mm: memModel{cfg: v.Env.Cfg, ignoreOptimizer: true, ignoreComm: true, ignoreLogits: true},
	}
}

// Rank implements Planner.
func (v *Varuna) Rank(pool *cluster.Pool) (Ranking, error) {
	start := time.Now()
	t := topologyOf(pool)
	types := t.gpuTypes()
	if len(types) == 0 {
		return Ranking{}, errNoNodes("Varuna")
	}
	g := types[0]
	pps := make([]int, 0, 16)
	for pp := 1; pp <= 16; pp++ {
		pps = append(pps, pp) // exhaustive, not just powers
	}
	cands := gridRank(v.Env.Cfg, v.Estimator(), t, g,
		pps, []int{1}, []int{1, 2, 4, 8, 16},
		16, deadlineFrom(v.Env),
		func(pp, dp, tp, mbs int) (core.Plan, bool) {
			return uniformPlan(v.Env.Cfg, t, g, pp, dp, tp, mbs)
		})
	return Ranking{Candidates: cands, SearchTime: time.Since(start)}, nil
}

// --- Galvatron [37] ---------------------------------------------------------
//
// Homogeneous 3D planner with a decision-tree-pruned search and a reasonable
// memory model (it only misses the logits buffer). The strongest homogeneous
// baseline in §5.2.4.

// Galvatron is the planner of Miao et al. (VLDB'23).
type Galvatron struct{ Env Env }

// Name implements Planner.
func (g *Galvatron) Name() string { return "Galvatron" }

// Caps implements Planner.
func (g *Galvatron) Caps() Caps { return Caps{Parallelisms: "3D"} }

// Estimator implements Planner.
func (g *Galvatron) Estimator() Estimator {
	return estimator{
		tm: timeModel{cfg: g.Env.Cfg, prof: g.Env.Prof, uniformGPU: true, uniformBW: true},
		mm: memModel{cfg: g.Env.Cfg, ignoreLogits: true},
	}
}

// Rank implements Planner.
func (g *Galvatron) Rank(pool *cluster.Pool) (Ranking, error) {
	start := time.Now()
	t := topologyOf(pool)
	types := t.gpuTypes()
	if len(types) == 0 {
		return Ranking{}, errNoNodes("Galvatron")
	}
	best := types[0]
	cands := gridRank(g.Env.Cfg, g.Estimator(), t, best,
		[]int{1, 2, 3, 4, 6, 8, 12, 16}, powersOfTwo(nodeShape(best)), []int{1, 2, 4, 8, 16},
		16, deadlineFrom(g.Env),
		func(pp, dp, tp, mbs int) (core.Plan, bool) {
			return uniformPlan(g.Env.Cfg, t, best, pp, dp, tp, mbs)
		})
	return Ranking{Candidates: cands, SearchTime: time.Since(start)}, nil
}

// --- Oobleck [21] -----------------------------------------------------------
//
// Resilient training via pipeline templates: it enumerates pipeline
// templates (depth x non-uniform layer splits) exhaustively, which is what
// drives its hours-scale search in Table 1. Memory accounting omits
// optimizer states.

// Oobleck is the template-based planner of Jang et al. (SOSP'23).
type Oobleck struct{ Env Env }

// Name implements Planner.
func (o *Oobleck) Name() string { return "Oobleck" }

// Caps implements Planner.
func (o *Oobleck) Caps() Caps { return Caps{Parallelisms: "3D"} }

// Estimator implements Planner.
func (o *Oobleck) Estimator() Estimator {
	return estimator{
		tm: timeModel{cfg: o.Env.Cfg, prof: o.Env.Prof, uniformGPU: true, uniformBW: true},
		mm: memModel{cfg: o.Env.Cfg, ignoreOptimizer: true},
	}
}

// Rank implements Planner.
func (o *Oobleck) Rank(pool *cluster.Pool) (Ranking, error) {
	start := time.Now()
	t := topologyOf(pool)
	types := t.gpuTypes()
	if len(types) == 0 {
		return Ranking{}, errNoNodes("Oobleck")
	}
	g := types[0]
	est := o.Estimator()
	deadline := deadlineFrom(o.Env)
	totalGPUs := t.totalNodes(g) * nodeShape(g)
	var cands []Candidate
	// Template enumeration: every pipeline depth, every single-boundary
	// shift of the even layer split, every (tp, dp, mbs) — deliberately
	// combinatorial, capped by the deadline like the paper caps Metis.
	for pp := 1; pp <= 16 && pp <= o.Env.Cfg.Layers; pp++ {
		for _, layers := range templateSplits(o.Env.Cfg.Layers, pp) {
			for _, tp := range powersOfTwo(nodeShape(g)) {
				maxDP := totalGPUs / (pp * tp)
				for _, dp := range powersOfTwo(maxDP) {
					for _, mbs := range []int{1, 2, 4, 8} {
						if o.Env.Cfg.GlobalBatch < dp*mbs {
							continue
						}
						if !deadline.IsZero() && time.Now().After(deadline) {
							return Ranking{Candidates: rankCandidates(cands), SearchTime: time.Since(start)}, nil
						}
						plan, ok := shapedPlan(o.Env.Cfg, t, g, layers, dp, tp, mbs)
						if !ok {
							continue
						}
						it, err := est.IterTime(plan)
						if err != nil || !fitsOwnModel(est, plan) {
							continue
						}
						mem, _ := est.PeakMemory(plan)
						cands = append(cands, Candidate{Plan: plan, EstIterTime: it, EstMemory: mem})
					}
				}
			}
		}
	}
	return Ranking{Candidates: rankCandidates(cands), SearchTime: time.Since(start)}, nil
}

// templateSplits returns the even split of l layers into pp stages plus all
// single-boundary perturbations — Oobleck's template family.
func templateSplits(l, pp int) [][]int {
	base := splitEven(l, pp)
	out := [][]int{base}
	for b := 0; b < pp-1; b++ {
		v := append([]int(nil), base...)
		if v[b] > 1 {
			v[b]--
			v[b+1]++
			out = append(out, v)
		}
	}
	return out
}

// shapedPlan is uniformPlan with an explicit per-stage layer split.
func shapedPlan(cfg model.Config, t vmTopology, g core.GPUType, layers []int, dp, tp, mbs int) (core.Plan, bool) {
	pp := len(layers)
	plan, ok := uniformPlan(cfg, t, g, pp, dp, tp, mbs)
	if !ok {
		return core.Plan{}, false
	}
	first := 0
	for i := range plan.Stages {
		plan.Stages[i].FirstLayer = first
		plan.Stages[i].NumLayers = layers[i]
		first += layers[i]
	}
	return plan, true
}

type errNoNodes string

func (e errNoNodes) Error() string { return string(e) + ": no whole VMs available" }
