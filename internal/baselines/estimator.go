package baselines

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/profiler"
	"repro/internal/sim"
)

func lookupSpec(g core.GPUType) (hardware.GPUSpec, error) { return hardware.Lookup(g) }

func nodeShape(g core.GPUType) int { return hardware.DefaultNodeType(g).GPUsPerNode }

// timeModel is a parameterised iteration-time estimator. Every baseline's
// published model is an instance of it; the flags encode the documented
// structural omissions the paper's §3.2/C2 calls out.
type timeModel struct {
	cfg  model.Config
	prof *profiler.Profile
	net  *hardware.Network

	// theoreticalFLOPS derives layer times from datasheet peak FLOPS
	// instead of measured profiles (FlashFlex).
	theoreticalFLOPS bool
	// uniformGPU evaluates every worker with the first replica's GPU type
	// (homogeneous planners: Piper, Varuna, Galvatron, Aceso, Oobleck).
	uniformGPU bool
	// uniformBW uses the intra-zone link for every transfer, missing
	// heterogeneous/geo bandwidth (Metis and most others).
	uniformBW bool
	// averageStages uses the mean stage time instead of the straggler max
	// (AMP's heterogeneity-unaware steady state).
	averageStages bool
	// ignoreHead drops the output-projection/loss cost of the last stage.
	ignoreHead bool
	// ignoreUpdate drops the optimizer step.
	ignoreUpdate bool
	// commOnly ranks by communication time alone, ignoring compute
	// (DTFM's cost function).
	commOnly bool
}

// IterTime predicts seconds/iteration for a plan under the model's flags.
func (m timeModel) IterTime(plan core.Plan) (float64, error) {
	if err := plan.Validate(m.cfg.Layers); err != nil {
		return 0, err
	}
	nb := sim.NumMicrobatches(m.cfg, plan)
	if nb == 0 {
		return 0, fmt.Errorf("baseline estimator: degenerate plan")
	}
	p := plan.PP()
	dp := plan.DP()
	net := m.net
	if net == nil {
		net = hardware.DefaultNetwork()
	}

	uniType := plan.Stages[0].Replicas[0].GPU

	worstPipe := 0.0
	var sumStage, maxStage float64
	for k := 0; k < dp; k++ {
		fwd := make([]float64, p)
		bwd := make([]float64, p)
		comm := make([]float64, p-1)
		for i, st := range plan.Stages {
			r := st.Replicas[k]
			g := r.GPU
			if m.uniformGPU {
				g = uniType
			}
			f, b, err := m.layerTimes(g, plan.MicroBatchSize, r.TP)
			if err != nil {
				return 0, err
			}
			fwd[i] = float64(st.NumLayers) * f
			bwd[i] = float64(st.NumLayers) * b
			if i == p-1 && !m.ignoreHead && !m.theoreticalFLOPS {
				ht, err := m.prof.HeadTimingFor(g, plan.MicroBatchSize, r.TP)
				if err == nil {
					fwd[i] += ht.Fwd
					bwd[i] += ht.Bwd
				}
			}
			if i < p-1 {
				class := hardware.IntraZone
				if !m.uniformBW {
					class = net.Classify(r.Zone, plan.Stages[i+1].Replicas[k].Zone)
				}
				comm[i] = m.prof.NetFit(class).Eval(m.cfg.BoundaryActivationBytes(plan.MicroBatchSize))
			}
		}
		var t float64
		switch {
		case m.commOnly:
			// DTFM: total communication volume time only.
			for _, c := range comm {
				t += 2 * c * float64(nb)
			}
		case m.averageStages:
			mean := 0.0
			for i := 0; i < p; i++ {
				mean += fwd[i] + bwd[i]
			}
			mean /= float64(p)
			t = float64(nb-1)*mean + mean*float64(p)
			for _, c := range comm {
				t += 2 * c
			}
		default:
			var err error
			// Baselines expose comm fully (no overlap modelling, a C2 flaw).
			t, err = pipeline.AnalyticTime(fwd, bwd, comm, nb, 0)
			if err != nil {
				return 0, err
			}
		}
		if t > worstPipe {
			worstPipe = t
		}
		for i := 0; i < p; i++ {
			v := fwd[i] + bwd[i]
			sumStage += v
			if v > maxStage {
				maxStage = v
			}
		}
	}

	total := worstPipe
	// Gradient sync: all models except commOnly add a ring estimate; the
	// uniformBW flaw prices geo rings at intra-zone speed.
	if dp > 1 {
		syncMax := 0.0
		for _, st := range plan.Stages {
			minTP := st.Replicas[0].TP
			worst := hardware.IntraZone
			for i := 0; i < dp && !m.uniformBW; i++ {
				for j := i + 1; j < dp; j++ {
					if c := net.Classify(st.Replicas[i].Zone, st.Replicas[j].Zone); c > worst {
						worst = c
					}
				}
			}
			for _, r := range st.Replicas {
				if r.TP < minTP {
					minTP = r.TP
				}
			}
			bytes := int64(st.NumLayers) * m.cfg.GradBytesPerLayer(minTP)
			s := collective.RingAllReduce(collective.FromFit(m.prof.NetFit(worst)), bytes, dp)
			if m.commOnly {
				total += s // DTFM counts DP comm in its objective
				continue
			}
			if s > syncMax {
				syncMax = s
			}
		}
		total += syncMax
	}
	if !m.ignoreUpdate && !m.theoreticalFLOPS && !m.commOnly {
		upd := 0.0
		for _, st := range plan.Stages {
			for _, r := range st.Replicas {
				g := r.GPU
				if m.uniformGPU {
					g = uniType
				}
				lt, err := m.prof.LayerTimingFor(g, plan.MicroBatchSize, r.TP)
				if err != nil {
					continue
				}
				if u := float64(st.NumLayers) * lt.Update; u > upd {
					upd = u
				}
			}
		}
		total += upd
	}
	return total, nil
}

// layerTimes returns per-layer fwd/bwd seconds under the model's flags.
func (m timeModel) layerTimes(g core.GPUType, mbs, tp int) (float64, float64, error) {
	if m.theoreticalFLOPS {
		spec, err := lookupSpec(g)
		if err != nil {
			return 0, 0, err
		}
		f := m.cfg.LayerFwdFLOPs(mbs) / float64(tp) / (spec.PeakTFLOPS * 1e12)
		return f, 2 * f, nil
	}
	lt, err := m.prof.LayerTimingFor(g, mbs, tp)
	if err != nil {
		return 0, 0, err
	}
	return lt.Fwd, lt.Bwd, nil
}

// memModel is the parameterised peak-memory estimator; flags encode the
// omissions Figure 3 exposes.
type memModel struct {
	cfg model.Config
	// none: the baseline has no memory model at all (AMP, DTFM).
	none bool
	// ignoreOptimizer drops the 12 bytes/param Adam states (Varuna, Oobleck).
	ignoreOptimizer bool
	// ignoreComm drops gradient buckets and p2p staging buffers.
	ignoreComm bool
	// uniformStages assumes one in-flight microbatch everywhere, ignoring
	// the 1F1B pyramid (Piper, FlashFlex).
	uniformStages bool
	// ignoreLogits drops the last stage's vocab-sized loss buffer.
	ignoreLogits bool
}

// PeakMemory predicts the peak bytes of the most loaded worker, or ok=false
// when the model is absent.
func (m memModel) PeakMemory(plan core.Plan) (int64, bool) {
	if m.none {
		return 0, false
	}
	if plan.PP() == 0 || plan.DP() == 0 {
		return 0, true
	}
	nb := sim.NumMicrobatches(m.cfg, plan)
	var peak int64
	for si, st := range plan.Stages {
		for _, r := range st.Replicas {
			if v := m.worker(plan, si, st, r, nb); v > peak {
				peak = v
			}
		}
	}
	return peak, true
}

func (m memModel) worker(plan core.Plan, si int, st core.StagePlan, r core.StageReplica, nb int) int64 {
	pp := plan.PP()
	first, last := si == 0, si == pp-1
	params := m.cfg.StageParams(st.NumLayers, r.TP, first, last)
	total := params * (memory.BytesWeights + memory.BytesGradients)
	if !m.ignoreOptimizer {
		total += params * memory.BytesOptimizer
	}
	if !m.ignoreComm {
		total += params * memory.BytesGradients
		if pp > 1 {
			total += 4 * m.cfg.BoundaryActivationBytes(plan.MicroBatchSize)
		}
	}
	inflight := pp - si
	if nb > 0 && inflight > nb {
		inflight = nb
	}
	if inflight < 1 || m.uniformStages {
		inflight = 1
	}
	perMB := m.cfg.ActivationBytesPerLayer(plan.MicroBatchSize, r.TP) * int64(st.NumLayers)
	if last && !m.ignoreLogits {
		perMB += 2 * int64(plan.MicroBatchSize) * int64(m.cfg.SeqLen) * int64(m.cfg.Vocab) / int64(r.TP)
	}
	return total + int64(inflight)*perMB
}

// estimator couples a baseline's time and memory models.
type estimator struct {
	tm timeModel
	mm memModel
}

func (e estimator) IterTime(plan core.Plan) (float64, error) { return e.tm.IterTime(plan) }
func (e estimator) PeakMemory(plan core.Plan) (int64, bool)  { return e.mm.PeakMemory(plan) }

// coreEstimator adapts a baseline's published time/memory models to the
// shared core.Estimator seam, so estimation-accuracy harnesses can sweep
// Sailor's simulator, the ground truth, and every baseline uniformly.
type coreEstimator struct {
	e   Estimator
	cfg model.Config
}

// AsCoreEstimator wraps a baseline estimator in the core.Estimator
// interface. Baselines do not model cost, so the returned Estimate prices
// nothing; FitsMemory reflects the baseline's own (possibly absent) memory
// model, exactly as its deployment filter would.
func AsCoreEstimator(e Estimator, cfg model.Config) core.Estimator {
	return coreEstimator{e: e, cfg: cfg}
}

func (c coreEstimator) Estimate(plan core.Plan) (core.Estimate, error) {
	t, err := c.e.IterTime(plan)
	if err != nil {
		return core.Estimate{}, err
	}
	peak, _ := c.e.PeakMemory(plan)
	return core.Estimate{
		IterTime:   t,
		PeakMemory: peak,
		FitsMemory: fitsOwnModel(c.e, plan),
	}, nil
}

func (c coreEstimator) Throughput(plan core.Plan) (float64, error) {
	t, err := c.e.IterTime(plan)
	if err != nil {
		return 0, err
	}
	if t <= 0 {
		return 0, fmt.Errorf("baseline estimator: non-positive iteration time")
	}
	return 1 / t, nil
}

func (c coreEstimator) PeakMemory(plan core.Plan) (int64, error) {
	peak, ok := c.e.PeakMemory(plan)
	if !ok {
		return 0, fmt.Errorf("baseline estimator: no memory model")
	}
	return peak, nil
}

// fitsOwnModel applies a baseline's own (possibly absent or flawed) memory
// filter: plans pass when the model is absent or predicts a fit — which is
// exactly how under-estimators leak OOM plans into deployment.
func fitsOwnModel(e Estimator, plan core.Plan) bool {
	peak, ok := e.PeakMemory(plan)
	if !ok {
		return true // no model: everything looks fine
	}
	for _, st := range plan.Stages {
		for _, r := range st.Replicas {
			spec, err := lookupSpec(r.GPU)
			if err != nil {
				return false
			}
			if peak+memory.CapacityReserve > spec.MemoryBytes {
				return false
			}
		}
	}
	return true
}
