package baselines

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/groundtruth"
)

// All returns every baseline planner over one environment, in the order of
// Table 1.
func All(env Env) []Planner {
	return []Planner{
		&Piper{Env: env},
		&AMP{Env: env},
		&Varuna{Env: env},
		&Oobleck{Env: env},
		&Metis{Env: env},
		&FlashFlex{Env: env},
		&Galvatron{Env: env},
		&Aceso{Env: env},
		&DTFM{Env: env},
	}
}

// ByName returns one baseline by its Table 1 name.
func ByName(env Env, name string) (Planner, error) {
	for _, p := range All(env) {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("baselines: unknown planner %q", name)
}

// Deployment is the outcome of deploying a baseline's ranking on the
// ground-truth cluster: the first plan that does not OOM, its measured
// estimate, and how many invalid (OOM) plans were emitted before it —
// the bold numbers of Figures 8 and 9.
type Deployment struct {
	Planner     string
	Plan        core.Plan
	Measured    core.Estimate
	EstIterTime float64
	OOMPlans    int
	SearchTime  time.Duration
}

// Deploy runs a planner and walks its ranking on the ground-truth engine
// until a plan survives, mirroring how the paper deploys baseline plans on
// real clusters and counts OOM emissions.
func Deploy(p Planner, pool *cluster.Pool, gt *groundtruth.Engine) (Deployment, error) {
	r, err := p.Rank(pool)
	if err != nil {
		return Deployment{Planner: p.Name()}, err
	}
	d := Deployment{Planner: p.Name(), SearchTime: r.SearchTime}
	for _, c := range r.Candidates {
		meas, err := gt.Measure(c.Plan)
		if err != nil {
			d.OOMPlans++ // invalid plan (fails deployment)
			continue
		}
		if !meas.FitsMemory {
			d.OOMPlans++
			continue
		}
		d.Plan = c.Plan
		d.Measured = meas
		d.EstIterTime = c.EstIterTime
		return d, nil
	}
	return d, fmt.Errorf("baselines: %s found no deployable plan (%d OOM of %d candidates)",
		p.Name(), d.OOMPlans, len(r.Candidates))
}
