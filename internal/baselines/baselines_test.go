package baselines

import (
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/model"
	"repro/internal/profiler"
)

var (
	zoneA = cluster.GCPZone("us-central1", 'a')
	zoneB = cluster.GCPZone("us-central1", 'b')
	zoneW = cluster.GCPZone("us-west1", 'a')
)

func env(t *testing.T, cfg model.Config, gpus ...core.GPUType) Env {
	t.Helper()
	prof, err := profiler.Collect(cfg, gpus, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return Env{Cfg: cfg, Prof: prof, Deadline: 5 * time.Second}
}

func TestAllPlannersProduceValidRankings(t *testing.T) {
	cfg := model.OPT350M()
	e := env(t, cfg, core.A100, core.V100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 32).Set(zoneA, core.V100, 32)
	for _, p := range All(e) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			r, err := p.Rank(pool)
			if err != nil {
				t.Fatalf("Rank: %v", err)
			}
			if len(r.Candidates) == 0 {
				t.Fatal("no candidates")
			}
			for i, c := range r.Candidates {
				if err := c.Plan.Validate(cfg.Layers); err != nil {
					t.Fatalf("candidate %d invalid: %v", i, err)
				}
				if c.EstIterTime <= 0 {
					t.Fatalf("candidate %d has nonpositive estimate", i)
				}
			}
			// Preference order must be by own estimate.
			for i := 1; i < len(r.Candidates); i++ {
				if r.Candidates[i].EstIterTime < r.Candidates[i-1].EstIterTime-1e-12 {
					t.Fatal("candidates not sorted by estimated time")
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	e := env(t, model.OPT350M(), core.A100)
	if _, err := ByName(e, "Metis"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName(e, "NoSuchPlanner"); err == nil {
		t.Fatal("want error for unknown name")
	}
}

func TestCapsMatchTable1(t *testing.T) {
	e := env(t, model.OPT350M(), core.A100)
	want := map[string]Caps{
		"Piper":     {Parallelisms: "3D"},
		"AMP":       {Parallelisms: "3D", HeterogeneousGPUs: true},
		"Varuna":    {Parallelisms: "2D"},
		"Oobleck":   {Parallelisms: "3D"},
		"Metis":     {Parallelisms: "3D", HeterogeneousGPUs: true},
		"FlashFlex": {Parallelisms: "3D", PicksResources: true, HeterogeneousGPUs: true},
		"Galvatron": {Parallelisms: "3D"},
		"Aceso":     {Parallelisms: "3D"},
		"DTFM":      {Parallelisms: "2D", PicksResources: true, MultiZone: true},
	}
	for _, p := range All(e) {
		if got := p.Caps(); got != want[p.Name()] {
			t.Errorf("%s caps = %+v, want %+v", p.Name(), got, want[p.Name()])
		}
	}
}

func TestVarunaIsTwoDimensional(t *testing.T) {
	cfg := model.OPT350M()
	e := env(t, cfg, core.A100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 32)
	v := &Varuna{Env: e}
	r, err := v.Rank(pool)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Candidates {
		for _, s := range c.Plan.Stages {
			for _, rep := range s.Replicas {
				if rep.TP != 1 {
					t.Fatalf("Varuna must keep TP=1, got %d", rep.TP)
				}
			}
		}
	}
}

func TestVarunaUnderestimatesMemory(t *testing.T) {
	// Figure 3: Varuna's estimator omits optimizer states and comm
	// buffers, so its prediction falls far below ground truth.
	cfg := model.OPT350M()
	e := env(t, cfg, core.A100)
	v := &Varuna{Env: e}
	pool := cluster.NewPool().Set(zoneA, core.A100, 16)
	r, err := v.Rank(pool)
	if err != nil {
		t.Fatal(err)
	}
	plan := r.Candidates[0].Plan
	est, ok := v.Estimator().PeakMemory(plan)
	if !ok {
		t.Fatal("Varuna has a memory model")
	}
	gt := groundtruth.New(cfg)
	meas, err := gt.Measure(plan)
	if err != nil {
		t.Fatal(err)
	}
	if est >= meas.PeakMemory {
		t.Errorf("Varuna estimate %d should underestimate real %d", est, meas.PeakMemory)
	}
	// The gap narrows on activation-dominated plans and widens on
	// parameter-dominated ones; require a clear structural underestimate.
	if rel := float64(meas.PeakMemory-est) / float64(meas.PeakMemory); rel < 0.15 {
		t.Errorf("Varuna should be far off (paper: ~50-74%% on average), got %.0f%%", rel*100)
	}
}

func TestAMPHasNoMemoryModel(t *testing.T) {
	e := env(t, model.GPTNeo27B(), core.A100, core.V100)
	a := &AMP{Env: e}
	if _, ok := a.Estimator().PeakMemory(core.Plan{}); ok {
		t.Fatal("AMP must report no memory model")
	}
}

func TestAMPEmitsOOMPlansOnGPTNeo(t *testing.T) {
	// Figure 9: AMP, blind to memory, emits OOM plans before a valid one.
	cfg := model.GPTNeo27B()
	e := env(t, cfg, core.A100, core.V100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 32).Set(zoneA, core.V100, 32)
	gt := groundtruth.New(cfg)
	d, err := Deploy(&AMP{Env: e}, pool, gt)
	if err != nil {
		// All candidates OOM is also consistent with the paper's X marks.
		t.Logf("AMP found no deployable plan: %v", err)
		return
	}
	if d.OOMPlans == 0 {
		t.Error("AMP should emit at least one OOM plan for GPT-Neo (paper: 6-34)")
	}
}

func TestSailorStyleDeployNeverOOMsForMetis(t *testing.T) {
	// Metis models memory well; on OPT-350M its first plans deploy with
	// few or no OOMs.
	cfg := model.OPT350M()
	e := env(t, cfg, core.A100, core.V100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneA, core.V100, 16)
	gt := groundtruth.New(cfg)
	d, err := Deploy(&Metis{Env: e}, pool, gt)
	if err != nil {
		t.Fatal(err)
	}
	if d.OOMPlans > 2 {
		t.Errorf("Metis emitted %d OOM plans on OPT-350M; expected near zero", d.OOMPlans)
	}
	if d.Measured.Throughput() <= 0 {
		t.Error("deployed plan must have positive throughput")
	}
}

func TestFlashFlexTimeEstimateIsWildlyOptimistic(t *testing.T) {
	// Figure 6: theoretical-FLOPS timing underestimates reality badly.
	cfg := model.OPT350M()
	e := env(t, cfg, core.A100)
	f := &FlashFlex{Env: e}
	pool := cluster.NewPool().Set(zoneA, core.A100, 16)
	r, err := f.Rank(pool)
	if err != nil {
		t.Fatal(err)
	}
	plan := r.Candidates[0].Plan
	est, err := f.Estimator().IterTime(plan)
	if err != nil {
		t.Fatal(err)
	}
	gt := groundtruth.New(cfg)
	meas, err := gt.Measure(plan)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(meas.IterTime-est) / meas.IterTime
	if rel < 0.30 {
		t.Errorf("FlashFlex error %.0f%%; paper reports ~69%%", rel*100)
	}
	if est >= meas.IterTime {
		t.Error("theoretical FLOPS must underestimate time")
	}
}

func TestMetisEstimatesBetterThanFlashFlex(t *testing.T) {
	// Figure 6 ordering: Metis's measured profiles beat FlashFlex's
	// theoretical model on heterogeneous plans.
	cfg := model.OPT350M()
	e := env(t, cfg, core.A100, core.V100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneA, core.V100, 16)
	m := &Metis{Env: e}
	r, err := m.Rank(pool)
	if err != nil {
		t.Fatal(err)
	}
	plan := r.Candidates[0].Plan
	gt := groundtruth.New(cfg)
	meas, err := gt.Measure(plan)
	if err != nil {
		t.Fatal(err)
	}
	errOf := func(est float64) float64 { return math.Abs(meas.IterTime-est) / meas.IterTime }
	em, err := m.Estimator().IterTime(plan)
	if err != nil {
		t.Fatal(err)
	}
	ef, err := (&FlashFlex{Env: e}).Estimator().IterTime(plan)
	if err != nil {
		t.Fatal(err)
	}
	if errOf(em) >= errOf(ef) {
		t.Errorf("Metis error %.0f%% should beat FlashFlex %.0f%%", errOf(em)*100, errOf(ef)*100)
	}
}

func TestDTFMSpreadsAcrossAllZones(t *testing.T) {
	// DTFM's flaw: it uses every region it is given.
	cfg := model.OPT350M()
	e := env(t, cfg, core.A100)
	pool := cluster.NewPool().
		Set(zoneA, core.A100, 8).Set(zoneB, core.A100, 8).Set(zoneW, core.A100, 8)
	d := &DTFM{Env: e}
	r, err := d.Rank(pool)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range r.Candidates[:min(8, len(r.Candidates))] {
		if len(c.Plan.Zones()) >= 3 {
			found = true
			break
		}
	}
	if !found {
		t.Error("DTFM's top candidates should span all zones")
	}
}

func TestAcesoConvergesToLocalOptimum(t *testing.T) {
	cfg := model.OPT350M()
	e := env(t, cfg, core.A100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 32)
	a := &Aceso{Env: e}
	r, err := a.Rank(pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Candidates) == 0 {
		t.Fatal("Aceso found nothing")
	}
	// The local optimum must beat its own seed neighbourhood: sanity-check
	// it deploys.
	gt := groundtruth.New(cfg)
	if _, err := Deploy(a, pool, gt); err != nil {
		t.Fatalf("Aceso plan undeployable: %v", err)
	}
}

func TestMetisSearchIsSlowestHeterogeneous(t *testing.T) {
	// Table 2's ordering: Metis >> AMP/FlashFlex on heterogeneous pools.
	cfg := model.OPT350M()
	e := env(t, cfg, core.A100, core.V100)
	e.Deadline = 3 * time.Second
	pool := cluster.NewPool().Set(zoneA, core.A100, 64).Set(zoneA, core.V100, 64)
	tMetis := searchTime(t, &Metis{Env: e}, pool)
	tFlash := searchTime(t, &FlashFlex{Env: e}, pool)
	if tMetis <= tFlash {
		t.Errorf("Metis search %v should exceed FlashFlex %v", tMetis, tFlash)
	}
}

func searchTime(t *testing.T, p Planner, pool *cluster.Pool) time.Duration {
	t.Helper()
	r, err := p.Rank(pool)
	if err != nil {
		t.Fatal(err)
	}
	return r.SearchTime
}

func TestOobleckTemplates(t *testing.T) {
	got := templateSplits(24, 4)
	if len(got) != 4 { // even + 3 boundary shifts
		t.Fatalf("templateSplits = %d variants, want 4", len(got))
	}
	for _, v := range got {
		sum := 0
		for _, x := range v {
			sum += x
		}
		if sum != 24 {
			t.Fatalf("template %v does not cover 24 layers", v)
		}
	}
}

func TestDeployReportsError(t *testing.T) {
	// FlashFlex on GPT-Neo with tight memory: candidates exist but none
	// deploy (the X marks of Figure 9).
	cfg := model.GPTNeo27B()
	e := env(t, cfg, core.V100)
	pool := cluster.NewPool().Set(zoneA, core.V100, 16)
	gt := groundtruth.New(cfg)
	if _, err := Deploy(&FlashFlex{Env: e}, pool, gt); err == nil {
		t.Skip("FlashFlex happened to find a valid plan; acceptable")
	}
}

func TestEmptyPoolErrors(t *testing.T) {
	e := env(t, model.OPT350M(), core.A100)
	for _, p := range All(e) {
		if _, err := p.Rank(cluster.NewPool()); err == nil {
			t.Errorf("%s should error on empty pool", p.Name())
		}
	}
}
