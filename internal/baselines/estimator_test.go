package baselines

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/profiler"
)

func simplePlan(cfg model.Config, g core.GPUType, pp, dp, tp, mbs int) core.Plan {
	per := cfg.Layers / pp
	plan := core.Plan{MicroBatchSize: mbs}
	first := 0
	for i := 0; i < pp; i++ {
		st := core.StagePlan{FirstLayer: first, NumLayers: per}
		for k := 0; k < dp; k++ {
			st.Replicas = append(st.Replicas, core.StageReplica{GPU: g, TP: tp, Zone: zoneA})
		}
		plan.Stages = append(plan.Stages, st)
		first += per
	}
	return plan
}

func testEnv(t *testing.T, cfg model.Config, gpus ...core.GPUType) Env {
	t.Helper()
	prof, err := profiler.Collect(cfg, gpus, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return Env{Cfg: cfg, Prof: prof}
}

func TestMemModelFlags(t *testing.T) {
	cfg := model.OPT350M()
	plan := simplePlan(cfg, core.A100, 2, 2, 1, 2)

	full := memModel{cfg: cfg}
	peakFull, ok := full.PeakMemory(plan)
	if !ok || peakFull <= 0 {
		t.Fatal("full model must produce an estimate")
	}

	noOpt := memModel{cfg: cfg, ignoreOptimizer: true}
	peakNoOpt, _ := noOpt.PeakMemory(plan)
	if peakNoOpt >= peakFull {
		t.Error("dropping optimizer states must shrink the estimate")
	}

	uniform := memModel{cfg: cfg, uniformStages: true}
	peakUniform, _ := uniform.PeakMemory(plan)
	if peakUniform >= peakFull {
		t.Error("uniform-stage (1 in-flight) accounting must shrink the estimate")
	}

	none := memModel{cfg: cfg, none: true}
	if _, ok := none.PeakMemory(plan); ok {
		t.Error("none model must report absence")
	}
	if v, ok := (memModel{cfg: cfg}).PeakMemory(core.Plan{}); !ok || v != 0 {
		t.Error("empty plan should yield zero estimate")
	}
}

func TestMemModelFullMatchesSailorAccounting(t *testing.T) {
	// With no flags set, the parameterised model must agree with Sailor's
	// own estimator (the baselines differ only via their omissions).
	cfg := model.OPT350M()
	plan := simplePlan(cfg, core.A100, 2, 4, 2, 2)
	full := memModel{cfg: cfg}
	got, _ := full.PeakMemory(plan)
	want, _, _, err := memory.Check(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("flagless memModel %d != memory.Check %d", got, want)
	}
}

func TestTimeModelFlags(t *testing.T) {
	cfg := model.OPT350M()
	env := testEnv(t, cfg, core.A100, core.V100)
	mixed := simplePlan(cfg, core.A100, 2, 2, 1, 2)
	for j := range mixed.Stages[1].Replicas {
		mixed.Stages[1].Replicas[j].GPU = core.V100
	}

	exact := timeModel{cfg: cfg, prof: env.Prof}
	tExact, err := exact.IterTime(mixed)
	if err != nil {
		t.Fatal(err)
	}

	// uniformGPU prices the V100 stage at A100 speed -> underestimates.
	uni := timeModel{cfg: cfg, prof: env.Prof, uniformGPU: true}
	tUni, err := uni.IterTime(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if tUni >= tExact {
		t.Errorf("uniform-GPU model %v must undercut straggler-aware %v on mixed plans", tUni, tExact)
	}

	// theoretical FLOPS ignores efficiency -> underestimates further.
	theo := timeModel{cfg: cfg, prof: env.Prof, theoreticalFLOPS: true}
	tTheo, err := theo.IterTime(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if tTheo >= tExact {
		t.Errorf("theoretical-FLOPS %v must undercut measured %v", tTheo, tExact)
	}

	// averaging stages hides the straggler.
	avg := timeModel{cfg: cfg, prof: env.Prof, averageStages: true}
	tAvg, err := avg.IterTime(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if tAvg >= tExact {
		t.Errorf("stage-averaging %v must undercut straggler max %v", tAvg, tExact)
	}

	// commOnly counts only communication.
	comm := timeModel{cfg: cfg, prof: env.Prof, commOnly: true}
	tComm, err := comm.IterTime(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if tComm >= tExact || tComm <= 0 {
		t.Errorf("comm-only %v must be positive and far below total %v", tComm, tExact)
	}
}

func TestTimeModelUniformBWIgnoresRegions(t *testing.T) {
	cfg := model.OPT350M()
	env := testEnv(t, cfg, core.A100)
	geo := simplePlan(cfg, core.A100, 2, 2, 1, 2)
	for j := range geo.Stages[1].Replicas {
		geo.Stages[1].Replicas[j].Zone = zoneW
	}
	aware := timeModel{cfg: cfg, prof: env.Prof}
	blind := timeModel{cfg: cfg, prof: env.Prof, uniformBW: true}
	tAware, err := aware.IterTime(geo)
	if err != nil {
		t.Fatal(err)
	}
	tBlind, err := blind.IterTime(geo)
	if err != nil {
		t.Fatal(err)
	}
	if tBlind >= tAware {
		t.Errorf("uniform-bandwidth model %v must miss the inter-region cost %v (Metis's flaw)", tBlind, tAware)
	}
}

func TestTimeModelErrors(t *testing.T) {
	cfg := model.OPT350M()
	env := testEnv(t, cfg, core.A100)
	m := timeModel{cfg: cfg, prof: env.Prof}
	if _, err := m.IterTime(core.Plan{}); err == nil {
		t.Error("want error for empty plan")
	}
	// Unprofiled GPU type.
	p := simplePlan(cfg, "No-Such-GPU", 1, 1, 1, 1)
	if _, err := m.IterTime(p); err == nil {
		t.Error("want error for unprofiled GPU")
	}
}

func TestFitsOwnModel(t *testing.T) {
	cfg := model.GPTNeo27B()
	// A plan that really OOMs on V100.
	plan := simplePlan(cfg, core.V100, 2, 1, 1, 4)
	honest := estimator{mm: memModel{cfg: cfg}}
	if fitsOwnModel(honest, plan) {
		t.Error("honest model must reject the OOM plan")
	}
	blind := estimator{mm: memModel{cfg: cfg, none: true}}
	if !fitsOwnModel(blind, plan) {
		t.Error("model-free planner must wave the OOM plan through (AMP's failure mode)")
	}
}

func TestTopologyOf(t *testing.T) {
	pool := cluster.NewPool().
		Set(zoneA, core.A100, 18). // 4 whole VMs + 2 stray GPUs
		Set(zoneB, core.V100, 8)
	topo := topologyOf(pool)
	if got := topo.totalNodes(core.A100); got != 4 {
		t.Errorf("A100 nodes = %d, want 4 (whole VMs only)", got)
	}
	if got := topo.totalNodes(core.V100); got != 2 {
		t.Errorf("V100 nodes = %d, want 2", got)
	}
	types := topo.gpuTypes()
	if len(types) != 2 || types[0] != core.A100 {
		t.Errorf("gpuTypes = %v, want A100 first (price-ordered)", types)
	}
}

func TestUniformPlanPacking(t *testing.T) {
	cfg := model.OPT350M()
	pool := cluster.NewPool().Set(zoneA, core.A100, 16)
	topo := topologyOf(pool)
	plan, ok := uniformPlan(cfg, topo, core.A100, 2, 4, 2, 1)
	if !ok {
		t.Fatal("plan should fit: 2*4*2 = 16 GPUs")
	}
	if err := plan.Validate(cfg.Layers); err != nil {
		t.Fatal(err)
	}
	if _, ok := uniformPlan(cfg, topo, core.A100, 4, 4, 2, 1); ok {
		t.Error("32-GPU demand must not fit 16 GPUs")
	}
	if _, ok := uniformPlan(cfg, topo, core.A100, 2, 2, 8, 1); ok {
		t.Error("TP=8 must not fit 4-GPU nodes")
	}
}

// TestAsCoreEstimator: baseline estimators stand behind the shared
// core.Estimator seam, with the baseline's own (possibly absent) memory
// model deciding FitsMemory exactly as its deployment filter would.
func TestAsCoreEstimator(t *testing.T) {
	cfg := model.OPT350M()
	env := testEnv(t, cfg, core.A100)
	plan := simplePlan(cfg, core.A100, 2, 2, 1, 2)

	var est core.Estimator = AsCoreEstimator((&Piper{Env: env}).Estimator(), cfg)
	e, err := est.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if e.IterTime <= 0 {
		t.Error("baseline must predict a positive iteration time")
	}
	tput, err := est.Throughput(plan)
	if err != nil || tput <= 0 {
		t.Errorf("throughput %v, err %v", tput, err)
	}
	if _, err := est.PeakMemory(plan); err != nil {
		t.Errorf("Piper has a memory model: %v", err)
	}

	// AMP ships no memory model: PeakMemory must error, and every plan
	// "fits" its own (absent) filter.
	amp := AsCoreEstimator((&AMP{Env: env}).Estimator(), cfg)
	if _, err := amp.PeakMemory(plan); err == nil {
		t.Error("AMP has no memory model; want error")
	}
	e2, err := amp.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !e2.FitsMemory {
		t.Error("a baseline without a memory model passes every plan")
	}
}
