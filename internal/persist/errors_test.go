package persist

// Error-path coverage: every rejection the subsystem promises — malformed
// replay records, unrecoverable dirs, oversized records, failed rotations —
// must fail loudly with the documented message, never silently corrupt.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/wire"
)

// TestReplayRejects drives replay directly with records recovery must
// refuse: each is a journal that contradicts its snapshot, and recovery has
// to stop rather than fabricate plausible state.
func TestReplayRejects(t *testing.T) {
	wm := wire.FromModel(testModel("m"))
	wp := wire.FromPlan(flatPlan(zoneA, core.A100, 1, 4))
	wc := wire.FromConstraints(core.Constraints{})
	noFleet := func(t testing.TB) *State {
		s := testState(t)
		s.Fleet = nil
		return s
	}
	badFleet := func(t testing.TB) *State {
		s := testState(t)
		// A lease over a job the capacity pool cannot hold: FromSnapshot
		// must refuse to build the ledger.
		s.Fleet.Capacity = wire.Pool{}
		return s
	}
	cases := []struct {
		name  string
		state func(testing.TB) *State
		rec   Record
		want  string
	}{
		{"reopen", testState, Record{Op: OpOpenJob, Job: "alpha", Model: &wm, GPUs: []string{"A100-40"}}, "reopens"},
		{"open without model", testState, Record{Op: OpOpenJob, Job: "new"}, "without a model"},
		{"close unknown", testState, Record{Op: OpCloseJob, Job: "ghost"}, "closes unknown"},
		{"plan unknown", testState, Record{Op: OpJobPlan, Job: "ghost", Plan: &wp, Objective: "max-throughput", Constraints: &wc}, "plans unknown"},
		{"partial plan triple", testState, Record{Op: OpJobPlan, Job: "alpha", Plan: &wp}, "partial plan triple"},
		{"set-fleet empty", testState, Record{Op: OpSetFleet}, "empty fleet"},
		{"set-fleet invalid", testState, Record{Op: OpSetFleet, Fleet: badFleet(t).Fleet}, "persist:"},
		{"install without ledger", noFleet, Record{Op: OpInstall, Job: "alpha", Plan: &wp}, "without a fleet ledger"},
		{"install without plan", testState, Record{Op: OpInstall, Job: "alpha"}, "without a plan"},
		{"install infeasible", testState, func() Record {
			big := wire.FromPlan(flatPlan(zoneA, core.A100, 4, 4))
			return Record{Op: OpInstall, Job: "beta", Plan: &big}
		}(), "record 1"},
		{"release non-holder", testState, Record{Op: OpRelease, Job: "nobody"}, "holds no lease"},
		{"event empty", testState, Record{Op: OpEvent}, "empty fleet event"},
		{"set-cap empty", testState, Record{Op: OpSetCap}, "sets no cap value"},
		{"unknown op", testState, Record{Op: "explode-job"}, "unknown op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			state := tc.state(t)
			rec := tc.rec
			rec.Seq = 1
			err := replay(state, []Record{rec})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("replay = %v, want mention of %q", err, tc.want)
			}
		})
	}

	// A snapshot whose own fleet state cannot rebuild a ledger fails before
	// any record is applied.
	if err := replay(badFleet(t), nil); err == nil {
		t.Error("replay accepted a snapshot fleet state the ledger rejects")
	}
}

// TestFleetStateLedgerError: the durable fleet shape re-validates every
// ledger invariant on restore.
func TestFleetStateLedgerError(t *testing.T) {
	s := testState(t)
	s.Fleet.Capacity = wire.Pool{} // leases now exceed capacity
	if _, err := s.Fleet.Ledger(); err == nil {
		t.Error("Ledger() accepted leases exceeding capacity")
	}
}

// TestEncodeGuards: nil states and oversized records are refused before
// they reach disk.
func TestEncodeGuards(t *testing.T) {
	if _, err := EncodeSnapshot(1, nil); err == nil || !strings.Contains(err.Error(), "nil state") {
		t.Errorf("EncodeSnapshot(nil) = %v", err)
	}
	huge := Record{Seq: 1, Op: OpCloseJob, Job: strings.Repeat("x", maxRecordBytes)}
	if _, err := encodeRecord(huge); err == nil || !strings.Contains(err.Error(), "over the") {
		t.Errorf("encodeRecord(16MiB+) = %v", err)
	}

	// Through the store the failure is sticky — and the next Rotate clears
	// it, because the fresh snapshot supersedes the poisoned journal.
	st, _, err := Open(t.TempDir(), Config{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Rotate(&State{}); err != nil {
		t.Fatal(err)
	}
	st.RecordCloseJob(strings.Repeat("x", maxRecordBytes))
	if err := st.Err(); err == nil {
		t.Fatal("oversized record did not poison the journal")
	}
	st.RecordCloseJob("small") // dropped: appends past a gap are refused
	if err := st.Rotate(&State{}); err != nil {
		t.Fatal(err)
	}
	if err := st.Err(); err != nil {
		t.Errorf("Rotate left the sticky error in place: %v", err)
	}
}

// TestOpenErrors: unusable data dirs fail at Open, not at first write.
func TestOpenErrors(t *testing.T) {
	if _, _, err := Open("", Config{}); err == nil || !strings.Contains(err.Error(), "empty data dir") {
		t.Errorf(`Open("") = %v`, err)
	}
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(filepath.Join(file, "sub"), Config{}); err == nil {
		t.Error("Open under a regular file succeeded")
	}
}

// TestRecoverUnreadableFiles: a snapshot or journal that exists but cannot
// be read (here: it is a directory) fails recovery by name instead of being
// silently skipped as if absent.
func TestRecoverUnreadableFiles(t *testing.T) {
	t.Run("snapshot", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.Mkdir(filepath.Join(dir, snapshotName(1)), 0o755); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Config{}); err == nil || !strings.Contains(err.Error(), "no valid snapshot") {
			t.Errorf("Open over unreadable snapshot = %v", err)
		}
	})
	t.Run("journal", func(t *testing.T) {
		dir := t.TempDir()
		doc, err := EncodeSnapshot(1, &State{})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, snapshotName(1)), doc, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Mkdir(filepath.Join(dir, journalName(1)), 0o755); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Config{}); err == nil || !strings.Contains(err.Error(), journalName(1)) {
			t.Errorf("Open over unreadable journal = %v", err)
		}
	})
}

// TestRotateErrors: an unencodable state or an unwritable snapshot slot
// fails Rotate without touching the live generation.
func TestRotateErrors(t *testing.T) {
	st, _, err := Open(t.TempDir(), Config{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Rotate(nil); err == nil || !strings.Contains(err.Error(), "nil state") {
		t.Errorf("Rotate(nil) = %v", err)
	}
	// Occupy the temp slot with a directory: writeAtomic cannot open it.
	if err := os.Mkdir(filepath.Join(st.Dir(), snapshotName(1)+".tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(&State{}); err == nil {
		t.Error("Rotate with an occupied temp slot succeeded")
	}
	if got := st.Gen(); got != 0 {
		t.Errorf("failed Rotate advanced the generation to %d", got)
	}
}

// TestRecordLedgerOpUnknownKind: an observer event the journal has no shape
// for poisons the store instead of writing a record replay cannot apply.
func TestRecordLedgerOpUnknownKind(t *testing.T) {
	st, _, err := Open(t.TempDir(), Config{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Rotate(&State{}); err != nil {
		t.Fatal(err)
	}
	st.RecordLedgerOp(fleet.Op{Kind: fleet.OpKind(99)})
	if err := st.Err(); err == nil || !strings.Contains(err.Error(), "unknown ledger op kind") {
		t.Errorf("Err() = %v, want unknown ledger op kind", err)
	}
}

// TestFsyncAlwaysLifecycle drives the full journal+rotate+recover cycle with
// the durable flush policy (the daemon default), exercising the fsync arms
// of append, Close, writeAtomic, and the dir syncs.
func TestFsyncAlwaysLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, recovered, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if recovered != nil {
		t.Fatalf("fresh dir recovered %+v", recovered)
	}
	want := driveStore(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec == nil || rec.RecordsReplayed == 0 {
		t.Fatalf("recovered = %+v, want a journal replay", rec)
	}
	if got, want := mustEncode(t, rec.State), mustEncode(t, want); got != want {
		t.Errorf("fsync=always recovery diverged:\n got %s\nwant %s", got, want)
	}
}

// mustEncode canonicalizes a state for comparison.
func mustEncode(t *testing.T, s *State) string {
	t.Helper()
	doc, err := EncodeSnapshot(0, s)
	if err != nil {
		t.Fatal(err)
	}
	return string(doc)
}
