package persist

// Journal codec: one binary frame per state-mutating operation,
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// (big-endian), where the payload is a compact wire envelope
// {"v":1,"kind":"journal","body":{record}}. The CRC plus the contiguous
// per-generation sequence number make torn appends detectable: decoding
// stops cleanly at the first frame that is truncated, fails its checksum,
// or breaks the sequence, and reports how many trailing bytes it dropped.
// Anything *before* that point decoded fully or not at all — a partial
// record is never surfaced.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/wire"
)

// Journal record op names. The four ledger ops mirror fleet.OpKind.String().
const (
	OpOpenJob  = "open-job"
	OpCloseJob = "close-job"
	OpJobPlan  = "job-plan"
	OpSetFleet = "set-fleet"
	OpInstall  = "lease-install"
	OpRelease  = "lease-release"
	OpEvent    = "fleet-event"
	OpSetCap   = "set-cap"
)

// maxRecordBytes bounds a single journal payload; a length prefix beyond it
// is treated as tail corruption, not an allocation request.
const maxRecordBytes = 16 << 20

// Record is one journaled mutation. Op decides which fields are set; the
// rest stay at their zero values and are omitted from the encoding.
type Record struct {
	// Seq numbers records contiguously from 1 within one journal generation.
	Seq uint64 `json:"seq"`
	// Op is one of the Op* names above.
	Op string `json:"op"`

	// Job names the subject of open-job / close-job / job-plan /
	// lease-install / lease-release.
	Job string `json:"job,omitempty"`
	// Priority rides with open-job and lease-install.
	Priority int `json:"priority,omitempty"`
	// Model and GPUs register the job (open-job).
	Model *wire.Model `json:"model,omitempty"`
	GPUs  []string    `json:"gpus,omitempty"`
	// Plan is the deployed plan (job-plan, lease-install).
	Plan *wire.Plan `json:"plan,omitempty"`
	// Objective and Constraints complete the job-plan triple.
	Objective   string            `json:"objective,omitempty"`
	Constraints *wire.Constraints `json:"constraints,omitempty"`
	// Fleet is the full post-install ledger state (set-fleet).
	Fleet *FleetState `json:"fleet,omitempty"`
	// JobCap is the new per-job cap (set-cap); pointer so cap 0 survives.
	JobCap *int `json:"job_cap,omitempty"`
	// Event is the applied availability event (fleet-event).
	Event *wire.FleetEvent `json:"event,omitempty"`
	// Version is the ledger's post-op mutation counter (ledger ops only);
	// replay asserts it after applying each record.
	Version uint64 `json:"version,omitempty"`
}

// encodeRecord renders one framed journal record.
func encodeRecord(rec Record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("persist: marshal record %d: %w", rec.Seq, err)
	}
	payload, err := json.Marshal(wire.Envelope{V: FormatVersion, Kind: wire.KindJournal, Body: body})
	if err != nil {
		return nil, fmt.Errorf("persist: marshal record %d envelope: %w", rec.Seq, err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("persist: record %d is %d bytes, over the %d limit", rec.Seq, len(payload), maxRecordBytes)
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame, nil
}

// decodeJournal parses a journal image into its intact record prefix.
// Truncated or corrupted tails (short frame, bad CRC, broken sequence,
// undecodable payload) end the scan cleanly; tail reports the bytes
// dropped. A non-nil error means the journal is incompatible, not torn —
// an unknown schema version, kind, or op in a checksummed record — and
// recovery must stop rather than silently skip mutations.
func decodeJournal(data []byte) (recs []Record, tail int, err error) {
	rest := data
	for {
		if len(rest) < 8 {
			return recs, len(rest), nil
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		sum := binary.BigEndian.Uint32(rest[4:8])
		if n == 0 || n > maxRecordBytes || int(n) > len(rest)-8 {
			return recs, len(rest), nil
		}
		payload := rest[8 : 8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, len(rest), nil
		}
		rec, decErr := decodeRecordPayload(payload)
		if decErr != nil {
			// The checksum passed, so these bytes were written this way: a
			// schema mismatch, not a torn tail. Fail recovery loudly.
			return recs, len(rest), decErr
		}
		if rec.Seq != uint64(len(recs))+1 {
			// A sequence break with a valid checksum means frames from a
			// different generation or a lost middle record; nothing after it
			// can be trusted. Treat like a torn tail: keep the intact prefix.
			return recs, len(rest), nil
		}
		recs = append(recs, rec)
		rest = rest[8+int(n):]
	}
}

// decodeRecordPayload parses one checksummed envelope payload strictly.
func decodeRecordPayload(payload []byte) (Record, error) {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	var env wire.Envelope
	if err := dec.Decode(&env); err != nil {
		return Record{}, fmt.Errorf("persist: decode record envelope: %w", err)
	}
	if err := wire.Check(env.V); err != nil {
		return Record{}, fmt.Errorf("persist: journal: %w", err)
	}
	if env.Kind != wire.KindJournal {
		return Record{}, fmt.Errorf("persist: record kind %q, want %q", env.Kind, wire.KindJournal)
	}
	bodyDec := json.NewDecoder(bytes.NewReader(env.Body))
	bodyDec.DisallowUnknownFields()
	var rec Record
	if err := bodyDec.Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("persist: decode record body: %w", err)
	}
	switch rec.Op {
	case OpOpenJob, OpCloseJob, OpJobPlan, OpSetFleet, OpInstall, OpRelease, OpEvent, OpSetCap:
	default:
		return Record{}, fmt.Errorf("persist: unknown journal op %q", rec.Op)
	}
	return rec, nil
}
