// Package persist is the durability subsystem of the planning service: it
// gives sailor.Service a crash-consistent on-disk form so the determinism
// contract survives kill -9. Three pieces cooperate:
//
//   - Snapshots: a versioned, deterministic encoding of the whole service
//     state — open jobs (model, GPU set, priority, last deployed plan), the
//     fleet ledger (capacity, per-job cap, lease table, and the mutation
//     counter itself), and the shared-system LRU keys — written atomically
//     (temp file + rename) as a wire-style envelope {"v","kind":"snapshot"}.
//
//   - A journal: an append-only log of every state-mutating operation since
//     the last snapshot (open/close job, lease install/release, fleet
//     events, cap changes, last-plan updates), one length-prefixed CRC-32
//     record per op, fsynced per the configured policy. Ledger ops are
//     appended from inside the ledger's critical section (fleet.SetObserver),
//     so journal order is exactly ledger-version order.
//
//   - Recovery: Open loads the latest valid snapshot, replays the journal
//     suffix — driving a real fleet.Ledger so evictions and version bumps
//     re-derive from the same code that produced them, asserting the
//     recorded post-op version after every record — then the caller rotates:
//     a fresh snapshot of the recovered state supersedes the old generation,
//     whose files are deleted. A torn or corrupted journal tail (the record
//     being appended when the power went out) stops replay cleanly at the
//     last intact record; nothing partial is ever applied.
//
// Because admission order and plans are pure functions of the recovered
// state, a daemon restored from disk continues a half-played trace with the
// same plans and the same ledger-version trajectory as an uninterrupted run
// — the property the crash-recovery goldens in package sailor pin.
//
// Layout of a data dir (one generation live at a time, two only mid-rotation):
//
//	snapshot-0000000000000003.json   # state as of rotation 3
//	journal-0000000000000003.wal     # ops appended since
package persist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/wire"
)

// FormatVersion is the on-disk schema version of snapshots and journal
// records. It moves in lockstep with wire.Version (pinned by a test):
// decoding rejects every other version by name.
const FormatVersion = wire.Version

// FsyncPolicy says when the journal is flushed to stable storage.
type FsyncPolicy string

const (
	// FsyncAlways fsyncs the journal after every appended record — an
	// acknowledged mutation survives power loss. The default.
	FsyncAlways FsyncPolicy = "always"
	// FsyncNone never fsyncs the journal; the OS flushes on its own
	// schedule. A machine crash may lose the most recent records (a process
	// crash alone does not — writes are in the page cache).
	FsyncNone FsyncPolicy = "none"
)

// ParseFsyncPolicy resolves a policy name (the -fsync flag).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncNone:
		return FsyncPolicy(s), nil
	case "":
		return FsyncAlways, nil
	}
	return "", fmt.Errorf("persist: unknown fsync policy %q (want %q or %q)", s, FsyncAlways, FsyncNone)
}

// JournalFile is the journal's view of its backing file — the subset of
// *os.File the append path touches. Config.WrapJournal can interpose an
// implementation between the store and the real file (internal/chaos wraps
// it to inject short writes, torn frames, and sync failures).
type JournalFile interface {
	io.WriteCloser
	Sync() error
}

// Config tunes a Store. The zero value is a working default.
type Config struct {
	// Fsync is the journal flush policy ("" = FsyncAlways).
	Fsync FsyncPolicy
	// WrapJournal, when non-nil, wraps each freshly opened journal
	// generation before the store writes to it — the fault-injection seam.
	// It must return a usable file; return f unchanged to pass through.
	WrapJournal func(gen uint64, f JournalFile) JournalFile
}

// Recovered reports what Open reconstructed from a non-empty data dir.
type Recovered struct {
	// State is the service state as of the last intact journal record.
	State *State
	// SnapshotGen is the generation of the snapshot that was loaded.
	SnapshotGen uint64
	// LedgerVersion is the fleet ledger's mutation counter after replay
	// (0 when the state holds no fleet).
	LedgerVersion uint64
	// RecordsReplayed counts journal records applied on top of the snapshot.
	RecordsReplayed int
	// TailBytesDropped counts trailing journal bytes discarded as a torn or
	// corrupted tail (0 for a cleanly closed journal).
	TailBytesDropped int
	// SnapshotsSkipped counts newer snapshot generations that failed to
	// decode and were passed over for an older valid one.
	SnapshotsSkipped int
	// Duration is the wall-clock cost of load + replay.
	Duration time.Duration
}

// Store owns one data dir: it journals mutations between rotations and
// writes snapshots that supersede the journal. All methods are safe for
// concurrent use. Records appended before the first Rotate are dropped with
// a sticky error — rotate a snapshot of the initial state first, so every
// journal has a snapshot under it.
type Store struct {
	dir   string
	fsync bool
	wrap  func(gen uint64, f JournalFile) JournalFile

	mu  sync.Mutex
	gen uint64 // highest generation seen on disk or rotated to
	seq uint64 // last record sequence number appended to the open journal
	f   JournalFile
	err error // sticky: first append failure poisons the journal until the next Rotate
}

// Open attaches a store to dir (created if missing) and recovers whatever a
// previous incarnation left there: the latest valid snapshot plus the intact
// prefix of its journal. A fresh dir returns (store, nil, nil). The caller
// must Rotate the (possibly restored) state before mutations start, so the
// new journal has a snapshot under it.
func Open(dir string, cfg Config) (*Store, *Recovered, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("persist: empty data dir")
	}
	policy, err := ParseFsyncPolicy(string(cfg.Fsync))
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	st := &Store{dir: dir, fsync: policy == FsyncAlways, wrap: cfg.WrapJournal}
	rec, maxGen, err := recoverDir(dir)
	if err != nil {
		return nil, nil, err
	}
	st.gen = maxGen
	return st, rec, nil
}

// Dir returns the store's data directory.
func (st *Store) Dir() string { return st.dir }

// Gen returns the live generation (0 before the first Rotate of a fresh dir).
func (st *Store) Gen() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gen
}

// Err returns the sticky journal-append error, if any. A failed append
// poisons the journal (later records would replay out of order past the
// gap); the next successful Rotate clears it, because the fresh snapshot
// supersedes the broken journal.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Rotate writes state as the next snapshot generation (atomically: temp file
// + rename), opens a fresh empty journal for it, and deletes every
// superseded snapshot and journal. After a graceful shutdown's final Rotate,
// the next Open replays zero records.
func (st *Store) Rotate(state *State) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	gen := st.gen + 1
	doc, err := EncodeSnapshot(gen, state)
	if err != nil {
		return err
	}
	if err := st.writeAtomic(snapshotName(gen), doc); err != nil {
		return err
	}
	if st.f != nil {
		st.f.Close()
		st.f = nil
	}
	f, err := os.OpenFile(filepath.Join(st.dir, journalName(gen)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: open journal: %w", err)
	}
	var jf JournalFile = f
	if st.wrap != nil {
		jf = st.wrap(gen, f)
	}
	st.f = jf
	st.syncDir()
	// The new generation is durable; drop every superseded file.
	for _, name := range generationFiles(st.dir) {
		if g, ok := fileGen(name); ok && g < gen {
			os.Remove(filepath.Join(st.dir, name))
		}
	}
	st.syncDir()
	st.gen, st.seq, st.err = gen, 0, nil
	return nil
}

// Close flushes and closes the journal, returning the sticky append error
// if the journal is poisoned. The dir stays recoverable either way.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f != nil {
		if st.fsync {
			st.f.Sync()
		}
		st.f.Close()
		st.f = nil
	}
	return st.err
}

// writeAtomic writes name via a temp file + rename so readers never see a
// partial document.
func (st *Store) writeAtomic(name string, data []byte) error {
	tmp := filepath.Join(st.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: write %s: %w", name, err)
	}
	if st.fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("persist: sync %s: %w", name, err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: close %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: publish %s: %w", name, err)
	}
	return nil
}

// syncDir fsyncs the data dir so renames and unlinks are durable.
func (st *Store) syncDir() {
	if !st.fsync {
		return
	}
	if d, err := os.Open(st.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// append journals one record. Failures are sticky (see Err); the service
// keeps running in memory — availability over durability — and the operator
// learns at shutdown or via Err.
func (st *Store) append(rec Record) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil {
		return
	}
	if st.f == nil {
		st.err = fmt.Errorf("persist: record before the first Rotate (no journal open)")
		return
	}
	rec.Seq = st.seq + 1
	frame, err := encodeRecord(rec)
	if err != nil {
		st.err = err
		return
	}
	if _, err := st.f.Write(frame); err != nil {
		st.err = fmt.Errorf("persist: journal append: %w", err)
		return
	}
	if st.fsync {
		if err := st.f.Sync(); err != nil {
			st.err = fmt.Errorf("persist: journal sync: %w", err)
			return
		}
	}
	st.seq = rec.Seq
}

// RecordOpenJob journals a job registration.
func (st *Store) RecordOpenJob(job string, m model.Config, gpus []core.GPUType, priority int) {
	wm := wire.FromModel(m)
	st.append(Record{Op: OpOpenJob, Job: job, Model: &wm, GPUs: gpuNames(gpus), Priority: priority})
}

// RecordCloseJob journals a job release. The lease release (fleet mode) is a
// separate ledger op, journaled by the ledger observer before this record.
func (st *Store) RecordCloseJob(job string) {
	st.append(Record{Op: OpCloseJob, Job: job})
}

// RecordJobPlan journals a job's last successful request — the seed of the
// warm replans Rebalance issues after recovery.
func (st *Store) RecordJobPlan(job string, plan core.Plan, obj core.Objective, cons core.Constraints) {
	wp := wire.FromPlan(plan)
	wc := wire.FromConstraints(cons)
	st.append(Record{Op: OpJobPlan, Job: job, Plan: &wp, Objective: obj.String(), Constraints: &wc})
}

// RecordSetFleet journals a fleet ledger installation or replacement, as the
// full post-install ledger snapshot (version included), so replay restores a
// caller-built ledger exactly.
func (st *Store) RecordSetFleet(snap fleet.Snapshot) {
	st.append(Record{Op: OpSetFleet, Fleet: FleetStateFrom(snap)})
}

// RecordLedgerOp journals one committed fleet-ledger mutation. It is called
// from inside the ledger's critical section (fleet.SetObserver), so records
// land in exact ledger-version order; replay asserts Version after each.
func (st *Store) RecordLedgerOp(op fleet.Op) {
	rec := Record{Op: op.Kind.String(), Version: op.Version}
	switch op.Kind {
	case fleet.OpInstall:
		wp := wire.FromPlan(op.Plan)
		rec.Job, rec.Priority, rec.Plan = op.Job, op.Priority, &wp
	case fleet.OpRelease:
		rec.Job = op.Job
	case fleet.OpApply:
		ev := wire.FromFleetEvent(op.Event)
		rec.Event = &ev
	case fleet.OpSetCap:
		jobCap := op.JobCap
		rec.JobCap = &jobCap
	default:
		st.mu.Lock()
		if st.err == nil {
			st.err = fmt.Errorf("persist: unknown ledger op kind %v", op.Kind)
		}
		st.mu.Unlock()
		return
	}
	st.append(rec)
}

// gpuNames flattens a GPU type set for the wire.
func gpuNames(gpus []core.GPUType) []string {
	out := make([]string, len(gpus))
	for i, g := range gpus {
		out[i] = string(g)
	}
	return out
}

// snapshotName / journalName are the on-disk file names of one generation.
func snapshotName(gen uint64) string { return fmt.Sprintf("snapshot-%016d.json", gen) }
func journalName(gen uint64) string  { return fmt.Sprintf("journal-%016d.wal", gen) }

// fileGen parses the generation out of a snapshot or journal file name;
// foreign files report ok=false and are ignored by rotation and recovery.
func fileGen(name string) (uint64, bool) {
	var rest string
	switch {
	case strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".json"):
		rest = strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".json")
	case strings.HasPrefix(name, "journal-") && strings.HasSuffix(name, ".wal"):
		rest = strings.TrimSuffix(strings.TrimPrefix(name, "journal-"), ".wal")
	default:
		return 0, false
	}
	g, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// generationFiles lists the snapshot/journal files of dir, ignoring
// everything else (temp files, foreign files).
func generationFiles(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if _, ok := fileGen(e.Name()); ok {
			out = append(out, e.Name())
		}
	}
	return out
}
