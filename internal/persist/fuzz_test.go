package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// seedSnapshot renders the canonical test state as a snapshot document.
func seedSnapshot(t testing.TB) []byte {
	doc, err := EncodeSnapshot(7, testState(t))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// seedJournal renders a representative journal image (every op kind).
func seedJournal(t testing.TB) []byte {
	dir := t.TempDir()
	st, _, err := Open(dir, Config{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	driveStore(t, st)
	st.Close()
	raw, err := os.ReadFile(filepath.Join(dir, journalName(1)))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// FuzzSnapshotRoundTrip: DecodeSnapshot never panics on arbitrary bytes,
// and every document it accepts re-encodes canonically — decode∘encode is
// the identity on the valid subset.
func FuzzSnapshotRoundTrip(f *testing.F) {
	doc := seedSnapshot(f)
	f.Add(doc)
	f.Add([]byte(`{"v":1,"kind":"snapshot","body":{"gen":1,"state":{"jobs":[]}}}`))
	f.Add([]byte(`{"v":99,"kind":"snapshot","body":{}}`))
	f.Add([]byte(`{"v":1,"kind":"plan","body":{}}`))
	f.Add(bytes.Replace(doc, []byte(`"gen"`), []byte(`"găn"`), 1))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		gen, state, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re, err := EncodeSnapshot(gen, state)
		if err != nil {
			t.Fatalf("accepted state failed to re-encode: %v", err)
		}
		gen2, state2, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("canonical re-encoding failed to decode: %v", err)
		}
		if gen2 != gen || !reflect.DeepEqual(state2, state) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", state2, state)
		}
	})
}

// FuzzJournalReplay: arbitrary bytes — including truncated and corrupted
// tails of real journals — never panic the decoder or the replayer, never
// surface a partial record, and whatever prefix decodes re-encodes to an
// image that decodes identically.
func FuzzJournalReplay(f *testing.F) {
	img := seedJournal(f)
	f.Add(img)
	for _, cut := range []int{1, 5, 9} {
		if len(img) > cut {
			f.Add(img[:len(img)-cut])
		}
	}
	if len(img) > 3 {
		bad := append([]byte(nil), img...)
		bad[len(bad)-3] ^= 0xff
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, tail, err := decodeJournal(data)
		if tail < 0 || tail > len(data) {
			t.Fatalf("tail %d out of range [0,%d]", tail, len(data))
		}
		for i, rec := range recs {
			if rec.Seq != uint64(i)+1 {
				t.Fatalf("record %d has seq %d — partial or out-of-order record surfaced", i, rec.Seq)
			}
		}
		if err != nil {
			return
		}
		// Re-encode the accepted prefix: it must decode to the same records.
		var re []byte
		for _, rec := range recs {
			frame, err := encodeRecord(rec)
			if err != nil {
				t.Fatalf("accepted record %d failed to re-encode: %v", rec.Seq, err)
			}
			re = append(re, frame...)
		}
		recs2, tail2, err2 := decodeJournal(re)
		if err2 != nil || tail2 != 0 || !reflect.DeepEqual(recs2, recs) {
			t.Fatalf("re-encoded prefix diverged: tail=%d err=%v", tail2, err2)
		}
		// Replay onto an empty state: may reject (most fuzzed op sequences
		// are invalid) but must never panic or corrupt the invariants it
		// promises — a returned state always validates.
		state := &State{}
		if err := replay(state, recs); err == nil {
			if verr := state.validate(); verr != nil {
				t.Fatalf("replay returned an invalid state: %v", verr)
			}
		}
	})
}
