package persist

// Recovery: turn a data dir back into the service state it was recording.
// Load the newest snapshot that decodes, replay its journal's intact prefix
// through a live fleet.Ledger — so evictions, admission order, and version
// bumps re-derive from the same code that produced them — and assert the
// recorded post-op ledger version after every record. Any divergence is a
// hard error: a journal that does not match its snapshot must stop recovery,
// not produce a plausible-looking wrong state.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/fleet"
)

// recoverDir reconstructs the state a previous incarnation left in dir.
// It returns (nil, maxGen, nil) for a dir with no snapshots, where maxGen
// is the highest generation any file on disk names (so the next Rotate
// never collides with leftovers).
func recoverDir(dir string) (*Recovered, uint64, error) {
	start := time.Now()
	var maxGen uint64
	var snapGens []uint64
	for _, name := range generationFiles(dir) {
		g, _ := fileGen(name)
		if g > maxGen {
			maxGen = g
		}
		if filepath.Ext(name) == ".json" {
			snapGens = append(snapGens, g)
		}
	}
	if len(snapGens) == 0 {
		if maxGen != 0 {
			return nil, 0, fmt.Errorf("persist: %s holds journals but no snapshot — refusing to guess at state", dir)
		}
		return nil, 0, nil
	}
	sort.Slice(snapGens, func(i, k int) bool { return snapGens[i] > snapGens[k] })

	var lastErr error
	for i, gen := range snapGens {
		doc, err := os.ReadFile(filepath.Join(dir, snapshotName(gen)))
		if err != nil {
			lastErr = fmt.Errorf("persist: read %s: %w", snapshotName(gen), err)
			continue
		}
		fileG, state, err := DecodeSnapshot(doc)
		if err != nil {
			lastErr = err
			continue
		}
		if fileG != gen {
			lastErr = fmt.Errorf("persist: %s claims generation %d", snapshotName(gen), fileG)
			continue
		}
		rec, err := replayGeneration(dir, gen, state)
		if err != nil {
			// The snapshot decoded; a journal that contradicts it is real
			// corruption, not something an older snapshot can paper over.
			return nil, 0, err
		}
		rec.SnapshotsSkipped = i
		rec.Duration = time.Since(start)
		return rec, maxGen, nil
	}
	return nil, 0, fmt.Errorf("persist: no valid snapshot in %s: %w", dir, lastErr)
}

// replayGeneration applies generation gen's journal on top of state.
func replayGeneration(dir string, gen uint64, state *State) (*Recovered, error) {
	var recs []Record
	var tail int
	raw, err := os.ReadFile(filepath.Join(dir, journalName(gen)))
	switch {
	case err == nil:
		recs, tail, err = decodeJournal(raw)
		if err != nil {
			return nil, err
		}
	case os.IsNotExist(err):
		// A crash between snapshot rename and journal creation: the snapshot
		// alone is the complete state.
	default:
		return nil, fmt.Errorf("persist: read %s: %w", journalName(gen), err)
	}
	if err := replay(state, recs); err != nil {
		return nil, fmt.Errorf("persist: journal %d: %w", gen, err)
	}
	rec := &Recovered{
		State:            state,
		SnapshotGen:      gen,
		RecordsReplayed:  len(recs),
		TailBytesDropped: tail,
	}
	if state.Fleet != nil {
		rec.LedgerVersion = state.Fleet.Version
	}
	return rec, nil
}

// replay mutates state by applying recs in order. Ledger records drive a
// live fleet.Ledger restored from the snapshot's fleet state; after each,
// the ledger's version must equal the recorded post-op version.
func replay(state *State, recs []Record) error {
	jobs := make(map[string]*JobState, len(state.Jobs))
	for i := range state.Jobs {
		jobs[state.Jobs[i].Name] = &state.Jobs[i]
	}
	var led *fleet.Ledger
	if state.Fleet != nil {
		var err error
		if led, err = state.Fleet.Ledger(); err != nil {
			return err
		}
	}
	checkVersion := func(rec Record) error {
		if got := led.Version(); got != rec.Version {
			return fmt.Errorf("record %d (%s) replayed to ledger version %d, want %d — journal does not match snapshot", rec.Seq, rec.Op, got, rec.Version)
		}
		return nil
	}
	needLedger := func(rec Record) error {
		if led == nil {
			return fmt.Errorf("record %d (%s) without a fleet ledger", rec.Seq, rec.Op)
		}
		return nil
	}
	for _, rec := range recs {
		switch rec.Op {
		case OpOpenJob:
			if _, ok := jobs[rec.Job]; ok {
				return fmt.Errorf("record %d reopens job %q", rec.Seq, rec.Job)
			}
			if rec.Model == nil {
				return fmt.Errorf("record %d opens job %q without a model", rec.Seq, rec.Job)
			}
			jobs[rec.Job] = &JobState{Name: rec.Job, Model: *rec.Model, GPUs: rec.GPUs, Priority: rec.Priority}
		case OpCloseJob:
			if _, ok := jobs[rec.Job]; !ok {
				return fmt.Errorf("record %d closes unknown job %q", rec.Seq, rec.Job)
			}
			delete(jobs, rec.Job)
		case OpJobPlan:
			j, ok := jobs[rec.Job]
			if !ok {
				return fmt.Errorf("record %d plans unknown job %q", rec.Seq, rec.Job)
			}
			if rec.Plan == nil || rec.Constraints == nil || rec.Objective == "" {
				return fmt.Errorf("record %d has a partial plan triple for job %q", rec.Seq, rec.Job)
			}
			j.LastPlan, j.LastObjective, j.LastConstraints = rec.Plan, rec.Objective, rec.Constraints
		case OpSetFleet:
			if rec.Fleet == nil {
				return fmt.Errorf("record %d sets an empty fleet", rec.Seq)
			}
			var err error
			if led, err = rec.Fleet.Ledger(); err != nil {
				return fmt.Errorf("record %d: %w", rec.Seq, err)
			}
		case OpInstall:
			if err := needLedger(rec); err != nil {
				return err
			}
			if rec.Plan == nil {
				return fmt.Errorf("record %d installs a lease for %q without a plan", rec.Seq, rec.Job)
			}
			if _, err := led.Install(rec.Job, rec.Priority, rec.Plan.Core()); err != nil {
				return fmt.Errorf("record %d: %w", rec.Seq, err)
			}
			if err := checkVersion(rec); err != nil {
				return err
			}
		case OpRelease:
			if err := needLedger(rec); err != nil {
				return err
			}
			if !led.Release(rec.Job) {
				return fmt.Errorf("record %d releases %q, which holds no lease", rec.Seq, rec.Job)
			}
			if err := checkVersion(rec); err != nil {
				return err
			}
		case OpEvent:
			if err := needLedger(rec); err != nil {
				return err
			}
			if rec.Event == nil {
				return fmt.Errorf("record %d applies an empty fleet event", rec.Seq)
			}
			led.Apply(rec.Event.Trace())
			if err := checkVersion(rec); err != nil {
				return err
			}
		case OpSetCap:
			if err := needLedger(rec); err != nil {
				return err
			}
			if rec.JobCap == nil {
				return fmt.Errorf("record %d sets no cap value", rec.Seq)
			}
			led.SetJobCap(*rec.JobCap)
			if err := checkVersion(rec); err != nil {
				return err
			}
		default:
			return fmt.Errorf("record %d has unknown op %q", rec.Seq, rec.Op)
		}
	}
	// A torn tail can cut between a close-job record and the compensating
	// lease release its racing planner would have journaled next. Complete
	// the compensation here, in admission order, so no capacity leaks.
	if led != nil {
		for _, le := range led.Snapshot().Leases {
			if _, ok := jobs[le.Job]; !ok {
				led.Release(le.Job)
			}
		}
	}
	survivors := make([]JobState, 0, len(jobs))
	for _, j := range jobs {
		survivors = append(survivors, *j)
	}
	state.Jobs = survivors
	state.Normalize()
	if led != nil {
		state.Fleet = FleetStateFrom(led.Snapshot())
	}
	if err := state.validate(); err != nil {
		return err
	}
	return nil
}
