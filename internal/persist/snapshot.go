package persist

// Snapshot codec: the full service state as one deterministic, versioned
// wire document {"v":1,"kind":"snapshot","body":{...}}. Encoding equal
// states yields identical bytes (jobs sorted by name, leases in admission
// order, struct fields in declaration order, no maps), so goldens and the
// round-trip fuzz target can compare snapshots byte for byte. Decoding
// rejects unknown schema versions, kinds, and body fields by name — exactly
// the posture of internal/trace files.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/fleet"
	"repro/internal/wire"
)

// State is the durable shape of a sailor.Service: everything a restarted
// daemon needs to continue deterministically. Warm planner caches and
// profiled systems are deliberately absent — plans are pure functions of
// (model, pool, constraints), so they re-derive identically, and profiling
// re-warms lazily on each restored job's first request.
type State struct {
	// Jobs lists the open jobs, sorted by name.
	Jobs []JobState `json:"jobs"`
	// Fleet is the fleet ledger (nil outside fleet mode).
	Fleet *FleetState `json:"fleet,omitempty"`
	// LRUKeys are the shared profiled-system cache keys, most recently used
	// first — telemetry of what was warm; the systems themselves rebuild
	// lazily from job configs.
	LRUKeys []string `json:"lru_keys,omitempty"`
}

// JobState is one open job's durable registration plus its last successful
// request, the seed of post-recovery warm replans.
type JobState struct {
	Name string `json:"name"`
	// Model and GPUs re-register the job (and lazily re-profile its system).
	Model wire.Model `json:"model"`
	GPUs  []string   `json:"gpus"`
	// Priority orders the job in fleet mode.
	Priority int `json:"priority"`
	// LastPlan / LastObjective / LastConstraints replay the job's most recent
	// successful plan or replan (LastPlan.GPUs nil when none succeeded yet).
	LastPlan        *wire.Plan        `json:"last_plan,omitempty"`
	LastObjective   string            `json:"last_objective,omitempty"`
	LastConstraints *wire.Constraints `json:"last_constraints,omitempty"`
}

// FleetState is the fleet ledger's durable shape — fleet.Snapshot over wire
// types, minus the derived Free pool.
type FleetState struct {
	// Version is the ledger's mutation counter; journal replay asserts
	// against its trajectory.
	Version uint64 `json:"version"`
	// JobCap is the per-job GPU cap (0 = unlimited).
	JobCap int `json:"job_cap"`
	// Capacity is the fleet's total pool.
	Capacity wire.Pool `json:"capacity"`
	// Leases is the lease table in admission order.
	Leases []LeaseState `json:"leases,omitempty"`
}

// LeaseState is one durable lease row.
type LeaseState struct {
	Job      string    `json:"job"`
	Priority int       `json:"priority"`
	Acquired uint64    `json:"acquired"`
	Plan     wire.Plan `json:"plan"`
}

// snapshotBody is the envelope body of a snapshot document.
type snapshotBody struct {
	Gen   uint64 `json:"gen"`
	State State  `json:"state"`
}

// FleetStateFrom converts a live ledger snapshot to its durable shape.
func FleetStateFrom(s fleet.Snapshot) *FleetState {
	fs := &FleetState{
		Version:  s.Version,
		JobCap:   s.JobCap,
		Capacity: wire.FromPool(s.Capacity),
	}
	for _, le := range s.Leases {
		fs.Leases = append(fs.Leases, LeaseState{
			Job:      le.Job,
			Priority: le.Priority,
			Acquired: le.Acquired,
			Plan:     wire.FromPlan(le.Plan),
		})
	}
	return fs
}

// FleetSnapshot converts the durable shape back to a fleet.Snapshot, ready
// for fleet.FromSnapshot.
func (fs *FleetState) FleetSnapshot() fleet.Snapshot {
	s := fleet.Snapshot{
		Version:  fs.Version,
		JobCap:   fs.JobCap,
		Capacity: fs.Capacity.Cluster(),
	}
	for _, le := range fs.Leases {
		s.Leases = append(s.Leases, fleet.Lease{
			Job:      le.Job,
			Priority: le.Priority,
			Acquired: le.Acquired,
			Plan:     le.Plan.Core(),
		})
	}
	return s
}

// Ledger restores a live fleet ledger from the durable shape, re-validating
// every invariant (see fleet.FromSnapshot).
func (fs *FleetState) Ledger() (*fleet.Ledger, error) {
	l, err := fleet.FromSnapshot(fs.FleetSnapshot())
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return l, nil
}

// validate rejects malformed states by name before they reach disk or a
// live service.
func (s *State) validate() error {
	seen := make(map[string]bool, len(s.Jobs))
	for i, j := range s.Jobs {
		if j.Name == "" {
			return fmt.Errorf("persist: job %d has an empty name", i)
		}
		if seen[j.Name] {
			return fmt.Errorf("persist: state lists job %q twice", j.Name)
		}
		seen[j.Name] = true
		if len(j.GPUs) == 0 {
			return fmt.Errorf("persist: job %q has no GPU types", j.Name)
		}
		if i > 0 && s.Jobs[i-1].Name > j.Name {
			return fmt.Errorf("persist: jobs out of order: %q after %q", j.Name, s.Jobs[i-1].Name)
		}
		if (j.LastPlan == nil) != (j.LastConstraints == nil) || (j.LastPlan == nil) != (j.LastObjective == "") {
			return fmt.Errorf("persist: job %q has a partial last-plan triple", j.Name)
		}
	}
	if s.Fleet != nil {
		for _, le := range s.Fleet.Leases {
			if !seen[le.Job] {
				return fmt.Errorf("persist: lease for unknown job %q", le.Job)
			}
		}
	}
	return nil
}

// Normalize sorts the state into its canonical encoding order. Callers
// assembling a State by hand (tests) should normalize before encoding;
// sailor.Service.PersistState emits canonical states already.
func (s *State) Normalize() {
	sort.Slice(s.Jobs, func(i, k int) bool { return s.Jobs[i].Name < s.Jobs[k].Name })
}

// EncodeSnapshot renders a state as the canonical snapshot document for
// generation gen. Equal states encode to identical bytes.
func EncodeSnapshot(gen uint64, state *State) ([]byte, error) {
	if state == nil {
		return nil, fmt.Errorf("persist: nil state")
	}
	if err := state.validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(snapshotBody{Gen: gen, State: *state})
	if err != nil {
		return nil, fmt.Errorf("persist: marshal snapshot: %w", err)
	}
	doc, err := json.Marshal(wire.Envelope{V: FormatVersion, Kind: wire.KindSnapshot, Body: body})
	if err != nil {
		return nil, fmt.Errorf("persist: marshal snapshot envelope: %w", err)
	}
	var out bytes.Buffer
	if err := json.Indent(&out, doc, "", "  "); err != nil {
		return nil, fmt.Errorf("persist: indent snapshot: %w", err)
	}
	out.WriteByte('\n')
	return out.Bytes(), nil
}

// DecodeSnapshot parses a snapshot document, rejecting unknown schema
// versions, kinds, and fields by name.
func DecodeSnapshot(data []byte) (uint64, *State, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var env wire.Envelope
	if err := dec.Decode(&env); err != nil {
		return 0, nil, fmt.Errorf("persist: decode snapshot envelope: %w", err)
	}
	if err := wire.Check(env.V); err != nil {
		return 0, nil, fmt.Errorf("persist: snapshot: %w", err)
	}
	if env.Kind != wire.KindSnapshot {
		return 0, nil, fmt.Errorf("persist: envelope kind %q, want %q", env.Kind, wire.KindSnapshot)
	}
	bodyDec := json.NewDecoder(bytes.NewReader(env.Body))
	bodyDec.DisallowUnknownFields()
	var body snapshotBody
	if err := bodyDec.Decode(&body); err != nil {
		return 0, nil, fmt.Errorf("persist: decode snapshot body: %w", err)
	}
	if err := body.State.validate(); err != nil {
		return 0, nil, err
	}
	return body.Gen, &body.State, nil
}
