package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/wire"
)

var (
	zoneA = cluster.GCPZone("us-central1", 'a')
	zoneB = cluster.GCPZone("us-central1", 'b')
)

// flatPlan builds a one-stage plan of n replicas of tp GPUs each in z.
func flatPlan(z core.Zone, g core.GPUType, n, tp int) core.Plan {
	reps := make([]core.StageReplica, n)
	for i := range reps {
		reps[i] = core.StageReplica{GPU: g, TP: tp, Zone: z}
	}
	return core.Plan{MicroBatchSize: 1, Stages: []core.StagePlan{
		{FirstLayer: 0, NumLayers: 24, Replicas: reps},
	}}
}

func testModel(name string) model.Config {
	return model.Config{Name: name, Hidden: 512, Layers: 24, Heads: 8,
		Vocab: 32000, SeqLen: 1024, GlobalBatch: 64}
}

// testState builds a canonical two-job state with a live fleet.
func testState(t testing.TB) *State {
	t.Helper()
	led := fleet.NewLedger(cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneB, core.V100, 8))
	led.SetJobCap(8)
	if _, err := led.Install("alpha", 2, flatPlan(zoneA, core.A100, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := led.Install("beta", 1, flatPlan(zoneB, core.V100, 1, 4)); err != nil {
		t.Fatal(err)
	}
	alphaPlan := wire.FromPlan(flatPlan(zoneA, core.A100, 2, 4))
	cons := wire.FromConstraints(core.Constraints{MaxIterTime: 2.5})
	return &State{
		Jobs: []JobState{
			{Name: "alpha", Model: wire.FromModel(testModel("alpha-m")), GPUs: []string{string(core.A100)},
				Priority: 2, LastPlan: &alphaPlan, LastObjective: "max-throughput", LastConstraints: &cons},
			{Name: "beta", Model: wire.FromModel(testModel("beta-m")), GPUs: []string{string(core.V100)}, Priority: 1},
		},
		Fleet:   FleetStateFrom(led.Snapshot()),
		LRUKeys: []string{"alpha-m|A100", "beta-m|V100"},
	}
}

// TestSnapshotRoundTripDeterminism: encode∘decode is the identity and equal
// states encode to identical bytes.
func TestSnapshotRoundTripDeterminism(t *testing.T) {
	state := testState(t)
	doc, err := EncodeSnapshot(3, state)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := EncodeSnapshot(3, state)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, doc2) {
		t.Fatal("equal states encoded to different bytes")
	}
	gen, back, err := DecodeSnapshot(doc)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 {
		t.Errorf("gen = %d, want 3", gen)
	}
	if !reflect.DeepEqual(back, state) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", back, state)
	}
	doc3, err := EncodeSnapshot(3, back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, doc3) {
		t.Error("re-encoding the decoded state changed bytes")
	}
}

// TestSnapshotValidate: malformed states are rejected by name on encode.
func TestSnapshotValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*State)
		want   string
	}{
		{"empty name", func(s *State) { s.Jobs[0].Name = "" }, "empty name"},
		{"duplicate job", func(s *State) { s.Jobs[1] = s.Jobs[0] }, "twice"},
		{"no gpus", func(s *State) { s.Jobs[0].GPUs = nil }, "no GPU types"},
		{"out of order", func(s *State) { s.Jobs[0], s.Jobs[1] = s.Jobs[1], s.Jobs[0] }, "out of order"},
		{"partial triple", func(s *State) { s.Jobs[0].LastObjective = "" }, "partial last-plan triple"},
		{"orphan lease", func(s *State) { s.Fleet.Leases[0].Job = "ghost" }, "unknown job"},
	}
	for _, tc := range cases {
		s := testState(t)
		tc.mutate(s)
		if _, err := EncodeSnapshot(1, s); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// driveStore rotates an initial empty state into st and journals a canonical
// op sequence (open jobs, set fleet, installs, a cap change, an availability
// event, a plan record, a close), returning the service-level mirror of the
// final state.
func driveStore(t testing.TB, st *Store) *State {
	t.Helper()
	if err := st.Rotate(&State{}); err != nil {
		t.Fatal(err)
	}
	st.RecordOpenJob("alpha", testModel("alpha-m"), []core.GPUType{core.A100}, 2)
	st.RecordOpenJob("beta", testModel("beta-m"), []core.GPUType{core.V100}, 1)
	st.RecordOpenJob("gamma", testModel("gamma-m"), []core.GPUType{core.A100}, 0)

	led := fleet.NewLedger(cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneB, core.V100, 8))
	led.SetJobCap(12)
	st.RecordSetFleet(led.Snapshot())
	led.SetObserver(st.RecordLedgerOp)

	if _, err := led.Install("alpha", 2, flatPlan(zoneA, core.A100, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := led.Install("beta", 1, flatPlan(zoneB, core.V100, 1, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := led.Install("gamma", 0, flatPlan(zoneA, core.A100, 1, 4)); err != nil {
		t.Fatal(err)
	}
	st.RecordJobPlan("alpha", flatPlan(zoneA, core.A100, 2, 4), core.MaxThroughput, core.Constraints{MaxIterTime: 2.5})
	led.SetJobCap(8)
	// Shrinks zoneA: gamma (lowest priority) is evicted inside this op.
	led.Apply(trace.Event{Zone: zoneA, GPU: core.A100, Delta: -4})
	if !led.Release("gamma") {
		// gamma's lease may already be gone to the eviction; Release of a
		// missing lease emits nothing, so replay stays consistent either way.
		t.Log("gamma already evicted")
	}
	st.RecordCloseJob("gamma")
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	alphaPlan := wire.FromPlan(flatPlan(zoneA, core.A100, 2, 4))
	cons := wire.FromConstraints(core.Constraints{MaxIterTime: 2.5})
	return &State{
		Jobs: []JobState{
			{Name: "alpha", Model: wire.FromModel(testModel("alpha-m")), GPUs: []string{string(core.A100)},
				Priority: 2, LastPlan: &alphaPlan, LastObjective: "max-throughput", LastConstraints: &cons},
			{Name: "beta", Model: wire.FromModel(testModel("beta-m")), GPUs: []string{string(core.V100)}, Priority: 1},
		},
		Fleet: FleetStateFrom(led.Snapshot()),
	}
}

// TestStoreRecoverJournal: a crash (no final Rotate) recovers the journaled
// state exactly, and the rotation after recovery leaves a clean generation
// that replays zero records.
func TestStoreRecoverJournal(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := Open(dir, Config{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	want := driveStore(t, st)
	// Simulated kill -9: no Rotate, no Close.

	st2, rec2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2 == nil {
		t.Fatal("no state recovered")
	}
	if rec2.SnapshotGen != 1 || rec2.RecordsReplayed == 0 || rec2.TailBytesDropped != 0 {
		t.Errorf("recovery shape: %+v", rec2)
	}
	if !reflect.DeepEqual(rec2.State, want) {
		t.Errorf("recovered state diverged:\n got %+v\nwant %+v", rec2.State, want)
	}
	if rec2.LedgerVersion != want.Fleet.Version {
		t.Errorf("ledger version = %d, want %d", rec2.LedgerVersion, want.Fleet.Version)
	}

	// Graceful path: rotate the recovered state, then reopen — zero records,
	// superseded generation deleted.
	if err := st2.Rotate(rec2.State); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName(1))); !os.IsNotExist(err) {
		t.Error("superseded snapshot-1 still present")
	}
	if _, err := os.Stat(filepath.Join(dir, journalName(1))); !os.IsNotExist(err) {
		t.Error("superseded journal-1 still present")
	}
	_, rec3, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec3 == nil || rec3.RecordsReplayed != 0 || rec3.SnapshotGen != 2 {
		t.Fatalf("clean reopen: %+v", rec3)
	}
	if !reflect.DeepEqual(rec3.State, want) {
		t.Errorf("clean reopen state diverged:\n got %+v\nwant %+v", rec3.State, want)
	}
}

// TestStoreTornTail: truncating or corrupting the journal tail drops only
// the damaged suffix; the intact prefix still replays.
func TestStoreTornTail(t *testing.T) {
	build := func(t *testing.T) (string, []byte) {
		dir := t.TempDir()
		st, _, err := Open(dir, Config{Fsync: FsyncNone})
		if err != nil {
			t.Fatal(err)
		}
		driveStore(t, st)
		st.Close()
		raw, err := os.ReadFile(filepath.Join(dir, journalName(1)))
		if err != nil {
			t.Fatal(err)
		}
		return dir, raw
	}

	t.Run("truncated", func(t *testing.T) {
		dir, raw := build(t)
		if err := os.WriteFile(filepath.Join(dir, journalName(1)), raw[:len(raw)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		_, rec, err := Open(dir, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil || rec.TailBytesDropped == 0 {
			t.Fatalf("no tail reported: %+v", rec)
		}
		full, _, _ := decodeJournal(raw)
		if rec.RecordsReplayed != len(full)-1 {
			t.Errorf("replayed %d records, want %d (last torn off)", rec.RecordsReplayed, len(full)-1)
		}
	})

	t.Run("corrupt byte", func(t *testing.T) {
		dir, raw := build(t)
		bad := append([]byte(nil), raw...)
		bad[len(bad)-3] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, journalName(1)), bad, 0o644); err != nil {
			t.Fatal(err)
		}
		_, rec, err := Open(dir, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil || rec.TailBytesDropped == 0 {
			t.Fatalf("no tail reported: %+v", rec)
		}
	})

	t.Run("missing journal", func(t *testing.T) {
		dir, _ := build(t)
		if err := os.Remove(filepath.Join(dir, journalName(1))); err != nil {
			t.Fatal(err)
		}
		_, rec, err := Open(dir, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil || rec.RecordsReplayed != 0 {
			t.Fatalf("snapshot-only recovery: %+v", rec)
		}
	})
}

// TestStoreCorruptSnapshotFallback: a corrupt newest snapshot falls back to
// the previous valid generation, and the next Rotate skips past the corrupt
// generation number.
func TestStoreCorruptSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Config{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := driveStore(t, st)
	if err := st.Rotate(want); err != nil { // gen 2, clean
		t.Fatal(err)
	}
	st.Close()
	// Fake a corrupt gen-3 snapshot (e.g. torn disk after a partial write
	// that still got renamed by a buggy kernel — recovery must not trust it).
	if err := os.WriteFile(filepath.Join(dir, snapshotName(3)), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, rec, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.SnapshotGen != 2 || rec.SnapshotsSkipped != 1 {
		t.Fatalf("fallback recovery: %+v", rec)
	}
	if !reflect.DeepEqual(rec.State, want) {
		t.Error("fallback state diverged")
	}
	if err := st2.Rotate(rec.State); err != nil {
		t.Fatal(err)
	}
	if got := st2.Gen(); got != 4 {
		t.Errorf("post-fallback rotation gen = %d, want 4 (past the corrupt 3)", got)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName(3))); !os.IsNotExist(err) {
		t.Error("corrupt snapshot-3 not cleaned up")
	}
}

// TestStoreMisuse: records before the first Rotate poison the journal with
// a sticky error; a journal with no snapshot refuses recovery; a foreign
// file in the dir is ignored.
func TestStoreMisuse(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st.RecordCloseJob("x")
	if err := st.Err(); err == nil || !strings.Contains(err.Error(), "before the first Rotate") {
		t.Errorf("pre-rotate record err = %v", err)
	}
	// Rotate clears the sticky error: the snapshot supersedes the lost record.
	if err := st.Rotate(&State{}); err != nil {
		t.Fatal(err)
	}
	if err := st.Err(); err != nil {
		t.Errorf("post-rotate sticky err = %v", err)
	}
	st.Close()

	orphan := t.TempDir()
	if err := os.WriteFile(filepath.Join(orphan, journalName(5)), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(orphan, Config{}); err == nil || !strings.Contains(err.Error(), "no snapshot") {
		t.Errorf("journal-without-snapshot err = %v", err)
	}

	foreign := t.TempDir()
	for _, name := range []string{"README", "snapshot-x.json", "snapshot-0000000000000009.json.tmp"} {
		if err := os.WriteFile(filepath.Join(foreign, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, rec, err := Open(foreign, Config{}); err != nil || rec != nil {
		t.Errorf("foreign files: rec=%+v err=%v", rec, err)
	}

	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("unknown fsync policy accepted")
	}
}

// TestJournalVersionAssert: a record whose post-op ledger version contradicts
// the snapshot aborts recovery loudly instead of producing a wrong state.
func TestJournalVersionAssert(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Config{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(&State{}); err != nil {
		t.Fatal(err)
	}
	led := fleet.NewLedger(cluster.NewPool().Set(zoneA, core.A100, 8))
	st.RecordSetFleet(led.Snapshot())
	st.RecordLedgerOp(fleet.Op{Kind: fleet.OpInstall, Job: "a", Priority: 1,
		Plan: flatPlan(zoneA, core.A100, 1, 4), Version: 99})
	st.Close()
	if _, _, err := Open(dir, Config{}); err == nil || !strings.Contains(err.Error(), "does not match snapshot") {
		t.Errorf("version-mismatch err = %v", err)
	}
}

// TestSnapshotRejectsByName: unknown schema versions, kinds, and fields are
// rejected with errors that name the problem — the lockstep posture of
// every wire surface, extended to the durability kinds.
func TestSnapshotRejectsByName(t *testing.T) {
	if FormatVersion != wire.Version {
		t.Fatalf("persist.FormatVersion = %d, wire.Version = %d — durability formats must version in lockstep", FormatVersion, wire.Version)
	}
	doc, err := EncodeSnapshot(1, testState(t))
	if err != nil {
		t.Fatal(err)
	}

	futureV := bytes.Replace(doc, []byte(`"v": 1`), []byte(`"v": 99`), 1)
	if _, _, err := DecodeSnapshot(futureV); err == nil || !strings.Contains(err.Error(), "99") {
		t.Errorf("future version err = %v", err)
	}
	wrongKind := bytes.Replace(doc, []byte(`"kind": "snapshot"`), []byte(`"kind": "plan"`), 1)
	if _, _, err := DecodeSnapshot(wrongKind); err == nil || !strings.Contains(err.Error(), `"plan"`) {
		t.Errorf("wrong kind err = %v", err)
	}
	unknownField := bytes.Replace(doc, []byte(`"gen": 1`), []byte(`"gen": 1, "surprise": true`), 1)
	if _, _, err := DecodeSnapshot(unknownField); err == nil || !strings.Contains(err.Error(), "surprise") {
		t.Errorf("unknown field err = %v", err)
	}

	// Journal records hold the same line.
	frame, err := encodeRecord(Record{Seq: 1, Op: OpCloseJob, Job: "a"})
	if err != nil {
		t.Fatal(err)
	}
	reframe := func(payload []byte) []byte {
		out := make([]byte, 8+len(payload))
		binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(out[4:8], checksum(payload))
		copy(out[8:], payload)
		return out
	}
	payload := frame[8:]
	for _, tc := range []struct {
		name, old, new, want string
	}{
		{"future version", `"v":1`, `"v":7`, "7"},
		{"wrong kind", `"kind":"journal"`, `"kind":"trace"`, `"trace"`},
		{"unknown field", `"op":"close-job"`, `"op":"close-job","extra":1`, "extra"},
		{"unknown op", `"op":"close-job"`, `"op":"explode-job"`, "explode-job"},
	} {
		mut := bytes.Replace(payload, []byte(tc.old), []byte(tc.new), 1)
		if _, _, err := decodeJournal(reframe(mut)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Sanity: the original frame still decodes.
	recs, tail, err := decodeJournal(frame)
	if err != nil || tail != 0 || len(recs) != 1 {
		t.Fatalf("pristine frame: recs=%d tail=%d err=%v", len(recs), tail, err)
	}
}

// TestJournalSequenceBreak: a checksummed record with the wrong sequence
// number ends replay at the intact prefix (frames from another generation
// or a lost middle record cannot be trusted).
func TestJournalSequenceBreak(t *testing.T) {
	f1, err := encodeRecord(Record{Seq: 1, Op: OpCloseJob, Job: "a"})
	if err != nil {
		t.Fatal(err)
	}
	f3, err := encodeRecord(Record{Seq: 3, Op: OpCloseJob, Job: "b"})
	if err != nil {
		t.Fatal(err)
	}
	img := append(append([]byte(nil), f1...), f3...)
	recs, tail, err := decodeJournal(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || tail != len(f3) {
		t.Errorf("recs=%d tail=%d, want 1 record and %d tail bytes", len(recs), tail, len(f3))
	}
}

// checksum mirrors the framing CRC for test reframing.
func checksum(p []byte) uint32 { return crc32.ChecksumIEEE(p) }

// TestRecordEncodingOmitsZeroFields: journal records stay minimal — a
// close-job record carries no model/plan/fleet baggage.
func TestRecordEncodingOmitsZeroFields(t *testing.T) {
	frame, err := encodeRecord(Record{Seq: 1, Op: OpCloseJob, Job: "a"})
	if err != nil {
		t.Fatal(err)
	}
	var env wire.Envelope
	if err := json.Unmarshal(frame[8:], &env); err != nil {
		t.Fatal(err)
	}
	if got, want := string(env.Body), `{"seq":1,"op":"close-job","job":"a"}`; got != want {
		t.Errorf("close-job body = %s, want %s", got, want)
	}
}

// flakyJournal fails the Nth write (1-based) after letting tear bytes
// through, then every later write — the shape chaos injects through the
// Config.WrapJournal seam.
type flakyJournal struct {
	JournalFile
	writes int
	failAt int
	tear   int
}

func (f *flakyJournal) Write(p []byte) (int, error) {
	f.writes++
	if f.writes >= f.failAt {
		n := 0
		if f.tear > 0 && f.tear < len(p) && f.writes == f.failAt {
			n, _ = f.JournalFile.Write(p[:f.tear])
		}
		return n, errors.New("injected append failure")
	}
	return f.JournalFile.Write(p)
}

// TestWrapJournalFaultWindow: a failed append through the WrapJournal seam
// poisons the store stickily, the torn frame it left is truncated by
// recovery (only intact records replay), and a Rotate — whose fresh
// snapshot supersedes the broken journal — clears the poison.
func TestWrapJournalFaultWindow(t *testing.T) {
	dir := t.TempDir()
	var flaky *flakyJournal
	cfg := Config{Fsync: FsyncNone, WrapJournal: func(gen uint64, f JournalFile) JournalFile {
		if gen == 1 {
			flaky = &flakyJournal{JournalFile: f, failAt: 2, tear: 5}
			return flaky
		}
		return f
	}}
	st, _, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Rotate(&State{}); err != nil {
		t.Fatal(err)
	}
	st.RecordOpenJob("alpha", testModel("alpha-m"), []core.GPUType{core.A100}, 2)
	if err := st.Err(); err != nil {
		t.Fatalf("healthy append poisoned the store: %v", err)
	}
	// Append 2 fails mid-frame: sticky error, torn bytes on disk, and the
	// record — plus everything after it — is dropped, not misordered.
	st.RecordOpenJob("beta", testModel("beta-m"), []core.GPUType{core.V100}, 1)
	if err := st.Err(); err == nil || !strings.Contains(err.Error(), "injected append failure") {
		t.Fatalf("Err() = %v, want injected append failure", err)
	}
	st.RecordOpenJob("gamma", testModel("gamma-m"), []core.GPUType{core.A100}, 0)
	if flaky.writes != 2 {
		t.Fatalf("poisoned store touched the file again: %d writes", flaky.writes)
	}

	// Crash now: recovery truncates the torn frame and replays only alpha.
	_, rec, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.RecordsReplayed != 1 || rec.TailBytesDropped != 5 {
		t.Fatalf("recovery shape %+v, want 1 record + 5 torn bytes", rec)
	}
	if len(rec.State.Jobs) != 1 || rec.State.Jobs[0].Name != "alpha" {
		t.Fatalf("recovered jobs %+v, want just alpha", rec.State.Jobs)
	}

	// The operator heal: Rotate a fresh snapshot over the live (in-memory)
	// state; the poison clears and journaling resumes on generation 2.
	if err := st.Rotate(rec.State); err != nil {
		t.Fatal(err)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("Rotate left the store poisoned: %v", err)
	}
	st.RecordOpenJob("delta", testModel("delta-m"), []core.GPUType{core.A100}, 1)
	if err := st.Err(); err != nil {
		t.Fatalf("append after heal failed: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2 == nil || rec2.RecordsReplayed != 1 || len(rec2.State.Jobs) != 2 {
		t.Fatalf("post-heal recovery %+v", rec2)
	}
}
