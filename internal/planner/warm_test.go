package planner

import (
	"context"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/trace"
)

// warmLab builds one shared evaluator plus a planner factory bound to it,
// so warm and cold planners agree on the fingerprint's evaluator instance.
func warmLab(t *testing.T, cfg model.Config, gpus ...core.GPUType) func(opts Options) *Planner {
	t.Helper()
	prof, err := profiler.Collect(cfg, gpus, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ev := sim.New(cfg, prof)
	return func(opts Options) *Planner {
		if opts.Heuristics == (Heuristics{}) {
			opts.Heuristics = AllHeuristics()
		}
		return New(cfg, ev, opts)
	}
}

// stormPools materialises the availability snapshot after every event of a
// preemption-storm trace — the replan sequence an elastic controller sees.
func stormPools(seed int64) []*cluster.Pool {
	return trace.PreemptionStorm().Trace(seed).DistinctPools()
}

// TestReplanMatchesColdPlanning is the warm-start contract: replaying a
// preemption storm, every warm replan returns the identical plan and
// estimate cold planning returns on the same pool, while the cache visibly
// serves subtrees (CacheHits > 0, Explored strictly below cold).
func TestReplanMatchesColdPlanning(t *testing.T) {
	cfg := model.OPT350M()
	mk := warmLab(t, cfg, core.A100)
	warmPl := mk(Options{Objective: core.MaxThroughput, Warm: NewWarmCache()})

	pools := stormPools(1)
	if len(pools) < 6 {
		t.Fatalf("storm produced only %d distinct pools", len(pools))
	}
	var prev core.Plan
	totalHits, hitsBelowCold := 0, 0
	for i, pool := range pools {
		warm, err := warmPl.Replan(prev, pool)
		if err != nil {
			t.Fatalf("pool %d: warm replan: %v", i, err)
		}
		cold, err := mk(Options{Objective: core.MaxThroughput}).Plan(pool)
		if err != nil {
			t.Fatalf("pool %d: cold plan: %v", i, err)
		}
		if got, want := warm.Plan.String(), cold.Plan.String(); got != want {
			t.Errorf("pool %d: warm plan differs from cold:\nwarm: %s\ncold: %s", i, got, want)
		}
		if warm.Estimate.IterTime != cold.Estimate.IterTime || warm.Estimate.Cost() != cold.Estimate.Cost() {
			t.Errorf("pool %d: warm estimate differs from cold", i)
		}
		if !warm.WarmStart {
			t.Errorf("pool %d: WarmStart not reported", i)
		}
		totalHits += warm.CacheHits
		if warm.CacheHits > 0 && warm.Explored < cold.Explored {
			hitsBelowCold++
		}
		prev = warm.Plan
	}
	if totalHits == 0 {
		t.Error("warm cache never served a subtree across the whole storm")
	}
	if hitsBelowCold == 0 {
		t.Error("cache hits never reduced the explored node count")
	}
	if warmPl.Opts.Warm.Entries() == 0 {
		t.Error("no DP memos were persisted")
	}
}

// TestReplanDeterministicAcrossWorkers: a sequential replan chain produces
// bit-identical telemetry — plans, Explored, CacheHits — at any worker
// count, because warm reads come from a start-of-search snapshot.
func TestReplanDeterministicAcrossWorkers(t *testing.T) {
	cfg := model.OPT350M()
	mk := warmLab(t, cfg, core.A100)
	pools := stormPools(2)
	type obs struct {
		plan     string
		explored int
		hits     int
	}
	var runs [2][]obs
	for ri, workers := range []int{1, 8} {
		pl := mk(Options{Objective: core.MaxThroughput, Workers: workers, Warm: NewWarmCache()})
		var prev core.Plan
		for _, pool := range pools {
			res, err := pl.Replan(prev, pool)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			runs[ri] = append(runs[ri], obs{res.Plan.String(), res.Explored, res.CacheHits})
			prev = res.Plan
		}
	}
	for i := range runs[0] {
		if runs[0][i] != runs[1][i] {
			t.Errorf("replan %d diverges between workers=1 and workers=8:\n%+v\n%+v",
				i, runs[0][i], runs[1][i])
		}
	}
}

// TestWarmCacheFingerprintMismatch: a planner whose configuration differs
// from the cache's binding must ignore it and still plan correctly.
func TestWarmCacheFingerprintMismatch(t *testing.T) {
	cfg := model.OPT350M()
	mk := warmLab(t, cfg, core.A100)
	warm := NewWarmCache()
	pool := cluster.NewPool().Set(zoneA, core.A100, 16)

	first, err := mk(Options{Objective: core.MaxThroughput, Warm: warm}).Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	if !first.WarmStart {
		t.Error("compatible planner should report WarmStart")
	}
	other := mk(Options{Objective: core.MinCost, Warm: warm})
	res, err := other.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmStart || res.CacheHits != 0 {
		t.Errorf("mismatched fingerprint must search cold: %+v", res)
	}
	cold, err := mk(Options{Objective: core.MinCost}).Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.String() != cold.Plan.String() {
		t.Error("mismatched-cache plan differs from cold plan")
	}
}

// TestReplanFallbackSeed: when the search is cancelled before finding
// anything, a previous plan that still fits the pool is returned instead of
// an error — the elastic controller never downgrades to "no plan" on a
// transient cutoff.
func TestReplanFallbackSeed(t *testing.T) {
	cfg := model.OPT350M()
	mk := warmLab(t, cfg, core.A100)
	pl := mk(Options{Objective: core.MaxThroughput})
	pool := cluster.NewPool().Set(zoneA, core.A100, 16)
	first, err := pl.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := pl.ReplanContext(ctx, first.Plan, pool)
	if err != nil {
		t.Fatalf("cancelled replan with a valid previous plan should fall back, got %v", err)
	}
	if res.Plan.String() != first.Plan.String() {
		t.Errorf("fallback should return the previous plan:\n%s\n%s", first.Plan, res.Plan)
	}

	// Without a usable seed (pool lost the GPUs the plan needs), the
	// cancelled search still errors.
	shrunk := cluster.NewPool().Set(zoneA, core.A100, 2)
	if _, err := pl.ReplanContext(ctx, first.Plan, shrunk); err == nil {
		t.Error("cancelled replan without a feasible seed must error")
	}
}

// TestReplanSeedRespectsConstraints: a previous plan violating the current
// constraints is not used as a fallback.
func TestReplanSeedRespectsConstraints(t *testing.T) {
	cfg := model.OPT350M()
	mk := warmLab(t, cfg, core.A100)
	pl := mk(Options{Objective: core.MaxThroughput})
	pool := cluster.NewPool().Set(zoneA, core.A100, 16)
	first, err := pl.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	tight := mk(Options{
		Objective:   core.MaxThroughput,
		Constraints: core.Constraints{MinThroughput: 2 / first.Estimate.IterTime},
	})
	seed := tight.seedFromPrev(first.Plan, pool)
	if seed != nil {
		t.Error("seed violating MinThroughput must be rejected")
	}
}

// TestEstKeyDistinguishesReplicaOrder: Plan.String groups identical
// replicas within a stage, so it collapses orderings the simulator
// distinguishes (pipeline k pairs replica k across stages). The estimate
// cache must key on the order-preserving serialization, never the display
// string.
func TestEstKeyDistinguishesReplicaOrder(t *testing.T) {
	mk := func(zones ...string) core.Plan {
		st := core.StagePlan{FirstLayer: 0, NumLayers: 24}
		for _, z := range zones {
			st.Replicas = append(st.Replicas, core.StageReplica{
				GPU: core.A100, TP: 1, Zone: core.Zone{Region: "r", Name: z},
			})
		}
		return core.Plan{MicroBatchSize: 2, Stages: []core.StagePlan{st}}
	}
	a := mk("c", "a", "b", "c")
	b := mk("c", "c", "a", "b")
	if a.String() != b.String() {
		t.Fatalf("precondition: display strings should collide:\n%s\n%s", a, b)
	}
	if estKey(a) == estKey(b) {
		t.Errorf("estKey collapsed distinct replica orderings: %s", estKey(a))
	}
	re := a
	re.Recompute = true
	if estKey(a) == estKey(re) {
		t.Error("estKey must include the recompute flag")
	}
}

// TestWarmCacheConcurrentReplans: many goroutines replanning through one
// shared cache stay race-free (run under -race) and each returns the same
// plan cold planning returns for its pool.
func TestWarmCacheConcurrentReplans(t *testing.T) {
	cfg := model.OPT350M()
	mk := warmLab(t, cfg, core.A100)
	warm := NewWarmCache()
	pools := stormPools(3)
	if len(pools) > 6 {
		pools = pools[:6]
	}
	coldPlans := make([]string, len(pools))
	for i, p := range pools {
		cold, err := mk(Options{Objective: core.MaxThroughput}).Plan(p)
		if err != nil {
			t.Fatal(err)
		}
		coldPlans[i] = cold.Plan.String()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pl := mk(Options{Objective: core.MaxThroughput, Workers: 2, Warm: warm})
			var prev core.Plan
			for i, pool := range pools {
				res, err := pl.Replan(prev, pool)
				if err != nil {
					errs <- err
					return
				}
				if res.Plan.String() != coldPlans[i] {
					t.Errorf("goroutine %d pool %d: warm plan diverged from cold", g, i)
				}
				prev = res.Plan
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
