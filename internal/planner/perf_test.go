package planner

// Allocation-regression tests and micro-benchmarks for the DP hot path.
// The ceilings are part of the perf contract of the profile-guided
// overhaul: the packed-key memo probe is allocation-free, so a memo-served
// solveDP pass must stay at zero allocations and a cold pass must stay
// within a small constant per explored node.

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/sim"
)

// dpLab builds an initialised search/task pair over a pool, mirroring the
// setup runPass/searchDP perform.
func dpLab(tb testing.TB, pool *cluster.Pool, gpus ...core.GPUType) (*Planner, *search, *task, *regionState, []int) {
	tb.Helper()
	cfg := model.OPT350M()
	prof, err := profiler.Collect(cfg, gpus, nil, profiler.Options{Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	pl := New(cfg, sim.New(cfg, prof), Options{
		Objective: core.MaxThroughput, Heuristics: AllHeuristics(), Workers: 1,
	})
	rs := newRegionState(pool, true)
	s := newSearch(pl, context.Background())
	tb.Cleanup(s.stop)
	s.bindState(rs)
	layers := partitionLayers(cfg.Layers, 4)
	t := &task{s: s, pl: pl, mbs: 2}
	t.init(rs, layers)
	t.resetMemo(2, cfg.GlobalBatch/(2*2))
	return pl, s, t, rs, layers
}

// TestSolveDPMemoHitAllocFree: a solveDP pass served entirely from the
// scan memo performs zero allocations — the packed dpKey probe never
// touches the heap.
func TestSolveDPMemoHitAllocFree(t *testing.T) {
	pool := cluster.NewPool().Set(zoneA, core.A100, 16)
	_, _, tk, rs, layers := dpLab(t, pool, core.A100)
	work := rs.clone()
	nb := tk.pl.Cfg.GlobalBatch / (2 * 2)
	if n := tk.solveDP(work, layers, 0, 0, 2, 2, nb, 0); n == nil {
		t.Fatal("cold pass found no solution")
	}
	allocs := testing.AllocsPerRun(100, func() {
		tk.solveDP(work, layers, 0, 0, 2, 2, nb, 0)
	})
	if allocs != 0 {
		t.Errorf("memo-served solveDP allocates %.1f times per pass; want 0", allocs)
	}
}

// TestSolveDPColdAllocCeiling: a cold solveDP pass over a 16-GPU pool
// stays within a small allocation budget (the clone-per-combo
// implementation it replaced spent thousands here).
func TestSolveDPColdAllocCeiling(t *testing.T) {
	pool := cluster.NewPool().Set(zoneA, core.A100, 16)
	_, _, tk, rs, layers := dpLab(t, pool, core.A100)
	work := rs.clone()
	nb := tk.pl.Cfg.GlobalBatch / (2 * 2)
	const ceiling = 256
	allocs := testing.AllocsPerRun(20, func() {
		tk.resetMemo(2, nb)
		if n := tk.solveDP(work, layers, 0, 0, 2, 2, nb, 0); n == nil {
			t.Fatal("no solution")
		}
	})
	if allocs > ceiling {
		t.Errorf("cold solveDP pass allocates %.0f times; ceiling %d", allocs, ceiling)
	}
}

// BenchmarkDPMemoHit measures the memoized fast path of the DP: the packed
// key build plus one map probe per stage state.
func BenchmarkDPMemoHit(b *testing.B) {
	pool := cluster.NewPool().Set(zoneA, core.A100, 16)
	_, _, tk, rs, layers := dpLab(b, pool, core.A100)
	work := rs.clone()
	nb := tk.pl.Cfg.GlobalBatch / (2 * 2)
	if n := tk.solveDP(work, layers, 0, 0, 2, 2, nb, 0); n == nil {
		b.Fatal("cold pass found no solution")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.solveDP(work, layers, 0, 0, 2, 2, nb, 0)
	}
}
