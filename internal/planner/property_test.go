package planner

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/sim"
)

// Property suite: structural invariants of every plan the planner emits,
// checked over randomized pools.

func TestPlannerInvariantsProperty(t *testing.T) {
	cfg := model.OPT350M()
	prof, err := profiler.Collect(cfg, []core.GPUType{core.A100, core.V100}, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(cfg, prof)

	check := func(nA, nV uint8, secondZone bool) bool {
		a := int(nA%32) + 4
		v := int(nV % 32)
		pool := cluster.NewPool().Set(zoneA, core.A100, a)
		z := zoneA
		if secondZone {
			z = zoneB
		}
		if v > 0 {
			pool.Set(z, core.V100, v)
		}
		pl := New(cfg, s, Options{Objective: core.MaxThroughput, Heuristics: AllHeuristics()})
		res, err := pl.Plan(pool)
		if err != nil {
			return true // infeasible pools may legitimately fail
		}
		// I1: structural validity.
		if err := res.Plan.Validate(cfg.Layers); err != nil {
			t.Logf("invalid plan for pool a=%d v=%d: %v", a, v, err)
			return false
		}
		// I2: never exceeds availability.
		if !pool.CanFit(res.Plan) {
			t.Logf("plan oversubscribes pool a=%d v=%d: %s", a, v, res.Plan)
			return false
		}
		// I3: never OOM by its own estimate (Sailor's zero-OOM guarantee).
		if !res.Estimate.FitsMemory {
			t.Logf("plan marked OOM for a=%d v=%d", a, v)
			return false
		}
		// I4: H5 — every stage's replicas stay within one region.
		for _, st := range res.Plan.Stages {
			region := st.Replicas[0].Zone.Region
			for _, r := range st.Replicas {
				if r.Zone.Region != region {
					t.Logf("stage spans regions for a=%d v=%d", a, v)
					return false
				}
			}
		}
		// I5: H1 — TP within the node.
		for _, st := range res.Plan.Stages {
			for _, r := range st.Replicas {
				if r.TP > 4 {
					t.Logf("TP %d exceeds node size", r.TP)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Property: giving the planner strictly more of the same resources never
// hurts its achieved objective (throughput is monotone in availability).
func TestPlannerMonotoneInResources(t *testing.T) {
	cfg := model.OPT350M()
	prof, err := profiler.Collect(cfg, []core.GPUType{core.A100}, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(cfg, prof)
	prev := 0.0
	for _, n := range []int{4, 8, 16, 32, 64} {
		pl := New(cfg, s, Options{Objective: core.MaxThroughput, Heuristics: AllHeuristics()})
		res, err := pl.Plan(cluster.NewPool().Set(zoneA, core.A100, n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		tput := res.Estimate.Throughput()
		if tput < prev*0.999 {
			t.Errorf("throughput dropped when growing pool to %d: %v < %v", n, tput, prev)
		}
		prev = tput
	}
}
