package planner

// Region-indexed resource state and the search-wide shared caches. Each
// worker clones the regionState before mutating it; the minimum-TP cache is
// shared across workers behind sharded locks.

import (
	"encoding/binary"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
)

// regionState indexes the pool for the DP: available GPU counts per
// (region bucket, GPU type).
type regionState struct {
	regions []string
	types   []core.GPUType
	// counts[ri][ti] = available GPUs.
	counts [][]int
	zones  []core.Zone // one synthetic zone per region
}

// newRegionState indexes the pool for the DP. With mergeZones (H6) the
// search granularity is one bucket per region; without it every zone is its
// own bucket, inflating the search space exactly as the ablation intends.
func newRegionState(p *cluster.Pool, mergeZones bool) *regionState {
	rs := &regionState{}
	typeIdx := map[core.GPUType]int{}
	for _, g := range p.GPUTypes() {
		typeIdx[g] = len(rs.types)
		rs.types = append(rs.types, g)
	}
	bucketIdx := map[string]int{}
	for _, z := range p.Zones() {
		name := z.Region
		if !mergeZones {
			name = z.Name
		}
		ri, ok := bucketIdx[name]
		if !ok {
			ri = len(rs.regions)
			bucketIdx[name] = ri
			rs.regions = append(rs.regions, name)
			rs.counts = append(rs.counts, make([]int, len(rs.types)))
			rs.zones = append(rs.zones, core.Zone{Region: z.Region, Name: name})
		}
		for ti, g := range rs.types {
			rs.counts[ri][ti] += p.Available(z, g)
		}
	}
	return rs
}

func (rs *regionState) totalGPUs() int {
	n := 0
	for _, row := range rs.counts {
		for _, c := range row {
			n += c
		}
	}
	return n
}

func (rs *regionState) clone() *regionState {
	c := &regionState{regions: rs.regions, types: rs.types, zones: rs.zones}
	c.counts = make([][]int, len(rs.counts))
	for i, row := range rs.counts {
		c.counts[i] = append([]int(nil), row...)
	}
	return c
}

// shape identifies the region/type index layout of the state. Persisted DP
// memo keys carry it so entries from one pool are only consulted for pools
// whose counts matrix is indexed identically.
func (rs *regionState) shape() string {
	var b strings.Builder
	for _, r := range rs.regions {
		b.WriteString(r)
		b.WriteByte(',')
	}
	b.WriteByte('/')
	for _, g := range rs.types {
		b.WriteString(string(g))
		b.WriteByte(',')
	}
	return b.String()
}

// dpKeyCells is the number of (region, type) availability cells a dpKey can
// pack inline (16 bits each across two words). Searches over wider pools
// spill to an allocated byte string; every pool in the evaluation — and
// every ablation, including zone-granular search — fits inline.
const dpKeyCells = 8

// dpKey is the packed, comparable memo key of one solveDP call: the stage
// index, the region scan position, and the remaining availability matrix.
// It replaces the fmt-built string key that dominated the cold-search
// profile — building one is a handful of shifts and hashing it is one
// memhash over a 40-byte struct, with no allocation. The map probe itself
// is the DP's hottest instruction stream, so the struct is kept minimal.
type dpKey struct {
	w0, w1 uint64 // counts cells, 16 bits each, in matrix order
	stage  uint16
	ri     uint16
	n      uint16
	// spill holds a varint encoding of the counts matrix when it does not
	// fit the inline cells (too many cells or a count >= 1<<16). The words
	// are zeroed in that case so equal spills compare equal.
	spill string
}

// packedKey builds the memo key for (stage, ri) over the current counts.
func (rs *regionState) packedKey(stage, ri int) dpKey {
	k := dpKey{stage: uint16(stage), ri: uint16(ri)}
	idx := 0
	fits := true
	for _, row := range rs.counts {
		for _, c := range row {
			if idx < dpKeyCells && uint(c) < 1<<16 {
				sh := uint(idx&3) * 16
				if idx < 4 {
					k.w0 |= uint64(c) << sh
				} else {
					k.w1 |= uint64(c) << sh
				}
			} else {
				fits = false
			}
			idx++
		}
	}
	k.n = uint16(idx)
	if !fits {
		buf := make([]byte, 0, 4*idx)
		for _, row := range rs.counts {
			for _, c := range row {
				buf = binary.AppendVarint(buf, int64(c))
			}
		}
		k.w0, k.w1 = 0, 0
		k.spill = string(buf)
	}
	return k
}

// --- shared minimum-TP cache (H2) -----------------------------------------

// minTPKey identifies one stage shape. The in-flight count is capped at the
// pipeline depth before keying (see task.minTP).
type minTPKey struct {
	g         core.GPUType
	layers    int
	stage     int
	pp        int
	mbs       int
	nb        int
	recompute bool
}

// minTPShards keeps lock contention negligible at high worker counts while
// still letting every worker reuse every other worker's H2 computations.
const minTPShards = 32

// minTPCache is the search-wide H2 cache: sharded maps behind RWMutexes.
// The cached minimum is a pure function of the key, so racing writers can
// only store the same value.
type minTPCache struct {
	shards [minTPShards]struct {
		mu sync.RWMutex
		m  map[minTPKey]int
	}
}

func newMinTPCache() *minTPCache {
	c := &minTPCache{}
	for i := range c.shards {
		c.shards[i].m = map[minTPKey]int{}
	}
	return c
}

// shardOf hashes the key fields with FNV-1a.
func (c *minTPCache) shardOf(k minTPKey) int {
	h := uint32(2166136261)
	mix := func(v uint32) { h = (h ^ v) * 16777619 }
	for i := 0; i < len(k.g); i++ {
		mix(uint32(k.g[i]))
	}
	mix(uint32(k.layers))
	mix(uint32(k.stage))
	mix(uint32(k.pp))
	mix(uint32(k.mbs))
	mix(uint32(k.nb))
	if k.recompute {
		mix(1)
	}
	return int(h % minTPShards)
}

func (c *minTPCache) get(k minTPKey) (int, bool) {
	s := &c.shards[c.shardOf(k)]
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

func (c *minTPCache) put(k minTPKey, v int) {
	s := &c.shards[c.shardOf(k)]
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}
