package planner

// Region-indexed resource state and the search-wide shared caches. Each
// worker clones the regionState before mutating it; the minimum-TP cache is
// shared across workers behind sharded locks.

import (
	"encoding/binary"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
)

// regionState indexes the pool for the DP: available GPU counts per
// (region bucket, GPU type). The live representation is a bitset-packed
// lane vector — one 16-bit lane per cell, four lanes per word, in matrix
// order — so the availability mutations of the DP's hot loop
// (applyChoice/undoChoice) are single-word shift arithmetic and the memo
// key (dpKey) is built by copying the words verbatim instead of re-packing
// cell by cell. Pools whose counts overflow a lane fall back to a plain
// matrix (wide); every pool in the evaluation fits the lanes.
type regionState struct {
	regions []string
	types   []core.GPUType
	// words holds the availability lanes: cell ri*len(types)+ti lives in
	// words[cell/4] at bit offset (cell%4)*16.
	words []uint64
	// wide is the fallback matrix, non-nil only when some count >= 1<<16.
	wide  [][]int
	zones []core.Zone // one synthetic zone per region
}

// laneShift returns the in-word bit offset of a cell.
func laneShift(cell int) uint { return uint(cell&3) * 16 }

// count reads one availability cell.
func (rs *regionState) count(ri, ti int) int {
	if rs.wide != nil {
		return rs.wide[ri][ti]
	}
	cell := ri*len(rs.types) + ti
	return int(rs.words[cell>>2] >> laneShift(cell) & 0xffff)
}

// addCount adjusts one availability cell. Lanes never borrow or carry into
// a neighbour: subtractions are bounded by the availability checks the DP
// performs before applying a choice, and additions only restore counts that
// fit the lane when the state was built.
func (rs *regionState) addCount(ri, ti, delta int) {
	if rs.wide != nil {
		rs.wide[ri][ti] += delta
		return
	}
	cell := ri*len(rs.types) + ti
	if delta >= 0 {
		rs.words[cell>>2] += uint64(delta) << laneShift(cell)
	} else {
		rs.words[cell>>2] -= uint64(-delta) << laneShift(cell)
	}
}

// cells is the number of (region, type) availability cells.
func (rs *regionState) cells() int { return len(rs.regions) * len(rs.types) }

// newRegionState indexes the pool for the DP. With mergeZones (H6) the
// search granularity is one bucket per region; without it every zone is its
// own bucket, inflating the search space exactly as the ablation intends.
func newRegionState(p *cluster.Pool, mergeZones bool) *regionState {
	rs := &regionState{}
	typeIdx := map[core.GPUType]int{}
	for _, g := range p.GPUTypes() {
		typeIdx[g] = len(rs.types)
		rs.types = append(rs.types, g)
	}
	var counts [][]int
	bucketIdx := map[string]int{}
	for _, z := range p.Zones() {
		name := z.Region
		if !mergeZones {
			name = z.Name
		}
		ri, ok := bucketIdx[name]
		if !ok {
			ri = len(rs.regions)
			bucketIdx[name] = ri
			rs.regions = append(rs.regions, name)
			counts = append(counts, make([]int, len(rs.types)))
			rs.zones = append(rs.zones, core.Zone{Region: z.Region, Name: name})
		}
		for ti, g := range rs.types {
			counts[ri][ti] += p.Available(z, g)
		}
	}
	fits := true
	for _, row := range counts {
		for _, c := range row {
			if uint(c) >= 1<<16 {
				fits = false
			}
		}
	}
	if !fits {
		rs.wide = counts
		return rs
	}
	rs.words = make([]uint64, (rs.cells()+3)/4)
	for ri, row := range counts {
		for ti, c := range row {
			rs.addCount(ri, ti, c)
		}
	}
	return rs
}

func (rs *regionState) totalGPUs() int {
	n := 0
	if rs.wide != nil {
		for _, row := range rs.wide {
			for _, c := range row {
				n += c
			}
		}
		return n
	}
	for _, w := range rs.words {
		// Unused tail lanes of the last word are zero.
		n += int(w&0xffff) + int(w>>16&0xffff) + int(w>>32&0xffff) + int(w>>48&0xffff)
	}
	return n
}

func (rs *regionState) clone() *regionState {
	c := &regionState{regions: rs.regions, types: rs.types, zones: rs.zones}
	if rs.wide != nil {
		c.wide = make([][]int, len(rs.wide))
		for i, row := range rs.wide {
			c.wide[i] = append([]int(nil), row...)
		}
		return c
	}
	c.words = append([]uint64(nil), rs.words...)
	return c
}

// counts flattens the availability matrix in matrix (cell) order — the
// root-state vector the warm cache's incremental delta detection compares
// across replans.
func (rs *regionState) counts() []int {
	out := make([]int, 0, rs.cells())
	for ri := range rs.regions {
		for ti := range rs.types {
			out = append(out, rs.count(ri, ti))
		}
	}
	return out
}

// shape identifies the region/type index layout of the state. Persisted DP
// memo keys carry it so entries from one pool are only consulted for pools
// whose counts matrix is indexed identically.
func (rs *regionState) shape() string {
	var b strings.Builder
	for _, r := range rs.regions {
		b.WriteString(r)
		b.WriteByte(',')
	}
	b.WriteByte('/')
	for _, g := range rs.types {
		b.WriteString(string(g))
		b.WriteByte(',')
	}
	return b.String()
}

// dpKeyCells is the number of (region, type) availability cells a dpKey can
// pack inline (16 bits each across two words). Searches over wider pools
// spill to an allocated byte string; every pool in the evaluation — and
// every ablation, including zone-granular search — fits inline.
const dpKeyCells = 8

// dpKey is the packed, comparable memo key of one solveDP call: the stage
// index, the region scan position, and the remaining availability matrix.
// It replaces the fmt-built string key that dominated the cold-search
// profile — building one is a handful of shifts and hashing it is one
// memhash over a 40-byte struct, with no allocation. The map probe itself
// is the DP's hottest instruction stream, so the struct is kept minimal.
type dpKey struct {
	w0, w1 uint64 // counts cells, 16 bits each, in matrix order
	stage  uint16
	ri     uint16
	n      uint16
	// spill holds a varint encoding of the counts matrix when it does not
	// fit the inline cells (too many cells or a count >= 1<<16). The words
	// are zeroed in that case so equal spills compare equal.
	spill string
}

// dpFastKey is the memo key of the common case — availability packed inline
// in the dpKey words. It is pointer-free, so hashing touches nothing beyond
// the 24-byte struct and equality is three word compares; the spill-backed
// dpKey map is only consulted for pools too wide to pack.
type dpFastKey struct {
	w0, w1 uint64
	meta   uint64 // stage | ri<<16 | n<<32
}

// fastKey converts an inline-packed dpKey; callers check spill == "" first.
func fastKey(k dpKey) dpFastKey {
	return dpFastKey{w0: k.w0, w1: k.w1,
		meta: uint64(k.stage) | uint64(k.ri)<<16 | uint64(k.n)<<32}
}

// packedKey builds the memo key for (stage, ri) over the current counts.
// The packed representation makes the common case a straight word copy: the
// live availability lanes already use the dpKey layout, so pools with at
// most dpKeyCells cells need no per-cell packing at all.
func (rs *regionState) packedKey(stage, ri int) dpKey {
	cells := rs.cells()
	k := dpKey{stage: uint16(stage), ri: uint16(ri), n: uint16(cells)}
	if rs.wide == nil && cells <= dpKeyCells {
		k.w0 = rs.words[0]
		if len(rs.words) > 1 {
			k.w1 = rs.words[1]
		}
		return k
	}
	buf := make([]byte, 0, 4*cells)
	for ri := range rs.regions {
		for ti := range rs.types {
			buf = binary.AppendVarint(buf, int64(rs.count(ri, ti)))
		}
	}
	k.spill = string(buf)
	return k
}

// --- shared minimum-TP cache (H2) -----------------------------------------

// minTPKey identifies one stage shape. The in-flight count is capped at the
// pipeline depth before keying (see task.minTP).
type minTPKey struct {
	g         core.GPUType
	layers    int
	stage     int
	pp        int
	mbs       int
	nb        int
	recompute bool
}

// minTPShards keeps lock contention negligible at high worker counts while
// still letting every worker reuse every other worker's H2 computations.
const minTPShards = 32

// minTPCache is the search-wide H2 cache: sharded maps behind RWMutexes.
// The cached minimum is a pure function of the key, so racing writers can
// only store the same value.
type minTPCache struct {
	shards [minTPShards]struct {
		mu sync.RWMutex
		m  map[minTPKey]int
	}
}

func newMinTPCache() *minTPCache {
	c := &minTPCache{}
	for i := range c.shards {
		c.shards[i].m = map[minTPKey]int{}
	}
	return c
}

// shardOf hashes the key fields with FNV-1a.
func (c *minTPCache) shardOf(k minTPKey) int {
	h := uint32(2166136261)
	mix := func(v uint32) { h = (h ^ v) * 16777619 }
	for i := 0; i < len(k.g); i++ {
		mix(uint32(k.g[i]))
	}
	mix(uint32(k.layers))
	mix(uint32(k.stage))
	mix(uint32(k.pp))
	mix(uint32(k.mbs))
	mix(uint32(k.nb))
	if k.recompute {
		mix(1)
	}
	return int(h % minTPShards)
}

func (c *minTPCache) get(k minTPKey) (int, bool) {
	s := &c.shards[c.shardOf(k)]
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

func (c *minTPCache) put(k minTPKey, v int) {
	s := &c.shards[c.shardOf(k)]
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}
