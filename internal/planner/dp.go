package planner

// The per-stage dynamic program of Listing 1: assign resources to pipeline
// stages suffix by suffix, memoizing on the remaining resource state, with
// an exact budget-threading recursion for shallow pipelines and a beam-
// bounded fallback for deep ones. All methods run on a single task — the
// DP itself is sequential; parallelism lives one level up in search.go.
//
// The hot loops are deliberately allocation-lean: the region state is
// mutated in place (applyChoice/undoChoice) instead of cloned per combo,
// stage compositions are enumerated into per-depth scratch buffers reused
// across calls, candidate nodes are compared as value statistics and only
// the per-suffix winner is materialised as a *dpNode, and every repeated
// evaluator query (stage compute time, memory fit, DP sync time) resolves
// through a per-task cache keyed by packed structs. None of this changes
// any comparison: the enumeration order, the floating-point expressions,
// and the tie-breaking are byte-for-byte those of the straightforward
// clone-per-combo implementation, so plans stay bit-identical.

import (
	"bytes"
	"sort"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/memory"
)

// replicaGroup is a homogeneous subset of one stage's DP replicas. It is
// deliberately pointer-free (the GPU type is carried as an index into the
// region state's type table and resolved only at plan materialisation):
// group compositions are copied throughout the DP's hottest loops, and
// pointer-free copies take no write barriers and give the GC nothing to
// scan in the group arenas.
type replicaGroup struct {
	typeIdx int
	count   int
	tp      int
	need    int // count*tp, precomputed for the hot availability filter
}

// stageChoice is the resource assignment for one stage: a region (an index
// into the region state's bucket table; the name is resolved at plan
// materialisation) and the composition of its D replicas.
type stageChoice struct {
	region int
	groups []replicaGroup
	// perMB is the per-microbatch fwd+bwd time of the slowest replica.
	perMB float64
	// sync is the estimated gradient all-reduce time for the stage.
	sync float64
	// rateUSD is the USD/second of the stage's GPUs.
	rateUSD float64
}

// allocGroups detaches a choice's group composition from the enumeration
// scratch buffer, for choices that outlive one stageCombos generation
// (memoized winners and budget-path nodes). The copies are carved out of
// chunked arenas owned by the task: a chunk is never grown in place once
// handed out, so earlier copies stay valid for the life of the task while
// the allocation count drops from one per winner to one per chunk.
func (t *task) allocGroups(groups []replicaGroup) []replicaGroup {
	const groupChunk = 4096
	if len(t.groupArena)+len(groups) > cap(t.groupArena) {
		n := groupChunk
		if len(groups) > n {
			n = len(groups)
		}
		t.groupArena = make([]replicaGroup, 0, n)
	}
	off := len(t.groupArena)
	t.groupArena = append(t.groupArena, groups...)
	return t.groupArena[off:len(t.groupArena):len(t.groupArena)]
}

// newNode hands out one zeroed dpNode from the task's chunked slab. Memo
// entries and the warm cache hold references into the chunks, so a chunk is
// never recycled — the slab only amortises the allocation count.
func (t *task) newNode() *dpNode {
	if len(t.nodeSlab) == 0 {
		t.nodeSlab = make([]dpNode, 512)
	}
	n := &t.nodeSlab[0]
	t.nodeSlab = t.nodeSlab[1:]
	return n
}

// dpNode is the memoized solution of the suffix starting at one stage.
type dpNode struct {
	choice    stageChoice
	next      *dpNode
	straggler float64 // max per-microbatch stage time over the suffix
	sumTime   float64 // warm-up/cool-down contribution of the suffix
	maxSync   float64
	rateUSD   float64 // total USD/second over the suffix
}

// metric is the DP's objective: the §4.2.2 iteration-time decomposition.
func (n *dpNode) metric(nb int) float64 {
	return float64(nb)*n.straggler + n.sumTime + n.maxSync
}

// costPerIter approximates the suffix cost under the §4.2.3 assumption that
// the straggler term dominates the iteration.
func (n *dpNode) costPerIter(nb int) float64 {
	return n.rateUSD * float64(nb) * n.straggler
}

// appendChoiceSig appends the signature piece of one choice: the region,
// the groups, and a '|' terminator. The terminator is the only '|' in the
// piece, so two distinct pieces can never be prefixes of one another and
// comparing piece-by-piece equals comparing whole chain signatures.
func appendChoiceSig(b []byte, c stageChoice) []byte {
	b = strconv.AppendInt(b, int64(c.region), 10)
	b = append(b, ';')
	for _, g := range c.groups {
		b = strconv.AppendInt(b, int64(g.typeIdx), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(g.count), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(g.tp), 10)
		b = append(b, ',')
	}
	return append(b, '|')
}

// sigLess reports whether chain a's signature orders before chain b's
// without materialising either string. The pieces are rebuilt into two
// scratch buffers owned by the task and compared one choice at a time,
// which appendChoiceSig's unique terminator makes equivalent to comparing
// the whole chain strings — no allocation per tie-break.
func (t *task) sigLess(a, b *dpNode) bool {
	for a != nil && b != nil {
		t.sigA = appendChoiceSig(t.sigA[:0], a.choice)
		t.sigB = appendChoiceSig(t.sigB[:0], b.choice)
		if c := bytes.Compare(t.sigA, t.sigB); c != 0 {
			return c < 0
		}
		a, b = a.next, b.next
	}
	// A chain that ends first is a proper prefix of the other, and orders
	// before it (suffix chains compared by the DP always have equal length,
	// so this is belt and braces).
	return a == nil && b != nil
}

// nodeStats are the value-typed metrics of a candidate suffix node. The
// combos loop compares candidates through these without allocating a
// dpNode per loser; the arithmetic mirrors combine/leafNode exactly.
type nodeStats struct {
	straggler float64
	sumTime   float64
	maxSync   float64
	rateUSD   float64
}

func (s nodeStats) metric(nb int) float64 {
	return float64(nb)*s.straggler + s.sumTime + s.maxSync
}

// statsOf computes the metrics combine(choice, child) — or leafNode(choice)
// when child is nil — would produce, without building the node.
func statsOf(c stageChoice, child *dpNode) nodeStats {
	if child == nil {
		return nodeStats{straggler: c.perMB, sumTime: c.perMB, maxSync: c.sync, rateUSD: c.rateUSD}
	}
	st := nodeStats{straggler: c.perMB, maxSync: c.sync}
	if child.straggler > st.straggler {
		st.straggler = child.straggler
	}
	st.sumTime = c.perMB + child.sumTime
	if child.maxSync > st.maxSync {
		st.maxSync = child.maxSync
	}
	st.rateUSD = c.rateUSD + child.rateUSD
	return st
}

// materialise builds the node a winning (choice, child) pair stands for.
func (t *task) materialise(c stageChoice, child *dpNode, st nodeStats) *dpNode {
	n := t.newNode()
	*n = dpNode{
		choice: c, next: child,
		straggler: st.straggler, sumTime: st.sumTime,
		maxSync: st.maxSync, rateUSD: st.rateUSD,
	}
	return n
}

// memoGet probes the scan-local memo, routing inline-packed keys to the
// pointer-free fast map.
func (t *task) memoGet(k dpKey) (*dpNode, bool) {
	if k.spill == "" {
		return t.dpMemo.get(fastKey(k))
	}
	n, ok := t.dpMemoSpill[k]
	return n, ok
}

// memoPut stores one memo entry, routing like memoGet.
func (t *task) memoPut(k dpKey, n *dpNode) {
	if k.spill == "" {
		t.dpMemo.put(fastKey(k), n)
		return
	}
	if t.dpMemoSpill == nil {
		t.dpMemoSpill = map[dpKey]*dpNode{}
	}
	t.dpMemoSpill[k] = n
}

// solveDP assigns resources to stages i..P-1, starting the region scan at
// ri (H5: stages consume regions monotonically, so data-parallel groups
// never straddle a region boundary while the pipeline may). The region
// state is restored to its entry value before every return.
func (t *task) solveDP(rs *regionState, layers []int, i, ri, d, mbs, nb int, budget float64) *dpNode {
	if t.s.expired() {
		return nil
	}
	pp := len(layers)
	var memoKey dpKey
	memoized := budget <= 0 // unconstrained: memoization is sound
	if memoized {
		memoKey = rs.packedKey(i, ri)
		if n, ok := t.memoGet(memoKey); ok {
			return n
		}
		// Warm start: consult the snapshot of DP memos persisted by earlier
		// replans. A hit short-circuits the whole subtree (it neither counts
		// as explored nor recurses), which is where Replan's speedup on
		// churn traces comes from. Hits are re-published into pending so
		// the merge's over-cap eviction keeps the live working set rather
		// than retaining only the latest search's misses.
		if t.warmOn {
			full := t.warmKey(memoKey)
			if n, ok := t.s.warmDP[full]; ok {
				t.warmHits++
				t.memoPut(memoKey, n)
				if t.pending == nil {
					t.pending = map[warmDPKey]*dpNode{}
				}
				t.pending[full] = n
				return n
			}
			// Incremental probe (see warm.go): the pool is the previous root
			// shrunk by incAmt GPUs in incCell, so the state this spent
			// vector would leave under the previous root is one lane-add
			// away. A cached entry there is the exact optimum over a
			// superset of the allocations feasible here: a nil entry proves
			// infeasibility a fortiori, and a winner whose chain still fits
			// the shrunk cell is the exact winner here too (every competitor
			// already lost to it, and node ordering is pool-independent).
			// The lane add cannot carry: remaining <= current root, so
			// remaining+incAmt <= previous root's cell, which fit its lane.
			if t.s.incOn && memoKey.spill == "" {
				probe := full
				if t.s.incCell < 4 {
					probe.key.w0 += uint64(t.s.incAmt) << laneShift(t.s.incCell)
				} else {
					probe.key.w1 += uint64(t.s.incAmt) << laneShift(t.s.incCell)
				}
				if n, ok := t.s.warmDP[probe]; ok && (n == nil || t.chainFitsShrunkCell(n, rs)) {
					t.warmHits++
					t.memoPut(memoKey, n)
					if t.pending == nil {
						t.pending = map[warmDPKey]*dpNode{}
					}
					// Publish under the exact key of this state: the probed
					// value is its exact winner, and later replans on this
					// pool then hit without the fit check.
					t.pending[full] = n
					return n
				}
			}
		}
	}
	t.explored++

	var best *dpNode
	if budget > 0 {
		for r := ri; r < len(rs.regions); r++ {
			combos := t.stageCombos(rs, r, layers[i], i, pp, d, mbs, nb)
			if len(combos) > budgetBeamWidth {
				// The budget-constrained recursion cannot reuse the memo
				// (Listing 1 threads the remaining budget through solve_dp),
				// so bound its branching with a beam over the fastest
				// per-stage choices; the paper reports a 4x overhead rather
				// than an exponential one, implying similar bounding.
				sort.Slice(combos, func(a, b int) bool { return combos[a].perMB < combos[b].perMB })
				combos = combos[:budgetBeamWidth]
			}
			for _, choice := range combos {
				if t.s.expired() {
					break
				}
				if n := t.solveWithBudget(rs, layers, i, r, d, mbs, nb, budget, choice); n != nil {
					if best == nil || t.nodeBetter(n, best, nb) {
						best = n
					}
				}
			}
		}
		return best
	}

	// Unconstrained path: compare candidates as value stats, materialise
	// only the winner.
	var (
		bestStats  nodeStats
		bestChoice stageChoice
		bestChild  *dpNode
		have       bool
	)
	last := i == pp-1
	for r := ri; r < len(rs.regions); r++ {
		combos := t.stageCombos(rs, r, layers[i], i, pp, d, mbs, nb)
		for _, choice := range combos {
			if t.s.expired() {
				break
			}
			if have && t.domOn && t.dominated(choice, bestStats, i, pp, d, nb) {
				continue
			}
			applyChoice(rs, choice)
			var child *dpNode
			ok := true
			if !last {
				child = t.solveDP(rs, layers, i+1, r, d, mbs, nb, 0)
				ok = child != nil
			}
			undoChoice(rs, choice)
			if !ok {
				continue
			}
			st := statsOf(choice, child)
			if !have || t.statsBetter(st, choice, child, bestStats, bestChoice, bestChild, nb) {
				// The incumbent outlives this stageCombos generation, so
				// its groups leave the shared scratch buffer — into the
				// per-stage incumbent buffer, not the arena: incumbents
				// are overwritten on every improvement, and only the one
				// that survives to materialisation is worth detaching.
				t.bestGBuf[i] = append(t.bestGBuf[i][:0], choice.groups...)
				choice.groups = t.bestGBuf[i]
				bestStats, bestChoice, bestChild, have = st, choice, child, true
			}
		}
	}
	if have {
		bestChoice.groups = t.allocGroups(bestChoice.groups)
		best = t.materialise(bestChoice, bestChild, bestStats)
	}
	if memoized {
		t.memoPut(memoKey, best)
		if t.warmOn && !t.s.expired() {
			// Persist only nodes from uncancelled exploration: a cut-off
			// subtree may have skipped choices, and caching its partial
			// best would poison later replans. nil results (infeasible
			// suffixes) are cached too — knowing a region state cannot
			// host the remaining stages is as reusable as a solution.
			if t.pending == nil {
				t.pending = map[warmDPKey]*dpNode{}
			}
			t.pending[t.warmKey(memoKey)] = best
		}
	}
	return best
}

// chainFitsShrunkCell reports whether a probed chain's total usage of the
// shrunk (region, type) cell fits the current remaining count. Only that
// cell needs checking: every other cell's remaining equals the probed
// state's, which the chain fit when it was computed, and per-cell usage is
// subtractive so a chain whose totals fit is enumerable step by step.
func (t *task) chainFitsShrunkCell(n *dpNode, rs *regionState) bool {
	region := t.s.incCell / len(rs.types)
	typeIdx := t.s.incCell % len(rs.types)
	used := 0
	for cur := n; cur != nil; cur = cur.next {
		if cur.choice.region != region {
			continue
		}
		for _, g := range cur.choice.groups {
			if g.typeIdx == typeIdx {
				used += g.need
			}
		}
	}
	return used <= rs.count(region, typeIdx)
}

// solveWithBudget implements the straggler-approximation loop of Listing 1
// lines 17-32: assume this stage is the straggler, allocate the remaining
// budget to the suffix, and re-adjust when the suffix turns out to contain
// a slower stage. The region state is restored before returning.
func (t *task) solveWithBudget(rs *regionState, layers []int, i, r, d, mbs, nb int, budget float64, choice stageChoice) *dpNode {
	pp := len(layers)
	// Nodes built here outlive the enumeration scratch.
	choice.groups = t.allocGroups(choice.groups)
	applyChoice(rs, choice)
	defer undoChoice(rs, choice)
	if i == pp-1 {
		n := t.leafNode(choice)
		if n.costPerIter(nb) > budget {
			return nil
		}
		return n
	}
	assumed := choice.perMB
	for iter := 0; iter < 4; iter++ {
		costI := choice.rateUSD * float64(nb) * assumed
		rem := budget - costI
		if rem <= 0 {
			return nil
		}
		child := t.solveDP(rs, layers, i+1, r, d, mbs, nb, rem)
		if child == nil {
			return nil
		}
		node := t.combine(choice, child)
		if node.costPerIter(nb) <= budget {
			return node
		}
		if child.straggler <= assumed {
			// Assumption held but the combined cost still busts the
			// budget: infeasible with this stage choice.
			return nil
		}
		assumed = child.straggler
	}
	return nil
}

func (t *task) leafNode(c stageChoice) *dpNode {
	n := t.newNode()
	*n = dpNode{
		choice: c, straggler: c.perMB, sumTime: c.perMB,
		maxSync: c.sync, rateUSD: c.rateUSD,
	}
	return n
}

func (t *task) combine(c stageChoice, child *dpNode) *dpNode {
	return t.materialise(c, child, statsOf(c, child))
}

func applyChoice(rs *regionState, c stageChoice) {
	for _, g := range c.groups {
		rs.addCount(c.region, g.typeIdx, -g.need)
	}
}

func undoChoice(rs *regionState, c stageChoice) {
	for _, g := range c.groups {
		rs.addCount(c.region, g.typeIdx, g.need)
	}
}

// stageCombos returns the feasible resource compositions for one stage in
// one region under the current availability. The scored composition list
// is availability-independent — perMB, sync, and rateUSD are functions of
// the stage shape, never of the remaining counts — so it is enumerated and
// scored once per (stage, region) per DP-degree scan (buildCombos) and
// each call only filters it against the live availability row. Filtering a
// superset enumerated in the same nested order yields exactly the
// sequence the unscanned enumeration produced, so every downstream
// comparison sees the identical candidate stream.
//
// The returned slice lives in a per-depth scratch buffer owned by the
// task: it is valid until the next stageCombos call at the same stage
// index. The group compositions inside it live in the per-scan cache and
// stay valid for the whole scan; callers clone what outlives the scan.
func (t *task) stageCombos(rs *regionState, region, layers, stage, pp, d, mbs, nb int) []stageChoice {
	// The cell arrays are sized here, not in init: a warm task whose scans
	// are served from the snapshot never enumerates a combo, so it never
	// pays for them.
	if cells := pp * len(rs.regions); len(t.comboOK) < cells {
		t.comboCache = make([][]stageChoice, cells)
		t.comboGroups = make([][]replicaGroup, cells)
		t.comboOK = make([]bool, cells)
	}
	idx := stage*len(rs.regions) + region
	if !t.comboOK[idx] {
		t.buildCombos(rs, region, layers, stage, pp, d, mbs, nb, idx)
		t.comboOK[idx] = true
	}
	// Hoist the region's availability row: the state is not mutated while
	// one filter pass runs, so the per-combo feasibility checks below read
	// a flat row instead of re-unpacking lanes per group. Groups within
	// one composition use distinct types, so a per-group check equals the
	// summed check.
	avail := t.availBuf[:0]
	for ti := range rs.types {
		avail = append(avail, rs.count(region, ti))
	}
	t.availBuf = avail
	cache := t.comboCache[idx]
	out := t.combosBuf[stage][:0]
	for ci := range cache {
		c := &cache[ci]
		ok := true
		for _, g := range c.groups {
			if avail[g.typeIdx] < g.need {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, *c)
		}
	}
	t.combosBuf[stage] = out
	return out
}

// buildCombos enumerates and scores every composition for one stage in one
// region, ignoring availability: D replicas split across at most two GPU
// types (generate_combos in Listing 1), with TP per type fixed by H2's
// minimum (plus one doubling, the "scaling heuristic"). Without H2 every
// power-of-two TP is tried. Compositions the evaluator rejects (no timing,
// OOM) are dropped here; availability is the caller's filter.
func (t *task) buildCombos(rs *regionState, region, layers, stage, pp, d, mbs, nb, idx int) {
	opts := t.optsBuf[:0]
	tps := t.tpsBuf[:0]
	for ti, g := range rs.types {
		nodeGPUs := t.s.nodeCap[ti]
		start := len(tps)
		if t.pl.Opts.Heuristics.H2MinTP {
			min := t.minTP(g, ti, layers, stage, pp, mbs, nb)
			if min == 0 {
				continue // cannot fit this stage on this type at all
			}
			tps = append(tps, min)
			if min*2 <= nodeGPUs {
				tps = append(tps, min*2)
			}
		} else {
			for tp := 1; tp <= nodeGPUs; tp *= 2 {
				tps = append(tps, tp)
			}
		}
		opts = append(opts, typeOption{ti: ti, lo: start, hi: len(tps)})
	}
	t.optsBuf, t.tpsBuf = opts, tps

	out := t.comboCache[idx][:0]
	arena := t.comboGroups[idx][:0]
	emit := func(groups []replicaGroup) {
		c, ok := t.scoreChoice(rs, region, groups, layers, stage, pp, mbs, d)
		if ok {
			out = append(out, c)
		}
	}
	// Single-type compositions.
	for _, o := range opts {
		for _, tp := range tps[o.lo:o.hi] {
			start := len(arena)
			arena = append(arena, replicaGroup{typeIdx: o.ti, count: d, tp: tp, need: d * tp})
			emit(arena[start:len(arena):len(arena)])
		}
	}
	// Two-type mixes (the heterogeneous per-stage replicas of §4.4). The
	// split points are sampled at quartiles plus the extremes; exhaustive
	// splits add little beyond these and blow up the search.
	var ks [5]int
	nks := 0
	for _, k := range [5]int{1, d / 4, d / 2, 3 * d / 4, d - 1} {
		if k < 1 || k >= d {
			continue
		}
		dup := false
		for _, seen := range ks[:nks] {
			if seen == k {
				dup = true
				break
			}
		}
		if !dup {
			ks[nks] = k
			nks++
		}
	}
	for ai := 0; ai < len(opts); ai++ {
		for bi := ai + 1; bi < len(opts); bi++ {
			for _, tpa := range tps[opts[ai].lo:opts[ai].hi] {
				for _, tpb := range tps[opts[bi].lo:opts[bi].hi] {
					for _, k := range ks[:nks] {
						start := len(arena)
						arena = append(arena,
							replicaGroup{typeIdx: opts[ai].ti, count: k, tp: tpa, need: k * tpa},
							replicaGroup{typeIdx: opts[bi].ti, count: d - k, tp: tpb, need: (d - k) * tpb})
						emit(arena[start:len(arena):len(arena)])
					}
				}
			}
		}
	}
	t.comboCache[idx], t.comboGroups[idx] = out, arena
}

// typeOption indexes one GPU type's candidate TP degrees inside the shared
// tps scratch buffer.
type typeOption struct {
	ti     int
	lo, hi int
}

// scoreChoice computes the per-stage DP metrics for a composition, serving
// every repeated evaluator query from the per-task caches.
func (t *task) scoreChoice(rs *regionState, region int, groups []replicaGroup, layers, stage, pp, mbs, d int) (stageChoice, bool) {
	c := stageChoice{region: region, groups: groups}
	minTP := 0
	for _, g := range groups {
		tm, ok := t.stageTimeAt(stage, g.typeIdx, g.tp)
		if !ok {
			return c, false
		}
		if tm > c.perMB {
			c.perMB = tm
		}
		c.rateUSD += t.s.ratePerSec[g.typeIdx] * float64(g.count*g.tp)
		if minTP == 0 || g.tp < minTP {
			minTP = g.tp
		}
		// Without H2, reject compositions whose workers OOM outright
		// (Sailor never emits OOM plans either way; this keeps the
		// no-heuristics ablation semantically identical, just slower).
		if !t.fitsMemoryAt(stage, g.typeIdx, g.tp) {
			return c, false
		}
	}
	if d > 1 {
		// Within-region ring (H5/H6), scored at the inter-zone fit.
		c.sync = t.dpSyncTimeAt(stage, minTP, d)
	}
	return c, true
}

// taskTPSlots bounds the tensor-parallel degrees the dense per-task caches
// index: powers of two up to 16, beyond every node size in the catalogue.
const taskTPSlots = 5

// tpSlotOf maps a power-of-two TP degree to its cache slot, or -1 (which
// routes the query to the uncached evaluator call — it cannot occur with
// the current hardware catalogue, where TP degrees are node-bounded powers
// of two).
func tpSlotOf(tp int) int {
	if tp <= 0 || tp&(tp-1) != 0 || tp > 1<<(taskTPSlots-1) {
		return -1
	}
	s := 0
	for 1<<s != tp {
		s++
	}
	return s
}

// cacheStates for the dense lazily-filled per-task tables.
const (
	cacheEmpty uint8 = iota
	cacheOK
	cacheBad
)

// denseIdx flattens (stage, typeIdx, slot).
func (t *task) denseIdx(stage, ti, slot int) int {
	return (stage*len(t.s.rs.types)+ti)*taskTPSlots + slot
}

// stageTimeAt resolves StageComputeTimeWith for one stage of the task's
// layer partition through a dense per-task table — the per-combo map
// lookups this replaces were the hottest instructions of the heterogeneous
// search.
func (t *task) stageTimeAt(stage, ti, tp int) (float64, bool) {
	slot := tpSlotOf(tp)
	if slot < 0 {
		tm, err := t.stageTimeRaw(stage, ti, tp)
		return tm, err == nil
	}
	i := t.denseIdx(stage, ti, slot)
	if st := t.stageTok[i]; st != cacheEmpty {
		return t.stageT[i], st == cacheOK
	}
	tm, err := t.stageTimeRaw(stage, ti, tp)
	if err != nil {
		t.stageTok[i] = cacheBad
		return 0, false
	}
	t.stageT[i], t.stageTok[i] = tm, cacheOK
	return tm, true
}

func (t *task) stageTimeRaw(stage, ti, tp int) (float64, error) {
	last := stage == len(t.partition)-1
	return t.pl.Sim.StageComputeTimeWith(t.s.rs.types[ti], tp, t.mbs, t.partition[stage], last, t.recompute)
}

// fitsMemoryAt resolves the per-worker memory check through the dense
// per-task table.
func (t *task) fitsMemoryAt(stage, ti, tp int) bool {
	slot := tpSlotOf(tp)
	if slot < 0 {
		return t.fitsMemoryRaw(stage, ti, tp)
	}
	i := t.denseIdx(stage, ti, slot)
	if st := t.fitTok[i]; st != cacheEmpty {
		return st == cacheOK
	}
	ok := t.fitsMemoryRaw(stage, ti, tp)
	if ok {
		t.fitTok[i] = cacheOK
	} else {
		t.fitTok[i] = cacheBad
	}
	return ok
}

func (t *task) fitsMemoryRaw(stage, ti, tp int) bool {
	pp := len(t.partition)
	w := memory.WorkerShape{
		Layers: t.partition[stage], StageIdx: stage, PP: pp, TP: tp,
		MicroBS: t.mbs, NumMicro: pp, FirstStg: stage == 0, LastStg: stage == pp-1,
		Recompute: t.recompute,
	}
	spec, err := hardware.Lookup(t.s.rs.types[ti])
	if err != nil {
		return false
	}
	return memory.Fits(memory.WorkerFootprint(t.pl.Cfg, w).Total(), spec.MemoryBytes)
}

// dpSyncTimeAt resolves DPSyncTime through the per-scan dense table (the
// sync time depends on the scan's DP degree, so resetMemo clears it).
func (t *task) dpSyncTimeAt(stage, minTP, d int) float64 {
	slot := tpSlotOf(minTP)
	if slot < 0 {
		bytes := int64(t.partition[stage]) * t.pl.Cfg.GradBytesPerLayer(minTP)
		return t.pl.Sim.DPSyncTime(bytes, d)
	}
	i := stage*taskTPSlots + slot
	if t.syncTok[i] == cacheOK {
		return t.syncT[i]
	}
	bytes := int64(t.partition[stage]) * t.pl.Cfg.GradBytesPerLayer(minTP)
	v := t.pl.Sim.DPSyncTime(bytes, d)
	t.syncT[i], t.syncTok[i] = v, cacheOK
	return v
}

// minTP resolves heuristic H2's minimum viable tensor-parallel degree
// through the search-wide shared cache. The in-flight count saturates at
// the pipeline depth, so the cache key does not include nb beyond that cap
// (the paper notes the minimum is independent of availability and reusable
// across replans).
func (t *task) minTP(g core.GPUType, ti, layers, stage, pp, mbs, nb int) int {
	if nb > pp {
		nb = pp
	}
	// Dense per-task front for the sharded search-wide cache: pp, mbs and
	// recompute are fixed within a task and layers is a function of stage,
	// so (stage, ti, capped nb) is a complete key and the common case is
	// one array load instead of a hash, a lock and a map probe.
	idx := (stage*len(t.s.rs.types)+ti)*(pp+1) + nb
	if v := t.minTPT[idx]; v >= 0 {
		return int(v)
	}
	k := minTPKey{g, layers, stage, pp, mbs, nb, t.recompute}
	v, ok := t.s.minTP.get(k)
	if !ok {
		v = memory.MinTPWith(t.pl.Cfg, g, layers, stage, pp, mbs, nb, t.recompute)
		t.s.minTP.put(k, v)
	}
	t.minTPT[idx] = int16(v)
	return v
}

// --- plan materialisation --------------------------------------------------

// buildPlan converts a DP solution chain into a concrete core.Plan, mapping
// the consolidated region back onto real zones of the original pool.
func (t *task) buildPlan(node *dpNode, layers []int, mbs int, origPool *cluster.Pool) (core.Plan, bool) {
	pp := len(layers)
	plan := core.Plan{MicroBatchSize: mbs, Recompute: t.recompute, Stages: make([]core.StagePlan, 0, pp)}
	// Remaining availability per real zone for zone assignment.
	remain := origPool.Clone()
	zonesByRegion := map[string][]core.Zone{}
	for _, z := range remain.Zones() {
		zonesByRegion[z.Region] = append(zonesByRegion[z.Region], z)
		if !t.pl.Opts.Heuristics.H6MergeZones {
			// Zone-granular search: region names are zone names.
			zonesByRegion[z.Name] = append(zonesByRegion[z.Name], z)
		}
	}
	first := 0
	cur := node
	for i := 0; i < pp; i++ {
		if cur == nil {
			return core.Plan{}, false
		}
		ch := cur.choice
		regionName := t.s.rs.regions[ch.region]
		st := core.StagePlan{FirstLayer: first, NumLayers: layers[i]}
		for _, g := range ch.groups {
			gpu := t.s.rs.types[g.typeIdx]
			for r := 0; r < g.count; r++ {
				z, ok := pickZone(remain, zonesByRegion, regionName, gpu, g.tp)
				if !ok {
					return core.Plan{}, false
				}
				st.Replicas = append(st.Replicas, core.StageReplica{GPU: gpu, TP: g.tp, Zone: z})
			}
		}
		plan.Stages = append(plan.Stages, st)
		first += layers[i]
		cur = cur.next
	}
	return plan, true
}

// pickZone places one replica (tp GPUs of one type, one zone per H1) in the
// real zone of the region with the most remaining capacity.
func pickZone(remain *cluster.Pool, zonesByRegion map[string][]core.Zone, region string, g core.GPUType, tp int) (core.Zone, bool) {
	var best core.Zone
	bestN := -1
	for _, z := range zonesByRegion[region] {
		if n := remain.Available(z, g); n >= tp && n > bestN {
			best, bestN = z, n
		}
	}
	if bestN < 0 {
		return core.Zone{}, false
	}
	remain.Add(best, g, -tp)
	return best, true
}
