package planner

// The per-stage dynamic program of Listing 1: assign resources to pipeline
// stages suffix by suffix, memoizing on the remaining resource state, with
// an exact budget-threading recursion for shallow pipelines and a beam-
// bounded fallback for deep ones. All methods run on a single task — the
// DP itself is sequential; parallelism lives one level up in search.go.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/memory"
)

// replicaGroup is a homogeneous subset of one stage's DP replicas.
type replicaGroup struct {
	typeIdx int
	gpu     core.GPUType
	count   int
	tp      int
}

// stageChoice is the resource assignment for one stage: a region and the
// composition of its D replicas.
type stageChoice struct {
	region     int
	regionName string
	groups     []replicaGroup
	// perMB is the per-microbatch fwd+bwd time of the slowest replica.
	perMB float64
	// sync is the estimated gradient all-reduce time for the stage.
	sync float64
	// rateUSD is the USD/second of the stage's GPUs.
	rateUSD float64
}

// dpNode is the memoized solution of the suffix starting at one stage.
type dpNode struct {
	choice    stageChoice
	next      *dpNode
	straggler float64 // max per-microbatch stage time over the suffix
	sumTime   float64 // warm-up/cool-down contribution of the suffix
	maxSync   float64
	rateUSD   float64 // total USD/second over the suffix
}

// metric is the DP's objective: the §4.2.2 iteration-time decomposition.
func (n *dpNode) metric(nb int) float64 {
	return float64(nb)*n.straggler + n.sumTime + n.maxSync
}

// costPerIter approximates the suffix cost under the §4.2.3 assumption that
// the straggler term dominates the iteration.
func (n *dpNode) costPerIter(nb int) float64 {
	return n.rateUSD * float64(nb) * n.straggler
}

// sig is a stable signature of the node's choice chain, used only to break
// exact metric ties deterministically (so it is computed lazily and the
// cost never shows on the hot path).
func (n *dpNode) sig() string {
	var b strings.Builder
	for c := n; c != nil; c = c.next {
		fmt.Fprintf(&b, "%d;", c.choice.region)
		for _, g := range c.choice.groups {
			fmt.Fprintf(&b, "%d:%d:%d,", g.typeIdx, g.count, g.tp)
		}
		b.WriteByte('|')
	}
	return b.String()
}

// solveDP assigns resources to stages i..P-1, starting the region scan at
// ri (H5: stages consume regions monotonically, so data-parallel groups
// never straddle a region boundary while the pipeline may).
func (t *task) solveDP(rs *regionState, layers []int, i, ri, d, mbs, nb int, budget float64) *dpNode {
	if t.s.expired() {
		return nil
	}
	pp := len(layers)
	memoKey := ""
	if budget <= 0 { // unconstrained: memoization is sound
		memoKey = rs.key(i, ri)
		if n, ok := t.dpMemo[memoKey]; ok {
			return n
		}
		// Warm start: consult the snapshot of DP memos persisted by earlier
		// replans. A hit short-circuits the whole subtree (it neither counts
		// as explored nor recurses), which is where Replan's speedup on
		// churn traces comes from. Hits are re-published into pending so
		// the merge's over-cap eviction keeps the live working set rather
		// than retaining only the latest search's misses.
		if t.warmPrefix != "" {
			full := t.warmPrefix + memoKey
			if n, ok := t.s.warmDP[full]; ok {
				t.s.warmHits.Add(1)
				t.dpMemo[memoKey] = n
				if t.pending == nil {
					t.pending = map[string]*dpNode{}
				}
				t.pending[full] = n
				return n
			}
		}
	}
	t.s.explored.Add(1)

	var best *dpNode
	for r := ri; r < len(rs.regions); r++ {
		combos := t.stageCombos(rs, r, layers[i], i, pp, d, mbs, nb)
		if budget > 0 && len(combos) > budgetBeamWidth {
			// The budget-constrained recursion cannot reuse the memo
			// (Listing 1 threads the remaining budget through solve_dp),
			// so bound its branching with a beam over the fastest
			// per-stage choices; the paper reports a 4x overhead rather
			// than an exponential one, implying similar bounding.
			sort.Slice(combos, func(a, b int) bool { return combos[a].perMB < combos[b].perMB })
			combos = combos[:budgetBeamWidth]
		}
		for _, choice := range combos {
			if t.s.expired() {
				break
			}
			if budget > 0 {
				if n := t.solveWithBudget(rs, layers, i, r, d, mbs, nb, budget, choice); n != nil {
					if best == nil || t.nodeBetter(n, best, nb) {
						best = n
					}
				}
				continue
			}
			rs2 := rs.clone()
			applyChoice(rs2, choice)
			var node *dpNode
			if i == pp-1 {
				node = leafNode(choice)
			} else {
				child := t.solveDP(rs2, layers, i+1, r, d, mbs, nb, 0)
				if child == nil {
					continue
				}
				node = combine(choice, child)
			}
			if best == nil || t.nodeBetter(node, best, nb) {
				best = node
			}
		}
	}
	if memoKey != "" {
		t.dpMemo[memoKey] = best
		if t.warmPrefix != "" && !t.s.expired() {
			// Persist only nodes from uncancelled exploration: a cut-off
			// subtree may have skipped choices, and caching its partial
			// best would poison later replans. nil results (infeasible
			// suffixes) are cached too — knowing a region state cannot
			// host the remaining stages is as reusable as a solution.
			if t.pending == nil {
				t.pending = map[string]*dpNode{}
			}
			t.pending[t.warmPrefix+memoKey] = best
		}
	}
	return best
}

// solveWithBudget implements the straggler-approximation loop of Listing 1
// lines 17-32: assume this stage is the straggler, allocate the remaining
// budget to the suffix, and re-adjust when the suffix turns out to contain
// a slower stage.
func (t *task) solveWithBudget(rs *regionState, layers []int, i, r, d, mbs, nb int, budget float64, choice stageChoice) *dpNode {
	pp := len(layers)
	rs2 := rs.clone()
	applyChoice(rs2, choice)
	if i == pp-1 {
		n := leafNode(choice)
		if n.costPerIter(nb) > budget {
			return nil
		}
		return n
	}
	assumed := choice.perMB
	for iter := 0; iter < 4; iter++ {
		costI := choice.rateUSD * float64(nb) * assumed
		rem := budget - costI
		if rem <= 0 {
			return nil
		}
		child := t.solveDP(rs2.clone(), layers, i+1, r, d, mbs, nb, rem)
		if child == nil {
			return nil
		}
		node := combine(choice, child)
		if node.costPerIter(nb) <= budget {
			return node
		}
		if child.straggler <= assumed {
			// Assumption held but the combined cost still busts the
			// budget: infeasible with this stage choice.
			return nil
		}
		assumed = child.straggler
	}
	return nil
}

func leafNode(c stageChoice) *dpNode {
	return &dpNode{
		choice: c, straggler: c.perMB, sumTime: c.perMB,
		maxSync: c.sync, rateUSD: c.rateUSD,
	}
}

func combine(c stageChoice, child *dpNode) *dpNode {
	n := &dpNode{choice: c, next: child}
	n.straggler = c.perMB
	if child.straggler > n.straggler {
		n.straggler = child.straggler
	}
	n.sumTime = c.perMB + child.sumTime
	n.maxSync = c.sync
	if child.maxSync > n.maxSync {
		n.maxSync = child.maxSync
	}
	n.rateUSD = c.rateUSD + child.rateUSD
	return n
}

func applyChoice(rs *regionState, c stageChoice) {
	for _, g := range c.groups {
		rs.counts[c.region][g.typeIdx] -= g.count * g.tp
	}
}

// stageCombos enumerates resource compositions for one stage in one region:
// D replicas split across at most two GPU types (generate_combos in Listing
// 1), with TP per type fixed by H2's minimum (plus one doubling, the
// "scaling heuristic"). Without H2 every power-of-two TP is tried.
func (t *task) stageCombos(rs *regionState, region, layers, stage, pp, d, mbs, nb int) []stageChoice {
	type typeOption struct {
		ti  int
		tps []int
	}
	var opts []typeOption
	for ti, g := range rs.types {
		if rs.counts[region][ti] <= 0 {
			continue
		}
		node := hardware.DefaultNodeType(g)
		var tps []int
		if t.pl.Opts.Heuristics.H2MinTP {
			min := t.minTP(g, layers, stage, pp, mbs, nb)
			if min == 0 {
				continue // cannot fit this stage on this type at all
			}
			tps = append(tps, min)
			if min*2 <= node.GPUsPerNode {
				tps = append(tps, min*2)
			}
		} else {
			for tp := 1; tp <= node.GPUsPerNode; tp *= 2 {
				tps = append(tps, tp)
			}
		}
		opts = append(opts, typeOption{ti, tps})
	}
	var out []stageChoice
	emit := func(groups []replicaGroup) {
		// Verify availability.
		need := map[int]int{}
		for _, g := range groups {
			need[g.typeIdx] += g.count * g.tp
		}
		for ti, n := range need {
			if rs.counts[region][ti] < n {
				return
			}
		}
		c, ok := t.scoreChoice(rs, region, groups, layers, stage, pp, mbs, d)
		if ok {
			out = append(out, c)
		}
	}
	// Single-type compositions.
	for _, o := range opts {
		for _, tp := range o.tps {
			emit([]replicaGroup{{typeIdx: o.ti, count: d, tp: tp}})
		}
	}
	// Two-type mixes (the heterogeneous per-stage replicas of §4.4). The
	// split points are sampled at quartiles plus the extremes; exhaustive
	// splits add little beyond these and blow up the search.
	splits := func(d int) []int {
		set := map[int]bool{}
		var ks []int
		for _, k := range []int{1, d / 4, d / 2, 3 * d / 4, d - 1} {
			if k >= 1 && k < d && !set[k] {
				set[k] = true
				ks = append(ks, k)
			}
		}
		return ks
	}
	for ai := 0; ai < len(opts); ai++ {
		for bi := ai + 1; bi < len(opts); bi++ {
			for _, tpa := range opts[ai].tps {
				for _, tpb := range opts[bi].tps {
					for _, k := range splits(d) {
						emit([]replicaGroup{
							{typeIdx: opts[ai].ti, count: k, tp: tpa},
							{typeIdx: opts[bi].ti, count: d - k, tp: tpb},
						})
					}
				}
			}
		}
	}
	return out
}

// scoreChoice computes the per-stage DP metrics for a composition.
func (t *task) scoreChoice(rs *regionState, region int, groups []replicaGroup, layers, stage, pp, mbs, d int) (stageChoice, bool) {
	pl := t.pl
	c := stageChoice{region: region, regionName: rs.regions[region], groups: groups}
	last := stage == pp-1
	minTP := 0
	for gi := range groups {
		groups[gi].gpu = rs.types[groups[gi].typeIdx]
	}
	for _, g := range groups {
		gt := g.gpu
		tm, err := pl.Sim.StageComputeTimeWith(gt, g.tp, mbs, layers, last, t.recompute)
		if err != nil {
			return c, false
		}
		if tm > c.perMB {
			c.perMB = tm
		}
		c.rateUSD += pl.Sim.GPUHourUSD(gt) / 3600 * float64(g.count*g.tp)
		if minTP == 0 || g.tp < minTP {
			minTP = g.tp
		}
		// Without H2, reject compositions whose workers OOM outright
		// (Sailor never emits OOM plans either way; this keeps the
		// no-heuristics ablation semantically identical, just slower).
		w := memory.WorkerShape{
			Layers: layers, StageIdx: stage, PP: pp, TP: g.tp,
			MicroBS: mbs, NumMicro: pp, FirstStg: stage == 0, LastStg: last,
			Recompute: t.recompute,
		}
		spec, err := hardware.Lookup(gt)
		if err != nil {
			return c, false
		}
		if !memory.Fits(memory.WorkerFootprint(pl.Cfg, w).Total(), spec.MemoryBytes) {
			return c, false
		}
	}
	if d > 1 {
		bytes := int64(layers) * pl.Cfg.GradBytesPerLayer(minTP)
		// Within-region ring (H5/H6), scored at the inter-zone fit.
		c.sync = pl.Sim.DPSyncTime(bytes, d)
	}
	return c, true
}

// minTP resolves heuristic H2's minimum viable tensor-parallel degree
// through the search-wide shared cache. The in-flight count saturates at
// the pipeline depth, so the cache key does not include nb beyond that cap
// (the paper notes the minimum is independent of availability and reusable
// across replans).
func (t *task) minTP(g core.GPUType, layers, stage, pp, mbs, nb int) int {
	if nb > pp {
		nb = pp
	}
	k := minTPKey{g, layers, stage, pp, mbs, nb, t.recompute}
	if v, ok := t.s.minTP.get(k); ok {
		return v
	}
	v := memory.MinTPWith(t.pl.Cfg, g, layers, stage, pp, mbs, nb, t.recompute)
	t.s.minTP.put(k, v)
	return v
}

// --- plan materialisation --------------------------------------------------

// buildPlan converts a DP solution chain into a concrete core.Plan, mapping
// the consolidated region back onto real zones of the original pool.
func (t *task) buildPlan(node *dpNode, layers []int, mbs int, origPool *cluster.Pool) (core.Plan, bool) {
	pp := len(layers)
	plan := core.Plan{MicroBatchSize: mbs, Recompute: t.recompute, Stages: make([]core.StagePlan, 0, pp)}
	// Remaining availability per real zone for zone assignment.
	remain := origPool.Clone()
	zonesByRegion := map[string][]core.Zone{}
	for _, z := range remain.Zones() {
		zonesByRegion[z.Region] = append(zonesByRegion[z.Region], z)
		if !t.pl.Opts.Heuristics.H6MergeZones {
			// Zone-granular search: region names are zone names.
			zonesByRegion[z.Name] = append(zonesByRegion[z.Name], z)
		}
	}
	first := 0
	cur := node
	for i := 0; i < pp; i++ {
		if cur == nil {
			return core.Plan{}, false
		}
		ch := cur.choice
		st := core.StagePlan{FirstLayer: first, NumLayers: layers[i]}
		for _, g := range ch.groups {
			for r := 0; r < g.count; r++ {
				z, ok := pickZone(remain, zonesByRegion, ch.regionName, g.gpu, g.tp)
				if !ok {
					return core.Plan{}, false
				}
				st.Replicas = append(st.Replicas, core.StageReplica{GPU: g.gpu, TP: g.tp, Zone: z})
			}
		}
		plan.Stages = append(plan.Stages, st)
		first += layers[i]
		cur = cur.next
	}
	return plan, true
}

// pickZone places one replica (tp GPUs of one type, one zone per H1) in the
// real zone of the region with the most remaining capacity.
func pickZone(remain *cluster.Pool, zonesByRegion map[string][]core.Zone, region string, g core.GPUType, tp int) (core.Zone, bool) {
	var best core.Zone
	bestN := -1
	for _, z := range zonesByRegion[region] {
		if n := remain.Available(z, g); n >= tp && n > bestN {
			best, bestN = z, n
		}
	}
	if bestN < 0 {
		return core.Zone{}, false
	}
	remain.Add(best, g, -tp)
	return best, true
}
