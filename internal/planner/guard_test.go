package planner

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/sim"
)

func guardLab(t *testing.T) (model.Config, *sim.Simulator) {
	t.Helper()
	cfg := model.OPT350M()
	prof, err := profiler.Collect(cfg, []core.GPUType{core.A100}, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cfg, sim.New(cfg, prof)
}

func guardPlan(z core.Zone, n, tp int) core.Plan {
	reps := make([]core.StageReplica, n)
	for i := range reps {
		reps[i] = core.StageReplica{GPU: core.A100, TP: tp, Zone: z}
	}
	return core.Plan{MicroBatchSize: 1, Stages: []core.StagePlan{
		{FirstLayer: 0, NumLayers: 24, Replicas: reps},
	}}
}

func TestCapacityGuardCheck(t *testing.T) {
	z := cluster.GCPZone("us-central1", 'a')
	g := NewCapacityGuard(cluster.NewPool().Set(z, core.A100, 8))
	if err := g.Check(guardPlan(z, 2, 4)); err != nil {
		t.Errorf("fitting plan rejected: %v", err)
	}
	err := g.Check(guardPlan(z, 4, 4))
	if err == nil {
		t.Fatal("oversubscribing plan admitted")
	}
	if !strings.Contains(err.Error(), "us-central1-a") {
		t.Errorf("guard error should name the deficient cell: %v", err)
	}
	// nil guard and nil view admit everything.
	if err := NewCapacityGuard(nil).Check(guardPlan(z, 100, 4)); err != nil {
		t.Errorf("nil guard must admit: %v", err)
	}
	var zero *CapacityGuard
	if err := zero.Check(guardPlan(z, 100, 4)); err != nil {
		t.Errorf("nil receiver must admit: %v", err)
	}
}

// TestCapacityGuardClonesView: mutating the pool after NewCapacityGuard
// must not change admissions mid-search.
func TestCapacityGuardClonesView(t *testing.T) {
	z := cluster.GCPZone("us-central1", 'a')
	view := cluster.NewPool().Set(z, core.A100, 8)
	g := NewCapacityGuard(view)
	view.Add(z, core.A100, -8)
	if err := g.Check(guardPlan(z, 2, 4)); err != nil {
		t.Errorf("guard must hold its own snapshot: %v", err)
	}
}

// TestGuardInSearch: a guard matching the search pool never perturbs the
// result; a guard strictly smaller than the pool rejects the final plan and
// drops a warm seed that no longer fits the fleet's free view.
func TestGuardInSearch(t *testing.T) {
	cfg, ev := guardLab(t)
	z := cluster.GCPZone("us-central1", 'a')
	pool := cluster.NewPool().Set(z, core.A100, 8)
	base := Options{Objective: core.MaxThroughput, Heuristics: AllHeuristics(), Workers: 1}

	plain, err := New(cfg, ev, base).Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	guarded := base
	guarded.Guard = NewCapacityGuard(pool)
	same, err := New(cfg, ev, guarded).Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	if same.Plan.String() != plain.Plan.String() || same.Explored != plain.Explored {
		t.Errorf("matching guard changed the search: %s (%d) vs %s (%d)",
			same.Plan, same.Explored, plain.Plan, plain.Explored)
	}

	// A free view with no capacity rejects whatever the search finds.
	tight := base
	tight.Guard = NewCapacityGuard(cluster.NewPool())
	if _, err := New(cfg, ev, tight).Plan(pool); err == nil ||
		!strings.Contains(err.Error(), "capacity guard") {
		t.Errorf("empty-view guard = %v, want capacity-guard error", err)
	}

	// A warm seed that exceeds the guard view is not used as a fallback.
	pl := New(cfg, ev, tight)
	if seed := pl.seedFromPrev(plain.Plan, pool); seed != nil {
		t.Error("seed exceeding the guard view must be dropped")
	}
}
