package planner

// The fleet capacity guard: a thin validation layer between the planner and
// a shared cluster-state ledger. In fleet mode (see internal/fleet and
// sailor.Service) the pool a search runs over is a *free-capacity view* of
// the whole fleet, not a caller-owned quota; the guard re-checks every plan
// the planner is about to return — including a warm-start seed carried over
// from a previous deployment — against that view, so a plan that would
// oversubscribe the fleet can never leave the search. Validation reuses
// cluster.Pool.CanFit, the same demand accounting the ledger's leases use,
// which keeps "fits the guard" and "will be granted a lease" the same
// predicate up to concurrent ledger motion (which the ledger itself arbitrates
// under its lock).

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
)

// CapacityGuard validates candidate plans against a free-capacity view. The
// zero value (and a nil guard) admits everything.
type CapacityGuard struct {
	view *cluster.Pool
}

// NewCapacityGuard returns a guard over a free-capacity snapshot. The view
// is cloned, so later mutation by the caller cannot skew admissions
// mid-search.
func NewCapacityGuard(view *cluster.Pool) *CapacityGuard {
	if view == nil {
		return nil
	}
	return &CapacityGuard{view: view.Clone()}
}

// Check reports whether the view can host the plan's full GPU demand.
func (g *CapacityGuard) Check(plan core.Plan) error {
	if g == nil || g.view == nil {
		return nil
	}
	if !g.view.CanFit(plan) {
		// Subtract names the first deficient cell; CanFit only says "no".
		err := g.view.Clone().Subtract(plan)
		return fmt.Errorf("planner: plan exceeds the capacity guard's free view: %w", err)
	}
	return nil
}
