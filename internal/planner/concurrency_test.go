package planner

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
)

// TestWorkerCountDeterminism is the contract of the parallel search: any
// worker count returns the identical plan, estimate, and exploration count,
// because per-candidate evaluation is deterministic, H3/H4 early stops are
// per-worker, and ties break on the plan signature.
func TestWorkerCountDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  model.Config
		pool *cluster.Pool
		gpus []core.GPUType
		obj  core.Objective
	}{
		{
			name: "homogeneous-throughput",
			cfg:  model.OPT350M(),
			pool: cluster.NewPool().Set(zoneA, core.A100, 64),
			gpus: []core.GPUType{core.A100},
			obj:  core.MaxThroughput,
		},
		{
			name: "heterogeneous-throughput",
			cfg:  model.OPT350M(),
			pool: cluster.NewPool().Set(zoneA, core.A100, 32).Set(zoneA, core.V100, 32),
			gpus: []core.GPUType{core.A100, core.V100},
			obj:  core.MaxThroughput,
		},
		{
			name: "geo-min-cost",
			cfg:  model.OPT350M(),
			pool: cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneW, core.A100, 16),
			gpus: []core.GPUType{core.A100},
			obj:  core.MinCost,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var ref Result
			for i, workers := range []int{1, 8} {
				pl := newPlanner(t, tc.cfg, Options{Objective: tc.obj, Workers: workers}, tc.gpus...)
				res, err := pl.Plan(tc.pool)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if i == 0 {
					ref = res
					continue
				}
				if got, want := res.Plan.String(), ref.Plan.String(); got != want {
					t.Errorf("plan differs between workers=1 and workers=%d:\n%s\n%s", workers, want, got)
				}
				if res.Estimate.IterTime != ref.Estimate.IterTime {
					t.Errorf("IterTime differs: %v vs %v", ref.Estimate.IterTime, res.Estimate.IterTime)
				}
				if res.Estimate.Cost() != ref.Estimate.Cost() {
					t.Errorf("Cost differs: %v vs %v", ref.Estimate.Cost(), res.Estimate.Cost())
				}
				if res.Estimate.PeakMemory != ref.Estimate.PeakMemory {
					t.Errorf("PeakMemory differs: %v vs %v", ref.Estimate.PeakMemory, res.Estimate.PeakMemory)
				}
				if res.Explored != ref.Explored {
					t.Errorf("Explored differs: %d vs %d", ref.Explored, res.Explored)
				}
			}
		})
	}
}

// TestPlanContextAlreadyCancelled: a cancelled context returns promptly
// with no plan and without leaking search goroutines.
func TestPlanContextAlreadyCancelled(t *testing.T) {
	cfg := model.OPT350M()
	pl := newPlanner(t, cfg, Options{Objective: core.MaxThroughput, Workers: 8}, core.A100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 128)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := pl.PlanContext(ctx, pool)
	if err == nil {
		t.Fatal("want error from cancelled context, got plan")
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("error should wrap the context error: %v", err)
	}
	if len(res.Plan.Stages) != 0 {
		t.Fatalf("cancelled search must not return a plan: %s", res.Plan)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled search took %v; want a prompt return", elapsed)
	}
	// Workers and the context watcher must all have exited.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestPlanContextCancelMidSearch: cancelling a running search stops it at
// the next candidate boundary; a best-so-far plan, if any, is returned.
func TestPlanContextCancelMidSearch(t *testing.T) {
	cfg := model.GPTNeo27B()
	pl := newPlanner(t, cfg, Options{Objective: core.MaxThroughput, Workers: 4}, core.A100, core.V100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 128).Set(zoneA, core.V100, 384)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := pl.PlanContext(ctx, pool)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation not honored: searched for %v", elapsed)
	}
	if err == nil {
		// Best-so-far semantics: the partial result must still be valid.
		if verr := res.Plan.Validate(cfg.Layers); verr != nil {
			t.Fatalf("best-so-far plan invalid: %v", verr)
		}
	}
}

// TestPlanContextHonorsBothDeadlineAndContext: Options.Deadline still caps
// the search when the caller context has no deadline of its own.
func TestPlanContextDeadlineStillApplies(t *testing.T) {
	cfg := model.GPTNeo27B()
	pl := newPlanner(t, cfg, Options{
		Objective: core.MaxThroughput,
		Deadline:  50 * time.Millisecond,
		Workers:   2,
	}, core.A100, core.V100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 128).Set(zoneA, core.V100, 384)
	start := time.Now()
	_, _ = pl.PlanContext(context.Background(), pool)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Options.Deadline ignored under PlanContext: %v", elapsed)
	}
}
