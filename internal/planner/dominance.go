package planner

// Dominance pruning across GPU-type stage compositions: inside one solveDP
// state, a candidate composition is skipped — before its whole child subtree
// is recursed into — when it is dominated by an already-enumerated sibling,
// meaning even the best completion the candidate could possibly reach loses
// strictly to the suffix the sibling already completed.
//
// Why the comparison goes through an admissible completion bound instead of
// a field-by-field filter over the compositions themselves: two siblings
// leave different remaining-capacity vectors behind, so their child states
// are different memo entries, and the suffix chosen under the looser state
// does not in general combine field-for-field better at this stage (the
// straggler and sync terms compose through max, which has no optimal
// substructure). Pruning is exact only against a bound that holds for every
// completion of the dominated composition:
//
//	metric(choice, any child) = nb*straggler + sumTime + maxSync
//	                          >= nb*max(perMB, sufMax) + perMB + sufSum + sync
//
// where sufSum and sufMax are the sum and maximum of the per-stage floors of
// the remaining stages: for every suffix stage, the fastest fwd+bwd time any
// available GPU type and power-of-two TP degree can quote for that stage's
// layer slice (resolved through the same dense stage-time table the search
// itself uses, so the floors are exactly the evaluator's own numbers). Every
// completion must pay at least sufSum in warm-up/cool-down time and its
// straggler can never beat the slowest per-stage floor, so a strict loss on
// the bound is a strict loss on the real metric and the composition can
// never win the state's argmax — ties are untouched, the memoized winner is
// unchanged, and plans stay bit-identical with the knob on or off (asserted
// by TestDominancePruningExact). Only Explored shrinks: a pruned
// composition's child states are never visited, which is where the
// heterogeneous cold search spends its time.
//
// In the cost-lean pass the comparison order puts the resource cost rate
// first, so the bound used there is the rate one: the composition's own
// rate plus at least rest*d GPUs (TP >= 1) of the cheapest available type.
//
// The same discipline as prune.go applies: bounds are scaled by pruneSafety
// so floating-point reassociation can never flip an exact tie, pruning fires
// only on strict inequality, and it activates only for evaluators declaring
// the BoundPrunable admissibility property. Options.DisableDominancePruning
// (sailor.WithoutDominancePruning) turns it off for ablations; like
// DisableBoundPruning it is excluded from the warm-cache fingerprint because
// cached entries are pure functions of their keys either way.

// initDominance resolves the per-task dominance-bound inputs for one layer
// partition: the per-stage time floors (folded into suffix sums and suffix
// maxima) and the cheapest GPU rate for the cost-lean comparison.
func (t *task) initDominance(layers []int) {
	t.domOn = false
	if t.pl.Opts.DisableDominancePruning || !t.s.pruneOK {
		return
	}
	eb := t.s.evalBoundsFor(t.mbs, t.recompute)
	t.domMinRate = eb.minRate
	pp := len(layers)
	if cap(t.domSufSum) < pp+1 {
		t.domSufSum = make([]float64, pp+1)
		t.domSufMax = make([]float64, pp+1)
	} else {
		t.domSufSum = t.domSufSum[:pp+1]
		t.domSufMax = t.domSufMax[:pp+1]
	}
	t.domSufSum[pp], t.domSufMax[pp] = 0, 0
	for s := pp - 1; s >= 0; s-- {
		// The floor sweeps the types available anywhere at task start;
		// availability only shrinks during the scan, so the minimum over
		// this superset stays a valid floor for every reachable state.
		floor := 0.0
		for ti := range t.s.rs.types {
			avail := false
			for ri := range t.s.rs.regions {
				if t.s.rs.count(ri, ti) > 0 {
					avail = true
					break
				}
			}
			if !avail {
				continue
			}
			for tp := 1; tp <= t.s.nodeCap[ti]; tp *= 2 {
				if v, ok := t.stageTimeAt(s, ti, tp); ok && (floor == 0 || v < floor) {
					floor = v
				}
			}
		}
		if floor == 0 {
			return // a stage with no admissible time: no bound can be formed
		}
		t.domSufSum[s] = t.domSufSum[s+1] + floor
		t.domSufMax[s] = floor
		if t.domSufMax[s+1] > floor {
			t.domSufMax[s] = t.domSufMax[s+1]
		}
	}
	t.domOn = true
}

// dominated reports whether a composition at stage i can be skipped: its
// admissible completion bound loses strictly to the state's best
// already-completed sibling suffix on the comparison's primary key.
func (t *task) dominated(c stageChoice, best nodeStats, i, pp, d, nb int) bool {
	if t.costLean {
		rest := pp - 1 - i
		rateLB := (c.rateUSD + float64(rest*d)*t.domMinRate) * pruneSafety
		return rateLB > best.rateUSD
	}
	straggler := c.perMB
	if m := t.domSufMax[i+1]; m > straggler {
		straggler = m
	}
	lb := (float64(nb)*straggler + c.perMB + t.domSufSum[i+1] + c.sync) * pruneSafety
	return lb > best.metric(nb)
}
