package planner

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
)

// deltaChain is a replan sequence whose consecutive pools differ by a
// single-cell shrink (the incremental probe's arming condition), with one
// growth step mixed in to pin the fall-through path. Two GPU types across
// two regions keep the counts matrix at four cells, so every delta is
// confined to one (region, type) cell.
func deltaChain() []*cluster.Pool {
	mk := func(a100A, a100W, v100A int) *cluster.Pool {
		return cluster.NewPool().
			Set(zoneA, core.A100, a100A).
			Set(zoneW, core.A100, a100W).
			Set(zoneA, core.V100, v100A)
	}
	return []*cluster.Pool{
		mk(16, 8, 8),
		mk(15, 8, 8), // -1 A100 us-central1: armed
		mk(15, 8, 6), // -2 V100 us-central1: armed
		mk(15, 4, 6), // -4 A100 us-west1: armed
		mk(16, 8, 8), // growth: falls through to the plain warm path
		mk(16, 8, 7), // -1 V100 us-central1: armed
	}
}

// TestIncrementalReplanMatchesCold is the exactness oracle of the
// incremental probe: replaying a chain of one-cell shrink deltas, every
// warm replan returns byte-identical plans and estimates to cold planning
// on the same pool, at workers 1 and 8, with identical telemetry across
// worker counts.
func TestIncrementalReplanMatchesCold(t *testing.T) {
	cfg := model.OPT350M()
	mk := warmLab(t, cfg, core.A100, core.V100)
	pools := deltaChain()

	coldPlans := make([]string, len(pools))
	for i, pool := range pools {
		cold, err := mk(Options{Objective: core.MaxThroughput}).Plan(pool)
		if err != nil {
			t.Fatalf("pool %d: cold plan: %v", i, err)
		}
		coldPlans[i] = cold.Plan.String()
	}

	type obs struct {
		plan     string
		explored int
		hits     int
	}
	var runs [2][]obs
	for ri, workers := range []int{1, 8} {
		pl := mk(Options{Objective: core.MaxThroughput, Workers: workers, Warm: NewWarmCache()})
		var prev core.Plan
		for i, pool := range pools {
			res, err := pl.Replan(prev, pool)
			if err != nil {
				t.Fatalf("workers=%d pool %d: %v", workers, i, err)
			}
			if res.Plan.String() != coldPlans[i] {
				t.Errorf("workers=%d pool %d: incremental plan differs from cold:\nwarm: %s\ncold: %s",
					workers, i, res.Plan.String(), coldPlans[i])
			}
			runs[ri] = append(runs[ri], obs{res.Plan.String(), res.Explored, res.CacheHits})
			prev = res.Plan
		}
	}
	for i := range runs[0] {
		if runs[0][i] != runs[1][i] {
			t.Errorf("replan %d diverges between workers=1 and workers=8:\n%+v\n%+v",
				i, runs[0][i], runs[1][i])
		}
	}
}

// TestWithoutIncrementalParity pins the ablation knob: the same delta chain
// replayed with DisableIncremental on and off returns byte-identical plans
// and estimates, and the probe visibly pays for itself — with it on, at
// least one armed step explores strictly fewer nodes.
func TestWithoutIncrementalParity(t *testing.T) {
	cfg := model.OPT350M()
	mk := warmLab(t, cfg, core.A100, core.V100)
	pools := deltaChain()

	run := func(disable bool) ([]Result, int) {
		pl := mk(Options{Objective: core.MaxThroughput, Warm: NewWarmCache(), DisableIncremental: disable})
		var out []Result
		var prev core.Plan
		explored := 0
		for i, pool := range pools {
			res, err := pl.Replan(prev, pool)
			if err != nil {
				t.Fatalf("disable=%v pool %d: %v", disable, i, err)
			}
			out = append(out, res)
			explored += res.Explored
			prev = res.Plan
		}
		return out, explored
	}
	on, onExplored := run(false)
	off, offExplored := run(true)
	for i := range on {
		if on[i].Plan.String() != off[i].Plan.String() {
			t.Errorf("pool %d: plan differs between incremental on and off:\non:  %s\noff: %s",
				i, on[i].Plan.String(), off[i].Plan.String())
		}
		if on[i].Estimate.IterTime != off[i].Estimate.IterTime || on[i].Estimate.Cost() != off[i].Estimate.Cost() {
			t.Errorf("pool %d: estimate differs between incremental on and off", i)
		}
	}
	if onExplored >= offExplored {
		t.Errorf("incremental probe never reduced exploration: on=%d off=%d", onExplored, offExplored)
	}
}

// TestIncrementalProbeSafety covers the probe's guard rails: a delta
// spanning two cells, a growth delta, and a fingerprint change never arm
// it, and an armed probe whose cached winner no longer fits the shrunk
// cell falls through to the scan. All paths must still match cold plans.
func TestIncrementalProbeSafety(t *testing.T) {
	cfg := model.OPT350M()
	mk := warmLab(t, cfg, core.A100, core.V100)

	base := cluster.NewPool().Set(zoneA, core.A100, 8).Set(zoneA, core.V100, 8)
	cases := []*cluster.Pool{
		cluster.NewPool().Set(zoneA, core.A100, 7).Set(zoneA, core.V100, 7),  // two cells shrink
		cluster.NewPool().Set(zoneA, core.A100, 12).Set(zoneA, core.V100, 8), // growth
		cluster.NewPool().Set(zoneA, core.A100, 2).Set(zoneA, core.V100, 8),  // deep shrink: winner may not fit
		cluster.NewPool().Set(zoneA, core.A100, 8),                           // type disappears: shape change
	}
	pl := mk(Options{Objective: core.MaxThroughput, Warm: NewWarmCache()})
	first, err := pl.Plan(base)
	if err != nil {
		t.Fatal(err)
	}
	prev := first.Plan
	for i, pool := range cases {
		res, err := pl.Replan(prev, pool)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		cold, err := mk(Options{Objective: core.MaxThroughput}).Plan(pool)
		if err != nil {
			t.Fatalf("case %d: cold: %v", i, err)
		}
		if res.Plan.String() != cold.Plan.String() {
			t.Errorf("case %d: plan differs from cold:\nwarm: %s\ncold: %s", i, res.Plan.String(), cold.Plan.String())
		}
		prev = res.Plan
	}
}

// TestPlanKeyMatchesEstKey: the exported speculation-cache key is exactly
// the warm estimate key, so the serving layer and the planner agree on
// what "the same plan" means.
func TestPlanKeyMatchesEstKey(t *testing.T) {
	plan := core.Plan{
		MicroBatchSize: 2,
		Stages: []core.StagePlan{{
			FirstLayer: 0, NumLayers: 24,
			Replicas: []core.StageReplica{{GPU: core.A100, TP: 2, Zone: core.Zone{Region: "r", Name: "z"}}},
		}},
	}
	if PlanKey(plan) != estKey(plan) {
		t.Fatalf("PlanKey diverged from estKey: %q vs %q", PlanKey(plan), estKey(plan))
	}
}
