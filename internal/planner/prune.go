package planner

// Bound-based pruning: before paying for a solveDP pass over one DP degree,
// compute cheap admissible bounds on the best iteration time and cost any
// plan from that (pp, mbs, d) candidate could achieve, and skip the pass
// when even the bound cannot beat the incumbent (the deterministic floor
// job's result or the task's own scan best) or satisfy the constraints.
//
// Exactness contract: a pruned candidate must be one the full search would
// have discarded anyway, so the chosen plan — and therefore every golden,
// determinism, and warm-vs-cold oracle — is identical with pruning on or
// off; only Explored/CacheHits telemetry shrinks. The bounds rest on two
// facts about the simulator's estimate:
//
//   - Iteration time: every stage of every pipeline executes nb forward and
//     nb backward passes back to back or waiting, so the exact 1F1B
//     makespan (nb <= 4*pp) is at least nb times the cheapest possible
//     per-microbatch stage time B — at least minLayers * (fastest per-layer
//     fwd+bwd over every available GPU type and TP degree at this mbs).
//     Beyond the exact window the simulator extrapolates t(4p) +
//     (nb-4p)*period with period = (t(4p)-t(2p))/(2p); t(4p) >= 4p*B as
//     above, and period >= B/2 because the 2p-microbatch schedule is an
//     order-preserving restriction of the 4p one (so every common op
//     finishes no earlier in the longer run), the globally last op of any
//     1F1B run is stage 0's final backward, and after that op the longer
//     run still serializes 2p backwards plus p+1 forwards on stage 0 —
//     at least p*(f0+b0) >= 2p*(B/2) of extra busy time. Hence the bound
//     uses nb units in the exact regime and 4p + (nb-4p)/2 beyond it.
//   - Cost: the compute bill is rate * GPUs * iteration time summed over
//     replicas, and a plan occupies at least pp*d GPUs (TP >= 1), so cost
//     is at least pp*d * cheapest-rate * the iteration-time bound (egress
//     only adds).
//
// Both bounds are scaled by pruneSafety so floating-point reassociation
// between the bound's arithmetic and the simulator's can never flip an
// exact tie; pruning fires only on strict inequality.

import "repro/internal/core"

// pruneSafety shrinks every lower bound by one part in 10^9 — far above
// float64 accumulation error over these expressions, far below any real
// metric difference — so bounds stay admissible under reassociation.
const pruneSafety = 1 - 1e-9

// candidateBounds carries the per-(pp, mbs) quantities the d-loop bounds
// are assembled from.
type candidateBounds struct {
	// minLayers is the smallest per-stage layer count of the partition.
	minLayers int
	// perLayerMin is the fastest per-layer fwd+bwd seconds over every GPU
	// type with available capacity and every TP degree on its node, at the
	// task's microbatch size and recompute mode. Zero disables pruning
	// (no admissible bound could be formed).
	perLayerMin float64
	// minRate is the cheapest USD/second per GPU over the available types.
	minRate float64
}

// candidateBounds resolves the bound inputs for one (layer partition, mbs)
// candidate: the partition's smallest stage joins the per-(mbs, recompute)
// evaluator sweep, which is computed once per search pass and shared by
// every task (the bound depends only on the pool's types, not on the
// partition). Pruning activates only when the evaluator declares the
// admissibility property (BoundPrunable) — an unknown backend searches
// unpruned.
func (t *task) candidateBounds(layers []int) candidateBounds {
	if t.pl.Opts.DisableBoundPruning || !t.s.pruneOK {
		return candidateBounds{}
	}
	eb := t.s.evalBoundsFor(t.mbs, t.recompute)
	b := candidateBounds{minLayers: layers[0], perLayerMin: eb.perLayerMin, minRate: eb.minRate}
	for _, l := range layers {
		if l < b.minLayers {
			b.minLayers = l
		}
	}
	return b
}

// evalBounds is the (mbs, recompute)-dependent part of the pruning bound.
type evalBounds struct {
	perLayerMin float64
	minRate     float64
}

type evalBoundsKey struct {
	mbs       int
	recompute bool
}

// evalBoundsFor computes (once per search pass and key, under a mutex —
// the handful of evaluator queries per key make contention irrelevant)
// the fastest per-layer fwd+bwd over every available GPU type and TP
// degree, and the cheapest per-GPU rate.
func (s *search) evalBoundsFor(mbs int, recompute bool) evalBounds {
	k := evalBoundsKey{mbs, recompute}
	s.boundMu.Lock()
	defer s.boundMu.Unlock()
	if b, ok := s.bounds[k]; ok {
		return b
	}
	var b evalBounds
	for ti, g := range s.rs.types {
		avail := false
		for ri := range s.rs.regions {
			if s.rs.count(ri, ti) > 0 {
				avail = true
				break
			}
		}
		if !avail {
			continue
		}
		for tp := 1; tp <= s.nodeCap[ti]; tp *= 2 {
			v, err := s.pl.Sim.StageComputeTimeWith(g, tp, mbs, 1, false, recompute)
			if err == nil && (b.perLayerMin == 0 || v < b.perLayerMin) {
				b.perLayerMin = v
			}
		}
		if r := s.ratePerSec[ti]; b.minRate == 0 || r < b.minRate {
			b.minRate = r
		}
	}
	if s.bounds == nil {
		s.bounds = map[evalBoundsKey]evalBounds{}
	}
	s.bounds[k] = b
	return b
}

// prunable reports whether the (d, nb) scan can be skipped outright: its
// admissible iteration-time and cost bounds already lose — strictly — to
// the floor job's result, the task's local best, or the constraints.
func (t *task) prunable(b candidateBounds, pp, d, nb int, localBest *candidate) bool {
	if b.perLayerMin == 0 {
		return false
	}
	units := float64(nb)
	if lim := 4 * pp; nb > lim {
		// Extrapolated regime: the 4p prefix is fully contained and each
		// extrapolated microbatch adds at least half a straggler period.
		units = float64(lim) + float64(nb-lim)/2
	}
	iterLB := units * float64(b.minLayers) * b.perLayerMin * pruneSafety
	costLB := float64(pp*d) * b.minRate * iterLB

	cons := t.pl.Opts.Constraints
	// Incumbent-aware budget tightening: under a cost budget no candidate
	// whose cost bound already exceeds the budget can produce any valid
	// plan, whatever the objective.
	if cons.MaxCostPerIter > 0 && costLB > cons.MaxCostPerIter {
		return true
	}
	if cons.MinThroughput > 0 && iterLB > (1/cons.MinThroughput)*(1+1e-9) {
		return true
	}

	// Objective pruning against the best already-known result. Strict
	// comparisons keep exact ties alive for the signature tie-break.
	beaten := func(res *Result) bool {
		if res == nil {
			return false
		}
		if t.pl.Opts.Objective == core.MinCost {
			return costLB > res.Estimate.Cost()
		}
		return iterLB > res.Estimate.IterTime
	}
	if beaten(t.floor) {
		return true
	}
	if localBest != nil && beaten(&localBest.res) {
		return true
	}
	return false
}
