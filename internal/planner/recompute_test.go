package planner

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/memory"
	"repro/internal/model"
)

// The activation-recomputation extension (paper §6 future work): when no
// plan fits memory, the planner may trade ~1/3 extra compute for the much
// smaller rematerialisation footprint.

func TestRecomputeShrinksFootprint(t *testing.T) {
	cfg := model.GPTNeo27B()
	base := memory.WorkerShape{Layers: 16, StageIdx: 0, PP: 2, TP: 1, MicroBS: 4, NumMicro: 64}
	re := base
	re.Recompute = true
	full := memory.WorkerFootprint(cfg, base)
	small := memory.WorkerFootprint(cfg, re)
	if small.Activations >= full.Activations/4 {
		t.Errorf("recompute activations %d should be far below full %d",
			small.Activations, full.Activations)
	}
	// Parameter-side memory is untouched.
	if small.Weights != full.Weights || small.OptimizerStates != full.OptimizerStates {
		t.Error("recompute must not change parameter-state memory")
	}
}

func TestRecomputeUnblocksInfeasiblePool(t *testing.T) {
	// GPT-Neo on 4 V100s: impossible without recomputation (see
	// TestTooBigModelNoPlan), feasible with it.
	cfg := model.GPTNeo27B()
	pool := cluster.NewPool().Set(zoneA, core.V100, 4)

	strict := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.V100)
	if _, err := strict.Plan(pool); err == nil {
		t.Skip("pool unexpectedly feasible without recompute; nothing to test")
	}

	relaxed := newPlanner(t, cfg, Options{Objective: core.MaxThroughput, AllowRecompute: true}, core.V100)
	res, err := relaxed.Plan(pool)
	if err != nil {
		t.Fatalf("recompute fallback should find a plan: %v", err)
	}
	if !res.Plan.Recompute {
		t.Fatal("returned plan must be marked Recompute")
	}
	// And it must actually deploy on ground truth.
	gt := groundtruth.New(cfg)
	if _, err := gt.MeasureThroughput(res.Plan); err != nil {
		t.Fatalf("recompute plan failed deployment: %v", err)
	}
}

func TestRecomputeCostsCompute(t *testing.T) {
	// On a pool where both modes fit, the normal plan must be faster:
	// rematerialisation replays the forward pass.
	cfg := model.OPT350M()
	pl := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 16)
	res, err := pl.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	re := res.Plan
	re.Recompute = true
	normal, err := pl.Sim.Estimate(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := pl.Sim.Estimate(re)
	if err != nil {
		t.Fatal(err)
	}
	if rec.IterTime <= normal.IterTime {
		t.Errorf("recompute %v should be slower than normal %v", rec.IterTime, normal.IterTime)
	}
	ratio := rec.IterTime / normal.IterTime
	if ratio > 1.6 {
		t.Errorf("recompute overhead %vx too high; forward replay is ~1.33x", ratio)
	}
	if rec.PeakMemory >= normal.PeakMemory {
		t.Error("recompute must reduce peak memory")
	}
}

func TestRecomputeGroundTruthAgreement(t *testing.T) {
	// The simulator's recompute model must stay calibrated to ground truth.
	cfg := model.OPT350M()
	pl := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100)
	plan := core.Plan{MicroBatchSize: 2, Recompute: true}
	for i := 0; i < 2; i++ {
		plan.Stages = append(plan.Stages, core.StagePlan{
			FirstLayer: i * 12, NumLayers: 12,
			Replicas: []core.StageReplica{
				{GPU: core.A100, TP: 1, Zone: zoneA},
				{GPU: core.A100, TP: 1, Zone: zoneA},
			},
		})
	}
	est, err := pl.Sim.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := groundtruth.New(cfg).Measure(plan)
	if err != nil {
		t.Fatal(err)
	}
	rel := (est.IterTime - meas.IterTime) / meas.IterTime
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.12 {
		t.Errorf("recompute calibration off by %.1f%%", rel*100)
	}
}
