package planner

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/sim"
)

var (
	zoneA = cluster.GCPZone("us-central1", 'a')
	zoneB = cluster.GCPZone("us-central1", 'b')
	zoneW = cluster.GCPZone("us-west1", 'a')
)

func newPlanner(t *testing.T, cfg model.Config, opts Options, gpus ...core.GPUType) *Planner {
	t.Helper()
	prof, err := profiler.Collect(cfg, gpus, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Heuristics == (Heuristics{}) {
		opts.Heuristics = AllHeuristics()
	}
	return New(cfg, sim.New(cfg, prof), opts)
}

func TestHomogeneousPlan(t *testing.T) {
	cfg := model.OPT350M()
	pl := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 32)
	res, err := pl.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(cfg.Layers); err != nil {
		t.Fatalf("returned invalid plan: %v", err)
	}
	if !res.Estimate.FitsMemory {
		t.Fatal("Sailor must never emit OOM plans")
	}
	if got := res.Plan.GPUCount(); got > 32 {
		t.Fatalf("plan uses %d GPUs, only 32 available", got)
	}
	if res.SearchTime > 10*time.Second {
		t.Errorf("homogeneous 32-GPU search took %v; paper: <1s", res.SearchTime)
	}
	if res.Estimate.Throughput() <= 0 {
		t.Fatal("throughput must be positive")
	}
}

func TestPlannerBeatsNaivePlan(t *testing.T) {
	cfg := model.OPT350M()
	pl := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 32)
	res, err := pl.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	// Naive: PP=8, DP=1, TP=4, mbs=1 — a valid but weak hand-rolled plan.
	naive := core.Plan{MicroBatchSize: 1}
	for i := 0; i < 8; i++ {
		naive.Stages = append(naive.Stages, core.StagePlan{
			FirstLayer: i * 3, NumLayers: 3,
			Replicas: []core.StageReplica{{GPU: core.A100, TP: 4, Zone: zoneA}},
		})
	}
	naiveTP, err := pl.Sim.Throughput(naive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Throughput() <= naiveTP {
		t.Errorf("planner %v it/s should beat naive %v it/s", res.Estimate.Throughput(), naiveTP)
	}
}

func TestPlanRespectsNodeSizeTP(t *testing.T) {
	// H1: TP never exceeds the node size (4 for cloud VMs).
	cfg := model.GPTNeo27B()
	pl := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 64)
	res, err := pl.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Plan.Stages {
		for _, r := range s.Replicas {
			if r.TP > 4 {
				t.Fatalf("replica TP %d exceeds the 4-GPU node (H1)", r.TP)
			}
		}
	}
}

func TestHeterogeneousUsesVBothTypes(t *testing.T) {
	// With few A100s and ample V100s, the plan should recruit V100s
	// (heterogeneity pays when resources are limited, §5.2.2).
	cfg := model.GPTNeo27B()
	pl := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100, core.V100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneA, core.V100, 48)
	res, err := pl.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	types := res.Plan.GPUTypes()
	if len(types) < 2 {
		t.Logf("plan: %s", res.Plan)
		t.Errorf("expected both GPU types in use, got %v", types)
	}
	// And it must beat what the planner can do with the A100s alone.
	a100Only := cluster.NewPool().Set(zoneA, core.A100, 16)
	resA, err := pl.Plan(a100Only)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Throughput() <= resA.Estimate.Throughput() {
		t.Errorf("hetero %v it/s should beat 16xA100-only %v it/s",
			res.Estimate.Throughput(), resA.Estimate.Throughput())
	}
}

func TestGeoPlanKeepsDPWithinRegion(t *testing.T) {
	// H5: all replicas of one stage stay in one region.
	cfg := model.OPT350M()
	pl := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100)
	pool := cluster.NewPool().
		Set(zoneA, core.A100, 16).Set(zoneB, core.A100, 16).
		Set(zoneW, core.A100, 32)
	res, err := pl.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Plan.Stages {
		region := s.Replicas[0].Zone.Region
		for _, r := range s.Replicas {
			if r.Zone.Region != region {
				t.Fatalf("stage %d spans regions %s and %s (violates H5)", i, region, r.Zone.Region)
			}
		}
	}
}

func TestMinCostWithThroughputConstraint(t *testing.T) {
	// §5.2.4 scenario 1: minimize cost subject to a throughput floor.
	cfg := model.OPT350M()
	floor := 0.05
	plCost := newPlanner(t, cfg, Options{
		Objective:   core.MinCost,
		Constraints: core.Constraints{MinThroughput: floor},
	}, core.A100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 128)
	res, err := plCost.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Estimate.Throughput(); got < floor {
		t.Fatalf("throughput %v below the floor %v", got, floor)
	}
	// A max-throughput plan on the same pool should cost at least as much.
	plTP := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100)
	resTP, err := plTP.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Cost() > resTP.Estimate.Cost() {
		t.Errorf("min-cost plan $%v should not exceed max-throughput plan $%v",
			res.Estimate.Cost(), resTP.Estimate.Cost())
	}
	// The cost objective should not grab all 128 GPUs if fewer meet the floor.
	if res.Plan.GPUCount() >= resTP.Plan.GPUCount() {
		t.Errorf("min-cost plan uses %d GPUs, max-throughput uses %d; expected fewer",
			res.Plan.GPUCount(), resTP.Plan.GPUCount())
	}
}

func TestBudgetConstraintHonored(t *testing.T) {
	// §5.2.4 scenario 2: maximize throughput under a $/iteration cap.
	cfg := model.OPT350M()
	budget := 0.5
	pl := newPlanner(t, cfg, Options{
		Objective:   core.MaxThroughput,
		Constraints: core.Constraints{MaxCostPerIter: budget},
	}, core.A100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 128)
	res, err := pl.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Estimate.Cost(); got > budget {
		t.Fatalf("plan costs $%v/iter, budget $%v", got, budget)
	}
	// Unconstrained search on the same pool should be at least as fast.
	plFree := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100)
	free, err := plFree.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Throughput() > free.Estimate.Throughput()*1.001 {
		t.Errorf("budgeted plan cannot beat unconstrained: %v > %v",
			res.Estimate.Throughput(), free.Estimate.Throughput())
	}
}

func TestInfeasibleConstraints(t *testing.T) {
	cfg := model.OPT350M()
	pl := newPlanner(t, cfg, Options{
		Objective:   core.MaxThroughput,
		Constraints: core.Constraints{MaxCostPerIter: 0.000001},
	}, core.A100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 8)
	if _, err := pl.Plan(pool); err == nil {
		t.Fatal("want error for impossible budget")
	}
}

func TestEmptyPool(t *testing.T) {
	pl := newPlanner(t, model.OPT350M(), Options{}, core.A100)
	if _, err := pl.Plan(cluster.NewPool()); err == nil {
		t.Fatal("want error for empty pool")
	}
}

func TestTooBigModelNoPlan(t *testing.T) {
	// GPT-Neo cannot fit on 4 V100s no matter the plan.
	cfg := model.GPTNeo27B()
	pl := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.V100)
	pool := cluster.NewPool().Set(zoneA, core.V100, 4)
	if _, err := pl.Plan(pool); err == nil {
		t.Fatal("want no-valid-plan error")
	} else if !strings.Contains(err.Error(), "no valid plan") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDeterministicSearch(t *testing.T) {
	cfg := model.OPT350M()
	pool := cluster.NewPool().Set(zoneA, core.A100, 32).Set(zoneA, core.V100, 32)
	a := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100, core.V100)
	b := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100, core.V100)
	ra, err := a.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Plan.String() != rb.Plan.String() {
		t.Errorf("search not deterministic:\n%s\n%s", ra.Plan, rb.Plan)
	}
}

func TestHeuristicsAblationSameQualityMoreWork(t *testing.T) {
	// Table 3's premise: heuristics cut the search dramatically without
	// giving up plan quality (on small instances where both complete).
	cfg := model.OPT350M()
	pool := cluster.NewPool().Set(zoneA, core.A100, 16)
	fast := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100)
	slow := newPlanner(t, cfg, Options{
		Objective:  core.MaxThroughput,
		Heuristics: Heuristics{H6MergeZones: true}, // H2/H3 off
	}, core.A100)
	rf, err := fast.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := slow.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Explored <= rf.Explored {
		t.Errorf("no-heuristics search should explore more: %d <= %d", rs.Explored, rf.Explored)
	}
	// The heuristic search must stay within a whisker of the exhaustive one.
	if rf.Estimate.Throughput() < 0.9*rs.Estimate.Throughput() {
		t.Errorf("heuristics lost too much quality: %v vs %v",
			rf.Estimate.Throughput(), rs.Estimate.Throughput())
	}
}

func TestDeadlineReturnsBestSoFar(t *testing.T) {
	cfg := model.GPTNeo27B()
	pl := newPlanner(t, cfg, Options{
		Objective: core.MaxThroughput,
		Deadline:  50 * time.Millisecond,
	}, core.A100, core.V100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 128).Set(zoneA, core.V100, 384)
	res, err := pl.Plan(pool)
	if err != nil {
		t.Skip("deadline hit before any candidate; acceptable on slow machines")
	}
	if res.SearchTime > 3*time.Second {
		t.Errorf("deadline not honored: searched for %v", res.SearchTime)
	}
}

func TestPlannedPlanSurvivesGroundTruth(t *testing.T) {
	// End-to-end: the planner's plan must deploy on the ground-truth
	// engine without OOM and with throughput close to the estimate.
	cfg := model.OPT350M()
	pl := newPlanner(t, cfg, Options{Objective: core.MaxThroughput}, core.A100, core.V100)
	pool := cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneA, core.V100, 16)
	res, err := pl.Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	gt := groundtruth.New(cfg)
	real, err := gt.MeasureThroughput(res.Plan)
	if err != nil {
		t.Fatalf("planned plan failed on ground truth: %v", err)
	}
	est := res.Estimate.Throughput()
	rel := (est - real) / real
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.15 {
		t.Errorf("estimate %v vs ground truth %v: %.1f%% apart", est, real, 100*rel)
	}
}

func TestPartitionLayers(t *testing.T) {
	got := partitionLayers(24, 5)
	want := []int{5, 5, 5, 5, 4}
	sum := 0
	for i, v := range got {
		if v != want[i] {
			t.Fatalf("partitionLayers(24,5) = %v, want %v", got, want)
		}
		sum += v
	}
	if sum != 24 {
		t.Fatal("partition must cover all layers")
	}
}

func TestPPCandidatesIncludeDivisors(t *testing.T) {
	pl := newPlanner(t, model.OPT350M(), Options{Objective: core.MaxThroughput}, core.A100)
	got := pl.ppCandidates()
	has := map[int]bool{}
	for _, p := range got {
		has[p] = true
	}
	for _, want := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		if !has[want] {
			t.Errorf("ppCandidates missing %d: %v", want, got)
		}
	}
}
