// Package planner implements the Sailor planner (§4.2): given resource
// quotas/availability, profiling information, an objective, and optional
// constraints, it jointly selects a resource allocation and a job
// parallelization plan.
//
// The search combines the paper's six pruning heuristics with the per-stage
// dynamic program of Listing 1:
//
//	H1  tensor parallelism stays within a node (single GPU type per replica)
//	H2  OOM configurations are pruned via the cached minimum TP per stage
//	H3  throughput objective: DP degrees descending until no improvement
//	H4  cost objective: DP degrees ascending until cost stops decreasing
//	H5  DP groups stay inside one region; the pipeline may cross regions
//	H6  zones within a region are consolidated for the search
//
// Heuristics are individually toggleable so Table 3 and the ablation bench
// can measure their contribution.
//
// The planner is a concurrent search engine: the outer (pp, mbs) candidate
// loop fans out across a worker pool (Options.Workers), each worker owning
// its own resource-state clone and DP memo while sharing the H2 minimum-TP
// cache and the incumbent best plan. A search that runs to completion
// returns a bit-identical result at any worker count: per-candidate
// evaluation is deterministic, H3/H4 early stops are scoped to one
// worker's scan, and ties between equally good plans break on the plan
// signature rather than arrival order. A search truncated by the deadline
// or context is anytime — it returns the best of whatever the cutoff
// allowed, and more workers cover more of the space before it.
//
// Replanning on a churn trace is warm-started: Replan/ReplanContext seed a
// fallback incumbent from the previously deployed plan and, with a
// WarmCache configured (Options.Warm), persist the minimum-TP cache and the
// DP memos across calls so a replan skips every region state an earlier
// search already solved. Warm results are bit-identical to cold planning on
// the same pool — the caches hold pure functions of their keys.
//
// The code is split across five files: planner.go (configuration and the
// Plan/PlanContext/Replan entry points), search.go (the worker pool and the
// per-candidate DP-degree scan), dp.go (the Listing-1 dynamic program and
// plan materialisation), state.go (region-indexed resource state and the
// shared caches), and warm.go (the cross-replan warm-start cache).
package planner

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/model"
)

// Heuristics selects which pruning rules are active.
type Heuristics struct {
	H2MinTP        bool // prune OOM configs via cached min TP
	H3H4DPOrdering bool // objective-directed DP iteration with early stop
	H6MergeZones   bool // consolidate zones per region
}

// budgetBeamWidth bounds per-stage branching in the budget-constrained DP,
// where memoization is unsound (the remaining budget is part of the state).
const budgetBeamWidth = 8

// budgetExactMaxPP caps the pipeline depth for which the exact Listing-1
// budget recursion (straggler-adjustment loop, no memo) is attempted.
const budgetExactMaxPP = 4

// AllHeuristics enables everything (the Sailor default).
func AllHeuristics() Heuristics {
	return Heuristics{H2MinTP: true, H3H4DPOrdering: true, H6MergeZones: true}
}

// NoHeuristics is the dynamic-programming-only ablation of Table 3.
func NoHeuristics() Heuristics { return Heuristics{} }

// Options tunes the search.
type Options struct {
	Objective   core.Objective
	Constraints core.Constraints
	Heuristics  Heuristics
	// Deadline caps the wall-clock search; the best plan found so far is
	// returned when it expires. Zero means no cap. PlanContext callers can
	// cancel the search through the context as well.
	Deadline time.Duration
	// Workers is the number of goroutines exploring (pp, mbs) candidates
	// concurrently. Zero means runtime.NumCPU(). When the search runs to
	// completion the chosen plan is identical at any worker count; under
	// a Deadline/context cutoff, more workers cover more of the space.
	Workers int
	// MaxPP caps the pipeline depth (default 16 or the layer count).
	MaxPP int
	// MBSCandidates overrides the microbatch sizes to explore.
	MBSCandidates []int
	// AllowRecompute lets the planner fall back to full activation
	// recomputation when no plan fits memory otherwise — the
	// rematerialisation extension the paper defers to future work (§6).
	AllowRecompute bool
	// Warm persists the minimum-TP cache and the DP memos across
	// Plan/Replan calls (see WarmCache). Nil means every search starts
	// cold. The cache binds to the first planner fingerprint that uses it;
	// a planner with a different model, objective, constraints, heuristic
	// set, or evaluator instance ignores it and searches cold.
	Warm *WarmCache
	// Guard, when set, re-validates the returned plan (and any warm-start
	// seed) against a fleet free-capacity view — the fleet scheduler's
	// defence against a search accidentally spending capacity other jobs
	// hold. It never changes which plan the search prefers.
	Guard *CapacityGuard
	// DisableBoundPruning turns off the admissible bound-based pruning of
	// DP-degree scans. Pruning is exact — the chosen plan is identical
	// either way — so this exists only for ablations and for measuring the
	// pruning's effect on Explored (see BenchmarkPruning). Excluded from
	// the warm-cache fingerprint: cached entries are pure functions of
	// their keys and remain valid under either setting.
	DisableBoundPruning bool
	// DisableDominancePruning turns off the dominance pruning of stage
	// compositions inside the DP (see dominance.go). Also exact and also
	// excluded from the warm-cache fingerprint; exists for ablations and
	// for measuring the dominance filter's effect on Explored.
	DisableDominancePruning bool
	// DisableIncremental turns off the delta-scoped incremental probe of
	// the warm cache's DP memos (see warm.go): with it set, a replan whose
	// pool is a one-cell shrink of the previous root re-scans every subtree
	// instead of proving cached entries still win. Exact either way — the
	// probe serves only provably identical winners — so, like the pruning
	// knobs, it is excluded from the warm-cache fingerprint and exists for
	// ablations and for measuring the probe's effect on Explored.
	DisableIncremental bool
}

// Result is the planner's output plus search telemetry.
type Result struct {
	Plan       core.Plan
	Estimate   core.Estimate
	SearchTime time.Duration
	// Explored counts DP nodes plus full simulator evaluations.
	Explored int
	// OOMPlansEmitted counts plans the planner would have returned that
	// fail the memory check — always 0 for Sailor, nonzero for baselines
	// that skip memory modelling (Figures 8-9 bold numbers).
	OOMPlansEmitted int
	// WarmStart reports whether the search ran against a warm cache
	// snapshot (Options.Warm set and fingerprint-compatible).
	WarmStart bool
	// CacheHits counts DP subtrees served from the warm cache instead of
	// being re-explored; each hit also subtracts the whole subtree from
	// Explored.
	CacheHits int
	// Degraded marks a result the serving layer substituted for a fresh
	// search that was cut off by its deadline: the job's warm incumbent
	// plan re-estimated, not a new search. Always false for results the
	// planner itself returns.
	Degraded bool
	// SpeculativeHit marks a result the serving layer served from its
	// speculation cache — a plan precomputed for a forecast pool before the
	// event arrived. The plan and estimate are bit-identical to what the
	// search would have returned; only the telemetry above reflects the
	// prefetch run. Always false for results the planner itself returns.
	SpeculativeHit bool
}

// Evaluator is the estimation backend the planner searches against: the
// shared plan-level core.Estimator seam plus the stage-level hooks the
// Listing-1 dynamic program scores candidate stages with. The analytical
// simulator (internal/sim) is the default implementation.
type Evaluator interface {
	core.Estimator
	// StageComputeTimeWith returns the per-microbatch fwd+bwd seconds of
	// one stage replica (time_for_stage), with an explicit
	// rematerialisation mode.
	StageComputeTimeWith(g core.GPUType, tp, mbs, layers int, last, recompute bool) (float64, error)
	// GPUHourUSD prices one GPU-hour of a type (cost_for_stage).
	GPUHourUSD(g core.GPUType) float64
	// DPSyncTime estimates a within-region gradient all-reduce of bytes
	// across d replicas.
	DPSyncTime(bytes int64, d int) float64
}

// BoundPrunable is an optional Evaluator extension. An implementation
// declares that its Estimate never reports an iteration time below the
// serialized stage-busy bound the planner's pruning relies on (every stage
// executes nb forward+backward passes back to back or waiting, so
// iteration time is at least nb — capped per prune.go for the
// extrapolated regime — times the cheapest per-layer fwd+bwd it could
// quote). Bound-based pruning activates only for evaluators that declare
// this; an Evaluator without the marker is searched unpruned, so exactness
// is never traded for speed on an unknown estimation backend.
type BoundPrunable interface {
	// StageBusyLowerBounded reports whether the admissibility property
	// above holds for this evaluator instance.
	StageBusyLowerBounded() bool
}

// Planner searches the joint resource-allocation x parallelization space.
// It holds only immutable configuration; all per-search state lives in the
// search struct, so one Planner may run any number of concurrent searches.
type Planner struct {
	Cfg  model.Config
	Sim  Evaluator
	Opts Options
}

// New returns a planner over an estimation backend with the given options.
func New(cfg model.Config, s Evaluator, opts Options) *Planner {
	if opts.MaxPP == 0 {
		opts.MaxPP = 16
	}
	if opts.MaxPP > cfg.Layers {
		opts.MaxPP = cfg.Layers
	}
	return &Planner{Cfg: cfg, Sim: s, Opts: opts}
}

// Plan runs the search against an availability pool, honoring
// Options.Deadline if set.
func (pl *Planner) Plan(pool *cluster.Pool) (Result, error) {
	return pl.PlanContext(context.Background(), pool)
}

// PlanContext is Plan with caller-controlled cancellation: the search stops
// at the next candidate boundary once ctx is done and returns the best plan
// found so far (or an error when nothing valid was found). Options.Deadline,
// when set, still applies on top of ctx.
func (pl *Planner) PlanContext(ctx context.Context, pool *cluster.Pool) (Result, error) {
	return pl.planContext(ctx, pool, nil)
}

// Replan is the warm-start entry point of the elastic hot path: plan `pool`
// starting from the plan deployed before the availability change. The
// previous plan seeds a fallback incumbent (so a deadline-cut replan is
// never worse than keeping the old plan, when it still fits the pool), and
// a configured Options.Warm cache lets the search skip every DP region
// state an earlier replan already solved — including, when the pool is a
// small one-cell shrink of the previous one, whole subtrees the delta
// provably cannot reach (the incremental probe of warm.go). A warm Replan
// that runs to completion returns exactly the plan cold planning returns
// on the same pool.
func (pl *Planner) Replan(prev core.Plan, pool *cluster.Pool) (Result, error) {
	return pl.ReplanContext(context.Background(), prev, pool)
}

// ReplanContext is Replan with caller-controlled cancellation.
func (pl *Planner) ReplanContext(ctx context.Context, prev core.Plan, pool *cluster.Pool) (Result, error) {
	return pl.planContext(ctx, pool, pl.seedFromPrev(prev, pool))
}

// seedFromPrev evaluates the previous plan against the new pool: if the
// pool still holds every GPU the plan occupies and the estimate passes the
// memory check and constraints, the plan is usable as a fallback incumbent.
func (pl *Planner) seedFromPrev(prev core.Plan, pool *cluster.Pool) *candidate {
	if len(prev.Stages) == 0 {
		return nil
	}
	if !pool.CanFit(prev) {
		return nil
	}
	if pl.Opts.Guard.Check(prev) != nil {
		return nil
	}
	est, err := pl.seedEstimate(prev)
	if err != nil || !est.FitsMemory {
		return nil
	}
	if !pl.Opts.Constraints.Satisfied(est.IterTime, est.Cost()) {
		return nil
	}
	return &candidate{res: Result{Plan: prev, Estimate: est}}
}

// seedEstimate scores the previous plan, serving it from the warm cache's
// estimate map when possible: the deployed plan was once a materialised
// candidate, so at warm steady state its estimate is already persisted and
// the seed check costs no simulator call.
func (pl *Planner) seedEstimate(prev core.Plan) (core.Estimate, error) {
	if w := pl.Opts.Warm; w != nil {
		if _, est, _, ok := w.snapshot(pl.fingerprint(), pl.Sim); ok {
			if e, ok := est[estKey(prev)]; ok {
				return e, nil
			}
		}
	}
	return pl.Sim.Estimate(prev)
}

// fingerprint identifies the search configuration a WarmCache binds to.
// The evaluator is bound separately by instance identity (WarmCache.ev):
// cached DP nodes embed its stage timings, so entries must never cross
// estimation backends (or profiler seeds). Deadline and Workers are
// excluded — they change how much of the space a cut-off search covers,
// never the value of a cached entry.
func (pl *Planner) fingerprint() string {
	return fmt.Sprintf("%+v|%v|%+v|%+v|pp%d|mbs%v",
		pl.Cfg, pl.Opts.Objective, pl.Opts.Constraints, pl.Opts.Heuristics,
		pl.Opts.MaxPP, pl.mbsCandidates())
}

func (pl *Planner) planContext(ctx context.Context, pool *cluster.Pool, seed *candidate) (Result, error) {
	start := time.Now()
	if pl.Opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pl.Opts.Deadline)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		if seed != nil {
			res := seed.res
			res.SearchTime = time.Since(start)
			return res, nil
		}
		return Result{}, fmt.Errorf("planner: %w", err)
	}
	rs := newRegionState(pool, pl.Opts.Heuristics.H6MergeZones)
	if rs.totalGPUs() == 0 {
		return Result{}, fmt.Errorf("planner: empty resource pool")
	}

	s := newSearch(pl, ctx)
	defer s.stop()
	s.runPass(rs, pool, false)
	if s.best == nil && pl.Opts.AllowRecompute && !s.expired() {
		// Nothing fits memory; retry with activation recomputation, which
		// trades ~1/3 extra compute for a far smaller footprint.
		s.runPass(rs, pool, true)
	}
	if s.warmOn {
		pl.Opts.Warm.merge(pl.fingerprint(), s.pending, s.pendEst)
		// Remember this search's root availability: the next replan diffs
		// its pool against it to arm the incremental memo probe.
		pl.Opts.Warm.noteRoot(pl.fingerprint(), rs)
	}
	// The seed is a fallback, not a competitor: a search that runs to
	// completion returns exactly what cold planning returns, and the
	// previous plan only steps in when the cutoff fired before the search
	// found anything at least as good.
	if seed != nil && (s.best == nil || (s.expired() && pl.betterCand(seed, s.best))) {
		s.best = seed
	}
	if s.best == nil {
		res := Result{SearchTime: time.Since(start), Explored: int(s.explored.Load())}
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("planner: search cancelled before a valid plan was found: %w", err)
		}
		return res, fmt.Errorf("planner: no valid plan within constraints for %d GPUs", pool.TotalGPUs())
	}
	if err := pl.Opts.Guard.Check(s.best.res.Plan); err != nil {
		return Result{SearchTime: time.Since(start), Explored: int(s.explored.Load())}, err
	}
	best := s.best.res
	best.SearchTime = time.Since(start)
	best.Explored = int(s.explored.Load())
	best.WarmStart = s.warmOn
	best.CacheHits = int(s.warmHits.Load())
	return best, nil
}

// nodeGPUs resolves the node size of a GPU type (heuristic H1 caps TP at
// it); the per-search cache in search.bindState avoids repeated catalogue
// lookups in the DP's inner loops.
func nodeGPUs(g core.GPUType) int {
	return hardware.DefaultNodeType(g).GPUsPerNode
}

// workerCount resolves Options.Workers.
func (pl *Planner) workerCount() int {
	if pl.Opts.Workers > 0 {
		return pl.Opts.Workers
	}
	return runtime.NumCPU()
}

// ppCandidates returns pipeline depths to explore: every power of two up to
// MaxPP plus every divisor of the layer count (so 24-layer models see 3, 6,
// 12 as well).
func (pl *Planner) ppCandidates() []int {
	seen := map[int]bool{}
	var out []int
	add := func(p int) {
		if p >= 1 && p <= pl.Opts.MaxPP && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for p := 1; p <= pl.Opts.MaxPP; p *= 2 {
		add(p)
	}
	for p := 1; p <= pl.Opts.MaxPP; p++ {
		if pl.Cfg.Layers%p == 0 {
			add(p)
		}
	}
	sort.Ints(out)
	return out
}

func (pl *Planner) mbsCandidates() []int {
	if len(pl.Opts.MBSCandidates) > 0 {
		return pl.Opts.MBSCandidates
	}
	return []int{1, 2, 4, 8}
}

// dCandidates lists data-parallel degrees in the order the objective's
// heuristic dictates (H3 descending for throughput, H4 ascending for cost);
// without H3/H4 the full ascending list is explored with no early stop.
func (pl *Planner) dCandidates(maxD int) []int {
	var ds []int
	for d := 1; d <= maxD; d *= 2 {
		ds = append(ds, d)
	}
	if pl.Opts.Heuristics.H3H4DPOrdering && pl.Opts.Objective == core.MaxThroughput {
		// Descending.
		for i, j := 0, len(ds)-1; i < j; i, j = i+1, j-1 {
			ds[i], ds[j] = ds[j], ds[i]
		}
	}
	return ds
}

// partitionLayers splits L layers into p near-equal contiguous stages.
func partitionLayers(l, p int) []int {
	out := make([]int, p)
	base := l / p
	rem := l % p
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
