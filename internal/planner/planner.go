// Package planner implements the Sailor planner (§4.2): given resource
// quotas/availability, profiling information, an objective, and optional
// constraints, it jointly selects a resource allocation and a job
// parallelization plan.
//
// The search combines the paper's six pruning heuristics with the per-stage
// dynamic program of Listing 1:
//
//	H1  tensor parallelism stays within a node (single GPU type per replica)
//	H2  OOM configurations are pruned via the cached minimum TP per stage
//	H3  throughput objective: DP degrees descending until no improvement
//	H4  cost objective: DP degrees ascending until cost stops decreasing
//	H5  DP groups stay inside one region; the pipeline may cross regions
//	H6  zones within a region are consolidated for the search
//
// Heuristics are individually toggleable so Table 3 and the ablation bench
// can measure their contribution.
package planner

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/sim"
)

// Heuristics selects which pruning rules are active.
type Heuristics struct {
	H2MinTP        bool // prune OOM configs via cached min TP
	H3H4DPOrdering bool // objective-directed DP iteration with early stop
	H6MergeZones   bool // consolidate zones per region
}

// budgetBeamWidth bounds per-stage branching in the budget-constrained DP,
// where memoization is unsound (the remaining budget is part of the state).
const budgetBeamWidth = 8

// budgetExactMaxPP caps the pipeline depth for which the exact Listing-1
// budget recursion (straggler-adjustment loop, no memo) is attempted.
const budgetExactMaxPP = 4

// AllHeuristics enables everything (the Sailor default).
func AllHeuristics() Heuristics {
	return Heuristics{H2MinTP: true, H3H4DPOrdering: true, H6MergeZones: true}
}

// NoHeuristics is the dynamic-programming-only ablation of Table 3.
func NoHeuristics() Heuristics { return Heuristics{} }

// Options tunes the search.
type Options struct {
	Objective   core.Objective
	Constraints core.Constraints
	Heuristics  Heuristics
	// Deadline caps the wall-clock search; the best plan found so far is
	// returned when it expires. Zero means no cap.
	Deadline time.Duration
	// MaxPP caps the pipeline depth (default 16 or the layer count).
	MaxPP int
	// MBSCandidates overrides the microbatch sizes to explore.
	MBSCandidates []int
	// AllowRecompute lets the planner fall back to full activation
	// recomputation when no plan fits memory otherwise — the
	// rematerialisation extension the paper defers to future work (§6).
	AllowRecompute bool
}

// Result is the planner's output plus search telemetry.
type Result struct {
	Plan       core.Plan
	Estimate   core.Estimate
	SearchTime time.Duration
	// Explored counts DP nodes plus full simulator evaluations.
	Explored int
	// OOMPlansEmitted counts plans the planner would have returned that
	// fail the memory check — always 0 for Sailor, nonzero for baselines
	// that skip memory modelling (Figures 8-9 bold numbers).
	OOMPlansEmitted int
}

// Planner searches the joint resource-allocation x parallelization space.
type Planner struct {
	Cfg  model.Config
	Sim  *sim.Simulator
	Opts Options

	// search state
	start     time.Time
	deadline  time.Time
	explored  int
	minTPMemo map[minTPKey]int
	dpMemo    map[string]*dpNode
	// costLean flips the DP's comparison to prefer cheap stages over fast
	// ones; the budget fallback uses it for its second pass.
	costLean bool
	// recompute marks the current search pass as rematerialisation-mode.
	recompute bool
}

type minTPKey struct {
	g      core.GPUType
	layers int
	stage  int
	pp     int
	mbs    int
	nb     int // capped at pp, where the in-flight count saturates
}

// New returns a planner over a simulator with the given options.
func New(cfg model.Config, s *sim.Simulator, opts Options) *Planner {
	if opts.MaxPP == 0 {
		opts.MaxPP = 16
	}
	if opts.MaxPP > cfg.Layers {
		opts.MaxPP = cfg.Layers
	}
	return &Planner{Cfg: cfg, Sim: s, Opts: opts}
}

// Plan runs the search against an availability pool.
func (pl *Planner) Plan(pool *cluster.Pool) (Result, error) {
	pl.start = time.Now()
	if pl.Opts.Deadline > 0 {
		pl.deadline = pl.start.Add(pl.Opts.Deadline)
	} else {
		pl.deadline = time.Time{}
	}
	pl.explored = 0
	pl.minTPMemo = map[minTPKey]int{}

	rs := newRegionState(pool, pl.Opts.Heuristics.H6MergeZones)
	if rs.totalGPUs() == 0 {
		return Result{}, fmt.Errorf("planner: empty resource pool")
	}

	var best *Result
	search := func() {
		for _, pp := range pl.ppCandidates() {
			layers := partitionLayers(pl.Cfg.Layers, pp)
			for _, mbs := range pl.mbsCandidates() {
				pl.searchDP(rs, pool, layers, mbs, &best)
				if pl.expired() {
					return
				}
			}
		}
	}
	pl.recompute = false
	search()
	if best == nil && pl.Opts.AllowRecompute && !pl.expired() {
		// Nothing fits memory; retry with activation recomputation, which
		// trades ~1/3 extra compute for a far smaller footprint.
		pl.recompute = true
		pl.minTPMemo = map[minTPKey]int{}
		search()
		pl.recompute = false
	}
	if best == nil {
		return Result{SearchTime: time.Since(pl.start), Explored: pl.explored},
			fmt.Errorf("planner: no valid plan within constraints for %d GPUs", pool.TotalGPUs())
	}
	best.SearchTime = time.Since(pl.start)
	best.Explored = pl.explored
	return *best, nil
}

func (pl *Planner) expired() bool {
	return !pl.deadline.IsZero() && time.Now().After(pl.deadline)
}

// ppCandidates returns pipeline depths to explore: every power of two up to
// MaxPP plus every divisor of the layer count (so 24-layer models see 3, 6,
// 12 as well).
func (pl *Planner) ppCandidates() []int {
	seen := map[int]bool{}
	var out []int
	add := func(p int) {
		if p >= 1 && p <= pl.Opts.MaxPP && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for p := 1; p <= pl.Opts.MaxPP; p *= 2 {
		add(p)
	}
	for p := 1; p <= pl.Opts.MaxPP; p++ {
		if pl.Cfg.Layers%p == 0 {
			add(p)
		}
	}
	sort.Ints(out)
	return out
}

func (pl *Planner) mbsCandidates() []int {
	if len(pl.Opts.MBSCandidates) > 0 {
		return pl.Opts.MBSCandidates
	}
	return []int{1, 2, 4, 8}
}

// dCandidates lists data-parallel degrees in the order the objective's
// heuristic dictates (H3 descending for throughput, H4 ascending for cost);
// without H3/H4 the full ascending list is explored with no early stop.
func (pl *Planner) dCandidates(maxD int) []int {
	var ds []int
	for d := 1; d <= maxD; d *= 2 {
		ds = append(ds, d)
	}
	if pl.Opts.Heuristics.H3H4DPOrdering && pl.Opts.Objective == core.MaxThroughput {
		// Descending.
		for i, j := 0, len(ds)-1; i < j; i, j = i+1, j-1 {
			ds[i], ds[j] = ds[j], ds[i]
		}
	}
	return ds
}

// searchDP explores DP degrees for one (layer partition, mbs) and updates
// the incumbent best.
func (pl *Planner) searchDP(rs *regionState, origPool *cluster.Pool, layers []int, mbs int, best **Result) {
	pp := len(layers)
	maxPer := pl.Cfg.GlobalBatch / mbs
	if maxPer < 1 {
		return
	}
	maxD := rs.totalGPUs() / pp // upper bound: 1 GPU per stage replica
	if maxD > maxPer {
		maxD = maxPer
	}
	if maxD < 1 {
		return
	}
	noImprove := 0
	for _, d := range pl.dCandidates(maxD) {
		if pl.expired() {
			return
		}
		nb := pl.Cfg.GlobalBatch / (d * mbs)
		if nb < 1 {
			continue
		}
		budget := pl.Opts.Constraints.MaxCostPerIter
		if budget > 0 && pp > budgetExactMaxPP {
			// Deep pipelines make the budget-threading recursion of
			// Listing 1 intractable; fall back to two memoized passes
			// (time-optimal, then cost-lean) and filter by the budget at
			// the end, which is where Listing 1 validates constraints too.
			budget = 0
		}
		var nodes []*dpNode
		pl.dpMemo = map[string]*dpNode{}
		pl.costLean = false
		if n := pl.solveDP(rs.clone(), layers, 0, 0, d, mbs, nb, budget); n != nil {
			nodes = append(nodes, n)
		}
		if pl.Opts.Constraints.MaxCostPerIter > 0 && budget == 0 {
			pl.dpMemo = map[string]*dpNode{}
			pl.costLean = true
			if n := pl.solveDP(rs.clone(), layers, 0, 0, d, mbs, nb, 0); n != nil {
				nodes = append(nodes, n)
			}
			pl.costLean = false
		}
		var cand *Result
		for _, node := range nodes {
			plan, ok := pl.buildPlan(node, layers, mbs, origPool)
			if !ok {
				continue
			}
			est, err := pl.Sim.Estimate(plan)
			pl.explored++
			if err != nil || !est.FitsMemory {
				continue
			}
			if !pl.Opts.Constraints.Satisfied(est.IterTime, est.Cost()) {
				continue
			}
			c := &Result{Plan: plan, Estimate: est}
			if cand == nil || pl.better(c, cand) {
				cand = c
			}
		}
		if cand == nil {
			continue
		}
		if *best == nil || pl.better(cand, *best) {
			*best = cand
			noImprove = 0
		} else if pl.Opts.Heuristics.H3H4DPOrdering {
			noImprove++
			// H3 early stop: throughput is unimodal in D, so two
			// consecutive non-improvements end the scan. Cost curves are
			// nearly flat in D under per-GPU-hour pricing (compute cost
			// ~ rate*D*T with T ~ 1/D), so H4 keeps the ascending order
			// but scans every degree — the list is only log2(GPUs) long.
			if pl.Opts.Objective != core.MinCost && noImprove >= 2 {
				return
			}
		}
	}
}

// better orders candidates by the objective, breaking ties by the other
// metric.
func (pl *Planner) better(a, b *Result) bool {
	switch pl.Opts.Objective {
	case core.MinCost:
		if a.Estimate.Cost() != b.Estimate.Cost() {
			return a.Estimate.Cost() < b.Estimate.Cost()
		}
		return a.Estimate.IterTime < b.Estimate.IterTime
	default:
		if a.Estimate.IterTime != b.Estimate.IterTime {
			return a.Estimate.IterTime < b.Estimate.IterTime
		}
		return a.Estimate.Cost() < b.Estimate.Cost()
	}
}

// --- region-indexed resource state ---------------------------------------

type regionState struct {
	regions []string
	types   []core.GPUType
	// counts[ri][ti] = available GPUs.
	counts [][]int
	zones  []core.Zone // one synthetic zone per region
}

// newRegionState indexes the pool for the DP. With mergeZones (H6) the
// search granularity is one bucket per region; without it every zone is its
// own bucket, inflating the search space exactly as the ablation intends.
func newRegionState(p *cluster.Pool, mergeZones bool) *regionState {
	rs := &regionState{}
	typeIdx := map[core.GPUType]int{}
	for _, g := range p.GPUTypes() {
		typeIdx[g] = len(rs.types)
		rs.types = append(rs.types, g)
	}
	bucketIdx := map[string]int{}
	for _, z := range p.Zones() {
		name := z.Region
		if !mergeZones {
			name = z.Name
		}
		ri, ok := bucketIdx[name]
		if !ok {
			ri = len(rs.regions)
			bucketIdx[name] = ri
			rs.regions = append(rs.regions, name)
			rs.counts = append(rs.counts, make([]int, len(rs.types)))
			rs.zones = append(rs.zones, core.Zone{Region: z.Region, Name: name})
		}
		for ti, g := range rs.types {
			rs.counts[ri][ti] += p.Available(z, g)
		}
	}
	return rs
}

func (rs *regionState) totalGPUs() int {
	n := 0
	for _, row := range rs.counts {
		for _, c := range row {
			n += c
		}
	}
	return n
}

func (rs *regionState) clone() *regionState {
	c := &regionState{regions: rs.regions, types: rs.types, zones: rs.zones}
	c.counts = make([][]int, len(rs.counts))
	for i, row := range rs.counts {
		c.counts[i] = append([]int(nil), row...)
	}
	return c
}

func (rs *regionState) key(stage, ri int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d", stage, ri)
	for _, row := range rs.counts {
		for _, c := range row {
			fmt.Fprintf(&b, "|%d", c)
		}
	}
	return b.String()
}

// --- dynamic program (Listing 1) ------------------------------------------

// replicaGroup is a homogeneous subset of one stage's DP replicas.
type replicaGroup struct {
	typeIdx int
	gpu     core.GPUType
	count   int
	tp      int
}

// stageChoice is the resource assignment for one stage: a region and the
// composition of its D replicas.
type stageChoice struct {
	region     int
	regionName string
	groups     []replicaGroup
	// perMB is the per-microbatch fwd+bwd time of the slowest replica.
	perMB float64
	// sync is the estimated gradient all-reduce time for the stage.
	sync float64
	// rateUSD is the USD/second of the stage's GPUs.
	rateUSD float64
}

// dpNode is the memoized solution of the suffix starting at one stage.
type dpNode struct {
	choice    stageChoice
	next      *dpNode
	straggler float64 // max per-microbatch stage time over the suffix
	sumTime   float64 // warm-up/cool-down contribution of the suffix
	maxSync   float64
	rateUSD   float64 // total USD/second over the suffix
}

// metric is the DP's objective: the §4.2.2 iteration-time decomposition.
func (n *dpNode) metric(nb int) float64 {
	return float64(nb)*n.straggler + n.sumTime + n.maxSync
}

// nodeBetter orders DP nodes: by the time metric normally, by resource
// cost-rate (ties broken by time) in the budget fallback's cost-lean pass.
func (pl *Planner) nodeBetter(a, b *dpNode, nb int) bool {
	if pl.costLean {
		if a.rateUSD != b.rateUSD {
			return a.rateUSD < b.rateUSD
		}
	}
	return a.metric(nb) < b.metric(nb)
}

// costPerIter approximates the suffix cost under the §4.2.3 assumption that
// the straggler term dominates the iteration.
func (n *dpNode) costPerIter(nb int) float64 {
	return n.rateUSD * float64(nb) * n.straggler
}

// solveDP assigns resources to stages i..P-1, starting the region scan at
// ri (H5: stages consume regions monotonically, so data-parallel groups
// never straddle a region boundary while the pipeline may).
func (pl *Planner) solveDP(rs *regionState, layers []int, i, ri, d, mbs, nb int, budget float64) *dpNode {
	if pl.expired() {
		return nil
	}
	pp := len(layers)
	memoKey := ""
	if budget <= 0 { // unconstrained: memoization is sound
		memoKey = rs.key(i, ri)
		if n, ok := pl.dpMemo[memoKey]; ok {
			return n
		}
	}
	pl.explored++

	var best *dpNode
	for r := ri; r < len(rs.regions); r++ {
		combos := pl.stageCombos(rs, r, layers[i], i, pp, d, mbs, nb)
		if budget > 0 && len(combos) > budgetBeamWidth {
			// The budget-constrained recursion cannot reuse the memo
			// (Listing 1 threads the remaining budget through solve_dp),
			// so bound its branching with a beam over the fastest
			// per-stage choices; the paper reports a 4x overhead rather
			// than an exponential one, implying similar bounding.
			sort.Slice(combos, func(a, b int) bool { return combos[a].perMB < combos[b].perMB })
			combos = combos[:budgetBeamWidth]
		}
		for _, choice := range combos {
			if pl.expired() {
				break
			}
			if budget > 0 {
				if n := pl.solveWithBudget(rs, layers, i, r, d, mbs, nb, budget, choice); n != nil {
					if best == nil || pl.nodeBetter(n, best, nb) {
						best = n
					}
				}
				continue
			}
			rs2 := rs.clone()
			applyChoice(rs2, choice)
			var node *dpNode
			if i == pp-1 {
				node = leafNode(choice)
			} else {
				child := pl.solveDP(rs2, layers, i+1, r, d, mbs, nb, 0)
				if child == nil {
					continue
				}
				node = combine(choice, child)
			}
			if best == nil || pl.nodeBetter(node, best, nb) {
				best = node
			}
		}
	}
	if memoKey != "" {
		pl.dpMemo[memoKey] = best
	}
	return best
}

// solveWithBudget implements the straggler-approximation loop of Listing 1
// lines 17-32: assume this stage is the straggler, allocate the remaining
// budget to the suffix, and re-adjust when the suffix turns out to contain
// a slower stage.
func (pl *Planner) solveWithBudget(rs *regionState, layers []int, i, r, d, mbs, nb int, budget float64, choice stageChoice) *dpNode {
	pp := len(layers)
	rs2 := rs.clone()
	applyChoice(rs2, choice)
	if i == pp-1 {
		n := leafNode(choice)
		if n.costPerIter(nb) > budget {
			return nil
		}
		return n
	}
	assumed := choice.perMB
	for iter := 0; iter < 4; iter++ {
		costI := choice.rateUSD * float64(nb) * assumed
		rem := budget - costI
		if rem <= 0 {
			return nil
		}
		child := pl.solveDP(rs2.clone(), layers, i+1, r, d, mbs, nb, rem)
		if child == nil {
			return nil
		}
		node := combine(choice, child)
		if node.costPerIter(nb) <= budget {
			return node
		}
		if child.straggler <= assumed {
			// Assumption held but the combined cost still busts the
			// budget: infeasible with this stage choice.
			return nil
		}
		assumed = child.straggler
	}
	return nil
}

func leafNode(c stageChoice) *dpNode {
	return &dpNode{
		choice: c, straggler: c.perMB, sumTime: c.perMB,
		maxSync: c.sync, rateUSD: c.rateUSD,
	}
}

func combine(c stageChoice, child *dpNode) *dpNode {
	n := &dpNode{choice: c, next: child}
	n.straggler = c.perMB
	if child.straggler > n.straggler {
		n.straggler = child.straggler
	}
	n.sumTime = c.perMB + child.sumTime
	n.maxSync = c.sync
	if child.maxSync > n.maxSync {
		n.maxSync = child.maxSync
	}
	n.rateUSD = c.rateUSD + child.rateUSD
	return n
}

func applyChoice(rs *regionState, c stageChoice) {
	for _, g := range c.groups {
		rs.counts[c.region][g.typeIdx] -= g.count * g.tp
	}
}

// stageCombos enumerates resource compositions for one stage in one region:
// D replicas split across at most two GPU types (generate_combos in Listing
// 1), with TP per type fixed by H2's minimum (plus one doubling, the
// "scaling heuristic"). Without H2 every power-of-two TP is tried.
func (pl *Planner) stageCombos(rs *regionState, region, layers, stage, pp, d, mbs, nb int) []stageChoice {
	type typeOption struct {
		ti  int
		tps []int
	}
	var opts []typeOption
	for ti, g := range rs.types {
		if rs.counts[region][ti] <= 0 {
			continue
		}
		node := hardware.DefaultNodeType(g)
		var tps []int
		if pl.Opts.Heuristics.H2MinTP {
			min := pl.minTP(g, layers, stage, pp, mbs, nb)
			if min == 0 {
				continue // cannot fit this stage on this type at all
			}
			tps = append(tps, min)
			if min*2 <= node.GPUsPerNode {
				tps = append(tps, min*2)
			}
		} else {
			for tp := 1; tp <= node.GPUsPerNode; tp *= 2 {
				tps = append(tps, tp)
			}
		}
		opts = append(opts, typeOption{ti, tps})
	}
	var out []stageChoice
	emit := func(groups []replicaGroup) {
		// Verify availability.
		need := map[int]int{}
		for _, g := range groups {
			need[g.typeIdx] += g.count * g.tp
		}
		for ti, n := range need {
			if rs.counts[region][ti] < n {
				return
			}
		}
		c, ok := pl.scoreChoice(rs, region, groups, layers, stage, pp, mbs, d)
		if ok {
			out = append(out, c)
		}
	}
	// Single-type compositions.
	for _, o := range opts {
		for _, tp := range o.tps {
			emit([]replicaGroup{{typeIdx: o.ti, count: d, tp: tp}})
		}
	}
	// Two-type mixes (the heterogeneous per-stage replicas of §4.4). The
	// split points are sampled at quartiles plus the extremes; exhaustive
	// splits add little beyond these and blow up the search.
	splits := func(d int) []int {
		set := map[int]bool{}
		var ks []int
		for _, k := range []int{1, d / 4, d / 2, 3 * d / 4, d - 1} {
			if k >= 1 && k < d && !set[k] {
				set[k] = true
				ks = append(ks, k)
			}
		}
		return ks
	}
	for ai := 0; ai < len(opts); ai++ {
		for bi := ai + 1; bi < len(opts); bi++ {
			for _, tpa := range opts[ai].tps {
				for _, tpb := range opts[bi].tps {
					for _, k := range splits(d) {
						emit([]replicaGroup{
							{typeIdx: opts[ai].ti, count: k, tp: tpa},
							{typeIdx: opts[bi].ti, count: d - k, tp: tpb},
						})
					}
				}
			}
		}
	}
	return out
}

// scoreChoice computes the per-stage DP metrics for a composition.
func (pl *Planner) scoreChoice(rs *regionState, region int, groups []replicaGroup, layers, stage, pp, mbs, d int) (stageChoice, bool) {
	c := stageChoice{region: region, regionName: rs.regions[region], groups: groups}
	last := stage == pp-1
	minTP := 0
	for gi := range groups {
		groups[gi].gpu = rs.types[groups[gi].typeIdx]
	}
	for _, g := range groups {
		gt := g.gpu
		t, err := pl.Sim.StageComputeTimeWith(gt, g.tp, mbs, layers, last, pl.recompute)
		if err != nil {
			return c, false
		}
		if t > c.perMB {
			c.perMB = t
		}
		c.rateUSD += pl.Sim.Pricing.GPUHourUSD(gt) / 3600 * float64(g.count*g.tp)
		if minTP == 0 || g.tp < minTP {
			minTP = g.tp
		}
		// Without H2, reject compositions whose workers OOM outright
		// (Sailor never emits OOM plans either way; this keeps the
		// no-heuristics ablation semantically identical, just slower).
		w := memory.WorkerShape{
			Layers: layers, StageIdx: stage, PP: pp, TP: g.tp,
			MicroBS: mbs, NumMicro: pp, FirstStg: stage == 0, LastStg: last,
			Recompute: pl.recompute,
		}
		spec, err := hardware.Lookup(gt)
		if err != nil {
			return c, false
		}
		if !memory.Fits(memory.WorkerFootprint(pl.Cfg, w).Total(), spec.MemoryBytes) {
			return c, false
		}
	}
	if d > 1 {
		bytes := int64(layers) * pl.Cfg.GradBytesPerLayer(minTP)
		fit := pl.Sim.Prof.NetFit(hardware.InterZone) // within-region ring (H5/H6)
		c.sync = collective.RingAllReduce(collective.FromFit(fit), bytes, d)
	}
	return c, true
}

// minTP caches heuristic H2's minimum viable tensor-parallel degree. The
// in-flight count saturates at the pipeline depth, so the cache key does not
// include nb (the paper notes the minimum is independent of availability and
// reusable across replans).
func (pl *Planner) minTP(g core.GPUType, layers, stage, pp, mbs, nb int) int {
	if nb > pp {
		nb = pp
	}
	k := minTPKey{g, layers, stage, pp, mbs, nb}
	if v, ok := pl.minTPMemo[k]; ok {
		return v
	}
	v := memory.MinTPWith(pl.Cfg, g, layers, stage, pp, mbs, nb, pl.recompute)
	pl.minTPMemo[k] = v
	return v
}

// --- plan materialisation --------------------------------------------------

// buildPlan converts a DP solution chain into a concrete core.Plan, mapping
// the consolidated region back onto real zones of the original pool.
func (pl *Planner) buildPlan(node *dpNode, layers []int, mbs int, origPool *cluster.Pool) (core.Plan, bool) {
	pp := len(layers)
	plan := core.Plan{MicroBatchSize: mbs, Recompute: pl.recompute, Stages: make([]core.StagePlan, 0, pp)}
	// Remaining availability per real zone for zone assignment.
	remain := origPool.Clone()
	zonesByRegion := map[string][]core.Zone{}
	for _, z := range remain.Zones() {
		zonesByRegion[z.Region] = append(zonesByRegion[z.Region], z)
		if !pl.Opts.Heuristics.H6MergeZones {
			// Zone-granular search: region names are zone names.
			zonesByRegion[z.Name] = append(zonesByRegion[z.Name], z)
		}
	}
	first := 0
	cur := node
	for i := 0; i < pp; i++ {
		if cur == nil {
			return core.Plan{}, false
		}
		ch := cur.choice
		st := core.StagePlan{FirstLayer: first, NumLayers: layers[i]}
		for _, g := range ch.groups {
			for r := 0; r < g.count; r++ {
				z, ok := pickZone(remain, zonesByRegion, ch.regionName, g.gpu, g.tp)
				if !ok {
					return core.Plan{}, false
				}
				st.Replicas = append(st.Replicas, core.StageReplica{GPU: g.gpu, TP: g.tp, Zone: z})
			}
		}
		plan.Stages = append(plan.Stages, st)
		first += layers[i]
		cur = cur.next
	}
	return plan, true
}

// pickZone places one replica (tp GPUs of one type, one zone per H1) in the
// real zone of the region with the most remaining capacity.
func pickZone(remain *cluster.Pool, zonesByRegion map[string][]core.Zone, region string, g core.GPUType, tp int) (core.Zone, bool) {
	var best core.Zone
	bestN := -1
	for _, z := range zonesByRegion[region] {
		if n := remain.Available(z, g); n >= tp && n > bestN {
			best, bestN = z, n
		}
	}
	if bestN < 0 {
		return core.Zone{}, false
	}
	remain.Add(best, g, -tp)
	return best, true
}

// partitionLayers splits L layers into p near-equal contiguous stages.
func partitionLayers(l, p int) []int {
	out := make([]int, p)
	base := l / p
	rem := l % p
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
