package planner

// Warm-start replanning state. A WarmCache persists the planner's two
// expensive caches across Plan/Replan calls on a churn trace:
//
//   - the H2 minimum-TP cache, whose entries are independent of
//     availability and fully reusable across replans,
//   - the per-candidate DP memos, keyed by (pool shape, pp, mbs, d, nb,
//     recompute, cost-lean, stage, region, remaining counts) — the complete
//     input of one solveDP node — so successive replans skip every region
//     state an earlier search already solved, and
//   - the candidate-plan estimates, keyed by the plan signature, so
//     re-materialised candidates skip the simulator's 1F1B makespan
//     evaluation (the measured hot spot of a warm replan).
//
// Both caches hold pure functions of their keys, so serving from them can
// never change which plan a completed search returns: a warm Replan picks
// the exact plan cold planning picks on the same pool, only faster.
//
// Incremental replanning (delta-scoped search) builds on the DP memos. The
// memo shape key is count-independent — it names the region/type index
// layout — and the per-node dpKey packs the absolute remaining counts, so
// when a replan's pool differs from the previous root by a shrink confined
// to one (region, type) cell, every memo miss can additionally probe the
// dominating state one delta away (the counts the same spent vector would
// leave under the previous root). A cached winner there is the exact
// optimum over a superset of the feasible allocations; if its chain's
// usage at the shrunk cell still fits — or the cached entry records
// infeasibility — it is provably the exact winner for the current state
// too, and the whole subtree is served without re-scanning. See solveDP;
// Options.DisableIncremental turns the probe off for ablations.
//
// Concurrency and determinism: searches read a copy-on-write snapshot of
// the DP memo map taken when the search starts and publish their newly
// computed entries in one merge when they finish. Reads therefore never
// observe a concurrent writer, and a sequential caller (one replan after
// another, the elastic controller's shape) gets bit-identical results —
// including Explored and CacheHits — at any Options.Workers setting.
// Concurrent searches over one shared cache remain race-free and return
// correct plans; only their telemetry counters become schedule-dependent.
//
// A WarmCache is bound to the first planner fingerprint (model, objective,
// constraints, heuristics, evaluator instance) that uses it; planners with
// a different fingerprint fall back to cold search rather than mixing
// incompatible entries.

import (
	"strconv"
	"sync"

	"repro/internal/core"
)

// warmMaxEntries caps the persisted DP memo size. A merge that would grow
// past the cap drops the old generation and keeps only the newest search's
// entries, bounding memory on unboundedly long churn traces. Searches
// re-publish the entries they hit, so the retained set is the live working
// set, not just the latest search's misses.
const warmMaxEntries = 1 << 17

// warmDPKey is the packed persisted-memo key: the pool-shape descriptor,
// the scan parameters that change what the DP optimises, and the packed
// per-node state. A comparable struct, so snapshots merge and probe without
// re-hashing fmt-built strings — the shape string is computed once per
// search and shared by every key of that search.
type warmDPKey struct {
	shape     string
	pp        int32
	mbs       int32
	d         int32
	nb        int32
	recompute bool
	costLean  bool
	key       dpKey
}

// WarmCache carries planner state across replans. The zero value is not
// usable; call NewWarmCache.
type WarmCache struct {
	mu sync.RWMutex
	fp string
	// ev is the evaluator the cached nodes and estimates were computed
	// against, compared by identity. Holding the reference also keeps the
	// evaluator alive, so a recycled allocation can never alias a new
	// evaluator onto stale entries.
	ev     Evaluator
	dp     map[warmDPKey]*dpNode
	est    map[string]core.Estimate
	minTP  *minTPCache
	merges int
	// lastShape/lastRoot record the previous search's root availability
	// (shape descriptor + flattened counts matrix), the reference point the
	// incremental delta detection compares the next pool against (see
	// deltaFrom and the probe in solveDP).
	lastShape string
	lastRoot  []int
}

// appendEstKey serializes every estimate-relevant field of a plan in replica
// order into b — deliberately NOT Plan.String(), which groups identical
// replicas within a stage and so collapses orderings the simulator
// distinguishes (pipeline k is built from replica k of every stage, and
// cross-stage links are classified by zone pair). Built with raw byte
// appends so the hot in-search path pays one allocation (the map-key
// string), not a fmt call per field.
func appendEstKey(b []byte, plan core.Plan) []byte {
	b = strconv.AppendInt(b, int64(plan.MicroBatchSize), 10)
	if plan.Recompute {
		b = append(b, 'r')
	} else {
		b = append(b, 'f')
	}
	for _, st := range plan.Stages {
		b = append(b, '|', 's')
		b = strconv.AppendInt(b, int64(st.FirstLayer), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(st.NumLayers), 10)
		for _, r := range st.Replicas {
			b = append(b, ';')
			b = append(b, r.GPU...)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(r.TP), 10)
			b = append(b, ',')
			b = append(b, r.Zone.Name...)
		}
	}
	return b
}

// estKey is the warm estimate-cache key for a materialised plan. Both the
// in-search estimate path and the Replan seed check resolve through it.
func estKey(plan core.Plan) string {
	return string(appendEstKey(make([]byte, 0, 64), plan))
}

// PlanKey returns the canonical replica-order serialization of a plan — the
// same key the warm cache files plan estimates under. The serving layer's
// speculation cache keys its precomputed results with it (combined with the
// pool rendering), so a speculative entry is consulted only for a byte-
// identical (pool, incumbent plan) pair.
func PlanKey(plan core.Plan) string { return estKey(plan) }

// NewWarmCache returns an empty warm-start cache.
func NewWarmCache() *WarmCache {
	return &WarmCache{
		dp:    map[warmDPKey]*dpNode{},
		est:   map[string]core.Estimate{},
		minTP: newMinTPCache(),
	}
}

// Clone returns an independent warm cache holding the same entries. The
// published DP and estimate generations are immutable (merge rebuilds them
// copy-on-write), so the clone shares them at zero cost, and the shared
// minimum-TP cache holds pure functions of its keys, so it stays shared
// too. Searches that merge into the clone never touch the original: the
// serving layer runs speculative prefetches on clones so a mispredicted
// prefetch leaves the job's real cache byte-untouched, and adopts the
// clone wholesale when the prediction hits.
func (w *WarmCache) Clone() *WarmCache {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return &WarmCache{
		fp:        w.fp,
		ev:        w.ev,
		dp:        w.dp,
		est:       w.est,
		minTP:     w.minTP,
		merges:    w.merges,
		lastShape: w.lastShape,
		lastRoot:  w.lastRoot,
	}
}

// snapshot binds the cache to (fp, ev) on first use and returns the
// current read-only DP memo and estimate generations plus the shared
// minimum-TP cache. ok is false when the cache already belongs to a
// different fingerprint or evaluator instance.
func (w *WarmCache) snapshot(fp string, ev Evaluator) (map[warmDPKey]*dpNode, map[string]core.Estimate, *minTPCache, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fp == "" && w.ev == nil {
		w.fp, w.ev = fp, ev
	}
	if w.fp != fp || w.ev != ev {
		return nil, nil, nil, false
	}
	return w.dp, w.est, w.minTP, true
}

// merge publishes the entries a finished search computed. The published
// maps are rebuilt copy-on-write so snapshots handed to in-flight searches
// are never mutated underneath them.
func (w *WarmCache) merge(fp string, dp map[warmDPKey]*dpNode, est map[string]core.Estimate) {
	if len(dp) == 0 && len(est) == 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fp != fp {
		return
	}
	// A steady-state search re-publishes only entries the cache already
	// holds; since cached values are pure functions of their keys, there is
	// nothing to write and the O(cache)-sized copy-on-write rebuild can be
	// skipped entirely — the merge degrades to an O(pending) key scan.
	if hasNewKeys(w.dp, dp) {
		next := make(map[warmDPKey]*dpNode, len(w.dp)+len(dp))
		if len(w.dp)+len(dp) <= warmMaxEntries {
			for k, v := range w.dp {
				next[k] = v
			}
		}
		for k, v := range dp {
			next[k] = v
		}
		w.dp = next
	}
	if hasNewKeys(w.est, est) {
		next := make(map[string]core.Estimate, len(w.est)+len(est))
		if len(w.est)+len(est) <= warmMaxEntries {
			for k, v := range w.est {
				next[k] = v
			}
		}
		for k, v := range est {
			next[k] = v
		}
		w.est = next
	}
	w.merges++
}

// noteRoot records the root availability a search ran against, so the next
// search over the same fingerprint can detect a small pool delta and arm
// the incremental memo probe. Wide or spill-keyed pools are not recorded —
// the probe rewrites inline-packed key lanes only.
func (w *WarmCache) noteRoot(fp string, rs *regionState) {
	if rs.wide != nil || rs.cells() > dpKeyCells {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fp != fp {
		return
	}
	w.lastShape, w.lastRoot = rs.shape(), rs.counts()
}

// deltaFrom compares the current root availability against the recorded
// one. It reports a probe-worthy delta — same shape, exactly one cell
// shrunk, every other cell unchanged — as (cell index, shrink amount).
// Growth deltas return false: a cached entry under a smaller root is a
// feasible candidate but not provably the winner once more resources are
// in play, so only shrinks admit the dominance argument the probe relies
// on. An unchanged pool also returns false — exact keys already hit.
func (w *WarmCache) deltaFrom(fp, shape string, cur []int) (int, int, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.fp != fp || w.lastShape != shape || len(w.lastRoot) != len(cur) {
		return 0, 0, false
	}
	cell, amt := -1, 0
	for i, c := range cur {
		switch prev := w.lastRoot[i]; {
		case prev == c:
		case prev > c:
			if cell >= 0 {
				return 0, 0, false // delta spans more than one cell
			}
			cell, amt = i, prev-c
		default:
			return 0, 0, false // growth
		}
	}
	if cell < 0 {
		return 0, 0, false
	}
	return cell, amt, true
}

func hasNewKeys[K comparable, V any](have, pending map[K]V) bool {
	for k := range pending {
		if _, ok := have[k]; !ok {
			return true
		}
	}
	return false
}

// Entries reports the persisted cache size (DP memos plus plan estimates).
func (w *WarmCache) Entries() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.dp) + len(w.est)
}

// Merges reports how many searches have published entries into the cache.
func (w *WarmCache) Merges() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.merges
}
