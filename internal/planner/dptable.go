package planner

// dpTable is the scan-local DP memo for inline-packed states: an
// open-addressed, linear-probe hash table over the pointer-free dpFastKey.
// The runtime map this replaces spent the DP's hottest instruction stream
// on generic hashing and bucket probes; here the probe is one multiply-mix
// and a couple of word compares against adjacent slots. Key, value and
// epoch live in one slot struct so a probe touches a single cache line
// rather than three parallel arrays. Scans are reset by bumping an epoch —
// stale slots simply read as vacant — so clearing costs nothing regardless
// of how large the previous scan grew. Stale vals keep pointing into the
// task's node slab, which outlives every scan of the task anyway, so the
// retained memory is the slab the task already owns.
type dpTable struct {
	slots []dpSlot
	epoch uint32
	mask  uint64
	n     int
}

type dpSlot struct {
	key   dpFastKey
	val   *dpNode
	epoch uint32
}

// dpTableInitSlots is the initial capacity. It is deliberately small:
// warm replans spin up many short-lived tasks whose scans are served
// almost entirely from the persisted snapshot, so most tables never see
// more than a handful of inserts. Cold scans double their way up via
// grow, whose rehash work telescopes to ~2x the final size — noise next
// to evaluating the nodes that filled the table.
const dpTableInitSlots = 1 << 6

// reset starts a new scan: every existing slot becomes vacant at once.
// Allocation is deferred to the first put — a scan served entirely from
// the warm snapshot never stores an entry, so it never builds a table.
func (t *dpTable) reset() {
	// Epoch 0 is the vacant value of freshly allocated slots; every scan
	// runs at a later one.
	t.epoch++
	t.n = 0
}

// hash mixes the three key words; the lanes of w0/w1 are small counts, so
// the multiplies spread them across the word before the fold.
func (k dpFastKey) hash() uint64 {
	h := k.w0*0x9e3779b97f4a7c15 ^ k.w1*0xc2b2ae3d27d4eb4f ^ k.meta*0x165667b19e3779f9
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	return h ^ h>>32
}

func (t *dpTable) get(k dpFastKey) (*dpNode, bool) {
	if t.slots == nil {
		return nil, false
	}
	i := k.hash() & t.mask
	for {
		s := &t.slots[i]
		if s.epoch != t.epoch {
			return nil, false
		}
		if s.key == k {
			return s.val, true
		}
		i = (i + 1) & t.mask
	}
}

func (t *dpTable) put(k dpFastKey, v *dpNode) {
	if t.slots == nil {
		t.slots = make([]dpSlot, dpTableInitSlots)
		t.mask = dpTableInitSlots - 1
	} else if 4*(t.n+1) > 3*len(t.slots) {
		t.grow()
	}
	i := k.hash() & t.mask
	for {
		s := &t.slots[i]
		if s.epoch != t.epoch {
			s.key, s.val, s.epoch = k, v, t.epoch
			t.n++
			return
		}
		if s.key == k {
			s.val = v
			return
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the table, rehashing only the live epoch's entries.
func (t *dpTable) grow() {
	old := t.slots
	size := 2 * len(old)
	t.slots = make([]dpSlot, size)
	t.mask = uint64(size - 1)
	t.n = 0
	for i := range old {
		if old[i].epoch == t.epoch {
			t.put(old[i].key, old[i].val)
		}
	}
}
