package planner

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
)

// search is the shared state of one Plan/PlanContext invocation: the
// cancellation signal, the exploration counter, the H2 minimum-TP cache
// (sound to share — the minimum is a property of the stage shape, not of
// the scan exploring it), and the incumbent best plan.
type search struct {
	pl       *Planner
	done     atomic.Bool
	explored atomic.Int64
	minTP    *minTPCache

	// rs is the top-level region state the pass was built from; tasks use
	// its immutable region/type index (their own mutable clone carries the
	// counts). ratePerSec and nodeCap are per-typeIdx evaluator constants
	// resolved once per search so the DP's inner loops never re-query the
	// pricing model or the hardware catalogue.
	rs         *regionState
	ratePerSec []float64
	nodeCap    []int

	// pruneOK marks the evaluator as declaring the bound-pruning
	// admissibility property; bounds caches the per-(mbs, recompute)
	// evaluator sweeps shared by every task of the pass.
	pruneOK bool
	boundMu sync.Mutex
	bounds  map[evalBoundsKey]evalBounds

	// Warm start (Options.Warm): warmDP/warmEst are read-only snapshots of
	// the persisted DP memos and plan estimates taken when the search
	// starts — every task may read them lock-free — and pendMu guards the
	// entries this search computes for the single merge back into the
	// cache at the end. shape is the pool-shape descriptor shared by every
	// persisted key of this search.
	warmOn   bool
	shape    string
	warmDP   map[warmDPKey]*dpNode
	warmEst  map[string]core.Estimate
	warmHits atomic.Int64
	// Incremental replanning (see warm.go): when the pool is a one-cell
	// shrink of the previous search's root, incOn arms the dominating-state
	// memo probe — incCell is the shrunk cell in matrix order and incAmt how
	// many GPUs it lost. Read-only after bindState, so tasks probe lock-free.
	incOn   bool
	incCell int
	incAmt  int
	pendMu  sync.Mutex
	pending map[warmDPKey]*dpNode
	pendEst map[string]core.Estimate

	// mu guards the incumbent. Workers publish candidates through offer's
	// objective-aware compare-and-swap; ties break on the plan signature,
	// never on arrival order, so the winner is independent of scheduling.
	mu   sync.Mutex
	best *candidate

	watch chan struct{} // closed by stop() to release the ctx watcher
}

// candidate pairs a search result with its lazily computed plan signature.
// The signature is needed only to break exact metric ties, which are rare,
// so Plan.String is no longer rebuilt for every materialised candidate —
// only when a comparison actually reaches the tie-break.
type candidate struct {
	res    Result
	sig    string
	sigSet bool
}

// signature returns the tie-breaking plan signature, computing it at most
// once. Safe for the goroutine owning the candidate; the shared incumbent's
// signature is only resolved under the search mutex.
func (c *candidate) signature() string {
	if !c.sigSet {
		c.sig = c.res.Plan.String()
		c.sigSet = true
	}
	return c.sig
}

func newSearch(pl *Planner, ctx context.Context) *search {
	s := &search{pl: pl, watch: make(chan struct{})}
	if w := pl.Opts.Warm; w != nil {
		if dp, est, mt, ok := w.snapshot(pl.fingerprint(), pl.Sim); ok {
			s.warmOn, s.warmDP, s.warmEst, s.minTP = true, dp, est, mt
		}
	}
	if s.minTP == nil {
		s.minTP = newMinTPCache()
	}
	if d := ctx.Done(); d != nil {
		// Latch cancellation into an atomic so the hot DP loop polls a
		// plain load instead of taking the context's lock per node.
		go func() {
			select {
			case <-d:
				s.done.Store(true)
			case <-s.watch:
			}
		}()
	}
	return s
}

// stop releases the context watcher goroutine.
func (s *search) stop() { close(s.watch) }

func (s *search) expired() bool { return s.done.Load() }

// bindState resolves the per-typeIdx evaluator constants for a pass.
func (s *search) bindState(rs *regionState) {
	s.rs = rs
	if s.warmOn {
		s.shape = rs.shape()
		if !s.pl.Opts.DisableIncremental && rs.wide == nil && rs.cells() <= dpKeyCells {
			if cell, amt, ok := s.pl.Opts.Warm.deltaFrom(s.pl.fingerprint(), s.shape, rs.counts()); ok {
				s.incOn, s.incCell, s.incAmt = true, cell, amt
			}
		}
	}
	s.ratePerSec = make([]float64, len(rs.types))
	s.nodeCap = make([]int, len(rs.types))
	for ti, g := range rs.types {
		s.ratePerSec[ti] = s.pl.Sim.GPUHourUSD(g) / 3600
		s.nodeCap[ti] = nodeGPUs(g)
	}
	if bp, ok := s.pl.Sim.(BoundPrunable); ok && bp.StageBusyLowerBounded() {
		s.pruneOK = true
	}
}

// finishTask folds one finished task's computed DP entries into the
// search-wide pending set for the end-of-search cache merge, and flushes
// its locally batched telemetry counters (batched so the DP's inner loop
// performs no atomic operations).
func (s *search) finishTask(t *task) {
	s.explored.Add(t.explored)
	s.warmHits.Add(t.warmHits)
	if len(t.pending) == 0 && len(t.pendEst) == 0 {
		return
	}
	s.pendMu.Lock()
	if s.pending == nil {
		s.pending = make(map[warmDPKey]*dpNode, len(t.pending))
	}
	for k, v := range t.pending {
		s.pending[k] = v
	}
	if s.pendEst == nil {
		s.pendEst = make(map[string]core.Estimate, len(t.pendEst))
	}
	for k, v := range t.pendEst {
		s.pendEst[k] = v
	}
	s.pendMu.Unlock()
}

// offer publishes a candidate to the shared incumbent. The incumbent is a
// private copy, so later lazy-signature fills on the caller's candidate
// never race with other workers' comparisons.
func (s *search) offer(c *candidate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.best == nil || s.pl.betterCand(c, s.best) {
		cp := *c
		s.best = &cp
	}
}

// runPass fans the (pp, mbs) candidate grid across the worker pool. Each
// job gets a fresh task — its own DP memo and region-state clone — so
// workers share nothing hot but the incumbent and the minimum-TP cache.
//
// Before the fan-out, one deterministically chosen job (the floor job) runs
// to completion and its best candidate becomes the pruning floor every
// other job measures its admissible bounds against. Because the floor is
// fixed before any worker starts, the set of explored configurations is
// identical at any worker count.
func (s *search) runPass(rs *regionState, pool *cluster.Pool, recompute bool) {
	type job struct {
		layers []int
		mbs    int
	}
	var jobs []job
	for _, pp := range s.pl.ppCandidates() {
		layers := partitionLayers(s.pl.Cfg.Layers, pp)
		for _, mbs := range s.pl.mbsCandidates() {
			jobs = append(jobs, job{layers, mbs})
		}
	}
	if len(jobs) == 0 {
		return
	}
	s.bindState(rs)

	runJob := func(j job, floor *Result) *Result {
		if s.expired() {
			return nil
		}
		t := &task{s: s, pl: s.pl, recompute: recompute, mbs: j.mbs, floor: floor}
		local := t.searchDP(rs.clone(), pool, j.layers, j.mbs)
		s.finishTask(t)
		if local == nil {
			return nil
		}
		return &local.res
	}

	// Floor pass: the largest microbatch size at the shallowest pipeline
	// depth — cheap to evaluate and usually competitive, so its result
	// gives the bound-based pruning a useful incumbent from the start. Any
	// choice is correct (pruning is exact); this one just prunes well.
	floorIdx := len(s.pl.mbsCandidates()) - 1
	floor := runJob(jobs[floorIdx], nil)

	rest := make([]job, 0, len(jobs)-1)
	for i, j := range jobs {
		if i != floorIdx {
			rest = append(rest, j)
		}
	}
	workers := s.pl.workerCount()
	if workers > len(rest) {
		workers = len(rest)
	}
	if workers <= 1 {
		for _, j := range rest {
			if s.expired() {
				return
			}
			runJob(j, floor)
		}
		return
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				runJob(j, floor)
			}
		}()
	}
	for _, j := range rest {
		if s.expired() {
			break
		}
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// task is one worker's state while exploring a single (pp, mbs) candidate:
// the DP memo is valid only within one DP-degree scan, and the cost-lean
// and recompute flags change what the DP optimises. The scratch buffers
// and query caches below make the DP's inner loops allocation-free without
// changing any comparison.
type task struct {
	s  *search
	pl *Planner

	// dpMemo holds the scan-local memo for inline-packed states (the
	// common case; its pointer-free key and open-addressed layout make the
	// probe — the DP's hottest instruction stream — a three-word hash and
	// a linear scan of adjacent slots). dpMemoSpill is the fallback for
	// pools whose availability does not pack into the key words.
	dpMemo      dpTable
	dpMemoSpill map[dpKey]*dpNode
	// costLean flips the DP's comparison to prefer cheap stages over fast
	// ones; the budget fallback uses it for its second pass.
	costLean bool
	// recompute marks the current search pass as rematerialisation-mode.
	recompute bool
	// mbs is the task's microbatch size.
	mbs int
	// floor is the search-wide pruning incumbent computed by the floor job
	// (nil while the floor job itself runs).
	floor *Result

	// warmOn marks the task as persisting DP entries; scan carries the
	// per-scan key fields (d, nb, recompute, costLean) all persisted keys
	// of the current DP-degree scan share.
	warmOn bool
	scan   warmDPKey
	// pending/pendEst accumulate this task's computed DP entries and plan
	// estimates under their persisted keys, flushed once into the search
	// after searchDP returns. explored/warmHits batch the telemetry
	// counters the same way.
	pending  map[warmDPKey]*dpNode
	pendEst  map[string]core.Estimate
	explored int64
	warmHits int64

	// Dominance pruning inputs (see dominance.go): suffix sums and maxima
	// of the partition's per-stage time floors, plus the cheapest GPU rate
	// for the cost-lean comparison.
	domOn      bool
	domMinRate float64
	domSufSum  []float64
	domSufMax  []float64

	// Allocation recycling for the DP's escaping values: nodeSlab hands out
	// dpNodes from chunked backing arrays and groupArena does the same for
	// winning group compositions. Handed-out entries are never overwritten
	// within a task's lifetime (memo entries and the warm cache hold
	// references into the chunks) — the chunks only amortise the allocation
	// count. sigA/sigB are the scratch buffers of the piecewise signature
	// tie-breaks.
	nodeSlab   []dpNode
	groupArena []replicaGroup
	sigA, sigB []byte

	// Per-depth enumeration scratch (see stageCombos) and dense per-task
	// caches of pure evaluator queries, indexed by (stage, type, log2 tp).
	combosBuf [][]stageChoice
	// comboCache/comboGroups/comboOK hold, per (stage, region), the scored
	// availability-independent composition list of the current DP-degree
	// scan (see buildCombos); resetMemo invalidates them scan-by-scan.
	comboCache  [][]stageChoice
	comboGroups [][]replicaGroup
	comboOK     []bool
	// bestGBuf holds each stage's incumbent winner composition while the
	// combos loop runs; only the surviving winner is detached into the
	// group arena at materialisation.
	bestGBuf  [][]replicaGroup
	optsBuf   []typeOption
	tpsBuf    []int
	availBuf  []int
	estBuf    []byte
	partition []int
	stageT    []float64
	stageTok  []uint8
	fitTok    []uint8
	syncT     []float64
	syncTok   []uint8
	// minTPT is the dense per-task front of the shared H2 cache, indexed
	// by (stage, type, in-flight count capped at pp); -1 marks empty.
	minTPT []int16
}

// init sizes the task's scratch buffers and dense caches for one layer
// partition and attaches the warm-key prefix.
func (t *task) init(rs *regionState, layers []int) {
	pp := len(layers)
	if len(t.combosBuf) < pp {
		t.combosBuf = make([][]stageChoice, pp)
		t.bestGBuf = make([][]replicaGroup, pp)
		for i := range t.bestGBuf {
			t.bestGBuf[i] = make([]replicaGroup, 0, 4)
		}
	}
	t.partition = layers
	n := pp * len(rs.types) * taskTPSlots
	t.stageT = make([]float64, n)
	t.stageTok = make([]uint8, n)
	t.fitTok = make([]uint8, n)
	t.syncT = make([]float64, pp*taskTPSlots)
	t.syncTok = make([]uint8, pp*taskTPSlots)
	t.minTPT = make([]int16, pp*len(rs.types)*(pp+1))
	for i := range t.minTPT {
		t.minTPT[i] = -1
	}
	t.initDominance(layers)
	if t.s.warmOn {
		t.warmOn = true
		t.scan = warmDPKey{shape: t.s.shape, pp: int32(pp), mbs: int32(t.mbs)}
	}
}

// warmKey extends the task's current scan prefix with one node's packed
// state.
func (t *task) warmKey(k dpKey) warmDPKey {
	wk := t.scan
	wk.key = k
	return wk
}

// resetMemo starts a fresh DP-degree scan: the scan-local memo is cleared
// and the persisted-key prefix is recomputed from the scan parameters.
// Callers set costLean/recompute before calling.
func (t *task) resetMemo(d, nb int) {
	// The table's slots are reused across scans (reset bumps its epoch, so
	// later scans insert without re-growing); entries never leak between
	// scans because stale epochs read as vacant.
	t.dpMemo.reset()
	if t.dpMemoSpill != nil {
		clear(t.dpMemoSpill)
	}
	for i := range t.syncTok {
		t.syncTok[i] = cacheEmpty
	}
	for i := range t.comboOK {
		t.comboOK[i] = false
	}
	if t.warmOn {
		t.scan.d, t.scan.nb = int32(d), int32(nb)
		t.scan.recompute, t.scan.costLean = t.recompute, t.costLean
	}
}

// searchDP explores DP degrees for one (layer partition, mbs) and publishes
// improvements to the shared incumbent, returning its local best. The H3/H4
// early stop is scoped to this task's own scan — never to the cross-worker
// incumbent — so the set of explored configurations is identical at any
// worker count and the heuristic ablations stay meaningful. Bound-based
// pruning (prunable) additionally skips DP degrees that provably cannot
// beat the floor job's result, the task's own best, or the constraints;
// the bounds are admissible, so the surviving winner is the same plan.
func (t *task) searchDP(rs *regionState, origPool *cluster.Pool, layers []int, mbs int) *candidate {
	pl := t.pl
	pp := len(layers)
	maxPer := pl.Cfg.GlobalBatch / mbs
	if maxPer < 1 {
		return nil
	}
	maxD := rs.totalGPUs() / pp // upper bound: 1 GPU per stage replica
	if maxD > maxPer {
		maxD = maxPer
	}
	if maxD < 1 {
		return nil
	}
	t.init(rs, layers)
	bounds := t.candidateBounds(layers)
	var localBest *candidate
	noImprove := 0
	for _, d := range pl.dCandidates(maxD) {
		if t.s.expired() {
			return localBest
		}
		nb := pl.Cfg.GlobalBatch / (d * mbs)
		if nb < 1 {
			continue
		}
		if t.prunable(bounds, pp, d, nb, localBest) {
			continue
		}
		budget := pl.Opts.Constraints.MaxCostPerIter
		if budget > 0 && pp > budgetExactMaxPP {
			// Deep pipelines make the budget-threading recursion of
			// Listing 1 intractable; fall back to two memoized passes
			// (time-optimal, then cost-lean) and filter by the budget at
			// the end, which is where Listing 1 validates constraints too.
			budget = 0
		}
		var nodes []*dpNode
		t.costLean = false
		t.resetMemo(d, nb)
		if n := t.solveDP(rs, layers, 0, 0, d, mbs, nb, budget); n != nil {
			nodes = append(nodes, n)
		}
		if pl.Opts.Constraints.MaxCostPerIter > 0 && budget == 0 {
			t.costLean = true
			t.resetMemo(d, nb)
			if n := t.solveDP(rs, layers, 0, 0, d, mbs, nb, 0); n != nil {
				nodes = append(nodes, n)
			}
			t.costLean = false
		}
		var cand *candidate
		for _, node := range nodes {
			plan, ok := t.buildPlan(node, layers, mbs, origPool)
			if !ok {
				continue
			}
			est, err := t.estimate(plan)
			if err != nil || !est.FitsMemory {
				continue
			}
			if !pl.Opts.Constraints.Satisfied(est.IterTime, est.Cost()) {
				continue
			}
			c := &candidate{res: Result{Plan: plan, Estimate: est}}
			if cand == nil || pl.betterCand(c, cand) {
				cand = c
			}
		}
		if cand == nil {
			continue
		}
		if localBest == nil || pl.betterCand(cand, localBest) {
			localBest = cand
			t.s.offer(cand)
			noImprove = 0
		} else if pl.Opts.Heuristics.H3H4DPOrdering {
			noImprove++
			// H3 early stop: throughput is unimodal in D, so two
			// consecutive non-improvements end the scan. Cost curves are
			// nearly flat in D under per-GPU-hour pricing (compute cost
			// ~ rate*D*T with T ~ 1/D), so H4 keeps the ascending order
			// but scans every degree — the list is only log2(GPUs) long.
			if pl.Opts.Objective != core.MinCost && noImprove >= 2 {
				return localBest
			}
		}
	}
	return localBest
}

// estimate scores one materialised candidate plan, serving repeats from the
// warm cache: the simulator's makespan evaluation is the measured hot spot
// of a replan, and churn traces re-materialise the same candidates over and
// over. The key — built only when a warm cache is attached, so cold
// searches pay nothing here — is estKey's order-preserving serialization,
// assembled once per plan into the task's reusable scratch buffer. Served
// estimates count as cache hits, not as explored nodes.
func (t *task) estimate(plan core.Plan) (core.Estimate, error) {
	key := ""
	if t.s.warmOn {
		t.estBuf = appendEstKey(t.estBuf[:0], plan)
		key = string(t.estBuf)
		if est, ok := t.s.warmEst[key]; ok {
			t.warmHits++
			// Re-publish so over-cap eviction keeps the working set.
			if t.pendEst == nil {
				t.pendEst = map[string]core.Estimate{}
			}
			t.pendEst[key] = est
			return est, nil
		}
	}
	est, err := t.pl.Sim.Estimate(plan)
	t.explored++
	if err == nil && key != "" {
		if t.pendEst == nil {
			t.pendEst = map[string]core.Estimate{}
		}
		t.pendEst[key] = est
	}
	return est, err
}

// betterCand orders candidates by the objective, breaking metric ties by
// the other metric and exact ties by the plan signature — a stable key, so
// the chosen plan does not depend on which worker finished first. The
// signature is resolved lazily: most comparisons are decided by the
// metrics alone.
func (pl *Planner) betterCand(a, b *candidate) bool {
	ae, be := &a.res.Estimate, &b.res.Estimate
	switch pl.Opts.Objective {
	case core.MinCost:
		if ae.Cost() != be.Cost() {
			return ae.Cost() < be.Cost()
		}
		if ae.IterTime != be.IterTime {
			return ae.IterTime < be.IterTime
		}
	default:
		if ae.IterTime != be.IterTime {
			return ae.IterTime < be.IterTime
		}
		if ae.Cost() != be.Cost() {
			return ae.Cost() < be.Cost()
		}
	}
	return a.signature() < b.signature()
}

// nodeBetter orders DP nodes: by the time metric normally, by resource
// cost-rate (ties broken by time) in the budget fallback's cost-lean pass.
// Exact ties fall through to the node signature so the DP's winner is
// stable under any enumeration interleaving.
func (t *task) nodeBetter(a, b *dpNode, nb int) bool {
	if t.costLean {
		if a.rateUSD != b.rateUSD {
			return a.rateUSD < b.rateUSD
		}
	}
	if am, bm := a.metric(nb), b.metric(nb); am != bm {
		return am < bm
	}
	if a.rateUSD != b.rateUSD {
		return a.rateUSD < b.rateUSD
	}
	return t.sigLess(a, b)
}

// statsBetter is nodeBetter over a not-yet-materialised candidate (aStats,
// aChoice, aChild) against the current best (bStats, bChoice, bChild). The
// chain signatures are compared piecewise — head choice first, then the
// already-materialised children — which appendChoiceSig's terminator makes
// equivalent to comparing whole chain strings.
func (t *task) statsBetter(aStats nodeStats, aChoice stageChoice, aChild *dpNode,
	bStats nodeStats, bChoice stageChoice, bChild *dpNode, nb int) bool {
	if t.costLean {
		if aStats.rateUSD != bStats.rateUSD {
			return aStats.rateUSD < bStats.rateUSD
		}
	}
	if am, bm := aStats.metric(nb), bStats.metric(nb); am != bm {
		return am < bm
	}
	if aStats.rateUSD != bStats.rateUSD {
		return aStats.rateUSD < bStats.rateUSD
	}
	t.sigA = appendChoiceSig(t.sigA[:0], aChoice)
	t.sigB = appendChoiceSig(t.sigB[:0], bChoice)
	if c := bytes.Compare(t.sigA, t.sigB); c != 0 {
		return c < 0
	}
	if aChild == nil || bChild == nil {
		return false // identical leaf chains: not better
	}
	return t.sigLess(aChild, bChild)
}
