package planner

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
)

// search is the shared state of one Plan/PlanContext invocation: the
// cancellation signal, the exploration counter, the H2 minimum-TP cache
// (sound to share — the minimum is a property of the stage shape, not of
// the scan exploring it), and the incumbent best plan.
type search struct {
	pl       *Planner
	done     atomic.Bool
	explored atomic.Int64
	minTP    *minTPCache

	// Warm start (Options.Warm): warmDP/warmEst are read-only snapshots of
	// the persisted DP memos and plan estimates taken when the search
	// starts — every task may read them lock-free — and pendMu guards the
	// entries this search computes for the single merge back into the
	// cache at the end.
	warmOn   bool
	warmDP   map[string]*dpNode
	warmEst  map[string]core.Estimate
	warmHits atomic.Int64
	pendMu   sync.Mutex
	pending  map[string]*dpNode
	pendEst  map[string]core.Estimate

	// mu guards the incumbent. Workers publish candidates through offer's
	// objective-aware compare-and-swap; ties break on the plan signature,
	// never on arrival order, so the winner is independent of scheduling.
	mu      sync.Mutex
	best    *Result
	bestSig string

	watch chan struct{} // closed by stop() to release the ctx watcher
}

func newSearch(pl *Planner, ctx context.Context) *search {
	s := &search{pl: pl, watch: make(chan struct{})}
	if w := pl.Opts.Warm; w != nil {
		if dp, est, mt, ok := w.snapshot(pl.fingerprint(), pl.Sim); ok {
			s.warmOn, s.warmDP, s.warmEst, s.minTP = true, dp, est, mt
		}
	}
	if s.minTP == nil {
		s.minTP = newMinTPCache()
	}
	if d := ctx.Done(); d != nil {
		// Latch cancellation into an atomic so the hot DP loop polls a
		// plain load instead of taking the context's lock per node.
		go func() {
			select {
			case <-d:
				s.done.Store(true)
			case <-s.watch:
			}
		}()
	}
	return s
}

// stop releases the context watcher goroutine.
func (s *search) stop() { close(s.watch) }

func (s *search) expired() bool { return s.done.Load() }

// takePending folds one finished task's computed DP entries into the
// search-wide pending set for the end-of-search cache merge.
func (s *search) takePending(t *task) {
	if len(t.pending) == 0 && len(t.pendEst) == 0 {
		return
	}
	s.pendMu.Lock()
	if s.pending == nil {
		s.pending = make(map[string]*dpNode, len(t.pending))
	}
	for k, v := range t.pending {
		s.pending[k] = v
	}
	if s.pendEst == nil {
		s.pendEst = make(map[string]core.Estimate, len(t.pendEst))
	}
	for k, v := range t.pendEst {
		s.pendEst[k] = v
	}
	s.pendMu.Unlock()
}

// offer publishes a candidate to the shared incumbent.
func (s *search) offer(c *Result, sig string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.best == nil || s.pl.better(c, sig, s.best, s.bestSig) {
		cp := *c
		s.best = &cp
		s.bestSig = sig
	}
}

// runPass fans the (pp, mbs) candidate grid across the worker pool. Each
// job gets a fresh task — its own DP memo and region-state clone — so
// workers share nothing hot but the incumbent and the minimum-TP cache.
func (s *search) runPass(rs *regionState, pool *cluster.Pool, recompute bool) {
	type job struct {
		layers []int
		mbs    int
	}
	var jobs []job
	for _, pp := range s.pl.ppCandidates() {
		layers := partitionLayers(s.pl.Cfg.Layers, pp)
		for _, mbs := range s.pl.mbsCandidates() {
			jobs = append(jobs, job{layers, mbs})
		}
	}
	workers := s.pl.workerCount()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			if s.expired() {
				return
			}
			t := &task{s: s, pl: s.pl, recompute: recompute}
			t.searchDP(rs.clone(), pool, j.layers, j.mbs)
			s.takePending(t)
		}
		return
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if s.expired() {
					continue // drain
				}
				t := &task{s: s, pl: s.pl, recompute: recompute}
				t.searchDP(rs.clone(), pool, j.layers, j.mbs)
				s.takePending(t)
			}
		}()
	}
	for _, j := range jobs {
		if s.expired() {
			break
		}
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// task is one worker's state while exploring a single (pp, mbs) candidate:
// the DP memo is valid only within one DP-degree scan, and the cost-lean
// and recompute flags change what the DP optimises.
type task struct {
	s  *search
	pl *Planner

	dpMemo map[string]*dpNode
	// costLean flips the DP's comparison to prefer cheap stages over fast
	// ones; the budget fallback uses it for its second pass.
	costLean bool
	// recompute marks the current search pass as rematerialisation-mode.
	recompute bool

	// warmBase is the persisted-key prefix shared by the whole (pp, mbs)
	// candidate (pool shape + pp + mbs); warmPrefix extends it with the
	// per-scan fields (d, nb, recompute, costLean). Empty when the search
	// has no warm cache.
	warmBase   string
	warmPrefix string
	// pending/pendEst accumulate this task's computed DP entries and plan
	// estimates under their persisted keys, flushed once into the search
	// after searchDP returns.
	pending map[string]*dpNode
	pendEst map[string]core.Estimate
}

// resetMemo starts a fresh DP-degree scan: the scan-local memo is cleared
// and the persisted-key prefix is recomputed from the scan parameters.
// Callers set costLean/recompute before calling.
func (t *task) resetMemo(d, nb int) {
	t.dpMemo = map[string]*dpNode{}
	if t.warmBase != "" {
		t.warmPrefix = fmt.Sprintf("%s%d|%d|%t|%t@", t.warmBase, d, nb, t.recompute, t.costLean)
	}
}

// searchDP explores DP degrees for one (layer partition, mbs) and publishes
// improvements to the shared incumbent. The H3/H4 early stop is scoped to
// this task's own scan — never to the cross-worker incumbent — so the set
// of explored configurations is identical at any worker count and the
// heuristic ablations stay meaningful.
func (t *task) searchDP(rs *regionState, origPool *cluster.Pool, layers []int, mbs int) {
	pl := t.pl
	pp := len(layers)
	maxPer := pl.Cfg.GlobalBatch / mbs
	if maxPer < 1 {
		return
	}
	maxD := rs.totalGPUs() / pp // upper bound: 1 GPU per stage replica
	if maxD > maxPer {
		maxD = maxPer
	}
	if maxD < 1 {
		return
	}
	if t.s.warmOn {
		t.warmBase = fmt.Sprintf("%s|%d|%d|", rs.shape(), pp, mbs)
	}
	var localBest *Result
	var localSig string
	noImprove := 0
	for _, d := range pl.dCandidates(maxD) {
		if t.s.expired() {
			return
		}
		nb := pl.Cfg.GlobalBatch / (d * mbs)
		if nb < 1 {
			continue
		}
		budget := pl.Opts.Constraints.MaxCostPerIter
		if budget > 0 && pp > budgetExactMaxPP {
			// Deep pipelines make the budget-threading recursion of
			// Listing 1 intractable; fall back to two memoized passes
			// (time-optimal, then cost-lean) and filter by the budget at
			// the end, which is where Listing 1 validates constraints too.
			budget = 0
		}
		var nodes []*dpNode
		t.costLean = false
		t.resetMemo(d, nb)
		if n := t.solveDP(rs.clone(), layers, 0, 0, d, mbs, nb, budget); n != nil {
			nodes = append(nodes, n)
		}
		if pl.Opts.Constraints.MaxCostPerIter > 0 && budget == 0 {
			t.costLean = true
			t.resetMemo(d, nb)
			if n := t.solveDP(rs.clone(), layers, 0, 0, d, mbs, nb, 0); n != nil {
				nodes = append(nodes, n)
			}
			t.costLean = false
		}
		var cand *Result
		var candSig string
		for _, node := range nodes {
			plan, ok := t.buildPlan(node, layers, mbs, origPool)
			if !ok {
				continue
			}
			est, err := t.estimate(plan)
			if err != nil || !est.FitsMemory {
				continue
			}
			if !pl.Opts.Constraints.Satisfied(est.IterTime, est.Cost()) {
				continue
			}
			c := &Result{Plan: plan, Estimate: est}
			sig := plan.String()
			if cand == nil || pl.better(c, sig, cand, candSig) {
				cand, candSig = c, sig
			}
		}
		if cand == nil {
			continue
		}
		if localBest == nil || pl.better(cand, candSig, localBest, localSig) {
			localBest, localSig = cand, candSig
			t.s.offer(cand, candSig)
			noImprove = 0
		} else if pl.Opts.Heuristics.H3H4DPOrdering {
			noImprove++
			// H3 early stop: throughput is unimodal in D, so two
			// consecutive non-improvements end the scan. Cost curves are
			// nearly flat in D under per-GPU-hour pricing (compute cost
			// ~ rate*D*T with T ~ 1/D), so H4 keeps the ascending order
			// but scans every degree — the list is only log2(GPUs) long.
			if pl.Opts.Objective != core.MinCost && noImprove >= 2 {
				return
			}
		}
	}
}

// estimate scores one materialised candidate plan, serving repeats from the
// warm cache: the simulator's makespan evaluation is the measured hot spot
// of a replan, and churn traces re-materialise the same candidates over and
// over. The key — built only when a warm cache is attached, so cold
// searches pay nothing here — is estKey's order-preserving serialization.
// Served estimates count as cache hits, not as explored nodes.
func (t *task) estimate(plan core.Plan) (core.Estimate, error) {
	key := ""
	if t.s.warmOn {
		key = estKey(plan)
		if est, ok := t.s.warmEst[key]; ok {
			t.s.warmHits.Add(1)
			// Re-publish so over-cap eviction keeps the working set.
			if t.pendEst == nil {
				t.pendEst = map[string]core.Estimate{}
			}
			t.pendEst[key] = est
			return est, nil
		}
	}
	est, err := t.pl.Sim.Estimate(plan)
	t.s.explored.Add(1)
	if err == nil && key != "" {
		if t.pendEst == nil {
			t.pendEst = map[string]core.Estimate{}
		}
		t.pendEst[key] = est
	}
	return est, err
}

// better orders candidates by the objective, breaking metric ties by the
// other metric and exact ties by the plan signature — a stable key, so the
// chosen plan does not depend on which worker finished first.
func (pl *Planner) better(a *Result, asig string, b *Result, bsig string) bool {
	switch pl.Opts.Objective {
	case core.MinCost:
		if a.Estimate.Cost() != b.Estimate.Cost() {
			return a.Estimate.Cost() < b.Estimate.Cost()
		}
		if a.Estimate.IterTime != b.Estimate.IterTime {
			return a.Estimate.IterTime < b.Estimate.IterTime
		}
	default:
		if a.Estimate.IterTime != b.Estimate.IterTime {
			return a.Estimate.IterTime < b.Estimate.IterTime
		}
		if a.Estimate.Cost() != b.Estimate.Cost() {
			return a.Estimate.Cost() < b.Estimate.Cost()
		}
	}
	return asig < bsig
}

// nodeBetter orders DP nodes: by the time metric normally, by resource
// cost-rate (ties broken by time) in the budget fallback's cost-lean pass.
// Exact ties fall through to the node signature so the DP's winner is
// stable under any enumeration interleaving.
func (t *task) nodeBetter(a, b *dpNode, nb int) bool {
	if t.costLean {
		if a.rateUSD != b.rateUSD {
			return a.rateUSD < b.rateUSD
		}
	}
	if am, bm := a.metric(nb), b.metric(nb); am != bm {
		return am < bm
	}
	if a.rateUSD != b.rateUSD {
		return a.rateUSD < b.rateUSD
	}
	return a.sig() < b.sig()
}
