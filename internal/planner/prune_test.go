package planner

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/sim"
)

// TestBoundPruningExact is the pruning admissibility oracle: on pools
// covering the homogeneous, heterogeneous, geo-distributed, constrained,
// and cost-objective shapes, the search with bound-based pruning must
// return the identical plan and estimate the unpruned search returns —
// pruning may only skip work, never change the answer. Explored must never
// grow, and must shrink somewhere across the suite (the bounds actually
// fire).
func TestBoundPruningExact(t *testing.T) {
	cfg := model.OPT350M()
	prof, err := profiler.Collect(cfg, []core.GPUType{core.A100, core.V100}, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ev := sim.New(cfg, prof)
	cases := []struct {
		name string
		pool *cluster.Pool
		opts Options
	}{
		{
			name: "homogeneous-throughput",
			pool: cluster.NewPool().Set(zoneA, core.A100, 64),
			opts: Options{Objective: core.MaxThroughput},
		},
		{
			name: "heterogeneous-throughput",
			pool: cluster.NewPool().Set(zoneA, core.A100, 32).Set(zoneA, core.V100, 32),
			opts: Options{Objective: core.MaxThroughput},
		},
		{
			name: "geo-min-cost",
			pool: cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneW, core.A100, 16),
			opts: Options{Objective: core.MinCost},
		},
		{
			name: "budget-constrained",
			pool: cluster.NewPool().Set(zoneA, core.A100, 16),
			opts: Options{Objective: core.MaxThroughput, Constraints: core.Constraints{MaxCostPerIter: 0.5}},
		},
		{
			name: "min-throughput-constrained",
			pool: cluster.NewPool().Set(zoneA, core.A100, 32),
			opts: Options{Objective: core.MinCost, Constraints: core.Constraints{MinThroughput: 0.01}},
		},
		{
			name: "no-heuristics-ablation",
			pool: cluster.NewPool().Set(zoneA, core.A100, 8).Set(zoneB, core.A100, 8),
			opts: Options{Objective: core.MaxThroughput, Heuristics: NoHeuristics()},
		},
	}
	anyPruned := false
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.opts.Heuristics == (Heuristics{}) && tc.name != "no-heuristics-ablation" {
				tc.opts.Heuristics = AllHeuristics()
			}
			pruned := tc.opts
			unpruned := tc.opts
			unpruned.DisableBoundPruning = true
			a, errA := New(cfg, ev, pruned).Plan(tc.pool)
			b, errB := New(cfg, ev, unpruned).Plan(tc.pool)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("error mismatch: pruned=%v unpruned=%v", errA, errB)
			}
			if errA != nil {
				return
			}
			if a.Plan.String() != b.Plan.String() {
				t.Errorf("pruning changed the chosen plan:\npruned:   %s\nunpruned: %s", a.Plan, b.Plan)
			}
			if a.Estimate.IterTime != b.Estimate.IterTime || a.Estimate.Cost() != b.Estimate.Cost() {
				t.Errorf("pruning changed the estimate: %+v vs %+v", a.Estimate, b.Estimate)
			}
			if a.Explored > b.Explored {
				t.Errorf("pruned search explored more than unpruned: %d > %d", a.Explored, b.Explored)
			}
			if a.Explored < b.Explored {
				anyPruned = true
			}
		})
	}
	if !anyPruned {
		t.Error("bounds never fired across the whole suite; pruning is dead code")
	}
}

// TestDominancePruningExact is the dominance-pruning admissibility oracle —
// the TestBoundPruningExact pattern with the dominance knob isolated. On
// heterogeneous and geo-distributed pool shapes the search with dominance
// pruning (the default) must return the identical plan and estimate the
// dominance-disabled search returns: the completion bound only skips
// compositions that lose strictly, so ties and winners are untouched.
// Explored never grows, and must shrink strictly on the heterogeneous64
// shape the optimisation targets (the BENCH_planner.json row).
func TestDominancePruningExact(t *testing.T) {
	cfg := model.OPT350M()
	prof, err := profiler.Collect(cfg, []core.GPUType{core.A100, core.V100}, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ev := sim.New(cfg, prof)
	cases := []struct {
		name string
		pool *cluster.Pool
		opts Options
		// mustShrink marks the shapes where the dominance bound is required
		// to fire, not merely allowed to.
		mustShrink bool
	}{
		{
			name:       "heterogeneous64",
			pool:       cluster.NewPool().Set(zoneA, core.A100, 32).Set(zoneA, core.V100, 32),
			opts:       Options{Objective: core.MaxThroughput},
			mustShrink: true,
		},
		{
			name: "heterogeneous-geo",
			pool: cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneW, core.V100, 16),
			opts: Options{Objective: core.MaxThroughput},
		},
		{
			name: "geo-min-cost",
			pool: cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneW, core.A100, 16),
			opts: Options{Objective: core.MinCost},
		},
		{
			name: "heterogeneous-min-cost",
			pool: cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneA, core.V100, 16),
			opts: Options{Objective: core.MinCost},
		},
		{
			name: "heterogeneous-budget",
			pool: cluster.NewPool().Set(zoneA, core.A100, 16).Set(zoneA, core.V100, 16),
			opts: Options{Objective: core.MaxThroughput, Constraints: core.Constraints{MaxCostPerIter: 0.5}},
		},
	}
	anyPruned := false
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.opts.Heuristics = AllHeuristics()
			pruned := tc.opts
			unpruned := tc.opts
			unpruned.DisableDominancePruning = true
			a, errA := New(cfg, ev, pruned).Plan(tc.pool)
			b, errB := New(cfg, ev, unpruned).Plan(tc.pool)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("error mismatch: pruned=%v unpruned=%v", errA, errB)
			}
			if errA != nil {
				return
			}
			if a.Plan.String() != b.Plan.String() {
				t.Errorf("dominance pruning changed the chosen plan:\npruned:   %s\nunpruned: %s", a.Plan, b.Plan)
			}
			if a.Estimate.IterTime != b.Estimate.IterTime || a.Estimate.Cost() != b.Estimate.Cost() {
				t.Errorf("dominance pruning changed the estimate: %+v vs %+v", a.Estimate, b.Estimate)
			}
			if a.Explored > b.Explored {
				t.Errorf("pruned search explored more than unpruned: %d > %d", a.Explored, b.Explored)
			}
			if tc.mustShrink && a.Explored >= b.Explored {
				t.Errorf("dominance bound never fired on %s: explored %d vs %d", tc.name, a.Explored, b.Explored)
			}
			if a.Explored < b.Explored {
				anyPruned = true
			}
		})
	}
	if !anyPruned {
		t.Error("dominance bounds never fired across the whole suite; pruning is dead code")
	}
}

// noMarkerEval wraps an Evaluator without promoting the BoundPrunable
// marker: its method set is exactly Evaluator's.
type noMarkerEval struct{ Evaluator }

// TestPruningRequiresBoundPrunable: an evaluator that does not declare the
// admissibility property is searched unpruned — identical Explored to an
// explicitly unpruned search — because the bounds are only proven for
// backends that opt in.
func TestPruningRequiresBoundPrunable(t *testing.T) {
	cfg := model.OPT350M()
	prof, err := profiler.Collect(cfg, []core.GPUType{core.A100}, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ev := sim.New(cfg, prof)
	pool := cluster.NewPool().Set(zoneA, core.A100, 64)
	opts := Options{Objective: core.MaxThroughput, Heuristics: AllHeuristics(), Workers: 1}

	wrapped, err := New(cfg, noMarkerEval{ev}, opts).Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	unprunedOpts := opts
	unprunedOpts.DisableBoundPruning = true
	unprunedOpts.DisableDominancePruning = true
	unpruned, err := New(cfg, ev, unprunedOpts).Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := New(cfg, ev, opts).Plan(pool)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Explored != unpruned.Explored {
		t.Errorf("non-BoundPrunable evaluator was pruned: explored %d, want %d", wrapped.Explored, unpruned.Explored)
	}
	if pruned.Explored >= unpruned.Explored {
		t.Errorf("marker-declaring evaluator did not prune: %d >= %d", pruned.Explored, unpruned.Explored)
	}
	if wrapped.Plan.String() != unpruned.Plan.String() || pruned.Plan.String() != unpruned.Plan.String() {
		t.Error("plans diverged across pruning modes")
	}
}
