package model

// Additional dense decoder configurations beyond the paper's two evaluation
// models, for users and for stress-testing the planner across scales.

// OPT13B returns OPT-1.3B.
func OPT13B() Config {
	return Config{
		Name: "OPT-1.3B", Hidden: 2048, Layers: 24, Heads: 32,
		Vocab: 50272, SeqLen: 2048, GlobalBatch: 2048,
	}
}

// GPT2XL returns GPT-2 XL (1.5B).
func GPT2XL() Config {
	return Config{
		Name: "GPT-2-XL", Hidden: 1600, Layers: 48, Heads: 25,
		Vocab: 50257, SeqLen: 1024, GlobalBatch: 512,
	}
}

// Llama7B returns a LLaMA-7B-shaped dense decoder. The real model uses
// SwiGLU and RoPE; the dense accounting here treats its MLP as the standard
// 4x expansion, which slightly overstates parameters (~10%) but keeps the
// planner mechanics identical.
func Llama7B() Config {
	return Config{
		Name: "LLaMA-7B", Hidden: 4096, Layers: 32, Heads: 32,
		Vocab: 32000, SeqLen: 2048, GlobalBatch: 1024,
	}
}

// Zoo returns the built-in configurations by name.
func Zoo() map[string]Config {
	out := map[string]Config{}
	for _, c := range []Config{OPT350M(), GPTNeo27B(), OPT13B(), GPT2XL(), Llama7B()} {
		out[c.Name] = c
	}
	return out
}
