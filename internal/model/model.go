// Package model describes the transformer models that the evaluation
// trains (OPT-350M, GPT-Neo-2.7B) plus a generic config for others.
//
// It provides the analytical per-layer accounting that the profiler and
// simulator need: parameter counts, forward/backward FLOPs, activation
// footprints, and message sizes for tensor/pipeline/data-parallel
// communication. Formulas follow the standard dense-decoder accounting used
// by Megatron-style systems.
package model

import "fmt"

// Config describes a dense decoder-only transformer and its training job
// hyperparameters. The planner never alters GlobalBatch or SeqLen (§4.2:
// Sailor does not change training dynamics).
type Config struct {
	Name        string
	Hidden      int // model (embedding) dimension
	Layers      int // number of transformer blocks
	Heads       int // attention heads
	Vocab       int // vocabulary size
	SeqLen      int // sequence length in tokens
	GlobalBatch int // sequences per iteration
}

// OPT350M returns the OPT-350M configuration used throughout §5
// (gbs 2048 sequences, seq len 2048 tokens, Adam).
func OPT350M() Config {
	return Config{
		Name: "OPT-350M", Hidden: 1024, Layers: 24, Heads: 16,
		Vocab: 50272, SeqLen: 2048, GlobalBatch: 2048,
	}
}

// GPTNeo27B returns the GPT-Neo-2.7B configuration used in §5.
func GPTNeo27B() Config {
	return Config{
		Name: "GPT-Neo-2.7B", Hidden: 2560, Layers: 32, Heads: 20,
		Vocab: 50257, SeqLen: 2048, GlobalBatch: 2048,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.Hidden <= 0 || c.Layers <= 0 || c.Heads <= 0 || c.Vocab <= 0 ||
		c.SeqLen <= 0 || c.GlobalBatch <= 0:
		return fmt.Errorf("model %q: all dimensions must be positive: %+v", c.Name, c)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model %q: hidden %d not divisible by heads %d", c.Name, c.Hidden, c.Heads)
	}
	return nil
}

// LayerParams returns parameters of one transformer block: QKV and output
// projections (4h^2), the two MLP matrices (8h^2), and biases/layer norms
// (~13h).
func (c Config) LayerParams() int64 {
	h := int64(c.Hidden)
	return 12*h*h + 13*h
}

// EmbeddingParams returns the token + learned position embedding parameters,
// resident on the first pipeline stage (the output head on the last stage is
// tied to the token embedding).
func (c Config) EmbeddingParams() int64 {
	return int64(c.Vocab)*int64(c.Hidden) + int64(c.SeqLen)*int64(c.Hidden)
}

// TotalParams returns the full model parameter count.
func (c Config) TotalParams() int64 {
	return int64(c.Layers)*c.LayerParams() + c.EmbeddingParams()
}

// StageParams returns the parameters a worker holds for `layers` transformer
// blocks with tensor parallelism tp, plus the embedding share if the stage is
// first or last. Layer-norm/bias parameters are replicated across TP ranks;
// matrices are sharded.
func (c Config) StageParams(layers, tp int, first, last bool) int64 {
	h := int64(c.Hidden)
	matrix := 12 * h * h / int64(tp)
	rest := 13 * h
	p := int64(layers) * (matrix + rest)
	if first {
		p += c.EmbeddingParams() / int64(tp)
	}
	if last {
		// Tied output head: vocab projection shard.
		p += int64(c.Vocab) * h / int64(tp)
	}
	return p
}

// LayerFwdFLOPs returns the forward-pass FLOPs of one transformer block for
// a microbatch of b sequences: 24*b*s*h^2 for the matmuls plus 4*b*s^2*h for
// attention score/value products.
func (c Config) LayerFwdFLOPs(b int) float64 {
	s := float64(c.SeqLen)
	h := float64(c.Hidden)
	bb := float64(b)
	return bb * s * (24*h*h + 4*h*s)
}

// LayerBwdFLOPs returns the backward-pass FLOPs (2x forward for dense nets).
func (c Config) LayerBwdFLOPs(b int) float64 { return 2 * c.LayerFwdFLOPs(b) }

// HeadFLOPs returns the FLOPs of the output projection + softmax loss for a
// microbatch of b sequences, paid by the last stage only.
func (c Config) HeadFLOPs(b int) float64 {
	return 2 * float64(b) * float64(c.SeqLen) * float64(c.Hidden) * float64(c.Vocab)
}

// ActivationBytesPerLayer returns the activation memory one worker retains
// for one microbatch of one layer at tensor parallelism tp, in bytes
// (half-precision training, no recomputation). The standard accounting is
//
//	s*b*h*(10 + 24/t) + 5*a*s^2*b/t
//
// where the first term covers MLP/LN/dropout buffers and the second the
// attention score matrices.
func (c Config) ActivationBytesPerLayer(b, tp int) int64 {
	s := int64(c.SeqLen)
	h := int64(c.Hidden)
	a := int64(c.Heads)
	bb := int64(b)
	t := int64(tp)
	return s*bb*h*10 + s*bb*h*24/t + 5*a*s*s*bb/t
}

// BoundaryActivationBytes returns the bytes of the activation tensor sent
// between adjacent pipeline stages for one microbatch (half precision).
func (c Config) BoundaryActivationBytes(b int) int64 {
	return 2 * int64(b) * int64(c.SeqLen) * int64(c.Hidden)
}

// GradBytesPerLayer returns the gradient bytes all-reduced per layer by data
// parallelism (half-precision gradients), for a TP shard of degree tp.
func (c Config) GradBytesPerLayer(tp int) int64 {
	h := int64(c.Hidden)
	return 2 * (12*h*h/int64(tp) + 13*h)
}

// TPCollectiveBytesPerLayer returns the bytes moved per microbatch per layer
// by tensor-parallel all-reduces: two all-reduces per layer in forward and
// two in backward, each of the boundary activation size.
func (c Config) TPCollectiveBytesPerLayer(b int) int64 {
	return 4 * c.BoundaryActivationBytes(b)
}
