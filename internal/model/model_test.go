package model

import (
	"testing"
	"testing/quick"
)

func TestOPT350MParamCount(t *testing.T) {
	c := OPT350M()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	total := c.TotalParams()
	// OPT-350M has ~350M parameters; our accounting should land within 15%.
	if total < 300e6 || total > 420e6 {
		t.Errorf("OPT-350M params = %d, want ~350M", total)
	}
}

func TestGPTNeo27BParamCount(t *testing.T) {
	c := GPTNeo27B()
	total := c.TotalParams()
	if total < 2.4e9 || total > 3.0e9 {
		t.Errorf("GPT-Neo-2.7B params = %d, want ~2.7B", total)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	c := OPT350M()
	c.Heads = 7 // 1024 % 7 != 0
	if err := c.Validate(); err == nil {
		t.Error("want divisibility error")
	}
	c = OPT350M()
	c.Layers = 0
	if err := c.Validate(); err == nil {
		t.Error("want positivity error")
	}
}

func TestStageParamsTPSharding(t *testing.T) {
	c := OPT350M()
	full := c.StageParams(6, 1, false, false)
	half := c.StageParams(6, 2, false, false)
	// Matrices shard by TP; biases/LN replicate, so half > full/2 but close.
	if half >= full {
		t.Fatalf("TP=2 should shrink stage params: %d >= %d", half, full)
	}
	if half < full/2 {
		t.Fatalf("TP=2 cannot shard below matrices/2 + replicated rest: %d < %d", half, full/2)
	}
}

func TestStageParamsEmbeddingPlacement(t *testing.T) {
	c := OPT350M()
	mid := c.StageParams(6, 1, false, false)
	first := c.StageParams(6, 1, true, false)
	last := c.StageParams(6, 1, false, true)
	if first <= mid {
		t.Error("first stage must carry embedding params")
	}
	if last <= mid {
		t.Error("last stage must carry output-head params")
	}
}

func TestLayerFLOPsScaleWithBatch(t *testing.T) {
	c := OPT350M()
	if got, want := c.LayerFwdFLOPs(4), 4*c.LayerFwdFLOPs(1); got != want {
		t.Errorf("FLOPs not linear in batch: %v vs %v", got, want)
	}
	if c.LayerBwdFLOPs(2) != 2*c.LayerFwdFLOPs(2) {
		t.Error("backward should be 2x forward")
	}
}

func TestActivationBytesShrinkWithTP(t *testing.T) {
	c := GPTNeo27B()
	a1 := c.ActivationBytesPerLayer(4, 1)
	a4 := c.ActivationBytesPerLayer(4, 4)
	if a4 >= a1 {
		t.Fatalf("TP=4 should reduce activation bytes: %d >= %d", a4, a1)
	}
	// The 10*s*b*h term is not sharded, so reduction is partial.
	if a4 < a1/4 {
		t.Fatalf("activation sharding too aggressive: %d < %d", a4, a1/4)
	}
}

func TestBoundaryActivationBytes(t *testing.T) {
	c := OPT350M()
	// 2 bytes * b * s * h
	want := int64(2 * 3 * 2048 * 1024)
	if got := c.BoundaryActivationBytes(3); got != want {
		t.Errorf("BoundaryActivationBytes(3) = %d, want %d", got, want)
	}
}

func TestGradBytesPerLayer(t *testing.T) {
	c := OPT350M()
	g1 := c.GradBytesPerLayer(1)
	g2 := c.GradBytesPerLayer(2)
	if g2 >= g1 {
		t.Error("TP sharding should reduce per-rank gradient bytes")
	}
	// Gradients are half precision: bytes = 2 * params-ish.
	if g1 < c.LayerParams() || g1 > 3*c.LayerParams() {
		t.Errorf("grad bytes %d implausible for %d params", g1, c.LayerParams())
	}
}

// Property: stage parameter accounting is additive — splitting a layer range
// into two stages conserves parameters (modulo no embedding).
func TestStageParamsAdditiveProperty(t *testing.T) {
	c := OPT350M()
	f := func(n1, n2 uint8, tpExp uint8) bool {
		l1, l2 := int(n1%8)+1, int(n2%8)+1
		tp := 1 << (tpExp % 3)
		joint := c.StageParams(l1+l2, tp, false, false)
		split := c.StageParams(l1, tp, false, false) + c.StageParams(l2, tp, false, false)
		return joint == split
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: activation bytes are monotone in microbatch size.
func TestActivationMonotoneProperty(t *testing.T) {
	c := GPTNeo27B()
	f := func(b uint8, tpExp uint8) bool {
		mb := int(b%16) + 1
		tp := 1 << (tpExp % 4)
		return c.ActivationBytesPerLayer(mb+1, tp) > c.ActivationBytesPerLayer(mb, tp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTPCollectiveBytes(t *testing.T) {
	c := OPT350M()
	if got, want := c.TPCollectiveBytesPerLayer(2), 4*c.BoundaryActivationBytes(2); got != want {
		t.Errorf("TPCollectiveBytesPerLayer = %d, want %d", got, want)
	}
}
