package model

import "testing"

func TestZooParamCounts(t *testing.T) {
	cases := []struct {
		cfg    Config
		lo, hi float64 // billions
	}{
		{OPT13B(), 1.1, 1.6},
		{GPT2XL(), 1.3, 1.9},
		{Llama7B(), 6.0, 8.5},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.cfg.Name, err)
			continue
		}
		got := float64(c.cfg.TotalParams()) / 1e9
		if got < c.lo || got > c.hi {
			t.Errorf("%s params = %.2fB, want in [%v, %v]", c.cfg.Name, got, c.lo, c.hi)
		}
	}
}

func TestZooRegistry(t *testing.T) {
	z := Zoo()
	if len(z) != 5 {
		t.Fatalf("zoo has %d models, want 5", len(z))
	}
	for name, cfg := range z {
		if cfg.Name != name {
			t.Errorf("zoo key %q maps to %q", name, cfg.Name)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
}
