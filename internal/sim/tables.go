package sim

// Dense timing tables and reusable evaluation scratch. The simulator's
// Estimate is the planner's inner loop: profiling shows it dominated by
// profiler map lookups (with interpolation re-run per query), 1F1B schedule
// construction, and the map-based makespan evaluator. This file
// precomputes a dense (gpu, tp, mbs) → LayerTiming table at first use —
// values come from the profiler's own lookup, so interpolated entries are
// bit-identical — and pools the per-call scratch so a steady-state Estimate
// allocates only its result slice.

import (
	"math/bits"
	"sync"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/profiler"
)

// tableTPSlots bounds the tensor-parallel degrees the dense table indexes:
// powers of two up to 1<<(tableTPSlots-1). Profiles never exceed the node
// size (H1), far below this.
const tableTPSlots = 7

// timingTable is the dense lookup for one profile: flat arrays indexed by
// (gpu index, log2 tp, mbs-1), with a validity mask. Queries outside the
// table (unprofiled type, non-power-of-two TP, microbatch beyond the grid)
// fall back to the profiler's lookup, so behaviour is unchanged — only
// faster on the grid every search actually visits.
type timingTable struct {
	gpuIdx map[core.GPUType]int
	maxMBS int
	layer  []profiler.LayerTiming
	head   []profiler.LayerTiming
	valid  []bool
}

func buildTimingTable(p *profiler.Profile) *timingTable {
	t := &timingTable{gpuIdx: map[core.GPUType]int{}}
	if p == nil || len(p.MBSGrid) == 0 {
		return t
	}
	t.maxMBS = p.MBSGrid[len(p.MBSGrid)-1]
	gpus := make([]core.GPUType, 0, len(p.TPGrid))
	for g := range p.TPGrid {
		gpus = append(gpus, g)
	}
	for _, g := range gpus {
		t.gpuIdx[g] = len(t.gpuIdx)
	}
	n := len(gpus) * tableTPSlots * t.maxMBS
	t.layer = make([]profiler.LayerTiming, n)
	t.head = make([]profiler.LayerTiming, n)
	t.valid = make([]bool, n)
	for g, gi := range t.gpuIdx {
		for _, tp := range p.TPGrid[g] {
			slot := tpSlot(tp)
			if slot < 0 {
				continue
			}
			for mbs := 1; mbs <= t.maxMBS; mbs++ {
				lt, err := p.LayerTimingFor(g, mbs, tp)
				if err != nil {
					continue
				}
				ht, err := p.HeadTimingFor(g, mbs, tp)
				if err != nil {
					continue
				}
				i := (gi*tableTPSlots+slot)*t.maxMBS + mbs - 1
				t.layer[i], t.head[i], t.valid[i] = lt, ht, true
			}
		}
	}
	return t
}

// tpSlot maps a power-of-two TP degree to its table slot, or -1.
func tpSlot(tp int) int {
	if tp <= 0 || tp&(tp-1) != 0 {
		return -1
	}
	s := bits.TrailingZeros(uint(tp))
	if s >= tableTPSlots {
		return -1
	}
	return s
}

// lookup returns the (layer, head) timings for a key, or ok=false when the
// key is off-table.
func (t *timingTable) lookup(g core.GPUType, mbs, tp int) (profiler.LayerTiming, profiler.LayerTiming, bool) {
	gi, ok := t.gpuIdx[g]
	if !ok || mbs < 1 || mbs > t.maxMBS {
		return profiler.LayerTiming{}, profiler.LayerTiming{}, false
	}
	slot := tpSlot(tp)
	if slot < 0 {
		return profiler.LayerTiming{}, profiler.LayerTiming{}, false
	}
	i := (gi*tableTPSlots+slot)*t.maxMBS + mbs - 1
	if !t.valid[i] {
		return profiler.LayerTiming{}, profiler.LayerTiming{}, false
	}
	return t.layer[i], t.head[i], true
}

// timings returns the dense table, building it on first use. Racing
// builders construct identical tables; the first store wins.
func (s *Simulator) timings() *timingTable {
	if t := s.tbl.Load(); t != nil {
		return t
	}
	t := buildTimingTable(s.Prof)
	s.tbl.CompareAndSwap(nil, t)
	return s.tbl.Load()
}

// layerTiming resolves one per-block timing through the table with the
// profiler's lookup as the off-table fallback.
func (s *Simulator) layerTiming(g core.GPUType, mbs, tp int) (profiler.LayerTiming, error) {
	if lt, _, ok := s.timings().lookup(g, mbs, tp); ok {
		return lt, nil
	}
	return s.Prof.LayerTimingFor(g, mbs, tp)
}

// headTiming is layerTiming for the output head.
func (s *Simulator) headTiming(g core.GPUType, mbs, tp int) (profiler.LayerTiming, error) {
	if _, ht, ok := s.timings().lookup(g, mbs, tp); ok {
		return ht, nil
	}
	return s.Prof.HeadTimingFor(g, mbs, tp)
}

// estScratch is the pooled working storage of one Estimate call.
type estScratch struct {
	fwd, bwd, comm    []float64
	pfwd, pbwd, pcomm []float64 // previous pipeline's vectors, for dedup
	mk                pipeline.Scratch
	zones             []core.Zone
	zoneN             []int
}

var estScratchPool = sync.Pool{New: func() any { return &estScratch{} }}

// sized returns a float64 slice of length n carved from buf.
func sized(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// syncCacheKey identifies one ring all-reduce evaluation.
type syncCacheKey struct {
	class int8
	dp    int32
	bytes int64
}

// syncCache memoizes stageSyncTime's ring all-reduce evaluations — pure
// functions of the profile's network fit, hit with the same handful of
// (class, bytes, dp) keys for every candidate of a search.
type syncCache struct {
	mu sync.RWMutex
	m  map[syncCacheKey]float64
}

func (c *syncCache) get(k syncCacheKey) (float64, bool) {
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	return v, ok
}

func (c *syncCache) put(k syncCacheKey, v float64) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[syncCacheKey]float64{}
	}
	c.m[k] = v
	c.mu.Unlock()
}
