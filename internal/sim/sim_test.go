package sim

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/profiler"
)

var (
	zoneA = core.Zone{Region: "us-central1", Name: "us-central1-a"}
	zoneB = core.Zone{Region: "us-central1", Name: "us-central1-b"}
	zoneW = core.Zone{Region: "us-west1", Name: "us-west1-a"}
)

// uniformPlan builds a plan with identical replicas per stage.
func uniformPlan(g core.GPUType, z core.Zone, pp, dp, tp, mbs, layers int) core.Plan {
	per := layers / pp
	stages := make([]core.StagePlan, pp)
	rem := layers - per*pp
	first := 0
	for i := range stages {
		n := per
		if i < rem {
			n++
		}
		reps := make([]core.StageReplica, dp)
		for j := range reps {
			reps[j] = core.StageReplica{GPU: g, TP: tp, Zone: z}
		}
		stages[i] = core.StagePlan{FirstLayer: first, NumLayers: n, Replicas: reps}
		first += n
	}
	return core.Plan{MicroBatchSize: mbs, Stages: stages}
}

func newSim(t *testing.T, cfg model.Config, gpus ...core.GPUType) *Simulator {
	t.Helper()
	prof, err := profiler.Collect(cfg, gpus, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, prof)
}

func TestEstimateBasics(t *testing.T) {
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	plan := uniformPlan(core.A100, zoneA, 2, 4, 1, 2, cfg.Layers)
	e, err := s.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if e.IterTime <= 0 {
		t.Error("iteration time must be positive")
	}
	if e.ComputeCost <= 0 {
		t.Error("compute cost must be positive")
	}
	if e.EgressCost != 0 {
		t.Errorf("single-zone plan bills no egress, got %v", e.EgressCost)
	}
	if !e.FitsMemory {
		t.Error("OPT-350M PP=2 on A100 should fit")
	}
	if len(e.StageTimes) != 2 {
		t.Errorf("StageTimes = %v, want 2 entries", e.StageTimes)
	}
}

func TestNumMicrobatches(t *testing.T) {
	cfg := model.OPT350M() // gbs 2048
	plan := uniformPlan(core.A100, zoneA, 2, 4, 1, 2, cfg.Layers)
	if got := NumMicrobatches(cfg, plan); got != 256 {
		t.Errorf("NumMicrobatches = %d, want 2048/(4*2)=256", got)
	}
	if got := NumMicrobatches(cfg, core.Plan{}); got != 0 {
		t.Errorf("empty plan microbatches = %d, want 0", got)
	}
}

func TestMoreDataParallelismRaisesThroughputThenSaturates(t *testing.T) {
	// Heuristic H3's premise: throughput grows with DP, with diminishing
	// returns as all-reduce costs grow.
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	var prev float64
	for _, dp := range []int{1, 2, 4, 8} {
		plan := uniformPlan(core.A100, zoneA, 2, dp, 1, 2, cfg.Layers)
		tp, err := s.Throughput(plan)
		if err != nil {
			t.Fatalf("dp=%d: %v", dp, err)
		}
		if tp <= prev {
			t.Fatalf("throughput should grow with DP in-zone: dp=%d %v <= %v", dp, tp, prev)
		}
		prev = tp
	}
}

func TestStragglerGPUDominates(t *testing.T) {
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100, core.V100)
	pure := uniformPlan(core.A100, zoneA, 2, 2, 2, 2, cfg.Layers)
	mixed := uniformPlan(core.A100, zoneA, 2, 2, 2, 2, cfg.Layers)
	// Replace stage 1 entirely with V100s: its compute time bounds the
	// steady phase.
	for j := range mixed.Stages[1].Replicas {
		mixed.Stages[1].Replicas[j].GPU = core.V100
	}
	ep, err := s.Estimate(pure)
	if err != nil {
		t.Fatal(err)
	}
	em, err := s.Estimate(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if em.IterTime <= ep.IterTime {
		t.Errorf("V100 stage must slow the pipeline: %v <= %v", em.IterTime, ep.IterTime)
	}
	if em.StragglerStage != 1 {
		t.Errorf("straggler stage = %d, want 1", em.StragglerStage)
	}
}

func TestBalancedHeterogeneousBeatsNaive(t *testing.T) {
	// Load balancing: giving the V100 stage fewer layers narrows the
	// straggler gap — the effect Sailor's planner exploits (§5.2.2).
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100, core.V100)
	naive := uniformPlan(core.A100, zoneA, 2, 2, 2, 2, cfg.Layers)
	for j := range naive.Stages[1].Replicas {
		naive.Stages[1].Replicas[j].GPU = core.V100
	}
	balanced := naive
	balanced.Stages = []core.StagePlan{
		{FirstLayer: 0, NumLayers: 18, Replicas: naive.Stages[0].Replicas},
		{FirstLayer: 18, NumLayers: 6, Replicas: naive.Stages[1].Replicas},
	}
	en, err := s.Estimate(naive)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := s.Estimate(balanced)
	if err != nil {
		t.Fatal(err)
	}
	if eb.IterTime >= en.IterTime {
		t.Errorf("balanced split %v should beat 50/50 %v", eb.IterTime, en.IterTime)
	}
}

func TestCrossRegionSyncPenalty(t *testing.T) {
	// H5's premise: data parallelism across regions is much slower.
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	inZone := uniformPlan(core.A100, zoneA, 2, 4, 1, 2, cfg.Layers)
	crossRegion := uniformPlan(core.A100, zoneA, 2, 4, 1, 2, cfg.Layers)
	for i := range crossRegion.Stages {
		crossRegion.Stages[i].Replicas[2].Zone = zoneW
		crossRegion.Stages[i].Replicas[3].Zone = zoneW
	}
	ez, err := s.Estimate(inZone)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := s.Estimate(crossRegion)
	if err != nil {
		t.Fatal(err)
	}
	// Gradient sync over the slow inter-region link lands on the critical
	// path once per iteration; with gbs 2048 the relative penalty is a few
	// percent here and grows with DP (H3/H5 reason about exactly this).
	if ec.IterTime < 1.02*ez.IterTime {
		t.Errorf("cross-region DP should be measurably slower: %v vs %v", ec.IterTime, ez.IterTime)
	}
	if ec.EgressCost <= 0 {
		t.Error("cross-region sync must bill egress")
	}
}

func TestCrossRegionPipelineCheaperThanCrossRegionDP(t *testing.T) {
	// H5: spread the pipeline across regions, keep DP inside one. With the
	// static 1F1B schedule, cross-region p2p pays a per-microbatch latency
	// stall, so the advantage holds when the microbatch count is modest
	// (large mbs x dp) — which is exactly the regime Sailor's geo plans
	// pick (§5.2.3: "Sailor employs larger microbatch sizes").
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	const dp, mbs = 16, 8 // nb = 2048/(16*8) = 16 microbatches
	ppSplit := uniformPlan(core.A100, zoneA, 2, dp, 1, mbs, cfg.Layers)
	for j := range ppSplit.Stages[1].Replicas {
		ppSplit.Stages[1].Replicas[j].Zone = zoneW
	}
	dpSplit := uniformPlan(core.A100, zoneA, 2, dp, 1, mbs, cfg.Layers)
	for i := range dpSplit.Stages {
		for j := dp / 2; j < dp; j++ {
			dpSplit.Stages[i].Replicas[j].Zone = zoneW
		}
	}
	ep, err := s.Estimate(ppSplit)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := s.Estimate(dpSplit)
	if err != nil {
		t.Fatal(err)
	}
	if ep.IterTime >= ed.IterTime {
		t.Errorf("PP-across-regions %v should beat DP-across-regions %v", ep.IterTime, ed.IterTime)
	}
}

func TestInterZoneCheaperThanInterRegionEgress(t *testing.T) {
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	mk := func(z core.Zone) core.Plan {
		p := uniformPlan(core.A100, zoneA, 2, 2, 1, 2, cfg.Layers)
		for j := range p.Stages[1].Replicas {
			p.Stages[1].Replicas[j].Zone = z
		}
		return p
	}
	ez, err := s.Estimate(mk(zoneB))
	if err != nil {
		t.Fatal(err)
	}
	er, err := s.Estimate(mk(zoneW))
	if err != nil {
		t.Fatal(err)
	}
	if ez.EgressCost <= 0 || er.EgressCost <= ez.EgressCost {
		t.Errorf("inter-region egress %v should exceed inter-zone %v (Figure 1 c6 vs c4)",
			er.EgressCost, ez.EgressCost)
	}
}

func TestOOMDetection(t *testing.T) {
	cfg := model.GPTNeo27B()
	s := newSim(t, cfg, core.V100)
	plan := uniformPlan(core.V100, zoneA, 2, 2, 1, 4, cfg.Layers)
	e, err := s.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if e.FitsMemory {
		t.Error("GPT-Neo with 16 layers per V100 at TP=1 must OOM")
	}
	if _, err := s.Throughput(plan); err == nil || !strings.Contains(err.Error(), "OOM") {
		t.Errorf("Throughput should surface OOM, got %v", err)
	}
}

func TestEstimateRejectsInvalidPlan(t *testing.T) {
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	if _, err := s.Estimate(core.Plan{}); err == nil {
		t.Error("want validation error")
	}
	bad := uniformPlan(core.A100, zoneA, 2, 2, 1, 2, cfg.Layers)
	bad.Stages[1].NumLayers++ // coverage mismatch
	if _, err := s.Estimate(bad); err == nil {
		t.Error("want coverage error")
	}
}

func TestCostScalesWithResources(t *testing.T) {
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	small := uniformPlan(core.A100, zoneA, 2, 2, 1, 2, cfg.Layers)
	big := uniformPlan(core.A100, zoneA, 2, 8, 1, 2, cfg.Layers)
	es, err := s.Estimate(small)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := s.Estimate(big)
	if err != nil {
		t.Fatal(err)
	}
	// H4's premise: doubling DP does not halve iteration time, so cost per
	// iteration rises with resources.
	if eb.Cost() <= es.Cost() {
		t.Errorf("4x resources should cost more per iteration: %v <= %v", eb.Cost(), es.Cost())
	}
	if eb.IterTime >= es.IterTime {
		t.Error("more resources should still be faster in-zone")
	}
}

func TestStageComputeTimeAndCost(t *testing.T) {
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	t1, err := s.StageComputeTime(core.A100, 1, 2, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.StageComputeTime(core.A100, 1, 2, 12, false)
	if err != nil {
		t.Fatal(err)
	}
	if t2 <= t1 {
		t.Error("more layers must take longer")
	}
	tl, err := s.StageComputeTime(core.A100, 1, 2, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	if tl <= t1 {
		t.Error("last stage pays the head")
	}
	st := core.StagePlan{NumLayers: 6, Replicas: []core.StageReplica{{GPU: core.A100, TP: 4, Zone: zoneA}}}
	if c := s.CostOfStage(st, 3600); c <= 0 {
		t.Error("stage cost must be positive")
	}
}
