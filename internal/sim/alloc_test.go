package sim

// Allocation-regression tests for the estimate hot path. Estimate is the
// planner's inner loop; before the dense-table/scratch overhaul one call
// cost ~190 allocations (schedule build, map-based makespan, per-pipeline
// slices). The ceilings here pin the overhauled costs so regressions fail
// loudly rather than silently eating the planner's speedup.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/pipeline"
)

func allocPlan(cfg model.Config, g core.GPUType, pp, dp, tp, mbs int) core.Plan {
	per := cfg.Layers / pp
	rem := cfg.Layers - per*pp
	plan := core.Plan{MicroBatchSize: mbs}
	first := 0
	for i := 0; i < pp; i++ {
		n := per
		if i < rem {
			n++
		}
		st := core.StagePlan{FirstLayer: first, NumLayers: n}
		for k := 0; k < dp; k++ {
			st.Replicas = append(st.Replicas, core.StageReplica{GPU: g, TP: tp, Zone: zoneA})
		}
		plan.Stages = append(plan.Stages, st)
		first += n
	}
	return plan
}

// TestEstimateAllocCeiling: one steady-state Estimate stays within a small
// constant allocation budget (the result's StageTimes slice plus scratch
// bookkeeping), independent of the DP degree.
func TestEstimateAllocCeiling(t *testing.T) {
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	plan := allocPlan(cfg, core.A100, 4, 8, 2, 2)
	if _, err := s.Estimate(plan); err != nil { // warm tables and schedule cache
		t.Fatal(err)
	}
	const ceiling = 16
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.Estimate(plan); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > ceiling {
		t.Errorf("Estimate allocates %.0f times per call; ceiling %d", allocs, ceiling)
	}
}

// TestPipelineTimeAllocFree: with warm schedule cache and grown scratch,
// the exact 1F1B evaluation allocates nothing at all — for both the exact
// and the extrapolated regime.
func TestPipelineTimeAllocFree(t *testing.T) {
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	fwd := []float64{0.01, 0.01, 0.01, 0.01}
	bwd := []float64{0.02, 0.02, 0.02, 0.02}
	comm := []float64{0.005, 0.005, 0.005}
	sc := &pipeline.Scratch{}
	for _, nb := range []int{8, 200} { // exact path, extrapolated path
		if _, err := s.pipelineTime(fwd, bwd, comm, nb, sc); err != nil { // warm
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := s.pipelineTime(fwd, bwd, comm, nb, sc); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("pipelineTime(nb=%d) allocates %.1f times per call; want 0", nb, allocs)
		}
	}
}

// TestMakespanStageCostsMatchesMakespan: the flat-scratch evaluator is
// bit-identical to the exported map-based Makespan on the same DAG.
func TestMakespanStageCostsMatchesMakespan(t *testing.T) {
	fwd := []float64{0.011, 0.013, 0.017, 0.010}
	bwd := []float64{0.023, 0.019, 0.029, 0.021}
	comm := []float64{0.004, 0.007, 0.002}
	for _, nb := range []int{1, 3, 8, 64} {
		sched, err := pipeline.OneFOneB(len(fwd), nb)
		if err != nil {
			t.Fatal(err)
		}
		want, err := pipeline.Makespan(sched,
			func(st, _ int) float64 { return fwd[st] },
			func(st, _ int) float64 { return bwd[st] },
			func(b int) float64 { return comm[b] })
		if err != nil {
			t.Fatal(err)
		}
		got, err := pipeline.MakespanStageCosts(sched, fwd, bwd, comm, &pipeline.Scratch{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("nb=%d: MakespanStageCosts=%v, Makespan=%v", nb, got, want)
		}
	}
}
