// Package sim implements the Sailor simulator (§4.3): given a training job
// and a parallelization plan over (possibly heterogeneous, geo-distributed)
// resources, it estimates iteration time, per-worker memory footprint, and
// monetary cost per iteration, consuming only profiler output — per-layer
// timing tables and fitted network coefficients — plus the pricing model.
//
// The estimates drive the planner; their accuracy against the ground-truth
// engine is what Figures 5 and 6 evaluate.
package sim

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/profiler"
)

// Simulator evaluates plans for one training job. The exported fields are
// configuration; the unexported ones are lazily built lookup caches (see
// tables.go), so a Simulator should not be copied after first use and
// Prof/Net/Pricing should not be mutated once estimates have been served.
type Simulator struct {
	Cfg     model.Config
	Prof    *profiler.Profile
	Net     *hardware.Network
	Pricing *hardware.Pricing
	// Overlap is the fraction of pipeline p2p communication hidden behind
	// compute in the steady state. Megatron-style frameworks issue async
	// sends/recvs, so in steady state transfers only add latency to the
	// dependency edge while the stage computes other microbatches; the
	// default is therefore 1 (fully overlapped in steady state, exposed
	// during warm-up/cool-down). Estimators that ignore overlap — one of
	// the baseline flaws §3.2/C2 calls out — set this to 0.
	Overlap float64

	// tbl is the dense (gpu, tp, mbs) timing table, built on first use;
	// rings memoizes gradient-sync ring evaluations. Both hold pure
	// functions of the profile, so estimates are unchanged — only cheaper.
	tbl   atomic.Pointer[timingTable]
	rings syncCache
}

// New constructs a simulator with default network and pricing models.
func New(cfg model.Config, prof *profiler.Profile) *Simulator {
	return &Simulator{
		Cfg:     cfg,
		Prof:    prof,
		Net:     hardware.DefaultNetwork(),
		Pricing: hardware.DefaultPricing(),
		Overlap: 1.0,
	}
}

// NumMicrobatches returns how many microbatches each pipeline processes per
// iteration: ceil(gbs / (dp * mbs)).
func NumMicrobatches(cfg model.Config, plan core.Plan) int {
	dp := plan.DP()
	if dp == 0 || plan.MicroBatchSize == 0 {
		return 0
	}
	per := dp * plan.MicroBatchSize
	return (cfg.GlobalBatch + per - 1) / per
}

// Estimate evaluates a plan end to end (§4.3): per-pipeline 1F1B time with
// straggler effects, gradient-synchronization time over the slowest DP link,
// optimizer update, memory validity, and the Ccomp + Ccomm cost split.
func (s *Simulator) Estimate(plan core.Plan) (core.Estimate, error) {
	if err := plan.Validate(s.Cfg.Layers); err != nil {
		return core.Estimate{}, err
	}
	nb := NumMicrobatches(s.Cfg, plan)
	if nb == 0 {
		return core.Estimate{}, fmt.Errorf("sim: degenerate plan (no microbatches)")
	}
	p := plan.PP()
	dp := plan.DP()

	// Per-pipeline 1F1B time; pipeline k is the chain of replica k of every
	// stage. Track the slowest (straggler) pipeline. The per-pipeline
	// vectors live in pooled scratch, and consecutive pipelines with
	// identical timings (the common homogeneous case — every pipeline is
	// the same chain) reuse the previous makespan instead of re-evaluating
	// the DAG: identical inputs give an identical result by construction.
	sc := estScratchPool.Get().(*estScratch)
	defer estScratchPool.Put(sc)
	maxPipe := 0.0
	stageTimes := make([]float64, p)
	stragglerStage := 0
	prevOK := false
	prevT := 0.0
	for k := 0; k < dp; k++ {
		fwd := sized(&sc.fwd, p)
		bwd := sized(&sc.bwd, p)
		comm := sized(&sc.comm, p-1)
		for i, st := range plan.Stages {
			r := st.Replicas[k]
			lt, err := s.layerTiming(r.GPU, plan.MicroBatchSize, r.TP)
			if err != nil {
				return core.Estimate{}, fmt.Errorf("sim: stage %d: %w", i, err)
			}
			fwd[i] = float64(st.NumLayers) * lt.Fwd
			bwd[i] = float64(st.NumLayers) * lt.Bwd
			if plan.Recompute {
				// Backward replays the forward pass to rematerialise
				// activations.
				bwd[i] += fwd[i]
			}
			if i == p-1 {
				ht, err := s.headTiming(r.GPU, plan.MicroBatchSize, r.TP)
				if err != nil {
					return core.Estimate{}, err
				}
				fwd[i] += ht.Fwd
				bwd[i] += ht.Bwd
			}
			if i < p-1 {
				next := plan.Stages[i+1].Replicas[k]
				class := s.Net.Classify(r.Zone, next.Zone)
				fit := s.Prof.NetFit(class)
				comm[i] = collective.P2P(collective.FromFit(fit), s.Cfg.BoundaryActivationBytes(plan.MicroBatchSize))
			}
		}
		var t float64
		if prevOK && floatsEqual(fwd, sc.pfwd) && floatsEqual(bwd, sc.pbwd) && floatsEqual(comm, sc.pcomm) {
			t = prevT
		} else {
			var err error
			t, err = s.pipelineTime(fwd, bwd, comm, nb, &sc.mk)
			if err != nil {
				return core.Estimate{}, err
			}
			sc.pfwd = append(sc.pfwd[:0], fwd...)
			sc.pbwd = append(sc.pbwd[:0], bwd...)
			sc.pcomm = append(sc.pcomm[:0], comm...)
			prevOK, prevT = true, t
		}
		if t > maxPipe {
			maxPipe = t
		}
		for i := range stageTimes {
			if v := fwd[i] + bwd[i]; v > stageTimes[i] {
				stageTimes[i] = v
				if v > stageTimes[stragglerStage] {
					stragglerStage = i
				}
			}
		}
	}
	for i, v := range stageTimes {
		if v > stageTimes[stragglerStage] {
			stragglerStage = i
		}
	}

	// Gradient synchronization: per stage, a ring all-reduce across the DP
	// replicas over the slowest link between any two of them (§4.3 computes
	// the synchronization bottleneck per stage and takes the max).
	sync := 0.0
	for _, st := range plan.Stages {
		t := s.stageSyncTime(st, dp)
		if t > sync {
			sync = t
		}
	}

	// Optimizer update: slowest worker.
	update := 0.0
	for _, st := range plan.Stages {
		for _, r := range st.Replicas {
			lt, err := s.layerTiming(r.GPU, plan.MicroBatchSize, r.TP)
			if err != nil {
				return core.Estimate{}, err
			}
			if u := float64(st.NumLayers) * lt.Update; u > update {
				update = u
			}
		}
	}

	iter := maxPipe + sync + update

	peak, peakGPU, fits, err := memory.Check(s.Cfg, plan)
	if err != nil {
		return core.Estimate{}, err
	}

	comp := 0.0
	for _, st := range plan.Stages {
		for _, r := range st.Replicas {
			comp += s.Pricing.ComputeUSD(r.GPU, r.GPUCount(), iter)
		}
	}
	egress := s.EgressUSD(plan, nb)

	return core.Estimate{
		IterTime:       iter,
		ComputeCost:    comp,
		EgressCost:     egress,
		PeakMemory:     peak,
		PeakMemoryGPU:  peakGPU,
		FitsMemory:     fits,
		StageTimes:     stageTimes,
		StragglerStage: stragglerStage,
	}, nil
}

// pipelineTime evaluates one pipeline's 1F1B iteration time. For short
// iterations it evaluates the dependency DAG exactly; for long ones it
// evaluates a 4P-microbatch prefix and extrapolates the steady-state period
// from the last 2P microbatches. This captures the window-limited exposure
// of p2p transfers near the pipeline tail — the straggler effect closed
// forms with a fixed overlap factor miss (the paper's simulator reaches
// ~6% error where closed-form baselines reach 10-20%, Figure 5b).
//
// Setting Overlap < 1 switches to the closed-form AnalyticTime instead,
// which the estimation-error ablations use.
//
// Schedules come from the process-wide cache and the DAG evaluation runs in
// caller scratch (pipeline.MakespanStageCosts executes the identical op
// order as pipeline.Makespan), so the value is bit-identical to the
// original map-and-closure evaluation at a fraction of the cost.
func (s *Simulator) pipelineTime(fwd, bwd, comm []float64, nb int, mk *pipeline.Scratch) (float64, error) {
	if s.Overlap < 1 {
		return pipeline.AnalyticTime(fwd, bwd, comm, nb, s.Overlap)
	}
	p := len(fwd)
	short := 4 * p
	if nb <= short {
		sched, err := pipeline.Cached1F1B(p, nb)
		if err != nil {
			return 0, err
		}
		return pipeline.MakespanStageCosts(sched, fwd, bwd, comm, mk)
	}
	sched1, err := pipeline.Cached1F1B(p, short)
	if err != nil {
		return 0, err
	}
	t1, err := pipeline.MakespanStageCosts(sched1, fwd, bwd, comm, mk)
	if err != nil {
		return 0, err
	}
	half := 2 * p
	sched2, err := pipeline.Cached1F1B(p, half)
	if err != nil {
		return 0, err
	}
	t2, err := pipeline.MakespanStageCosts(sched2, fwd, bwd, comm, mk)
	if err != nil {
		return 0, err
	}
	period := (t1 - t2) / float64(short-half)
	return t1 + float64(nb-short)*period, nil
}

// floatsEqual reports exact element-wise equality.
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// stageSyncTime models the data-parallel gradient all-reduce for one stage:
// ring over the D replicas, shard size set by the coarsest TP sharding,
// slowest pairwise link bounding the ring step time. The worst link class
// is found over distinct zones (same max as the all-pairs scan — Classify
// of a zone with itself is IntraZone, the floor) and the ring evaluation
// is memoized per (class, bytes, dp).
func (s *Simulator) stageSyncTime(st core.StagePlan, dp int) float64 {
	if dp <= 1 {
		return 0
	}
	minTP := st.Replicas[0].TP
	for _, r := range st.Replicas {
		if r.TP < minTP {
			minTP = r.TP
		}
	}
	bytes := int64(st.NumLayers) * s.Cfg.GradBytesPerLayer(minTP)
	worst := hardware.IntraZone
	z0 := st.Replicas[0].Zone
	uniform := true
	for i := 1; i < dp; i++ {
		if st.Replicas[i].Zone != z0 {
			uniform = false
			break
		}
	}
	if !uniform {
		for i := 0; i < dp; i++ {
			for j := i + 1; j < dp; j++ {
				c := s.Net.Classify(st.Replicas[i].Zone, st.Replicas[j].Zone)
				if c > worst {
					worst = c
				}
			}
		}
	}
	return s.ringTime(worst, bytes, dp)
}

// ringTime evaluates (and memoizes) one ring all-reduce at a link class.
func (s *Simulator) ringTime(class hardware.LinkClass, bytes int64, dp int) float64 {
	k := syncCacheKey{class: int8(class), dp: int32(dp), bytes: bytes}
	if v, ok := s.rings.get(k); ok {
		return v
	}
	fit := s.Prof.NetFit(class)
	v := collective.RingAllReduce(collective.FromFit(fit), bytes, dp)
	s.rings.put(k, v)
	return v
}

// EgressUSD bills cross-zone and cross-region traffic per iteration:
// pipeline activations/gradients on boundaries whose endpoints differ in
// zone, and data-parallel all-reduce chunks on rings spanning zones.
// Exported because the ground-truth engine bills identical traffic (cloud
// metering is exact).
func (s *Simulator) EgressUSD(plan core.Plan, nb int) float64 {
	total := 0.0
	p := plan.PP()
	dp := plan.DP()
	// Pipeline-parallel traffic.
	for i := 0; i < p-1; i++ {
		for k := 0; k < dp; k++ {
			a := plan.Stages[i].Replicas[k]
			b := plan.Stages[i+1].Replicas[k]
			class := s.Net.Classify(a.Zone, b.Zone)
			if class < hardware.InterZone {
				continue
			}
			bytes := 2 * s.Cfg.BoundaryActivationBytes(plan.MicroBatchSize) * int64(nb)
			total += s.Pricing.EgressUSD(class, bytes)
		}
	}
	// Data-parallel traffic. Distinct zones are collected in
	// first-appearance order into pooled scratch — the worst-class max and
	// the crossing count are order-insensitive, so this matches the
	// original map-based grouping while keeping the hot path off the heap.
	sc := estScratchPool.Get().(*estScratch)
	defer estScratchPool.Put(sc)
	for _, st := range plan.Stages {
		zones := sc.zones[:0]
		zoneN := sc.zoneN[:0]
		minTP := st.Replicas[0].TP
		for _, r := range st.Replicas {
			found := false
			for i, z := range zones {
				if z == r.Zone {
					zoneN[i]++
					found = true
					break
				}
			}
			if !found {
				zones = append(zones, r.Zone)
				zoneN = append(zoneN, 1)
			}
			if r.TP < minTP {
				minTP = r.TP
			}
		}
		sc.zones, sc.zoneN = zones, zoneN
		if len(zones) <= 1 {
			continue
		}
		worst := hardware.IntraZone
		for _, za := range zones {
			for _, zb := range zones {
				if c := s.Net.Classify(za, zb); c > worst {
					worst = c
				}
			}
		}
		bytes := int64(st.NumLayers) * s.Cfg.GradBytesPerLayer(minTP)
		cross := collective.AllReduceEgressBytes(bytes, dp, zoneN)
		total += s.Pricing.EgressUSD(worst, cross)
	}
	return total
}

// CostOfStage prices the GPUs of one candidate stage for `secs` seconds,
// used by the planner's budget-constrained DP (cost_for_stage in Listing 1).
func (s *Simulator) CostOfStage(st core.StagePlan, secs float64) float64 {
	c := 0.0
	for _, r := range st.Replicas {
		c += s.Pricing.ComputeUSD(r.GPU, r.GPUCount(), secs)
	}
	return c
}

// StageComputeTime returns the per-microbatch fwd+bwd time of one replica
// executing `layers` blocks, the planner's time_for_stage building block.
func (s *Simulator) StageComputeTime(g core.GPUType, tp, mbs, layers int, last bool) (float64, error) {
	return s.StageComputeTimeWith(g, tp, mbs, layers, last, false)
}

// StageComputeTimeWith is StageComputeTime with an explicit recomputation
// mode: rematerialisation replays the forward pass during backward.
func (s *Simulator) StageComputeTimeWith(g core.GPUType, tp, mbs, layers int, last, recompute bool) (float64, error) {
	lt, err := s.layerTiming(g, mbs, tp)
	if err != nil {
		return 0, err
	}
	t := float64(layers) * (lt.Fwd + lt.Bwd)
	if recompute {
		t += float64(layers) * lt.Fwd
	}
	if last {
		ht, err := s.headTiming(g, mbs, tp)
		if err != nil {
			return 0, err
		}
		t += ht.Fwd + ht.Bwd
	}
	return t, nil
}

// StageBusyLowerBounded declares the planner's bound-pruning admissibility
// property (planner.BoundPrunable): both estimate paths respect the
// serialized stage-busy lower bound — the exact 1F1B DAG evaluation
// trivially, the 4P-prefix extrapolation because the prefix is exact and
// the fitted period is at least half a straggler step (see the pruning
// derivation in internal/planner/prune.go), and the closed-form
// AnalyticTime by inspection of its (nb-1)*straggler + sum terms.
func (s *Simulator) StageBusyLowerBounded() bool { return true }

// Throughput is a convenience wrapper returning iterations/second for a
// plan, or 0 with the error when the plan is invalid or OOMs.
func (s *Simulator) Throughput(plan core.Plan) (float64, error) {
	e, err := s.Estimate(plan)
	if err != nil {
		return 0, err
	}
	if !e.FitsMemory {
		return 0, fmt.Errorf("sim: plan OOMs (peak %.1f GiB on %s)",
			float64(e.PeakMemory)/math.Exp2(30), e.PeakMemoryGPU)
	}
	return e.Throughput(), nil
}

// PeakMemory returns the analytical peak bytes of the most loaded worker.
func (s *Simulator) PeakMemory(plan core.Plan) (int64, error) {
	if err := plan.Validate(s.Cfg.Layers); err != nil {
		return 0, err
	}
	peak, _, _, err := memory.Check(s.Cfg, plan)
	return peak, err
}

// GPUHourUSD prices one GPU-hour of a type, a stage-level hook for the
// planner's DP (cost_for_stage in Listing 1).
func (s *Simulator) GPUHourUSD(g core.GPUType) float64 {
	return s.Pricing.GPUHourUSD(g)
}

// DPSyncTime estimates a within-region data-parallel gradient all-reduce of
// bytes over d replicas (the planner scores DP groups at the inter-zone
// fit per H5/H6).
func (s *Simulator) DPSyncTime(bytes int64, d int) float64 {
	return s.ringTime(hardware.InterZone, bytes, d)
}

// Simulator is the planner's default estimation backend.
var _ core.Estimator = (*Simulator)(nil)
