package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/pipeline"
)

// Tests for the short-horizon DAG + extrapolation pipeline-time model that
// backs Sailor's §5.1 accuracy.

func TestPipelineTimeMatchesExactDAG(t *testing.T) {
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	fwd := []float64{0.01, 0.01, 0.01, 0.01}
	bwd := []float64{0.02, 0.02, 0.02, 0.02}
	comm := []float64{0.005, 0.005, 0.005}
	const nb = 200
	got, err := s.pipelineTime(fwd, bwd, comm, nb, &pipeline.Scratch{})
	if err != nil {
		t.Fatal(err)
	}
	sched, _ := pipeline.OneFOneB(len(fwd), nb)
	exact, err := pipeline.Makespan(sched,
		func(st, _ int) float64 { return fwd[st] },
		func(st, _ int) float64 { return bwd[st] },
		func(b int) float64 { return comm[b] })
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(got-exact) / exact
	if rel > 0.02 {
		t.Errorf("extrapolated %v vs exact %v: %.2f%% apart", got, exact, 100*rel)
	}
}

func TestPipelineTimeShortIterationExact(t *testing.T) {
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	fwd := []float64{0.01, 0.03}
	bwd := []float64{0.02, 0.06}
	comm := []float64{0.004}
	const nb = 5 // below the 4P prefix: must be evaluated exactly
	got, err := s.pipelineTime(fwd, bwd, comm, nb, &pipeline.Scratch{})
	if err != nil {
		t.Fatal(err)
	}
	sched, _ := pipeline.OneFOneB(2, nb)
	exact, _ := pipeline.Makespan(sched,
		func(st, _ int) float64 { return fwd[st] },
		func(st, _ int) float64 { return bwd[st] },
		func(b int) float64 { return comm[b] })
	if got != exact {
		t.Errorf("short iterations must use the exact DAG: %v != %v", got, exact)
	}
}

func TestPipelineTimeClosedFormFallback(t *testing.T) {
	// Overlap < 1 switches to the closed form (used by ablations).
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	s.Overlap = 0
	fwd := []float64{0.01, 0.01}
	bwd := []float64{0.02, 0.02}
	comm := []float64{0.05}
	got, err := s.pipelineTime(fwd, bwd, comm, 64, &pipeline.Scratch{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := pipeline.AnalyticTime(fwd, bwd, comm, 64, 0)
	if got != want {
		t.Errorf("overlap<1 must use AnalyticTime: %v != %v", got, want)
	}
}

func TestDeepPipelineLatencyExposure(t *testing.T) {
	// The structural effect the closed form misses: with a static 1F1B
	// schedule, boundary latency near the pipeline tail stalls each
	// microbatch. The DAG-based estimate must exceed the fully-overlapped
	// closed form when comm is comparable to stage compute.
	cfg := model.OPT350M()
	s := newSim(t, cfg, core.A100)
	p := 8
	fwd := make([]float64, p)
	bwd := make([]float64, p)
	comm := make([]float64, p-1)
	for i := range fwd {
		fwd[i], bwd[i] = 0.002, 0.004
	}
	for i := range comm {
		comm[i] = 0.003 // comparable to f+b
	}
	const nb = 256
	dag, err := s.pipelineTime(fwd, bwd, comm, nb, &pipeline.Scratch{})
	if err != nil {
		t.Fatal(err)
	}
	closed, _ := pipeline.AnalyticTime(fwd, bwd, comm, nb, 1)
	if dag <= closed*1.05 {
		t.Errorf("DAG estimate %v should expose latency stalls above the closed form %v", dag, closed)
	}
}
