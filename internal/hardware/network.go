package hardware

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// LinkClass partitions GPU-pair connectivity into the four bandwidth tiers
// the paper's experiments span (§4.1, §5.2.3).
type LinkClass int

const (
	// IntraNode links use NVLink or PCIe inside one machine.
	IntraNode LinkClass = iota
	// IntraZone links connect nodes within one availability zone.
	IntraZone
	// InterZone links connect zones of the same region. H6 rests on their
	// bandwidth being close to intra-zone bandwidth.
	InterZone
	// InterRegion links cross region boundaries and are the slow tier that
	// motivates H5 (no data parallelism across regions).
	InterRegion
)

// String implements fmt.Stringer.
func (c LinkClass) String() string {
	switch c {
	case IntraNode:
		return "intra-node"
	case IntraZone:
		return "intra-zone"
	case InterZone:
		return "inter-zone"
	case InterRegion:
		return "inter-region"
	}
	return fmt.Sprintf("LinkClass(%d)", int(c))
}

// LinkSpec parameterises one link tier: a fixed per-message latency and a
// saturating bandwidth curve. Effective bandwidth at message size s bytes is
//
//	bw(s) = GBs * s / (s + RampBytes)
//
// which reproduces the measured ramp-up that the paper captures by fitting a
// polynomial to NCCL measurements; RampBytes is the half-saturation size.
type LinkSpec struct {
	Class      LinkClass
	LatencySec float64
	GBs        float64 // saturated bandwidth, gigabytes per second
	RampBytes  float64
}

// TransferTime returns the time in seconds to move `bytes` across the link.
func (l LinkSpec) TransferTime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	s := float64(bytes)
	bw := l.GBs * 1e9 * s / (s + l.RampBytes)
	return l.LatencySec + s/bw
}

// EffectiveGBs returns the achieved bandwidth in GB/s for a message size,
// including the latency term; this is the quantity the paper plots when
// fitting its polynomial coefficients.
func (l LinkSpec) EffectiveGBs(bytes int64) float64 {
	t := l.TransferTime(bytes)
	if t <= 0 {
		return 0
	}
	return float64(bytes) / t / 1e9
}

// Network resolves links between workers. It is parameterised by the
// node NIC bandwidth of the two endpoints and the zone pair.
type Network struct {
	// IntraZoneGBs caps node-to-node bandwidth inside a zone (the NIC or
	// the fabric, whichever is lower).
	intraZone   LinkSpec
	interZone   LinkSpec
	interRegion LinkSpec
}

// DefaultNetwork returns link tiers modelled on GCP measurements reported in
// the cross-region training study the paper builds on [56]: ~100 Gbps NICs
// in-zone, near-identical inter-zone bandwidth within a region, and
// collective-visible cross-region bandwidth 1.5-2 orders of magnitude lower
// (WAN trunks shared, TCP-limited), with ~20 ms one-way latency between
// same-continent regions.
func DefaultNetwork() *Network {
	return &Network{
		intraZone:   LinkSpec{Class: IntraZone, LatencySec: 30e-6, GBs: 12.0, RampBytes: 4 << 20},
		interZone:   LinkSpec{Class: InterZone, LatencySec: 200e-6, GBs: 10.0, RampBytes: 8 << 20},
		interRegion: LinkSpec{Class: InterRegion, LatencySec: 20e-3, GBs: 0.25, RampBytes: 8 << 20},
	}
}

// IntraNodeLink returns the link between two GPUs of the same node.
func IntraNodeLink(g core.GPUType) LinkSpec {
	spec := MustLookup(g)
	return LinkSpec{Class: IntraNode, LatencySec: 5e-6, GBs: spec.IntraNodeGBs, RampBytes: 1 << 20}
}

// Classify returns the link class between two zones.
func (n *Network) Classify(a, b core.Zone) LinkClass {
	switch {
	case a == b:
		return IntraZone
	case a.SameRegion(b):
		return InterZone
	default:
		return InterRegion
	}
}

// Link returns the link spec between nodes in zones a and b. GPU NIC limits
// are applied by the caller via MinWithNIC when endpoints are known.
func (n *Network) Link(a, b core.Zone) LinkSpec {
	switch n.Classify(a, b) {
	case InterZone:
		return n.interZone
	case InterRegion:
		return n.interRegion
	default:
		return n.intraZone
	}
}

// MinWithNIC caps a link's bandwidth by the NIC bandwidth (in Gbit/s) of the
// slower endpoint, modelling that a V100 VM with a 32 Gbps NIC cannot reach
// the zone fabric's 100 Gbps.
func MinWithNIC(l LinkSpec, nicGbpsA, nicGbpsB float64) LinkSpec {
	nic := math.Min(nicGbpsA, nicGbpsB) / 8.0 // GB/s
	if nic < l.GBs {
		l.GBs = nic
	}
	return l
}

// PolyFit holds fitted coefficients of transfer time as a function of
// message size: time(s) = c0 + c1*s + c2*s*log2(s). This is the artefact the
// Sailor profiler produces for every node-type pair (§4.1); the simulator
// consumes the coefficients rather than the underlying LinkSpec.
type PolyFit struct {
	C0, C1, C2 float64
}

// Eval returns the fitted transfer time in seconds for a message of s bytes.
func (p PolyFit) Eval(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	s := float64(bytes)
	t := p.C0 + p.C1*s + p.C2*s*math.Log2(s)
	if t < 0 {
		return 0
	}
	return t
}

// FitLink samples a link across message sizes and performs a least-squares
// fit of the PolyFit basis. Sampling spans 4 KiB to 1 GiB, covering the
// activation and gradient messages seen in training.
func FitLink(l LinkSpec) PolyFit {
	// Basis: [1, s, s*log2(s)]. Normal equations on log-spaced samples.
	var xtx [3][3]float64
	var xty [3]float64
	for s := int64(4 << 10); s <= 1<<30; s *= 2 {
		y := l.TransferTime(s)
		fs := float64(s)
		row := [3]float64{1, fs, fs * math.Log2(fs)}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y
		}
	}
	sol, ok := solve3(xtx, xty)
	if !ok {
		// Degenerate fit: fall back to pure bandwidth term.
		return PolyFit{C0: l.LatencySec, C1: 1 / (l.GBs * 1e9)}
	}
	return PolyFit{C0: sol[0], C1: sol[1], C2: sol[2]}
}

// solve3 solves a 3x3 linear system with Gaussian elimination and partial
// pivoting. Returns false when the system is singular.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, bool) {
	// Augment and eliminate.
	m := [3][4]float64{}
	for i := 0; i < 3; i++ {
		copy(m[i][:3], a[i][:])
		m[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-30 {
			return [3]float64{}, false
		}
		m[col], m[p] = m[p], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	var x [3]float64
	for i := 0; i < 3; i++ {
		x[i] = m[i][3] / m[i][i]
	}
	return x, true
}
