package hardware

import "repro/internal/core"

// Pricing holds the monetary rates the cost model of §4.3 consumes:
// per-GPU-hour compute prices (from the GPU catalogue) and per-byte egress
// prices by link class. Values are representative public-cloud list prices.
type Pricing struct {
	// EgressUSDPerGB by link class. Intra-zone traffic is free; inter-zone
	// and inter-region transfers carry the fees that make geo-distributed
	// configurations cost-sensitive (Figure 1, c6).
	EgressUSDPerGB map[LinkClass]float64
	// GPUHourOverride replaces catalogue prices when set (e.g. spot).
	GPUHourOverride map[core.GPUType]float64
}

// DefaultPricing returns GCP-like on-demand rates.
func DefaultPricing() *Pricing {
	return &Pricing{
		EgressUSDPerGB: map[LinkClass]float64{
			IntraNode:   0,
			IntraZone:   0,
			InterZone:   0.01,
			InterRegion: 0.05,
		},
	}
}

// GPUHourUSD returns the hourly price of one GPU of the given type.
func (p *Pricing) GPUHourUSD(t core.GPUType) float64 {
	if p.GPUHourOverride != nil {
		if v, ok := p.GPUHourOverride[t]; ok {
			return v
		}
	}
	return MustLookup(t).CostPerHour
}

// EgressUSD returns the cost of transferring `bytes` across a link class.
func (p *Pricing) EgressUSD(class LinkClass, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	rate := p.EgressUSDPerGB[class]
	return rate * float64(bytes) / 1e9
}

// ComputeUSD returns the cost of occupying n GPUs of type t for secs seconds.
func (p *Pricing) ComputeUSD(t core.GPUType, n int, secs float64) float64 {
	if n <= 0 || secs <= 0 {
		return 0
	}
	return p.GPUHourUSD(t) * float64(n) * secs / 3600.0
}
