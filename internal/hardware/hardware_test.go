package hardware

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestLookupKnownTypes(t *testing.T) {
	for _, g := range []core.GPUType{core.A100, core.V100, core.GH200, core.RTX3090, core.RTX2080, core.TitanRTX} {
		s, err := Lookup(g)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", g, err)
		}
		if s.MemoryBytes <= 0 || s.PeakTFLOPS <= 0 || s.CostPerHour <= 0 {
			t.Errorf("Lookup(%s): incomplete spec %+v", g, s)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("TPU-v9"); err == nil {
		t.Fatal("want error for unknown GPU type")
	}
	if Known("TPU-v9") {
		t.Fatal("Known should be false for unregistered type")
	}
}

func TestRegisterNewAccelerator(t *testing.T) {
	// Paper §4.3: GPUs are black boxes, so adding an accelerator is just a
	// spec + profile. Verify registration round-trips.
	spec := GPUSpec{Type: "TPU-v5e", MemoryBytes: 16 << 30, PeakTFLOPS: 197,
		MemBWGBs: 820, Efficiency: 0.45, IntraNodeGBs: 100, CostPerHour: 1.2}
	if err := Register(spec); err != nil {
		t.Fatalf("Register: %v", err)
	}
	got, err := Lookup("TPU-v5e")
	if err != nil || got.PeakTFLOPS != 197 {
		t.Fatalf("Lookup after Register = %+v, %v", got, err)
	}
	if err := Register(GPUSpec{Type: "bad"}); err == nil {
		t.Fatal("Register should reject invalid spec")
	}
	if err := Register(GPUSpec{}); err == nil {
		t.Fatal("Register should reject empty type")
	}
}

func TestGPURelativeOrdering(t *testing.T) {
	// The evaluation's load-balancing logic depends on A100 being both
	// faster and larger than V100.
	a, v := MustLookup(core.A100), MustLookup(core.V100)
	if a.PeakTFLOPS <= v.PeakTFLOPS {
		t.Error("A100 must out-FLOP V100")
	}
	if a.MemoryBytes <= v.MemoryBytes {
		t.Error("A100 must have more memory than V100")
	}
	if a.MemoryBytes/v.MemoryBytes < 2 {
		t.Error("paper relies on A100:V100 memory ratio >= 2 for load balancing")
	}
}

func TestDefaultNodeType(t *testing.T) {
	if n := DefaultNodeType(core.A100); n.GPUsPerNode != 4 {
		t.Errorf("A100 node = %+v, want 4 GPUs (paper uses 4-GPU VMs)", n)
	}
	if n := DefaultNodeType(core.RTX3090); n.GPUsPerNode != 8 {
		t.Errorf("RTX node = %+v, want 8 GPUs (paper uses 8-GPU machines)", n)
	}
}

func TestLinkTransferTimeMonotone(t *testing.T) {
	l := DefaultNetwork().Link(core.Zone{Region: "r", Name: "a"}, core.Zone{Region: "r", Name: "a"})
	prev := 0.0
	for s := int64(1 << 10); s <= 1<<30; s *= 4 {
		got := l.TransferTime(s)
		if got <= prev {
			t.Fatalf("TransferTime not increasing at %d bytes: %v <= %v", s, got, prev)
		}
		prev = got
	}
	if l.TransferTime(0) != 0 {
		t.Error("zero bytes should cost zero")
	}
}

func TestLinkBandwidthSaturates(t *testing.T) {
	l := LinkSpec{Class: IntraZone, LatencySec: 30e-6, GBs: 12, RampBytes: 4 << 20}
	small := l.EffectiveGBs(64 << 10)
	large := l.EffectiveGBs(1 << 30)
	if small >= large {
		t.Errorf("effective bandwidth should ramp with size: %v >= %v", small, large)
	}
	if large > l.GBs {
		t.Errorf("effective bandwidth %v exceeds saturated %v", large, l.GBs)
	}
	if large < 0.8*l.GBs {
		t.Errorf("1 GiB message should approach saturation: %v of %v", large, l.GBs)
	}
}

func TestNetworkClassify(t *testing.T) {
	n := DefaultNetwork()
	a := core.Zone{Region: "us-central1", Name: "us-central1-a"}
	b := core.Zone{Region: "us-central1", Name: "us-central1-b"}
	c := core.Zone{Region: "us-west1", Name: "us-west1-a"}
	if n.Classify(a, a) != IntraZone {
		t.Error("same zone should classify intra-zone")
	}
	if n.Classify(a, b) != InterZone {
		t.Error("same region should classify inter-zone")
	}
	if n.Classify(a, c) != InterRegion {
		t.Error("different regions should classify inter-region")
	}
}

func TestNetworkTierOrdering(t *testing.T) {
	// H5/H6 rest on: intra-zone ~ inter-zone >> inter-region.
	n := DefaultNetwork()
	a := core.Zone{Region: "r0", Name: "r0-a"}
	b := core.Zone{Region: "r0", Name: "r0-b"}
	c := core.Zone{Region: "r1", Name: "r1-a"}
	const msg = 256 << 20
	intra := n.Link(a, a).TransferTime(msg)
	inter := n.Link(a, b).TransferTime(msg)
	region := n.Link(a, c).TransferTime(msg)
	if !(intra <= inter && inter < region) {
		t.Fatalf("tier ordering violated: intra %v, inter-zone %v, inter-region %v", intra, inter, region)
	}
	if region < 5*inter {
		t.Errorf("inter-region should be much slower: %v vs %v", region, inter)
	}
}

func TestMinWithNIC(t *testing.T) {
	l := LinkSpec{Class: IntraZone, GBs: 12, RampBytes: 1}
	capped := MinWithNIC(l, 32, 100) // 32 Gbps NIC = 4 GB/s
	if capped.GBs != 4 {
		t.Errorf("MinWithNIC = %v GB/s, want 4", capped.GBs)
	}
	uncapped := MinWithNIC(l, 400, 400)
	if uncapped.GBs != 12 {
		t.Errorf("fast NICs should not cap: %v", uncapped.GBs)
	}
}

func TestFitLinkAccuracy(t *testing.T) {
	// The fitted polynomial must stay within a few percent of the true
	// transfer time across the training message-size range.
	for _, l := range []LinkSpec{
		{Class: IntraZone, LatencySec: 30e-6, GBs: 12, RampBytes: 4 << 20},
		{Class: InterRegion, LatencySec: 15e-3, GBs: 1.2, RampBytes: 16 << 20},
	} {
		fit := FitLink(l)
		for s := int64(64 << 10); s <= 1<<30; s *= 2 {
			want := l.TransferTime(s)
			got := fit.Eval(s)
			relErr := math.Abs(got-want) / want
			if relErr > 0.20 {
				t.Errorf("%v: fit at %d bytes off by %.1f%% (got %v want %v)",
					l.Class, s, 100*relErr, got, want)
			}
		}
	}
}

func TestPolyFitEvalEdgeCases(t *testing.T) {
	p := PolyFit{C0: -1, C1: 0, C2: 0}
	if p.Eval(100) != 0 {
		t.Error("negative fits should clamp to zero")
	}
	if (PolyFit{C0: 1}).Eval(0) != 0 {
		t.Error("zero bytes should be free")
	}
}

func TestPricing(t *testing.T) {
	pr := DefaultPricing()
	if got := pr.EgressUSD(IntraZone, 1<<30); got != 0 {
		t.Errorf("intra-zone egress should be free, got %v", got)
	}
	ir := pr.EgressUSD(InterRegion, 2e9)
	iz := pr.EgressUSD(InterZone, 2e9)
	if ir <= iz || iz <= 0 {
		t.Errorf("egress ordering wrong: inter-region %v, inter-zone %v", ir, iz)
	}
	// 8 A100s for one hour at list price.
	got := pr.ComputeUSD(core.A100, 8, 3600)
	want := 8 * MustLookup(core.A100).CostPerHour
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ComputeUSD = %v, want %v", got, want)
	}
	if pr.ComputeUSD(core.A100, 0, 10) != 0 || pr.ComputeUSD(core.A100, 2, 0) != 0 {
		t.Error("degenerate compute cost should be zero")
	}
	pr.GPUHourOverride = map[core.GPUType]float64{core.A100: 1.0}
	if pr.GPUHourUSD(core.A100) != 1.0 {
		t.Error("override not applied")
	}
}

// Property: transfer time is superadditive-resistant — sending one message
// of 2s bytes is never slower than two messages of s bytes (batching wins
// because latency is paid once).
func TestTransferBatchingProperty(t *testing.T) {
	l := DefaultNetwork().Link(core.Zone{Region: "r", Name: "a"}, core.Zone{Region: "r", Name: "b"})
	f := func(kb uint16) bool {
		s := int64(kb)*1024 + 1024
		return l.TransferTime(2*s) <= 2*l.TransferTime(s)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkClassString(t *testing.T) {
	for c, want := range map[LinkClass]string{
		IntraNode: "intra-node", IntraZone: "intra-zone",
		InterZone: "inter-zone", InterRegion: "inter-region",
	} {
		if c.String() != want {
			t.Errorf("LinkClass(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
}
