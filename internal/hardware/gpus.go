// Package hardware is the hardware catalogue of the Sailor reproduction:
// GPU specifications, node (VM) types, the message-size-dependent network
// bandwidth model, and cloud pricing.
//
// The paper profiles real machines (§4.1); this package substitutes public
// datasheet figures and a parametric link model, as recorded in DESIGN.md.
// Everything downstream (profiler, simulator, planner) consumes only these
// numbers, so the substitution is contained here.
package hardware

import (
	"fmt"

	"repro/internal/core"
)

// GPUSpec describes one GPU SKU as the black-box compute unit of §4.3.
type GPUSpec struct {
	Type core.GPUType
	// MemoryBytes is the usable HBM capacity.
	MemoryBytes int64
	// PeakTFLOPS is the half-precision (fp16/bf16) tensor-core peak.
	PeakTFLOPS float64
	// MemBWGBs is HBM bandwidth in GB/s, used by the roofline profile model.
	MemBWGBs float64
	// Efficiency is the fraction of peak FLOPS achieved on dense
	// transformer matmuls (MFU-like), derived from published benchmarks.
	Efficiency float64
	// IntraNodeGBs is GPU-to-GPU bandwidth inside a node (NVLink or PCIe).
	IntraNodeGBs float64
	// CostPerHour is the on-demand USD price per GPU-hour.
	CostPerHour float64
}

const giB = int64(1) << 30

// catalogue lists every GPU type used in the paper's evaluation.
// Peak TFLOPS/memory are datasheet values; Efficiency reflects typical
// measured transformer MFU per generation.
var catalogue = map[core.GPUType]GPUSpec{
	core.A100: {
		Type: core.A100, MemoryBytes: 40 * giB, PeakTFLOPS: 312,
		MemBWGBs: 1555, Efficiency: 0.50, IntraNodeGBs: 300, CostPerHour: 3.67,
	},
	core.V100: {
		Type: core.V100, MemoryBytes: 16 * giB, PeakTFLOPS: 125,
		MemBWGBs: 900, Efficiency: 0.40, IntraNodeGBs: 150, CostPerHour: 2.48,
	},
	core.GH200: {
		Type: core.GH200, MemoryBytes: 96 * giB, PeakTFLOPS: 990,
		MemBWGBs: 4000, Efficiency: 0.52, IntraNodeGBs: 450, CostPerHour: 11.0,
	},
	core.RTX3090: {
		Type: core.RTX3090, MemoryBytes: 24 * giB, PeakTFLOPS: 142,
		MemBWGBs: 936, Efficiency: 0.35, IntraNodeGBs: 32, CostPerHour: 1.10,
	},
	core.RTX2080: {
		Type: core.RTX2080, MemoryBytes: 11 * giB, PeakTFLOPS: 90,
		MemBWGBs: 616, Efficiency: 0.30, IntraNodeGBs: 16, CostPerHour: 0.60,
	},
	core.TitanRTX: {
		Type: core.TitanRTX, MemoryBytes: 24 * giB, PeakTFLOPS: 130,
		MemBWGBs: 672, Efficiency: 0.32, IntraNodeGBs: 16, CostPerHour: 0.90,
	},
	core.A10G: {
		Type: core.A10G, MemoryBytes: 24 * giB, PeakTFLOPS: 125,
		MemBWGBs: 600, Efficiency: 0.40, IntraNodeGBs: 32, CostPerHour: 1.21,
	},
	core.T4: {
		Type: core.T4, MemoryBytes: 16 * giB, PeakTFLOPS: 65,
		MemBWGBs: 300, Efficiency: 0.30, IntraNodeGBs: 16, CostPerHour: 0.53,
	},
	core.H100: {
		Type: core.H100, MemoryBytes: 80 * giB, PeakTFLOPS: 989,
		MemBWGBs: 3350, Efficiency: 0.45, IntraNodeGBs: 450, CostPerHour: 6.98,
	},
}

// Lookup returns the spec for a GPU type.
func Lookup(t core.GPUType) (GPUSpec, error) {
	s, ok := catalogue[t]
	if !ok {
		return GPUSpec{}, fmt.Errorf("hardware: unknown GPU type %q", t)
	}
	return s, nil
}

// MustLookup is Lookup for callers that have already validated the type.
func MustLookup(t core.GPUType) GPUSpec {
	s, err := Lookup(t)
	if err != nil {
		panic(err)
	}
	return s
}

// Known reports whether the GPU type is in the catalogue.
func Known(t core.GPUType) bool {
	_, ok := catalogue[t]
	return ok
}

// Types returns all catalogued GPU types (unordered).
func Types() []core.GPUType {
	ts := make([]core.GPUType, 0, len(catalogue))
	for t := range catalogue {
		ts = append(ts, t)
	}
	return ts
}

// Register adds or replaces a GPU spec in the catalogue. Adding a new GPU
// type only requires a spec plus profiling data (paper §4.1): tests use this
// to introduce synthetic accelerators, matching the claim that Sailor treats
// GPUs as black boxes.
func Register(s GPUSpec) error {
	if s.Type == "" {
		return fmt.Errorf("hardware: empty GPU type")
	}
	if s.MemoryBytes <= 0 || s.PeakTFLOPS <= 0 || s.Efficiency <= 0 || s.Efficiency > 1 {
		return fmt.Errorf("hardware: invalid spec for %q", s.Type)
	}
	catalogue[s.Type] = s
	return nil
}

// NodeType describes a VM or on-premise machine: a set of identical GPUs
// with a NIC. The paper's cloud experiments use 4-GPU VMs; the on-premise
// clusters use 4x GH200 and 8x RTX-class machines.
type NodeType struct {
	GPU         core.GPUType
	GPUsPerNode int
	// NICGbps is the node's network bandwidth in Gbit/s.
	NICGbps float64
}

// DefaultNodeType returns the node shape used throughout the evaluation for
// a GPU type: 4-GPU VMs in the cloud (A100/V100/GH200-like), 8-GPU machines
// for the RTX on-premise cluster.
func DefaultNodeType(t core.GPUType) NodeType {
	switch t {
	case core.RTX3090, core.RTX2080, core.TitanRTX:
		return NodeType{GPU: t, GPUsPerNode: 8, NICGbps: 25}
	case core.GH200:
		return NodeType{GPU: t, GPUsPerNode: 4, NICGbps: 200}
	case core.H100:
		return NodeType{GPU: t, GPUsPerNode: 8, NICGbps: 400}
	default:
		return NodeType{GPU: t, GPUsPerNode: 4, NICGbps: 100}
	}
}
