// Package advgen is the adversarial trace generator: a seeded random
// search over availability-event sequences that maximizes a replay-badness
// objective against a real sailor.Service fleet. Where the scenario
// families replay what their authors imagined, advgen hunts the inputs the
// fleet handles worst — and its top candidates are written as external
// trace files, becoming golden regression scenarios that pin the planner's
// behaviour on its own worst cases.
//
// The search is deterministic end to end: candidates are generated and
// mutated from one seeded rng, every evaluation replays through the
// service's deterministic fleet path (same plans, same preemption order at
// any worker count), and elite-pool ties break on the candidate's
// canonical trace-file encoding. The same (config, seed, budget) always
// returns the same top-K traces, which is what lets CI smoke-run the
// generator and assert the top-1 byte-for-byte.
package advgen

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/sailor"
)

// Objective selects what the search maximizes.
type Objective string

const (
	// Downtime counts job-steps spent waiting: after each replay step, every
	// open job left without a lease ("wait" rebalance outcomes).
	Downtime Objective = "downtime"
	// Churn counts lease evictions — availability events and cap squeezes
	// breaking leases.
	Churn Objective = "churn"
	// Replans counts planner searches the fleet is forced into (admissions
	// and warm replans).
	Replans Objective = "replans"
	// WarmMiss maximizes the fraction of forced searches that get no help
	// from the warm cache (zero DP hits) — anti-warm-start traces.
	WarmMiss Objective = "warm-miss"
)

// Objectives lists every search objective.
func Objectives() []Objective { return []Objective{Downtime, Churn, Replans, WarmMiss} }

// ParseObjective resolves an objective name.
func ParseObjective(s string) (Objective, error) {
	for _, o := range Objectives() {
		if string(o) == s {
			return o, nil
		}
	}
	return "", fmt.Errorf("advgen: unknown objective %q (have: %v)", s, Objectives())
}

// Score is the replay-badness measurement of one candidate trace.
type Score struct {
	// Downtime is the total job-steps spent leaseless across the replay.
	Downtime int
	// Churn is the number of lease evictions.
	Churn int
	// Replans is the number of planner searches (admit + replan).
	Replans int
	// WarmMisses counts searches with zero warm-cache hits; Searches is the
	// denominator.
	WarmMisses int
	Searches   int
}

// Value projects the score onto one objective (higher = worse for the
// fleet = better for the adversary).
func (s Score) Value(obj Objective) float64 {
	switch obj {
	case Downtime:
		return float64(s.Downtime)
	case Churn:
		return float64(s.Churn)
	case Replans:
		return float64(s.Replans)
	case WarmMiss:
		if s.Searches == 0 {
			return 0
		}
		return float64(s.WarmMisses) / float64(s.Searches)
	}
	return 0
}

// Candidate is one evaluated trace with its score and canonical encoding.
type Candidate struct {
	Trace *trace.Trace
	Score Score
	// Doc is the canonical trace-file encoding — the deterministic
	// tiebreaker and the bytes a committed worst case is written as.
	Doc []byte
}

// Config parameterizes a search.
type Config struct {
	// Model is the training job every fleet tenant runs.
	Model sailor.Model
	// Zones and GPUs are the alphabet candidate events draw from.
	Zones []core.Zone
	GPUs  []core.GPUType
	// Jobs is the fleet size (job-0 highest priority, like sailor-replay).
	Jobs int
	// Horizon bounds candidate traces.
	Horizon time.Duration
	// MaxGPUs bounds any single event's delta and each cell's initial grant.
	MaxGPUs int
	// MaxEvents bounds a candidate's availability-event count.
	MaxEvents int
	// Objective is what the search maximizes.
	Objective Objective
	// Budget is the number of candidate evaluations (fleet replays).
	Budget int
	// TopK is the elite-pool size — how many worst cases are kept.
	TopK int
	// Seed drives the whole search.
	Seed int64
	// Workers is the planner parallelism of the evaluation service; results
	// are identical at any setting.
	Workers int
	// CapMutations enables demand-autoscaling (cap event) mutations.
	CapMutations bool
	// Log, when set, receives one line per improvement.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if len(c.Zones) == 0 {
		c.Zones = []core.Zone{
			{Region: "us-central1", Name: "us-central1-a"},
			{Region: "us-central1", Name: "us-central1-b"},
		}
	}
	if len(c.GPUs) == 0 {
		c.GPUs = []core.GPUType{core.A100}
	}
	if c.Jobs <= 0 {
		c.Jobs = 3
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Hour
	}
	if c.MaxGPUs <= 0 {
		c.MaxGPUs = 8
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 24
	}
	if c.Objective == "" {
		c.Objective = Downtime
	}
	if c.Budget <= 0 {
		c.Budget = 32
	}
	if c.TopK <= 0 {
		c.TopK = 2
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

// Search runs the seeded random search and returns the elite pool, worst
// first. The returned candidates all carry valid canonical trace files.
func Search(cfg Config) ([]Candidate, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := &harness{cfg: cfg}
	if err := h.init(); err != nil {
		return nil, err
	}

	var elites []Candidate
	insert := func(c Candidate) bool {
		elites = append(elites, c)
		sort.Slice(elites, func(i, j int) bool { return h.better(elites[i], elites[j]) })
		if len(elites) > cfg.TopK {
			elites = elites[:cfg.TopK]
		}
		for i := range elites {
			if bytes.Equal(elites[i].Doc, c.Doc) {
				return i == 0
			}
		}
		return false
	}

	for i := 0; i < cfg.Budget; i++ {
		var tr *trace.Trace
		switch {
		case len(elites) == 0 || i < cfg.TopK:
			tr = h.randomTrace(rng)
		case rng.Intn(4) == 0 && len(elites) >= 2:
			tr = h.crossover(rng, elites[rng.Intn(len(elites))].Trace, elites[rng.Intn(len(elites))].Trace)
		case rng.Intn(3) == 0:
			tr = h.splice(rng, elites[rng.Intn(len(elites))].Trace, h.randomTrace(rng))
		default:
			tr = h.mutate(rng, elites[rng.Intn(len(elites))].Trace)
		}
		cand, err := h.evaluate(tr)
		if err != nil {
			// An invalid mutation (e.g. everything mutated away) is skipped,
			// not fatal: the search just spends the evaluation elsewhere.
			continue
		}
		if insert(cand) {
			cfg.Log("eval %d/%d: new worst %s=%.3f (downtime=%d churn=%d replans=%d warm-miss=%d/%d)",
				i+1, cfg.Budget, cfg.Objective, cand.Score.Value(cfg.Objective),
				cand.Score.Downtime, cand.Score.Churn, cand.Score.Replans,
				cand.Score.WarmMisses, cand.Score.Searches)
		}
	}
	if len(elites) == 0 {
		return nil, fmt.Errorf("advgen: no valid candidate in %d evaluations", cfg.Budget)
	}
	return elites, nil
}

// better orders candidates worst-first with deterministic ties: higher
// objective value, then fewer events (a smaller repro is a better repro),
// then lexicographically smaller canonical encoding.
func (h *harness) better(a, b Candidate) bool {
	av, bv := a.Score.Value(h.cfg.Objective), b.Score.Value(h.cfg.Objective)
	if av != bv {
		return av > bv
	}
	if len(a.Trace.Events) != len(b.Trace.Events) {
		return len(a.Trace.Events) < len(b.Trace.Events)
	}
	return bytes.Compare(a.Doc, b.Doc) < 0
}

// harness owns the evaluation service: one sailor.Service reused across the
// whole search (profiled Systems amortized via the service's LRU), with
// jobs and ledger reset per evaluation so every candidate replays from an
// identical cold fleet.
type harness struct {
	cfg  Config
	svc  *sailor.Service
	open bool
}

func (h *harness) init() error {
	h.svc = sailor.NewService(sailor.ServiceConfig{Workers: h.cfg.Workers})
	return nil
}

// reset closes and reopens every job (fresh warm caches and last plans)
// and installs a fresh ledger with the given per-job cap.
func (h *harness) reset(cap int) (*sailor.Ledger, error) {
	if h.open {
		for i := 0; i < h.cfg.Jobs; i++ {
			if err := h.svc.CloseJob(fmt.Sprintf("job-%d", i)); err != nil {
				return nil, err
			}
		}
	}
	led := sailor.NewLedger(sailor.NewPool())
	led.SetJobCap(cap)
	if err := h.svc.SetFleetLedger(led); err != nil {
		return nil, err
	}
	for i := 0; i < h.cfg.Jobs; i++ {
		if err := h.svc.OpenJob(fmt.Sprintf("job-%d", i), h.cfg.Model, h.cfg.GPUs, h.cfg.Jobs-i); err != nil {
			return nil, err
		}
	}
	h.open = true
	return led, nil
}

// evaluate replays one candidate through the fleet — the same merged
// cap/availability step loop as sailor-replay -trace -fleet, including the
// auto cap (half the trace's peak availability) — and scores it.
func (h *harness) evaluate(tr *trace.Trace) (Candidate, error) {
	doc, err := trace.Save(&trace.File{Name: "candidate", Trace: tr})
	if err != nil {
		return Candidate{}, err
	}
	cap := tr.PeakGPUs() / 2
	if cap < 1 {
		cap = 1
	}
	led, err := h.reset(cap)
	if err != nil {
		return Candidate{}, err
	}
	var sc Score
	events, caps := tr.Events, tr.CapEvents
	ci := 0
	for i := 0; i < len(events) || ci < len(caps); {
		var at time.Duration
		switch {
		case i < len(events) && ci < len(caps) && caps[ci].At <= events[i].At:
			at = caps[ci].At
		case i < len(events):
			at = events[i].At
		default:
			at = caps[ci].At
		}
		for ; ci < len(caps) && caps[ci].At == at; ci++ {
			sc.Churn += len(led.SetJobCap(caps[ci].GPUs))
		}
		for ; i < len(events) && events[i].At == at; i++ {
			broken, err := h.svc.FleetEvent(events[i])
			if err != nil {
				return Candidate{}, err
			}
			sc.Churn += len(broken)
		}
		steps, err := h.svc.Rebalance(context.Background())
		if err != nil {
			return Candidate{}, err
		}
		for _, st := range steps {
			switch st.Action {
			case "wait":
				sc.Downtime++
			default:
				sc.Replans++
				sc.Searches++
				if st.Result != nil && st.Result.CacheHits == 0 {
					sc.WarmMisses++
				}
			}
		}
		if err := led.CheckInvariant(); err != nil {
			return Candidate{}, fmt.Errorf("advgen: candidate broke the ledger invariant at t+%s: %w", at, err)
		}
	}
	return Candidate{Trace: tr, Score: sc, Doc: doc}, nil
}

// quantum is the event-time grid: candidate timestamps are whole minutes,
// keeping committed worst cases human-readable.
const quantum = time.Minute

func (h *harness) randomAt(rng *rand.Rand) time.Duration {
	steps := int(h.cfg.Horizon / quantum)
	return time.Duration(rng.Intn(steps+1)) * quantum
}

func (h *harness) randomEvent(rng *rand.Rand) trace.Event {
	d := 1 + rng.Intn(h.cfg.MaxGPUs)
	if rng.Intn(2) == 0 {
		d = -d
	}
	return trace.Event{
		At:    h.randomAt(rng),
		Zone:  h.cfg.Zones[rng.Intn(len(h.cfg.Zones))],
		GPU:   h.cfg.GPUs[rng.Intn(len(h.cfg.GPUs))],
		Delta: d,
	}
}

// randomTrace seeds a candidate: every (zone, gpu) cell gets an initial
// grant at t=0 (so the fleet has something to lease), then a random event
// tail, then optional cap events.
func (h *harness) randomTrace(rng *rand.Rand) *trace.Trace {
	tr := &trace.Trace{Horizon: h.cfg.Horizon}
	for _, z := range h.cfg.Zones {
		for _, g := range h.cfg.GPUs {
			tr.Events = append(tr.Events, trace.Event{
				At: 0, Zone: z, GPU: g, Delta: 1 + rng.Intn(h.cfg.MaxGPUs),
			})
		}
	}
	room := h.cfg.MaxEvents - len(tr.Events)
	if room < 0 {
		room = 0
	}
	n := rng.Intn(room + 1)
	for i := 0; i < n; i++ {
		tr.Events = append(tr.Events, h.randomEvent(rng))
	}
	if h.cfg.CapMutations && rng.Intn(2) == 0 {
		tr.CapEvents = append(tr.CapEvents, trace.CapEvent{
			At: h.randomAt(rng), GPUs: 1 + rng.Intn(h.cfg.MaxGPUs),
		})
	}
	return canonical(tr)
}

// mutate perturbs one aspect of a candidate: move an event in time, rescale
// a delta, add or drop an event, or (when enabled) move the cap schedule.
func (h *harness) mutate(rng *rand.Rand, base *trace.Trace) *trace.Trace {
	tr := base.Clone()
	ops := 4
	if h.cfg.CapMutations {
		ops = 5
	}
	switch rng.Intn(ops) {
	case 0: // move an event in time
		if len(tr.Events) > 0 {
			tr.Events[rng.Intn(len(tr.Events))].At = h.randomAt(rng)
		}
	case 1: // rescale a delta
		if len(tr.Events) > 0 {
			i := rng.Intn(len(tr.Events))
			d := 1 + rng.Intn(h.cfg.MaxGPUs)
			if tr.Events[i].Delta < 0 {
				d = -d
			}
			tr.Events[i].Delta = d
		}
	case 2: // add an event
		if len(tr.Events) < h.cfg.MaxEvents {
			tr.Events = append(tr.Events, h.randomEvent(rng))
		}
	case 3: // drop an event (keep at least one)
		if len(tr.Events) > 1 {
			i := rng.Intn(len(tr.Events))
			tr.Events = append(tr.Events[:i], tr.Events[i+1:]...)
		}
	case 4: // move/add/drop a cap event
		switch {
		case len(tr.CapEvents) > 0 && rng.Intn(3) == 0:
			tr.CapEvents = tr.CapEvents[:len(tr.CapEvents)-1]
		case len(tr.CapEvents) > 0 && rng.Intn(2) == 0:
			tr.CapEvents[rng.Intn(len(tr.CapEvents))].At = h.randomAt(rng)
		default:
			tr.CapEvents = append(tr.CapEvents, trace.CapEvent{
				At: h.randomAt(rng), GPUs: 1 + rng.Intn(h.cfg.MaxGPUs),
			})
		}
	}
	return canonical(tr)
}

// splice copies a random time-window of donor events into the base.
func (h *harness) splice(rng *rand.Rand, base, donor *trace.Trace) *trace.Trace {
	tr := base.Clone()
	if len(donor.Events) == 0 {
		return canonical(tr)
	}
	lo, hi := h.randomAt(rng), h.randomAt(rng)
	if hi < lo {
		lo, hi = hi, lo
	}
	shift := h.randomAt(rng) - lo
	for _, e := range donor.Events {
		if e.At < lo || e.At >= hi || len(tr.Events) >= h.cfg.MaxEvents {
			continue
		}
		e.At += shift
		if e.At < 0 || e.At > tr.Horizon {
			continue
		}
		tr.Events = append(tr.Events, e)
	}
	return canonical(tr)
}

// crossover keeps a's events before a random cut and b's events after it.
func (h *harness) crossover(rng *rand.Rand, a, b *trace.Trace) *trace.Trace {
	cut := h.randomAt(rng)
	tr := &trace.Trace{Horizon: a.Horizon}
	for _, e := range a.Events {
		if e.At < cut {
			tr.Events = append(tr.Events, e)
		}
	}
	for _, e := range b.Events {
		if e.At >= cut {
			tr.Events = append(tr.Events, e)
		}
	}
	for _, c := range a.CapEvents {
		if c.At < cut {
			tr.CapEvents = append(tr.CapEvents, c)
		}
	}
	for _, c := range b.CapEvents {
		if c.At >= cut {
			tr.CapEvents = append(tr.CapEvents, c)
		}
	}
	if len(tr.Events) > h.cfg.MaxEvents {
		tr.Events = tr.Events[:h.cfg.MaxEvents]
	}
	if len(tr.Events) == 0 {
		tr.Events = append(tr.Events, trace.Event{
			At: 0, Zone: h.cfg.Zones[0], GPU: h.cfg.GPUs[0], Delta: 1 + rng.Intn(h.cfg.MaxGPUs),
		})
	}
	return canonical(tr)
}

// canonical clones and canonically sorts a mutated trace (Compose with no
// overlays), so every candidate the harness evaluates is already in the
// order its committed file would replay.
func canonical(tr *trace.Trace) *trace.Trace {
	return trace.Compose(tr)
}
