package advgen

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/sailor"
)

func tinyConfig(workers int) Config {
	return Config{
		Model:        sailor.OPT350M(),
		Jobs:         2,
		Horizon:      time.Hour,
		MaxGPUs:      6,
		MaxEvents:    10,
		Objective:    Churn,
		Budget:       6,
		TopK:         2,
		Seed:         7,
		Workers:      workers,
		CapMutations: true,
	}
}

// TestSearchDeterminism is the generator's core contract: the same
// (config, seed, budget) returns byte-identical top-K trace files, at any
// planner worker count.
func TestSearchDeterminism(t *testing.T) {
	a, err := Search(tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	w8, err := Search(tinyConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != len(w8) {
		t.Fatalf("elite counts differ: %d / %d / %d", len(a), len(b), len(w8))
	}
	for i := range a {
		if !bytes.Equal(a[i].Doc, b[i].Doc) {
			t.Errorf("rank %d differs between identical runs", i)
		}
		if !bytes.Equal(a[i].Doc, w8[i].Doc) {
			t.Errorf("rank %d differs between workers=1 and workers=8", i)
		}
		if a[i].Score != w8[i].Score {
			t.Errorf("rank %d score differs across worker counts: %+v vs %+v", i, a[i].Score, w8[i].Score)
		}
	}
}

// TestSearchCandidatesAreValidTraceFiles: every elite's Doc loads back as
// a valid trace file whose trace equals the candidate's.
func TestSearchCandidatesAreValidTraceFiles(t *testing.T) {
	elites, err := Search(tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(elites) == 0 {
		t.Fatal("no elites")
	}
	for i, e := range elites {
		f, err := trace.Load(e.Doc)
		if err != nil {
			t.Fatalf("rank %d: Doc does not load: %v", i, err)
		}
		if len(f.Trace.Events) != len(e.Trace.Events) {
			t.Fatalf("rank %d: Doc has %d events, candidate %d", i, len(f.Trace.Events), len(e.Trace.Events))
		}
	}
}

// TestSearchRanking: elites come back worst-first under the objective.
func TestSearchRanking(t *testing.T) {
	elites, err := Search(tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(elites); i++ {
		if elites[i].Score.Value(Churn) > elites[i-1].Score.Value(Churn) {
			t.Errorf("rank %d (%.3f) worse than rank %d (%.3f)", i,
				elites[i].Score.Value(Churn), i-1, elites[i-1].Score.Value(Churn))
		}
	}
}

func TestParseObjective(t *testing.T) {
	for _, o := range Objectives() {
		got, err := ParseObjective(string(o))
		if err != nil || got != o {
			t.Errorf("ParseObjective(%q) = %v, %v", o, got, err)
		}
	}
	if _, err := ParseObjective("chaos"); err == nil {
		t.Error("ParseObjective accepted an unknown objective")
	}
}

// TestScoreValue pins the objective projections.
func TestScoreValue(t *testing.T) {
	s := Score{Downtime: 3, Churn: 5, Replans: 7, WarmMisses: 2, Searches: 8}
	if v := s.Value(Downtime); v != 3 {
		t.Errorf("downtime = %v", v)
	}
	if v := s.Value(Churn); v != 5 {
		t.Errorf("churn = %v", v)
	}
	if v := s.Value(Replans); v != 7 {
		t.Errorf("replans = %v", v)
	}
	if v := s.Value(WarmMiss); v != 0.25 {
		t.Errorf("warm-miss = %v", v)
	}
	if v := (Score{}).Value(WarmMiss); v != 0 {
		t.Errorf("warm-miss with no searches = %v", v)
	}
}
