// Package memory implements Sailor's per-worker memory-footprint estimator
// (§4.3): M_peak = M_model + M_activation, computed per worker (not per
// stage), accounting for all resident sources — parameter copies, gradients,
// optimizer states, communication buffers, and the 1F1B in-flight activation
// pyramid.
//
// Prior planners omit parts of this accounting (Figure 3); the baseline
// implementations in internal/baselines reproduce those omissions with their
// own formulas. This package is the accurate one.
package memory

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/model"
)

// Mixed-precision Adam byte costs per parameter (ZeRO-Infinity accounting
// [46]): bf16 weights + bf16 gradients + fp32 master copy + fp32 momentum +
// fp32 variance.
const (
	BytesWeights   = 2
	BytesGradients = 2
	BytesOptimizer = 12
)

// Breakdown itemises a worker's resident memory in bytes.
type Breakdown struct {
	Weights         int64
	Gradients       int64
	OptimizerStates int64
	CommBuffers     int64
	Activations     int64
}

// Total returns the summed footprint.
func (b Breakdown) Total() int64 {
	return b.Weights + b.Gradients + b.OptimizerStates + b.CommBuffers + b.Activations
}

// WorkerShape identifies one worker's slice of the job for footprint
// purposes: which stage it serves, the stage's layer count, its TP degree,
// and the pipeline geometry.
type WorkerShape struct {
	Layers   int // transformer blocks in this stage
	StageIdx int // 0-based pipeline stage index
	PP       int // pipeline depth
	TP       int
	MicroBS  int
	NumMicro int // microbatches per pipeline per iteration
	FirstStg bool
	LastStg  bool
	// Recompute: only stage-boundary activations are retained per
	// in-flight microbatch; the layer activations are rematerialised
	// during backward (one layer's worth of transient at a time).
	Recompute bool
}

// WorkerFootprint estimates the peak resident bytes for one worker.
func WorkerFootprint(cfg model.Config, w WorkerShape) Breakdown {
	params := cfg.StageParams(w.Layers, w.TP, w.FirstStg, w.LastStg)
	var b Breakdown
	b.Weights = params * BytesWeights
	b.Gradients = params * BytesGradients
	b.OptimizerStates = params * BytesOptimizer

	// Communication buffers: a gradient bucket for the DP all-reduce
	// (mirrors the gradient size) plus send/recv staging for pipeline
	// activations in both directions.
	b.CommBuffers = params * BytesGradients
	if w.PP > 1 {
		b.CommBuffers += 4 * cfg.BoundaryActivationBytes(w.MicroBS)
	}

	// 1F1B keeps min(PP - stage, NumMicro) microbatches in flight on stage
	// `stage`; each retains the activations of every layer it owns.
	inflight := w.PP - w.StageIdx
	if w.NumMicro > 0 && inflight > w.NumMicro {
		inflight = w.NumMicro
	}
	if inflight < 1 {
		inflight = 1
	}
	perMB := cfg.ActivationBytesPerLayer(w.MicroBS, w.TP) * int64(w.Layers)
	if w.Recompute {
		// Retain only the stage input per in-flight microbatch, plus one
		// layer's live activations during the backward replay.
		perMB = cfg.BoundaryActivationBytes(w.MicroBS)
	}
	if w.LastStg {
		// Logits buffer for the loss: mbs * seq * vocab in half precision,
		// sharded by TP.
		perMB += 2 * int64(w.MicroBS) * int64(cfg.SeqLen) * int64(cfg.Vocab) / int64(w.TP)
	}
	b.Activations = int64(inflight) * perMB
	if w.Recompute {
		b.Activations += cfg.ActivationBytesPerLayer(w.MicroBS, w.TP)
	}
	return b
}

// CapacityReserve is the per-GPU memory unavailable to the framework: CUDA
// context, NCCL buffers, allocator reserve. The real-system figures it via
// profiling; we use a representative constant.
const CapacityReserve = int64(900) << 20

// SafetyFactor pads validity checks against allocator fragmentation and
// transient workspace (roughly +10% at peak on real allocators). Estimates
// themselves are unpadded — only the fits/OOM decision is conservative, so
// the planner never deploys borderline plans.
const SafetyFactor = 1.10

// Fits is the shared validity rule: a worker footprint fits a GPU when the
// padded total plus the fixed reserve stays within capacity.
func Fits(total, capacity int64) bool {
	return int64(float64(total)*SafetyFactor)+CapacityReserve <= capacity
}

// Check evaluates every worker of a plan against its GPU capacity.
// It returns the peak worker footprint, the GPU type hosting it, and
// whether all workers fit.
func Check(cfg model.Config, plan core.Plan) (peak int64, peakGPU core.GPUType, fits bool, err error) {
	if plan.DP() == 0 || plan.PP() == 0 {
		return 0, "", false, fmt.Errorf("memory: empty plan")
	}
	nb := numMicrobatches(cfg, plan)
	fits = true
	for si, s := range plan.Stages {
		for _, r := range s.Replicas {
			spec, lerr := hardware.Lookup(r.GPU)
			if lerr != nil {
				return 0, "", false, lerr
			}
			w := WorkerShape{
				Layers: s.NumLayers, StageIdx: si, PP: plan.PP(), TP: r.TP,
				MicroBS: plan.MicroBatchSize, NumMicro: nb,
				FirstStg: si == 0, LastStg: si == plan.PP()-1,
				Recompute: plan.Recompute,
			}
			total := WorkerFootprint(cfg, w).Total()
			if total > peak {
				peak, peakGPU = total, r.GPU
			}
			if !Fits(total, spec.MemoryBytes) {
				fits = false
			}
		}
	}
	return peak, peakGPU, fits, nil
}

// MinTP returns the minimum tensor-parallel degree of GPU type g that fits
// a stage of `layers` blocks at the given microbatch size — heuristic H2.
// It returns 0 when no degree up to the node size fits. The result is
// independent of availability, so the planner caches it across replans.
func MinTP(cfg model.Config, g core.GPUType, layers, stageIdx, pp, mbs, nb int) int {
	return MinTPWith(cfg, g, layers, stageIdx, pp, mbs, nb, false)
}

// MinTPWith is MinTP with an explicit activation-recomputation mode.
func MinTPWith(cfg model.Config, g core.GPUType, layers, stageIdx, pp, mbs, nb int, recompute bool) int {
	spec, err := hardware.Lookup(g)
	if err != nil {
		return 0
	}
	node := hardware.DefaultNodeType(g)
	for tp := 1; tp <= node.GPUsPerNode; tp *= 2 {
		w := WorkerShape{
			Layers: layers, StageIdx: stageIdx, PP: pp, TP: tp,
			MicroBS: mbs, NumMicro: nb,
			FirstStg: stageIdx == 0, LastStg: stageIdx == pp-1,
			Recompute: recompute,
		}
		if Fits(WorkerFootprint(cfg, w).Total(), spec.MemoryBytes) {
			return tp
		}
	}
	return 0
}

func numMicrobatches(cfg model.Config, plan core.Plan) int {
	dp := plan.DP()
	if dp == 0 || plan.MicroBatchSize == 0 {
		return 0
	}
	return cfg.GlobalBatch / (dp * plan.MicroBatchSize)
}
