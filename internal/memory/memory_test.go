package memory

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/model"
)

func shape(layers, stage, pp, tp, mbs, nb int) WorkerShape {
	return WorkerShape{
		Layers: layers, StageIdx: stage, PP: pp, TP: tp,
		MicroBS: mbs, NumMicro: nb,
		FirstStg: stage == 0, LastStg: stage == pp-1,
	}
}

func TestBreakdownTotalsAllSources(t *testing.T) {
	cfg := model.OPT350M()
	b := WorkerFootprint(cfg, shape(6, 1, 4, 1, 2, 8))
	if b.Weights <= 0 || b.Gradients <= 0 || b.OptimizerStates <= 0 ||
		b.CommBuffers <= 0 || b.Activations <= 0 {
		t.Fatalf("all memory sources must be counted: %+v", b)
	}
	sum := b.Weights + b.Gradients + b.OptimizerStates + b.CommBuffers + b.Activations
	if b.Total() != sum {
		t.Errorf("Total = %d, want %d", b.Total(), sum)
	}
	// Optimizer states dominate weights 6:1 in mixed-precision Adam — the
	// source Varuna-style estimators omit (Figure 3).
	if b.OptimizerStates != 6*b.Weights {
		t.Errorf("optimizer:weights = %d:%d, want 6:1", b.OptimizerStates, b.Weights)
	}
}

func TestActivationPyramid(t *testing.T) {
	// Earlier 1F1B stages hold more in-flight microbatches, so with equal
	// layers stage 0 must out-consume the middle stages (per-worker
	// accounting, the thing uniform-per-stage estimators miss).
	cfg := model.OPT350M()
	first := WorkerFootprint(cfg, WorkerShape{Layers: 6, StageIdx: 0, PP: 4, TP: 1, MicroBS: 2, NumMicro: 8})
	mid := WorkerFootprint(cfg, WorkerShape{Layers: 6, StageIdx: 2, PP: 4, TP: 1, MicroBS: 2, NumMicro: 8})
	if first.Activations <= mid.Activations {
		t.Errorf("stage 0 activations %d should exceed stage 2's %d", first.Activations, mid.Activations)
	}
	if first.Activations != 2*mid.Activations {
		t.Errorf("4-deep pipeline: stage 0 holds 4 in-flight, stage 2 holds 2: %d vs %d",
			first.Activations, mid.Activations)
	}
}

func TestInflightCappedByMicrobatches(t *testing.T) {
	cfg := model.OPT350M()
	// With nb=2 the pyramid saturates at 2 regardless of depth.
	a := WorkerFootprint(cfg, WorkerShape{Layers: 6, StageIdx: 0, PP: 8, TP: 1, MicroBS: 2, NumMicro: 2})
	b := WorkerFootprint(cfg, WorkerShape{Layers: 6, StageIdx: 5, PP: 8, TP: 1, MicroBS: 2, NumMicro: 2})
	if a.Activations != b.Activations {
		t.Errorf("in-flight must cap at nb: %d vs %d", a.Activations, b.Activations)
	}
}

func TestLastStageLogitsBuffer(t *testing.T) {
	cfg := model.OPT350M()
	last := WorkerFootprint(cfg, WorkerShape{Layers: 6, StageIdx: 3, PP: 4, TP: 1, MicroBS: 2, NumMicro: 8, LastStg: true})
	mid := WorkerFootprint(cfg, WorkerShape{Layers: 6, StageIdx: 3, PP: 4, TP: 1, MicroBS: 2, NumMicro: 8})
	if last.Activations <= mid.Activations {
		t.Error("last stage must pay the vocab logits buffer")
	}
}

func TestTPShardsFootprint(t *testing.T) {
	cfg := model.GPTNeo27B()
	t1 := WorkerFootprint(cfg, shape(8, 1, 4, 1, 2, 8)).Total()
	t4 := WorkerFootprint(cfg, shape(8, 1, 4, 4, 2, 8)).Total()
	if t4 >= t1 {
		t.Errorf("TP=4 must shrink the footprint: %d >= %d", t4, t1)
	}
}

func onePlanZ(g core.GPUType, tp, dp, pp, mbs, layers int) core.Plan {
	z := core.Zone{Region: "r", Name: "r-a"}
	per := layers / pp
	stages := make([]core.StagePlan, pp)
	for i := range stages {
		reps := make([]core.StageReplica, dp)
		for j := range reps {
			reps[j] = core.StageReplica{GPU: g, TP: tp, Zone: z}
		}
		stages[i] = core.StagePlan{FirstLayer: i * per, NumLayers: per, Replicas: reps}
	}
	return core.Plan{MicroBatchSize: mbs, Stages: stages}
}

func TestCheckDetectsOOM(t *testing.T) {
	cfg := model.GPTNeo27B()
	// 2.7B params on a single V100-16GB with TP=1: hopeless.
	bad := onePlanZ(core.V100, 1, 1, 1, 4, 32)
	_, gpu, fits, err := Check(cfg, bad)
	if err != nil {
		t.Fatal(err)
	}
	if fits {
		t.Fatal("GPT-Neo on one V100 must OOM")
	}
	if gpu != core.V100 {
		t.Errorf("peak GPU = %s, want V100", gpu)
	}
	// Same model spread over 8 stages of GH200 with TP=4 fits comfortably.
	good := onePlanZ(core.GH200, 4, 2, 8, 1, 32)
	_, _, fits, err = Check(cfg, good)
	if err != nil {
		t.Fatal(err)
	}
	if !fits {
		t.Error("8-stage TP=4 GH200 plan should fit GPT-Neo")
	}
}

func TestCheckEmptyPlan(t *testing.T) {
	if _, _, _, err := Check(model.OPT350M(), core.Plan{}); err == nil {
		t.Error("want error for empty plan")
	}
}

func TestMinTP(t *testing.T) {
	cfg := model.GPTNeo27B()
	// A full 32-layer stage of GPT-Neo on V100-16GB cannot fit at any TP
	// within a 4-GPU node.
	if got := MinTP(cfg, core.V100, 32, 0, 1, 4, 16); got != 0 {
		t.Errorf("MinTP V100 full model = %d, want 0 (impossible)", got)
	}
	// A 4-layer stage of OPT-350M fits a single A100.
	if got := MinTP(model.OPT350M(), core.A100, 4, 0, 6, 2, 8); got != 1 {
		t.Errorf("MinTP A100 small stage = %d, want 1", got)
	}
	// V100 needs a higher TP than A100 for the same GPT-Neo stage — the
	// memory-capacity asymmetry H2 exploits.
	a := MinTP(cfg, core.A100, 8, 0, 4, 2, 16)
	v := MinTP(cfg, core.V100, 8, 0, 4, 2, 16)
	if a == 0 {
		t.Fatal("A100 should fit an 8-layer GPT-Neo stage at some TP")
	}
	if v != 0 && v <= a {
		t.Errorf("V100 MinTP %d should exceed A100's %d", v, a)
	}
	if got := MinTP(cfg, "No-Such", 8, 0, 4, 2, 16); got != 0 {
		t.Error("unknown GPU should yield 0")
	}
}

func TestMinTPIndependentOfAvailability(t *testing.T) {
	// H2's cache validity: MinTP depends only on the stage shape, never on
	// pool contents, so the same inputs must always agree.
	cfg := model.OPT350M()
	a := MinTP(cfg, core.V100, 6, 1, 4, 4, 8)
	b := MinTP(cfg, core.V100, 6, 1, 4, 4, 8)
	if a != b {
		t.Errorf("MinTP not deterministic: %d vs %d", a, b)
	}
}

func TestFootprintFitsRealisticBudget(t *testing.T) {
	// OPT-350M, PP=2, TP=1, mbs=2 should fit an A100-40GB —
	// the kind of plan Figure 7 deploys.
	cfg := model.OPT350M()
	plan := onePlanZ(core.A100, 1, 4, 2, 2, 24)
	peak, _, fits, err := Check(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !fits {
		t.Errorf("OPT-350M PP=2 plan should fit A100-40GB, peak %d", peak)
	}
	spec := hardware.MustLookup(core.A100)
	if peak >= spec.MemoryBytes {
		t.Errorf("peak %d exceeds capacity %d", peak, spec.MemoryBytes)
	}
}
