// Package groundtruth is the measurement substrate of this reproduction: a
// high-fidelity discrete-event execution of a training plan that stands in
// for the paper's real clusters (see DESIGN.md, substitution table).
//
// Where the analytical simulator (internal/sim) uses closed-form 1F1B
// timing over fitted network coefficients, this engine executes the exact
// 1F1B dependency graph op by op over concrete links and adds the
// second-order effects real systems exhibit and estimators omit:
// per-kernel jitter, NIC caps, link contention between concurrent
// data-parallel rings, allocator fragmentation and transient workspace on
// peak memory, and a fixed per-iteration framework overhead.
//
// Estimation-error experiments (Figures 3, 5, 6) compare each planner's
// estimator against Measure; planner-comparison experiments (Figures 7-14)
// score every planner's chosen plan with Measure.
package groundtruth

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/profiler"
	"repro/internal/sim"
)

// Engine measures plans for one training job on the modelled hardware.
type Engine struct {
	Cfg     model.Config
	Net     *hardware.Network
	Pricing *hardware.Pricing
	// Seed drives the deterministic jitter so measurements are repeatable.
	Seed uint64
	// JitterFrac is the per-kernel relative jitter magnitude (default 3%).
	JitterFrac float64
}

// New returns an engine with default hardware models.
func New(cfg model.Config) *Engine {
	return &Engine{
		Cfg:        cfg,
		Net:        hardware.DefaultNetwork(),
		Pricing:    hardware.DefaultPricing(),
		Seed:       1,
		JitterFrac: 0.03,
	}
}

// Fragmentation and fixed overheads of the "real" stack.
const (
	fragmentationFactor = 1.07  // PyTorch CUDA allocator fragmentation
	perIterOverheadSec  = 0.015 // dataloader, hooks, python driver
)

// Measure executes one training iteration of the plan and returns what a
// testbed run would report: wall-clock iteration time, billed cost, and the
// true peak memory of the most loaded worker.
func (e *Engine) Measure(plan core.Plan) (core.Estimate, error) {
	if err := plan.Validate(e.Cfg.Layers); err != nil {
		return core.Estimate{}, err
	}
	nb := sim.NumMicrobatches(e.Cfg, plan)
	if nb == 0 {
		return core.Estimate{}, fmt.Errorf("groundtruth: degenerate plan")
	}
	p := plan.PP()
	dp := plan.DP()

	sched, err := pipeline.OneFOneB(p, nb)
	if err != nil {
		return core.Estimate{}, err
	}

	// Execute every pipeline's dependency graph; iteration waits for the
	// slowest one (the straggler pipeline).
	maxPipe := 0.0
	stageTimes := make([]float64, p)
	for k := 0; k < dp; k++ {
		fwdBase := make([]float64, p)
		bwdBase := make([]float64, p)
		comm := make([]float64, p-1)
		for i, st := range plan.Stages {
			r := st.Replicas[k]
			spec, lerr := hardware.Lookup(r.GPU)
			if lerr != nil {
				return core.Estimate{}, lerr
			}
			lt := profiler.BaseLayerTiming(spec, e.Cfg, plan.MicroBatchSize, r.TP)
			fwdBase[i] = float64(st.NumLayers) * lt.Fwd
			bwdBase[i] = float64(st.NumLayers) * lt.Bwd
			if plan.Recompute {
				bwdBase[i] += fwdBase[i] // forward replay during backward
			}
			if i == p-1 {
				ht := profiler.BaseHeadTiming(spec, e.Cfg, plan.MicroBatchSize, r.TP)
				fwdBase[i] += ht.Fwd
				bwdBase[i] += ht.Bwd
			}
			if i < p-1 {
				next := plan.Stages[i+1].Replicas[k]
				link := e.linkBetween(r, next)
				comm[i] = link.TransferTime(e.Cfg.BoundaryActivationBytes(plan.MicroBatchSize))
			}
			if t := fwdBase[i] + bwdBase[i]; t > stageTimes[i] {
				stageTimes[i] = t
			}
		}
		kk := k
		makespan, merr := pipeline.Makespan(sched,
			func(stage, mb int) float64 {
				return fwdBase[stage] * e.jitter(kk, stage, mb, 0)
			},
			func(stage, mb int) float64 {
				return bwdBase[stage] * e.jitter(kk, stage, mb, 1)
			},
			func(boundary int) float64 { return comm[boundary] },
		)
		if merr != nil {
			return core.Estimate{}, merr
		}
		if makespan > maxPipe {
			maxPipe = makespan
		}
	}

	sync := e.syncTime(plan, dp)
	update := e.updateTime(plan)
	iter := maxPipe + sync + update + perIterOverheadSec

	peak, peakGPU, fits := e.peakMemory(plan, nb)

	comp := 0.0
	for _, st := range plan.Stages {
		for _, r := range st.Replicas {
			comp += e.Pricing.ComputeUSD(r.GPU, r.GPUCount(), iter)
		}
	}
	egress := e.egressUSD(plan, nb)

	straggler := 0
	for i, v := range stageTimes {
		if v > stageTimes[straggler] {
			straggler = i
		}
	}
	return core.Estimate{
		IterTime:       iter,
		ComputeCost:    comp,
		EgressCost:     egress,
		PeakMemory:     peak,
		PeakMemoryGPU:  peakGPU,
		FitsMemory:     fits,
		StageTimes:     stageTimes,
		StragglerStage: straggler,
	}, nil
}

// linkBetween resolves the concrete link between two replicas, capping by
// the slower NIC.
func (e *Engine) linkBetween(a, b core.StageReplica) hardware.LinkSpec {
	l := e.Net.Link(a.Zone, b.Zone)
	na := hardware.DefaultNodeType(a.GPU)
	nbt := hardware.DefaultNodeType(b.GPU)
	return hardware.MinWithNIC(l, na.NICGbps, nbt.NICGbps)
}

// syncTime measures the gradient all-reduce phase: every stage ring runs
// concurrently, but rings sharing a cross-region path contend for its
// bandwidth, so crossing rings are scaled by the number of concurrent
// crossers — an effect the analytical simulator does not model.
func (e *Engine) syncTime(plan core.Plan, dp int) float64 {
	if dp <= 1 {
		return 0
	}
	crossRegion := 0
	times := make([]float64, 0, len(plan.Stages))
	crossing := make([]bool, len(plan.Stages))
	for si, st := range plan.Stages {
		minTP := st.Replicas[0].TP
		worst := hardware.LinkSpec{Class: hardware.IntraZone}
		worstSet := false
		for i := 0; i < dp; i++ {
			if st.Replicas[i].TP < minTP {
				minTP = st.Replicas[i].TP
			}
			for j := i + 1; j < dp; j++ {
				l := e.linkBetween(st.Replicas[i], st.Replicas[j])
				if !worstSet || l.Class > worst.Class || (l.Class == worst.Class && l.GBs < worst.GBs) {
					worst = l
					worstSet = true
				}
			}
		}
		if !worstSet {
			worst = e.linkBetween(st.Replicas[0], st.Replicas[0])
		}
		if worst.Class == hardware.InterRegion {
			crossRegion++
			crossing[si] = true
		}
		bytes := int64(st.NumLayers) * e.Cfg.GradBytesPerLayer(minTP)
		times = append(times, collective.RingAllReduce(worst, bytes, dp))
	}
	maxT := 0.0
	for si, t := range times {
		if crossing[si] && crossRegion > 1 {
			t *= float64(crossRegion)
		}
		// Stragglers desynchronise ring entry; jitter the ring too.
		t *= e.jitter(1000, si, 0, 2)
		if t > maxT {
			maxT = t
		}
	}
	return maxT
}

func (e *Engine) updateTime(plan core.Plan) float64 {
	u := 0.0
	for _, st := range plan.Stages {
		for _, r := range st.Replicas {
			spec, err := hardware.Lookup(r.GPU)
			if err != nil {
				continue
			}
			lt := profiler.BaseLayerTiming(spec, e.Cfg, plan.MicroBatchSize, r.TP)
			if t := float64(st.NumLayers) * lt.Update; t > u {
				u = t
			}
		}
	}
	return u
}

// peakMemory is the true footprint: the analytical per-worker accounting
// plus allocator fragmentation and the transient workspace of the largest
// single-layer computation (real allocators hold both the retained
// activations and the in-progress buffers).
func (e *Engine) peakMemory(plan core.Plan, nb int) (int64, core.GPUType, bool) {
	var peak int64
	var peakGPU core.GPUType
	fits := true
	for si, st := range plan.Stages {
		for _, r := range st.Replicas {
			spec, err := hardware.Lookup(r.GPU)
			if err != nil {
				fits = false
				continue
			}
			w := memory.WorkerShape{
				Layers: st.NumLayers, StageIdx: si, PP: plan.PP(), TP: r.TP,
				MicroBS: plan.MicroBatchSize, NumMicro: nb,
				FirstStg: si == 0, LastStg: si == plan.PP()-1,
				Recompute: plan.Recompute,
			}
			base := memory.WorkerFootprint(e.Cfg, w).Total()
			// Transient workspace of the in-progress layer. Recompute
			// plans already retain one live layer in the base accounting,
			// so only the extra workspace half applies.
			transient := e.Cfg.ActivationBytesPerLayer(plan.MicroBatchSize, r.TP) * 3 / 2
			if plan.Recompute {
				transient = e.Cfg.ActivationBytesPerLayer(plan.MicroBatchSize, r.TP) / 2
			}
			total := int64(float64(base)*fragmentationFactor) + transient
			if total > peak {
				peak, peakGPU = total, r.GPU
			}
			if total+memory.CapacityReserve > spec.MemoryBytes {
				fits = false
			}
		}
	}
	return peak, peakGPU, fits
}

// egressUSD bills the same traffic the simulator bills; cloud metering is
// exact, so the two agree by construction.
func (e *Engine) egressUSD(plan core.Plan, nb int) float64 {
	s := &sim.Simulator{Cfg: e.Cfg, Net: e.Net, Pricing: e.Pricing}
	return s.EgressUSD(plan, nb)
}

// jitter returns a deterministic multiplicative factor ~ 1 + U(-j, +j),
// keyed by (pipeline, stage, microbatch, phase).
func (e *Engine) jitter(pipe, stage, mb, phase int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d", e.Seed, pipe, stage, mb, phase)
	u := float64(h.Sum64()%(1<<20))/float64(1<<20)*2 - 1 // [-1, 1)
	f := 1 + e.JitterFrac*u
	if f < 0.5 {
		f = 0.5
	}
	return f
}

// Estimate implements core.Estimator by executing the plan; for the
// ground-truth engine an "estimate" is a measurement.
func (e *Engine) Estimate(plan core.Plan) (core.Estimate, error) { return e.Measure(plan) }

// Throughput implements core.Estimator (= MeasureThroughput).
func (e *Engine) Throughput(plan core.Plan) (float64, error) {
	return e.MeasureThroughput(plan)
}

// PeakMemory returns the measured peak bytes of the most loaded worker,
// including allocator fragmentation and transient workspace.
func (e *Engine) PeakMemory(plan core.Plan) (int64, error) {
	if err := plan.Validate(e.Cfg.Layers); err != nil {
		return 0, err
	}
	nb := sim.NumMicrobatches(e.Cfg, plan)
	if nb == 0 {
		return 0, fmt.Errorf("groundtruth: degenerate plan")
	}
	peak, _, _ := e.peakMemory(plan, nb)
	return peak, nil
}

// Engine doubles as an evaluation backend behind the shared seam.
var _ core.Estimator = (*Engine)(nil)

// MeasureThroughput returns iterations/second, failing on OOM like a real
// deployment would (the paper counts such plans as invalid).
func (e *Engine) MeasureThroughput(plan core.Plan) (float64, error) {
	est, err := e.Measure(plan)
	if err != nil {
		return 0, err
	}
	if !est.FitsMemory {
		return 0, fmt.Errorf("groundtruth: CUDA OOM (peak %.1f GiB on %s)",
			float64(est.PeakMemory)/math.Exp2(30), est.PeakMemoryGPU)
	}
	return est.Throughput(), nil
}
